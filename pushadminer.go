// Package pushadminer is a from-scratch Go reproduction of PushAdMiner,
// the measurement system of "When Push Comes to Ads: Measuring the Rise
// of (Malicious) Push Advertising" (Subramani et al., ACM IMC 2020).
//
// PushAdMiner (1) registers for and collects web push notifications
// (WPNs) at scale with an instrumented browser and crawler, (2) clusters
// the collected messages into WPN ad campaigns, and (3) identifies
// malicious and suspicious campaigns via URL blocklists,
// guilty-by-association label propagation, and bipartite meta-clustering
// over landing domains.
//
// Because the paper's substrate — the live web of 2019 plus a patched
// Chromium build — cannot be reproduced offline, this library ships a
// synthetic web ecosystem (publisher sites, push ad networks, campaigns,
// malicious landing infrastructure, an FCM-style push service, and URL
// blocklist services) served over a real HTTP stack on loopback, plus a
// simulated instrumented browser. See DESIGN.md for the substitution
// table.
//
// Quick start:
//
//	study, err := pushadminer.RunStudy(pushadminer.StudyConfig{
//	    Eco: pushadminer.EcosystemConfig{Seed: 1, Scale: 0.05},
//	})
//	if err != nil { ... }
//	defer study.Close()
//	fmt.Println(pushadminer.Table3(study))
//
// The cmd/pushadminer CLI and the examples/ directory exercise the same
// API end to end.
package pushadminer

import (
	"context"

	"pushadminer/internal/core"
	"pushadminer/internal/crawler"
	"pushadminer/internal/report"
	"pushadminer/internal/webeco"
)

// Re-exported configuration and result types. The full pipeline lives in
// internal packages; this facade is the supported public surface.
type (
	// EcosystemConfig controls synthetic-web generation (scale, seed,
	// push timing, crash rates...).
	EcosystemConfig = webeco.Config
	// Ecosystem is the generated synthetic web.
	Ecosystem = webeco.Ecosystem

	// StudyConfig configures a full reproduction run.
	StudyConfig = core.StudyConfig
	// Study is a finished run: crawls, records, analysis, and helpers
	// for every table and figure.
	Study = core.Study
	// PipelineOptions tweaks the mining pipeline (feature/stage
	// ablations).
	PipelineOptions = core.PipelineOptions
	// Analysis is the mining pipeline's output.
	Analysis = core.Analysis
	// Report aggregates the headline counters (Tables 3–4).
	Report = core.Report

	// WPNRecord is one collected web push notification.
	WPNRecord = crawler.WPNRecord
	// CrawlResult is the output of one crawl.
	CrawlResult = crawler.Result

	// Table is a renderable result table.
	Table = report.Table

	// RevisitResult, PilotResult, DoublePermissionResult and
	// QuietUIResult are the follow-up experiments' outputs.
	RevisitResult          = core.RevisitResult
	PilotResult            = core.PilotResult
	DoublePermissionResult = core.DoublePermissionResult
	QuietUIResult          = core.QuietUIResult
)

// NewEcosystem generates and serves a synthetic web ecosystem.
func NewEcosystem(cfg EcosystemConfig) (*Ecosystem, error) { return webeco.New(cfg) }

// RunStudy builds an ecosystem, crawls it on desktop and mobile, and
// runs the full analysis pipeline.
func RunStudy(cfg StudyConfig) (*Study, error) { return core.RunStudy(cfg) }

// RunStudyContext is RunStudy with cancellation: cancelling ctx aborts
// the crawls at their next safe point.
func RunStudyContext(ctx context.Context, cfg StudyConfig) (*Study, error) {
	return core.RunStudyContext(ctx, cfg)
}

// RunPipeline runs only the data-analysis module over already-collected
// WPN records.
func RunPipeline(records []*WPNRecord, opts PipelineOptions) (*Analysis, error) {
	return core.RunPipeline(records, opts)
}

// Table and figure regenerators (paper artifact → renderable table).
var (
	Table1             = core.Table1
	Table2             = core.Table2
	Table3             = core.Table3
	Table4             = core.Table4
	Table5             = core.Table5
	Table6             = core.Table6
	Figure4Table       = core.Figure4Table
	Figure5Table       = core.Figure5Table
	Figure6Table       = core.Figure6Table
	CostTable          = core.CostTable
	EvalTable          = core.EvaluationTable
	DetectorTable      = core.DetectorTable
	ScamBreakdownTable = core.ScamBreakdownTable
	PilotCDFTable      = core.PilotCDFTable
	MetaClusterDOT     = core.MetaClusterDOT
)

// Campaigns summarizes every discovered ad campaign, largest first.
var Campaigns = core.Campaigns

// CampaignSummary describes one discovered WPN ad campaign.
type CampaignSummary = core.CampaignSummary

// Follow-up experiments and the future-work detector.
var (
	RunRevisit               = core.RunRevisit
	RunPilot                 = core.RunPilot
	RunDoublePermissionCheck = core.RunDoublePermissionCheck
	RunQuietUICheck          = core.RunQuietUICheck
	TrainDetector            = core.TrainDetector
	RunEvasionExperiment     = core.RunEvasionExperiment
	RunTrackingCheck         = core.RunTrackingCheck
)

// TrackingCheck is the §8 cross-session cookie-tracking verification.
type TrackingCheck = core.TrackingCheck

// EvasionExperiment contrasts crawls with operator domain-rotation off
// and on (§5.2's blocklist-evasion behaviour).
type EvasionExperiment = core.EvasionExperiment

// DetectorReport is the future-work detector's training/evaluation
// outcome.
type DetectorReport = core.DetectorReport
