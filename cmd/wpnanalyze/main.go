// Command wpnanalyze runs only PushAdMiner's data-analysis module over a
// WPN record file produced by cmd/wpncrawl: clustering, campaign
// identification, malicious labeling (using the blocklist verdicts
// captured in the file), meta-clustering, and the summary report.
//
// Usage:
//
//	wpnanalyze -in wpns.json
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"pushadminer/internal/core"
	"pushadminer/internal/report"
)

func main() {
	in := flag.String("in", "wpns.json", "input JSON produced by wpncrawl")
	dot := flag.Int("dot", -1, "emit Graphviz DOT for the N largest meta clusters instead of the summary")
	trace := flag.Int("trace", -1, "print forensic timelines for the first N malicious records instead of the summary")
	flag.Parse()

	export, err := core.LoadExport(*in)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %d WPN records (seed=%d scale=%.3f, crawled %s)",
		len(export.Records), export.Seed, export.Scale, export.GeneratedAt.Format("2006-01-02"))

	a, err := core.RunPipeline(export.Records, core.PipelineOptions{
		Services: core.LookupsFromExport(export),
	})
	if err != nil {
		log.Fatal(err)
	}
	if *dot >= 0 {
		emitDOT(a, *dot)
		return
	}
	if *trace >= 0 {
		emitTraces(a, *trace)
		return
	}
	r := a.Report

	t := &report.Table{
		Title:   "Analysis summary",
		Headers: []string{"Metric", "Value"},
	}
	t.AddRow("records analyzed (valid landing)", r.ValidLanding)
	t.AddRow("WPN clusters", r.Clusters)
	t.AddRow("singleton clusters", r.Singletons)
	t.AddRow("ad campaigns", r.AdCampaignClusters)
	t.AddRow("meta clusters", r.MetaClusters)
	t.AddRow("WPN ads", r.TotalAds)
	t.AddRow("known malicious ads", r.TotalKnownMal)
	t.AddRow("additional malicious ads", r.TotalAddMal)
	t.AddRow("malicious ads total", r.TotalMaliciousAds)
	t.AddRow("malicious ad fraction", fmt.Sprintf("%.0f%%", 100*r.MaliciousAdFraction()))
	t.AddRow("malicious campaigns", r.MaliciousCampaigns)
	fmt.Println(t)
}

// emitTraces prints forensic timelines for malicious records.
func emitTraces(a *core.Analysis, n int) {
	shown := 0
	for i, r := range a.FS.Records {
		if n > 0 && shown >= n {
			break
		}
		if !a.Labels[i].Malicious() {
			continue
		}
		fmt.Println(core.TraceRecord(r))
		shown++
	}
	if shown == 0 {
		fmt.Println("no malicious records to trace")
	}
}

// emitDOT prints DOT graphs for the n largest meta clusters (all of
// them when n is 0).
func emitDOT(a *core.Analysis, n int) {
	type sized struct{ id, clusters int }
	var metas []sized
	for i, mc := range a.Meta.Meta {
		metas = append(metas, sized{i, len(mc.Clusters)})
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].clusters > metas[j].clusters })
	if n == 0 || n > len(metas) {
		n = len(metas)
	}
	for _, m := range metas[:n] {
		dot, err := core.AnalysisMetaClusterDOT(a, m.id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(dot)
	}
}
