// Command pushadminer runs the full PushAdMiner reproduction: it builds
// the synthetic web ecosystem, crawls it on desktop and mobile, mines
// the collected web push notifications for (malicious) ad campaigns, and
// prints any or all of the paper's tables and figures.
//
// Usage:
//
//	pushadminer [flags]
//
//	-seed N        ecosystem seed (default 1)
//	-scale F       fraction of the paper's crawl size (default 0.05);
//	               -scale paper is shorthand for 1.0
//	-days N        collection window in simulated days (default 14)
//	-table LIST    comma-separated artifacts to print:
//	               1,2,3,4,5,6,f4,f5,f6,cost,eval,detector,scams,experiments,all
//	-blocked       mine with the sub-quadratic LSH-blocked clustering
//	               path (candidate pairs from the SimHash band index,
//	               exact clustering within connected-component blocks)
//	-incremental   mine as a replayed stream: batches feed an
//	               incremental clusterer that re-clusters only dirty
//	               blocks (implies the blocked path)
//	-full-sweep    disable cut-sweep memoization on the blocked path:
//	               every candidate height re-cuts and re-scores every
//	               block (the parity/bench reference; output is
//	               bit-identical, just slower)
//	-medoid-index P write the persistable medoid classify index
//	               (campaign medoids + chosen cut) as deterministic
//	               JSON to P, so a restarted incremental service can
//	               Add-classify arrivals without re-mining
//	-quiet         suppress progress logging, including the periodic
//	               mining-progress lines; the live /miningz status is
//	               still published and served — quiet only silences
//	               what this process prints
//	-debug-addr A  loopback addr serving /debug/pprof, /debug/vars,
//	               a live /metrics JSON snapshot, and the /miningz
//	               mining status while the study runs
//	-metrics-out P write the final telemetry snapshot (crawler counters,
//	               mining stage wall-times, per-host request counts) to P
//	-trace-out P   write attack-chain + mining-stage spans as JSONL to P
//	-mining-ledger P write the deterministic mining event ledger
//	               (stage brackets, blocks, heights, incremental
//	               batches) as JSONL to P; byte-stable across reruns
//	               at a fixed seed
//	-linger D      keep the process (and its debug server) alive for D
//	               after the run, so /miningz and /metrics can be
//	               scraped post-completion
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"pushadminer"
	"pushadminer/internal/core"
	"pushadminer/internal/telemetry"
)

func main() {
	var (
		seed        = flag.Int64("seed", 1, "ecosystem seed")
		scaleStr    = flag.String("scale", "0.05", `fraction of paper-scale crawl ("paper" = 1.0)`)
		days        = flag.Int("days", 14, "collection window in simulated days")
		tables      = flag.String("table", "all", "artifacts to print (1,2,3,4,5,6,f4,f5,f6,cost,eval,detector,scams,experiments,all)")
		blocked     = flag.Bool("blocked", false, "use the sub-quadratic LSH-blocked clustering path")
		incremental = flag.Bool("incremental", false, "mine as a replayed stream (implies -blocked)")
		fullSweep   = flag.Bool("full-sweep", false, "disable cut-sweep memoization on the blocked path (reference/bench baseline; slower, bit-identical output)")
		medoidOut   = flag.String("medoid-index", "", "write the persistable medoid classify index (campaign medoids + chosen cut) as JSON to this path (blocked/incremental paths)")
		quiet       = flag.Bool("quiet", false, "suppress progress logging")
		format      = flag.String("format", "text", "output format: text or json")
		debugAddr   = flag.String("debug-addr", "", "loopback addr serving /debug/pprof, /debug/vars, /metrics and /miningz (e.g. 127.0.0.1:6060)")
		metricsOut  = flag.String("metrics-out", "", "write final telemetry snapshot JSON to this path")
		traceOut    = flag.String("trace-out", "", "write trace spans as JSONL to this path")
		ledgerOut   = flag.String("mining-ledger", "", "write the deterministic mining event ledger as JSONL to this path")
		linger      = flag.Duration("linger", 0, "keep the process (and debug server) alive this long after the run")
	)
	flag.Parse()

	scale := 1.0
	if *scaleStr != "paper" {
		v, err := strconv.ParseFloat(*scaleStr, 64)
		if err != nil || v <= 0 || v > 1 {
			log.Fatalf("bad -scale %q: want a fraction in (0, 1] or \"paper\"", *scaleStr)
		}
		scale = v
	}
	logf := func(format string, args ...interface{}) {
		if !*quiet {
			log.Printf(format, args...)
		}
	}

	var reg *telemetry.Registry
	if *debugAddr != "" || *metricsOut != "" {
		reg = telemetry.New()
	}
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tracer = telemetry.NewTracer(nil)
	}
	if *debugAddr != "" {
		reg.PublishExpvar("pushadminer")
		srv, err := telemetry.ServeDebug(*debugAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		logf("debug server on http://%s (/debug/pprof, /debug/vars, /metrics, /miningz)", srv.Addr())
	}
	var ledger *core.MiningLedger
	if *ledgerOut != "" {
		ledger = core.NewMiningLedger()
	}

	// Periodic mining-progress lines off the live /miningz status.
	// -quiet suppresses only the logging; the status itself is still
	// published (and served when -debug-addr is set).
	stopProgress := make(chan struct{})
	if !*quiet && (reg != nil || tracer != nil || ledger != nil) {
		go func() {
			tick := time.NewTicker(2 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-stopProgress:
					return
				case <-tick.C:
					if ms := core.CurrentMiningStatus(); ms != nil && !ms.Done {
						log.Printf("mining: stage=%s blocks=%d/%d heights=%d/%d",
							ms.Stage, ms.BlocksDone, ms.BlocksTotal, ms.HeightsDone, ms.HeightsTotal)
					}
				}
			}
		}()
	}

	logf("building ecosystem (seed=%d scale=%.3f) and crawling %d simulated days...", *seed, scale, *days)
	start := time.Now()
	cfg := pushadminer.StudyConfig{
		Eco:              pushadminer.EcosystemConfig{Seed: *seed, Scale: scale},
		CollectionWindow: time.Duration(*days) * 24 * time.Hour,
		Metrics:          reg,
		Tracer:           tracer,
	}
	cfg.Pipeline.Cluster.Blocked = *blocked
	cfg.Pipeline.Cluster.Incremental = *incremental
	cfg.Pipeline.Cluster.FullSweep = *fullSweep
	cfg.Pipeline.MedoidIndexPath = *medoidOut
	cfg.Pipeline.Ledger = ledger
	study, err := pushadminer.RunStudy(cfg)
	close(stopProgress)
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()
	logf("study complete in %s: %d WPNs collected, %d with valid landing pages",
		time.Since(start).Round(time.Millisecond),
		study.Analysis.Report.TotalCollected, study.Analysis.Report.ValidLanding)
	if *ledgerOut != "" {
		events := ledger.Events()
		if err := core.WriteMiningLedger(*ledgerOut, events); err != nil {
			log.Fatal(err)
		}
		logf("%d mining ledger events → %s", len(events), *ledgerOut)
	}
	if *medoidOut != "" {
		if m := study.Analysis.Clusters.Medoids; m != nil {
			logf("medoid index (%d campaigns, cut %.4f) → %s", len(m.Medoids), m.CutHeight, *medoidOut)
		} else {
			logf("warning: -medoid-index set but the selected path produced no medoid index (use -blocked or -incremental)")
		}
	}
	if *metricsOut != "" {
		if err := reg.WriteSnapshotFile(*metricsOut); err != nil {
			log.Fatal(err)
		}
		logf("telemetry snapshot → %s", *metricsOut)
	}
	if *traceOut != "" {
		if err := tracer.WriteTraceFile(*traceOut); err != nil {
			log.Fatal(err)
		}
		logf("%d trace spans → %s", tracer.Len(), *traceOut)
	}

	want := map[string]bool{}
	for _, t := range strings.Split(*tables, ",") {
		want[strings.TrimSpace(strings.ToLower(t))] = true
	}
	all := want["all"]
	show := func(key string, t *pushadminer.Table) {
		if !all && !want[key] {
			return
		}
		if *format == "json" {
			enc := json.NewEncoder(os.Stdout)
			if err := enc.Encode(t); err != nil {
				log.Fatal(err)
			}
			return
		}
		fmt.Println(t)
	}

	show("3", pushadminer.Table3(study))
	show("1", pushadminer.Table1(study))
	show("2", pushadminer.Table2(study))
	show("4", pushadminer.Table4(study))
	show("5", pushadminer.Table5(study))
	show("6", pushadminer.Table6(study))
	show("f4", pushadminer.Figure4Table(study))
	show("f5", pushadminer.Figure5Table(study))
	show("f6", pushadminer.Figure6Table(study))
	show("cost", pushadminer.CostTable(study))
	show("eval", pushadminer.EvalTable(study))
	show("detector", pushadminer.DetectorTable(study))
	show("scams", pushadminer.ScamBreakdownTable(study))

	if all || want["experiments"] {
		if err := printExperiments(study, *seed, scale, logf); err != nil {
			log.Fatal(err)
		}
	}
	_ = os.Stdout.Sync()
	if *linger > 0 {
		logf("lingering %s for debug scrapes...", *linger)
		time.Sleep(*linger)
	}
}

func printExperiments(study *pushadminer.Study, seed int64, scale float64, logf func(string, ...interface{})) error {
	logf("running follow-up experiments (revisit, double permission, quiet UI)...")

	rr, err := pushadminer.RunRevisit(study, 300, 30*24*time.Hour, 5*24*time.Hour)
	if err != nil {
		return err
	}
	fmt.Printf("Recent-measurements revisit (§6.3.3; paper: 300 sites, 35 senders, 305 WPNs, 198 ads, 48 malicious, 15 VT-flagged):\n")
	fmt.Printf("  revisited=%d senders=%d notifications=%d ads=%d malicious=%d vt-flagged=%d\n\n",
		rr.SitesRevisited, rr.SitesSending, rr.Notifications, rr.WPNAds, rr.MaliciousAds, rr.VTFlagged)

	dp, err := pushadminer.RunDoublePermissionCheck(seed+1, scale/4, 0.25, 200)
	if err != nil {
		return err
	}
	fmt.Printf("Double permission (§8; paper: 49 of 200): %d of %d sites use a JS pre-prompt\n\n",
		dp.DoublePermission, dp.Checked)

	q, err := pushadminer.RunQuietUICheck(study, 300)
	if err != nil {
		return err
	}
	fmt.Printf("Chrome quiet-UI revisit (§6.4; paper: all still prompt): %d of %d revisited sites still prompted\n\n",
		q.StillPrompted, q.Revisited)

	exp, err := pushadminer.RunEvasionExperiment(seed+2, scale/4)
	if err != nil {
		return err
	}
	fmt.Println(exp.Table())

	tc, err := pushadminer.RunTrackingCheck(seed, scale/4)
	if err != nil {
		return err
	}
	fmt.Println(tc.Table())
	return nil
}
