// Command wpncrawl runs only PushAdMiner's data-collection module: it
// builds a synthetic ecosystem, runs the desktop and mobile WPN
// crawlers, and writes the collected notification records (plus the
// blocklist verdicts observed at crawl time) to a JSON file that
// cmd/wpnanalyze consumes.
//
// Usage:
//
//	wpncrawl -out wpns.json [-seed N] [-scale F] [-days N]
package main

import (
	"flag"
	"log"
	"time"

	"pushadminer"
	"pushadminer/internal/core"
)

func main() {
	var (
		seed  = flag.Int64("seed", 1, "ecosystem seed")
		scale = flag.Float64("scale", 0.05, "fraction of paper-scale crawl")
		days  = flag.Int("days", 14, "collection window in simulated days")
		out   = flag.String("out", "wpns.json", "output JSON path")
	)
	flag.Parse()

	start := time.Now()
	study, err := pushadminer.RunStudy(pushadminer.StudyConfig{
		Eco:              pushadminer.EcosystemConfig{Seed: *seed, Scale: *scale},
		CollectionWindow: time.Duration(*days) * 24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	export := core.ExportFromStudy(study)
	if err := core.SaveExport(*out, export); err != nil {
		log.Fatal(err)
	}
	log.Printf("crawled %d WPNs (%d desktop, %d mobile) in %s → %s",
		len(export.Records), len(study.Desktop.Records), mobileCount(study),
		time.Since(start).Round(time.Millisecond), *out)
}

func mobileCount(s *pushadminer.Study) int {
	if s.Mobile == nil {
		return 0
	}
	return len(s.Mobile.Records)
}
