// Command wpncrawl runs only PushAdMiner's data-collection module: it
// builds a synthetic ecosystem, runs the desktop and mobile WPN
// crawlers, and writes the collected notification records (plus the
// blocklist verdicts observed at crawl time) to a JSON file that
// cmd/wpnanalyze consumes.
//
// Usage:
//
//	wpncrawl -out wpns.json [-seed N] [-scale F] [-days N]
//	         [-chaos-profile P] [-checkpoint PATH] [-resume]
//	         [-shards N] [-heartbeat D] [-max-restarts N] [-fleet-dir DIR]
//	         [-fleet-ledger PATH] [-debug-addr HOST:PORT] [-linger D]
//	         [-metrics-out PATH] [-trace-out PATH]
//
// -chaos-profile wraps the virtual network with the deterministic fault
// injector (internal/chaos): presets "mild", "acceptance", "harsh", or
// a comma-separated spec with k=v overrides, e.g.
// "acceptance,seed=7,resets=0.08,outage=72h:24h". -checkpoint makes the
// crawls crash-tolerant: state is periodically written to per-device
// JSON files derived from the given base path, and -resume merges an
// existing checkpoint so a killed crawl converges to the same record
// set as an uninterrupted one.
//
// -shards N (> 1) runs each crawl as a sharded fleet (internal/fleet):
// a coordinator plus N workers, each owning a disjoint container set
// with its own durable state file, heartbeat-based dead-worker
// detection, bounded restart-with-resume, and work stealing. The
// merged output is byte-identical to a single-process crawl at any
// shard count — including under "workercrashes=F" chaos kills.
//
// Observability: -debug-addr serves net/http/pprof, expvar, a live
// /metrics JSON snapshot, and — for fleet runs — the /fleetz fleet
// introspection view (cmd/wpnstat renders it as a dashboard) on a
// loopback listener while the crawl runs; -linger keeps that server up
// for the given duration after the crawl so the final state can still
// be scraped. -metrics-out writes the final telemetry snapshot (crawler
// counters, breaker transitions, chaos fault totals, per-host request
// counts) as JSON; -trace-out writes the per-notification attack-chain
// spans as JSONL (replayable with internal/audit); -fleet-ledger writes
// each fleet crawl's control-plane event timeline as per-device JSONL.
package main

import (
	"flag"
	"log"
	"time"

	"pushadminer"
	"pushadminer/internal/chaos"
	"pushadminer/internal/core"
	"pushadminer/internal/telemetry"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "ecosystem seed")
		scale      = flag.Float64("scale", 0.05, "fraction of paper-scale crawl")
		days       = flag.Int("days", 14, "collection window in simulated days")
		out        = flag.String("out", "wpns.json", "output JSON path")
		profile    = flag.String("chaos-profile", "", "fault-injection profile (mild|acceptance|harsh, with k=v overrides)")
		ckpt       = flag.String("checkpoint", "", "base path for crash-tolerant crawl checkpoints")
		pumpW      = flag.Int("pump-workers", 0, "parallel monitor-phase workers (1 = serial reference path, <= 0 = container-pool size); output is identical at any setting")
		batchW     = flag.Duration("batch-window", 0, "coalesce monitor ticks: pump everything due within this window of the first due event as one batch (0 = exact per-event stepping)")
		resume     = flag.Bool("resume", false, "resume crawls from existing checkpoints")
		shards     = flag.Int("shards", 0, "run each crawl as a sharded fleet with this many workers (<= 1 = single process); output is identical at any shard count")
		heartbeat  = flag.Duration("heartbeat", 0, "fleet liveness-check period in simulated time (0 = 6h default)")
		maxRestart = flag.Int("max-restarts", 0, "restart budget per shard worker before its containers are stolen (0 = default 2, negative = never restart)")
		fleetDir   = flag.String("fleet-dir", "", "directory for durable shard state files (default: private temp dir)")
		ledger     = flag.String("fleet-ledger", "", "base path for per-device fleet event-timeline JSONL files (fleet runs only)")
		debugAddr  = flag.String("debug-addr", "", "loopback addr serving /debug/pprof, /debug/vars, /metrics and /fleetz (e.g. 127.0.0.1:6060)")
		linger     = flag.Duration("linger", 0, "keep the debug server up this long after the crawl finishes")
		metricsOut = flag.String("metrics-out", "", "write final telemetry snapshot JSON to this path")
		traceOut   = flag.String("trace-out", "", "write attack-chain trace spans as JSONL to this path")
	)
	flag.Parse()

	prof, err := chaos.ParseProfile(*profile)
	if err != nil {
		log.Fatal(err)
	}

	var reg *telemetry.Registry
	if *debugAddr != "" || *metricsOut != "" {
		reg = telemetry.New()
	}
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tracer = telemetry.NewTracer(nil)
	}
	if *debugAddr != "" {
		reg.PublishExpvar("pushadminer")
		srv, err := telemetry.ServeDebug(*debugAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("debug server on http://%s (/debug/pprof, /debug/vars, /metrics, /fleetz)", srv.Addr())
	}

	start := time.Now()
	study, err := pushadminer.RunStudy(pushadminer.StudyConfig{
		Eco:              pushadminer.EcosystemConfig{Seed: *seed, Scale: *scale, Chaos: prof},
		CollectionWindow: time.Duration(*days) * 24 * time.Hour,
		CheckpointPath:   *ckpt,
		Resume:           *resume,
		PumpWorkers:      *pumpW,
		BatchWindow:      *batchW,
		Shards:           *shards,
		ShardHeartbeat:   *heartbeat,
		MaxShardRestarts: *maxRestart,
		FleetDir:         *fleetDir,
		FleetLedgerPath:  *ledger,
		Metrics:          reg,
		Tracer:           tracer,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	export := core.ExportFromStudy(study)
	if err := core.SaveExport(*out, export); err != nil {
		log.Fatal(err)
	}
	log.Printf("crawled %d WPNs (%d desktop, %d mobile) in %s → %s",
		len(export.Records), len(study.Desktop.Records), mobileCount(study),
		time.Since(start).Round(time.Millisecond), *out)
	if deg := study.Desktop.Degradation; deg.Faults != nil || deg.ContainersLost > 0 {
		log.Printf("desktop degradation: %+v", deg)
	}
	for _, dev := range []string{"desktop", "mobile"} {
		if rep := study.FleetReports[dev]; rep != nil {
			log.Printf("%s fleet: shards=%d heartbeats=%d kills=%d restarts=%d lost=%d stolen=%d saves=%d fallbacks=%d",
				dev, rep.Shards, rep.Heartbeats, rep.Kills, rep.Restarts,
				rep.WorkersLost, rep.ContainersStolen, rep.StateSaves, rep.StateFallbacks)
			log.Printf("%s fleet plane: telemetry_pulls=%d stitched_spans=%d events=%d",
				dev, rep.TelemetryPulls, rep.StitchedSpans, len(rep.Events))
		}
	}
	if *metricsOut != "" {
		if err := reg.WriteSnapshotFile(*metricsOut); err != nil {
			log.Fatal(err)
		}
		log.Printf("telemetry snapshot → %s", *metricsOut)
	}
	if *traceOut != "" {
		if err := tracer.WriteTraceFile(*traceOut); err != nil {
			log.Fatal(err)
		}
		log.Printf("%d trace spans → %s", tracer.Len(), *traceOut)
	}
	if *linger > 0 && *debugAddr != "" {
		log.Printf("lingering %s for debug scrapes", *linger)
		time.Sleep(*linger)
	}
}

func mobileCount(s *pushadminer.Study) int {
	if s.Mobile == nil {
		return 0
	}
	return len(s.Mobile.Records)
}
