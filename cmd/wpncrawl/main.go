// Command wpncrawl runs only PushAdMiner's data-collection module: it
// builds a synthetic ecosystem, runs the desktop and mobile WPN
// crawlers, and writes the collected notification records (plus the
// blocklist verdicts observed at crawl time) to a JSON file that
// cmd/wpnanalyze consumes.
//
// Usage:
//
//	wpncrawl -out wpns.json [-seed N] [-scale F] [-days N]
//	         [-chaos-profile P] [-checkpoint PATH] [-resume]
//
// -chaos-profile wraps the virtual network with the deterministic fault
// injector (internal/chaos): presets "mild", "acceptance", "harsh", or
// a comma-separated spec with k=v overrides, e.g.
// "acceptance,seed=7,resets=0.08,outage=72h:24h". -checkpoint makes the
// crawls crash-tolerant: state is periodically written to per-device
// JSON files derived from the given base path, and -resume merges an
// existing checkpoint so a killed crawl converges to the same record
// set as an uninterrupted one.
package main

import (
	"flag"
	"log"
	"time"

	"pushadminer"
	"pushadminer/internal/chaos"
	"pushadminer/internal/core"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "ecosystem seed")
		scale   = flag.Float64("scale", 0.05, "fraction of paper-scale crawl")
		days    = flag.Int("days", 14, "collection window in simulated days")
		out     = flag.String("out", "wpns.json", "output JSON path")
		profile = flag.String("chaos-profile", "", "fault-injection profile (mild|acceptance|harsh, with k=v overrides)")
		ckpt    = flag.String("checkpoint", "", "base path for crash-tolerant crawl checkpoints")
		resume  = flag.Bool("resume", false, "resume crawls from existing checkpoints")
	)
	flag.Parse()

	prof, err := chaos.ParseProfile(*profile)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	study, err := pushadminer.RunStudy(pushadminer.StudyConfig{
		Eco:              pushadminer.EcosystemConfig{Seed: *seed, Scale: *scale, Chaos: prof},
		CollectionWindow: time.Duration(*days) * 24 * time.Hour,
		CheckpointPath:   *ckpt,
		Resume:           *resume,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	export := core.ExportFromStudy(study)
	if err := core.SaveExport(*out, export); err != nil {
		log.Fatal(err)
	}
	log.Printf("crawled %d WPNs (%d desktop, %d mobile) in %s → %s",
		len(export.Records), len(study.Desktop.Records), mobileCount(study),
		time.Since(start).Round(time.Millisecond), *out)
	if deg := study.Desktop.Degradation; deg.Faults != nil || deg.ContainersLost > 0 {
		log.Printf("desktop degradation: %+v", deg)
	}
}

func mobileCount(s *pushadminer.Study) int {
	if s.Mobile == nil {
		return 0
	}
	return len(s.Mobile.Records)
}
