// Command wpnstat renders a live one-screen dashboard of a running
// crawl or mine by polling a status endpoint of a -debug-addr server:
// /fleetz (the default — per-shard health, container counts, queue
// depth, restart budgets, circuit-breaker posture, telemetry merge lag,
// fleet-wide control-plane totals from wpncrawl) or /miningz (mining
// pipeline progress — current stage, blocks clustered, cut-sweep
// heights scored, pair counts, incremental queue depth from
// pushadminer).
//
// Usage:
//
//	wpnstat -addr 127.0.0.1:6060 [-endpoint fleetz|miningz] [-interval D] [-once] [-json]
//
// -once prints a single snapshot and exits (handy for scripts); -json
// dumps the raw endpoint JSON instead of the text dashboard. Without
// -once the dashboard refreshes in place every -interval until the
// watched run reports done or the server goes away.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"pushadminer/internal/core"
	"pushadminer/internal/fleet"
)

// fleetzPayload mirrors the /fleetz JSON envelope.
type fleetzPayload struct {
	Active bool               `json:"active"`
	Fleet  *fleet.FleetStatus `json:"fleet"`
}

// miningzPayload mirrors the /miningz JSON envelope.
type miningzPayload struct {
	Active bool               `json:"active"`
	Mining *core.MiningStatus `json:"mining"`
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:6060", "debug server address")
		endpoint = flag.String("endpoint", "fleetz", "status endpoint to render: fleetz or miningz")
		interval = flag.Duration("interval", 2*time.Second, "poll period")
		once     = flag.Bool("once", false, "print one snapshot and exit")
		raw      = flag.Bool("json", false, "print the raw endpoint JSON instead of the dashboard")
	)
	flag.Parse()
	if *endpoint != "fleetz" && *endpoint != "miningz" {
		log.Fatalf("wpnstat: bad -endpoint %q: want fleetz or miningz", *endpoint)
	}

	url := "http://" + *addr + "/" + *endpoint
	client := &http.Client{Timeout: 5 * time.Second}
	for {
		body, err := fetch(client, url)
		if err != nil {
			log.Fatalf("wpnstat: %v", err)
		}
		if *raw {
			os.Stdout.Write(body)
			if len(body) > 0 && body[len(body)-1] != '\n' {
				fmt.Println()
			}
			if *once {
				return
			}
			time.Sleep(*interval)
			continue
		}
		dashboard, done, err := render(*endpoint, body)
		if err != nil {
			log.Fatalf("wpnstat: parse /%s: %v", *endpoint, err)
		}
		if dashboard == "" {
			fmt.Printf("no %s status active (run not started, or observation is off)\n", *endpoint)
			if *once {
				return
			}
			time.Sleep(*interval)
			continue
		}
		if !*once {
			// Redraw in place: clear screen, home cursor.
			fmt.Print("\033[2J\033[H")
		}
		fmt.Print(dashboard)
		if *once || done {
			return
		}
		time.Sleep(*interval)
	}
}

// render parses one endpoint response into its text dashboard. An empty
// dashboard means no status is being published yet.
func render(endpoint string, body []byte) (dashboard string, done bool, err error) {
	switch endpoint {
	case "miningz":
		var p miningzPayload
		if err := json.Unmarshal(body, &p); err != nil {
			return "", false, err
		}
		if !p.Active || p.Mining == nil {
			return "", false, nil
		}
		return p.Mining.String(), p.Mining.Done, nil
	default:
		var p fleetzPayload
		if err := json.Unmarshal(body, &p); err != nil {
			return "", false, err
		}
		if !p.Active || p.Fleet == nil {
			return "", false, nil
		}
		return p.Fleet.String(), p.Fleet.Done, nil
	}
}

func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return body, nil
}
