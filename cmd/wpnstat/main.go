// Command wpnstat renders a live one-screen dashboard of a running
// fleet crawl by polling the /fleetz endpoint a wpncrawl -debug-addr
// server exposes: per-shard health (container counts, queue depth,
// restart budgets, circuit-breaker posture, telemetry merge lag) plus
// fleet-wide control-plane totals.
//
// Usage:
//
//	wpnstat -addr 127.0.0.1:6060 [-interval D] [-once] [-json]
//
// -once prints a single snapshot and exits (handy for scripts); -json
// dumps the raw /fleetz JSON instead of the text dashboard. Without
// -once the dashboard refreshes in place every -interval until the
// fleet reports done or the server goes away.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"pushadminer/internal/fleet"
)

// fleetzPayload mirrors the /fleetz JSON envelope.
type fleetzPayload struct {
	Active bool               `json:"active"`
	Fleet  *fleet.FleetStatus `json:"fleet"`
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:6060", "wpncrawl debug server address")
		interval = flag.Duration("interval", 2*time.Second, "poll period")
		once     = flag.Bool("once", false, "print one snapshot and exit")
		raw      = flag.Bool("json", false, "print the raw /fleetz JSON instead of the dashboard")
	)
	flag.Parse()

	url := "http://" + *addr + "/fleetz"
	client := &http.Client{Timeout: 5 * time.Second}
	for {
		body, err := fetch(client, url)
		if err != nil {
			log.Fatalf("wpnstat: %v", err)
		}
		if *raw {
			os.Stdout.Write(body)
			if len(body) > 0 && body[len(body)-1] != '\n' {
				fmt.Println()
			}
			if *once {
				return
			}
			time.Sleep(*interval)
			continue
		}
		var p fleetzPayload
		if err := json.Unmarshal(body, &p); err != nil {
			log.Fatalf("wpnstat: parse /fleetz: %v", err)
		}
		if !p.Active || p.Fleet == nil {
			fmt.Println("no fleet crawl active (single-process run, or the fleet has not seeded yet)")
			if *once {
				return
			}
			time.Sleep(*interval)
			continue
		}
		if !*once {
			// Redraw in place: clear screen, home cursor.
			fmt.Print("\033[2J\033[H")
		}
		fmt.Print(p.Fleet.String())
		if *once || p.Fleet.Done {
			return
		}
		time.Sleep(*interval)
	}
}

func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return body, nil
}
