package pushadminer_test

import (
	"fmt"

	"pushadminer"
)

// Example runs a miniature end-to-end study: generate a synthetic web,
// crawl it on desktop and mobile, mine the collected notifications, and
// inspect the discovered ad campaigns.
func Example() {
	study, err := pushadminer.RunStudy(pushadminer.StudyConfig{
		Eco: pushadminer.EcosystemConfig{Seed: 2, Scale: 0.002},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer study.Close()

	r := study.Analysis.Report
	fmt.Println("collected WPNs:", r.TotalCollected > 0)
	fmt.Println("found ad campaigns:", r.AdCampaignClusters > 0)
	fmt.Println("found malicious ads:", r.TotalMaliciousAds > 0)

	campaigns := pushadminer.Campaigns(study)
	fmt.Println("largest campaign is multi-source:", len(campaigns) > 0 && len(campaigns[0].Sources) > 1)
	// Output:
	// collected WPNs: true
	// found ad campaigns: true
	// found malicious ads: true
	// largest campaign is multi-source: true
}
