# Developer entry points. The repo is plain Go; everything below is a
# thin wrapper over the toolchain so CI and local runs stay identical.

GO ?= go

.PHONY: build test race vet verify bench bench-crawl telemetry-smoke fleet-smoke mining-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# verify runs the whole gate: build, vet, tests, race tests.
verify:
	sh scripts/verify.sh

# bench runs the mining benchmark suite and writes BENCH_mining.json.
bench:
	sh scripts/bench.sh

# bench-crawl runs the crawl benchmark suite (serial vs parallel
# monitor phase + end-to-end study) and writes BENCH_crawl.json.
bench-crawl:
	SUITE=crawl sh scripts/bench.sh

# telemetry-smoke runs a seeded chaos crawl+mine with -metrics-out and
# validates the snapshot against the golden key-set.
telemetry-smoke:
	sh scripts/telemetry_smoke.sh

# fleet-smoke runs the same seeded chaos crawl single-process and as a
# 4-shard fleet under worker kills, and requires byte-identical output
# plus the fleet telemetry keys.
fleet-smoke:
	sh scripts/fleet_smoke.sh

# mining-smoke runs the blocked-vs-exact parity matrix (3 seeds × 3
# linkages) and the incremental-converges-to-batch checks — the gates
# behind the sub-quadratic mining path.
mining-smoke:
	$(GO) test -count=1 \
		-run '^(TestClusterParityBlockedVsExact|TestBlockedComponentsPartition|TestBlockedFixedCutHeight|TestIncrementalConvergesToBatch|TestIncrementalOptionReplaysToBatch|TestIncrementalLinkageVariants)$$' \
		./internal/core/
