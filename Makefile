# Developer entry points. The repo is plain Go; everything below is a
# thin wrapper over the toolchain so CI and local runs stay identical.

GO ?= go

.PHONY: build test race vet verify bench bench-crawl bench-check telemetry-smoke fleet-smoke fleetz-smoke mining-smoke miningz-smoke profile-mining

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# verify runs the whole gate: build, vet, tests, race tests.
verify:
	sh scripts/verify.sh

# bench runs the mining benchmark suite and writes BENCH_mining.json.
bench:
	sh scripts/bench.sh

# bench-crawl runs the crawl benchmark suite (serial vs parallel
# monitor phase + end-to-end study) and writes BENCH_crawl.json.
bench-crawl:
	SUITE=crawl sh scripts/bench.sh

# bench-check re-runs a cheap slice of both benchmark suites and gates
# ns/op against the committed BENCH_*.json baselines (BENCH_TOL=4.0x).
bench-check:
	sh scripts/bench_check.sh

# telemetry-smoke runs a seeded chaos crawl+mine with -metrics-out and
# validates the snapshot against the golden key-set.
telemetry-smoke:
	sh scripts/telemetry_smoke.sh

# fleet-smoke runs the same seeded chaos crawl single-process and as a
# 4-shard fleet under worker kills, and requires byte-identical output
# plus the fleet telemetry keys.
fleet-smoke:
	sh scripts/fleet_smoke.sh

# fleetz-smoke runs a 4-shard chaos crawl with the debug server up and
# asserts the live /fleetz introspection view (JSON schema + wpnstat
# dashboard) and the fleet event ledger.
fleetz-smoke:
	sh scripts/fleetz_smoke.sh

# mining-smoke runs the blocked-vs-exact parity matrix (3 seeds × 3
# linkages) and the incremental-converges-to-batch checks — the gates
# behind the sub-quadratic mining path.
mining-smoke:
	$(GO) test -count=1 \
		-run '^(TestClusterParityBlockedVsExact|TestBlockedComponentsPartition|TestBlockedFixedCutHeight|TestIncrementalConvergesToBatch|TestIncrementalOptionReplaysToBatch|TestIncrementalLinkageVariants|TestSweepMemoParityMatrix|TestBlockedFullSweepOptionParity|TestMedoidIndexRoundTrip)$$' \
		./internal/core/

# miningz-smoke runs a blocked mine with the debug server up and asserts
# the live /miningz introspection view (JSON schema + wpnstat dashboard),
# the deterministic mining ledger's byte-stability across reruns, and the
# blocked-only telemetry keys.
miningz-smoke:
	sh scripts/miningz_smoke.sh

# profile-mining captures CPU/heap pprof profiles of the n=50k blocked
# clustering benchmark plus its sweep_ns cut-sweep attribution, under
# PROFILE_DIR (never clobbers the committed BENCH_mining.json).
profile-mining:
	sh scripts/profile_mining.sh
