#!/bin/sh
# bench_check.sh — bench regression gate: re-run a cheap slice of each
# benchmark suite (smallest size tier, one iteration) through bench.sh
# and compare ns/op per (bench, n, mode) against the committed
# baselines BENCH_mining.json / BENCH_crawl.json. A benchmark that got
# more than BENCH_TOL times slower than its baseline fails the gate.
# Dependency-free: POSIX sh + awk + the Go toolchain.
#
# The tolerance is deliberately wide (default 4.0x): baselines are
# recorded at BENCHTIME=2x on whatever machine last ran `make bench`,
# while this gate runs 1x on the current one — it catches accidental
# algorithmic regressions (a quadratic path sneaking back in), not
# single-digit-percent drift. Results under BENCH_MIN_NS (default 1ms)
# are skipped as noise-floor. Benchmarks present in only one file are
# reported but never fail the gate, so adding or retiring a benchmark
# does not require regenerating baselines in the same commit.
#
#   sh scripts/bench_check.sh
#   BENCH_TOL=2.5 sh scripts/bench_check.sh
set -eu

cd "$(dirname "$0")/.."

TOL="${BENCH_TOL:-4.0}"
MIN_NS="${BENCH_MIN_NS:-1000000}"
TMPD="$(mktemp -d)"
trap 'rm -rf "$TMPD"' EXIT

compare() {
	baseline="$1"
	fresh="$2"
	awk -v tol="$TOL" -v minns="$MIN_NS" '
		function sval(line, name,    m) {
			if (match(line, "\"" name "\": \"[^\"]*\"")) {
				m = substr(line, RSTART, RLENGTH)
				sub("^\"" name "\": \"", "", m)
				sub("\"$", "", m)
				return m
			}
			return ""
		}
		function nval(line, name,    m) {
			if (match(line, "\"" name "\": [0-9]+")) {
				m = substr(line, RSTART, RLENGTH)
				sub("^\"" name "\": ", "", m)
				return m + 0
			}
			return -1
		}
		# nsobj parses a named {...} object of "key": number pairs (the
		# per-stage "stage_ns" and per-height-bucket "sweep_ns" breakdowns)
		# into dest[key] = number; returns the pair count.
		function nsobj(line, name, dest,    m, n, pairs, p, kv) {
			delete dest
			if (!match(line, "\"" name "\": \\{[^}]*\\}")) return 0
			m = substr(line, RSTART, RLENGTH)
			sub("^\"" name "\": \\{", "", m)
			sub(/\}$/, "", m)
			n = split(m, pairs, ", ")
			for (p = 1; p <= n; p++) {
				split(pairs[p], kv, ": ")
				gsub(/"/, "", kv[1])
				dest[kv[1]] = kv[2] + 0
			}
			return n
		}
		/"bench":/ {
			key = sval($0, "bench") "/n=" nval($0, "n") "/" sval($0, "mode")
			ns = nval($0, "ns_per_op")
			if (NR == FNR) {
				base[key] = ns
				nb = nsobj($0, "sweep_ns", sw)
				for (bkt in sw) basesweep[key "|" bkt] = sw[bkt]
				nb = nsobj($0, "stage_ns", sg)
				for (bkt in sg) basestage[key "|" bkt] = sg[bkt]
				basehits[key] = nval($0, "sweep_memo_hits")
				baseresc[key] = nval($0, "sweep_blocks_rescored")
				next
			}
			if (!(key in base)) {
				printf "  %-55s new benchmark, no baseline — skipped\n", key
				next
			}
			seen[key] = 1
			if (base[key] < minns) {
				printf "  %-55s baseline %.2fms under noise floor — skipped\n", key, base[key] / 1e6
				next
			}
			ratio = ns / base[key]
			verdict = "ok"
			if (ratio > tol) { verdict = "REGRESSION"; failed++ }
			printf "  %-55s %10.2fms -> %10.2fms  (%.2fx %s)\n",
				key, base[key] / 1e6, ns / 1e6, ratio, verdict
			# Gate the cut-sweep height-bucket breakdown with the same
			# tolerance and noise floor. Buckets absent from the baseline
			# (a corpus sampling new heights) are skipped, like new
			# benchmarks.
			nb = nsobj($0, "sweep_ns", sw)
			for (bkt in sw) {
				skey = key " sweep[" bkt "]"
				if (!(key "|" bkt in basesweep)) {
					printf "  %-55s new sweep bucket, no baseline — skipped\n", skey
					continue
				}
				bns = basesweep[key "|" bkt]
				if (bns < minns) continue
				ratio = sw[bkt] / bns
				verdict = "ok"
				if (ratio > tol) { verdict = "REGRESSION"; failed++ }
				printf "  %-55s %10.2fms -> %10.2fms  (%.2fx %s)\n",
					skey, bns / 1e6, sw[bkt] / 1e6, ratio, verdict
			}
			# Gate the per-stage breakdown (notably "cut", where the
			# memoized sweep savings live) with the same rules.
			nb = nsobj($0, "stage_ns", sg)
			for (bkt in sg) {
				skey = key " stage[" bkt "]"
				if (!(key "|" bkt in basestage)) {
					printf "  %-55s new stage, no baseline — skipped\n", skey
					continue
				}
				bns = basestage[key "|" bkt]
				if (bns < minns) continue
				ratio = sg[bkt] / bns
				verdict = "ok"
				if (ratio > tol) { verdict = "REGRESSION"; failed++ }
				printf "  %-55s %10.2fms -> %10.2fms  (%.2fx %s)\n",
					skey, bns / 1e6, sg[bkt] / 1e6, ratio, verdict
			}
			# Memo-effectiveness gates (counts, not wall time, so the ns
			# noise floor does not apply): rescoring tol× more blocks than
			# the baseline, or serving tol× fewer cells from the memo,
			# means the memoization quietly stopped working even if this
			# machine is fast enough to hide it in ns/op.
			mh = nval($0, "sweep_memo_hits")
			if (mh >= 0 && basehits[key] > 0) {
				ratio = basehits[key] / (mh > 0 ? mh : 1)
				verdict = "ok"
				if (ratio > tol) { verdict = "REGRESSION"; failed++ }
				printf "  %-55s %10d -> %10d hits  (%.2fx fewer, %s)\n",
					key " memo[hits]", basehits[key], mh, ratio, verdict
			} else if (mh >= 0) {
				printf "  %-55s new memo metric, no baseline — skipped\n", key " memo[hits]"
			}
			br = nval($0, "sweep_blocks_rescored")
			if (br >= 0 && baseresc[key] > 0) {
				ratio = br / baseresc[key]
				verdict = "ok"
				if (ratio > tol) { verdict = "REGRESSION"; failed++ }
				printf "  %-55s %10d -> %10d rescored  (%.2fx %s)\n",
					key " memo[rescored]", baseresc[key], br, ratio, verdict
			} else if (br >= 0) {
				printf "  %-55s new memo metric, no baseline — skipped\n", key " memo[rescored]"
			}
		}
		END {
			if (failed > 0) {
				printf "bench check: %d benchmark(s) regressed beyond %.1fx\n", failed, tol
				exit 1
			}
		}
	' "$baseline" "$fresh"
}

check_suite() {
	suite="$1"
	filter="$2"
	baseline="$3"
	if [ ! -f "$baseline" ]; then
		echo "bench check: no baseline $baseline — skipping $suite suite" >&2
		return 0
	fi
	echo "==> bench check: $suite suite ($filter, 1x) vs $baseline (tol ${TOL}x)"
	SUITE="$suite" FILTER="$filter" BENCHTIME=1x OUT="$TMPD/$suite.json" \
		sh scripts/bench.sh > "$TMPD/$suite.log" 2>&1 || {
		cat "$TMPD/$suite.log" >&2
		echo "bench check: $suite suite failed to run" >&2
		exit 1
	}
	compare "$baseline" "$TMPD/$suite.json"
}

check_suite mining '^n=200$' BENCH_mining.json
check_suite crawl '^n=50$' BENCH_crawl.json

echo "bench check: OK"
