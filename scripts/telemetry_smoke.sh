#!/bin/sh
# telemetry_smoke.sh — end-to-end observability gate: run a small seeded
# chaos crawl + mine with -metrics-out/-trace-out, then validate the
# snapshot against the golden key-set (scripts/telemetry_keys.txt) and
# sanity-check the trace. Dependency-free: POSIX sh + the Go toolchain.
#
#   sh scripts/telemetry_smoke.sh
set -eu

cd "$(dirname "$0")/.."

TMPD="$(mktemp -d)"
trap 'rm -rf "$TMPD"' EXIT

echo "==> telemetry smoke: seeded chaos crawl+mine with -metrics-out/-trace-out"
go run ./cmd/wpncrawl -seed 11 -scale 0.002 -days 7 \
	-chaos-profile acceptance \
	-out "$TMPD/wpns.json" \
	-metrics-out "$TMPD/metrics.json" \
	-trace-out "$TMPD/trace.jsonl"

[ -s "$TMPD/metrics.json" ] || { echo "telemetry smoke: empty metrics snapshot" >&2; exit 1; }
[ -s "$TMPD/trace.jsonl" ] || { echo "telemetry smoke: empty trace" >&2; exit 1; }

# The run above is single-process, so stop at the fleet-only marker;
# scripts/fleet_smoke.sh validates the fleet keys on a sharded run.
missing=0
while IFS= read -r key; do
	case "$key" in ''|'#'*) continue ;; esac
	if ! grep -q "\"$key\"" "$TMPD/metrics.json"; then
		echo "telemetry smoke: snapshot missing golden key \"$key\"" >&2
		missing=$((missing + 1))
	fi
done <<KEYS
$(sed '/^# fleet-only/,$d' scripts/telemetry_keys.txt)
KEYS
[ "$missing" -eq 0 ] || { echo "telemetry smoke: $missing golden key(s) missing" >&2; exit 1; }

# The trace must contain at least one complete attack chain: a push
# received, a notification clicked, and a landing page reached.
for kind in push_received notification_clicked landing_page; do
	grep -q "\"name\":\"$kind\"" "$TMPD/trace.jsonl" || {
		echo "telemetry smoke: trace has no $kind span" >&2
		exit 1
	}
done

echo "telemetry smoke: OK ($(grep -c . "$TMPD/trace.jsonl") spans, all golden keys present)"
