#!/bin/sh
# fleetz_smoke.sh — live-introspection gate: run a 4-shard chaos crawl
# with the debug server on, scrape /fleetz through cmd/wpnstat while
# the process is up, and assert the published fleet status has the
# expected schema (shard rows, control-plane totals, merge-lag field)
# in both its JSON and text-dashboard forms. Also checks the fleet
# event ledger the run writes. Dependency-free: POSIX sh + the Go
# toolchain (no curl — wpnstat is the HTTP client).
#
#   sh scripts/fleetz_smoke.sh
set -eu

cd "$(dirname "$0")/.."

TMPD="$(mktemp -d)"
CRAWLPID=""
cleanup() {
	[ -n "$CRAWLPID" ] && kill "$CRAWLPID" 2>/dev/null || true
	rm -rf "$TMPD"
}
trap cleanup EXIT

go build -o "$TMPD/wpncrawl" ./cmd/wpncrawl
go build -o "$TMPD/wpnstat" ./cmd/wpnstat

echo "==> fleetz smoke: 4-shard chaos crawl with debug server"
"$TMPD/wpncrawl" -seed 11 -scale 0.002 -days 7 \
	-chaos-profile "acceptance,workercrashes=0.05" \
	-shards 4 -fleet-dir "$TMPD/fleet" \
	-fleet-ledger "$TMPD/ledger.jsonl" \
	-debug-addr 127.0.0.1:0 -linger 120s \
	-out "$TMPD/wpns.json" 2> "$TMPD/crawl.log" &
CRAWLPID=$!

# The server binds an ephemeral port; wait for the log line announcing it.
ADDR=""
i=0
while [ $i -lt 100 ]; do
	ADDR="$(sed -n 's|.*debug server on http://\([^ ]*\) .*|\1|p' "$TMPD/crawl.log" | head -1)"
	[ -n "$ADDR" ] && break
	kill -0 "$CRAWLPID" 2>/dev/null || {
		cat "$TMPD/crawl.log" >&2
		echo "fleetz smoke: wpncrawl exited before serving" >&2
		exit 1
	}
	sleep 0.2
	i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "fleetz smoke: debug server never announced an address" >&2; exit 1; }

# Poll until the coordinator has published a fleet status (the first
# publish lands right after seeding).
i=0
while [ $i -lt 300 ]; do
	if "$TMPD/wpnstat" -addr "$ADDR" -once -json > "$TMPD/fleetz.json" 2>/dev/null &&
		grep -q '"active": true' "$TMPD/fleetz.json"; then
		break
	fi
	kill -0 "$CRAWLPID" 2>/dev/null || {
		cat "$TMPD/crawl.log" >&2
		echo "fleetz smoke: wpncrawl died before /fleetz became active" >&2
		exit 1
	}
	sleep 0.2
	i=$((i + 1))
done
grep -q '"active": true' "$TMPD/fleetz.json" || {
	echo "fleetz smoke: /fleetz never reported an active fleet" >&2
	cat "$TMPD/fleetz.json" >&2
	exit 1
}

echo "==> fleetz smoke: schema assertions"
for key in '"shards": 4' '"live_shards"' '"heartbeats"' '"kills"' \
	'"records"' '"sim_time"' '"window_end"' '"workers"' \
	'"shard": 3' '"restart_budget"' '"merge_lag_cycles"'; do
	grep -q "$key" "$TMPD/fleetz.json" || {
		echo "fleetz smoke: /fleetz JSON missing $key" >&2
		cat "$TMPD/fleetz.json" >&2
		exit 1
	}
done

echo "==> fleetz smoke: text dashboard"
"$TMPD/wpnstat" -addr "$ADDR" -once > "$TMPD/fleetz.txt"
for want in 'fleet ' 'shard' 'heartbeats'; do
	grep -q "$want" "$TMPD/fleetz.txt" || {
		echo "fleetz smoke: dashboard missing '$want'" >&2
		cat "$TMPD/fleetz.txt" >&2
		exit 1
	}
done
sed 's/^/    /' "$TMPD/fleetz.txt"

# Let the desktop fleet finish so its ledger is written, then check it
# (ledger paths derive per device from the base path, like checkpoints:
# ledger.jsonl → ledger.desktop.jsonl).
echo "==> fleetz smoke: event ledger"
LEDGER="$TMPD/ledger.desktop.jsonl"
i=0
while [ $i -lt 600 ] && [ ! -f "$LEDGER" ]; do
	kill -0 "$CRAWLPID" 2>/dev/null || break
	sleep 0.2
	i=$((i + 1))
done
[ -f "$LEDGER" ] || { echo "fleetz smoke: no ledger written" >&2; cat "$TMPD/crawl.log" >&2; exit 1; }
grep -q '"kind":"shard_started"' "$LEDGER" || {
	echo "fleetz smoke: ledger $LEDGER has no shard_started event" >&2
	head "$LEDGER" >&2
	exit 1
}

kill "$CRAWLPID" 2>/dev/null || true
wait "$CRAWLPID" 2>/dev/null || true
CRAWLPID=""

echo "fleetz smoke: OK (live /fleetz schema, dashboard render, event ledger)"
