#!/bin/sh
# verify.sh — full local verification: build, vet, unit tests, and the
# race-enabled suite. This is what CI runs and what `make verify`
# invokes; keep it dependency-free (POSIX sh + the Go toolchain).
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> mining benchmark smoke (n=200, one iteration)"
go test -run '^$' \
	-bench '^(BenchmarkClusterWPNs|BenchmarkSoftCosineMatrix|BenchmarkSilhouetteSweep)$/^n=200$' \
	-benchtime 1x .

echo "==> blocked-vs-exact mining parity smoke"
go test -count=1 \
	-run '^(TestClusterParityBlockedVsExact|TestIncrementalConvergesToBatch)$' \
	./internal/core/

echo "==> parallel-monitor parity smoke (serial vs parallel, small n)"
go test -run '^TestSerialParallelParity$/^seed11$' -count=1 ./internal/crawler/

echo "==> crawl benchmark smoke (n=50, one iteration)"
go test -run '^$' \
	-bench '^(BenchmarkCrawlMonitor|BenchmarkStudyEndToEnd)$/^n=50$' \
	-benchtime 1x ./internal/crawler/ .

sh scripts/telemetry_smoke.sh

sh scripts/fleet_smoke.sh

echo "verify: OK"
