#!/bin/sh
# verify.sh — full local verification: build, vet, unit tests, and the
# race-enabled suite. This is what CI runs and what `make verify`
# invokes; keep it dependency-free (POSIX sh + the Go toolchain).
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> blocked-vs-exact mining parity smoke"
go test -count=1 \
	-run '^(TestClusterParityBlockedVsExact|TestIncrementalConvergesToBatch)$' \
	./internal/core/

echo "==> parallel-monitor parity smoke (serial vs parallel, small n)"
go test -run '^TestSerialParallelParity$/^seed11$' -count=1 ./internal/crawler/

# bench_check subsumes the old bench smokes: it runs the same cheap
# slices (mining n=200, crawl n=50, 1x) and additionally gates them
# against the committed BENCH_*.json baselines.
sh scripts/bench_check.sh

sh scripts/telemetry_smoke.sh

sh scripts/fleet_smoke.sh

sh scripts/fleetz_smoke.sh

sh scripts/miningz_smoke.sh

echo "verify: OK"
