#!/bin/sh
# profile_mining.sh — capture CPU and heap pprof profiles of the
# large-n blocked clustering benchmark (BenchmarkClusterWPNsBlockedLarge,
# n=50k) alongside its bench JSON, whose sweep_ns object breaks the cut
# sweep down by candidate-height bucket. Writes everything under
# PROFILE_DIR (default /tmp/pushadminer-mining-prof) so the committed
# BENCH_mining.json baseline is never clobbered — regenerate that with
# `make bench`. Dependency-free: POSIX sh + the Go toolchain.
#
#   sh scripts/profile_mining.sh
#   PROFILE_DIR=/tmp/prof BENCHTIME=3x sh scripts/profile_mining.sh
#
# Inspect afterwards with:
#
#   go tool pprof PROFILE_DIR/bench.test PROFILE_DIR/cpu.pprof
#   go tool pprof PROFILE_DIR/bench.test PROFILE_DIR/mem.pprof
set -eu

cd "$(dirname "$0")/.."

DIR="${PROFILE_DIR:-/tmp/pushadminer-mining-prof}"
BENCHTIME="${BENCHTIME:-1x}"

echo "==> profiling BenchmarkClusterWPNsBlockedLarge (n=50k, $BENCHTIME) into $DIR"
SUITE=mining FILTER='^n=50000$' BENCHTIME="$BENCHTIME" \
	PROFILE_DIR="$DIR" OUT="$DIR/bench.json" sh scripts/bench.sh

echo "==> cut-sweep attribution (sweep_ns by height bucket)"
grep -o '"sweep_ns": {[^}]*}' "$DIR/bench.json" ||
	echo "    (no sweep_ns breakdown — sweep finished under the crossover?)" >&2

echo "==> top CPU consumers"
go tool pprof -top -nodecount=12 "$DIR/bench.test" "$DIR/cpu.pprof" | sed 's/^/    /'

echo "==> top heap allocators"
go tool pprof -top -nodecount=12 -sample_index=alloc_space \
	"$DIR/bench.test" "$DIR/mem.pprof" | sed 's/^/    /'

echo "profile: wrote $DIR/cpu.pprof, $DIR/mem.pprof, $DIR/bench.json"
