#!/bin/sh
# bench.sh — run a benchmark suite and record the results as a JSON
# artifact at the repo root, so the perf trajectory is tracked across
# PRs. Dependency-free: POSIX sh + awk + the Go toolchain.
#
# Suites:
#   mining (default) — the §5.1.1 clustering hot path → BENCH_mining.json
#   crawl            — the monitor event loop (serial vs parallel) and
#                      the end-to-end study → BENCH_crawl.json
#
#   BENCHTIME=5x OUT=/tmp/bench.json sh scripts/bench.sh
#   SUITE=crawl sh scripts/bench.sh
#   FILTER='^n=200$' sh scripts/bench.sh   # restrict to one size tier
#   PROFILE_DIR=/tmp/prof sh scripts/bench.sh   # also capture CPU/heap
#                pprof profiles (single-package suites only — go test
#                rejects profile flags over multiple packages)
set -eu

cd "$(dirname "$0")/.."

SUITE="${SUITE:-mining}"
BENCHTIME="${BENCHTIME:-2x}"
case "$SUITE" in
mining)
	PKGS="."
	PAT='^(BenchmarkClusterWPNs|BenchmarkClusterWPNsBlockedLarge|BenchmarkSoftCosineMatrix|BenchmarkSilhouetteSweep)$'
	DEFOUT="BENCH_mining.json"
	;;
crawl)
	PKGS="./internal/crawler ."
	PAT='^(BenchmarkCrawlMonitor|BenchmarkStudyEndToEnd)$'
	DEFOUT="BENCH_crawl.json"
	;;
*)
	echo "unknown SUITE '$SUITE' (want mining or crawl)" >&2
	exit 2
	;;
esac
OUT="${OUT:-$DEFOUT}"
# FILTER narrows the run to matching sub-benchmarks (e.g. '^n=200$'),
# used by bench_check.sh to keep the regression gate cheap.
if [ -n "${FILTER:-}" ]; then
	PAT="$PAT/$FILTER"
fi
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

PROFFLAGS=""
if [ -n "${PROFILE_DIR:-}" ]; then
	case "$PKGS" in
	*" "*)
		echo "PROFILE_DIR needs a single-package suite (got PKGS='$PKGS')" >&2
		exit 2
		;;
	esac
	mkdir -p "$PROFILE_DIR"
	PROFFLAGS="-cpuprofile $PROFILE_DIR/cpu.pprof -memprofile $PROFILE_DIR/mem.pprof -o $PROFILE_DIR/bench.test"
fi

# shellcheck disable=SC2086 # PKGS/PROFFLAGS are deliberate word lists
go test -run '^$' \
	-bench "$PAT" \
	-benchtime "$BENCHTIME" -timeout 60m $PROFFLAGS $PKGS | tee "$TMP"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
	/^Benchmark/ {
		name = $1; iters = $2; ns = $3
		sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
		split(name, parts, "/")
		bench = parts[1]; size = parts[2]; mode = parts[3]
		sub(/^n=/, "", size)
		# Per-stage wall-times reported via telemetry as "<stage>-ns/op"
		# custom metrics (BenchmarkClusterWPNs only).
		stages = ""
		sweeps = ""
		extras = ""
		for (i = 5; i + 1 <= NF; i += 2) {
			unit = $(i + 1)
			if (unit ~ /^sweep_.*-ns\/op$/) {
				# Cut-sweep attribution: per-height-bucket wall times
				# ("sweep_<bucket>-ns/op"), folded into a sweep_ns object
				# (BenchmarkClusterWPNsBlockedLarge only). Must match
				# before the generic -ns/op stage branch.
				bucket = unit
				sub(/^sweep_/, "", bucket)
				sub(/-ns\/op$/, "", bucket)
				if (sweeps != "") sweeps = sweeps ", "
				sweeps = sweeps sprintf("\"%s\": %s", bucket, $(i))
			} else if (unit ~ /-ns\/op$/) {
				stage = unit
				sub(/-ns\/op$/, "", stage)
				if (stages != "") stages = stages ", "
				stages = stages sprintf("\"%s\": %s", stage, $(i))
			} else if (unit == "exact-pairs") {
				# Blocked-path pair accounting: soft-cosine evaluations
				# actually performed (Σ|B|² within blocks), vs n(n-1)/2
				# for any exact mode.
				extras = extras sprintf(", \"exact_pairs\": %.0f", $(i))
			} else if (unit == "memo-hits") {
				# Memoized-sweep accounting: (height, block) cells served
				# from the per-block cut memo instead of re-scored.
				extras = extras sprintf(", \"sweep_memo_hits\": %.0f", $(i))
			} else if (unit == "blocks-rescored") {
				# Blocks actually crossed+summed per height, totalled over
				# the sweep (= heights × blocks on the full sweep; far
				# smaller memoized).
				extras = extras sprintf(", \"sweep_blocks_rescored\": %.0f", $(i))
			}
		}
		if (stages != "") stages = sprintf(", \"stage_ns\": {%s}", stages)
		if (sweeps != "") stages = stages sprintf(", \"sweep_ns\": {%s}", sweeps)
		stages = stages extras
		if (out != "") out = out ",\n"
		out = out sprintf("    {\"bench\": \"%s\", \"n\": %s, \"mode\": \"%s\", \"iters\": %s, \"ns_per_op\": %s%s}",
			bench, size, mode, iters, ns, stages)
		nsof[bench "/" size "/" mode] = ns
	}
	END {
		speed = ""
		naive   = nsof["BenchmarkClusterWPNs/2000/naive"]
		cached  = nsof["BenchmarkClusterWPNs/2000/cached"]
		pruned  = nsof["BenchmarkClusterWPNs/2000/pruned"]
		blocked = nsof["BenchmarkClusterWPNs/2000/blocked"]
		if (naive != "" && cached != "")
			speed = speed sprintf(",\n  \"speedup_n2000_naive_vs_cached\": %.2f", naive / cached)
		if (naive != "" && pruned != "")
			speed = speed sprintf(",\n  \"speedup_n2000_naive_vs_pruned\": %.2f", naive / pruned)
		if (pruned != "" && blocked != "")
			speed = speed sprintf(",\n  \"speedup_n2000_pruned_vs_blocked\": %.2f", pruned / blocked)
		fullsw = nsof["BenchmarkClusterWPNsBlockedLarge/50000/fullsweep"]
		memo   = nsof["BenchmarkClusterWPNsBlockedLarge/50000/blocked"]
		if (fullsw != "" && memo != "")
			speed = speed sprintf(",\n  \"speedup_n50000_fullsweep_vs_memo\": %.2f", fullsw / memo)
		for (n = 50; n <= 200; n += 150) {
			s = nsof["BenchmarkCrawlMonitor/" n "/serial"]
			p = nsof["BenchmarkCrawlMonitor/" n "/parallel"]
			if (s != "" && p != "")
				speed = speed sprintf(",\n  \"speedup_n%d_serial_vs_parallel\": %.2f", n, s / p)
			s = nsof["BenchmarkStudyEndToEnd/" n "/serial"]
			p = nsof["BenchmarkStudyEndToEnd/" n "/parallel"]
			f = nsof["BenchmarkStudyEndToEnd/" n "/fleet4"]
			if (s != "" && p != "")
				speed = speed sprintf(",\n  \"speedup_study_n%d_serial_vs_parallel\": %.2f", n, s / p)
			if (p != "" && f != "")
				speed = speed sprintf(",\n  \"overhead_study_n%d_fleet4_vs_parallel\": %.2f", n, f / p)
		}
		printf "{\n  \"date\": \"%s\",\n  \"benchtime\": \"'"$BENCHTIME"'\",\n  \"results\": [\n%s\n  ]%s\n}\n",
			date, out, speed
	}
' "$TMP" > "$OUT"

echo "wrote $OUT"
