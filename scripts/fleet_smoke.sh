#!/bin/sh
# fleet_smoke.sh — sharded-crawl gate: run the same seeded chaos crawl
# twice, single-process and as a 4-shard fleet with worker kills
# (workercrashes chaos), and require the two record exports to be
# byte-identical. Then validate the fleet telemetry instruments against
# the full golden key-set (scripts/telemetry_keys.txt, including the
# fleet-only section the unsharded telemetry smoke skips) and check
# that the self-healing machinery actually fired. Dependency-free:
# POSIX sh + the Go toolchain.
#
#   sh scripts/fleet_smoke.sh
set -eu

cd "$(dirname "$0")/.."

TMPD="$(mktemp -d)"
trap 'rm -rf "$TMPD"' EXIT

PROFILE="acceptance,workercrashes=0.05"

echo "==> fleet smoke: single-process baseline"
go run ./cmd/wpncrawl -seed 11 -scale 0.002 -days 7 \
	-chaos-profile "$PROFILE" \
	-out "$TMPD/base.json"

echo "==> fleet smoke: 4-shard fleet under worker kills"
go run ./cmd/wpncrawl -seed 11 -scale 0.002 -days 7 \
	-chaos-profile "$PROFILE" \
	-shards 4 -fleet-dir "$TMPD/fleet" \
	-out "$TMPD/fleet.json" \
	-metrics-out "$TMPD/metrics.json" 2> "$TMPD/fleet.log"
cat "$TMPD/fleet.log" >&2

cmp -s "$TMPD/base.json" "$TMPD/fleet.json" || {
	echo "fleet smoke: 4-shard output differs from single-process baseline" >&2
	exit 1
}

# The chaos plan must have exercised the control plane — a run with
# zero kills proves parity of nothing.
grep -Eq "fleet: .*kills=[1-9]" "$TMPD/fleet.log" || {
	echo "fleet smoke: chaos plan produced no worker kills" >&2
	exit 1
}

# The fleet mine runs the default (cached) clustering path, so stop at
# the blocked-only marker; scripts/miningz_smoke.sh validates those keys
# on a blocked mine.
missing=0
while IFS= read -r key; do
	case "$key" in ''|'#'*) continue ;; esac
	if ! grep -q "\"$key\"" "$TMPD/metrics.json"; then
		echo "fleet smoke: snapshot missing golden key \"$key\"" >&2
		missing=$((missing + 1))
	fi
done <<KEYS
$(sed '/^# mining-blocked-only/,$d' scripts/telemetry_keys.txt)
KEYS
[ "$missing" -eq 0 ] || { echo "fleet smoke: $missing golden key(s) missing" >&2; exit 1; }

echo "fleet smoke: OK (sharded output byte-identical, all golden keys present)"
