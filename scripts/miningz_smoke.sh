#!/bin/sh
# miningz_smoke.sh — mining observability gate: (1) rerun a small
# blocked mine twice at a fixed seed and assert the deterministic mining
# ledger is byte-identical; (2) run it a third time with the debug
# server up, scrape /miningz through cmd/wpnstat while the process
# lingers, and assert the published mining status has the expected
# schema in both its JSON and text-dashboard forms; (3) assert attaching
# telemetry did not change the ledger bytes and the blocked-only golden
# keys landed in the metrics snapshot. Dependency-free: POSIX sh + the
# Go toolchain (no curl — wpnstat is the HTTP client).
#
#   sh scripts/miningz_smoke.sh
set -eu

cd "$(dirname "$0")/.."

TMPD="$(mktemp -d)"
MINEPID=""
cleanup() {
	[ -n "$MINEPID" ] && kill "$MINEPID" 2>/dev/null || true
	rm -rf "$TMPD"
}
trap cleanup EXIT

go build -o "$TMPD/pushadminer" ./cmd/pushadminer
go build -o "$TMPD/wpnstat" ./cmd/wpnstat

MINE="$TMPD/pushadminer -seed 11 -scale 0.002 -days 7 -blocked -table 3"

echo "==> miningz smoke: ledger byte-stability across reruns"
$MINE -quiet -mining-ledger "$TMPD/ledger1.jsonl" > /dev/null
$MINE -quiet -mining-ledger "$TMPD/ledger2.jsonl" > /dev/null
cmp -s "$TMPD/ledger1.jsonl" "$TMPD/ledger2.jsonl" || {
	echo "miningz smoke: reruns at a fixed seed produced different ledgers" >&2
	exit 1
}
[ -s "$TMPD/ledger1.jsonl" ] || { echo "miningz smoke: empty ledger" >&2; exit 1; }

for kind in stage_begin stage_end block_clustered cut_chosen; do
	grep -q "\"kind\":\"$kind\"" "$TMPD/ledger1.jsonl" || {
		echo "miningz smoke: ledger has no $kind event" >&2
		head "$TMPD/ledger1.jsonl" >&2
		exit 1
	}
done

echo "==> miningz smoke: blocked mine with debug server"
$MINE -mining-ledger "$TMPD/ledger3.jsonl" \
	-metrics-out "$TMPD/metrics.json" \
	-debug-addr 127.0.0.1:0 -linger 120s \
	> /dev/null 2> "$TMPD/mine.log" &
MINEPID=$!

# The server binds an ephemeral port; wait for the log line announcing it.
ADDR=""
i=0
while [ $i -lt 100 ]; do
	ADDR="$(sed -n 's|.*debug server on http://\([^ ]*\) .*|\1|p' "$TMPD/mine.log" | head -1)"
	[ -n "$ADDR" ] && break
	kill -0 "$MINEPID" 2>/dev/null || {
		cat "$TMPD/mine.log" >&2
		echo "miningz smoke: pushadminer exited before serving" >&2
		exit 1
	}
	sleep 0.2
	i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "miningz smoke: debug server never announced an address" >&2; exit 1; }

# Poll until a mining status is published (the run is short, so the
# usual scrape catches the lingering done-state snapshot — which is the
# point: /miningz stays inspectable after the run).
i=0
while [ $i -lt 300 ]; do
	if "$TMPD/wpnstat" -addr "$ADDR" -endpoint miningz -once -json > "$TMPD/miningz.json" 2>/dev/null &&
		grep -q '"active": true' "$TMPD/miningz.json"; then
		break
	fi
	kill -0 "$MINEPID" 2>/dev/null || {
		cat "$TMPD/mine.log" >&2
		echo "miningz smoke: pushadminer died before /miningz became active" >&2
		exit 1
	}
	sleep 0.2
	i=$((i + 1))
done
grep -q '"active": true' "$TMPD/miningz.json" || {
	echo "miningz smoke: /miningz never reported an active mining run" >&2
	cat "$TMPD/miningz.json" >&2
	exit 1
}

echo "==> miningz smoke: schema assertions"
for key in '"stage"' '"mode": "blocked"' '"records"' '"blocks_total"' \
	'"blocks_done"' '"heights_total"' '"pairs_exact"' '"pairs_pruned"' \
	'"sweep_blocks_rescored"' '"sweep_memo_hits"' \
	'"recluster_queue_depth"' '"done"'; do
	grep -q "$key" "$TMPD/miningz.json" || {
		echo "miningz smoke: /miningz JSON missing $key" >&2
		cat "$TMPD/miningz.json" >&2
		exit 1
	}
done

echo "==> miningz smoke: text dashboard"
"$TMPD/wpnstat" -addr "$ADDR" -endpoint miningz -once > "$TMPD/miningz.txt"
for want in 'mining ' 'blocked' 'blocks ' 'pairs ' 'heights '; do
	grep -q "$want" "$TMPD/miningz.txt" || {
		echo "miningz smoke: dashboard missing '$want'" >&2
		cat "$TMPD/miningz.txt" >&2
		exit 1
	}
done
sed 's/^/    /' "$TMPD/miningz.txt"

# Wait for the third run's ledger + metrics to hit disk (both are
# written before the linger sleep).
i=0
while [ $i -lt 300 ] && { [ ! -s "$TMPD/ledger3.jsonl" ] || [ ! -s "$TMPD/metrics.json" ]; }; do
	kill -0 "$MINEPID" 2>/dev/null || break
	sleep 0.2
	i=$((i + 1))
done
[ -s "$TMPD/ledger3.jsonl" ] || { echo "miningz smoke: no ledger from debug run" >&2; exit 1; }
[ -s "$TMPD/metrics.json" ] || { echo "miningz smoke: no metrics snapshot" >&2; exit 1; }

# The ledger must be sink-independent: attaching telemetry + the debug
# server must not change a single byte of the event stream.
cmp -s "$TMPD/ledger1.jsonl" "$TMPD/ledger3.jsonl" || {
	echo "miningz smoke: attaching telemetry changed the ledger bytes" >&2
	exit 1
}

echo "==> miningz smoke: blocked-only golden keys"
missing=0
while IFS= read -r key; do
	case "$key" in ''|'#'*) continue ;; esac
	if ! grep -q "\"$key\"" "$TMPD/metrics.json"; then
		echo "miningz smoke: snapshot missing golden key \"$key\"" >&2
		missing=$((missing + 1))
	fi
done <<KEYS
$(sed -n '/^# mining-blocked-only/,$p' scripts/telemetry_keys.txt)
KEYS
[ "$missing" -eq 0 ] || { echo "miningz smoke: $missing golden key(s) missing" >&2; exit 1; }

kill "$MINEPID" 2>/dev/null || true
wait "$MINEPID" 2>/dev/null || true
MINEPID=""

echo "miningz smoke: OK (ledger byte-stable, live /miningz schema, dashboard render, blocked keys)"
