package crawler

import (
	"strings"
	"testing"
	"time"

	"pushadminer/internal/browser"
	"pushadminer/internal/webeco"
)

// TestWPNServingSteps verifies the Figure 2/3 pipeline end to end: the
// eight steps of serving an ad via WPNs all appear, in order, in one
// container's instrumentation log.
//
//  1. visit + permission request        (EvVisit, EvPermissionRequested)
//  2. SW registration                   (EvSWRegistered)
//  3. subscription announced to network (page_request to /subscribe)
//  4. push received from the service    (EvPushReceived)
//  5. SW fetches the ad                 (EvSWRequest to /ad)
//  6. notification displayed            (EvNotificationShown)
//  7. auto-click                        (EvNotificationClicked)
//  8. navigation + landing page         (EvNavigation, EvLandingPage)
func TestWPNServingSteps(t *testing.T) {
	eco, err := webeco.New(webeco.Config{Seed: 21, Scale: 0.004})
	if err != nil {
		t.Fatal(err)
	}
	defer eco.Close()

	// Find a publisher site of a high-ad-share network so the first
	// push is near-surely an ad.
	var seed string
	for _, s := range eco.Sites() {
		if s.NPR && s.Network == "Ad-Maven" {
			seed = s.URL
			break
		}
	}
	if seed == "" {
		t.Skip("no Ad-Maven NPR site at this scale")
	}

	br := browser.New(browser.Config{
		Clock:  eco.Clock,
		Client: eco.Net.ClientNoRedirect(),
	})
	vr, err := br.Visit(seed)
	if err != nil {
		t.Fatal(err)
	}
	if vr.Registration == nil {
		t.Fatal("no SW registration")
	}

	// Drive time until the first push is delivered and clicked.
	deadline := eco.Clock.Now().Add(96 * time.Hour)
	for eco.Clock.Now().Before(deadline) {
		at, ok := eco.NextPushAt()
		if !ok {
			break
		}
		eco.Clock.Advance(at.Sub(eco.Clock.Now()))
		eco.Tick()
		if n, _ := br.PumpPush(""); n > 0 {
			eco.Clock.Advance(5 * time.Second)
			if len(br.ProcessClicks()) > 0 {
				break
			}
		}
	}

	wantOrder := []browser.EventKind{
		browser.EvVisit,
		browser.EvPermissionRequested,
		browser.EvPermissionGranted,
		browser.EvSWRegistered,
		browser.EvPushReceived,
		browser.EvNotificationShown,
		browser.EvNotificationClicked,
		browser.EvNavigation,
	}
	events := br.Events()
	pos := 0
	for _, e := range events {
		if pos < len(wantOrder) && e.Kind == wantOrder[pos] {
			pos++
		}
	}
	if pos != len(wantOrder) {
		kinds := make([]browser.EventKind, len(events))
		for i, e := range events {
			kinds[i] = e.Kind
		}
		t.Fatalf("step %d (%s) missing from event sequence: %v", pos+1, wantOrder[pos], kinds)
	}

	// Step 3: the subscription reached the ad network over HTTP.
	sawSubscribe := false
	// Step 5: the SW contacted the ad server to resolve the ad.
	sawAdFetch := false
	for _, e := range events {
		if e.Kind == browser.EvPageRequest && contains(e.Fields["url"], "/subscribe") {
			sawSubscribe = true
		}
		if e.Kind == browser.EvSWRequest && contains(e.Fields["url"], "/ad?id=") {
			sawAdFetch = true
		}
	}
	if !sawSubscribe {
		t.Error("step 3 missing: subscription never announced to the ad network")
	}
	if !sawAdFetch {
		t.Error("step 5 missing: SW never fetched the ad")
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
