package crawler

import (
	"net/http"
	"testing"

	"pushadminer/internal/browser"
	"pushadminer/internal/chaos"
	"pushadminer/internal/fcm"
	"pushadminer/internal/webeco"
)

// TestCrawlSurvivesFlakyPushService injects a 33% transient failure rate
// into the push service through the shared chaos layer and requires the
// crawl to still complete and collect: the httpx retry layer in the FCM
// client must absorb the hiccups.
func TestCrawlSurvivesFlakyPushService(t *testing.T) {
	prof := &chaos.Profile{
		Seed:             3,
		Error5xxFraction: 0.33,
		Only:             []string{fcm.DefaultHost},
	}
	eco := newChaosEco(t, 0.002, prof)
	res, err := chaosCrawler(t, eco, nil).Run(eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	injected := eco.Chaos().Stats()["http_503"]
	if injected == 0 {
		t.Fatal("failure injection never fired; test is vacuous")
	}
	if len(res.Records) == 0 {
		t.Fatalf("flaky push service killed the crawl (injected %d failures)", injected)
	}
	if res.Degradation.Faults["chaos_http_503"] != injected {
		t.Errorf("degradation reports %d injected 503s, injector counted %d",
			res.Degradation.Faults["chaos_http_503"], injected)
	}
	t.Logf("survived %d injected 503s, collected %d WPNs", injected, len(res.Records))
}

// TestCrawlSurvivesDeadBlocklistHost: analysis-time blocklist outages
// must not be fatal to lookup-capable clients either — the HTTP client
// surfaces errors, which LabelKnownMalicious propagates; here we check
// the crawl phase itself never touches blocklists (it must not).
func TestCrawlIndependentOfBlocklists(t *testing.T) {
	eco := newEco(t, 0.002)
	// Unmount the blocklist hosts entirely.
	eco.Net.Handle(webeco.VTHost, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	eco.Net.Handle(webeco.GSBHost, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	c := newCrawler(t, eco, browser.Desktop, false)
	res, err := c.Run(eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("crawl failed with blocklists down; collection must not depend on them")
	}
}
