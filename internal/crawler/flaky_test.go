package crawler

import (
	"net/http"
	"sync/atomic"
	"testing"

	"pushadminer/internal/browser"
	"pushadminer/internal/fcm"
	"pushadminer/internal/webeco"
)

// flakyHandler injects transient 503s: every third request fails.
type flakyHandler struct {
	inner http.Handler
	n     int64
	fails int64
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if atomic.AddInt64(&f.n, 1)%3 == 0 {
		atomic.AddInt64(&f.fails, 1)
		http.Error(w, "transient", http.StatusServiceUnavailable)
		return
	}
	f.inner.ServeHTTP(w, r)
}

// TestCrawlSurvivesFlakyPushService injects a 33% transient failure rate
// into the push service and requires the crawl to still complete and
// collect: the httpx retry layer in the FCM client must absorb the
// hiccups.
func TestCrawlSurvivesFlakyPushService(t *testing.T) {
	eco := newEco(t, 0.002)
	flaky := &flakyHandler{inner: eco.Push}
	eco.Net.Handle(fcm.DefaultHost, flaky)

	c := newCrawler(t, eco, browser.Desktop, false)
	res, err := c.Run(eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&flaky.fails) == 0 {
		t.Fatal("failure injection never fired; test is vacuous")
	}
	if len(res.Records) == 0 {
		t.Fatalf("flaky push service killed the crawl (injected %d failures)", flaky.fails)
	}
	t.Logf("survived %d injected 503s, collected %d WPNs", flaky.fails, len(res.Records))
}

// TestCrawlSurvivesDeadBlocklistHost: analysis-time blocklist outages
// must not be fatal to lookup-capable clients either — the HTTP client
// surfaces errors, which LabelKnownMalicious propagates; here we check
// the crawl phase itself never touches blocklists (it must not).
func TestCrawlIndependentOfBlocklists(t *testing.T) {
	eco := newEco(t, 0.002)
	// Unmount the blocklist hosts entirely.
	eco.Net.Handle(webeco.VTHost, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	eco.Net.Handle(webeco.GSBHost, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	c := newCrawler(t, eco, browser.Desktop, false)
	res, err := c.Run(eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("crawl failed with blocklists down; collection must not depend on them")
	}
}
