package crawler

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"pushadminer/internal/browser"
	"pushadminer/internal/chaos"
	"pushadminer/internal/webeco"
)

// newChaosEco builds the standard test ecosystem with a chaos profile.
func newChaosEco(t *testing.T, scale float64, prof *chaos.Profile) *webeco.Ecosystem {
	t.Helper()
	eco, err := webeco.New(webeco.Config{Seed: 11, Scale: scale, Chaos: prof})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eco.Close() })
	return eco
}

// chaosCrawler builds a crawler wired for fault injection and recovery,
// with optional config overrides.
func chaosCrawler(t *testing.T, eco *webeco.Ecosystem, mod func(*Config)) *Crawler {
	t.Helper()
	cfg := Config{
		Clock:            eco.Clock,
		NewClient:        func() *http.Client { return eco.Net.ClientNoRedirect() },
		Driver:           eco,
		Pending:          eco.Push,
		Device:           browser.Desktop,
		CollectionWindow: 7 * 24 * time.Hour,
		CrashPlan:        eco.CrashPlan(),
		FaultCounts:      eco.FaultCounts,
	}
	if mod != nil {
		mod(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// acceptanceProfile is the ISSUE scenario: 5% connection resets, 10%
// 503s, and one 24-hour push-service outage, all from a fixed seed.
func acceptanceProfile() *chaos.Profile {
	p, ok := chaos.Preset("acceptance")
	if !ok {
		panic("acceptance preset missing")
	}
	p.Seed = 5
	return &p
}

func assertUniqueIDs(t *testing.T, recs []*WPNRecord) {
	t.Helper()
	seen := make(map[int]bool, len(recs))
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("duplicate record ID %d", r.ID)
		}
		seen[r.ID] = true
	}
}

// TestCrawlUnderAcceptanceChaos is the headline robustness bound: under
// the acceptance fault profile a full crawl must still collect at least
// 95% of the fault-free record count, mint no duplicate IDs, and
// account for the faults it survived in the Degradation report.
func TestCrawlUnderAcceptanceChaos(t *testing.T) {
	baselineEco := newChaosEco(t, 0.002, nil)
	baseline, err := chaosCrawler(t, baselineEco, nil).Run(baselineEco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Records) == 0 {
		t.Fatal("fault-free baseline collected nothing")
	}

	eco := newChaosEco(t, 0.002, acceptanceProfile())
	res, err := chaosCrawler(t, eco, nil).Run(eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}

	assertUniqueIDs(t, res.Records)
	if min := (len(baseline.Records)*95 + 99) / 100; len(res.Records) < min {
		t.Errorf("chaos crawl collected %d records, want >= %d (95%% of baseline %d)\ndegradation: %+v",
			len(res.Records), min, len(baseline.Records), res.Degradation)
	}

	deg := res.Degradation
	if deg.Faults == nil {
		t.Fatal("Degradation.Faults empty: fault accounting is silent")
	}
	for _, k := range []string{"chaos_reset", "chaos_http_503", "chaos_outage_503"} {
		if deg.Faults[k] == 0 {
			t.Errorf("fault counter %s = 0; the profile should have injected some (faults: %v)", k, deg.Faults)
		}
	}
	if deg.VisitRetries == 0 {
		t.Error("no visit retries under 10%% 503s + 5%% resets; retry path untested")
	}
	t.Logf("baseline=%d chaos=%d degradation=%+v", len(baseline.Records), len(res.Records), deg)
}

// TestCrawlChaosByteDeterministic: two runs with identical (ecosystem
// seed, chaos seed) must produce byte-identical results — records AND
// degradation report.
func TestCrawlChaosByteDeterministic(t *testing.T) {
	run := func() []byte {
		eco := newChaosEco(t, 0.002, acceptanceProfile())
		res, err := chaosCrawler(t, eco, nil).Run(eco.SeedURLs())
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(res, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				lo, hi := i-120, i+120
				if lo < 0 {
					lo = 0
				}
				if hi > len(a) {
					hi = len(a)
				}
				t.Fatalf("results diverge at byte %d:\nA: %s\nB: %s", i, a[lo:hi], b[lo:min2(hi, len(b))])
			}
		}
		t.Fatalf("results differ in length: %d vs %d", len(a), len(b))
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// tickCancelDriver cancels a context after a fixed number of scheduler
// ticks — a deterministic "kill -9" point inside the monitor loop.
type tickCancelDriver struct {
	PushDriver
	n, limit int
	cancel   context.CancelFunc
}

func (d *tickCancelDriver) Tick() int {
	d.n++
	if d.limit > 0 && d.n == d.limit {
		d.cancel()
	}
	return d.PushDriver.Tick()
}

// TestKillAndResumeConvergence: killing the crawler mid-window and
// resuming from its checkpoint must converge to the same record set as
// an uninterrupted run.
func TestKillAndResumeConvergence(t *testing.T) {
	prof := acceptanceProfile()

	// Uninterrupted reference run (also counts scheduler ticks so the
	// kill point lands mid-collection deterministically).
	ecoA := newChaosEco(t, 0.002, prof)
	counterA := &tickCancelDriver{PushDriver: ecoA}
	full, err := chaosCrawler(t, ecoA, func(c *Config) { c.Driver = counterA }).Run(ecoA.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Records) == 0 || counterA.n < 4 {
		t.Fatalf("reference run too small to test resume (records=%d ticks=%d)", len(full.Records), counterA.n)
	}

	ckpt := filepath.Join(t.TempDir(), "crawl.ckpt.json")

	// Killed run: cancelled halfway through the tick sequence.
	ecoB := newChaosEco(t, 0.002, prof)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killer := &tickCancelDriver{PushDriver: ecoB, limit: counterA.n / 2, cancel: cancel}
	partial, err := chaosCrawler(t, ecoB, func(c *Config) {
		c.Driver = killer
		c.CheckpointPath = ckpt
	}).RunContext(ctx, ecoB.SeedURLs())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run err = %v, want context.Canceled", err)
	}
	if len(partial.Records) >= len(full.Records) {
		t.Fatalf("kill fired too late: partial=%d full=%d", len(partial.Records), len(full.Records))
	}
	if partial.Degradation.CheckpointWrites == 0 {
		t.Fatal("killed run wrote no checkpoint")
	}

	// Resumed run: fresh ecosystem, same seeds, replay + merge.
	ecoC := newChaosEco(t, 0.002, prof)
	resumed, err := chaosCrawler(t, ecoC, func(c *Config) {
		c.CheckpointPath = ckpt
		c.Resume = true
	}).Run(ecoC.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}

	if !resumed.Degradation.ResumedFromCheckpoint {
		t.Error("resumed run did not load the checkpoint")
	}
	if got, want := resumed.Degradation.ReplayedRecords, len(partial.Records); got != want {
		t.Errorf("replayed %d checkpointed records, want %d", got, want)
	}
	if resumed.Degradation.OrphanedCheckpointRecords != 0 {
		t.Errorf("%d checkpoint records orphaned; deterministic replay should re-mint all",
			resumed.Degradation.OrphanedCheckpointRecords)
	}
	assertUniqueIDs(t, resumed.Records)

	a, _ := json.Marshal(full.Records)
	b, _ := json.Marshal(resumed.Records)
	if !bytes.Equal(a, b) {
		t.Fatalf("resumed record set differs from uninterrupted run: %d vs %d records",
			len(resumed.Records), len(full.Records))
	}
	t.Logf("full=%d partial=%d resumed=%d (replayed %d)",
		len(full.Records), len(partial.Records), len(resumed.Records),
		resumed.Degradation.ReplayedRecords)
}

// TestContainerCrashRecovery drives an aggressive crash plan and checks
// that containers die, are re-seeded within bounds, and the crawl still
// collects, with all of it visible in the report.
func TestContainerCrashRecovery(t *testing.T) {
	prof := &chaos.Profile{Seed: 5, ContainerCrashFraction: 0.35}
	eco := newChaosEco(t, 0.002, prof)
	res, err := chaosCrawler(t, eco, nil).Run(eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	deg := res.Degradation
	if deg.ContainersLost == 0 {
		t.Fatal("crash plan never fired; test is vacuous")
	}
	if deg.ContainersRecovered == 0 {
		t.Error("no container ever recovered from a crash")
	}
	if deg.ContainersRecovered > deg.ContainersLost {
		t.Errorf("recovered %d > lost %d", deg.ContainersRecovered, deg.ContainersLost)
	}
	if len(res.Records) == 0 {
		t.Fatal("crashes wiped out the whole crawl")
	}
	assertUniqueIDs(t, res.Records)
	if deg.Faults["chaos_container_crash"] == 0 {
		t.Errorf("crash counter missing from faults: %v", deg.Faults)
	}
	t.Logf("records=%d lost=%d recovered=%d", len(res.Records), deg.ContainersLost, deg.ContainersRecovered)
}

// TestCheckpointRoundTrip exercises the checkpoint file itself: write,
// atomic replace, load, version and device validation.
func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	cp := &Checkpoint{
		Version: CheckpointVersion,
		Device:  "desktop",
		NextID:  7,
		Records: []*WPNRecord{{ID: 3, Device: "desktop", Title: "t", SourceURL: "http://s.test/"}},
		Cursors: []ContainerCursor{{ID: 1, SeedURL: "http://s.test/", Collected: 1}},
	}
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	// Overwrite must be atomic-replace, not append.
	cp.NextID = 9
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NextID != 9 || len(got.Records) != 1 || got.Records[0].Title != "t" {
		t.Fatalf("round-tripped checkpoint %+v", got)
	}

	cp.Version = CheckpointVersion + 1
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("wrong-version checkpoint accepted")
	}
}
