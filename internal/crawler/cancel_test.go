package crawler

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"pushadminer/internal/browser"
)

func TestRunContextCancelled(t *testing.T) {
	eco := newEco(t, 0.002)
	c, err := New(Config{
		Clock:            eco.Clock,
		NewClient:        func() *http.Client { return eco.Net.ClientNoRedirect() },
		Driver:           eco,
		Pending:          eco.Push,
		Device:           browser.Desktop,
		CollectionWindow: 7 * 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before it even starts
	res, err := c.RunContext(ctx, eco.SeedURLs())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("partial result missing")
	}
	if len(res.Records) != 0 {
		t.Errorf("cancelled-before-start crawl produced %d records", len(res.Records))
	}
}

func TestRunContextBackgroundCompletes(t *testing.T) {
	eco := newEco(t, 0.002)
	c, err := New(Config{
		Clock:            eco.Clock,
		NewClient:        func() *http.Client { return eco.Net.ClientNoRedirect() },
		Driver:           eco,
		Pending:          eco.Push,
		Device:           browser.Desktop,
		CollectionWindow: 2 * 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunContext(context.Background(), eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Error("no records collected")
	}
}
