package crawler

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"pushadminer/internal/browser"
)

func TestRunContextCancelled(t *testing.T) {
	eco := newEco(t, 0.002)
	c, err := New(Config{
		Clock:            eco.Clock,
		NewClient:        func() *http.Client { return eco.Net.ClientNoRedirect() },
		Driver:           eco,
		Pending:          eco.Push,
		Device:           browser.Desktop,
		CollectionWindow: 7 * 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before it even starts
	res, err := c.RunContext(ctx, eco.SeedURLs())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("partial result missing")
	}
	if len(res.Records) != 0 {
		t.Errorf("cancelled-before-start crawl produced %d records", len(res.Records))
	}
}

// TestRunContextCancelledMidMonitor kills the crawl from inside the
// monitor loop (after a fixed number of scheduler ticks) and checks the
// final drain returns a coherent partial result: some but not all
// records, the context error, and no duplicates.
func TestRunContextCancelledMidMonitor(t *testing.T) {
	// Reference run to know the full record count and tick budget.
	ecoA := newEco(t, 0.002)
	counter := &tickCancelDriver{PushDriver: ecoA}
	full, err := chaosCrawler(t, ecoA, func(c *Config) { c.Driver = counter }).Run(ecoA.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Records) == 0 || counter.n < 4 {
		t.Fatalf("reference run too small (records=%d ticks=%d)", len(full.Records), counter.n)
	}

	ecoB := newEco(t, 0.002)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killer := &tickCancelDriver{PushDriver: ecoB, limit: counter.n / 2, cancel: cancel}
	partial, err := chaosCrawler(t, ecoB, func(c *Config) { c.Driver = killer }).RunContext(ctx, ecoB.SeedURLs())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if partial == nil {
		t.Fatal("partial result missing")
	}
	if len(partial.Records) == 0 {
		t.Error("mid-monitor cancel returned no records despite collecting before the kill")
	}
	if len(partial.Records) >= len(full.Records) {
		t.Errorf("cancel fired too late: partial=%d full=%d", len(partial.Records), len(full.Records))
	}
	// The final drain must not re-emit anything already collected.
	assertUniqueIDs(t, partial.Records)
	seen := make(map[string]bool, len(partial.Records))
	for _, r := range partial.Records {
		k := recordKey(r)
		if seen[k] {
			t.Errorf("duplicate record after cancel drain: %s %q", r.SourceURL, r.Title)
		}
		seen[k] = true
	}
}

func TestRunContextBackgroundCompletes(t *testing.T) {
	eco := newEco(t, 0.002)
	c, err := New(Config{
		Clock:            eco.Clock,
		NewClient:        func() *http.Client { return eco.Net.ClientNoRedirect() },
		Driver:           eco,
		Pending:          eco.Push,
		Device:           browser.Desktop,
		CollectionWindow: 2 * 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunContext(context.Background(), eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Error("no records collected")
	}
}
