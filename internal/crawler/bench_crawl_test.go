package crawler

// Crawl benchmark suite: the monitor event loop — the phase dominating
// a multi-day collection window — measured at two container-fleet sizes
// in serial (PumpWorkers=1) and parallel (PumpWorkers=MaxContainers)
// modes. scripts/bench.sh runs these and records BENCH_crawl.json; the
// serial/parallel parity test guarantees the modes agree byte-for-byte
// before the speedup counts.
//
// Run with:
//
//	make bench-crawl

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"

	"pushadminer/internal/browser"
	"pushadminer/internal/chaos"
	"pushadminer/internal/webeco"
)

// crawlSizes are the benchmarked fleet sizes with the ecosystem scale
// that yields at least that many registered containers (seed 11,
// desktop): scale 0.01 registers ~66, scale 0.05 ~290.
var crawlSizes = []struct {
	n     int
	scale float64
}{
	{50, 0.01},
	{200, 0.05},
}

// benchLatency models the WAN round-trip the paper's crawler was bound
// by: every request pays a fixed real-time delay at the vnet choke
// point (the simulated clock does not advance). The in-process vnet is
// otherwise latency-free, which would hide exactly the I/O overlap the
// parallel monitor exists to exploit — the paper ran 20–50 concurrent
// sessions because collection is I/O-bound, not CPU-bound. Latency
// draws are deterministic per request identity, so serial and parallel
// runs stay byte-identical.
func benchLatency() *chaos.Profile {
	return &chaos.Profile{
		Seed:            11,
		LatencyFraction: 1,
		LatencyMin:      time.Millisecond,
		LatencyMax:      time.Millisecond,
	}
}

var benchRecords int

// benchMonitor times only the monitor phase: each iteration rebuilds
// the ecosystem and re-runs the (untimed) seeding phase, trims the live
// fleet to exactly n containers, then times r.monitor alone.
func benchMonitor(b *testing.B, n int, scale float64, workers int) {
	b.ReportAllocs()
	flushW := workers
	if flushW == 0 {
		flushW = 32 // mirror the crawler's MaxContainers default
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eco, err := webeco.New(webeco.Config{Seed: 11, Scale: scale, Chaos: benchLatency(), FlushWorkers: flushW})
		if err != nil {
			b.Fatal(err)
		}
		c, err := New(Config{
			Clock:            eco.Clock,
			NewClient:        func() *http.Client { return eco.Net.ClientNoRedirect() },
			Driver:           eco,
			Pending:          eco.Push,
			Device:           browser.Desktop,
			CollectionWindow: 7 * 24 * time.Hour,
			PumpWorkers:      workers,
			BatchWindow:      time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		r := &run{
			c:        c,
			cfg:      &c.cfg,
			ctx:      context.Background(),
			res:      &Result{},
			occ:      make(map[string]int),
			restored: make(map[string]*WPNRecord),
		}
		live := r.seedPhase(eco.SeedURLs())
		if len(live) < n {
			b.Fatalf("scale %v registered %d containers, need %d", scale, len(live), n)
		}
		live = live[:n]
		b.StartTimer()
		r.monitor(live)
		b.StopTimer()
		benchRecords += len(r.res.Records)
		eco.Close()
		b.StartTimer()
	}
}

// BenchmarkCrawlMonitor measures the monitor event loop at 50 and 200
// containers. The acceptance bar: parallel at n=200 must beat serial
// ≥2× (BENCH_crawl.json records the ratio).
func BenchmarkCrawlMonitor(b *testing.B) {
	for _, size := range crawlSizes {
		b.Run(fmt.Sprintf("n=%d", size.n), func(b *testing.B) {
			b.Run("serial", func(b *testing.B) { benchMonitor(b, size.n, size.scale, 1) })
			b.Run("parallel", func(b *testing.B) { benchMonitor(b, size.n, size.scale, 0) })
		})
	}
}
