// Package crawler implements PushAdMiner's WPN crawler (§4 and §6.1):
// it visits seed URLs with instrumented browsers ("containers"), grants
// notification permission, keeps each container online for a monitoring
// window after its service worker registers, then suspends it and
// periodically resumes it to drain push messages queued at the push
// service — producing the WPN message dataset the analysis module mines.
//
// Time is fully simulated: the crawler drives the shared virtual clock
// and the ecosystem's push scheduler in one deterministic event loop.
//
// The crawler is built to survive the failures a months-long live crawl
// meets (and which internal/chaos injects deterministically): visits
// retry transient errors, push-service calls ride a shared per-host
// circuit breaker, containers that stop responding are declared crashed
// and re-seeded a bounded number of times, crawl state is periodically
// checkpointed to JSON and resumable, and every loss is tallied in the
// Result's Degradation report.
package crawler

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"pushadminer/internal/browser"
	"pushadminer/internal/fcm"
	"pushadminer/internal/httpx"
	"pushadminer/internal/serviceworker"
	"pushadminer/internal/simclock"
	"pushadminer/internal/telemetry"
	"pushadminer/internal/urlx"
	"pushadminer/internal/webpush"
)

// PushDriver is the ecosystem surface the crawler drives: flushing due
// push deliveries and peeking at the next scheduled one.
type PushDriver interface {
	Tick() int
	NextPushAt() (time.Time, bool)
}

// PendingChecker optionally lets the crawler skip HTTP polls for
// containers with no queued messages. The fcm.Service implements it.
type PendingChecker interface {
	Pending(token string) int
}

// Config configures a crawl.
type Config struct {
	// Clock is the shared simulated clock (the ecosystem's). Required.
	Clock *simclock.Simulated
	// NewClient returns an HTTP client routed through the virtual
	// network, not following redirects. Required.
	NewClient func() *http.Client
	// Driver flushes scheduled pushes. Required.
	Driver PushDriver
	// Pending, if non-nil, suppresses no-op polls.
	Pending PendingChecker
	// PushHost selects the push service host ("" = default).
	PushHost string

	// Device and RealDevice select the crawl environment.
	Device     browser.DeviceType
	RealDevice bool

	// MonitorWindow keeps a container online after SW registration
	// (15 minutes in the paper, chosen so 98% of first notifications
	// arrive while live).
	MonitorWindow time.Duration
	// ResumeInterval is how often suspended containers are resumed to
	// drain queued messages.
	ResumeInterval time.Duration
	// CollectionWindow is the total crawl duration after seeding.
	CollectionWindow time.Duration
	// ClickDelay is the instrumented auto-click delay.
	ClickDelay time.Duration
	// MaxNotificationsPerContainer caps runaway subscriptions.
	MaxNotificationsPerContainer int
	// MaxContainers is the number of containers visiting seed URLs in
	// parallel during the seeding phase (the paper ran 20–50 Docker
	// sessions at a time). Default 32.
	MaxContainers int
	// PumpWorkers bounds how many containers are pumped concurrently
	// within one monitor tick batch. The poll, push-dispatch, click,
	// and landing-page subscription phases all fan out: their traffic
	// uses per-container clients and per-container circuit breakers on
	// a frozen clock, and all cross-container state is folded on the
	// serial merge path, so results are byte-identical at every worker
	// count. 1 forces the serial reference path; <= 0 defaults to
	// MaxContainers.
	PumpWorkers int
	// BatchWindow coalesces monitor ticks: instead of waking for every
	// individual push delivery or resume, the event loop advances to
	// the first due event plus this window, pumping everything that
	// came due inside it as one batch — which is what gives the
	// parallel phases batches worth fanning out over (real push-ad
	// deliveries spread across hours; a per-event loop pumps them one
	// at a time). 0 (the default) keeps exact per-event stepping.
	// Identical windows produce identical results at any PumpWorkers.
	BatchWindow time.Duration

	// --- robustness / recovery ---

	// VisitAttempts bounds how many times one URL is (re)visited when
	// the navigation fails or answers 5xx. Default 3.
	VisitAttempts int
	// CrashThreshold is how many consecutive failed polls mark a
	// container as crashed. Default 3.
	CrashThreshold int
	// MaxRecoveries bounds how many times a crashed container is
	// re-seeded (fresh browser, re-visit, re-subscribe). Default 2.
	MaxRecoveries int
	// CrashPlan, if non-nil, injects container crashes: it is asked on
	// every resume cycle whether this container's process dies now.
	// Wire webeco.Ecosystem.CrashPlan here to drive it from a chaos
	// profile.
	CrashPlan func(clientID string, cycle int) bool
	// FaultCounts, if non-nil, snapshots external fault counters
	// (webeco.Ecosystem.FaultCounts) into the Degradation report.
	FaultCounts func() map[string]int

	// --- checkpointing ---

	// CheckpointPath, when set, enables periodic JSON checkpoints of
	// the crawl state (records + per-container cursors), written
	// atomically. A checkpoint is also written on cancellation and at
	// completion.
	CheckpointPath string
	// CheckpointEvery is the simulated-time interval between periodic
	// checkpoint writes. Default 6h.
	CheckpointEvery time.Duration
	// Resume, with CheckpointPath, merges a previous checkpoint into
	// this run: the deterministic replay deduplicates re-collected
	// records against the checkpointed ones, so a killed-and-resumed
	// crawl converges to the same record set as an uninterrupted one.
	// A missing checkpoint file is not an error (fresh start).
	Resume bool

	// --- telemetry ---

	// Metrics, if set, receives crawler counters mirroring the
	// Degradation report (visit retries/failures, poll failures, breaker
	// fast-fails, containers lost/recovered, checkpoint writes), a
	// per-container pump-latency histogram, breaker transition counts,
	// and is threaded into every browser the crawl creates. Nil disables
	// with no overhead on the pump hot path beyond one nil check.
	Metrics *telemetry.Registry
	// Tracer, if set, records every browser event as a parent-linked
	// span reconstructing WPN attack chains (exported as JSONL
	// compatible with internal/audit replay).
	Tracer *telemetry.Tracer
}

// crawlMetrics holds the crawler's preresolved instruments. Counters
// are created up front (even if never incremented) so snapshot key sets
// are deterministic across runs and can be golden-tested. The zero
// value (telemetry disabled) holds nil instruments, whose methods all
// no-op; enabled gates the one site that would otherwise pay for a
// timestamp (pump latency).
type crawlMetrics struct {
	enabled             bool
	visits              *telemetry.Counter
	visitRetries        *telemetry.Counter
	visitFailures       *telemetry.Counter
	visitsAborted       *telemetry.Counter
	pollFailures        *telemetry.Counter
	breakerFastFails    *telemetry.Counter
	containersLost      *telemetry.Counter
	containersRecovered *telemetry.Counter
	checkpointWrites    *telemetry.Counter
	records             *telemetry.Counter
	pumpLatency         *telemetry.Histogram
	batchSize           *telemetry.Histogram
	pumpWorkers         *telemetry.Gauge
}

func newCrawlMetrics(reg *telemetry.Registry) crawlMetrics {
	if reg == nil {
		return crawlMetrics{}
	}
	return crawlMetrics{
		enabled:             true,
		visits:              reg.Counter("crawler_visits"),
		visitRetries:        reg.Counter("crawler_visit_retries"),
		visitFailures:       reg.Counter("crawler_visit_failures"),
		visitsAborted:       reg.Counter("crawler_visits_aborted"),
		pollFailures:        reg.Counter("crawler_poll_failures"),
		breakerFastFails:    reg.Counter("crawler_breaker_fast_fails"),
		containersLost:      reg.Counter("crawler_containers_lost"),
		containersRecovered: reg.Counter("crawler_containers_recovered"),
		checkpointWrites:    reg.Counter("crawler_checkpoint_writes"),
		records:             reg.Counter("crawler_records_emitted"),
		pumpLatency:         reg.Histogram("crawler_pump_seconds", telemetry.LatencyBuckets),
		batchSize:           reg.Histogram("crawler_pump_batch_size", telemetry.SizeBuckets),
		pumpWorkers:         reg.Gauge("crawler_pump_workers"),
	}
}

// WithDefaults returns the config with every unset field filled in,
// exactly as New applies them. The fleet coordinator uses it so its
// event loop and its shard workers agree on effective knob values.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.MonitorWindow <= 0 {
		c.MonitorWindow = 15 * time.Minute
	}
	if c.ResumeInterval <= 0 {
		c.ResumeInterval = 24 * time.Hour
	}
	if c.CollectionWindow <= 0 {
		c.CollectionWindow = 14 * 24 * time.Hour
	}
	if c.ClickDelay <= 0 {
		c.ClickDelay = 3 * time.Second
	}
	if c.MaxNotificationsPerContainer <= 0 {
		c.MaxNotificationsPerContainer = 64
	}
	if c.MaxContainers <= 0 {
		c.MaxContainers = 32
	}
	if c.PumpWorkers <= 0 {
		c.PumpWorkers = c.MaxContainers
	}
	if c.VisitAttempts <= 0 {
		// A failed seed visit forfeits a container's entire WPN stream,
		// so visits get a generous retry budget: at 4 attempts even a
		// 15% per-request fault rate loses less than one visit in 10⁵.
		c.VisitAttempts = 4
	}
	if c.CrashThreshold <= 0 {
		c.CrashThreshold = 3
	}
	if c.MaxRecoveries <= 0 {
		c.MaxRecoveries = 2
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 6 * time.Hour
	}
	return c
}

// WPNRecord is one collected web push notification with all metadata the
// instrumented browser observed — the unit of analysis for the mining
// pipeline (§5).
type WPNRecord struct {
	ID     int    `json:"id"`
	Device string `json:"device"`

	// SourceURL is the page whose visit created the subscription that
	// pushed this message; SourceDomain is its eSLD.
	SourceURL    string `json:"source_url"`
	SourceDomain string `json:"source_domain"`
	SWURL        string `json:"sw_url"`

	Title   string `json:"title"`
	Body    string `json:"body"`
	IconURL string `json:"icon_url,omitempty"`

	ShownAt      time.Time `json:"shown_at"`
	RegisteredAt time.Time `json:"registered_at"`
	ClickedAt    time.Time `json:"clicked_at"`

	// Click consequences.
	TargetURL      string   `json:"target_url,omitempty"`
	RedirectChain  []string `json:"redirect_chain,omitempty"`
	LandingURL     string   `json:"landing_url,omitempty"`
	LandingTitle   string   `json:"landing_title,omitempty"`
	LandingContent string   `json:"landing_content,omitempty"`
	ScreenshotHash string   `json:"screenshot_hash,omitempty"`
	// LandingSimHash is the landing page's locality-sensitive content
	// fingerprint (hex), used for visual-similarity comparison during
	// manual verification.
	LandingSimHash string `json:"landing_simhash,omitempty"`
	Crashed        bool   `json:"crashed,omitempty"`

	// SW network activity during push handling and click handling.
	SWRequests []serviceworker.RequestRecord `json:"sw_requests,omitempty"`

	// PayloadAdID is ground-truth plumbing for evaluation only; the
	// mining pipeline must not read it.
	PayloadAdID string `json:"payload_ad_id,omitempty"`
}

// ValidLanding reports whether the click produced a usable landing page
// (the §6.2 filter: 12,262 of 21,541 collected WPNs had one).
func (r *WPNRecord) ValidLanding() bool {
	return !r.Crashed && r.LandingURL != ""
}

// Degradation tallies everything a crawl lost or spent surviving
// faults, so no loss is silent. All counters are deterministic per
// (ecosystem seed, chaos seed).
type Degradation struct {
	// Faults mirrors the ecosystem's fault counters (chaos injector
	// stats, push sends retried/abandoned, queue collapses).
	Faults map[string]int `json:"faults,omitempty"`
	// VisitRetries / VisitFailures count re-attempted visits and
	// visits that stayed dead after all attempts.
	VisitRetries  int `json:"visit_retries,omitempty"`
	VisitFailures int `json:"visit_failures,omitempty"`
	// VisitsAborted counts visit retry ladders cut short by context
	// cancellation (the visit is abandoned, not failed).
	VisitsAborted int `json:"visits_aborted,omitempty"`
	// PollFailures counts push polls that failed after retries.
	PollFailures int `json:"poll_failures,omitempty"`
	// BreakerFastFails counts polls refused instantly by an open
	// circuit (not real failures: the breaker already knew).
	BreakerFastFails int `json:"breaker_fast_fails,omitempty"`
	// DroppedNotifications counts notifications the browser refused to
	// display (e.g. untitled after a dead ad fetch).
	DroppedNotifications int `json:"dropped_notifications,omitempty"`
	// ContainersLost / ContainersRecovered track container crashes and
	// successful re-seeds.
	ContainersLost      int `json:"containers_lost,omitempty"`
	ContainersRecovered int `json:"containers_recovered,omitempty"`
	// RecordsDroppedEst estimates records that can no longer arrive:
	// messages still queued for subscriptions lost in crashes.
	RecordsDroppedEst int `json:"records_dropped_est,omitempty"`
	// CheckpointWrites counts successful checkpoint writes.
	CheckpointWrites int `json:"checkpoint_writes,omitempty"`
	// CheckpointFallbacks counts resumes that found the primary
	// checkpoint unreadable (truncated or corrupt JSON, e.g. after a
	// mid-write crash) and fell back to the rotated .bak copy.
	CheckpointFallbacks int `json:"checkpoint_fallbacks,omitempty"`
	// ResumedFromCheckpoint marks a run that loaded a checkpoint;
	// ReplayedRecords counts records deduplicated against it, and
	// OrphanedCheckpointRecords counts checkpointed records the replay
	// did not re-mint (kept, appended at the end).
	ResumedFromCheckpoint     bool `json:"resumed_from_checkpoint,omitempty"`
	ReplayedRecords           int  `json:"replayed_records,omitempty"`
	OrphanedCheckpointRecords int  `json:"orphaned_checkpoint_records,omitempty"`
}

// Merge adds o's tallies into d: counters sum, flags OR, and fault
// maps fold key-wise. The fleet coordinator uses it to aggregate
// per-shard Degradation reports into one — because every tally is
// per-event and containers are partitioned across shards, the merged
// report equals the single-process one.
func (d *Degradation) Merge(o Degradation) {
	if len(o.Faults) > 0 {
		if d.Faults == nil {
			d.Faults = make(map[string]int, len(o.Faults))
		}
		for k, v := range o.Faults {
			d.Faults[k] += v
		}
	}
	d.VisitRetries += o.VisitRetries
	d.VisitFailures += o.VisitFailures
	d.VisitsAborted += o.VisitsAborted
	d.PollFailures += o.PollFailures
	d.BreakerFastFails += o.BreakerFastFails
	d.DroppedNotifications += o.DroppedNotifications
	d.ContainersLost += o.ContainersLost
	d.ContainersRecovered += o.ContainersRecovered
	d.RecordsDroppedEst += o.RecordsDroppedEst
	d.CheckpointWrites += o.CheckpointWrites
	d.CheckpointFallbacks += o.CheckpointFallbacks
	d.ResumedFromCheckpoint = d.ResumedFromCheckpoint || o.ResumedFromCheckpoint
	d.ReplayedRecords += o.ReplayedRecords
	d.OrphanedCheckpointRecords += o.OrphanedCheckpointRecords
}

// Result is the output of one crawl.
type Result struct {
	SeedURLs       []string
	NPRURLs        []string // seed URLs that requested notification permission
	AdditionalURLs []string // URLs discovered by clicking notifications that also requested permission
	Records        []*WPNRecord
	Containers     int
	// Degradation reports faults seen and work lost during the crawl.
	Degradation Degradation
}

// container is one isolated browsing session (one Docker container in
// the paper's deployment).
type container struct {
	id           int
	seedURL      string
	clientID     string
	brk          *httpx.Breaker
	br           *browser.Browser
	registeredAt time.Time
	activeUntil  time.Time
	nextResume   time.Time
	collected    int
	// cycles counts resume cycles (CrashPlan input); recoveries counts
	// re-seeds after crashes; pollFails counts consecutive failed
	// polls; dead marks a container given up on.
	cycles     int
	recoveries int
	pollFails  int
	dead       bool
	// sourceByToken maps each subscription token to the URL whose visit
	// created it, so records name the right source when a container
	// holds several registrations (seed + landing-page subscriptions).
	sourceByToken map[string]string
	// regTimeByToken maps each token to its registration instant.
	regTimeByToken map[string]time.Time
}

type containerHeap []*container

func (h containerHeap) Len() int            { return len(h) }
func (h containerHeap) Less(i, j int) bool  { return h[i].nextResume.Before(h[j].nextResume) }
func (h containerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *containerHeap) Push(x interface{}) { *h = append(*h, x.(*container)) }
func (h *containerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}

// Crawler runs crawls.
type Crawler struct {
	cfg    Config
	tel    crawlMetrics // zero value when telemetry is disabled
	nextID int
}

// New creates a Crawler.
func New(cfg Config) (*Crawler, error) {
	if cfg.Clock == nil || cfg.NewClient == nil || cfg.Driver == nil {
		return nil, fmt.Errorf("crawler: Clock, NewClient and Driver are required")
	}
	cfg = cfg.withDefaults()
	return &Crawler{cfg: cfg, tel: newCrawlMetrics(cfg.Metrics)}, nil
}

// newBreaker builds one container's private push-service circuit
// breaker. Each container owns its breaker — like the paper's
// independent Docker sessions, every browser discovers a push-service
// outage on its own — so breaker state is a pure function of that
// container's request sequence and polls, registrations, and landing
// visits can fan out across containers without request interleaving
// touching breaker decisions. All containers report transitions into
// the same ledger family.
func (c *Crawler) newBreaker() *httpx.Breaker {
	// Threshold deliberately below CrashThreshold: a sick push
	// service must trip the circuit (fast-fails, not counted
	// against containers) before any single container accumulates
	// enough poll failures to be misdiagnosed as crashed.
	b := httpx.NewBreaker(c.cfg.Clock, httpx.BreakerConfig{Threshold: 2})
	if c.cfg.Metrics != nil {
		b.SetTransitions(c.cfg.Metrics.Family("breaker_transitions", "edge"))
	}
	return b
}

// Run crawls the seed URLs with background context; see RunContext.
func (c *Crawler) Run(seeds []string) (*Result, error) {
	return c.RunContext(context.Background(), seeds)
}

// run is the state of one RunContext call: the result under
// construction, degradation tallies, and checkpoint/resume bookkeeping.
type run struct {
	c   *Crawler
	cfg *Config
	ctx context.Context
	res *Result

	// mu guards Degradation counters during the parallel seeding phase
	// (the monitor loop is single-threaded).
	mu sync.Mutex

	// occ counts occurrences of each record content key minted so far;
	// restored maps "key<RS>occurrence" to checkpointed records not yet
	// matched by the replay.
	occ      map[string]int
	restored map[string]*WPNRecord
	cpNextID int

	// lostTokens are subscriptions that died with crashed containers.
	lostTokens []string

	end            time.Time
	lastCheckpoint time.Time
}

// RunContext crawls the seed URLs: visits each in its own container,
// then runs the monitoring event loop for the collection window,
// gathering every notification pushed to any container. Cancelling ctx
// stops the crawl at the next safe point, writes a checkpoint if
// configured, and returns the records collected so far along with
// ctx.Err().
func (c *Crawler) RunContext(ctx context.Context, seeds []string) (*Result, error) {
	res := &Result{SeedURLs: seeds}
	r := &run{
		c:        c,
		cfg:      &c.cfg,
		ctx:      ctx,
		res:      res,
		occ:      make(map[string]int),
		restored: make(map[string]*WPNRecord),
	}
	if c.cfg.Resume && c.cfg.CheckpointPath != "" {
		if err := r.loadCheckpoint(); err != nil {
			return res, err
		}
	}

	live := r.seedPhase(seeds)
	res.Containers = len(live)

	r.monitor(live)
	r.finish(live)
	return res, ctx.Err()
}

// bump applies a Degradation mutation under the run lock (needed only
// for the parallel seeding phase, but always taken for simplicity).
func (r *run) bump(f func(d *Degradation)) {
	r.mu.Lock()
	f(&r.res.Degradation)
	r.mu.Unlock()
}

// seedPhase visits every URL in parallel container batches (the paper's
// 20–50 concurrent Docker sessions) and keeps containers whose visit
// produced a push subscription.
func (r *run) seedPhase(seeds []string) []*container {
	containers := make([]*container, len(seeds))
	for i, u := range seeds {
		containers[i] = r.c.newContainer(u)
	}
	live, outcomes := r.seedContainers(containers, seeds)
	for i, oc := range outcomes {
		if oc.requested {
			r.res.NPRURLs = append(r.res.NPRURLs, seeds[i])
		}
	}
	return live
}

// seedOutcome classifies one seed visit: did the page request
// notification permission, and did the visit register a subscription.
type seedOutcome struct {
	requested  bool
	registered bool
}

// seedContainers visits urls[i] with containers[i] in parallel (bounded
// by MaxContainers) and folds the outcomes serially in seed order:
// containers whose visit produced a push subscription become live.
// Visits do not advance the simulated clock, so parallelism cannot
// reorder time. Shared by the single-process seed phase and shard
// workers (which pre-build containers with global ids).
func (r *run) seedContainers(containers []*container, urls []string) ([]*container, []seedOutcome) {
	type visitOutcome struct {
		ct        *container
		requested bool
		token     string
	}
	outcomes := make([]visitOutcome, len(urls))
	sem := make(chan struct{}, r.cfg.MaxContainers)
	var wg sync.WaitGroup
	for i, u := range urls {
		if r.ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, u string) {
			defer wg.Done()
			defer func() { <-sem }()
			if r.ctx.Err() != nil {
				return
			}
			ct := containers[i]
			vr, err := r.visitRetry(ct, u)
			if err != nil {
				return // dead site after retries: container discarded
			}
			oc := visitOutcome{requested: vr.RequestedPermission}
			if vr.Registration != nil {
				oc.ct = ct
				oc.token = vr.Registration.Sub.Token
			}
			outcomes[i] = oc
		}(i, u)
	}
	wg.Wait()

	var live []*container
	folded := make([]seedOutcome, len(urls))
	now := r.cfg.Clock.Now()
	for i, oc := range outcomes {
		folded[i] = seedOutcome{requested: oc.requested, registered: oc.ct != nil}
		if oc.ct == nil {
			continue
		}
		ct := oc.ct
		ct.registeredAt = now
		ct.activeUntil = now.Add(r.cfg.MonitorWindow)
		ct.nextResume = now.Add(r.cfg.ResumeInterval)
		ct.sourceByToken[oc.token] = urls[i]
		ct.regTimeByToken[oc.token] = now
		live = append(live, ct)
	}
	return live, folded
}

// visitRetry visits a URL with bounded retries. A visit is retried when
// the navigation errored (reset, truncation, blackhole, dead announce)
// or the page answered 5xx/429 — a real crawler does not write a site
// off on one transient failure. Cancellation is checked before every
// attempt, so a cancelled crawl never sits out a full retry ladder; the
// abandoned visit is tallied as aborted, not failed.
func (r *run) visitRetry(ct *container, u string) (*browser.VisitResult, error) {
	var (
		vr  *browser.VisitResult
		err error
	)
	for attempt := 1; attempt <= r.cfg.VisitAttempts; attempt++ {
		if cerr := r.ctx.Err(); cerr != nil {
			r.bump(func(d *Degradation) { d.VisitsAborted++ })
			r.c.tel.visitsAborted.Inc()
			return vr, cerr
		}
		if attempt > 1 {
			r.bump(func(d *Degradation) { d.VisitRetries++ })
			r.c.tel.visitRetries.Inc()
		}
		r.c.tel.visits.Inc()
		vr, err = ct.br.Visit(u)
		if err == nil && !transientStatus(vr) {
			return vr, nil
		}
	}
	r.bump(func(d *Degradation) { d.VisitFailures++ })
	r.c.tel.visitFailures.Inc()
	if err == nil {
		err = fmt.Errorf("crawler: visit %s: status %d after %d attempts",
			u, vr.Navigation.Status, r.cfg.VisitAttempts)
	}
	return vr, err
}

// transientStatus reports a navigation that "succeeded" with a status
// that merits a retry (injected 503s are not errors to net/http).
func transientStatus(vr *browser.VisitResult) bool {
	nav := vr.Navigation
	return nav != nil && (nav.Status >= 500 || nav.Status == http.StatusTooManyRequests)
}

func (c *Crawler) clientID(seedURL string) string {
	return fmt.Sprintf("%s#%s", seedURL, c.cfg.Device)
}

func (c *Crawler) newBrowser(seedURL string, brk *httpx.Breaker) *browser.Browser {
	return browser.New(browser.Config{
		Clock:       c.cfg.Clock,
		Client:      c.cfg.NewClient(),
		Device:      c.cfg.Device,
		RealDevice:  c.cfg.RealDevice,
		ClickDelay:  c.cfg.ClickDelay,
		ClientID:    c.clientID(seedURL),
		PushBreaker: brk,
		Metrics:     c.cfg.Metrics,
		Tracer:      c.cfg.Tracer,
	})
}

func (c *Crawler) newContainer(seedURL string) *container {
	c.nextID++
	return c.newContainerWithID(c.nextID, seedURL)
}

// newContainerWithID builds a container with an explicit id instead of
// minting one from the crawler's counter. Shard workers use it so a
// container's id is its position in the *global* seed list regardless of
// which shard owns it — the invariant the coordinator's id-order merge
// and ID minting depend on.
func (c *Crawler) newContainerWithID(id int, seedURL string) *container {
	brk := c.newBreaker()
	return &container{
		id:             id,
		seedURL:        seedURL,
		clientID:       c.clientID(seedURL),
		brk:            brk,
		br:             c.newBrowser(seedURL, brk),
		sourceByToken:  make(map[string]string),
		regTimeByToken: make(map[string]time.Time),
	}
}

// monitor is the unified event loop: it advances the simulated clock to
// each push delivery or container resume, flushes the scheduler, pumps
// the due containers as one tick batch, processes notification
// auto-clicks, and periodically checkpoints.
func (r *run) monitor(live []*container) {
	clock := r.cfg.Clock
	r.end = clock.Now().Add(r.cfg.CollectionWindow)
	r.lastCheckpoint = clock.Now()
	r.c.tel.pumpWorkers.Set(int64(r.cfg.PumpWorkers))

	resumes := make(containerHeap, len(live))
	copy(resumes, live)
	heap.Init(&resumes)

	for {
		if r.ctx.Err() != nil {
			return // finish() writes the cancellation checkpoint
		}
		now := clock.Now()
		if !now.Before(r.end) {
			break
		}
		// Next event: a scheduled push or a container resume.
		next := r.end
		if at, ok := r.cfg.Driver.NextPushAt(); ok && at.Before(next) {
			next = at
		}
		if len(resumes) > 0 && resumes[0].nextResume.Before(next) {
			next = resumes[0].nextResume
		}
		// Tick coalescing: step past the first due event by the batch
		// window so everything due inside it is pumped as one batch.
		if w := r.cfg.BatchWindow; w > 0 && next.Before(r.end) {
			if q := next.Add(w); q.Before(r.end) {
				next = q
			} else {
				next = r.end
			}
		}
		if next.After(now) {
			clock.Advance(next.Sub(now))
			now = next
		}

		r.cfg.Driver.Tick()

		r.pumpBatch(r.collectDue(&resumes, live, now))

		r.maybeCheckpoint(live)

		// Safety: if nothing is scheduled and no resumes remain, stop.
		if _, ok := r.cfg.Driver.NextPushAt(); !ok && len(resumes) == 0 {
			break
		}
	}

	// Final drain at the end of the window, respecting the
	// per-container notification cap like every other pump site.
	r.pumpBatch(r.finalBatch(live))
}

// batchItem is one container's slot in a tick batch: the messages its
// poll returned, the click outcomes and landing-page visits of its
// parallel phases, and its accumulated pump wall-time (telemetry
// only). Each item is owned by exactly one goroutine during the
// fan-out phases.
type batchItem struct {
	ct       *container
	polled   bool
	pollErr  error
	msgs     []webpush.Message
	outcomes []browser.ClickOutcome
	visits   []landingVisit
	elapsed  time.Duration
}

// landingVisit is the outcome of one landing-page subscription visit,
// aligned index-for-index with a batchItem's click outcomes (zero
// value where the outcome's landing page requested no permission).
type landingVisit struct {
	url string
	vr  *browser.VisitResult
	err error
}

// collectDue gathers the tick's batch: containers resumed from the
// suspension heap plus containers still inside their live monitoring
// window, deduplicated (a container due on both paths is pumped once)
// and sorted by container id so every later phase iterates in one
// stable order. Crash-plan evaluation and heap bookkeeping stay here,
// on the serial path.
func (r *run) collectDue(resumes *containerHeap, live []*container, now time.Time) []*batchItem {
	var batch []*batchItem
	inBatch := make(map[int]bool)

	// Resume containers due now.
	for len(*resumes) > 0 && !(*resumes)[0].nextResume.After(now) {
		ct := heap.Pop(resumes).(*container)
		ct.cycles++
		if !ct.dead && r.cfg.CrashPlan != nil && r.cfg.CrashPlan(ct.clientID, ct.cycles) {
			r.crashContainer(ct)
		}
		if !ct.dead && !inBatch[ct.id] {
			inBatch[ct.id] = true
			batch = append(batch, &batchItem{ct: ct})
		}
		ct.nextResume = now.Add(r.cfg.ResumeInterval)
		if !ct.dead && ct.nextResume.Before(r.end) && ct.collected < r.cfg.MaxNotificationsPerContainer {
			heap.Push(resumes, ct)
		}
	}

	// Containers still inside their live monitoring window.
	for _, ct := range live {
		if !ct.dead && !now.After(ct.activeUntil) && ct.collected < r.cfg.MaxNotificationsPerContainer && !inBatch[ct.id] {
			inBatch[ct.id] = true
			batch = append(batch, &batchItem{ct: ct})
		}
	}

	sort.Slice(batch, func(i, j int) bool { return batch[i].ct.id < batch[j].ct.id })
	return batch
}

// finalBatch builds the end-of-window drain batch: live containers that
// have not yet hit the per-container notification cap.
func (r *run) finalBatch(live []*container) []*batchItem {
	var batch []*batchItem
	for _, ct := range live {
		if !ct.dead && ct.collected < r.cfg.MaxNotificationsPerContainer {
			batch = append(batch, &batchItem{ct: ct})
		}
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].ct.id < batch[j].ct.id })
	return batch
}

// pumpBatch processes one tick's due containers in phases:
//
//  1. poll (parallel, clock frozen) — each poll touches only its
//     container's browser, client, and private circuit breaker — then
//     a serial classification sweep in ascending container id:
//     Degradation tallies, poll-failure crash detection, and the
//     recovery re-seed crashContainer may run all touch shared state;
//  2. push dispatch (parallel, clock frozen) — per-container ad
//     fetches and notification display, ShownAt identical for the
//     whole batch;
//  3. one ClickDelay advance for the batch (the clock never moves
//     inside a phase, so simulated time cannot reorder);
//  4. auto-clicks (parallel, clock frozen) — redirect chains and
//     landing pages, the crawl's dominant HTTP cost — then the
//     landing pages that request permission (§6.2) are visited and
//     subscribed in a second parallel sweep (per-container traffic;
//     token minting is registration-identity-keyed, so cross-container
//     arrival order cannot leak into the output);
//  5. merge (serial, ascending container id) — record emission, ID
//     minting, checkpoint-replay dedup, and folding the landing-page
//     subscriptions into result and container state.
//
// Every phase iterates the batch in the same stable order, fault and
// latency draws are keyed per container, and all cross-container state
// is touched only in the serial steps, which is what makes the result
// byte-identical at any PumpWorkers count.
func (r *run) pumpBatch(batch []*batchItem) {
	if len(batch) == 0 {
		return
	}
	tel := r.c.tel.enabled
	if tel {
		r.c.tel.batchSize.Observe(float64(len(batch)))
	}

	if !r.phasePoll(batch, tel) {
		r.observeBatchLatency(batch, tel)
		return
	}

	r.phaseDispatch(batch, tel)

	// Phase 3: one click-delay advance for the whole batch.
	r.cfg.Clock.Advance(r.cfg.ClickDelay)

	r.phaseClick(batch, tel)

	// Phase 5: serial merge in container-id order.
	for _, it := range batch {
		recs, additional := r.foldItem(it)
		for _, rec := range recs {
			r.emit(rec)
		}
		r.res.AdditionalURLs = append(r.res.AdditionalURLs, additional...)
	}
	r.observeBatchLatency(batch, tel)
}

// phasePoll is pump phase 1: parallel polls at the frozen tick instant,
// then a serial classification sweep in ascending container id
// (Degradation tallies, poll-failure crash detection, recovery
// re-seeds). Reports whether any container received messages — when no
// shard in a fleet did, the tick ends here with no clock advance.
func (r *run) phasePoll(batch []*batchItem, tel bool) bool {
	r.forEach(batch, tel, func(it *batchItem) {
		it.polled, it.msgs, it.pollErr = r.pollHTTP(it.ct)
	})
	any := false
	for _, it := range batch {
		r.classifyPoll(it.ct, it.polled, it.pollErr)
		if len(it.msgs) > 0 {
			any = true
		}
	}
	return any
}

// phaseDispatch is pump phase 2: parallel push dispatch at the frozen
// poll instant — per-container ad fetches and notification display,
// ShownAt identical for the whole batch.
func (r *run) phaseDispatch(batch []*batchItem, tel bool) {
	r.forEach(batch, tel, func(it *batchItem) {
		if len(it.msgs) > 0 {
			it.ct.br.DispatchPushes(it.msgs)
		}
	})
}

// phaseClick is pump phase 4: parallel auto-clicks at the frozen
// post-delay instant, then parallel landing-page subscription visits.
func (r *run) phaseClick(batch []*batchItem, tel bool) {
	r.forEach(batch, tel, func(it *batchItem) {
		if len(it.msgs) > 0 {
			it.outcomes = it.ct.br.ProcessClicks()
		}
	})
	r.forEach(batch, tel, func(it *batchItem) {
		if len(it.outcomes) == 0 {
			return
		}
		it.visits = make([]landingVisit, len(it.outcomes))
		for i, oc := range it.outcomes {
			if nav := oc.Navigation; nav != nil && nav.Doc != nil &&
				nav.Doc.RequestsNotification && !nav.Crashed {
				vr, err := r.visitRetry(it.ct, nav.FinalURL)
				it.visits[i] = landingVisit{url: nav.FinalURL, vr: vr, err: err}
			}
		}
	})
}

// foldItem folds one pumped batch item into its container's state (the
// per-container half of phase 5): it builds the item's records in
// outcome order — IDs unassigned, the caller mints on its serial path —
// and returns the §6.2 additional-subscription URLs whose landing pages
// phase 4 subscribed right there.
func (r *run) foldItem(it *batchItem) (recs []*WPNRecord, additional []string) {
	ct := it.ct
	for i, oc := range it.outcomes {
		recs = append(recs, r.c.record(ct, oc))
		ct.collected++
		if v := it.visits[i]; v.err == nil && v.vr != nil && v.vr.Registration != nil {
			additional = append(additional, v.url)
			ct.sourceByToken[v.vr.Registration.Sub.Token] = v.url
			ct.regTimeByToken[v.vr.Registration.Sub.Token] = r.cfg.Clock.Now()
			// Re-opening the container's live window mirrors the
			// paper keeping sessions alive after new registrations.
			ct.activeUntil = r.cfg.Clock.Now().Add(r.cfg.MonitorWindow)
		}
	}
	return recs, additional
}

// observeBatchLatency records each item's accumulated pump wall-time.
func (r *run) observeBatchLatency(batch []*batchItem, tel bool) {
	if !tel {
		return
	}
	for _, it := range batch {
		r.c.tel.pumpLatency.Observe(it.elapsed.Seconds())
	}
}

// forEach runs f over the batch on PumpWorkers goroutines (the seeding
// phase's bounded-semaphore discipline), or inline when the pool would
// be pointless. When timed, each item's wall-time accrues to its own
// slot — items are goroutine-private, so no lock is needed.
func (r *run) forEach(batch []*batchItem, timed bool, f func(*batchItem)) {
	run := f
	if timed {
		run = func(it *batchItem) {
			start := time.Now()
			f(it)
			it.elapsed += time.Since(start)
		}
	}
	if r.cfg.PumpWorkers <= 1 || len(batch) == 1 {
		for _, it := range batch {
			run(it)
		}
		return
	}
	sem := make(chan struct{}, r.cfg.PumpWorkers)
	var wg sync.WaitGroup
	for _, it := range batch {
		wg.Add(1)
		sem <- struct{}{}
		go func(it *batchItem) {
			defer wg.Done()
			defer func() { <-sem }()
			run(it)
		}(it)
	}
	wg.Wait()
}

// pollHTTP performs one container's push-service poll: the skip of
// containers with nothing queued and the HTTP round trip. Safe to fan
// out — it touches only the container's own browser, client, and
// private breaker. Folding the outcome into shared state stays on the
// serial path (classifyPoll).
func (r *run) pollHTTP(ct *container) (polled bool, msgs []webpush.Message, err error) {
	if r.cfg.Pending != nil && !r.hasPending(ct) {
		return false, nil, nil
	}
	msgs, err = ct.br.PollPush(r.cfg.PushHost)
	return true, msgs, err
}

// classifyPoll folds one poll's outcome into shared state: Degradation
// tallies and poll-failure crash detection, including the recovery
// re-seed crashContainer may run. Open-circuit fast-fails do not feed
// crash detection (the push service being down says nothing about the
// container).
func (r *run) classifyPoll(ct *container, polled bool, err error) {
	if !polled {
		return
	}
	if err == nil {
		ct.pollFails = 0
		return
	}
	if errors.Is(err, httpx.ErrCircuitOpen) {
		r.bump(func(d *Degradation) { d.BreakerFastFails++ })
		r.c.tel.breakerFastFails.Inc()
		return
	}
	r.bump(func(d *Degradation) { d.PollFailures++ })
	r.c.tel.pollFailures.Inc()
	// Attribute the failure: if this failure tripped (or probed) the
	// container's view of the push host's circuit, the service is sick
	// — that says nothing about the container, so it must not feed
	// crash detection.
	if ct.brk.State(r.pushHostName()) == "closed" {
		ct.pollFails++
		if ct.pollFails >= r.cfg.CrashThreshold {
			ct.pollFails = 0
			r.crashContainer(ct)
		}
	}
}

// emit mints an ID onto a folded record and appends it, deduplicating
// against restored checkpoint records when resuming: a replayed record
// keeps the checkpointed copy so the merged result matches an
// uninterrupted run byte for byte. Always called on the serial merge
// path, in ascending container-id order within a tick.
func (r *run) emit(rec *WPNRecord) {
	r.c.nextID++
	rec.ID = r.c.nextID
	key := recordKey(rec)
	r.occ[key]++
	fullKey := fmt.Sprintf("%s\x1e%d", key, r.occ[key])
	if old, ok := r.restored[fullKey]; ok {
		delete(r.restored, fullKey)
		r.res.Degradation.ReplayedRecords++
		rec = old
	}
	r.res.Records = append(r.res.Records, rec)
	r.c.tel.records.Inc()
}

// recordKey is the content identity of a record, independent of the
// minted ID: used to match replayed records against checkpointed ones.
func recordKey(rec *WPNRecord) string {
	return strings.Join([]string{
		rec.Device, rec.SourceURL, rec.SWURL, rec.Title, rec.Body, rec.TargetURL,
		rec.ShownAt.UTC().Format(time.RFC3339Nano),
	}, "\x1f")
}

// crashContainer models a container process dying: browser state
// (registrations, cookies) is gone. Bounded recovery re-seeds it with a
// fresh browser — re-visit, re-subscribe — exactly what the paper's
// operators did with crashed Docker sessions.
func (r *run) crashContainer(ct *container) {
	deg := &r.res.Degradation
	deg.ContainersLost++
	r.c.tel.containersLost.Inc()
	deg.DroppedNotifications += ct.br.DroppedNotifications()
	for tok := range ct.sourceByToken {
		r.lostTokens = append(r.lostTokens, tok)
	}
	if ct.recoveries >= r.cfg.MaxRecoveries {
		ct.dead = true
		return
	}
	ct.recoveries++
	// The replacement process starts with a fresh breaker, like a real
	// restarted container rediscovering push-service health from zero.
	ct.brk = r.c.newBreaker()
	ct.br = r.c.newBrowser(ct.seedURL, ct.brk)
	ct.sourceByToken = make(map[string]string)
	ct.regTimeByToken = make(map[string]time.Time)
	vr, err := r.visitRetry(ct, ct.seedURL)
	if err != nil || vr.Registration == nil {
		ct.dead = true
		return
	}
	now := r.cfg.Clock.Now()
	tok := vr.Registration.Sub.Token
	ct.sourceByToken[tok] = ct.seedURL
	ct.regTimeByToken[tok] = now
	ct.activeUntil = now.Add(r.cfg.MonitorWindow)
	deg.ContainersRecovered++
	r.c.tel.containersRecovered.Inc()
}

// finish folds remaining degradation sources into the report, appends
// orphaned checkpoint records, enforces record-ID uniqueness, and
// writes the final checkpoint.
func (r *run) finish(live []*container) {
	deg := &r.res.Degradation
	for _, ct := range live {
		deg.DroppedNotifications += ct.br.DroppedNotifications()
	}
	// Messages still queued for subscriptions lost in crashes can never
	// be collected.
	if r.cfg.Pending != nil {
		for _, tok := range r.lostTokens {
			deg.RecordsDroppedEst += r.cfg.Pending.Pending(tok)
		}
	}
	if r.cfg.FaultCounts != nil {
		if fc := r.cfg.FaultCounts(); len(fc) > 0 {
			deg.Faults = fc
		}
	}

	// Checkpointed records the replay never re-minted (divergence —
	// cannot happen under a deterministic ecosystem, but the crawl DID
	// observe them): keep them, appended in original-ID order.
	if len(r.restored) > 0 {
		orphans := make([]*WPNRecord, 0, len(r.restored))
		for _, rec := range r.restored {
			orphans = append(orphans, rec)
		}
		sort.Slice(orphans, func(i, j int) bool { return orphans[i].ID < orphans[j].ID })
		r.res.Records = append(r.res.Records, orphans...)
		deg.OrphanedCheckpointRecords = len(orphans)
	}

	// Record IDs must be unique even across resume merges.
	if r.c.nextID < r.cpNextID {
		r.c.nextID = r.cpNextID
	}
	seen := make(map[int]bool, len(r.res.Records))
	for _, rec := range r.res.Records {
		if seen[rec.ID] {
			r.c.nextID++
			rec.ID = r.c.nextID
		}
		seen[rec.ID] = true
	}

	r.writeCheckpoint(live)
}

// pushHostName resolves the push service host for breaker lookups.
func (r *run) pushHostName() string {
	if r.cfg.PushHost != "" {
		return r.cfg.PushHost
	}
	return fcm.DefaultHost
}

func (r *run) hasPending(ct *container) bool {
	for _, reg := range ct.br.Registrations() {
		if r.cfg.Pending.Pending(reg.Sub.Token) > 0 {
			return true
		}
	}
	return false
}

// record converts one click outcome into a WPNRecord. The ID is left
// unassigned: minting happens on the caller's serial merge path (the
// run's emit, or the fleet coordinator's cross-shard merge), so shard
// workers can build records without owning the global ID sequence.
func (c *Crawler) record(ct *container, oc browser.ClickOutcome) *WPNRecord {
	dn := oc.Notification
	src := ct.sourceByToken[dn.Registration.Sub.Token]
	if src == "" {
		src = ct.seedURL
	}
	regAt, ok := ct.regTimeByToken[dn.Registration.Sub.Token]
	if !ok {
		regAt = ct.registeredAt
	}
	rec := &WPNRecord{
		Device:       c.cfg.Device.String(),
		SourceURL:    src,
		SourceDomain: urlx.ESLDOf(src),
		SWURL:        dn.Registration.Script.URL,
		Title:        dn.Notification.Title,
		Body:         dn.Notification.Body,
		IconURL:      dn.Notification.Icon,
		ShownAt:      dn.ShownAt,
		RegisteredAt: regAt,
		ClickedAt:    c.cfg.Clock.Now(),
		TargetURL:    dn.Notification.TargetURL,
		PayloadAdID:  dn.PayloadAdID,
	}
	rec.SWRequests = append(rec.SWRequests, dn.SWRequests...)
	rec.SWRequests = append(rec.SWRequests, oc.SWRequests...)
	if nav := oc.Navigation; nav != nil {
		rec.RedirectChain = nav.RedirectChain
		rec.Crashed = nav.Crashed
		if !nav.Crashed && nav.Status == http.StatusOK {
			rec.LandingURL = nav.FinalURL
			rec.LandingTitle = nav.Title
			rec.LandingContent = nav.Content
			rec.ScreenshotHash = nav.ScreenshotHash
			rec.LandingSimHash = nav.ContentSimHash.String()
		}
	}
	return rec
}
