// Package crawler implements PushAdMiner's WPN crawler (§4 and §6.1):
// it visits seed URLs with instrumented browsers ("containers"), grants
// notification permission, keeps each container online for a monitoring
// window after its service worker registers, then suspends it and
// periodically resumes it to drain push messages queued at the push
// service — producing the WPN message dataset the analysis module mines.
//
// Time is fully simulated: the crawler drives the shared virtual clock
// and the ecosystem's push scheduler in one deterministic event loop.
package crawler

import (
	"container/heap"
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"pushadminer/internal/browser"
	"pushadminer/internal/serviceworker"
	"pushadminer/internal/simclock"
	"pushadminer/internal/urlx"
)

// PushDriver is the ecosystem surface the crawler drives: flushing due
// push deliveries and peeking at the next scheduled one.
type PushDriver interface {
	Tick() int
	NextPushAt() (time.Time, bool)
}

// PendingChecker optionally lets the crawler skip HTTP polls for
// containers with no queued messages. The fcm.Service implements it.
type PendingChecker interface {
	Pending(token string) int
}

// Config configures a crawl.
type Config struct {
	// Clock is the shared simulated clock (the ecosystem's). Required.
	Clock *simclock.Simulated
	// NewClient returns an HTTP client routed through the virtual
	// network, not following redirects. Required.
	NewClient func() *http.Client
	// Driver flushes scheduled pushes. Required.
	Driver PushDriver
	// Pending, if non-nil, suppresses no-op polls.
	Pending PendingChecker
	// PushHost selects the push service host ("" = default).
	PushHost string

	// Device and RealDevice select the crawl environment.
	Device     browser.DeviceType
	RealDevice bool

	// MonitorWindow keeps a container online after SW registration
	// (15 minutes in the paper, chosen so 98% of first notifications
	// arrive while live).
	MonitorWindow time.Duration
	// ResumeInterval is how often suspended containers are resumed to
	// drain queued messages.
	ResumeInterval time.Duration
	// CollectionWindow is the total crawl duration after seeding.
	CollectionWindow time.Duration
	// ClickDelay is the instrumented auto-click delay.
	ClickDelay time.Duration
	// MaxNotificationsPerContainer caps runaway subscriptions.
	MaxNotificationsPerContainer int
	// MaxContainers is the number of containers visiting seed URLs in
	// parallel during the seeding phase (the paper ran 20–50 Docker
	// sessions at a time). Default 32.
	MaxContainers int
}

func (c Config) withDefaults() Config {
	if c.MonitorWindow <= 0 {
		c.MonitorWindow = 15 * time.Minute
	}
	if c.ResumeInterval <= 0 {
		c.ResumeInterval = 24 * time.Hour
	}
	if c.CollectionWindow <= 0 {
		c.CollectionWindow = 14 * 24 * time.Hour
	}
	if c.ClickDelay <= 0 {
		c.ClickDelay = 3 * time.Second
	}
	if c.MaxNotificationsPerContainer <= 0 {
		c.MaxNotificationsPerContainer = 64
	}
	if c.MaxContainers <= 0 {
		c.MaxContainers = 32
	}
	return c
}

// WPNRecord is one collected web push notification with all metadata the
// instrumented browser observed — the unit of analysis for the mining
// pipeline (§5).
type WPNRecord struct {
	ID     int    `json:"id"`
	Device string `json:"device"`

	// SourceURL is the page whose visit created the subscription that
	// pushed this message; SourceDomain is its eSLD.
	SourceURL    string `json:"source_url"`
	SourceDomain string `json:"source_domain"`
	SWURL        string `json:"sw_url"`

	Title   string `json:"title"`
	Body    string `json:"body"`
	IconURL string `json:"icon_url,omitempty"`

	ShownAt      time.Time `json:"shown_at"`
	RegisteredAt time.Time `json:"registered_at"`
	ClickedAt    time.Time `json:"clicked_at"`

	// Click consequences.
	TargetURL      string   `json:"target_url,omitempty"`
	RedirectChain  []string `json:"redirect_chain,omitempty"`
	LandingURL     string   `json:"landing_url,omitempty"`
	LandingTitle   string   `json:"landing_title,omitempty"`
	LandingContent string   `json:"landing_content,omitempty"`
	ScreenshotHash string   `json:"screenshot_hash,omitempty"`
	// LandingSimHash is the landing page's locality-sensitive content
	// fingerprint (hex), used for visual-similarity comparison during
	// manual verification.
	LandingSimHash string `json:"landing_simhash,omitempty"`
	Crashed        bool   `json:"crashed,omitempty"`

	// SW network activity during push handling and click handling.
	SWRequests []serviceworker.RequestRecord `json:"sw_requests,omitempty"`

	// PayloadAdID is ground-truth plumbing for evaluation only; the
	// mining pipeline must not read it.
	PayloadAdID string `json:"payload_ad_id,omitempty"`
}

// ValidLanding reports whether the click produced a usable landing page
// (the §6.2 filter: 12,262 of 21,541 collected WPNs had one).
func (r *WPNRecord) ValidLanding() bool {
	return !r.Crashed && r.LandingURL != ""
}

// Result is the output of one crawl.
type Result struct {
	SeedURLs       []string
	NPRURLs        []string // seed URLs that requested notification permission
	AdditionalURLs []string // URLs discovered by clicking notifications that also requested permission
	Records        []*WPNRecord
	Containers     int
}

// container is one isolated browsing session (one Docker container in
// the paper's deployment).
type container struct {
	id           int
	seedURL      string
	br           *browser.Browser
	registeredAt time.Time
	activeUntil  time.Time
	nextResume   time.Time
	collected    int
	// sourceByToken maps each subscription token to the URL whose visit
	// created it, so records name the right source when a container
	// holds several registrations (seed + landing-page subscriptions).
	sourceByToken map[string]string
	// regTimeByToken maps each token to its registration instant.
	regTimeByToken map[string]time.Time
}

type containerHeap []*container

func (h containerHeap) Len() int            { return len(h) }
func (h containerHeap) Less(i, j int) bool  { return h[i].nextResume.Before(h[j].nextResume) }
func (h containerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *containerHeap) Push(x interface{}) { *h = append(*h, x.(*container)) }
func (h *containerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}

// Crawler runs crawls.
type Crawler struct {
	cfg    Config
	nextID int
}

// New creates a Crawler.
func New(cfg Config) (*Crawler, error) {
	if cfg.Clock == nil || cfg.NewClient == nil || cfg.Driver == nil {
		return nil, fmt.Errorf("crawler: Clock, NewClient and Driver are required")
	}
	return &Crawler{cfg: cfg.withDefaults()}, nil
}

// Run crawls the seed URLs with background context; see RunContext.
func (c *Crawler) Run(seeds []string) (*Result, error) {
	return c.RunContext(context.Background(), seeds)
}

// RunContext crawls the seed URLs: visits each in its own container,
// then runs the monitoring event loop for the collection window,
// gathering every notification pushed to any container. Cancelling ctx
// stops the crawl at the next safe point and returns the records
// collected so far along with ctx.Err().
func (c *Crawler) RunContext(ctx context.Context, seeds []string) (*Result, error) {
	res := &Result{SeedURLs: seeds}

	// Seeding phase: visit every URL in parallel container batches (the
	// paper's 20–50 concurrent Docker sessions); keep containers whose
	// visit produced a push subscription. Visits do not advance the
	// simulated clock, so parallelism cannot reorder time.
	type visitOutcome struct {
		ct        *container
		requested bool
		token     string
	}
	outcomes := make([]visitOutcome, len(seeds))
	sem := make(chan struct{}, c.cfg.MaxContainers)
	var wg sync.WaitGroup
	containers := make([]*container, len(seeds))
	for i, u := range seeds {
		containers[i] = c.newContainer(u)
	}
	for i, u := range seeds {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, u string) {
			defer wg.Done()
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			ct := containers[i]
			vr, err := ct.br.Visit(u)
			if err != nil {
				return // dead site: container discarded
			}
			oc := visitOutcome{requested: vr.RequestedPermission}
			if vr.Registration != nil {
				oc.ct = ct
				oc.token = vr.Registration.Sub.Token
			}
			outcomes[i] = oc
		}(i, u)
	}
	wg.Wait()

	var live []*container
	now := c.cfg.Clock.Now()
	for i, oc := range outcomes {
		if oc.requested {
			res.NPRURLs = append(res.NPRURLs, seeds[i])
		}
		if oc.ct == nil {
			continue
		}
		ct := oc.ct
		ct.registeredAt = now
		ct.activeUntil = now.Add(c.cfg.MonitorWindow)
		ct.nextResume = now.Add(c.cfg.ResumeInterval)
		ct.sourceByToken[oc.token] = seeds[i]
		ct.regTimeByToken[oc.token] = now
		live = append(live, ct)
	}
	res.Containers = len(live)

	c.monitor(ctx, live, res)
	return res, ctx.Err()
}

func (c *Crawler) newContainer(seedURL string) *container {
	c.nextID++
	return &container{
		id:      c.nextID,
		seedURL: seedURL,
		br: browser.New(browser.Config{
			Clock:      c.cfg.Clock,
			Client:     c.cfg.NewClient(),
			Device:     c.cfg.Device,
			RealDevice: c.cfg.RealDevice,
			ClickDelay: c.cfg.ClickDelay,
			ClientID:   fmt.Sprintf("%s#%s", seedURL, c.cfg.Device),
		}),
		sourceByToken:  make(map[string]string),
		regTimeByToken: make(map[string]time.Time),
	}
}

// monitor is the unified event loop: it advances the simulated clock to
// each push delivery or container resume, flushes the scheduler, pumps
// online containers, and processes notification auto-clicks.
func (c *Crawler) monitor(ctx context.Context, live []*container, res *Result) {
	clock := c.cfg.Clock
	end := clock.Now().Add(c.cfg.CollectionWindow)

	resumes := make(containerHeap, len(live))
	copy(resumes, live)
	heap.Init(&resumes)

	for {
		if ctx.Err() != nil {
			return
		}
		now := clock.Now()
		if !now.Before(end) {
			break
		}
		// Next event: a scheduled push or a container resume.
		next := end
		if at, ok := c.cfg.Driver.NextPushAt(); ok && at.Before(next) {
			next = at
		}
		if len(resumes) > 0 && resumes[0].nextResume.Before(next) {
			next = resumes[0].nextResume
		}
		if next.After(now) {
			clock.Advance(next.Sub(now))
			now = next
		} else if next.Equal(now) && c.cfg.Driver == nil {
			break
		}

		c.cfg.Driver.Tick()

		// Resume containers due now.
		for len(resumes) > 0 && !resumes[0].nextResume.After(now) {
			ct := heap.Pop(&resumes).(*container)
			c.pump(ct, res)
			ct.nextResume = now.Add(c.cfg.ResumeInterval)
			if ct.nextResume.Before(end) && ct.collected < c.cfg.MaxNotificationsPerContainer {
				heap.Push(&resumes, ct)
			}
		}

		// Pump containers still inside their live monitoring window.
		for _, ct := range live {
			if !now.After(ct.activeUntil) && ct.collected < c.cfg.MaxNotificationsPerContainer {
				c.pump(ct, res)
			}
		}

		// Safety: if nothing is scheduled and no resumes remain, stop.
		if _, ok := c.cfg.Driver.NextPushAt(); !ok && len(resumes) == 0 {
			break
		}
	}

	// Final drain at the end of the window.
	for _, ct := range live {
		c.pump(ct, res)
	}
}

// pump polls the push service for a container and, if anything arrived,
// waits out the click delay and processes the auto-clicks into records.
func (c *Crawler) pump(ct *container, res *Result) {
	if c.cfg.Pending != nil && !c.hasPending(ct) {
		return
	}
	n, err := ct.br.PumpPush(c.cfg.PushHost)
	if err != nil || n == 0 {
		return
	}
	c.cfg.Clock.Advance(c.cfg.ClickDelay)
	for _, oc := range ct.br.ProcessClicks() {
		rec := c.record(ct, oc)
		res.Records = append(res.Records, rec)
		ct.collected++
		// Landing pages that themselves request permission are the
		// additional URLs of §6.2: subscribe right there.
		if nav := oc.Navigation; nav != nil && nav.Doc != nil &&
			nav.Doc.RequestsNotification && !nav.Crashed {
			if vr, err := ct.br.Visit(nav.FinalURL); err == nil && vr.Registration != nil {
				res.AdditionalURLs = append(res.AdditionalURLs, nav.FinalURL)
				ct.sourceByToken[vr.Registration.Sub.Token] = nav.FinalURL
				ct.regTimeByToken[vr.Registration.Sub.Token] = c.cfg.Clock.Now()
				// Re-opening the container's live window mirrors the
				// paper keeping sessions alive after new registrations.
				ct.activeUntil = c.cfg.Clock.Now().Add(c.cfg.MonitorWindow)
			}
		}
	}
}

func (c *Crawler) hasPending(ct *container) bool {
	for _, reg := range ct.br.Registrations() {
		if c.cfg.Pending.Pending(reg.Sub.Token) > 0 {
			return true
		}
	}
	return false
}

// record converts one click outcome into a WPNRecord.
func (c *Crawler) record(ct *container, oc browser.ClickOutcome) *WPNRecord {
	c.nextID++
	dn := oc.Notification
	src := ct.sourceByToken[dn.Registration.Sub.Token]
	if src == "" {
		src = ct.seedURL
	}
	regAt, ok := ct.regTimeByToken[dn.Registration.Sub.Token]
	if !ok {
		regAt = ct.registeredAt
	}
	rec := &WPNRecord{
		ID:           c.nextID,
		Device:       c.cfg.Device.String(),
		SourceURL:    src,
		SourceDomain: urlx.ESLDOf(src),
		SWURL:        dn.Registration.Script.URL,
		Title:        dn.Notification.Title,
		Body:         dn.Notification.Body,
		IconURL:      dn.Notification.Icon,
		ShownAt:      dn.ShownAt,
		RegisteredAt: regAt,
		ClickedAt:    c.cfg.Clock.Now(),
		TargetURL:    dn.Notification.TargetURL,
		PayloadAdID:  dn.PayloadAdID,
	}
	rec.SWRequests = append(rec.SWRequests, dn.SWRequests...)
	rec.SWRequests = append(rec.SWRequests, oc.SWRequests...)
	if nav := oc.Navigation; nav != nil {
		rec.RedirectChain = nav.RedirectChain
		rec.Crashed = nav.Crashed
		if !nav.Crashed && nav.Status == http.StatusOK {
			rec.LandingURL = nav.FinalURL
			rec.LandingTitle = nav.Title
			rec.LandingContent = nav.Content
			rec.ScreenshotHash = nav.ScreenshotHash
			rec.LandingSimHash = nav.ContentSimHash.String()
		}
	}
	return rec
}
