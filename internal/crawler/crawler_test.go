package crawler

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"pushadminer/internal/browser"
	"pushadminer/internal/webeco"
)

func newEco(t *testing.T, scale float64) *webeco.Ecosystem {
	t.Helper()
	eco, err := webeco.New(webeco.Config{Seed: 11, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eco.Close() })
	return eco
}

func newCrawler(t *testing.T, eco *webeco.Ecosystem, device browser.DeviceType, real bool) *Crawler {
	t.Helper()
	c, err := New(Config{
		Clock:            eco.Clock,
		NewClient:        func() *http.Client { return eco.Net.ClientNoRedirect() },
		Driver:           eco,
		Pending:          eco.Push,
		Device:           device,
		RealDevice:       real,
		CollectionWindow: 7 * 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRequiresDeps(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted empty config")
	}
}

func TestCrawlCollectsWPNs(t *testing.T) {
	eco := newEco(t, 0.004)
	c := newCrawler(t, eco, browser.Desktop, false)
	res, err := c.Run(eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SeedURLs) == 0 {
		t.Fatal("no seed URLs")
	}
	if len(res.NPRURLs) == 0 {
		t.Fatal("no NPR URLs found")
	}
	if len(res.NPRURLs) >= len(res.SeedURLs) {
		t.Errorf("NPR URLs (%d) should be a small subset of seeds (%d)", len(res.NPRURLs), len(res.SeedURLs))
	}
	if res.Containers == 0 {
		t.Fatal("no containers registered service workers")
	}
	if len(res.Records) == 0 {
		t.Fatal("no WPN records collected")
	}

	valid := 0
	for _, r := range res.Records {
		if r.Title == "" {
			t.Errorf("record %d has no title", r.ID)
		}
		if r.SourceURL == "" || r.SourceDomain == "" {
			t.Errorf("record %d missing source: %+v", r.ID, r)
		}
		if r.SWURL == "" {
			t.Errorf("record %d missing SW URL", r.ID)
		}
		if r.Device != "desktop" {
			t.Errorf("record %d device = %q", r.ID, r.Device)
		}
		if r.ValidLanding() {
			valid++
			if r.LandingURL == "" || r.ScreenshotHash == "" {
				t.Errorf("valid landing without URL/screenshot: %+v", r)
			}
		}
		if r.ShownAt.Before(r.RegisteredAt) {
			t.Errorf("record %d shown before registration", r.ID)
		}
		if r.ClickedAt.Before(r.ShownAt) {
			t.Errorf("record %d clicked before shown", r.ID)
		}
	}
	if valid == 0 {
		t.Fatal("no records with valid landing pages")
	}
	t.Logf("seeds=%d npr=%d containers=%d records=%d valid=%d additional=%d",
		len(res.SeedURLs), len(res.NPRURLs), res.Containers, len(res.Records), valid, len(res.AdditionalURLs))
}

func TestCrawlDeterministic(t *testing.T) {
	run := func() *Result {
		eco := newEco(t, 0.002)
		c := newCrawler(t, eco, browser.Desktop, false)
		res, err := c.Run(eco.SeedURLs())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i].Title != b.Records[i].Title || a.Records[i].SourceURL != b.Records[i].SourceURL {
			t.Fatalf("record %d differs: %q/%q vs %q/%q", i,
				a.Records[i].Title, a.Records[i].SourceURL, b.Records[i].Title, b.Records[i].SourceURL)
		}
	}
}

func TestMobileGetsMobileTailoredAds(t *testing.T) {
	eco := newEco(t, 0.004)
	c := newCrawler(t, eco, browser.Mobile, true)
	res, err := c.Run(eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("mobile crawl collected nothing")
	}
	sawMobileOnly := false
	for _, r := range res.Records {
		if r.Device != "mobile" {
			t.Fatalf("record device = %q", r.Device)
		}
		if strings.Contains(r.Title, "Missed call") || strings.Contains(r.Title, "Voicemail") ||
			strings.Contains(r.Title, "package") || strings.Contains(r.Title, "WhatsApp") ||
			strings.Contains(r.Title, "delivery fee") || strings.Contains(r.Title, "friend request") {
			sawMobileOnly = true
		}
	}
	if !sawMobileOnly {
		t.Error("no mobile-tailored malicious messages observed on a physical device")
	}
}

func TestEmulatedMobileMissesRealDeviceCampaigns(t *testing.T) {
	eco := newEco(t, 0.004)
	c := newCrawler(t, eco, browser.Mobile, false) // emulator
	res, err := c.Run(eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if strings.Contains(r.Title, "Missed call") || strings.Contains(r.Title, "Voicemail waiting") {
			t.Errorf("emulator received real-device-only campaign: %q", r.Title)
		}
	}
}

func TestFirstNotificationLatency(t *testing.T) {
	// The §6.1.2 pilot: ~98% of first notifications within 15 minutes.
	eco := newEco(t, 0.004)
	c := newCrawler(t, eco, browser.Desktop, false)
	res, err := c.Run(eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	firstBySource := map[string]time.Duration{}
	for _, r := range res.Records {
		d := r.ShownAt.Sub(r.RegisteredAt)
		if prev, ok := firstBySource[r.SourceURL]; !ok || d < prev {
			firstBySource[r.SourceURL] = d
		}
	}
	if len(firstBySource) < 5 {
		t.Skipf("too few sources (%d) for latency distribution", len(firstBySource))
	}
	within := 0
	for _, d := range firstBySource {
		if d <= 16*time.Minute { // small slack for click-delay advances
			within++
		}
	}
	frac := float64(within) / float64(len(firstBySource))
	if frac < 0.85 {
		t.Errorf("first-notification-within-15min fraction = %.2f, want >= 0.85", frac)
	}
}

func TestQueuedWhileSuspendedDelivered(t *testing.T) {
	// Messages scheduled long after the monitoring window must still be
	// collected via container resumes.
	eco := newEco(t, 0.002)
	c := newCrawler(t, eco, browser.Desktop, false)
	res, err := c.Run(eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	late := 0
	for _, r := range res.Records {
		if r.ShownAt.Sub(r.RegisteredAt) > time.Hour {
			late++
		}
	}
	if late == 0 {
		t.Error("no late (queued) notifications collected; resume path untested")
	}
}
