package crawler

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pushadminer/internal/browser"
	"pushadminer/internal/chaos"
	"pushadminer/internal/webeco"
)

// TestSerialParallelParity is the determinism contract of the batched
// monitor: the same crawl at PumpWorkers=1 (the serial reference path)
// and PumpWorkers=8 must produce byte-identical Result JSON — records,
// Degradation, the lot — and byte-identical checkpoint files, across
// seeds and with chaos on and off.
func TestSerialParallelParity(t *testing.T) {
	run := func(seed int64, prof *chaos.Profile, window time.Duration, workers int) ([]byte, []byte) {
		t.Helper()
		eco, err := webeco.New(webeco.Config{Seed: seed, Scale: 0.002, Chaos: prof, FlushWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		defer eco.Close()
		ckpt := filepath.Join(t.TempDir(), "parity.ckpt.json")
		res, err := chaosCrawler(t, eco, func(c *Config) {
			c.PumpWorkers = workers
			c.BatchWindow = window
			c.CheckpointPath = ckpt
		}).Run(eco.SeedURLs())
		if err != nil {
			t.Fatal(err)
		}
		resJSON, err := json.MarshalIndent(res, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		ckptJSON, err := os.ReadFile(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		return resJSON, ckptJSON
	}

	for _, tc := range []struct {
		name   string
		seed   int64
		prof   *chaos.Profile
		window time.Duration
	}{
		{"seed11", 11, nil, 0},
		{"seed23", 23, nil, 0},
		{"seed11/chaos", 11, acceptanceProfile(), 0},
		{"seed23/chaos", 23, acceptanceProfile(), 0},
		// Tick coalescing plus fault injection: the quantized event
		// loop must stay byte-deterministic too.
		{"seed11/window/chaos", 11, acceptanceProfile(), time.Hour},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serialRes, serialCkpt := run(tc.seed, tc.prof, tc.window, 1)
			parallelRes, parallelCkpt := run(tc.seed, tc.prof, tc.window, 8)
			if !bytes.Equal(serialRes, parallelRes) {
				t.Errorf("parallel Result diverges from serial (serial %d bytes, parallel %d bytes):\n%s",
					len(serialRes), len(parallelRes), firstDiff(serialRes, parallelRes))
			}
			if !bytes.Equal(serialCkpt, parallelCkpt) {
				t.Errorf("parallel checkpoint diverges from serial:\n%s", firstDiff(serialCkpt, parallelCkpt))
			}
			var res Result
			if err := json.Unmarshal(serialRes, &res); err != nil {
				t.Fatal(err)
			}
			if len(res.Records) == 0 {
				t.Error("parity run collected no records; test is vacuous")
			}
		})
	}
}

// firstDiff renders the context around the first diverging byte.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo, hi := i-120, i+120
			if lo < 0 {
				lo = 0
			}
			ha, hb := hi, hi
			if ha > len(a) {
				ha = len(a)
			}
			if hb > len(b) {
				hb = len(b)
			}
			return fmt.Sprintf("byte %d:\na: %s\nb: %s", i, a[lo:ha], b[lo:hb])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d", len(a), len(b))
}

// cancelOnFirstRequest is a RoundTripper that cancels a context on its
// first request and fails every request, forcing visitRetry onto its
// retry ladder with a context that is already dead.
type cancelOnFirstRequest struct {
	cancel context.CancelFunc
	once   sync.Once
}

func (c *cancelOnFirstRequest) RoundTrip(*http.Request) (*http.Response, error) {
	c.once.Do(c.cancel)
	return nil, errors.New("injected transport failure")
}

// TestVisitRetryAbortsOnCancel pins the satellite bugfix: a context
// cancelled mid-retry must abort the ladder at the next attempt — not
// burn through the remaining attempts — and the abort must be tallied
// in Degradation.VisitsAborted rather than as a retry or failure.
func TestVisitRetryAbortsOnCancel(t *testing.T) {
	eco := newEco(t, 0.002)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt := &cancelOnFirstRequest{cancel: cancel}
	c, err := New(Config{
		Clock:            eco.Clock,
		NewClient:        func() *http.Client { return &http.Client{Transport: rt} },
		Driver:           eco,
		Pending:          eco.Push,
		Device:           browser.Desktop,
		CollectionWindow: 7 * 24 * time.Hour,
		MaxContainers:    1, // one visit in flight: the abort count is exact
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunContext(ctx, eco.SeedURLs())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	deg := res.Degradation
	if deg.VisitsAborted != 1 {
		t.Errorf("VisitsAborted = %d, want 1 (attempt 1 fails and cancels, attempt 2 must abort)", deg.VisitsAborted)
	}
	if deg.VisitRetries != 0 {
		t.Errorf("VisitRetries = %d, want 0: the aborted attempt must not count as a retry", deg.VisitRetries)
	}
	if deg.VisitFailures != 0 {
		t.Errorf("VisitFailures = %d, want 0: the abort must not count as an exhausted ladder", deg.VisitFailures)
	}
}

// TestFinalDrainRespectsCap pins the satellite bugfix: the end-of-window
// drain must honour MaxNotificationsPerContainer like every other pump
// site instead of pumping capped containers one last time.
func TestFinalDrainRespectsCap(t *testing.T) {
	r := &run{cfg: &Config{MaxNotificationsPerContainer: 2}}
	under := &container{id: 3, collected: 1}
	at := &container{id: 1, collected: 2}
	over := &container{id: 2, collected: 5}
	dead := &container{id: 4, collected: 0, dead: true}
	batch := r.finalBatch([]*container{under, at, over, dead})
	if len(batch) != 1 || batch[0].ct != under {
		ids := make([]int, len(batch))
		for i, it := range batch {
			ids[i] = it.ct.id
		}
		t.Fatalf("finalBatch drained containers %v, want only id 3 (under cap, alive)", ids)
	}
}

// TestCrawlHonorsNotificationCap drives a full crawl with a cap of one
// notification per container. The cap gates scheduling, not emission: a
// container's single pump may drain a multi-message queue, so a
// container can overshoot by the depth of one queue — but once at cap
// it must never be pumped again. The old final drain broke exactly
// that, re-pumping every at-cap container at end of window and emitting
// everything queued since its last resume; the 2× bound comfortably
// admits single-pump overshoot while failing under the old drain.
func TestCrawlHonorsNotificationCap(t *testing.T) {
	const cap = 1
	eco := newEco(t, 0.002)
	res, err := chaosCrawler(t, eco, func(c *Config) {
		c.MaxNotificationsPerContainer = cap
		c.CrashPlan = nil // keep the container set fixed
	}).Run(eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("cap run collected no records; test is vacuous")
	}
	if got, max := len(res.Records), 2*res.Containers*cap; got > max {
		t.Errorf("collected %d records from %d containers with cap %d (max %d with single-pump overshoot)",
			got, res.Containers, cap, max)
	}
}
