package crawler

import (
	"container/heap"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"pushadminer/internal/httpx"
	"pushadminer/internal/serviceworker"
	"pushadminer/internal/telemetry"
)

// ShardStateVersion is bumped when the shard-state format changes
// incompatibly; LoadShardState rejects other versions.
const ShardStateVersion = 1

// ShardContainerState is one container's complete persisted state:
// the checkpoint cursor plus everything a restarted worker needs to
// resume the container *losslessly* — circuit-breaker host states (so
// a chaos 5xx burst is not re-probed at full rate after failover),
// service-worker registrations with their push subscriptions, the
// dropped-notification tally, cookies (tracking ad networks
// frequency-cap returning browsers they recognize by cookie, §8), and
// whether the container sits in the suspension heap (heap membership is
// not derivable from the cursor: a container can die or hit its cap
// after being re-queued, and a spurious or missing resume event would
// shift tick times and break parity).
type ShardContainerState struct {
	Cursor               ContainerCursor               `json:"cursor"`
	InHeap               bool                          `json:"in_heap,omitempty"`
	Breaker              []httpx.BreakerHostState      `json:"breaker,omitempty"`
	Registrations        []*serviceworker.Registration `json:"registrations,omitempty"`
	DroppedNotifications int                           `json:"dropped_notifications,omitempty"`
	Cookies              []httpx.CookieRecord          `json:"cookies,omitempty"`
	// Chain is the browser's trace chain-recorder linkage state (span
	// IDs future events parent under). Present only when tracing is on;
	// its IDs reference the shard's tracer, which the fleet transport
	// owns across restarts — so a restored worker keeps extending the
	// chains the lost one left open and the stitched fleet trace stays
	// byte-identical to the single-process trace. Adopt drops it: the
	// IDs are meaningless against another shard's tracer.
	Chain *telemetry.ChainState `json:"chain,omitempty"`
}

// ShardState is one shard worker's durable snapshot, written by the
// fleet transport at the end of every tick that changed something.
// Restart-with-resume deserializes it back into a ShardWorker with no
// HTTP and no replay: because the fleet kills workers only at tick
// boundaries (after the save), the restored worker continues exactly
// where the lost one stopped.
type ShardState struct {
	Version int       `json:"version"`
	Shard   int       `json:"shard"`
	Device  string    `json:"device"`
	SimTime time.Time `json:"sim_time"`
	// End is the collection-window end the worker computed at seeding
	// (heap re-queue decisions depend on it).
	End time.Time `json:"end"`

	Seeds      []ShardSeed           `json:"seeds,omitempty"`
	Containers []ShardContainerState `json:"containers,omitempty"`
	// LostTokens are subscriptions lost in container crashes (their
	// still-queued messages become RecordsDroppedEst at finish).
	LostTokens  []string    `json:"lost_tokens,omitempty"`
	Degradation Degradation `json:"degradation"`
}

// State snapshots the worker for durable storage.
func (w *ShardWorker) State() (*ShardState, error) {
	inHeap := make(map[int]bool, len(w.resumes))
	for _, ct := range w.resumes {
		inHeap[ct.id] = true
	}
	st := &ShardState{
		Version:     ShardStateVersion,
		Shard:       w.id,
		Device:      w.c.cfg.Device.String(),
		SimTime:     w.c.cfg.Clock.Now(),
		End:         w.r.end,
		Seeds:       w.seeds,
		LostTokens:  w.r.lostTokens,
		Degradation: w.r.res.Degradation,
	}
	for _, ct := range w.live {
		st.Containers = append(st.Containers, ShardContainerState{
			Cursor:               ct.cursor(),
			InHeap:               inHeap[ct.id],
			Breaker:              ct.brk.Export(),
			Registrations:        ct.br.Registrations(),
			DroppedNotifications: ct.br.DroppedNotifications(),
			Cookies:              ct.br.ExportCookies(),
			Chain:                ct.br.ExportChain(),
		})
	}
	return st, nil
}

// RestoreShardWorker rebuilds a worker from its persisted state: fresh
// browsers and breakers are constructed (pure, no HTTP) and rehydrated
// with the saved registrations, breaker host states, cookies, and
// tallies. The restored worker is byte-equivalent to the lost one at
// the tick boundary the state was saved on.
func RestoreShardWorker(ctx context.Context, cfg Config, st *ShardState) (*ShardWorker, error) {
	w, err := NewShardWorker(ctx, cfg, st.Shard, st.Seeds)
	if err != nil {
		return nil, err
	}
	if err := w.checkState(st); err != nil {
		return nil, err
	}
	w.r.end = st.End
	w.r.res.Degradation = st.Degradation
	w.r.lostTokens = st.LostTokens
	for i := range st.Containers {
		ct := w.c.containerFromState(&st.Containers[i])
		w.live = append(w.live, ct)
		if st.Containers[i].InHeap {
			w.resumes = append(w.resumes, ct)
		}
	}
	heap.Init(&w.resumes)
	return w, nil
}

// containerFromState rebuilds one container from its persisted state.
// No HTTP happens: the browser's registrations were announced when
// first created and the push service's token state lives server-side.
func (c *Crawler) containerFromState(cs *ShardContainerState) *container {
	cur := &cs.Cursor
	ct := c.newContainerWithID(cur.ID, cur.SeedURL)
	ct.registeredAt = cur.RegisteredAt
	ct.activeUntil = cur.ActiveUntil
	ct.nextResume = cur.NextResume
	ct.collected = cur.Collected
	ct.cycles = cur.Cycles
	ct.recoveries = cur.Recoveries
	ct.pollFails = cur.PollFails
	ct.dead = cur.Dead
	if cur.Sources != nil {
		ct.sourceByToken = cur.Sources
	}
	if cur.RegTimes != nil {
		ct.regTimeByToken = cur.RegTimes
	}
	ct.brk.Restore(cs.Breaker)
	ct.br.RestoreSession(cs.Registrations, cs.DroppedNotifications)
	ct.br.RestoreCookies(cs.Cookies)
	ct.br.RestoreChain(cs.Chain)
	return ct
}

// SaveShardState atomically writes a shard state file with the same
// backup-rotation discipline as run checkpoints: the previous state
// rotates to path+".bak" so a torn write can always fall back one tick.
func SaveShardState(path string, st *ShardState) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("crawler: marshal shard state: %w", err)
	}
	if err := writeFileDurable(path, data); err != nil {
		return fmt.Errorf("crawler: shard state: %w", err)
	}
	return nil
}

// LoadShardState reads a shard state file, falling back to the rotated
// .bak when the primary is missing, truncated, or corrupt. fellBack
// reports that the backup was used.
func LoadShardState(path string) (st *ShardState, fellBack bool, err error) {
	st, err = loadShardState(path)
	if err == nil {
		return st, false, nil
	}
	if bst, berr := loadShardState(path + ".bak"); berr == nil {
		return bst, true, nil
	}
	return nil, false, err
}

func loadShardState(path string) (*ShardState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var st ShardState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("crawler: parse shard state %s: %w", path, err)
	}
	if st.Version != ShardStateVersion {
		return nil, fmt.Errorf("crawler: shard state %s: version %d, want %d", path, st.Version, ShardStateVersion)
	}
	return &st, nil
}
