package crawler

import (
	"bytes"
	"encoding/json"
	"testing"

	"pushadminer/internal/telemetry"
	"pushadminer/internal/webeco"
)

// TestTelemetryReconcilesWithChaos runs the acceptance chaos profile
// with the full telemetry stack attached and cross-checks three
// independent ledgers of the same events:
//
//  1. the chaos injector's own fault counts (server side),
//  2. the vnet client instrumentation (what browsers observed), and
//  3. the crawler's Degradation report (what the crawl survived).
//
// Server-injected resets and client-side blackholes surface as client
// transport errors; injected 503s are marked with chaos.InjectedHeader
// and tallied by kind. Any drift between the ledgers means telemetry is
// inventing or losing events.
func TestTelemetryReconcilesWithChaos(t *testing.T) {
	reg := telemetry.New()
	eco, err := webeco.New(webeco.Config{Seed: 11, Scale: 0.002, Chaos: acceptanceProfile(), Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eco.Close() })
	res, err := chaosCrawler(t, eco, func(c *Config) { c.Metrics = reg }).Run(eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	deg := res.Degradation

	// Ledger 1 vs snapshot: the chaos_faults family is the injector's
	// own stats map, adopted live into the registry.
	chaosFam := snap.Families["chaos_faults"]
	if len(chaosFam) == 0 {
		t.Fatal("chaos_faults family empty: injector not attached to registry")
	}
	stats := eco.Chaos().Stats()
	for kind, n := range stats {
		if got := chaosFam[kind]; got != int64(n) {
			t.Errorf("chaos_faults[%s] = %d, injector says %d", kind, got, n)
		}
	}
	for kind := range chaosFam {
		if _, ok := stats[kind]; !ok && chaosFam[kind] != 0 {
			t.Errorf("chaos_faults[%s] = %d not in injector stats %v", kind, chaosFam[kind], stats)
		}
	}

	// Ledger 1 vs ledger 2: every server-side reset and client-side
	// blackhole must surface as exactly one classified client transport
	// error (keep-alives are disabled under chaos, so there is no
	// connection reuse to blur the mapping). Truncations fail at body
	// read, not at the transport, so they are excluded by construction;
	// "bad_url" errors are ecosystem artifacts (scheme-less navigation
	// targets), not faults.
	errKinds := snap.Families["vnet_client_errors"]
	if got, want := errKinds["conn"], chaosFam["reset"]; got != want {
		t.Errorf("vnet_client_errors[conn] = %d, chaos injected %d resets", got, want)
	}
	if got, want := errKinds["blackhole"], chaosFam["blackhole"]; got != want {
		t.Errorf("vnet_client_errors[blackhole] = %d, chaos injected %d blackholes", got, want)
	}
	var totalErrs int64
	for _, n := range errKinds {
		totalErrs += n
	}
	if got := snap.Counters["vnet_client_transport_errors"]; got != totalErrs {
		t.Errorf("vnet_client_transport_errors = %d, classified kinds sum to %d (%v)", got, totalErrs, errKinds)
	}
	// Every injected 503 the server fabricated must have been observed
	// by a client, tagged by kind.
	inj := snap.Families["vnet_injected_faults"]
	for _, kind := range []string{"http_503", "outage_503"} {
		if got, want := inj[kind], chaosFam[kind]; got != want {
			t.Errorf("vnet_injected_faults[%s] = %d, chaos injected %d", kind, got, want)
		}
	}
	if chaosFam["http_503"] == 0 || chaosFam["reset"] == 0 {
		t.Error("profile injected no 503s/resets; reconciliation test is vacuous")
	}

	// Ledger 3: the crawler's telemetry counters must equal the
	// Degradation report field for field.
	for name, want := range map[string]int{
		"crawler_visit_retries":         deg.VisitRetries,
		"crawler_visit_failures":        deg.VisitFailures,
		"crawler_poll_failures":         deg.PollFailures,
		"crawler_breaker_fast_fails":    deg.BreakerFastFails,
		"crawler_containers_lost":       deg.ContainersLost,
		"crawler_containers_recovered":  deg.ContainersRecovered,
		"crawler_checkpoint_writes":     deg.CheckpointWrites,
		"crawler_visits_aborted":        deg.VisitsAborted,
		"browser_notifications_dropped": deg.DroppedNotifications,
	} {
		if got := snap.Counters[name]; got != int64(want) {
			t.Errorf("%s = %d, Degradation says %d", name, got, want)
		}
	}
	if got, want := snap.Counters["crawler_records_emitted"], int64(len(res.Records)); got != want {
		t.Errorf("crawler_records_emitted = %d, result has %d records", got, want)
	}
	if deg.VisitRetries == 0 {
		t.Error("no visit retries under chaos; reconciliation test is vacuous")
	}

	// Breaker transition ledger sanity: the breaker can only leave the
	// open state as often as it entered it, and half-open trials must
	// come from the open state.
	tr := snap.Families["breaker_transitions"]
	opens := tr["closed→open"] + tr["half-open→open"]
	if tr["open→half-open"] > opens {
		t.Errorf("breaker left open %d times but entered it %d times (%v)", tr["open→half-open"], opens, tr)
	}
	if tr["half-open→closed"]+tr["half-open→open"] > tr["open→half-open"] {
		t.Errorf("breaker left half-open more often than it entered it (%v)", tr)
	}
	if snap.Counters["crawler_breaker_fast_fails"] > 0 && opens == 0 {
		t.Errorf("breaker fast-failed %d polls but never transitioned to open (%v)",
			snap.Counters["crawler_breaker_fast_fails"], tr)
	}

	// Pump latency: one histogram observation per scheduler pump.
	h, ok := snap.Histograms["crawler_pump_seconds"]
	if !ok || h.Count == 0 {
		t.Error("crawler_pump_seconds histogram empty: pump latency not recorded")
	}

	t.Logf("reconciled: chaos=%v errors=%v injected=%v breaker=%v records=%d",
		chaosFam, errKinds, inj, tr, len(res.Records))
}

// TestDisabledCrawlMetricsZeroAlloc guards the telemetry-off hot path:
// the zero-value crawlMetrics (what every crawler gets when
// Config.Metrics is nil) must make all instrument calls on the pump and
// visit paths free — no allocations, just nil-receiver no-ops. The
// distance-matrix hot loop has the same property by construction: with
// metrics disabled ClusterWPNs never wraps the keep function at all.
func TestDisabledCrawlMetricsZeroAlloc(t *testing.T) {
	var tel crawlMetrics
	if tel.enabled {
		t.Fatal("zero-value crawlMetrics reports enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tel.visits.Inc()
		tel.visitRetries.Inc()
		tel.pollFailures.Inc()
		tel.breakerFastFails.Inc()
		tel.records.Inc()
		tel.visitsAborted.Inc()
		tel.pumpLatency.Observe(0.5)
		tel.batchSize.Observe(3)
		tel.pumpWorkers.Set(8)
	})
	if allocs != 0 {
		t.Fatalf("disabled crawl metrics allocate %v per pump-path round, want 0", allocs)
	}
}

// TestTelemetryParity: the same seeded chaos crawl with telemetry fully
// attached and fully absent must produce byte-identical records and
// degradation reports. Observation must never perturb the simulation.
func TestTelemetryParity(t *testing.T) {
	run := func(attach bool) []byte {
		var reg *telemetry.Registry
		if attach {
			reg = telemetry.New()
		}
		eco, err := webeco.New(webeco.Config{Seed: 11, Scale: 0.002, Chaos: acceptanceProfile(), Telemetry: reg})
		if err != nil {
			t.Fatal(err)
		}
		defer eco.Close()
		var tracer *telemetry.Tracer
		if attach {
			tracer = telemetry.NewTracer(eco.Clock.Now)
		}
		res, err := chaosCrawler(t, eco, func(c *Config) {
			c.Metrics = reg
			c.Tracer = tracer
		}).Run(eco.SeedURLs())
		if err != nil {
			t.Fatal(err)
		}
		if attach && tracer.Len() == 0 {
			t.Fatal("tracer attached but recorded no spans")
		}
		b, err := json.MarshalIndent(res, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	on, off := run(true), run(false)
	if !bytes.Equal(on, off) {
		for i := 0; i < len(on) && i < len(off); i++ {
			if on[i] != off[i] {
				lo, hi := i-120, i+120
				if lo < 0 {
					lo = 0
				}
				if hi > len(on) {
					hi = len(on)
				}
				t.Fatalf("telemetry-on result diverges from telemetry-off at byte %d:\non:  %s\noff: %s",
					i, on[lo:hi], off[lo:min2(hi, len(off))])
			}
		}
		t.Fatalf("results differ in length: on=%d off=%d", len(on), len(off))
	}
}
