package crawler

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestCheckpointCorruptionFailover simulates the worst checkpoint
// outcome a mid-write crash can leave: a truncated primary file. Resume
// must fall back to the rotated .bak (the previous good checkpoint),
// note the fallback in the Degradation report, and still converge to
// the uninterrupted run's record set — the replay re-derives everything
// the younger, lost checkpoint had.
func TestCheckpointCorruptionFailover(t *testing.T) {
	prof := acceptanceProfile()

	// Uninterrupted reference run, counting scheduler ticks.
	ecoA := newChaosEco(t, 0.002, prof)
	counterA := &tickCancelDriver{PushDriver: ecoA}
	full, err := chaosCrawler(t, ecoA, func(c *Config) { c.Driver = counterA }).Run(ecoA.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "crawl.ckpt.json")

	// Killed run, far enough in to write at least two checkpoints (the
	// second write rotates the first to .bak).
	ecoB := newChaosEco(t, 0.002, prof)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killer := &tickCancelDriver{PushDriver: ecoB, limit: counterA.n * 3 / 4, cancel: cancel}
	partial, err := chaosCrawler(t, ecoB, func(c *Config) {
		c.Driver = killer
		c.CheckpointPath = ckpt
	}).RunContext(ctx, ecoB.SeedURLs())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run err = %v, want context.Canceled", err)
	}
	if partial.Degradation.CheckpointWrites < 2 {
		t.Fatalf("killed run wrote %d checkpoints, need >= 2 for a .bak rotation",
			partial.Degradation.CheckpointWrites)
	}
	if _, err := os.Stat(ckpt + ".bak"); err != nil {
		t.Fatalf("no rotated backup checkpoint: %v", err)
	}

	// The crash tears the primary mid-write: truncate it to garbage.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpointFallback(ckpt); err != nil {
		t.Fatalf("fallback load failed with a good .bak present: %v", err)
	}

	// Resume: must fall back to the .bak and converge anyway.
	ecoC := newChaosEco(t, 0.002, prof)
	resumed, err := chaosCrawler(t, ecoC, func(c *Config) {
		c.CheckpointPath = ckpt
		c.Resume = true
	}).Run(ecoC.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Degradation.ResumedFromCheckpoint {
		t.Error("resumed run did not load a checkpoint")
	}
	if resumed.Degradation.CheckpointFallbacks != 1 {
		t.Errorf("CheckpointFallbacks = %d, want 1", resumed.Degradation.CheckpointFallbacks)
	}
	if resumed.Degradation.ReplayedRecords == 0 {
		t.Error("no records replayed from the backup checkpoint")
	}
	if resumed.Degradation.OrphanedCheckpointRecords != 0 {
		t.Errorf("%d backup records orphaned; replay should re-mint all",
			resumed.Degradation.OrphanedCheckpointRecords)
	}
	assertUniqueIDs(t, resumed.Records)

	a, _ := json.Marshal(full.Records)
	b, _ := json.Marshal(resumed.Records)
	if !bytes.Equal(a, b) {
		t.Fatalf("record set after corruption failover differs from uninterrupted run: %d vs %d records",
			len(resumed.Records), len(full.Records))
	}
	t.Logf("full=%d partial=%d resumed=%d (replayed %d after .bak fallback)",
		len(full.Records), len(partial.Records), len(resumed.Records),
		resumed.Degradation.ReplayedRecords)
}

// TestCheckpointBothCopiesCorrupt: when primary AND backup are
// unreadable, resume must fail loudly rather than silently restart the
// crawl from scratch.
func TestCheckpointBothCopiesCorrupt(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "crawl.ckpt.json")
	for _, p := range []string{ckpt, ckpt + ".bak"} {
		if err := os.WriteFile(p, []byte(`{"version":1,"trunc`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	eco := newChaosEco(t, 0.002, nil)
	_, err := chaosCrawler(t, eco, func(c *Config) {
		c.CheckpointPath = ckpt
		c.Resume = true
	}).Run(eco.SeedURLs())
	if err == nil {
		t.Fatal("resume with two corrupt checkpoints succeeded silently")
	}
}
