package crawler

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"time"
)

// This file implements the shard-worker side of the crawl fleet
// (internal/fleet owns the coordinator). A ShardWorker owns a disjoint
// subset of the global container set — its own browsers, per-container
// circuit breakers, pump-worker pool, and suspension heap — and exposes
// the crawl's pump phases as individual calls so the coordinator can
// run one global tick across all shards: poll everywhere, decide
// whether anything arrived, dispatch + advance the shared clock once,
// click everywhere, then merge the shards' records serially in
// container-id order. Records leave the worker with ID unassigned; the
// coordinator mints IDs on its serial merge path, which is what makes a
// fleet run byte-identical to the single-process crawl.

// ShardSeed is one seed URL with its position in the *global* seed
// list. The container created for it gets id Index+1 — the same id the
// single-process crawler would mint — so cross-shard id-order merges
// reproduce the single-process record order.
type ShardSeed struct {
	Index int    `json:"index"`
	URL   string `json:"url"`
}

// TickStatus is a worker's scheduling state after a call: the earliest
// pending container resume and how many resumes remain queued. The
// coordinator takes the minimum across shards to find the next global
// event, exactly as the single-process monitor peeks its own heap.
type TickStatus struct {
	NextResume time.Time
	HasResume  bool
	Queued     int
}

// ShardSeedOutcome reports one seed visit, keyed by global seed index.
type ShardSeedOutcome struct {
	Index      int
	Requested  bool // page requested notification permission (an NPR)
	Registered bool // visit produced a live, subscribed container
}

// ShardSeedReport is the result of a worker's seeding phase.
type ShardSeedReport struct {
	Outcomes []ShardSeedOutcome
	Status   TickStatus
}

// TickPoll is the result of a worker's poll phase for one tick.
type TickPoll struct {
	Due    int  // containers in this tick's batch
	Any    bool // any poll returned messages
	Status TickStatus
}

// TickItem is one container's contribution to a tick: its records
// (IDs unassigned) and the §6.2 additional-subscription URLs, in
// outcome order.
type TickItem struct {
	ContainerID    int
	Records        []*WPNRecord
	AdditionalURLs []string
}

// TickResult is the result of a worker's click+fold phase: non-empty
// items in ascending container-id order.
type TickResult struct {
	Items []TickItem
}

// ShardFinish is a worker's end-of-crawl accounting: its Degradation
// tallies with the final per-container losses (dropped notifications,
// undeliverable queued messages) folded in.
type ShardFinish struct {
	Degradation Degradation
}

// ShardWorker drives one shard's containers through coordinator-paced
// tick phases. All methods are called by one goroutine at a time (the
// coordinator serializes per-shard calls); distinct workers may run
// their phases concurrently — all cross-shard state (the clock, the
// push scheduler, record IDs) is owned by the coordinator.
type ShardWorker struct {
	c     *Crawler
	r     *run
	id    int
	seeds []ShardSeed

	live    []*container
	resumes containerHeap
	batch   []*batchItem

	// dirty marks shard state changed since the last TakeDirty, so the
	// transport persists exactly the ticks that mutated something.
	dirty bool
}

// NewShardWorker builds a worker for one shard of the fleet. seeds
// carry global indices; cfg is the same crawl config every shard and
// the coordinator share (checkpointing fields are ignored — shard
// durability is the transport's job).
func NewShardWorker(ctx context.Context, cfg Config, shard int, seeds []ShardSeed) (*ShardWorker, error) {
	if cfg.Clock == nil || cfg.NewClient == nil || cfg.Driver == nil {
		return nil, fmt.Errorf("crawler: Clock, NewClient and Driver are required")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	c := &Crawler{cfg: cfg, tel: newCrawlMetrics(cfg.Metrics)}
	w := &ShardWorker{c: c, id: shard, seeds: seeds}
	w.r = &run{
		c:        c,
		cfg:      &c.cfg,
		ctx:      ctx,
		res:      &Result{},
		occ:      make(map[string]int),
		restored: make(map[string]*WPNRecord),
	}
	return w, nil
}

// ShardID returns the worker's shard number.
func (w *ShardWorker) ShardID() int { return w.id }

// Containers returns how many containers the worker currently owns.
func (w *ShardWorker) Containers() int { return len(w.live) }

// ShardHealth is one worker's live-introspection line, served through
// the fleet's /fleetz endpoint: container ownership, scheduling
// pressure, and circuit-breaker posture (how many per-container host
// circuits sit in each state — a fleet-wide "open" spike is the first
// visible symptom of a push-service outage).
type ShardHealth struct {
	Shard      int            `json:"shard"`
	Containers int            `json:"containers"`
	Dead       int            `json:"dead,omitempty"`
	Queued     int            `json:"queued"`
	Collected  int            `json:"collected"`
	Breakers   map[string]int `json:"breakers,omitempty"`
}

// Health snapshots the worker's introspection state. Called on the
// coordinator's serial path (same discipline as every worker method).
func (w *ShardWorker) Health() *ShardHealth {
	h := &ShardHealth{Shard: w.id, Containers: len(w.live), Queued: len(w.resumes)}
	for _, ct := range w.live {
		if ct.dead {
			h.Dead++
		}
		h.Collected += ct.collected
		for _, hs := range ct.brk.Export() {
			if h.Breakers == nil {
				h.Breakers = make(map[string]int, 2)
			}
			h.Breakers[hs.State]++
		}
	}
	return h
}

// TakeDirty reports whether shard state changed since the last call,
// clearing the flag.
func (w *ShardWorker) TakeDirty() bool {
	d := w.dirty
	w.dirty = false
	return d
}

// Seed visits the shard's seed URLs in parallel containers and reports
// per-seed outcomes for the coordinator's global NPR list. Containers
// are created with their global ids before any visit.
func (w *ShardWorker) Seed() (*ShardSeedReport, error) {
	containers := make([]*container, len(w.seeds))
	urls := make([]string, len(w.seeds))
	for i, s := range w.seeds {
		urls[i] = s.URL
		containers[i] = w.c.newContainerWithID(s.Index+1, s.URL)
	}
	live, outcomes := w.r.seedContainers(containers, urls)
	w.live = live
	w.resumes = make(containerHeap, len(live))
	copy(w.resumes, live)
	heap.Init(&w.resumes)
	w.r.end = w.c.cfg.Clock.Now().Add(w.c.cfg.CollectionWindow)
	w.dirty = true

	rep := &ShardSeedReport{Status: w.status()}
	for i, oc := range outcomes {
		rep.Outcomes = append(rep.Outcomes, ShardSeedOutcome{
			Index: w.seeds[i].Index, Requested: oc.requested, Registered: oc.registered,
		})
	}
	return rep, nil
}

func (w *ShardWorker) status() TickStatus {
	st := TickStatus{Queued: len(w.resumes)}
	if len(w.resumes) > 0 {
		st.NextResume = w.resumes[0].nextResume
		st.HasResume = true
	}
	return st
}

// Poll runs the tick's batch collection and poll phase (pump phases
// 1a/1b): due containers are popped from the suspension heap (crash
// plans consulted), live-window containers joined in, then every
// container in the batch polls the push service in parallel and the
// outcomes are classified serially. The batch stays open until Click.
// final selects the end-of-window drain batch instead.
func (w *ShardWorker) Poll(now time.Time, final bool) (*TickPoll, error) {
	popped := len(w.resumes) > 0 && !w.resumes[0].nextResume.After(now)
	if final {
		w.batch = w.r.finalBatch(w.live)
	} else {
		w.batch = w.r.collectDue(&w.resumes, w.live, now)
	}
	if popped || len(w.batch) > 0 {
		w.dirty = true
	}
	any := w.r.phasePoll(w.batch, w.c.tel.enabled)
	return &TickPoll{Due: len(w.batch), Any: any, Status: w.status()}, nil
}

// Dispatch runs pump phase 2 on the open batch. The coordinator calls
// it only on ticks where some shard's poll returned messages, before
// advancing the shared clock by ClickDelay.
func (w *ShardWorker) Dispatch() error {
	w.r.phaseDispatch(w.batch, w.c.tel.enabled)
	return nil
}

// Click runs pump phase 4 (auto-clicks + landing-page subscription
// visits) and folds the batch into container state, returning the
// tick's records (IDs unassigned) and additional URLs per container.
// On ticks with no messages anywhere the coordinator skips Dispatch
// and the clock advance and calls Click directly; the phases are
// no-ops then and the call just closes the batch.
func (w *ShardWorker) Click() (*TickResult, error) {
	tel := w.c.tel.enabled
	w.r.phaseClick(w.batch, tel)
	res := &TickResult{}
	for _, it := range w.batch {
		recs, additional := w.r.foldItem(it)
		if len(recs) > 0 || len(additional) > 0 {
			res.Items = append(res.Items, TickItem{
				ContainerID: it.ct.id, Records: recs, AdditionalURLs: additional,
			})
		}
	}
	w.r.observeBatchLatency(w.batch, tel)
	w.batch = nil
	return res, nil
}

// Finish returns the shard's final accounting: its Degradation with
// the end-of-crawl per-container losses folded in, mirroring the
// single-process finish.
func (w *ShardWorker) Finish() (*ShardFinish, error) {
	deg := w.r.res.Degradation
	for _, ct := range w.live {
		deg.DroppedNotifications += ct.br.DroppedNotifications()
	}
	if w.r.cfg.Pending != nil {
		for _, tok := range w.r.lostTokens {
			deg.RecordsDroppedEst += w.r.cfg.Pending.Pending(tok)
		}
	}
	return &ShardFinish{Degradation: deg}, nil
}

// Adopt transfers another (dead) shard's persisted containers into this
// worker — the work-stealing rebalance. The orphans join the live set
// and the suspension heap exactly as their last saved state left them,
// and the dead shard's Degradation tallies and lost tokens fold in so
// the fleet's final aggregate misses nothing.
func (w *ShardWorker) Adopt(st *ShardState) error {
	if err := w.checkState(st); err != nil {
		return err
	}
	for i := range st.Containers {
		// Chain-recorder state never crosses shards: its span IDs
		// reference the dead shard's tracer, and restoring them against
		// this worker's tracer would parent new events under unrelated
		// spans. Adopted chains restart as roots instead.
		st.Containers[i].Chain = nil
		ct := w.c.containerFromState(&st.Containers[i])
		w.live = append(w.live, ct)
		if st.Containers[i].InHeap {
			heap.Push(&w.resumes, ct)
		}
	}
	sort.Slice(w.live, func(i, j int) bool { return w.live[i].id < w.live[j].id })
	w.seeds = append(w.seeds, st.Seeds...)
	sort.Slice(w.seeds, func(i, j int) bool { return w.seeds[i].Index < w.seeds[j].Index })
	w.r.res.Degradation.Merge(st.Degradation)
	w.r.lostTokens = append(w.r.lostTokens, st.LostTokens...)
	w.dirty = true
	return nil
}

func (w *ShardWorker) checkState(st *ShardState) error {
	if st.Version != ShardStateVersion {
		return fmt.Errorf("crawler: shard state version %d, want %d", st.Version, ShardStateVersion)
	}
	if dev := w.c.cfg.Device.String(); st.Device != dev {
		return fmt.Errorf("crawler: shard state is for device %q, this worker is %q", st.Device, dev)
	}
	return nil
}
