package crawler

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// CheckpointVersion is bumped when the on-disk format changes
// incompatibly; LoadCheckpoint rejects other versions.
const CheckpointVersion = 1

// ContainerCursor is the persisted position of one container: enough to
// audit where a crawl stood when it was killed. Resume does not restore
// cursors directly — it replays the deterministic simulation from the
// epoch and deduplicates records against the checkpoint — but the
// cursors make the checkpoint a complete, inspectable crawl snapshot.
type ContainerCursor struct {
	ID           int                  `json:"id"`
	SeedURL      string               `json:"seed_url"`
	ClientID     string               `json:"client_id"`
	RegisteredAt time.Time            `json:"registered_at"`
	ActiveUntil  time.Time            `json:"active_until"`
	NextResume   time.Time            `json:"next_resume"`
	Collected    int                  `json:"collected"`
	Cycles       int                  `json:"cycles"`
	Recoveries   int                  `json:"recoveries"`
	PollFails    int                  `json:"poll_fails,omitempty"`
	Dead         bool                 `json:"dead,omitempty"`
	Sources      map[string]string    `json:"sources,omitempty"`   // token → source URL
	RegTimes     map[string]time.Time `json:"reg_times,omitempty"` // token → registration time
}

// Checkpoint is the JSON crawl snapshot written to Config.CheckpointPath:
// the records collected so far, per-container cursors, and the
// degradation tallies at write time.
type Checkpoint struct {
	Version int       `json:"version"`
	Device  string    `json:"device"`
	SimTime time.Time `json:"sim_time"`
	NextID  int       `json:"next_id"`

	SeedURLs       []string `json:"seed_urls,omitempty"`
	NPRURLs        []string `json:"npr_urls,omitempty"`
	AdditionalURLs []string `json:"additional_urls,omitempty"`
	Containers     int      `json:"containers"`

	Records     []*WPNRecord      `json:"records,omitempty"`
	Cursors     []ContainerCursor `json:"cursors,omitempty"`
	Degradation Degradation       `json:"degradation"`
}

// snapshot captures the run's current state as a Checkpoint.
func (r *run) snapshot(live []*container) *Checkpoint {
	cp := &Checkpoint{
		Version:        CheckpointVersion,
		Device:         r.cfg.Device.String(),
		SimTime:        r.cfg.Clock.Now(),
		NextID:         r.c.nextID,
		SeedURLs:       r.res.SeedURLs,
		NPRURLs:        r.res.NPRURLs,
		AdditionalURLs: r.res.AdditionalURLs,
		Containers:     r.res.Containers,
		Records:        r.res.Records,
		Degradation:    r.res.Degradation,
	}
	for _, ct := range live {
		cp.Cursors = append(cp.Cursors, ct.cursor())
	}
	return cp
}

// cursor captures the container's persisted position.
func (ct *container) cursor() ContainerCursor {
	return ContainerCursor{
		ID:           ct.id,
		SeedURL:      ct.seedURL,
		ClientID:     ct.clientID,
		RegisteredAt: ct.registeredAt,
		ActiveUntil:  ct.activeUntil,
		NextResume:   ct.nextResume,
		Collected:    ct.collected,
		Cycles:       ct.cycles,
		Recoveries:   ct.recoveries,
		PollFails:    ct.pollFails,
		Dead:         ct.dead,
		Sources:      ct.sourceByToken,
		RegTimes:     ct.regTimeByToken,
	}
}

// maybeCheckpoint writes a periodic checkpoint when CheckpointEvery of
// simulated time has elapsed since the last write.
func (r *run) maybeCheckpoint(live []*container) {
	if r.cfg.CheckpointPath == "" {
		return
	}
	now := r.cfg.Clock.Now()
	if now.Sub(r.lastCheckpoint) < r.cfg.CheckpointEvery {
		return
	}
	r.lastCheckpoint = now
	r.writeCheckpoint(live)
}

// writeCheckpoint persists the current state if checkpointing is
// enabled. Write errors are not fatal to the crawl (a full disk must
// not kill a week of collection); success is counted in the report.
func (r *run) writeCheckpoint(live []*container) {
	if r.cfg.CheckpointPath == "" {
		return
	}
	if err := SaveCheckpoint(r.cfg.CheckpointPath, r.snapshot(live)); err == nil {
		r.res.Degradation.CheckpointWrites++
		r.c.tel.checkpointWrites.Inc()
	}
}

// SaveCheckpoint atomically writes a checkpoint: marshal, write to a
// temp file in the same directory, fsync, rename. Before the final
// rename, the previous checkpoint (if any) is rotated to path+".bak",
// so even a corrupted primary — a crash between the renames, a torn
// write on a dying disk — leaves one complete earlier snapshot for
// LoadCheckpointFallback to resume from.
func SaveCheckpoint(path string, cp *Checkpoint) error {
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("crawler: marshal checkpoint: %w", err)
	}
	if err := writeFileDurable(path, data); err != nil {
		return fmt.Errorf("crawler: checkpoint: %w", err)
	}
	return nil
}

// writeFileDurable is the shared atomic-write-with-backup-rotation used
// by run checkpoints and fleet shard state: temp file in the same
// directory, fsync, rotate the existing file to .bak, rename into
// place. The rotation is best-effort — failing to keep a backup must
// not fail the write.
func writeFileDurable(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("temp file: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("write: %w", werr)
	}
	if _, err := os.Stat(path); err == nil {
		os.Rename(path, path+".bak")
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("commit: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("crawler: parse checkpoint %s: %w", path, err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("crawler: checkpoint %s: version %d, want %d", path, cp.Version, CheckpointVersion)
	}
	return &cp, nil
}

// LoadCheckpointFallback loads a checkpoint, falling back to the .bak
// rotated by SaveCheckpoint when the primary is missing, truncated,
// corrupt, or version-mismatched — the states a crash mid-write can
// leave behind. fellBack reports that the backup was used, so callers
// can note the degradation. When both copies are unusable the primary's
// error is returned (preserving os.IsNotExist for fresh starts).
func LoadCheckpointFallback(path string) (cp *Checkpoint, fellBack bool, err error) {
	cp, err = LoadCheckpoint(path)
	if err == nil {
		return cp, false, nil
	}
	if bcp, berr := LoadCheckpoint(path + ".bak"); berr == nil {
		return bcp, true, nil
	}
	return nil, false, err
}

// loadCheckpoint merges a previous checkpoint into this run for resume:
// records are indexed by content key so the deterministic replay can
// hand back the already-collected copies instead of duplicating them. A
// missing file is a fresh start, not an error; a corrupt file falls
// back to the last good .bak with a Degradation note rather than
// failing the run.
func (r *run) loadCheckpoint() error {
	cp, fellBack, err := LoadCheckpointFallback(r.cfg.CheckpointPath)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if fellBack {
		r.res.Degradation.CheckpointFallbacks++
	}
	if cp.Device != r.cfg.Device.String() {
		return fmt.Errorf("crawler: checkpoint %s is for device %q, this crawl is %q",
			r.cfg.CheckpointPath, cp.Device, r.cfg.Device)
	}
	occ := make(map[string]int)
	for _, rec := range cp.Records {
		k := recordKey(rec)
		occ[k]++
		r.restored[fmt.Sprintf("%s\x1e%d", k, occ[k])] = rec
	}
	r.cpNextID = cp.NextID
	r.res.Degradation.ResumedFromCheckpoint = true
	return nil
}
