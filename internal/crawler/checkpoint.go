package crawler

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// CheckpointVersion is bumped when the on-disk format changes
// incompatibly; LoadCheckpoint rejects other versions.
const CheckpointVersion = 1

// ContainerCursor is the persisted position of one container: enough to
// audit where a crawl stood when it was killed. Resume does not restore
// cursors directly — it replays the deterministic simulation from the
// epoch and deduplicates records against the checkpoint — but the
// cursors make the checkpoint a complete, inspectable crawl snapshot.
type ContainerCursor struct {
	ID           int                  `json:"id"`
	SeedURL      string               `json:"seed_url"`
	ClientID     string               `json:"client_id"`
	RegisteredAt time.Time            `json:"registered_at"`
	ActiveUntil  time.Time            `json:"active_until"`
	NextResume   time.Time            `json:"next_resume"`
	Collected    int                  `json:"collected"`
	Cycles       int                  `json:"cycles"`
	Recoveries   int                  `json:"recoveries"`
	Dead         bool                 `json:"dead,omitempty"`
	Sources      map[string]string    `json:"sources,omitempty"`   // token → source URL
	RegTimes     map[string]time.Time `json:"reg_times,omitempty"` // token → registration time
}

// Checkpoint is the JSON crawl snapshot written to Config.CheckpointPath:
// the records collected so far, per-container cursors, and the
// degradation tallies at write time.
type Checkpoint struct {
	Version int       `json:"version"`
	Device  string    `json:"device"`
	SimTime time.Time `json:"sim_time"`
	NextID  int       `json:"next_id"`

	SeedURLs       []string `json:"seed_urls,omitempty"`
	NPRURLs        []string `json:"npr_urls,omitempty"`
	AdditionalURLs []string `json:"additional_urls,omitempty"`
	Containers     int      `json:"containers"`

	Records     []*WPNRecord      `json:"records,omitempty"`
	Cursors     []ContainerCursor `json:"cursors,omitempty"`
	Degradation Degradation       `json:"degradation"`
}

// snapshot captures the run's current state as a Checkpoint.
func (r *run) snapshot(live []*container) *Checkpoint {
	cp := &Checkpoint{
		Version:        CheckpointVersion,
		Device:         r.cfg.Device.String(),
		SimTime:        r.cfg.Clock.Now(),
		NextID:         r.c.nextID,
		SeedURLs:       r.res.SeedURLs,
		NPRURLs:        r.res.NPRURLs,
		AdditionalURLs: r.res.AdditionalURLs,
		Containers:     r.res.Containers,
		Records:        r.res.Records,
		Degradation:    r.res.Degradation,
	}
	for _, ct := range live {
		cp.Cursors = append(cp.Cursors, ContainerCursor{
			ID:           ct.id,
			SeedURL:      ct.seedURL,
			ClientID:     ct.clientID,
			RegisteredAt: ct.registeredAt,
			ActiveUntil:  ct.activeUntil,
			NextResume:   ct.nextResume,
			Collected:    ct.collected,
			Cycles:       ct.cycles,
			Recoveries:   ct.recoveries,
			Dead:         ct.dead,
			Sources:      ct.sourceByToken,
			RegTimes:     ct.regTimeByToken,
		})
	}
	return cp
}

// maybeCheckpoint writes a periodic checkpoint when CheckpointEvery of
// simulated time has elapsed since the last write.
func (r *run) maybeCheckpoint(live []*container) {
	if r.cfg.CheckpointPath == "" {
		return
	}
	now := r.cfg.Clock.Now()
	if now.Sub(r.lastCheckpoint) < r.cfg.CheckpointEvery {
		return
	}
	r.lastCheckpoint = now
	r.writeCheckpoint(live)
}

// writeCheckpoint persists the current state if checkpointing is
// enabled. Write errors are not fatal to the crawl (a full disk must
// not kill a week of collection); success is counted in the report.
func (r *run) writeCheckpoint(live []*container) {
	if r.cfg.CheckpointPath == "" {
		return
	}
	if err := SaveCheckpoint(r.cfg.CheckpointPath, r.snapshot(live)); err == nil {
		r.res.Degradation.CheckpointWrites++
		r.c.tel.checkpointWrites.Inc()
	}
}

// SaveCheckpoint atomically writes a checkpoint: marshal, write to a
// temp file in the same directory, fsync, rename. A crash mid-write
// leaves the previous checkpoint intact.
func SaveCheckpoint(path string, cp *Checkpoint) error {
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("crawler: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("crawler: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("crawler: write checkpoint: %w", werr)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("crawler: commit checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("crawler: parse checkpoint %s: %w", path, err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("crawler: checkpoint %s: version %d, want %d", path, cp.Version, CheckpointVersion)
	}
	return &cp, nil
}

// loadCheckpoint merges a previous checkpoint into this run for resume:
// records are indexed by content key so the deterministic replay can
// hand back the already-collected copies instead of duplicating them. A
// missing file is a fresh start, not an error.
func (r *run) loadCheckpoint() error {
	cp, err := LoadCheckpoint(r.cfg.CheckpointPath)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if cp.Device != r.cfg.Device.String() {
		return fmt.Errorf("crawler: checkpoint %s is for device %q, this crawl is %q",
			r.cfg.CheckpointPath, cp.Device, r.cfg.Device)
	}
	occ := make(map[string]int)
	for _, rec := range cp.Records {
		k := recordKey(rec)
		occ[k]++
		r.restored[fmt.Sprintf("%s\x1e%d", k, occ[k])] = rec
	}
	r.cpNextID = cp.NextID
	r.res.Degradation.ResumedFromCheckpoint = true
	return nil
}
