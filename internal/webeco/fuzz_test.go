package webeco

import "testing"

// FuzzParseAdID checks ad-id parsing never panics and accepts its own
// encodings.
func FuzzParseAdID(f *testing.F) {
	f.Add("c1.k2.d3.n4")
	f.Add("garbage")
	f.Add("c-1.k0.d0.n0")
	f.Fuzz(func(t *testing.T, id string) {
		ParseAdID(id) //nolint:errcheck
	})
}

// FuzzParseAlertAdID checks alert-id parsing never panics and
// round-trips its own encodings.
func FuzzParseAlertAdID(f *testing.F) {
	f.Add("al.site.com.n5")
	f.Add("al.bad")
	f.Add("al..n")
	f.Fuzz(func(t *testing.T, id string) {
		parseAlertAdID(id) //nolint:errcheck
	})
}
