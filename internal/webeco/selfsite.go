package webeco

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"pushadminer/internal/page"
	"pushadminer/internal/serviceworker"
	"pushadminer/internal/webpush"
)

// SelfSite is a website that runs its own push notifications rather than
// embedding an ad network: the news/weather/bank alert senders the paper
// finds in non-ad clusters, the welcome-message senders, and the
// occasional self-operated malicious pusher (the aurolog[.]ru motivating
// example).
type SelfSite struct {
	Domain   string
	Category Category
	// Malicious self sites send victims to external scam domains.
	ExternalLanding []string

	eco *AdEcosystem
}

// URL returns the site's front page URL.
func (s *SelfSite) URL() string { return "https://" + s.Domain + "/" }

// Doc builds the site's front page.
func (s *SelfSite) Doc(keyword string, doublePermission bool) *page.Doc {
	return &page.Doc{
		Title:                s.Domain,
		Content:              "homepage of " + s.Domain,
		Scripts:              []string{"self-push loader", keyword},
		RequestsNotification: true,
		DoublePermission:     doublePermission,
		SWURL:                "https://" + s.Domain + "/sw.js",
		SubscribeURL:         "https://" + s.Domain + "/subscribe",
	}
}

// Handler serves the site: front page, its own (default-behaviour)
// service worker, subscription intake, and same-origin article pages.
func (s *SelfSite) Handler(keyword string, doublePermission bool) http.Handler {
	docBytes := s.Doc(keyword, doublePermission).Encode()
	swBytes := (&serviceworker.Script{URL: "https://" + s.Domain + "/sw.js"}).Source()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/":
			w.Header().Set("Content-Type", page.ContentType)
			w.Write(docBytes) //nolint:errcheck
		case r.URL.Path == "/sw.js":
			w.Header().Set("Content-Type", "application/javascript")
			w.Write(swBytes) //nolint:errcheck
		case r.Method == http.MethodPost && r.URL.Path == "/subscribe":
			var sub subscribeBody
			if err := json.NewDecoder(r.Body).Decode(&sub); err != nil || sub.Token == "" {
				http.Error(w, "bad subscription", http.StatusBadRequest)
				return
			}
			s.scheduleFor(sub)
			w.WriteHeader(http.StatusCreated)
		default:
			// Same-origin article/landing pages.
			doc := &page.Doc{
				Title:   s.Category.LandingTitle,
				Content: s.Category.LandingContent,
			}
			w.Header().Set("Content-Type", page.ContentType)
			w.Write(doc.Encode()) //nolint:errcheck
		}
	})
}

// scheduleFor plans this site's notifications for a new subscriber.
// Unlike ad networks, the payload embeds the full notification (the SW
// uses the default push handler), and targets point back at the site's
// own origin — except for malicious self sites, which send victims to
// their external landing domains.
func (s *SelfSite) scheduleFor(sub subscribeBody) {
	if s.eco.dormant(sub.Origin) {
		return
	}
	cfg := s.eco.Cfg
	rng := subRNG(cfg.Seed, "self|"+s.Domain+"|"+sub.schedKey())
	now := s.eco.Now()

	n := cfg.PushesPerSubMin + rng.Intn(cfg.PushesPerSubMax-cfg.PushesPerSubMin+1)
	at := now
	for i := 0; i < n; i++ {
		if i == 0 {
			if rng.Float64() < 0.98 {
				at = now.Add(time.Duration(rng.Int63n(int64(cfg.FirstPushWithin))))
			} else {
				at = now.Add(cfg.FirstPushWithin + time.Duration(rng.Int63n(int64(cfg.LatePushMax))))
			}
		} else {
			at = at.Add(4*time.Hour + time.Duration(rng.Int63n(int64(72*time.Hour))))
		}
		notif := s.buildNotification(rng)
		payload := webpush.EncodePayload(webpush.Payload{Notification: &notif})
		s.eco.Sched.Schedule(at, sub.Endpoint, payload)
	}
}

func (s *SelfSite) buildNotification(rng *rand.Rand) webpush.Notification {
	cat := s.Category
	title := fillSlots(cat.Titles[rng.Intn(len(cat.Titles))], rng)
	body := fillSlots(cat.Bodies[rng.Intn(len(cat.Bodies))], rng)
	n := webpush.Notification{
		Title: title,
		Body:  body,
		Icon:  fmt.Sprintf("https://%s/icon.png", s.Domain),
	}
	switch {
	case len(s.ExternalLanding) > 0:
		// Malicious self site: external scam landing.
		d := s.ExternalLanding[rng.Intn(len(s.ExternalLanding))]
		n.TargetURL = fmt.Sprintf("https://%s/%s.html?case=%d",
			d, joinPath(cat.PathTokens), rng.Intn(10000))
		if s.eco.OnMalURL != nil {
			s.eco.OnMalURL(n.TargetURL, s.eco.Now())
		}
		s.eco.Truth.registerSelfMalicious(n.TargetURL)
	case rng.Float64() < s.eco.Cfg.NoTargetFraction:
		// Pure alert with no landing.
	default:
		// Same-origin article, unique id per push (singleton paths).
		n.TargetURL = fmt.Sprintf("https://%s/%s/a%d.html?id=%d",
			s.Domain, joinPath(cat.PathTokens), rng.Intn(1<<20), rng.Intn(1<<20))
	}
	return n
}

func joinPath(tokens []string) string {
	out := ""
	for i, t := range tokens {
		if i > 0 {
			out += "/"
		}
		out += t
	}
	return out
}
