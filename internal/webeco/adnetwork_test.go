package webeco

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"pushadminer/internal/serviceworker"
)

// httpGet fetches a URL through the ecosystem's virtual network.
func httpGet(t *testing.T, e *Ecosystem, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := e.Net.Client().Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, body
}

func TestAdNetworkSWScriptServed(t *testing.T) {
	e := newEco(t, tinyConfig())
	an := e.Networks()[0]
	resp, body := httpGet(t, e, an.SWURL())
	if resp.StatusCode != 200 {
		t.Fatalf("sw.js status %d", resp.StatusCode)
	}
	script, err := serviceworker.Parse(body)
	if err != nil {
		t.Fatalf("SW script unparseable: %v", err)
	}
	if len(script.OnPush) == 0 || len(script.OnClick) == 0 {
		t.Error("network SW has no handlers")
	}
}

func TestServeAdCampaignCreative(t *testing.T) {
	e := newEco(t, tinyConfig())
	an := e.Networks()[0]
	camp := an.Campaigns[0]
	id := camp.AdID(0, 0, 42)
	_, body := httpGet(t, e, "https://"+an.Host+"/ad?id="+id)
	var resp struct {
		Title, Body, Icon, Target string
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("ad response unparseable: %v (%s)", err, body)
	}
	if resp.Title != camp.Creatives[0].Title {
		t.Errorf("title = %q, want %q", resp.Title, camp.Creatives[0].Title)
	}
	if resp.Target == "" {
		t.Error("no target URL")
	}
	// Deterministic: same id serves the same creative + target.
	_, body2 := httpGet(t, e, "https://"+an.Host+"/ad?id="+id)
	if string(body) != string(body2) {
		t.Error("ad decisioning not deterministic per id")
	}
	// Ground truth registered.
	tr, ok := e.Truth().AdTruth(id)
	if !ok || !tr.IsAd || tr.Network != an.Spec.Name {
		t.Errorf("ad truth = %+v, %v", tr, ok)
	}
}

func TestServeAdErrors(t *testing.T) {
	e := newEco(t, tinyConfig())
	an := e.Networks()[0]
	if resp, _ := httpGet(t, e, "https://"+an.Host+"/ad?id=garbage"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage id status = %d", resp.StatusCode)
	}
	if resp, _ := httpGet(t, e, "https://"+an.Host+"/ad?id=c999999.k0.d0.n1"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown campaign status = %d", resp.StatusCode)
	}
	if resp, _ := httpGet(t, e, "https://"+an.Host+"/ad?id=lt.c1.n999999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown longtail status = %d", resp.StatusCode)
	}
}

func TestAlertAdIDRoundTrip(t *testing.T) {
	id := alertAdID("my.site.com", 77)
	domain, nonce, err := parseAlertAdID(id)
	if err != nil {
		t.Fatal(err)
	}
	if domain != "my.site.com" || nonce != 77 {
		t.Errorf("parsed %q %d", domain, nonce)
	}
	if _, _, err := parseAlertAdID("al.bad"); err == nil {
		t.Error("bad alert id parsed")
	}
}

func TestServeAlertAd(t *testing.T) {
	e := newEco(t, tinyConfig())
	an := e.Networks()[0]
	id := alertAdID("somesite.com", 5)
	_, body := httpGet(t, e, "https://"+an.Host+"/ad?id="+id)
	var resp struct{ Title, Target string }
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Title == "" {
		t.Error("alert has no title")
	}
	if resp.Target != "" && !strings.Contains(resp.Target, "somesite.com") {
		t.Errorf("alert target %q not same-origin", resp.Target)
	}
	tr, ok := e.Truth().AdTruth(id)
	if !ok || tr.IsAd {
		t.Errorf("alert truth = %+v (must not be an ad)", tr)
	}
}

func TestTrackRedirector(t *testing.T) {
	e := newEco(t, tinyConfig())
	an := e.Networks()[0]
	client := e.Net.ClientNoRedirect()
	resp, err := client.Get("https://" + an.TrackHost + "/r?u=https%3A%2F%2Fland.test%2Fx")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		t.Fatalf("redirector status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "https://land.test/x" {
		t.Errorf("Location = %q", loc)
	}
	resp, err = client.Get("https://" + an.TrackHost + "/r")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing u status %d", resp.StatusCode)
	}
}

func TestSubscribeSchedulesPushes(t *testing.T) {
	e := newEco(t, tinyConfig())
	an := e.Networks()[0]
	sub := e.Push.Register("https://somepub.com", an.SWURL())
	body := `{"token":"` + sub.Token + `","endpoint":"` + sub.Endpoint + `","origin":"https://somepub.com","device":"desktop","hw":"desktop"}`
	resp, err := e.Net.Client().Post(an.SubscribeURL(), "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	if e.PendingPushes() == 0 {
		t.Fatal("subscription scheduled no pushes")
	}
	// Deliver them.
	at, ok := e.NextPushAt()
	if !ok {
		t.Fatal("no next push")
	}
	e.Clock.Advance(at.Sub(e.Clock.Now()) + 100*24*time.Hour)
	if n := e.Tick(); n == 0 {
		t.Fatal("tick delivered nothing")
	}
	if e.Push.Pending(sub.Token) == 0 {
		t.Error("push service has no queued messages after delivery")
	}
}

func TestSubscribeRejectsBadBody(t *testing.T) {
	e := newEco(t, tinyConfig())
	an := e.Networks()[0]
	resp, err := e.Net.Client().Post(an.SubscribeURL(), "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body status %d", resp.StatusCode)
	}
}

func TestDormancySuppressesScheduling(t *testing.T) {
	e := newEco(t, tinyConfig())
	e.SetDormancy(1.0) // everything dormant
	an := e.Networks()[0]
	sub := e.Push.Register("https://somepub.com", an.SWURL())
	body := `{"token":"` + sub.Token + `","endpoint":"` + sub.Endpoint + `","origin":"https://somepub.com","device":"desktop","hw":"desktop"}`
	resp, err := e.Net.Client().Post(an.SubscribeURL(), "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if e.PendingPushes() != 0 {
		t.Errorf("dormant origin scheduled %d pushes", e.PendingPushes())
	}
}

func TestLongtailResolve(t *testing.T) {
	e := newEco(t, tinyConfig())
	an := e.Networks()[0]
	camp := an.Campaigns[0]
	gen := e.adEco.Longtail
	id := gen.NewAdID(camp, nil)
	ad, err := gen.Resolve(id)
	if err != nil {
		t.Fatal(err)
	}
	if ad.CampaignID != camp.ID {
		t.Errorf("campaign id = %d", ad.CampaignID)
	}
	if ad.Malicious != camp.Category.Malicious {
		t.Error("longtail maliciousness does not inherit from campaign")
	}
	found := false
	for _, d := range camp.LandingDomains {
		if strings.Contains(ad.Landing, d) {
			found = true
		}
	}
	if !found {
		t.Errorf("longtail landing %q not on a campaign domain", ad.Landing)
	}
	// Two longtail ads differ.
	id2 := gen.NewAdID(camp, nil)
	ad2, _ := gen.Resolve(id2)
	if ad.Title == ad2.Title && ad.Landing == ad2.Landing {
		t.Error("longtail ads not diverse")
	}
	if _, err := gen.Resolve("lt.c1.n99999"); err == nil {
		t.Error("unknown longtail resolved")
	}
}

func TestComposeHeadlineDiverse(t *testing.T) {
	rng := subRNG(1, "headlines")
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		seen[composeHeadline(rng)] = true
	}
	if len(seen) < 150 {
		t.Errorf("only %d distinct headlines in 200 draws", len(seen))
	}
}
