package webeco

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"time"

	"pushadminer/internal/serviceworker"
	"pushadminer/internal/webpush"
)

// AdNetwork is one push ad network: its server host (subscription intake,
// ad decisioning, click tracking), CDN host (service worker script),
// tracking redirector, and campaign inventory.
type AdNetwork struct {
	Spec      NetworkSpec
	Slug      string
	Host      string // ad server
	CDNHost   string // serves sw.js
	TrackHost string // click-through redirector
	Campaigns []*Campaign

	eco *AdEcosystem
}

// AdEcosystem is the minimal surface an AdNetwork needs from the
// ecosystem; it keeps this file decoupled from ecosystem construction.
type AdEcosystem struct {
	Cfg      Config
	Truth    *Truth
	Sched    *scheduler
	Now      func() time.Time
	Longtail *longtailGen
	OnMalURL func(u string, firstSeen time.Time) // blocklist ground-truth hook

	// DormantFraction models web churn for revisit experiments: once
	// set, that fraction of origins stop scheduling pushes for new
	// subscriptions (the paper's April 2020 revisit found only 35 of
	// 300 sites still sending).
	DormantFraction float64

	// Evasion, when non-nil, lets malicious campaigns rotate burned
	// landing domains (§5.2's evasion behaviour).
	Evasion *EvasionController
}

// dormant reports whether an origin has gone dormant.
func (e *AdEcosystem) dormant(origin string) bool {
	if e.DormantFraction <= 0 {
		return false
	}
	return hashFrac(e.Cfg.Seed, "dormant|"+origin) < e.DormantFraction
}

func newAdNetwork(spec NetworkSpec, eco *AdEcosystem) *AdNetwork {
	s := slug(spec.Name)
	return &AdNetwork{
		Spec:      spec,
		Slug:      s,
		Host:      "ads." + s + ".net",
		CDNHost:   "cdn." + s + ".net",
		TrackHost: "trk." + s + ".net",
		eco:       eco,
	}
}

// SWURL returns the network's service worker script URL.
func (a *AdNetwork) SWURL() string { return "https://" + a.CDNHost + "/sw.js" }

// SubscribeURL returns the subscription intake endpoint.
func (a *AdNetwork) SubscribeURL() string { return "https://" + a.Host + "/subscribe" }

// TagKeyword returns the code-search signature of the network's embed
// tag.
func (a *AdNetwork) TagKeyword() string { return a.Spec.Keyword }

// Script builds the network's service worker program: resolve the ad
// from the ad server, show it; on click, fire the tracker and open the
// landing page (the behaviour PushAdMiner's instrumentation observed).
func (a *AdNetwork) Script() *serviceworker.Script {
	return &serviceworker.Script{
		URL: a.SWURL(),
		OnPush: []serviceworker.Op{
			{Do: serviceworker.OpFetch, URL: "https://" + a.Host + "/ad?id={{ad_id}}", SaveAs: "ad"},
			{Do: serviceworker.OpShowNotification, Notification: &webpush.Notification{
				Title: "{{ad.title}}", Body: "{{ad.body}}", Icon: "{{ad.icon}}", TargetURL: "{{ad.target}}",
			}},
		},
		OnClick: []serviceworker.Op{
			{Do: serviceworker.OpPostback, URL: "https://" + a.Host + "/click?t={{n.target_url}}"},
			{Do: serviceworker.OpOpenWindow, URL: "{{n.target_url}}"},
		},
	}
}

// CDNHandler serves the SW script.
func (a *AdNetwork) CDNHandler() http.Handler {
	src := a.Script().Source()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/sw.js" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/javascript")
		w.Write(src) //nolint:errcheck
	})
}

// TrackHandler redirects /r?u=<url> clicks to the landing page — the
// intermediate hop malicious chains route through.
func (a *AdNetwork) TrackHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/r" {
			http.NotFound(w, r)
			return
		}
		u := r.URL.Query().Get("u")
		if u == "" {
			http.Error(w, "missing u", http.StatusBadRequest)
			return
		}
		http.Redirect(w, r, u, http.StatusFound)
	})
}

// subscribeBody is the JSON the browser POSTs when announcing a new
// subscription.
type subscribeBody struct {
	Token    string `json:"token"`
	Endpoint string `json:"endpoint"`
	Origin   string `json:"origin"`
	Device   string `json:"device"`
	HW       string `json:"hw"`
	// Client is the browser instance's stable id; scheduling draws key
	// on it so each subscriber gets an independent but reproducible
	// push plan.
	Client string `json:"client"`
}

// schedKey returns the deterministic per-subscription scheduling key.
func (b subscribeBody) schedKey() string {
	return b.Origin + "|" + b.Device + "|" + b.HW + "|" + b.Client
}

// AdsHandler serves the network's ad-server endpoints.
func (a *AdNetwork) AdsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/subscribe":
			var sub subscribeBody
			if err := json.NewDecoder(r.Body).Decode(&sub); err != nil || sub.Token == "" {
				http.Error(w, "bad subscription", http.StatusBadRequest)
				return
			}
			returning := false
			if a.Tracks() {
				if _, err := r.Cookie("uid"); err == nil {
					returning = true
				} else {
					uid := fmt.Sprintf("u%x", subRNG(a.eco.Cfg.Seed, "uid|"+sub.schedKey()).Int63())
					http.SetCookie(w, &http.Cookie{Name: "uid", Value: uid, Path: "/"})
				}
			}
			a.scheduleSub(sub, returning)
			w.WriteHeader(http.StatusCreated)

		case r.URL.Path == "/ad":
			a.serveAd(w, r)

		case r.URL.Path == "/click":
			w.WriteHeader(http.StatusNoContent)

		case r.URL.Path == "/tag.js":
			w.Header().Set("Content-Type", "application/javascript")
			fmt.Fprintf(w, "/* %s push tag */", a.Spec.Keyword)

		default:
			http.NotFound(w, r)
		}
	})
}

// trackingNetworks use cookies to recognize a browser across sessions
// (§8): returning browsers are frequency-capped rather than treated as
// fresh subscribers. The crawler defeats this with one container (one
// cookie jar) per URL.
var trackingNetworks = map[string]bool{
	"Ad-Maven": true,
	"PopAds":   true,
	"AdsTerra": true,
}

// Tracks reports whether this network cookie-tracks browsers.
func (a *AdNetwork) Tracks() bool { return trackingNetworks[a.Spec.Name] }

// networkAdShare is the probability that a push from a network is a
// third-party ad rather than a site-authored alert. Engagement platforms
// (OneSignal, PushEngage, iZooto, PushCrew) mostly relay publishers' own
// notifications; pop/push monetization networks are almost all ads.
var networkAdShare = map[string]float64{
	"OneSignal":  0.15,
	"PushCrew":   0.30,
	"PushEngage": 0.25,
	"iZooto":     0.30,
	"PubMatic":   0.60,
	"Criteo":     0.50,
}

func (a *AdNetwork) adShare() float64 {
	if s, ok := networkAdShare[a.Spec.Name]; ok {
		return s
	}
	return 0.92
}

// subRNG derives a deterministic RNG from the ecosystem seed and a key,
// so scheduling does not depend on map-iteration or arrival order.
func subRNG(seed int64, key string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, key)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// scheduleFor plans the pushes a new subscription will receive; see
// scheduleSub.
func (a *AdNetwork) scheduleFor(sub subscribeBody) { a.scheduleSub(sub, false) }

// scheduleSub plans the pushes a new subscription will receive over the
// collection window: 98% of first notifications within
// Config.FirstPushWithin, the rest up to LatePushMax later (§6.1.2), and
// a mix of campaign ads and long-tail one-off ads. A returning
// (cookie-recognized) browser is frequency-capped to a single push.
func (a *AdNetwork) scheduleSub(sub subscribeBody, returning bool) {
	if a.eco.dormant(sub.Origin) {
		return
	}
	cfg := a.eco.Cfg
	rng := subRNG(cfg.Seed, "sched|"+a.Slug+"|"+sub.schedKey())
	now := a.eco.Now()

	n := cfg.PushesPerSubMin + rng.Intn(cfg.PushesPerSubMax-cfg.PushesPerSubMin+1)
	if returning {
		n = 1 // frequency cap for recognized browsers
	}
	eligible := a.eligibleCampaigns(sub.Device, sub.HW == "physical")
	if len(eligible) == 0 {
		return
	}
	at := now
	for i := 0; i < n; i++ {
		if i == 0 {
			if rng.Float64() < 0.98 {
				at = now.Add(time.Duration(rng.Int63n(int64(cfg.FirstPushWithin))))
			} else {
				at = now.Add(cfg.FirstPushWithin + time.Duration(rng.Int63n(int64(cfg.LatePushMax))))
			}
		} else {
			// Subsequent pushes: hours to a couple of days apart.
			at = at.Add(2*time.Hour + time.Duration(rng.Int63n(int64(46*time.Hour))))
		}
		var adID string
		switch {
		case rng.Float64() >= a.adShare() && !a.eco.Truth.IsMaliciousDomain(originDomain(sub.Origin)):
			// Site-authored alert relayed by the network: not an ad.
			// Scam landing pages that recruited this subscription author
			// no alerts of their own — they only push more ads.
			adID = alertAdID(originDomain(sub.Origin), rng.Intn(1<<30))
		case rng.Float64() < 0.45:
			// Long-tail one-off ad reusing a campaign's landing domain
			// (the singleton WPNs that meta-clustering later reconnects).
			camp := pickWeighted(eligible, rng)
			adID = a.eco.Longtail.NewAdID(camp, rng)
		default:
			camp := pickWeighted(eligible, rng)
			adID = camp.AdID(rng.Intn(len(camp.Creatives)), rng.Intn(len(camp.LandingDomains)), rng.Intn(1<<30))
		}
		payload := webpush.EncodePayload(webpush.Payload{AdID: adID, CampaignHint: a.Slug})
		a.eco.Sched.Schedule(at, sub.Endpoint, payload)
	}
}

func (a *AdNetwork) eligibleCampaigns(device string, physical bool) []*Campaign {
	var out []*Campaign
	for _, c := range a.Campaigns {
		if c.EligibleFor(device, physical) {
			out = append(out, c)
		}
	}
	return out
}

func pickWeighted(cs []*Campaign, rng *rand.Rand) *Campaign {
	total := 0
	for _, c := range cs {
		total += c.Weight
	}
	x := rng.Intn(total)
	for _, c := range cs {
		x -= c.Weight
		if x < 0 {
			return c
		}
	}
	return cs[len(cs)-1]
}

// alertAdID encodes a site-authored alert for the given source domain.
func alertAdID(domain string, nonce int) string {
	return fmt.Sprintf("al.%s.n%d", domain, nonce)
}

// parseAlertAdID decodes an alert ad id into (domain, nonce).
func parseAlertAdID(id string) (string, int, error) {
	rest := strings.TrimPrefix(id, "al.")
	i := strings.LastIndex(rest, ".n")
	if i <= 0 {
		return "", 0, fmt.Errorf("webeco: bad alert ad id %q", id)
	}
	var nonce int
	if _, err := fmt.Sscanf(rest[i+2:], "%d", &nonce); err != nil {
		return "", 0, fmt.Errorf("webeco: bad alert ad id %q: %w", id, err)
	}
	return rest[:i], nonce, nil
}

// originDomain strips a scheme from an origin string.
func originDomain(origin string) string {
	s := strings.TrimPrefix(origin, "https://")
	return strings.TrimPrefix(s, "http://")
}

// alertCategories are the site-authored notification flavours, weighted.
var alertCategories = []struct {
	name   string
	weight int
}{
	{"news", 55}, {"weather", 18}, {"bankalert", 7}, {"welcome", 12}, {"horoscope", 8},
}

// buildAlert generates a site alert creative for the given domain,
// deterministic per ad id.
func (a *AdNetwork) buildAlert(id, domain string) adResponse {
	// The site's content flavour is a stable property of the site.
	catName := alertCategories[0].name
	x := hashFrac(a.eco.Cfg.Seed, "catw|"+domain) * float64(totalAlertWeight())
	for _, ac := range alertCategories {
		x -= float64(ac.weight)
		if x < 0 {
			catName = ac.name
			break
		}
	}
	cat := CategoryByName(catName)
	rng := subRNG(a.eco.Cfg.Seed, "alert|"+id)
	resp := adResponse{
		Title: fillSlots(cat.Titles[rng.Intn(len(cat.Titles))], rng),
		Body:  fillSlots(cat.Bodies[rng.Intn(len(cat.Bodies))], rng),
		Icon:  fmt.Sprintf("https://%s/icon.png", domain),
	}
	if catName == "news" {
		// Compose a near-unique headline; real news tails are diverse.
		resp.Title = composeHeadline(rng)
	}
	if rng.Float64() >= a.eco.Cfg.NoTargetFraction {
		resp.Target = fmt.Sprintf("https://%s/%s/a%d.html?id=%d",
			domain, joinPath(cat.PathTokens), rng.Intn(1<<20), rng.Intn(1<<20))
	}
	return resp
}

func totalAlertWeight() int {
	t := 0
	for _, ac := range alertCategories {
		t += ac.weight
	}
	return t
}

// adResponse is the creative JSON the SW fetches.
type adResponse struct {
	Title  string `json:"title"`
	Body   string `json:"body"`
	Icon   string `json:"icon"`
	Target string `json:"target"`
}

// serveAd decisions an ad id into a concrete creative and landing URL,
// registering ground truth (and blocklist exposure) as a side effect.
func (a *AdNetwork) serveAd(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	var resp adResponse
	var truth AdTruth
	var landing string

	switch {
	case strings.HasPrefix(id, "al."):
		domain, _, err := parseAlertAdID(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp = a.buildAlert(id, domain)
		truth = AdTruth{Network: a.Spec.Name, Category: "alert", IsAd: false}
		landing = ""

	case strings.HasPrefix(id, "lt."):
		lt, err := a.eco.Longtail.Resolve(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		resp = adResponse{Title: lt.Title, Body: lt.Body, Icon: lt.Icon, Target: lt.Target}
		landing = lt.Landing
		truth = AdTruth{CampaignID: lt.CampaignID, Network: a.Spec.Name, Category: "longtail", Malicious: lt.Malicious, IsAd: true}

	default:
		campID, creativeIdx, domainIdx, nonce, err := ParseAdID(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		camp, ok := a.eco.Truth.Campaign(campID)
		if !ok {
			http.Error(w, "unknown campaign", http.StatusNotFound)
			return
		}
		cr := camp.Creatives[creativeIdx%len(camp.Creatives)]
		domain := camp.LandingDomainAt(domainIdx)
		if a.eco.Evasion != nil {
			domain = a.eco.Evasion.ResolveDomain(camp, domain, a.eco.Now())
		}
		landing = camp.LandingURLOn(domain, subRNG(a.eco.Cfg.Seed, id))
		target := landing
		if camp.UseRedirector {
			target = fmt.Sprintf("https://%s/r?u=%s", a.TrackHost, url.QueryEscape(landing))
		}
		_ = nonce
		resp = adResponse{Title: cr.Title, Body: cr.Body, Icon: cr.Icon, Target: target}
		truth = AdTruth{CampaignID: campID, Network: a.Spec.Name, Category: camp.Category.Name, Malicious: camp.Category.Malicious, IsAd: true}
	}

	a.eco.Truth.registerAd(id, truth, landing)
	if truth.Malicious && landing != "" && a.eco.OnMalURL != nil {
		a.eco.OnMalURL(landing, a.eco.Now())
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
}
