package webeco

import (
	"math/rand"
	"strings"
)

// Category describes one kind of WPN campaign content: its message
// templates, landing-page content, maliciousness, whether it is
// advertising (multi-source) or a self alert, and device targeting.
// Message templates contain slots ({prize}, {brand}, {n}) whose values
// vary across a campaign's creatives while the surrounding phrasing stays
// fixed — the within-campaign similarity the clustering stage exploits.
type Category struct {
	Name      string
	Malicious bool
	Ad        bool // delivered by ad networks from multiple sources
	// MobileOnly restricts the category to mobile subscriptions;
	// RealDeviceOnly further requires a physical device (malicious
	// mobile campaigns fingerprint emulators, §6.1.3).
	MobileOnly     bool
	RealDeviceOnly bool

	Titles         []string
	Bodies         []string
	LandingTitle   string
	LandingContent string
	// PathTokens is the landing URL path template shared by the
	// campaign's landing pages across domains.
	PathTokens []string
	// QueryParams are the query parameter names on landing URLs.
	QueryParams []string
}

var slotValues = map[string][]string{
	"{prize}": {
		"iPhone 11 Pro", "Samsung Galaxy S10", "$1000 Walmart gift card",
		"PlayStation 5", "$500 Amazon voucher", "MacBook Air",
	},
	"{brand}":   {"PayPal", "Amazon", "Netflix", "Chase Bank", "Apple", "Wells Fargo"},
	"{carrier}": {"FedEx", "UPS", "DHL", "USPS"},
	"{store}":   {"Walmart", "Target", "BestBuy", "Costco"},
	"{country}": {"USA", "Canada", "UK", "Australia"},
	"{job}":     {"warehouse associate", "delivery driver", "remote data entry clerk", "customer support agent"},
	"{sign}":    {"Aries", "Taurus", "Leo", "Virgo", "Scorpio", "Pisces"},
	"{city}":    {"Atlanta", "Denver", "Austin", "Phoenix", "Seattle"},
}

// Categories is the content library the generator draws campaigns from.
var Categories = []Category{
	// --- malicious ad campaigns ---
	{
		Name: "sweepstakes", Malicious: true, Ad: true,
		Titles: []string{
			"Congratulations! You have won a {prize}",
			"You are today's lucky visitor — {prize} inside",
		},
		Bodies: []string{
			"Answer 3 quick questions and claim your {prize} before it expires",
			"Your {prize} is reserved. Complete the short survey to claim it now",
		},
		LandingTitle:   "Claim Your Prize",
		LandingContent: "congratulations lucky winner complete this short survey to receive your exclusive reward enter your shipping details and card for verification",
		PathTokens:     []string{"sweep", "claim-prize"},
		QueryParams:    []string{"cid", "sub"},
	},
	{
		Name: "techsupport", Malicious: true, Ad: true,
		Titles: []string{
			"Warning: Your payment info has been leaked",
			"Security alert: your computer is infected",
		},
		Bodies: []string{
			"Immediate action required. Click to secure your device now",
			"We detected (4) viruses. Call support before your files are lost",
		},
		LandingTitle:   "Microsoft Support Alert",
		LandingContent: "your computer has been blocked call the toll free number now do not shut down your pc windows support technician error 0x80072ee7",
		PathTokens:     []string{"alert", "support-case"},
		QueryParams:    []string{"case", "src"},
	},
	{
		Name: "fakealert", Malicious: true, Ad: true,
		Titles: []string{
			"{brand}: unusual sign-in activity detected",
			"{brand} alert: your account will be suspended",
		},
		Bodies: []string{
			"Verify your {brand} account information immediately to avoid suspension",
			"Confirm your identity now to restore full access to your {brand} account",
		},
		LandingTitle:   "Account Verification",
		LandingContent: "verify your account sign in with your email and password to confirm your identity unusual activity suspended restore access billing information",
		PathTokens:     []string{"secure", "verify-account"},
		QueryParams:    []string{"uid", "ref"},
	},
	{
		Name: "scareware", Malicious: true, Ad: true,
		Titles: []string{
			"Your battery is damaged by (4) viruses!",
			"System cleaner required: storage 98% full",
		},
		Bodies: []string{
			"Download the recommended cleaner app now to repair the damage",
			"Your device will slow down. Install the free repair tool today",
		},
		LandingTitle:   "Device Repair Center",
		LandingContent: "scan results critical your device is infected download the cleaner application immediately free scan repair boost",
		PathTokens:     []string{"clean", "scan-download"},
		QueryParams:    []string{"aff", "os"},
	},
	{
		Name: "lottery", Malicious: true, Ad: true,
		Titles: []string{
			"Final notice: unclaimed cash prize in {country}",
			"You have been selected: {country} national draw",
		},
		Bodies: []string{
			"Your entry won the weekly draw. Claim the transfer before midnight",
			"A pending payout is waiting for verification. Respond today",
		},
		LandingTitle:   "Prize Transfer Desk",
		LandingContent: "winner notification pending transfer claim processing fee wire your verification deposit lottery international draw",
		PathTokens:     []string{"draw", "payout"},
		QueryParams:    []string{"ticket", "geo"},
	},
	// --- mobile-tailored malicious (real devices only) ---
	{
		Name: "missedcall", Malicious: true, Ad: true, MobileOnly: true, RealDeviceOnly: true,
		Titles: []string{
			"✆ Missed call from +1 (202) 555-01{n}",
			"Voicemail waiting: +44 7700 900{n}",
		},
		Bodies: []string{
			"Tap to listen to your new voicemail message",
			"1 new voice message. Tap to play",
		},
		LandingTitle:   "Voicemail Portal",
		LandingContent: "listen to your message premium line connect now charges may apply enter your number to continue",
		PathTokens:     []string{"vm", "play-message"},
		QueryParams:    []string{"msg"},
	},
	{
		Name: "fakedelivery", Malicious: true, Ad: true, MobileOnly: true, RealDeviceOnly: true,
		Titles: []string{
			"{carrier}: your package could not be delivered",
			"{carrier} notice: delivery fee outstanding",
		},
		Bodies: []string{
			"Schedule redelivery and confirm your address within 24 hours",
			"Pay the $1.99 customs fee to release your parcel",
		},
		LandingTitle:   "Package Redelivery",
		LandingContent: "track your parcel confirm address pay small fee card details redelivery schedule customs clearance",
		PathTokens:     []string{"track", "redelivery"},
		QueryParams:    []string{"pkg", "zip"},
	},
	{
		Name: "spoofchat", Malicious: true, Ad: true, MobileOnly: true, RealDeviceOnly: true,
		Titles: []string{
			"WhatsApp: {n} new messages",
			"You have (1) new friend request",
		},
		Bodies: []string{
			"Someone near {city} sent you a private message. Tap to view",
			"A contact shared a photo with you. Open to see it",
		},
		LandingTitle:   "Chat Login",
		LandingContent: "sign in to view your messages nearby singles chat now verify your age create profile",
		PathTokens:     []string{"chat", "inbox"},
		QueryParams:    []string{"u"},
	},
	// --- benign ad campaigns ---
	{
		Name: "shopping", Ad: true,
		Titles: []string{
			"{store} flash sale: up to 70% off today",
			"Hot deal at {store}: extra 30% off electronics",
		},
		Bodies: []string{
			"Limited stock. Browse today's clearance picks before they sell out",
			"Member prices unlocked for the next 6 hours only",
		},
		LandingTitle:   "Today's Deals",
		LandingContent: "shop the sale free shipping on orders over 35 clearance electronics home fashion add to cart",
		PathTokens:     []string{"deals", "flash-sale"},
		QueryParams:    []string{"utm_source", "utm_campaign"},
	},
	{
		Name: "vpnapp", Ad: true,
		Titles: []string{
			"Your IP is exposed — protect your privacy",
			"Browse faster and safer with SecureLine VPN",
		},
		Bodies: []string{
			"Get 80% off the annual privacy plan. 30-day money back guarantee",
			"One tap to encrypt your connection on every network",
		},
		LandingTitle:   "SecureLine VPN",
		LandingContent: "protect your privacy military grade encryption servers in 60 countries subscribe annual plan discount",
		PathTokens:     []string{"vpn", "offer"},
		QueryParams:    []string{"plan", "aff"},
	},
	{
		Name: "jobs", Ad: true,
		Titles: []string{
			"New {job} positions near you",
			"{job} wanted: apply in 2 minutes",
		},
		Bodies: []string{
			"Local employers are hiring {job} roles this week. See openings",
			"Flexible hours, weekly pay. View the latest {job} listings",
		},
		LandingTitle:   "Job Listings",
		LandingContent: "browse openings apply now upload resume full time part time weekly pay benefits local employers hiring",
		PathTokens:     []string{"jobs", "listings"},
		QueryParams:    []string{"q", "loc"},
	},
	{
		Name: "horoscope", Ad: true,
		Titles: []string{
			"{sign}: your luck changes this week",
			"Daily {sign} reading is ready",
		},
		Bodies: []string{
			"See what the stars have planned for {sign} today",
			"Your personalized {sign} forecast has arrived",
		},
		LandingTitle:   "Daily Horoscope",
		LandingContent: "daily weekly monthly horoscope love career money lucky numbers compatibility reading",
		PathTokens:     []string{"horoscope", "daily"},
		QueryParams:    []string{"sign"},
	},
	{
		Name: "streaming", Ad: true,
		Titles: []string{
			"Watch new releases free for 30 days",
			"Tonight's top movies are streaming now",
		},
		Bodies: []string{
			"No subscription needed this weekend. Start watching instantly",
			"Thousands of titles unlocked. Create your free account",
		},
		LandingTitle:   "Stream Now",
		LandingContent: "watch movies and shows online free trial hd streaming no ads create account browse catalog",
		PathTokens:     []string{"watch", "free-trial"},
		QueryParams:    []string{"title", "src"},
	},
	{
		Name: "adult", Ad: true,
		Titles: []string{
			"New profiles near {city}",
			"3 people viewed your profile today",
		},
		Bodies: []string{
			"See who is online in your area tonight",
			"Your matches are waiting. Reply now",
		},
		LandingTitle:   "Meet Nearby",
		LandingContent: "adult dating profiles online now chat meet tonight age verification 18+",
		PathTokens:     []string{"dating", "nearby"},
		QueryParams:    []string{"geo"},
	},
	// --- non-ad self notifications ---
	{
		Name: "news",
		Titles: []string{
			"Breaking: {city} council passes new transit plan",
			"Markets close higher after tech rally",
			"Storm system expected across the {city} metro",
			"Local team advances to the finals",
			"New study links sleep to memory in adults",
			"Fuel prices dip for the third straight week",
		},
		Bodies: []string{
			"Full coverage and analysis on our site",
			"Read the developing story and expert commentary",
			"Live updates as the situation develops",
		},
		LandingTitle:   "Story",
		LandingContent: "full article coverage reporting analysis subscribe newsletter comments share",
		PathTokens:     []string{"news", "story"},
		QueryParams:    []string{"id"},
	},
	{
		Name: "weather",
		Titles: []string{
			"Weather alert: heavy rain expected tonight",
			"Heat advisory issued for your area",
			"Frost warning for {city} suburbs",
		},
		Bodies: []string{
			"See the hourly forecast for your location",
			"Advisory in effect until tomorrow morning",
		},
		LandingTitle:   "Forecast",
		LandingContent: "hourly forecast radar temperature precipitation wind humidity alerts",
		PathTokens:     []string{"forecast", "alert"},
		QueryParams:    []string{"zip"},
	},
	{
		Name: "bankalert",
		Titles: []string{
			"Pre-approved personal loan at 8.5% APR",
		},
		Bodies: []string{
			"You qualify for an instant loan up to $25,000. Apply in minutes",
		},
		LandingTitle:   "Loan Center",
		LandingContent: "personal loan application rates terms apply online member services secure banking",
		PathTokens:     []string{"loans", "personal"},
		QueryParams:    []string{"offer"},
	},
	{
		Name: "welcome",
		Titles: []string{
			"Thanks for subscribing!",
			"You're in — notifications enabled",
		},
		Bodies: []string{
			"We'll keep you posted with the latest updates",
			"Welcome aboard. Manage your preferences anytime",
		},
		LandingTitle:   "Welcome",
		LandingContent: "thank you for subscribing to our notifications stay tuned updates preferences unsubscribe",
		PathTokens:     []string{"welcome"},
		QueryParams:    nil,
	},
}

// CategoryByName looks a category up; it panics on unknown names (the
// library is a compile-time constant).
func CategoryByName(name string) Category {
	for _, c := range Categories {
		if c.Name == name {
			return c
		}
	}
	panic("webeco: unknown category " + name)
}

// fillSlots replaces template slots with values chosen by rng.
func fillSlots(tpl string, rng *rand.Rand) string {
	out := tpl
	for slot, values := range slotValues {
		for strings.Contains(out, slot) {
			out = strings.Replace(out, slot, values[rng.Intn(len(values))], 1)
		}
	}
	for strings.Contains(out, "{n}") {
		out = strings.Replace(out, "{n}", twoDigits(rng), 1)
	}
	return out
}

func twoDigits(rng *rand.Rand) string {
	return string([]byte{byte('0' + rng.Intn(10)), byte('0' + rng.Intn(10))})
}

// Headline pools for composed news alerts: 14×13×14 ≈ 2,500 distinct
// combinations keep the non-ad tail as diverse as real news pushes.
var (
	headlineSubjects = []string{
		"City council", "Local startup", "School board", "State senate",
		"Port authority", "Transit agency", "Hospital network", "Union",
		"Weather service", "Tech giant", "Retail chain", "Energy firm",
		"Film festival", "University lab",
	}
	headlineVerbs = []string{
		"approves", "unveils", "delays", "expands", "cancels", "reviews",
		"announces", "rejects", "funds", "launches", "suspends", "audits",
		"debates",
	}
	headlineObjects = []string{
		"new budget plan", "downtown project", "transit overhaul",
		"hiring freeze", "research grant", "safety program", "merger deal",
		"tax proposal", "housing initiative", "water upgrade",
		"stadium renovation", "broadband rollout", "arts funding",
		"recycling scheme",
	}
)

// composeHeadline builds a near-unique news headline.
func composeHeadline(rng *rand.Rand) string {
	return headlineSubjects[rng.Intn(len(headlineSubjects))] + " " +
		headlineVerbs[rng.Intn(len(headlineVerbs))] + " " +
		headlineObjects[rng.Intn(len(headlineObjects))]
}
