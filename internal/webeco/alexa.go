package webeco

import (
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Alexa simulates the Alexa top-1M popularity ranking used for Table 2:
// a fraction of domains receive a rank in [1, 1e6], log-uniformly
// distributed (popularity is heavy-tailed), and the rest are unranked.
type Alexa struct {
	mu    sync.RWMutex
	ranks map[string]int
}

// Top1M is the ranking cutoff.
const Top1M = 1_000_000

// NewAlexa returns an empty ranking.
func NewAlexa() *Alexa { return &Alexa{ranks: make(map[string]int)} }

// Assign gives domain a rank with probability pRanked, drawing the rank
// log-uniformly over [minRank, 1M].
func (a *Alexa) Assign(domain string, rng *rand.Rand, pRanked float64) {
	if rng.Float64() >= pRanked {
		return
	}
	const minRank = 100
	logMin, logMax := math.Log(float64(minRank)), math.Log(float64(Top1M))
	// Skew toward less-popular ranks: push sites cluster in the long
	// tail of the top-1M, with a minority of highly ranked domains.
	u := math.Pow(rng.Float64(), 0.55)
	rank := int(math.Exp(logMin + u*(logMax-logMin)))
	a.mu.Lock()
	a.ranks[domain] = rank
	a.mu.Unlock()
}

// Rank returns the domain's rank and whether it is ranked.
func (a *Alexa) Rank(domain string) (int, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	r, ok := a.ranks[domain]
	return r, ok
}

// RankBucket is one row of Table 2.
type RankBucket struct {
	Label  string
	Lo, Hi int
	Count  int
}

// DefaultBuckets are Table 2's rank ranges.
func DefaultBuckets() []RankBucket {
	return []RankBucket{
		{Label: "1 – 1K", Lo: 1, Hi: 1_000},
		{Label: "1K – 10K", Lo: 1_001, Hi: 10_000},
		{Label: "10K – 100K", Lo: 10_001, Hi: 100_000},
		{Label: "100K – 1M", Lo: 100_001, Hi: Top1M},
	}
}

// Bucketize counts the given domains per rank bucket; the returned total
// is the number of ranked domains.
func (a *Alexa) Bucketize(domains []string) (buckets []RankBucket, ranked int) {
	buckets = DefaultBuckets()
	seen := make(map[string]bool)
	for _, d := range domains {
		if seen[d] {
			continue
		}
		seen[d] = true
		r, ok := a.Rank(d)
		if !ok {
			continue
		}
		ranked++
		for i := range buckets {
			if r >= buckets[i].Lo && r <= buckets[i].Hi {
				buckets[i].Count++
				break
			}
		}
	}
	return buckets, ranked
}

// RankedDomains returns all ranked domains sorted by rank.
func (a *Alexa) RankedDomains() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.ranks))
	for d := range a.ranks {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return a.ranks[out[i]] < a.ranks[out[j]] })
	return out
}
