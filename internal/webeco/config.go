// Package webeco builds the synthetic web ecosystem PushAdMiner crawls:
// push ad networks (the 15 seed networks of Table 1), publisher sites
// embedding their tags, self-hosted push sites found via generic
// keywords, ad campaigns with rotated landing domains, benign and
// malicious landing pages, a code-search engine standing in for
// publicwww.com, Alexa-style popularity ranks, and the push scheduling
// that delivers WPNs to subscribed browsers. Everything is served over a
// real HTTP stack (internal/vnet); the generator is fully deterministic
// per seed.
package webeco

import (
	"time"

	"pushadminer/internal/blocklist"
	"pushadminer/internal/chaos"
	"pushadminer/internal/telemetry"
)

// NetworkSpec describes one seed ad network from Table 1 of the paper:
// how many URLs the code search finds for its keyword and how many of
// those actually request notification permission (NPRs).
type NetworkSpec struct {
	Name      string
	Keyword   string // code-search signature embedded in publisher pages
	PaperURLs int    // Table 1 "URLs" column
	PaperNPRs int    // Table 1 "NPRs" column
}

// SeedNetworks reproduces Table 1's 15 ad networks.
var SeedNetworks = []NetworkSpec{
	{"Ad-Maven", "admaven-push-tag", 49769, 1168},
	{"PushCrew", "pushcrew-sdk", 15177, 427},
	{"OneSignal", "onesignal-init", 11317, 2933},
	{"PopAds", "popads-pop-code", 1582, 73},
	{"PushEngage", "pushengage-widget", 796, 215},
	{"iZooto", "izooto-notify", 676, 278},
	{"PubMatic", "pubmatic-pushads", 647, 7},
	{"PropellerAds", "propeller-zone-tag", 335, 9},
	{"Criteo", "criteo-push-loader", 154, 5},
	{"AdsTerra", "adsterra-pushunit", 115, 2},
	{"AirPush", "airpush-web-sdk", 52, 0},
	{"HillTopAds", "hilltopads-push", 21, 3},
	{"RichPush", "richpush-tag", 12, 0},
	{"AdCash", "adcash-autopush", 10, 0},
	{"PushMonetization", "pushmonetization-js", 9, 5},
}

// GenericSpec describes one of Table 1's generic push-related keywords.
type GenericSpec struct {
	Keyword   string
	PaperURLs int
	PaperNPRs int
}

// GenericKeywords reproduces Table 1's generic keyword rows.
var GenericKeywords = []GenericSpec{
	{"NotificationrequestPermission", 3965, 538},
	{"pushmanagersubscribe", 2667, 158},
	{"addEventListener('Push'", 263, 9},
	{"adsblockkpushcom", 55, 19},
}

// PaperTotalURLs and PaperTotalNPRs are Table 1's totals.
const (
	PaperTotalURLs = 87622
	PaperTotalNPRs = 5849
)

// Config controls ecosystem generation.
type Config struct {
	// Seed drives all randomness. Same seed → identical ecosystem.
	Seed int64
	// Scale is the fraction of the paper's URL counts to generate.
	// 1.0 rebuilds Table 1 exactly; the default 0.05 yields a crawl of
	// ~4,400 URLs and a few thousand WPNs, large enough for every
	// experiment's shape to hold.
	Scale float64
	// Start is the simulation epoch (the paper's collection started
	// September 2019).
	Start time.Time

	// PushesPerSubMin/Max bound how many notifications each
	// subscription receives over the collection window (the paper
	// observed ~2.7 on average).
	PushesPerSubMin, PushesPerSubMax int
	// FirstPushWithin is the window in which 98% of first notifications
	// arrive (15 minutes per the paper's pilot, §6.1.2).
	FirstPushWithin time.Duration
	// LatePushMax is the maximum delay for the remaining 2%.
	LatePushMax time.Duration
	// CrashFraction is the fraction of ad landing pages that crash the
	// tab (part of why only ~57% of collected WPNs had valid landings).
	CrashFraction float64
	// NoTargetFraction is the fraction of non-ad notifications carrying
	// no target URL (pure alerts).
	NoTargetFraction float64
	// LandingSubscribeFraction is the fraction of malicious landing
	// pages that themselves request notification permission, producing
	// the "additional URLs" discovered by clicking (§6.2).
	LandingSubscribeFraction float64
	// DoublePermissionFraction is the fraction of NPR sites using the
	// JS pre-prompt (double permission, §8). The paper found ~1/4 on
	// revisit; the initial 2019 crawl saw almost none, so this defaults
	// to 0 and the revisit experiment raises it.
	DoublePermissionFraction float64
	// EvasionEnabled lets malicious campaigns actively rotate landing
	// domains once the operator sees them blocklisted (§5.2). Off by
	// default; the evasion experiment and ablation bench turn it on.
	EvasionEnabled bool
	// VTOverride / GSBOverride replace the default blocklist-service
	// configurations (e.g. the evasion experiment uses aggressive
	// coverage so domains burn within the crawl window).
	VTOverride  *blocklist.Config
	GSBOverride *blocklist.Config
	// Chaos, when non-nil, wraps the virtual network with the
	// deterministic fault injector: latency spikes, connection resets,
	// 5xx bursts, truncated bodies, blackhole windows and push-service
	// outages, all seeded (a zero Chaos.Seed inherits Seed). Nil keeps
	// the network fault-free.
	Chaos *chaos.Profile
	// FlushWorkers bounds how many push endpoints the delivery
	// scheduler sends to concurrently per Tick. Per-endpoint send order
	// is preserved and outcomes fold in deterministic job order, so
	// results are byte-identical at any setting. <= 1 (the default)
	// delivers serially.
	FlushWorkers int
	// Telemetry, when non-nil, attaches the metrics registry to the
	// virtual network (per-host request counts, client round trips,
	// transport errors, injected-fault observations) and to the chaos
	// injector (fault totals) before any client exists, so even the
	// ecosystem's own scheduler traffic is counted. Nil disables.
	Telemetry *telemetry.Registry
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.PushesPerSubMin <= 0 {
		c.PushesPerSubMin = 1
	}
	if c.PushesPerSubMax < c.PushesPerSubMin {
		c.PushesPerSubMax = c.PushesPerSubMin + 4
	}
	if c.FirstPushWithin <= 0 {
		c.FirstPushWithin = 15 * time.Minute
	}
	if c.LatePushMax <= 0 {
		c.LatePushMax = 96 * time.Hour
	}
	if c.CrashFraction == 0 {
		c.CrashFraction = 0.12
	}
	if c.NoTargetFraction == 0 {
		c.NoTargetFraction = 0.35
	}
	if c.LandingSubscribeFraction == 0 {
		c.LandingSubscribeFraction = 0.30
	}
	return c
}

// scaled scales a paper count, keeping zeros at zero and flooring
// nonzero counts at 1.
func (c Config) scaled(paper int) int {
	if paper == 0 {
		return 0
	}
	n := int(float64(paper)*c.Scale + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}
