package webeco

import (
	"fmt"
	"math/rand"
	"strings"
)

// Wordlists for generating plausible domain names and content. Size
// matters more than style: enough entropy to avoid collisions at paper
// scale.
var (
	nameA = []string{
		"best", "top", "daily", "free", "my", "the", "super", "mega", "go",
		"hot", "new", "all", "pro", "fast", "easy", "smart", "prime", "viva",
		"ultra", "insta", "live", "true", "pure", "next", "open", "fine",
		"metro", "urban", "global", "local", "vital", "alpha", "nova", "zen",
	}
	nameB = []string{
		"movie", "stream", "news", "sport", "game", "tech", "health", "food",
		"travel", "music", "video", "deal", "coupon", "recipe", "weather",
		"finance", "crypto", "auto", "style", "photo", "book", "job", "home",
		"shop", "media", "world", "life", "buzz", "trend", "flix", "tube",
		"portal", "planet", "hub", "zone", "spot", "base", "city", "land",
	}
	tlds = []string{
		".com", ".net", ".org", ".info", ".xyz", ".club", ".online", ".site",
		".ru", ".icu", ".pw", ".top", ".live", ".space",
	}
	landingWords = []string{
		"prize", "offer", "win", "claim", "bonus", "lucky", "deal", "gift",
		"reward", "secure", "verify", "account", "update", "alert", "support",
		"sweep", "promo", "cash", "club", "vip", "now", "direct", "track",
	}
)

// nameGen deterministically generates unique domain names.
type nameGen struct {
	rng  *rand.Rand
	used map[string]bool
}

func newNameGen(seed int64) *nameGen {
	return &nameGen{rng: rand.New(rand.NewSource(seed)), used: make(map[string]bool)}
}

// domain returns a fresh registrable domain name.
func (g *nameGen) domain() string {
	for {
		a := nameA[g.rng.Intn(len(nameA))]
		b := nameB[g.rng.Intn(len(nameB))]
		tld := tlds[g.rng.Intn(len(tlds))]
		d := a + b + tld
		if g.rng.Intn(3) == 0 {
			d = fmt.Sprintf("%s%s%d%s", a, b, g.rng.Intn(100), tld)
		}
		if !g.used[d] {
			g.used[d] = true
			return d
		}
	}
}

// landingDomain returns a fresh scammy-looking landing domain.
func (g *nameGen) landingDomain() string {
	for {
		a := landingWords[g.rng.Intn(len(landingWords))]
		b := landingWords[g.rng.Intn(len(landingWords))]
		tld := tlds[g.rng.Intn(len(tlds))]
		d := a + "-" + b + tld
		if g.rng.Intn(2) == 0 {
			d = fmt.Sprintf("%s%s%d%s", a, b, g.rng.Intn(1000), tld)
		}
		if !g.used[d] {
			g.used[d] = true
			return d
		}
	}
}

// slug lowercases a network name into a hostname label.
func slug(name string) string {
	s := strings.ToLower(name)
	s = strings.ReplaceAll(s, " ", "")
	s = strings.ReplaceAll(s, "-", "")
	return s
}
