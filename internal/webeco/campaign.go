package webeco

import (
	"fmt"
	"math/rand"
	"strings"
)

// Creative is one ad variant within a campaign: fixed phrasing with slot
// values filled in.
type Creative struct {
	Title string
	Body  string
	Icon  string
}

// Campaign is one WPN ad campaign: a content category instantiated with
// concrete creatives and a set of landing domains the ads rotate
// through. Malicious campaigns use multiple domains to survive
// blocklisting (§5.4); some benign ones (jobs, horoscope) do too, which
// is exactly the false-suspicious source the paper reports.
type Campaign struct {
	ID       int
	Network  string // owning ad network name; "" for self-notifier content
	Category Category

	Creatives      []Creative
	LandingDomains []string
	// PathFlavor is the campaign-specific landing path segment: real
	// campaigns run their own landing pages, so two campaigns of the
	// same category still differ in URL path.
	PathFlavor string
	// UseRedirector routes clicks through the network's tracking
	// redirector before the landing page.
	UseRedirector bool
	// Weight biases campaign selection during scheduling.
	Weight int
}

// newCampaign instantiates a campaign from a category.
func newCampaign(id int, network string, cat Category, gen *nameGen, rng *rand.Rand) *Campaign {
	c := &Campaign{
		ID: id, Network: network, Category: cat, Weight: 1 + rng.Intn(4),
		PathFlavor: fmt.Sprintf("%s-%s%d",
			landingWords[rng.Intn(len(landingWords))],
			landingWords[rng.Intn(len(landingWords))], rng.Intn(100)),
	}

	nCreatives := 2 + rng.Intn(3)
	seen := map[string]bool{}
	for i := 0; i < nCreatives; i++ {
		title := fillSlots(cat.Titles[rng.Intn(len(cat.Titles))], rng)
		body := fillSlots(cat.Bodies[rng.Intn(len(cat.Bodies))], rng)
		key := title + "|" + body
		if seen[key] {
			continue
		}
		seen[key] = true
		c.Creatives = append(c.Creatives, Creative{
			Title: title,
			Body:  body,
			Icon:  fmt.Sprintf("https://icons.simpush.test/%s-%d.png", cat.Name, rng.Intn(8)),
		})
	}

	nDomains := 1
	if cat.Malicious {
		nDomains = 2 + rng.Intn(6) // evasion via domain rotation
	} else if cat.Name == "jobs" || cat.Name == "horoscope" || rng.Intn(4) == 0 {
		nDomains = 2 + rng.Intn(3) // benign duplicate-ad violators
	}
	for i := 0; i < nDomains; i++ {
		if cat.Malicious {
			// Throwaway scam domains ("claim-prize123.icu").
			c.LandingDomains = append(c.LandingDomains, gen.landingDomain())
		} else {
			// Legitimate advertisers use ordinary brand domains.
			c.LandingDomains = append(c.LandingDomains, gen.domain())
		}
	}
	c.UseRedirector = cat.Malicious || rng.Intn(3) == 0
	return c
}

// LandingPath returns the campaign's landing URL path (shared across its
// domains — the URL-path feature the clustering stage uses).
func (c *Campaign) LandingPath() string {
	return "/" + strings.Join(c.Category.PathTokens, "/") + "/" + c.PathFlavor + ".html"
}

// LandingDomainAt returns the campaign's nominal landing domain for an
// index (wrapping).
func (c *Campaign) LandingDomainAt(idx int) string {
	if len(c.LandingDomains) == 0 {
		return ""
	}
	return c.LandingDomains[idx%len(c.LandingDomains)]
}

// LandingURL builds a concrete landing URL on the domain with the given
// index, with query parameter values that vary per impression.
func (c *Campaign) LandingURL(domainIdx int, rng *rand.Rand) string {
	return c.LandingURLOn(c.LandingDomainAt(domainIdx), rng)
}

// LandingURLOn builds a landing URL on an explicit domain (used when the
// evasion controller substitutes a fresh domain for a burned one).
func (c *Campaign) LandingURLOn(d string, rng *rand.Rand) string {
	if d == "" {
		return ""
	}
	u := "https://" + d + c.LandingPath()
	if len(c.Category.QueryParams) > 0 {
		// Query values vary per impression but draw from a small pool:
		// real campaigns reuse tracking ids, so full landing URLs repeat
		// across impressions — which is what lets a URL blocklist that
		// flagged one impression also flag later ones.
		var parts []string
		for _, p := range c.Category.QueryParams {
			parts = append(parts, fmt.Sprintf("%s=%d", p, rng.Intn(8)))
		}
		u += "?" + strings.Join(parts, "&")
	}
	return u
}

// AdID encodes a concrete impression: campaign, creative, landing domain
// index, and a nonce (the tracking blob real networks embed).
func (c *Campaign) AdID(creativeIdx, domainIdx, nonce int) string {
	return fmt.Sprintf("c%d.k%d.d%d.n%d", c.ID, creativeIdx, domainIdx, nonce)
}

// ParseAdID decodes an AdID.
func ParseAdID(id string) (campaignID, creativeIdx, domainIdx, nonce int, err error) {
	_, err = fmt.Sscanf(id, "c%d.k%d.d%d.n%d", &campaignID, &creativeIdx, &domainIdx, &nonce)
	if err != nil {
		err = fmt.Errorf("webeco: bad ad id %q: %w", id, err)
	}
	return
}

// EligibleFor reports whether the campaign may be served to a
// subscription with the given device profile.
func (c *Campaign) EligibleFor(device string, physicalDevice bool) bool {
	if c.Category.MobileOnly && device != "mobile" {
		return false
	}
	if c.Category.RealDeviceOnly && !physicalDevice {
		return false
	}
	return true
}
