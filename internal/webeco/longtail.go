package webeco

import (
	"fmt"
	"math/rand"
	"sync"
)

// longtailTitles/Bodies are one-off spammy creatives: each long-tail ad
// draws fresh slot values and a unique number, so no two cluster
// together — they form the singleton clusters (§6.3.1, 7,731 of 8,780)
// that meta-clustering later reconnects through shared landing domains.
var longtailTitles = []string{
	"Enter now to spin the wheel and win {prize}",
	"Hot singles in {city} want to meet you tonight ({n})",
	"Your {brand} points expire in {n} hours",
	"Only {n} boxes of the miracle diet pill left",
	"Breaking: celebrity secret revealed #{n}",
	"Get paid ${n}0 a day working from home",
	"Your horoscope for today is unusually lucky ({n})",
	"Flash giveaway #{n}: claim before midnight",
	"New crypto pays {n}% daily — early access",
	"Doctor discovers {n}-second trick for joint pain",
	"You have ({n}) unread messages waiting",
	"Final reminder {n}: verify your entry",
}

var longtailBodies = []string{
	"Limited time offer, tap to continue",
	"Click here before this disappears",
	"You were chosen from {city} visitors",
	"No purchase necessary, see details",
	"Act now, only a few spots remain",
	"Tap to reveal your exclusive code {n}",
}

// topicWords diversify long-tail creatives so each is near-unique.
var topicWords = []string{
	"keto", "bitcoin", "casino", "insurance", "mortgage", "pills", "serum",
	"gadget", "hearing", "solar", "warranty", "refund", "jackpot", "tarot",
	"psychic", "detox", "botox", "forex", "sweeps", "hosting", "antenna",
	"mattress", "cruise", "timeshare", "lawsuit", "settlement", "gutter",
	"walk-in", "reverse", "annuity", "cbd", "vape", "streamer", "firestick",
	"iptv", "unlocked", "clearance", "liquidation", "overstock", "auction",
}

// LongtailAd is a resolved one-off ad.
type LongtailAd struct {
	ID         string
	CampaignID int
	Title      string
	Body       string
	Icon       string
	Target     string
	Landing    string
	Malicious  bool
}

// longtailGen mints and resolves long-tail ad ids.
type longtailGen struct {
	seed int64

	mu   sync.Mutex
	byID map[string]*LongtailAd
	next int
}

func newLongtailGen(seed int64) *longtailGen {
	return &longtailGen{seed: seed, byID: make(map[string]*LongtailAd)}
}

// NewAdID creates a one-off ad anchored to one of camp's landing domains
// and returns its id. The id is derived from the caller's (schedule)
// RNG rather than a global counter so crawl parallelism cannot reorder
// it; colliding ids simply reuse the already-minted ad.
func (g *longtailGen) NewAdID(camp *Campaign, rng *rand.Rand) string {
	var n int64
	if rng != nil {
		n = rng.Int63n(1 << 40)
	} else {
		g.mu.Lock()
		g.next++
		n = int64(g.next)
		g.mu.Unlock()
	}
	id := fmt.Sprintf("lt.c%d.n%d", camp.ID, n)
	g.mu.Lock()
	if _, exists := g.byID[id]; exists {
		g.mu.Unlock()
		return id
	}
	g.mu.Unlock()

	crng := subRNG(g.seed, "lt|"+id)
	domain := camp.LandingDomains[crng.Intn(len(camp.LandingDomains))]
	landing := fmt.Sprintf("https://%s/x/%s-%s-%d.html?z=%d",
		domain,
		landingWords[crng.Intn(len(landingWords))],
		landingWords[crng.Intn(len(landingWords))],
		crng.Intn(1<<20), crng.Intn(100000))
	// Compose a mostly unique one-off creative: template + extra topic
	// words + fresh slot values. Real spam long tails are this diverse;
	// without the extra words, template reuse would cluster them.
	title := fillSlots(longtailTitles[crng.Intn(len(longtailTitles))], crng)
	title += " " + topicWords[crng.Intn(len(topicWords))] + " " + topicWords[crng.Intn(len(topicWords))]
	body := fillSlots(longtailBodies[crng.Intn(len(longtailBodies))], crng)
	body += " " + topicWords[crng.Intn(len(topicWords))] + fmt.Sprintf(" %d", crng.Intn(1000))
	ad := &LongtailAd{
		ID:         id,
		CampaignID: camp.ID,
		Title:      title,
		Body:       body,
		Icon:       fmt.Sprintf("https://icons.simpush.test/lt-%d.png", crng.Intn(8)),
		Target:     landing,
		Landing:    landing,
		Malicious:  camp.Category.Malicious,
	}
	g.mu.Lock()
	g.byID[id] = ad
	g.mu.Unlock()
	return id
}

// Resolve returns the ad for a long-tail id.
func (g *longtailGen) Resolve(id string) (*LongtailAd, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ad, ok := g.byID[id]
	if !ok {
		return nil, fmt.Errorf("webeco: unknown longtail ad %q", id)
	}
	return ad, nil
}
