package webeco

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"pushadminer/internal/page"
)

func tinyConfig() Config {
	return Config{Seed: 42, Scale: 0.005}
}

func newEco(t *testing.T, cfg Config) *Ecosystem {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestScaledCounts(t *testing.T) {
	cfg := Config{Scale: 0.05}.WithDefaults()
	if got := cfg.scaled(0); got != 0 {
		t.Errorf("scaled(0) = %d", got)
	}
	if got := cfg.scaled(10); got != 1 {
		t.Errorf("scaled(10) = %d, want 1 (floor)", got)
	}
	if got := cfg.scaled(1000); got != 50 {
		t.Errorf("scaled(1000) = %d, want 50", got)
	}
}

func TestEcosystemDeterministic(t *testing.T) {
	a := newEco(t, tinyConfig())
	b := newEco(t, tinyConfig())
	ua, ub := a.SeedURLs(), b.SeedURLs()
	if len(ua) != len(ub) {
		t.Fatalf("seed URL counts differ: %d vs %d", len(ua), len(ub))
	}
	for i := range ua {
		if ua[i] != ub[i] {
			t.Fatalf("seed URLs differ at %d: %s vs %s", i, ua[i], ub[i])
		}
	}
	if a.Truth().NumCampaigns() != b.Truth().NumCampaigns() {
		t.Error("campaign counts differ across identical seeds")
	}
}

func TestSeedURLCountsMatchScaledTable1(t *testing.T) {
	e := newEco(t, Config{Seed: 7, Scale: 0.01})
	for _, spec := range SeedNetworks {
		got := len(e.Search().Search(spec.Keyword))
		want := e.Cfg.scaled(spec.PaperURLs)
		if got != want {
			t.Errorf("%s: code search found %d URLs, want %d", spec.Name, got, want)
		}
	}
	for _, spec := range GenericKeywords {
		got := len(e.Search().Search(spec.Keyword))
		want := e.Cfg.scaled(spec.PaperURLs)
		if got < want {
			// Generic keywords may also appear in network-affiliated
			// generic sites; never fewer than the spec count.
			t.Errorf("%s: code search found %d URLs, want >= %d", spec.Keyword, got, want)
		}
	}
}

func TestNPRSitesSubsetOfSites(t *testing.T) {
	e := newEco(t, tinyConfig())
	nprs := 0
	for _, s := range e.Sites() {
		if s.NPR {
			nprs++
		}
	}
	if nprs == 0 {
		t.Fatal("no NPR sites generated")
	}
	if nprs >= len(e.Sites()) {
		t.Fatalf("all %d sites are NPR; most should not request permission", len(e.Sites()))
	}
}

func TestCampaignShapes(t *testing.T) {
	e := newEco(t, tinyConfig())
	truth := e.Truth()
	if truth.NumCampaigns() < 10 {
		t.Fatalf("campaigns = %d, want >= 10", truth.NumCampaigns())
	}
	mal, multi := 0, 0
	total := 0
	for _, an := range e.Networks() {
		for _, c := range an.Campaigns {
			total++
			if c.Category.Malicious {
				mal++
				if len(c.LandingDomains) < 2 {
					t.Errorf("malicious campaign %d has %d landing domains, want >= 2", c.ID, len(c.LandingDomains))
				}
			}
			if len(c.LandingDomains) > 1 {
				multi++
			}
			if len(c.Creatives) == 0 {
				t.Errorf("campaign %d has no creatives", c.ID)
			}
		}
	}
	frac := float64(mal) / float64(total)
	if frac < 0.3 || frac > 0.8 {
		t.Errorf("malicious campaign fraction = %.2f, want within paper-like band", frac)
	}
	if multi == 0 {
		t.Error("no multi-domain campaigns (duplicate ads signal missing)")
	}
}

func TestAdIDRoundTrip(t *testing.T) {
	c := &Campaign{ID: 17}
	id := c.AdID(2, 3, 12345)
	camp, cr, d, n, err := ParseAdID(id)
	if err != nil {
		t.Fatal(err)
	}
	if camp != 17 || cr != 2 || d != 3 || n != 12345 {
		t.Errorf("ParseAdID = %d %d %d %d", camp, cr, d, n)
	}
	if _, _, _, _, err := ParseAdID("garbage"); err == nil {
		t.Error("garbage ad id parsed")
	}
}

func TestLandingURLSharesPathAcrossDomains(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := newNameGen(2)
	camp := newCampaign(1, "X", CategoryByName("sweepstakes"), gen, rng)
	if len(camp.LandingDomains) < 2 {
		t.Skip("campaign drew a single domain")
	}
	u0 := camp.LandingURL(0, rng)
	u1 := camp.LandingURL(1, rng)
	if strings.Contains(u1, camp.LandingDomains[0]) {
		t.Errorf("domain rotation failed: %s", u1)
	}
	p := camp.LandingPath()
	if !strings.Contains(u0, p) || !strings.Contains(u1, p) {
		t.Errorf("landing path %q not shared: %s / %s", p, u0, u1)
	}
}

func TestEligibility(t *testing.T) {
	camp := &Campaign{Category: CategoryByName("missedcall")}
	if camp.EligibleFor("desktop", false) {
		t.Error("mobile-only campaign eligible on desktop")
	}
	if camp.EligibleFor("mobile", false) {
		t.Error("real-device-only campaign eligible on emulator")
	}
	if !camp.EligibleFor("mobile", true) {
		t.Error("mobile campaign not eligible on physical device")
	}
	benign := &Campaign{Category: CategoryByName("shopping")}
	if !benign.EligibleFor("desktop", false) {
		t.Error("desktop campaign ineligible")
	}
}

func TestSchedulerOrderAndFlush(t *testing.T) {
	s := newScheduler(0)
	t0 := time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)
	s.Schedule(t0.Add(2*time.Hour), "e2", []byte(`{}`))
	s.Schedule(t0.Add(1*time.Hour), "e1", []byte(`{}`))
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	at, ok := s.NextAt()
	if !ok || !at.Equal(t0.Add(time.Hour)) {
		t.Fatalf("NextAt = %v %v", at, ok)
	}
}

func TestCategoriesWellFormed(t *testing.T) {
	for _, c := range Categories {
		if len(c.Titles) == 0 || len(c.Bodies) == 0 {
			t.Errorf("category %s missing templates", c.Name)
		}
		if c.LandingContent == "" || c.LandingTitle == "" {
			t.Errorf("category %s missing landing content", c.Name)
		}
		if len(c.PathTokens) == 0 {
			t.Errorf("category %s missing path tokens", c.Name)
		}
		if c.RealDeviceOnly && !c.MobileOnly {
			t.Errorf("category %s: RealDeviceOnly implies MobileOnly", c.Name)
		}
	}
}

func TestFillSlotsResolvesAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, c := range Categories {
		for _, tpl := range append(append([]string{}, c.Titles...), c.Bodies...) {
			out := fillSlots(tpl, rng)
			if strings.Contains(out, "{") {
				t.Errorf("unresolved slot in %q → %q", tpl, out)
			}
		}
	}
	for _, tpl := range append(append([]string{}, longtailTitles...), longtailBodies...) {
		if out := fillSlots(tpl, rng); strings.Contains(out, "{") {
			t.Errorf("unresolved slot in %q → %q", tpl, out)
		}
	}
}

func TestAlexaBuckets(t *testing.T) {
	a := NewAlexa()
	rng := rand.New(rand.NewSource(1))
	domains := make([]string, 3000)
	for i := range domains {
		domains[i] = strings.Repeat("a", 1+i%5) + "x.com"
		domains[i] = domains[i][:len(domains[i])-4] + string(rune('a'+i%26)) + domains[i][len(domains[i])-4:]
	}
	// Use unique names.
	for i := range domains {
		domains[i] = domainName(i)
		a.Assign(domains[i], rng, 0.36)
	}
	buckets, ranked := a.Bucketize(domains)
	frac := float64(ranked) / float64(len(domains))
	if frac < 0.30 || frac > 0.42 {
		t.Errorf("ranked fraction = %.3f, want ~0.36", frac)
	}
	sum := 0
	for _, b := range buckets {
		sum += b.Count
	}
	if sum != ranked {
		t.Errorf("bucket sum %d != ranked %d", sum, ranked)
	}
	// Log-uniform: later (wider) buckets hold more domains.
	if !(buckets[3].Count > buckets[0].Count) {
		t.Errorf("expected tail-heavy buckets, got %+v", buckets)
	}
}

func domainName(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	return string([]byte{letters[i%26], letters[(i/26)%26], letters[(i/676)%26]}) + ".com"
}

func TestCodeSearch(t *testing.T) {
	cs := NewCodeSearch()
	cs.IndexPage("https://a.test/", []string{"onesignal-init v3", "other"})
	cs.IndexPage("https://b.test/", []string{"pushcrew-sdk"})
	if got := cs.Search("onesignal-init"); len(got) != 1 || got[0] != "https://a.test/" {
		t.Errorf("Search = %v", got)
	}
	if got := cs.Search("ONESIGNAL-INIT"); len(got) != 1 {
		t.Errorf("case-insensitive search failed: %v", got)
	}
	if got := cs.SearchAll([]string{"onesignal-init", "pushcrew-sdk"}); len(got) != 2 {
		t.Errorf("SearchAll = %v", got)
	}
	if cs.NumPages() != 2 {
		t.Errorf("NumPages = %d", cs.NumPages())
	}
}

func TestTruthOracle(t *testing.T) {
	e := newEco(t, tinyConfig())
	truth := e.Truth()
	// Find a malicious campaign and check its domains are flagged.
	found := false
	for _, an := range e.Networks() {
		for _, c := range an.Campaigns {
			if c.Category.Malicious {
				found = true
				for _, d := range c.LandingDomains {
					if !truth.IsMaliciousDomain(d) {
						t.Errorf("malicious campaign domain %s not in truth", d)
					}
					if !truth.IsMaliciousURL("https://" + d + "/any/path") {
						t.Errorf("URL on malicious domain not recognized")
					}
				}
			} else {
				for _, d := range c.LandingDomains {
					if truth.IsMaliciousDomain(d) {
						t.Errorf("benign campaign domain %s flagged", d)
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("no malicious campaigns generated")
	}
}

func TestEasyListParses(t *testing.T) {
	e := newEco(t, tinyConfig())
	rules := e.EasyListRules()
	if len(rules) < 3 {
		t.Fatal("too few EasyList rules")
	}
}

func TestLandingHandlerServesCampaignContent(t *testing.T) {
	e := newEco(t, tinyConfig())
	var camp *Campaign
	for _, an := range e.Networks() {
		for _, c := range an.Campaigns {
			if c.Category.Malicious && len(c.LandingDomains) > 0 {
				camp = c
				break
			}
		}
		if camp != nil {
			break
		}
	}
	if camp == nil {
		t.Skip("no malicious campaign")
	}
	// Find a non-crashing path.
	var doc *page.Doc
	for i := 0; i < 50 && (doc == nil || doc.Crash); i++ {
		u := camp.LandingURL(0, rand.New(rand.NewSource(int64(i))))
		_, body := httpGet(t, e, u)
		var err error
		doc, err = page.Decode(body)
		if err != nil {
			t.Fatal(err)
		}
	}
	if doc == nil || doc.Crash {
		t.Skip("every sampled landing URL crashes at this seed")
	}
	if doc.Title != camp.Category.LandingTitle {
		t.Errorf("landing title = %q, want %q", doc.Title, camp.Category.LandingTitle)
	}
	if !strings.Contains(doc.Content, camp.LandingDomains[0]) {
		t.Errorf("landing content missing domain: %q", doc.Content)
	}
}

func TestLandingCrashFractionRoughlyConfigured(t *testing.T) {
	e := newEco(t, tinyConfig())
	var camp *Campaign
	for _, an := range e.Networks() {
		for _, c := range an.Campaigns {
			if len(c.LandingDomains) > 0 {
				camp = c
				break
			}
		}
		if camp != nil {
			break
		}
	}
	crashes, total := 0, 300
	for i := 0; i < total; i++ {
		u := fmt.Sprintf("https://%s/probe/p%d.html", camp.LandingDomains[0], i)
		_, body := httpGet(t, e, u)
		doc, err := page.Decode(body)
		if err != nil {
			t.Fatal(err)
		}
		if doc.Crash {
			crashes++
		}
	}
	frac := float64(crashes) / float64(total)
	want := e.Cfg.CrashFraction
	if frac < want/2 || frac > want*2 {
		t.Errorf("crash fraction = %.3f, configured %.3f", frac, want)
	}
}
