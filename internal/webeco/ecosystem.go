package webeco

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"pushadminer/internal/blocklist"
	"pushadminer/internal/chaos"
	"pushadminer/internal/fcm"
	"pushadminer/internal/page"
	"pushadminer/internal/simclock"
	"pushadminer/internal/vnet"
)

// Hosts for the ecosystem's shared infrastructure services.
const (
	VTHost  = "vt.simpush.test"
	GSBHost = "gsb.simpush.test"
)

// Site is one generated website in the synthetic web.
type Site struct {
	Domain  string
	URL     string
	Network string // ad network name, or "" for generic/self sites
	Keyword string // the code-search keyword that finds it
	NPR     bool   // requests notification permission
	Self    *SelfSite
}

// Ecosystem is the fully assembled synthetic web.
type Ecosystem struct {
	Cfg   Config
	Net   *vnet.Network
	Push  *fcm.Service
	Clock *simclock.Simulated
	VT    *blocklist.Service
	GSB   *blocklist.Service

	fcmClient       *fcm.Client
	adEco           *AdEcosystem
	networks        []*AdNetwork
	sites           []*Site
	search          *CodeSearch
	alexa           *Alexa
	campaignCounter int
	chaos           *chaos.Injector
}

// New generates and serves an ecosystem from cfg.
func New(cfg Config) (*Ecosystem, error) {
	cfg = cfg.WithDefaults()
	net, err := vnet.New()
	if err != nil {
		return nil, err
	}
	vtCfg, gsbCfg := blocklist.VTDefault(), blocklist.GSBDefault()
	if cfg.VTOverride != nil {
		vtCfg = *cfg.VTOverride
	}
	if cfg.GSBOverride != nil {
		gsbCfg = *cfg.GSBOverride
	}
	e := &Ecosystem{
		Cfg:    cfg,
		Net:    net,
		Push:   fcm.New(""),
		Clock:  simclock.NewSimulated(cfg.Start),
		VT:     blocklist.New(vtCfg),
		GSB:    blocklist.New(gsbCfg),
		search: NewCodeSearch(),
		alexa:  NewAlexa(),
	}
	if cfg.Chaos != nil && cfg.Chaos.Enabled() {
		prof := *cfg.Chaos
		if prof.Seed == 0 {
			prof.Seed = cfg.Seed ^ 0x0c4a05 // decorrelate from generation draws
		}
		if prof.PushHost == "" {
			prof.PushHost = fcm.DefaultHost
		}
		e.chaos = chaos.NewInjector(prof, e.Clock.Now, cfg.Start)
		// Reused connections would let Go's transport auto-retry
		// requests killed by injected resets, hiding faults behind
		// scheduling races; fresh connections keep injection exact.
		net.DisableKeepAlives()
		net.SetMiddleware(e.chaos.Middleware)
		net.SetTransportWrapper(e.chaos.WrapTransport)
	}
	if cfg.Telemetry != nil {
		// Attach before any client exists: the ecosystem's own push
		// client (created next) carries scheduler traffic that must be
		// counted for chaos/retry reconciliation.
		net.AttachMetrics(cfg.Telemetry)
		e.chaos.AttachMetrics(cfg.Telemetry)
	}
	// The ecosystem's own push client carries a fixed identity so fault
	// draws against scheduler traffic are stable.
	e.fcmClient = fcm.NewClient(chaos.TagClient(net.Client(), "ecosystem"), "")
	net.Handle(fcm.DefaultHost, e.Push)
	net.Handle(VTHost, e.VT)
	net.Handle(GSBHost, e.GSB)

	e.adEco = &AdEcosystem{
		Cfg:      cfg,
		Truth:    newTruth(),
		Sched:    newScheduler(cfg.FlushWorkers),
		Now:      e.Clock.Now,
		Longtail: newLongtailGen(cfg.Seed),
		OnMalURL: func(u string, firstSeen time.Time) {
			e.VT.MarkMalicious(u, firstSeen)
			e.GSB.MarkMalicious(u, firstSeen)
			// Blocklists aggregate per path as well: the canonical
			// query-less URL is what operators probe to learn whether a
			// domain has burned.
			if i := strings.IndexByte(u, '?'); i > 0 {
				e.VT.MarkMalicious(u[:i], firstSeen)
				e.GSB.MarkMalicious(u[:i], firstSeen)
			}
		},
	}

	if cfg.EvasionEnabled {
		e.adEco.Evasion = e.newEvasion()
	}

	gen := newNameGen(cfg.Seed ^ 0x5eed)
	rng := rand.New(rand.NewSource(cfg.Seed))
	e.buildNetworks(gen, rng)
	e.buildPublisherSites(gen, rng)
	e.buildGenericSites(gen, rng)
	e.buildFallback()
	e.assignAlexaRanks(rng)
	return e, nil
}

// Close shuts the ecosystem's network down.
func (e *Ecosystem) Close() error { return e.Net.Close() }

// Truth returns the evaluation oracle.
func (e *Ecosystem) Truth() *Truth { return e.adEco.Truth }

// Search returns the code-search engine.
func (e *Ecosystem) Search() *CodeSearch { return e.search }

// Alexa returns the popularity ranking.
func (e *Ecosystem) Alexa() *Alexa { return e.alexa }

// Networks returns the generated ad networks.
func (e *Ecosystem) Networks() []*AdNetwork { return e.networks }

// Sites returns all generated sites.
func (e *Ecosystem) Sites() []*Site { return e.sites }

// SeedKeywords returns the 19 search keywords of §6.1.1: the 15 ad
// network signatures plus the 4 generic push keywords.
func (e *Ecosystem) SeedKeywords() []string {
	var out []string
	for _, n := range SeedNetworks {
		out = append(out, n.Keyword)
	}
	for _, g := range GenericKeywords {
		out = append(out, g.Keyword)
	}
	return out
}

// SeedURLs runs the code search over all seed keywords, the crawl's
// starting URL list.
func (e *Ecosystem) SeedURLs() []string {
	return e.search.SearchAll(e.SeedKeywords())
}

// Tick flushes every push delivery due at the current simulated time and
// returns how many were delivered.
func (e *Ecosystem) Tick() int {
	n, _ := e.adEco.Sched.Flush(e.Clock.Now(), e.fcmClient)
	return n
}

// NextPushAt returns the next scheduled delivery time.
func (e *Ecosystem) NextPushAt() (time.Time, bool) { return e.adEco.Sched.NextAt() }

// PendingPushes reports deliveries not yet flushed.
func (e *Ecosystem) PendingPushes() int { return e.adEco.Sched.Pending() }

// Chaos returns the fault injector, or nil when the ecosystem runs
// fault-free.
func (e *Ecosystem) Chaos() *chaos.Injector { return e.chaos }

// FaultCounts snapshots every fault and loss counter the ecosystem
// tracks: injector stats, push sends retried/abandoned by the
// scheduler, and messages collapsed out of full push-service queues.
// The crawler folds this into its Degradation report.
func (e *Ecosystem) FaultCounts() map[string]int {
	out := make(map[string]int)
	if e.chaos != nil {
		for k, v := range e.chaos.Stats() {
			out["chaos_"+k] = v
		}
	}
	if n := e.adEco.Sched.Retried(); n > 0 {
		out["push_send_retries"] = n
	}
	if n := e.adEco.Sched.Dropped(); n > 0 {
		out["push_sends_abandoned"] = n
	}
	if n := e.Push.Dropped(); n > 0 {
		out["push_queue_collapsed"] = n
	}
	return out
}

// CrashPlan returns the chaos-driven container crash schedule for the
// crawler, or nil when chaos is off.
func (e *Ecosystem) CrashPlan() func(clientID string, cycle int) bool {
	if e.chaos == nil {
		return nil
	}
	return e.chaos.ShouldCrashContainer
}

// WorkerCrashPlan returns the chaos injector's fleet worker-kill
// decider, or nil without chaos. Wire it to fleet.Config.WorkerCrashPlan
// to drive shard-worker kills from the profile's WorkerCrashFraction.
func (e *Ecosystem) WorkerCrashPlan() func(workerID string, cycle int) bool {
	if e.chaos == nil {
		return nil
	}
	return e.chaos.ShouldCrashWorker
}

// newEvasion wires the evasion controller to this ecosystem: operators
// probe the simulated VirusTotal, replacement domains are deterministic
// per campaign, and fresh domains are mounted and recorded as malicious
// ground truth.
func (e *Ecosystem) newEvasion() *EvasionController {
	ec := NewEvasionController()
	ec.Probe = func(url string, now time.Time) bool {
		return e.VT.Lookup(url, now).Malicious || e.GSB.Lookup(url, now).Malicious
	}
	ec.Fresh = func(campaignID, n int) string {
		rng := subRNG(e.Cfg.Seed, fmt.Sprintf("evade|%d|%d", campaignID, n))
		return fmt.Sprintf("%s-%s%d.icu",
			landingWords[rng.Intn(len(landingWords))],
			landingWords[rng.Intn(len(landingWords))],
			1000+rng.Intn(9000))
	}
	ec.Mount = func(camp *Campaign, domain string) {
		e.Net.Handle(domain, e.landingHandler(camp, domain))
	}
	ec.OnRotate = func(camp *Campaign, burned, fresh string) {
		e.adEco.Truth.addMaliciousDomain(fresh)
	}
	return ec
}

// Evasion returns the evasion controller, or nil when disabled.
func (e *Ecosystem) Evasion() *EvasionController { return e.adEco.Evasion }

// SetDormancy makes the given fraction of origins stop scheduling pushes
// for new subscriptions — the web-churn model behind the paper's April
// 2020 revisit, where only 35 of 300 previously active sites still sent
// notifications. It affects only future subscriptions.
func (e *Ecosystem) SetDormancy(fraction float64) { e.adEco.DormantFraction = fraction }

// --- generation ---

var adCategoryWeights = []struct {
	name   string
	weight int
}{
	// Malicious ad categories.
	{"sweepstakes", 6}, {"techsupport", 4}, {"fakealert", 5}, {"scareware", 3},
	{"lottery", 2}, {"missedcall", 2}, {"fakedelivery", 2}, {"spoofchat", 2},
	// Benign ad categories.
	{"shopping", 5}, {"vpnapp", 3}, {"jobs", 4}, {"horoscope", 2},
	{"streaming", 4}, {"adult", 1},
}

func (e *Ecosystem) buildNetworks(gen *nameGen, rng *rand.Rand) {
	for _, spec := range SeedNetworks {
		an := newAdNetwork(spec, e.adEco)
		// Campaign inventory scales with the network's NPR share
		// (≈0.1 campaigns per NPR URL at paper scale, §6.3.1's 572 /
		// 5,849).
		nCamp := e.Cfg.scaled(spec.PaperNPRs) / 10
		if nCamp < 2 {
			nCamp = 2
		}
		// Each network leans more or less malicious; all are abused to
		// some degree (Figure 6). The band is tuned so ~51% of observed
		// WPN ads end up malicious, Table 3's headline.
		propensity := 0.20 + 0.38*rng.Float64()
		for i := 0; i < nCamp; i++ {
			cat := pickAdCategory(rng, propensity)
			camp := newCampaign(e.nextCampaignID(), spec.Name, cat, gen, rng)
			an.Campaigns = append(an.Campaigns, camp)
			e.adEco.Truth.registerCampaign(camp)
			e.mountCampaignLandings(camp)
		}
		// Networks with a sizable subscriber base always run at least
		// one mobile-tailored campaign (§6.1.3 found these across the
		// major push networks).
		if e.Cfg.scaled(spec.PaperNPRs) >= 5 {
			mobileCats := []string{"missedcall", "fakedelivery", "spoofchat"}
			cat := CategoryByName(mobileCats[rng.Intn(len(mobileCats))])
			camp := newCampaign(e.nextCampaignID(), spec.Name, cat, gen, rng)
			// Mobile bait was prominent in the paper's mobile dataset;
			// weight it so physical-device crawls reliably observe it.
			camp.Weight = 3
			an.Campaigns = append(an.Campaigns, camp)
			e.adEco.Truth.registerCampaign(camp)
			e.mountCampaignLandings(camp)
		}
		e.Net.Handle(an.Host, an.AdsHandler())
		e.Net.Handle(an.CDNHost, an.CDNHandler())
		e.Net.Handle(an.TrackHost, an.TrackHandler())
		e.networks = append(e.networks, an)
	}
}

func (e *Ecosystem) nextCampaignID() int {
	e.campaignCounter++
	return e.campaignCounter
}

func pickAdCategory(rng *rand.Rand, maliciousPropensity float64) Category {
	wantMal := rng.Float64() < maliciousPropensity
	for {
		total := 0
		for _, cw := range adCategoryWeights {
			total += cw.weight
		}
		x := rng.Intn(total)
		for _, cw := range adCategoryWeights {
			x -= cw.weight
			if x < 0 {
				cat := CategoryByName(cw.name)
				if cat.Malicious == wantMal {
					return cat
				}
				break
			}
		}
	}
}

// mountCampaignLandings serves the campaign's landing domains. Any path
// on the domain renders the campaign's landing content; a deterministic
// fraction of URLs crash the tab, and some malicious landing pages
// themselves ask for notification permission (recruiting more
// subscriptions — the "additional URLs" of §6.2).
func (e *Ecosystem) mountCampaignLandings(camp *Campaign) {
	for _, domain := range camp.LandingDomains {
		domain := domain
		e.Net.Handle(domain, e.landingHandler(camp, domain))
	}
}

func (e *Ecosystem) landingHandler(camp *Campaign, domain string) http.Handler {
	var network *AdNetwork // resolved lazily: networks build after campaigns exist
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		full := "https://" + domain + r.URL.RequestURI()
		doc := &page.Doc{
			Title:   camp.Category.LandingTitle,
			Content: camp.Category.LandingContent + " " + domain,
		}
		if hashFrac(e.Cfg.Seed, "crash|"+full) < e.Cfg.CrashFraction {
			doc.Crash = true
		} else if camp.Category.Malicious &&
			hashFrac(e.Cfg.Seed, "resub|"+domain+r.URL.Path) < e.Cfg.LandingSubscribeFraction {
			if network == nil {
				network = e.networkByName(camp.Network)
			}
			if network != nil {
				doc.RequestsNotification = true
				doc.SWURL = network.SWURL()
				doc.SubscribeURL = network.SubscribeURL()
				doc.Scripts = []string{network.TagKeyword()}
			}
		}
		w.Header().Set("Content-Type", page.ContentType)
		w.Write(doc.Encode()) //nolint:errcheck
	})
}

func (e *Ecosystem) networkByName(name string) *AdNetwork {
	for _, n := range e.networks {
		if n.Spec.Name == name {
			return n
		}
	}
	return nil
}

// hashFrac maps a key to a deterministic uniform value in [0, 1).
func hashFrac(seed int64, key string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, key)
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// buildPublisherSites creates, for each ad network, the Table-1-scaled
// population of sites embedding its tag, the NPR subset of which
// actually request notification permission.
func (e *Ecosystem) buildPublisherSites(gen *nameGen, rng *rand.Rand) {
	for _, an := range e.networks {
		urls := e.Cfg.scaled(an.Spec.PaperURLs)
		nprs := e.Cfg.scaled(an.Spec.PaperNPRs)
		if nprs > urls {
			nprs = urls
		}
		for i := 0; i < urls; i++ {
			domain := gen.domain()
			npr := i < nprs
			doc := &page.Doc{
				Title:   domain,
				Content: "publisher content on " + domain,
				Scripts: []string{
					fmt.Sprintf("<script src=https://%s/tag.js></script>", an.Host),
					an.TagKeyword(),
				},
			}
			if npr {
				doc.RequestsNotification = true
				doc.DoublePermission = rng.Float64() < e.Cfg.DoublePermissionFraction
				doc.SWURL = an.SWURL()
				doc.SubscribeURL = an.SubscribeURL()
			}
			e.mountStaticSite(domain, doc)
			site := &Site{
				Domain: domain, URL: "https://" + domain + "/",
				Network: an.Spec.Name, Keyword: an.TagKeyword(), NPR: npr,
			}
			e.sites = append(e.sites, site)
			e.search.IndexPage(site.URL, doc.Scripts)
		}
	}
}

// selfCategoryWeights decide what kind of self-notifier a generic NPR
// site is.
var selfCategoryWeights = []struct {
	name      string
	weight    int
	malicious bool // self-operated malicious pusher with external landings
}{
	{"news", 42, false}, {"weather", 14, false}, {"bankalert", 6, false},
	{"welcome", 10, false}, {"horoscope", 8, false},
	{"techsupport", 6, true}, {"sweepstakes", 8, true}, {"fakealert", 6, true},
}

// buildGenericSites creates the sites found via the 4 generic push
// keywords: mostly self-notifiers, plus a minority embedding some ad
// network's tag anyway.
func (e *Ecosystem) buildGenericSites(gen *nameGen, rng *rand.Rand) {
	for _, spec := range GenericKeywords {
		urls := e.Cfg.scaled(spec.PaperURLs)
		nprs := e.Cfg.scaled(spec.PaperNPRs)
		if nprs > urls {
			nprs = urls
		}
		for i := 0; i < urls; i++ {
			domain := gen.domain()
			npr := i < nprs
			site := &Site{Domain: domain, URL: "https://" + domain + "/", Keyword: spec.Keyword, NPR: npr}
			switch {
			case !npr:
				doc := &page.Doc{
					Title: domain, Content: "site with push code but no prompt",
					Scripts: []string{spec.Keyword, "navigator.serviceWorker.register"},
				}
				e.mountStaticSite(domain, doc)
				e.search.IndexPage(site.URL, doc.Scripts)

			case spec.Keyword == "adsblockkpushcom" || rng.Float64() < 0.25:
				// Generic-keyword site that actually monetizes via an ad
				// network.
				an := e.networks[rng.Intn(len(e.networks))]
				doc := &page.Doc{
					Title: domain, Content: "publisher via generic integration",
					Scripts:              []string{spec.Keyword},
					RequestsNotification: true,
					DoublePermission:     rng.Float64() < e.Cfg.DoublePermissionFraction,
					SWURL:                an.SWURL(),
					SubscribeURL:         an.SubscribeURL(),
				}
				e.mountStaticSite(domain, doc)
				site.Network = an.Spec.Name
				e.search.IndexPage(site.URL, doc.Scripts)

			default:
				// Self-notifier.
				sc := pickSelfCategory(rng)
				self := &SelfSite{Domain: domain, Category: CategoryByName(sc.name), eco: e.adEco}
				if sc.malicious {
					nd := 1 + rng.Intn(2)
					for j := 0; j < nd; j++ {
						ext := gen.landingDomain()
						self.ExternalLanding = append(self.ExternalLanding, ext)
						e.mountScamLanding(ext, self.Category)
					}
				}
				dp := rng.Float64() < e.Cfg.DoublePermissionFraction
				e.Net.Handle(domain, self.Handler(spec.Keyword, dp))
				site.Self = self
				e.search.IndexPage(site.URL, []string{spec.Keyword, "self-push loader"})
			}
			e.sites = append(e.sites, site)
		}
	}
}

func pickSelfCategory(rng *rand.Rand) struct {
	name      string
	weight    int
	malicious bool
} {
	total := 0
	for _, sc := range selfCategoryWeights {
		total += sc.weight
	}
	x := rng.Intn(total)
	for _, sc := range selfCategoryWeights {
		x -= sc.weight
		if x < 0 {
			return sc
		}
	}
	return selfCategoryWeights[0]
}

// mountScamLanding serves an external scam domain used by a malicious
// self site.
func (e *Ecosystem) mountScamLanding(domain string, cat Category) {
	e.Net.Handle(domain, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		full := "https://" + domain + r.URL.RequestURI()
		doc := &page.Doc{Title: cat.LandingTitle, Content: cat.LandingContent + " " + domain}
		if hashFrac(e.Cfg.Seed, "crash|"+full) < e.Cfg.CrashFraction {
			doc.Crash = true
		}
		w.Header().Set("Content-Type", page.ContentType)
		w.Write(doc.Encode()) //nolint:errcheck
	}))
}

func (e *Ecosystem) mountStaticSite(domain string, doc *page.Doc) {
	body := doc.Encode()
	e.Net.Handle(domain, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", page.ContentType)
		if r.URL.Path == "/" {
			w.Write(body) //nolint:errcheck
			return
		}
		// Article/content pages on the same origin (site-alert landing
		// targets). They never re-request permission.
		article := &page.Doc{
			Title:   doc.Title + " — article",
			Content: "article content on " + domain + r.URL.Path,
		}
		w.Write(article.Encode()) //nolint:errcheck
	}))
}

// buildFallback serves a bland page for any unknown host, standing in
// for the rest of the internet.
func (e *Ecosystem) buildFallback() {
	e.Net.SetFallback(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		host := r.Host
		if i := strings.IndexByte(host, ':'); i >= 0 {
			host = host[:i]
		}
		doc := &page.Doc{Title: host, Content: "generic page on " + host}
		w.Header().Set("Content-Type", page.ContentType)
		w.Write(doc.Encode()) //nolint:errcheck
	}))
}

// assignAlexaRanks gives NPR domains a 36% chance of a top-1M rank
// (2,040 of 5,697 in the paper) and other domains a lower one.
func (e *Ecosystem) assignAlexaRanks(rng *rand.Rand) {
	for _, s := range e.sites {
		p := 0.10
		if s.NPR {
			p = 0.36
		}
		e.alexa.Assign(s.Domain, rng, p)
	}
}

// EasyListRules returns the EasyList-like filter snapshot used by the
// Table 6 experiment: it names a couple of the long-known pop/ad hosts
// but predates push-ad infrastructure, so it matches only a small
// fraction of SW ad traffic (<2% in the paper).
func (e *Ecosystem) EasyListRules() []string {
	return []string{
		"! Simulated EasyList snapshot (2019)",
		"||ads.adsterra.net^",
		"||ads.propellerads.net^$third-party",
		"||ads.hilltopads.net^",
		"/adserve/*",
		"/banner-rotate/",
		"||doubleclick.simpush.test^",
	}
}
