package webeco

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"pushadminer/internal/page"
	"pushadminer/internal/serviceworker"
	"pushadminer/internal/webpush"
)

// findSelfSite returns some generated self-notifier site.
func findSelfSite(t *testing.T, e *Ecosystem, malicious bool) *Site {
	t.Helper()
	for _, s := range e.Sites() {
		if s.Self == nil {
			continue
		}
		if malicious == (len(s.Self.ExternalLanding) > 0) {
			return s
		}
	}
	t.Skipf("no self site (malicious=%v) at this scale", malicious)
	return nil
}

func TestSelfSiteFrontPage(t *testing.T) {
	e := newEco(t, tinyConfig())
	site := findSelfSite(t, e, false)
	resp, body := httpGet(t, e, site.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	doc, err := page.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if !doc.RequestsNotification || doc.SWURL == "" || doc.SubscribeURL == "" {
		t.Errorf("self site front page incomplete: %+v", doc)
	}
	if !strings.HasPrefix(doc.SWURL, "https://"+site.Domain) {
		t.Errorf("self site SW not same-origin: %s", doc.SWURL)
	}
}

func TestSelfSiteSWIsDefault(t *testing.T) {
	e := newEco(t, tinyConfig())
	site := findSelfSite(t, e, false)
	_, body := httpGet(t, e, "https://"+site.Domain+"/sw.js")
	script, err := serviceworker.Parse(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.OnPush) != 0 || len(script.OnClick) != 0 {
		t.Errorf("self SW should use default handlers: %+v", script)
	}
}

func TestSelfSiteSchedulesAlerts(t *testing.T) {
	e := newEco(t, tinyConfig())
	site := findSelfSite(t, e, false)
	sub := e.Push.Register("https://"+site.Domain, "https://"+site.Domain+"/sw.js")
	body := `{"token":"` + sub.Token + `","endpoint":"` + sub.Endpoint + `","origin":"https://` + site.Domain + `","device":"desktop","hw":"desktop","client":"c1"}`
	resp, err := e.Net.Client().Post("https://"+site.Domain+"/subscribe", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	if e.PendingPushes() == 0 {
		t.Fatal("self site scheduled nothing")
	}
	// Deliver and inspect: payload embeds a complete notification.
	e.Clock.Advance(200 * 24 * time.Hour)
	e.Tick()
	msgs := e.Push.Poll([]string{sub.Token})
	if len(msgs) == 0 {
		t.Fatal("no messages delivered")
	}
	p, err := webpush.DecodePayload(msgs[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if p.Notification == nil || p.Notification.Title == "" {
		t.Errorf("self push payload lacks a notification: %+v", p)
	}
	if p.Notification.TargetURL != "" && !strings.Contains(p.Notification.TargetURL, site.Domain) {
		t.Errorf("benign self alert targets foreign origin: %s", p.Notification.TargetURL)
	}
}

func TestMaliciousSelfSiteTargetsExternalScam(t *testing.T) {
	e := newEco(t, Config{Seed: 12, Scale: 0.01})
	site := findSelfSite(t, e, true)
	sub := e.Push.Register("https://"+site.Domain, "https://"+site.Domain+"/sw.js")
	body := `{"token":"` + sub.Token + `","endpoint":"` + sub.Endpoint + `","origin":"https://` + site.Domain + `","device":"desktop","hw":"desktop","client":"c1"}`
	resp, err := e.Net.Client().Post("https://"+site.Domain+"/subscribe", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	e.Clock.Advance(200 * 24 * time.Hour)
	e.Tick()
	msgs := e.Push.Poll([]string{sub.Token})
	if len(msgs) == 0 {
		t.Fatal("no messages delivered")
	}
	sawExternal := false
	for _, m := range msgs {
		p, err := webpush.DecodePayload(m.Data)
		if err != nil || p.Notification == nil {
			continue
		}
		tgt := p.Notification.TargetURL
		if tgt == "" {
			continue
		}
		for _, d := range site.Self.ExternalLanding {
			if strings.Contains(tgt, d) {
				sawExternal = true
				if !e.Truth().IsMaliciousURL(tgt) {
					t.Errorf("scam target %s not in ground truth", tgt)
				}
				// The scam landing actually serves content.
				r2, b2 := httpGet(t, e, tgt)
				if r2.StatusCode != http.StatusOK {
					t.Errorf("scam landing status %d", r2.StatusCode)
				}
				if _, err := page.Decode(b2); err != nil {
					t.Errorf("scam landing unparseable: %v", err)
				}
			}
		}
	}
	if !sawExternal {
		t.Error("malicious self site never targeted its external landing")
	}
}

func TestSelfSiteArticlePages(t *testing.T) {
	e := newEco(t, tinyConfig())
	site := findSelfSite(t, e, false)
	_, body := httpGet(t, e, "https://"+site.Domain+"/news/story/a1.html?id=1")
	doc, err := page.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if doc.RequestsNotification {
		t.Error("article page re-requests permission")
	}
}

func TestSelfSiteSubscribeRejectsBadBody(t *testing.T) {
	e := newEco(t, tinyConfig())
	site := findSelfSite(t, e, false)
	r, err := e.Net.Client().Post("https://"+site.Domain+"/subscribe", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body status %d", r.StatusCode)
	}
}
