package webeco

import (
	"sort"
	"sync"

	"pushadminer/internal/urlx"
)

// AdTruth is ground truth about one served ad impression. It is used
// only for evaluation (precision/recall of the pipeline) and for seeding
// the blocklist simulators — the mining pipeline never sees it.
type AdTruth struct {
	CampaignID int
	Network    string
	Category   string
	Malicious  bool
	IsAd       bool
}

// Truth is the evaluation oracle the ecosystem maintains as it serves
// content.
type Truth struct {
	mu         sync.RWMutex
	byAdID     map[string]AdTruth
	malURLs    map[string]bool
	malDomains map[string]bool
	campaigns  map[int]*Campaign
}

func newTruth() *Truth {
	return &Truth{
		byAdID:     make(map[string]AdTruth),
		malURLs:    make(map[string]bool),
		malDomains: make(map[string]bool),
		campaigns:  make(map[int]*Campaign),
	}
}

func (t *Truth) registerCampaign(c *Campaign) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.campaigns[c.ID] = c
	if c.Category.Malicious {
		for _, d := range c.LandingDomains {
			t.malDomains[d] = true
		}
	}
}

// registerAd records an impression and, for malicious campaigns, its
// landing URL.
func (t *Truth) registerAd(adID string, tr AdTruth, landingURL string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.byAdID[adID] = tr
	if tr.Malicious && landingURL != "" {
		t.malURLs[landingURL] = true
	}
}

// registerSelfMalicious records a malicious landing URL served by a
// self-operated (non-ad-network) pusher.
func (t *Truth) registerSelfMalicious(landingURL string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.malURLs[landingURL] = true
	t.malDomains[urlx.ESLDOf(landingURL)] = true
}

// addMaliciousDomain records an evasion-minted malicious landing domain.
func (t *Truth) addMaliciousDomain(d string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.malDomains[d] = true
}

// AdTruth looks up ground truth for an ad id.
func (t *Truth) AdTruth(adID string) (AdTruth, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	tr, ok := t.byAdID[adID]
	return tr, ok
}

// IsMaliciousURL reports whether a full landing URL was served by a
// malicious campaign.
func (t *Truth) IsMaliciousURL(u string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.malURLs[u] {
		return true
	}
	return t.malDomains[urlx.ESLDOf(u)]
}

// IsMaliciousDomain reports whether a landing domain belongs to a
// malicious campaign.
func (t *Truth) IsMaliciousDomain(d string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.malDomains[d]
}

// Campaign returns the campaign with the given id.
func (t *Truth) Campaign(id int) (*Campaign, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c, ok := t.campaigns[id]
	return c, ok
}

// MaliciousURLs returns all recorded malicious landing URLs, sorted.
func (t *Truth) MaliciousURLs() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.malURLs))
	for u := range t.malURLs {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// NumCampaigns reports how many campaigns exist.
func (t *Truth) NumCampaigns() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.campaigns)
}
