package webeco

import (
	"container/heap"
	"encoding/json"
	"strings"
	"sync"
	"time"

	"pushadminer/internal/fcm"
)

// permanentSendError reports whether a send failure cannot succeed on
// retry: the push service answered 4xx (unknown or revoked token).
func permanentSendError(err error) bool {
	s := err.Error()
	return strings.Contains(s, "status 404") || strings.Contains(s, "status 400")
}

// pushJob is one scheduled push delivery.
type pushJob struct {
	at       time.Time
	endpoint string
	payload  json.RawMessage
	seq      int
	attempts int
}

type jobHeap []*pushJob

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x interface{}) { *h = append(*h, x.(*pushJob)) }
func (h *jobHeap) Pop() interface{} {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// scheduler holds future push deliveries and flushes the due ones to the
// push service over HTTP, playing the role of all the ad-network sending
// infrastructure. Failed sends are requeued with a delay (real senders
// spool and retry through push-service outages) up to a bounded number
// of attempts, after which the message is dropped and counted.
type scheduler struct {
	mu      sync.Mutex
	jobs    jobHeap
	seq     int
	sent    int
	retried int
	dropped int

	retryDelay  time.Duration
	maxAttempts int
	// workers bounds how many endpoints Flush delivers to concurrently;
	// <= 1 sends everything serially.
	workers int
}

func newScheduler(workers int) *scheduler {
	return &scheduler{retryDelay: time.Hour, maxAttempts: 48, workers: workers}
}

// Schedule enqueues a delivery.
func (s *scheduler) Schedule(at time.Time, endpoint string, payload json.RawMessage) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	heap.Push(&s.jobs, &pushJob{at: at, endpoint: endpoint, payload: payload, seq: s.seq})
}

// Pending reports queued (not yet delivered) jobs.
func (s *scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Sent reports deliveries flushed so far.
func (s *scheduler) Sent() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent
}

// NextAt returns the earliest pending delivery time, if any.
func (s *scheduler) NextAt() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.jobs) == 0 {
		return time.Time{}, false
	}
	return s.jobs[0].at, true
}

// Retried reports how many failed sends were requeued for a later try.
func (s *scheduler) Retried() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retried
}

// Dropped reports messages abandoned after exhausting send attempts.
func (s *scheduler) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// endpointGroup is one push endpoint's slice of a flush: its due jobs
// in (at, seq) order and, after sending, the per-job results. Each
// group is owned by exactly one goroutine while sends are in flight.
type endpointGroup struct {
	jobs []*pushJob
	errs []error
}

// Flush delivers every job due at or before now using the given push
// client. A failed send (push-service outage, expired registration) is
// requeued retryDelay later until maxAttempts is reached, then dropped
// and counted; the flush itself never stops on errors.
//
// Deliveries fan out across endpoints on up to s.workers goroutines:
// one endpoint's jobs always go out serially in (at, seq) order — the
// push service queues per token, so per-endpoint send order is
// observable in the drained message order — while the interleaving of
// sends to *different* tokens is not observable anywhere (per-token
// queues, identity-minted tokens, per-path fault counters). Outcomes
// are folded back into scheduler state in the jobs' deterministic pop
// order, so counters and retry requeues are byte-identical at any
// worker count.
func (s *scheduler) Flush(now time.Time, client *fcm.Client) (delivered, failed int) {
	// Collect every due job in (at, seq) order. Retries requeue at
	// now+retryDelay, so nothing collected here can become due again
	// within this same flush.
	s.mu.Lock()
	var due []*pushJob
	for len(s.jobs) > 0 && !s.jobs[0].at.After(now) {
		due = append(due, heap.Pop(&s.jobs).(*pushJob))
	}
	s.mu.Unlock()
	if len(due) == 0 {
		return 0, 0
	}

	// Group by endpoint, keeping first-seen group order and due order
	// within each group.
	groups := make(map[string]*endpointGroup)
	var order []string
	for _, job := range due {
		g := groups[job.endpoint]
		if g == nil {
			g = &endpointGroup{}
			groups[job.endpoint] = g
			order = append(order, job.endpoint)
		}
		g.jobs = append(g.jobs, job)
	}

	send := func(g *endpointGroup) {
		g.errs = make([]error, len(g.jobs))
		for i, job := range g.jobs {
			g.errs[i] = client.Send(job.endpoint, job.payload)
		}
	}
	if s.workers <= 1 || len(order) == 1 {
		for _, ep := range order {
			send(groups[ep])
		}
	} else {
		sem := make(chan struct{}, s.workers)
		var wg sync.WaitGroup
		for _, ep := range order {
			g := groups[ep]
			wg.Add(1)
			sem <- struct{}{}
			go func(g *endpointGroup) {
				defer wg.Done()
				defer func() { <-sem }()
				send(g)
			}(g)
		}
		wg.Wait()
	}

	// Fold outcomes in deterministic group order.
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ep := range order {
		g := groups[ep]
		for i, job := range g.jobs {
			err := g.errs[i]
			if err == nil {
				s.sent++
				delivered++
				continue
			}
			failed++
			if permanentSendError(err) {
				continue // expired/unknown registration: retrying is useless
			}
			job.attempts++
			if job.attempts >= s.maxAttempts {
				s.dropped++
			} else {
				s.retried++
				job.at = now.Add(s.retryDelay)
				heap.Push(&s.jobs, job)
			}
		}
	}
	return delivered, failed
}
