package webeco

import (
	"container/heap"
	"encoding/json"
	"sync"
	"time"

	"pushadminer/internal/fcm"
)

// pushJob is one scheduled push delivery.
type pushJob struct {
	at       time.Time
	endpoint string
	payload  json.RawMessage
	seq      int
}

type jobHeap []*pushJob

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x interface{}) { *h = append(*h, x.(*pushJob)) }
func (h *jobHeap) Pop() interface{} {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// scheduler holds future push deliveries and flushes the due ones to the
// push service over HTTP, playing the role of all the ad-network sending
// infrastructure.
type scheduler struct {
	mu   sync.Mutex
	jobs jobHeap
	seq  int
	sent int
}

func newScheduler() *scheduler { return &scheduler{} }

// Schedule enqueues a delivery.
func (s *scheduler) Schedule(at time.Time, endpoint string, payload json.RawMessage) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	heap.Push(&s.jobs, &pushJob{at: at, endpoint: endpoint, payload: payload, seq: s.seq})
}

// Pending reports queued (not yet delivered) jobs.
func (s *scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Sent reports deliveries flushed so far.
func (s *scheduler) Sent() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent
}

// NextAt returns the earliest pending delivery time, if any.
func (s *scheduler) NextAt() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.jobs) == 0 {
		return time.Time{}, false
	}
	return s.jobs[0].at, true
}

// Flush delivers every job due at or before now using the given push
// client. Send errors (e.g. expired registrations) are counted but do not
// stop the flush; real sending infrastructure tolerates them.
func (s *scheduler) Flush(now time.Time, client *fcm.Client) (delivered, failed int) {
	for {
		s.mu.Lock()
		if len(s.jobs) == 0 || s.jobs[0].at.After(now) {
			s.mu.Unlock()
			return delivered, failed
		}
		job := heap.Pop(&s.jobs).(*pushJob)
		s.mu.Unlock()

		if err := client.Send(job.endpoint, job.payload); err != nil {
			failed++
			continue
		}
		s.mu.Lock()
		s.sent++
		s.mu.Unlock()
		delivered++
	}
}
