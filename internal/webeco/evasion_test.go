package webeco

import (
	"sync"
	"testing"
	"time"
)

func evasionFixture() (*EvasionController, *Campaign, map[string]bool, *[]string) {
	burned := map[string]bool{}
	var mounted []string
	camp := &Campaign{
		ID:             9,
		Category:       CategoryByName("sweepstakes"),
		LandingDomains: []string{"scam-a.icu", "scam-b.icu"},
		PathFlavor:     "x-y1",
	}
	ec := NewEvasionController()
	ec.Probe = func(url string, _ time.Time) bool {
		for d := range burned {
			if len(url) >= len(d) && containsSub(url, d) {
				return true
			}
		}
		return false
	}
	ec.Fresh = func(campID, n int) string {
		return "fresh" + string(rune('0'+n)) + ".icu"
	}
	ec.Mount = func(_ *Campaign, d string) { mounted = append(mounted, d) }
	return ec, camp, burned, &mounted
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestResolveDomainCleanPassThrough(t *testing.T) {
	ec, camp, _, mounted := evasionFixture()
	now := time.Now()
	if got := ec.ResolveDomain(camp, "scam-a.icu", now); got != "scam-a.icu" {
		t.Errorf("clean domain rotated to %q", got)
	}
	if len(*mounted) != 0 {
		t.Error("mounted domains without burning")
	}
	if ec.TotalRotations() != 0 {
		t.Error("rotations counted without burning")
	}
}

func TestResolveDomainRotatesBurned(t *testing.T) {
	ec, camp, burned, mounted := evasionFixture()
	now := time.Now()
	burned["scam-a.icu"] = true
	got := ec.ResolveDomain(camp, "scam-a.icu", now)
	if got != "fresh1.icu" {
		t.Fatalf("rotated to %q, want fresh1.icu", got)
	}
	if len(*mounted) != 1 || (*mounted)[0] != "fresh1.icu" {
		t.Errorf("mounted = %v", *mounted)
	}
	if ec.Rotations(camp.ID) != 1 {
		t.Errorf("rotations = %d", ec.Rotations(camp.ID))
	}
	// Stable: the same burned domain keeps resolving to its replacement
	// without re-rotating.
	if again := ec.ResolveDomain(camp, "scam-a.icu", now); again != "fresh1.icu" {
		t.Errorf("second resolve = %q", again)
	}
	if ec.Rotations(camp.ID) != 1 {
		t.Errorf("re-resolve rotated again: %d", ec.Rotations(camp.ID))
	}
	// Unburned sibling domain untouched.
	if sib := ec.ResolveDomain(camp, "scam-b.icu", now); sib != "scam-b.icu" {
		t.Errorf("sibling rotated to %q", sib)
	}
}

func TestResolveDomainChainsWhenReplacementBurns(t *testing.T) {
	ec, camp, burned, _ := evasionFixture()
	now := time.Now()
	burned["scam-a.icu"] = true
	first := ec.ResolveDomain(camp, "scam-a.icu", now)
	burned[first] = true
	second := ec.ResolveDomain(camp, "scam-a.icu", now)
	if second == first || second == "scam-a.icu" {
		t.Fatalf("chained rotation failed: %q", second)
	}
	if ec.Rotations(camp.ID) != 2 {
		t.Errorf("rotations = %d, want 2", ec.Rotations(camp.ID))
	}
}

func TestBenignCampaignsNeverRotate(t *testing.T) {
	ec, _, burned, _ := evasionFixture()
	benign := &Campaign{ID: 4, Category: CategoryByName("shopping"), LandingDomains: []string{"deals.com"}}
	burned["deals.com"] = true
	if got := ec.ResolveDomain(benign, "deals.com", time.Now()); got != "deals.com" {
		t.Errorf("benign campaign rotated to %q", got)
	}
}

func TestResolveDomainConcurrent(t *testing.T) {
	ec, camp, burned, _ := evasionFixture()
	burned["scam-a.icu"] = true
	var wg sync.WaitGroup
	results := make([]string, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = ec.ResolveDomain(camp, "scam-a.icu", time.Now())
		}(i)
	}
	wg.Wait()
	for _, r := range results {
		if r != results[0] {
			t.Fatalf("concurrent resolves disagree: %v", results)
		}
	}
	if ec.Rotations(camp.ID) != 1 {
		t.Errorf("concurrent burn rotated %d times", ec.Rotations(camp.ID))
	}
}

// TestEvasionEndToEnd drives a crawl against an evasion-enabled
// ecosystem with aggressive blocklists and checks that campaigns rotate
// domains, growing their observed landing-domain set.
func TestEvasionEndToEnd(t *testing.T) {
	eco := newEco(t, Config{Seed: 6, Scale: 0.004, EvasionEnabled: true})
	// Aggressive blocklist coverage so domains burn during the crawl.
	// (VT/GSB configs are fixed; instead force-burn by marking ads as
	// the crawl progresses — the default lag already flags ~11% after a
	// month, so run the probe after advancing time.)
	an := eco.Networks()[0]
	var camp *Campaign
	for _, c := range an.Campaigns {
		if c.Category.Malicious {
			camp = c
			break
		}
	}
	if camp == nil {
		t.Skip("no malicious campaign on first network at this scale")
	}
	// Serve an ad to register its landing URL with ground truth + VT.
	id := camp.AdID(0, 0, 1)
	httpGet(t, eco, "https://"+an.Host+"/ad?id="+id)
	// Force the blocklist to flag the canonical probe URL, then advance
	// time and serve again: the controller must rotate.
	probe := "https://" + camp.LandingDomainAt(0) + camp.LandingPath()
	eco.VT.Force(probe)
	eco.Clock.Advance(time.Hour)
	_, body := httpGet(t, eco, "https://"+an.Host+"/ad?id="+camp.AdID(0, 0, 2))
	if eco.Evasion().Rotations(camp.ID) == 0 {
		t.Fatalf("campaign did not rotate after its domain burned (resp %s)", body)
	}
	if containsSub(string(body), camp.LandingDomainAt(0)) {
		t.Errorf("post-burn ad still targets the burned domain: %s", body)
	}
}
