package webeco

import (
	"sort"
	"strings"
	"sync"
)

// CodeSearch is the stand-in for the publicwww.com source-code search
// engine (§6.1.1): it indexes the script snippets embedded in every
// generated page and answers keyword queries with the URLs of pages
// whose source contains the keyword.
type CodeSearch struct {
	mu    sync.RWMutex
	index map[string][]string // keyword → URLs (sorted, deduped)
}

// NewCodeSearch returns an empty index.
func NewCodeSearch() *CodeSearch {
	return &CodeSearch{index: make(map[string][]string)}
}

// IndexPage records that url's source contains the given script
// snippets. Indexing is exact-substring per registered keyword at query
// time, so this simply stores the page source keyed by URL.
func (cs *CodeSearch) IndexPage(url string, scripts []string) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	src := strings.ToLower(strings.Join(scripts, "\n"))
	cs.index[url] = []string{src}
}

// Search returns the URLs of pages whose source contains keyword
// (case-insensitive), sorted.
func (cs *CodeSearch) Search(keyword string) []string {
	kw := strings.ToLower(keyword)
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	var out []string
	for url, srcs := range cs.index {
		if strings.Contains(srcs[0], kw) {
			out = append(out, url)
		}
	}
	sort.Strings(out)
	return out
}

// SearchAll unions results over several keywords, deduplicating.
func (cs *CodeSearch) SearchAll(keywords []string) []string {
	seen := make(map[string]bool)
	for _, kw := range keywords {
		for _, u := range cs.Search(kw) {
			seen[u] = true
		}
	}
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// NumPages reports how many pages are indexed.
func (cs *CodeSearch) NumPages() int {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	return len(cs.index)
}
