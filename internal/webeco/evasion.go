package webeco

import (
	"fmt"
	"sync"
	"time"
)

// EvasionController implements the blocklist-evasion behaviour the paper
// observes (§5.2): "similar malicious WPN messages often lead to
// different domain names, mainly as an attempt to evade blocking by URL
// blocklists." Real operators watch whether their landing domains get
// flagged and rotate to fresh throwaway domains when they do. The
// controller probes the blocklist the way an attacker would (a public
// lookup of its own URL) and, once a campaign domain is burned, serves
// subsequent impressions from a replacement domain — which it also
// mounts and reports to ground truth.
type EvasionController struct {
	// Probe reports whether a URL is currently blocklisted (the
	// operator's own VT/GSB lookups).
	Probe func(url string, now time.Time) bool
	// Fresh returns the n-th replacement domain for a campaign;
	// deterministic per (campaign, n).
	Fresh func(campaignID, n int) string
	// Mount serves landing pages for a new domain.
	Mount func(camp *Campaign, domain string)
	// OnRotate observes rotations (metrics, ground truth).
	OnRotate func(camp *Campaign, burned, fresh string)

	mu sync.Mutex
	// replacement maps a burned domain (per campaign) to its current
	// replacement.
	replacement map[string]string
	rotations   map[int]int // campaign → rotation count
}

// NewEvasionController returns a controller with empty state; the
// function fields must be set before use.
func NewEvasionController() *EvasionController {
	return &EvasionController{
		replacement: make(map[string]string),
		rotations:   make(map[int]int),
	}
}

// Rotations reports how many domain rotations a campaign has performed.
func (ec *EvasionController) Rotations(campaignID int) int {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return ec.rotations[campaignID]
}

// TotalRotations reports rotations across all campaigns.
func (ec *EvasionController) TotalRotations() int {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	n := 0
	for _, c := range ec.rotations {
		n += c
	}
	return n
}

// ResolveDomain returns the domain a campaign should serve from, given
// its nominally chosen domain: the original while it is clean, or the
// latest replacement once burned. Replacements that get burned in turn
// are rotated again.
func (ec *EvasionController) ResolveDomain(camp *Campaign, domain string, now time.Time) string {
	if !camp.Category.Malicious {
		return domain // legitimate advertisers don't rotate
	}
	for depth := 0; depth < 8; depth++ {
		ec.mu.Lock()
		repl, ok := ec.replacement[rotKey(camp.ID, domain)]
		ec.mu.Unlock()
		if ok {
			domain = repl
			continue
		}
		// Operator probes its own canonical landing URL.
		probe := "https://" + domain + camp.LandingPath()
		if ec.Probe == nil || !ec.Probe(probe, now) {
			return domain
		}
		fresh := ec.rotate(camp, domain)
		domain = fresh
	}
	return domain
}

func rotKey(campID int, domain string) string {
	return fmt.Sprintf("%d|%s", campID, domain)
}

// rotate mints, mounts and records a replacement for a burned domain.
func (ec *EvasionController) rotate(camp *Campaign, burned string) string {
	ec.mu.Lock()
	if repl, ok := ec.replacement[rotKey(camp.ID, burned)]; ok {
		ec.mu.Unlock()
		return repl // lost the race: someone already rotated
	}
	ec.rotations[camp.ID]++
	n := ec.rotations[camp.ID]
	fresh := ec.Fresh(camp.ID, n)
	ec.replacement[rotKey(camp.ID, burned)] = fresh
	ec.mu.Unlock()

	if ec.Mount != nil {
		ec.Mount(camp, fresh)
	}
	if ec.OnRotate != nil {
		ec.OnRotate(camp, burned, fresh)
	}
	return fresh
}
