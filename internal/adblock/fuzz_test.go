package adblock

import "testing"

// FuzzParseRule checks that arbitrary filter lines never panic the
// parser or the matcher.
func FuzzParseRule(f *testing.F) {
	for _, seed := range []string{
		"||ads.example.com^", "@@||ok.test/allowed^", "|https://x*", "/ad/",
		"||a.b^$third-party,script", "! comment", "##.ad", "$domain=a.com|~b.com",
		"^^^", "***", "||", "@@", "||x^$domain=",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		r, err := ParseRule(line)
		if err != nil || r == nil {
			return
		}
		// Matching must never panic, whatever the rule looks like.
		r.Matches(Request{URL: "https://ads.example.com/x?q=1", DocumentURL: "https://pub.test/", Type: TypeXHR})
		r.Matches(Request{URL: "not a url", DocumentURL: ""})
	})
}
