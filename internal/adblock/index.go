package adblock

import (
	"strings"

	"pushadminer/internal/urlx"
)

// The engine indexes domain-anchored block rules by the eSLD of their
// host pattern, the same trick real ad blockers use so that a request is
// checked against a handful of rules instead of the full EasyList. Rules
// whose pattern does not pin down a registrable domain stay in the
// generic scan list; behaviour is identical to the linear scan.

// patternHost extracts the fixed host prefix of a domain-anchored
// pattern: the leading run of host characters before the first
// wildcard, separator or path byte. Returns "" when the pattern does not
// start with a complete registrable host.
func patternHost(pattern string) string {
	end := len(pattern)
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		isHostByte := c == '.' || c == '-' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !isHostByte {
			end = i
			break
		}
	}
	host := pattern[:end]
	if host == "" || !strings.Contains(host, ".") {
		return ""
	}
	if end < len(pattern) {
		switch pattern[end] {
		case '^', '/', ':':
			// Host is complete: the next byte is a boundary.
		default:
			// A wildcard or other byte continues the host; the prefix
			// may be a partial label ("ads.exam*"), so don't index it.
			return ""
		}
	}
	return strings.ToLower(host)
}

// buildIndex populates the per-domain rule buckets.
func (e *Engine) buildIndex() {
	e.byDomain = make(map[string][]*Rule)
	e.generic = nil
	for _, r := range e.block {
		if !r.domainAnchor {
			e.generic = append(e.generic, r)
			continue
		}
		host := patternHost(r.pattern)
		if host == "" {
			e.generic = append(e.generic, r)
			continue
		}
		esld := urlx.ESLD(host)
		e.byDomain[esld] = append(e.byDomain[esld], r)
	}
}

// candidates returns the rules that could possibly match a request URL.
func (e *Engine) candidates(url string) []*Rule {
	host := urlx.HostOf(url)
	if host == "" {
		return e.generic
	}
	bucket := e.byDomain[urlx.ESLD(host)]
	if len(bucket) == 0 {
		return e.generic
	}
	if len(e.generic) == 0 {
		return bucket
	}
	out := make([]*Rule, 0, len(bucket)+len(e.generic))
	out = append(out, bucket...)
	out = append(out, e.generic...)
	return out
}
