package adblock

import "testing"

func mustRule(t *testing.T, line string) *Rule {
	t.Helper()
	r, err := ParseRule(line)
	if err != nil {
		t.Fatalf("ParseRule(%q): %v", line, err)
	}
	if r == nil {
		t.Fatalf("ParseRule(%q) returned no rule", line)
	}
	return r
}

func TestParseIgnoresNonNetworkLines(t *testing.T) {
	for _, line := range []string{"", "! comment", "[Adblock Plus 2.0]", "example.com##.ad", "example.com#@#.ad"} {
		r, err := ParseRule(line)
		if err != nil || r != nil {
			t.Errorf("ParseRule(%q) = %v, %v; want nil, nil", line, r, err)
		}
	}
}

func TestDomainAnchor(t *testing.T) {
	r := mustRule(t, "||ads.example.com^")
	cases := []struct {
		url  string
		want bool
	}{
		{"https://ads.example.com/banner.js", true},
		{"https://sub.ads.example.com/banner.js", true},
		{"https://example.com/ads.example.com/x", false}, // path, not host
		{"https://notads.example.com/x", false},
		{"https://ads.example.community/x", false}, // ^ must be separator
	}
	for _, c := range cases {
		got := r.Matches(Request{URL: c.url, DocumentURL: "https://pub.test/"})
		if got != c.want {
			t.Errorf("||ads.example.com^ vs %s = %v, want %v", c.url, got, c.want)
		}
	}
}

func TestStartAnchorAndWildcard(t *testing.T) {
	r := mustRule(t, "|https://track.*/pixel")
	if !r.Matches(Request{URL: "https://track.a.test/pixel?x=1"}) {
		t.Error("start anchor with wildcard failed to match")
	}
	if r.Matches(Request{URL: "https://other.test/https://track.a.test/pixel"}) {
		t.Error("start anchor matched mid-string")
	}
}

func TestSubstringPattern(t *testing.T) {
	r := mustRule(t, "/adserve/")
	if !r.Matches(Request{URL: "https://x.test/adserve/unit.js"}) {
		t.Error("substring failed")
	}
	if r.Matches(Request{URL: "https://x.test/ads/unit.js"}) {
		t.Error("substring over-matched")
	}
}

func TestSeparatorCaret(t *testing.T) {
	r := mustRule(t, "||adnet.test^push")
	if !r.Matches(Request{URL: "https://adnet.test/push?x"}) {
		t.Error("^ should match /")
	}
	if r.Matches(Request{URL: "https://adnet.testxpush/"}) {
		t.Error("^ must not match alphanumerics")
	}
}

func TestThirdPartyOption(t *testing.T) {
	r := mustRule(t, "||cdn.test^$third-party")
	third := Request{URL: "https://cdn.test/x.js", DocumentURL: "https://pub.test/"}
	first := Request{URL: "https://cdn.test/x.js", DocumentURL: "https://www.cdn.test/page"}
	if !r.Matches(third) {
		t.Error("third-party request not matched")
	}
	if r.Matches(first) {
		t.Error("first-party request matched a $third-party rule")
	}
	inv := mustRule(t, "||cdn.test^$~third-party")
	if inv.Matches(third) || !inv.Matches(first) {
		t.Error("~third-party inverted incorrectly")
	}
}

func TestTypeOption(t *testing.T) {
	r := mustRule(t, "||adnet.test^$script")
	if !r.Matches(Request{URL: "https://adnet.test/sw.js", Type: TypeScript}) {
		t.Error("script type not matched")
	}
	if r.Matches(Request{URL: "https://adnet.test/img.png", Type: TypeImage}) {
		t.Error("image matched a $script rule")
	}
}

func TestDomainOption(t *testing.T) {
	r := mustRule(t, "/sponsored/$domain=news.test|~sports.news.test")
	if !r.Matches(Request{URL: "https://x.test/sponsored/1", DocumentURL: "https://news.test/a"}) {
		t.Error("included domain not matched")
	}
	if r.Matches(Request{URL: "https://x.test/sponsored/1", DocumentURL: "https://blog.test/a"}) {
		t.Error("unlisted domain matched")
	}
}

func TestUnsupportedOptionIsError(t *testing.T) {
	if _, err := ParseRule("||x.test^$websocket"); err == nil {
		t.Error("unsupported option accepted")
	}
}

func TestEngineExceptions(t *testing.T) {
	e := ParseList([]string{
		"||ads.test^",
		"@@||ads.test/allowed^",
	})
	if d := e.Evaluate(Request{URL: "https://ads.test/banner"}); !d.Blocked {
		t.Error("block rule did not fire")
	}
	if d := e.Evaluate(Request{URL: "https://ads.test/allowed/x"}); d.Blocked {
		t.Error("exception did not override")
	}
	b, x := e.NumRules()
	if b != 1 || x != 1 {
		t.Errorf("NumRules = %d, %d", b, x)
	}
}

func TestParseListSkipsBadLines(t *testing.T) {
	e := ParseList([]string{"||ok.test^", "||bad.test^$websocket", "! comment"})
	if e.Skipped() != 1 {
		t.Errorf("Skipped = %d, want 1", e.Skipped())
	}
	if b, _ := e.NumRules(); b != 1 {
		t.Errorf("block rules = %d, want 1", b)
	}
}

// TestExtensionBlindToServiceWorkers reproduces the §6.4 mechanism: the
// extension's rules match SW requests, but it cannot see them.
func TestExtensionBlindToServiceWorkers(t *testing.T) {
	engine := ParseList([]string{"||adnet.test^"})
	ext := &Extension{Name: "blocker", Engine: engine}
	reqs := []Request{
		{URL: "https://adnet.test/ad?id=1", FromServiceWorker: true},
		{URL: "https://adnet.test/ad?id=2", FromServiceWorker: true},
		{URL: "https://adnet.test/tag.js", DocumentURL: "https://pub.test/", Type: TypeScript},
	}
	st := ext.Evaluate(reqs)
	if st.Total != 3 || st.WouldMatch != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Visible != 1 || st.Blocked != 1 {
		t.Errorf("extension blocked %d/%d visible; want 1/1 (SW requests invisible)", st.Blocked, st.Visible)
	}
	// With the Chromium fix, everything is visible and blocked.
	ext.SeesServiceWorkers = true
	st = ext.Evaluate(reqs)
	if st.Visible != 3 || st.Blocked != 3 {
		t.Errorf("post-fix stats = %+v", st)
	}
}

func TestMatchPatternEdgeCases(t *testing.T) {
	if !matchPattern("a*c", "abc", true) {
		t.Error("a*c !~ abc")
	}
	if !matchPattern("a*c", "ac", true) {
		t.Error("a*c !~ ac (empty wildcard)")
	}
	if !matchPattern("a^", "a", true) {
		t.Error("^ at end of string should match")
	}
	if matchPattern("ab", "a", true) {
		t.Error("pattern longer than input matched")
	}
	if !matchPattern("b", "abc", false) {
		t.Error("unanchored substring failed")
	}
}
