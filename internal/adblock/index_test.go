package adblock

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestPatternHost(t *testing.T) {
	cases := []struct{ pattern, want string }{
		{"ads.example.com^", "ads.example.com"},
		{"ads.example.com/path", "ads.example.com"},
		{"ads.example.com:8080", "ads.example.com"},
		{"ads.example.com", "ads.example.com"},
		{"ads.exam*", ""}, // partial label
		{"ads^", ""},      // single label
		{"^foo", ""},      // no host
		{"EXAMPLE.com^x", "example.com"},
	}
	for _, c := range cases {
		if got := patternHost(c.pattern); got != c.want {
			t.Errorf("patternHost(%q) = %q, want %q", c.pattern, got, c.want)
		}
	}
}

// linearEvaluate is the reference implementation without the index.
func (e *Engine) linearEvaluate(req Request) bool {
	var hit *Rule
	for _, r := range e.block {
		if r.Matches(req) {
			hit = r
			break
		}
	}
	if hit == nil {
		return false
	}
	for _, r := range e.exceptions {
		if r.Matches(req) {
			return false
		}
	}
	return true
}

// TestIndexedMatchesLinear fuzzes random rule sets and requests,
// requiring the indexed engine's block decision to equal the linear
// reference.
func TestIndexedMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	domains := []string{"ads.alpha.com", "cdn.beta.net", "trk.gamma.org", "x.delta.icu", "sub.ads.alpha.com"}
	paths := []string{"/ad", "/banner/1", "/pixel.gif", "/sw.js", "/adserve/x"}

	for trial := 0; trial < 50; trial++ {
		var lines []string
		for i := 0; i < 12; i++ {
			switch rng.Intn(4) {
			case 0:
				lines = append(lines, "||"+domains[rng.Intn(len(domains))]+"^")
			case 1:
				lines = append(lines, paths[rng.Intn(len(paths))])
			case 2:
				lines = append(lines, "||"+domains[rng.Intn(len(domains))]+"^$third-party")
			case 3:
				lines = append(lines, "@@||"+domains[rng.Intn(len(domains))]+"/allowed^")
			}
		}
		e := ParseList(lines)
		for i := 0; i < 40; i++ {
			req := Request{
				URL:         fmt.Sprintf("https://%s%s?q=%d", domains[rng.Intn(len(domains))], paths[rng.Intn(len(paths))], i),
				DocumentURL: "https://pub.test/",
				Type:        TypeXHR,
			}
			if rng.Intn(4) == 0 {
				req.URL = fmt.Sprintf("https://%s/allowed/thing", domains[rng.Intn(len(domains))])
			}
			got := e.Evaluate(req).Blocked
			want := e.linearEvaluate(req)
			if got != want {
				t.Fatalf("trial %d: indexed=%v linear=%v for %s with rules %v", trial, got, want, req.URL, lines)
			}
		}
	}
}

func TestGenericRulesStillApply(t *testing.T) {
	e := ParseList([]string{"||known.com^", "/adserve/"})
	// Request to an unindexed domain must still hit the generic rule.
	if !e.Evaluate(Request{URL: "https://other.net/adserve/unit"}).Blocked {
		t.Error("generic rule skipped for unindexed domain")
	}
	// And indexed-domain requests must still see generic rules.
	if !e.Evaluate(Request{URL: "https://known.com/adserve/unit"}).Blocked {
		t.Error("rule missed on indexed domain")
	}
}

func BenchmarkEngineIndexed(b *testing.B) {
	lines := make([]string, 0, 2000)
	for i := 0; i < 2000; i++ {
		lines = append(lines, fmt.Sprintf("||ads%04d.example%04d.com^", i, i))
	}
	e := ParseList(lines)
	req := Request{URL: "https://ads0042.example0042.com/x", DocumentURL: "https://pub.test/"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Evaluate(req).Blocked {
			b.Fatal("rule missed")
		}
	}
}

func BenchmarkEngineLinearReference(b *testing.B) {
	lines := make([]string, 0, 2000)
	for i := 0; i < 2000; i++ {
		lines = append(lines, fmt.Sprintf("||ads%04d.example%04d.com^", i, i))
	}
	e := ParseList(lines)
	req := Request{URL: "https://ads0042.example0042.com/x", DocumentURL: "https://pub.test/"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.linearEvaluate(req) {
			b.Fatal("rule missed")
		}
	}
}
