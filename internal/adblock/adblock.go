// Package adblock implements an Adblock-Plus-style filter-rule engine (a
// practical subset of the EasyList syntax) and the browser-extension
// visibility model needed to reproduce the paper's Table 6: extensions of
// the era could not observe network requests issued by Service Workers,
// so even rules that would match those URLs never fired (§6.4, §8).
//
// Supported filter syntax:
//
//	! comment                       — ignored
//	##selector / #@#selector        — element hiding, ignored (no DOM)
//	@@pattern                       — exception (allow) rule
//	||host^                         — domain anchor
//	|https://exact-prefix           — start anchor
//	pattern* with * wildcards       — substring with wildcards
//	^                               — separator placeholder
//	$options                        — third-party, ~third-party, script,
//	                                  image, domain=a.com|~b.com
package adblock

import (
	"fmt"
	"strings"

	"pushadminer/internal/urlx"
)

// RequestType classifies a request for $type options.
type RequestType string

// Request types understood by the engine.
const (
	TypeDocument RequestType = "document"
	TypeScript   RequestType = "script"
	TypeImage    RequestType = "image"
	TypeXHR      RequestType = "xmlhttprequest"
	TypeOther    RequestType = "other"
)

// Request is one network request presented to the engine.
type Request struct {
	URL string
	// DocumentURL is the page (or worker scope) that issued the request;
	// it determines first- vs third-party.
	DocumentURL string
	Type        RequestType
	// FromServiceWorker marks requests issued by a Service Worker rather
	// than a page context.
	FromServiceWorker bool
}

// Rule is one parsed filter rule.
type Rule struct {
	Raw          string
	Exception    bool
	domainAnchor bool   // ||
	startAnchor  bool   // |
	pattern      string // with embedded * and ^ as parsed

	optThirdParty *bool // nil = don't care
	optTypes      map[RequestType]bool
	optDomains    []string // include domains ("" slice = none)
	optNotDomains []string
}

// ParseRule parses a single filter line. It returns (nil, nil) for lines
// that carry no network-filter semantics (comments, element hiding,
// blanks).
func ParseRule(line string) (*Rule, error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "[") {
		return nil, nil
	}
	if strings.Contains(line, "##") || strings.Contains(line, "#@#") {
		return nil, nil // element hiding: no DOM in this simulation
	}
	r := &Rule{Raw: line}
	body := line
	if strings.HasPrefix(body, "@@") {
		r.Exception = true
		body = body[2:]
	}
	// Split options.
	if i := strings.LastIndexByte(body, '$'); i >= 0 && !strings.Contains(body[i:], "/") {
		opts := body[i+1:]
		body = body[:i]
		for _, opt := range strings.Split(opts, ",") {
			opt = strings.TrimSpace(opt)
			switch {
			case opt == "third-party":
				v := true
				r.optThirdParty = &v
			case opt == "~third-party":
				v := false
				r.optThirdParty = &v
			case opt == "script", opt == "image", opt == "xmlhttprequest", opt == "document", opt == "other":
				if r.optTypes == nil {
					r.optTypes = make(map[RequestType]bool)
				}
				r.optTypes[RequestType(opt)] = true
			case strings.HasPrefix(opt, "domain="):
				for _, d := range strings.Split(opt[len("domain="):], "|") {
					d = strings.ToLower(strings.TrimSpace(d))
					if d == "" {
						continue
					}
					if strings.HasPrefix(d, "~") {
						r.optNotDomains = append(r.optNotDomains, d[1:])
					} else {
						r.optDomains = append(r.optDomains, d)
					}
				}
			case opt == "":
				// tolerated
			default:
				// Unknown options make the rule inert rather than wrong.
				return nil, fmt.Errorf("adblock: unsupported option %q in %q", opt, line)
			}
		}
	}
	switch {
	case strings.HasPrefix(body, "||"):
		r.domainAnchor = true
		body = body[2:]
	case strings.HasPrefix(body, "|"):
		r.startAnchor = true
		body = body[1:]
	}
	if body == "" {
		return nil, fmt.Errorf("adblock: empty pattern in %q", line)
	}
	r.pattern = body
	return r, nil
}

// matchPattern matches an ABP pattern (with * wildcards and ^ separators)
// against s starting at position 0 when anchored, or anywhere otherwise.
func matchPattern(pattern, s string, anchored bool) bool {
	if anchored {
		return matchHere(pattern, s)
	}
	for i := 0; i <= len(s); i++ {
		if matchHere(pattern, s[i:]) {
			return true
		}
	}
	return false
}

// matchHere matches pattern against a prefix of s.
func matchHere(pattern, s string) bool {
	if pattern == "" {
		return true
	}
	switch pattern[0] {
	case '*':
		for i := 0; i <= len(s); i++ {
			if matchHere(pattern[1:], s[i:]) {
				return true
			}
		}
		return false
	case '^':
		// Separator: any char that is not alphanumeric, '-', '.', '_',
		// or '%'; also matches end of string.
		if len(s) == 0 {
			return matchHere(pattern[1:], s)
		}
		if isSeparator(s[0]) {
			return matchHere(pattern[1:], s[1:])
		}
		return false
	default:
		if len(s) == 0 || s[0] != pattern[0] {
			return false
		}
		return matchHere(pattern[1:], s[1:])
	}
}

func isSeparator(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return false
	case c == '-', c == '.', c == '_', c == '%':
		return false
	}
	return true
}

// Matches reports whether the rule matches the request (ignoring the
// Exception flag, which the engine interprets).
func (r *Rule) Matches(req Request) bool {
	if r.optThirdParty != nil {
		third := !urlx.SameESLD(req.URL, req.DocumentURL)
		if third != *r.optThirdParty {
			return false
		}
	}
	if r.optTypes != nil && !r.optTypes[req.Type] {
		return false
	}
	if len(r.optDomains) > 0 || len(r.optNotDomains) > 0 {
		doc := urlx.ESLDOf(req.DocumentURL)
		if len(r.optDomains) > 0 && !containsDomain(r.optDomains, doc) {
			return false
		}
		if containsDomain(r.optNotDomains, doc) {
			return false
		}
	}
	url := req.URL
	switch {
	case r.domainAnchor:
		// Pattern must match starting at a host-boundary position:
		// scheme://(subdomain.)*pattern...
		host := urlx.HostOf(url)
		if host == "" {
			return false
		}
		i := strings.Index(url, host)
		if i < 0 {
			return false
		}
		// Candidate starts: the host start and after each dot label.
		rest := url[i:]
		offsets := []int{0}
		for j := 0; j < len(host); j++ {
			if host[j] == '.' {
				offsets = append(offsets, j+1)
			}
		}
		for _, off := range offsets {
			if matchHere(r.pattern, rest[off:]) {
				return true
			}
		}
		return false
	case r.startAnchor:
		return matchPattern(r.pattern, url, true)
	default:
		return matchPattern(r.pattern, url, false)
	}
}

func containsDomain(list []string, esld string) bool {
	for _, d := range list {
		if d == esld || strings.HasSuffix(esld, "."+d) {
			return true
		}
	}
	return false
}

// Engine evaluates a parsed rule list. Domain-anchored rules are
// indexed by registrable domain (see index.go) so evaluation cost scales
// with the handful of rules naming the request's domain, not the full
// list.
type Engine struct {
	block      []*Rule
	exceptions []*Rule
	skipped    int // unparseable/unsupported lines

	byDomain map[string][]*Rule
	generic  []*Rule
}

// ParseList parses a full filter list, skipping unsupported lines (like
// real ad blockers do) and counting them.
func ParseList(lines []string) *Engine {
	e := &Engine{}
	for _, line := range lines {
		r, err := ParseRule(line)
		if err != nil {
			e.skipped++
			continue
		}
		if r == nil {
			continue
		}
		if r.Exception {
			e.exceptions = append(e.exceptions, r)
		} else {
			e.block = append(e.block, r)
		}
	}
	e.buildIndex()
	return e
}

// NumRules returns (block, exception) rule counts.
func (e *Engine) NumRules() (int, int) { return len(e.block), len(e.exceptions) }

// Skipped returns the number of lines dropped as unsupported.
func (e *Engine) Skipped() int { return e.skipped }

// Decision is the outcome of evaluating one request.
type Decision struct {
	Blocked bool
	Rule    string // raw text of the deciding rule, if any
}

// Evaluate applies the list to a request: blocked if any block rule
// matches and no exception rule matches.
func (e *Engine) Evaluate(req Request) Decision {
	var hit *Rule
	for _, r := range e.candidates(req.URL) {
		if r.Matches(req) {
			hit = r
			break
		}
	}
	if hit == nil {
		return Decision{}
	}
	for _, r := range e.exceptions {
		if r.Matches(req) {
			return Decision{Blocked: false, Rule: r.Raw}
		}
	}
	return Decision{Blocked: true, Rule: hit.Raw}
}

// Extension models a browser ad-blocker extension of the study period: a
// filter engine plus the visibility limitation that it only observes
// page-context requests. Requests with FromServiceWorker=true are
// invisible to it unless SeesServiceWorkers is set (the post-2020
// Chromium fix discussed in §8).
type Extension struct {
	Name               string
	Engine             *Engine
	SeesServiceWorkers bool
}

// Stats summarize an extension's performance over a request log.
type Stats struct {
	Total      int // requests presented
	Visible    int // requests the extension could observe
	WouldMatch int // requests its rules match (visibility aside)
	Blocked    int // requests actually blocked
}

// Evaluate runs the extension over a request log.
func (x *Extension) Evaluate(reqs []Request) Stats {
	var st Stats
	for _, req := range reqs {
		st.Total++
		if x.Engine.Evaluate(req).Blocked {
			st.WouldMatch++
		}
		if req.FromServiceWorker && !x.SeesServiceWorkers {
			continue // invisible: cannot block
		}
		st.Visible++
		if x.Engine.Evaluate(req).Blocked {
			st.Blocked++
		}
	}
	return st
}
