// Package detector implements the paper's future-work item (§6.3.3,
// §8): an automated malicious-WPN classifier that could block push ads
// in real time, trained on the labels PushAdMiner's offline pipeline
// produces. It is a regularized logistic-regression model over hashed
// sparse features of a single WPN — message text, landing URL structure,
// redirect behaviour, and source/landing relationships — so it can score
// one notification without clustering context.
package detector

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strings"

	"pushadminer/internal/crawler"
	"pushadminer/internal/textmine"
	"pushadminer/internal/urlx"
)

// FeatureDim is the hashed feature-space size (2^16 buckets).
const FeatureDim = 1 << 16

// Sample is one labeled training/evaluation instance.
type Sample struct {
	Features []Feature
	Label    bool // true = malicious
}

// Feature is one sparse feature: a hashed index with weight.
type Feature struct {
	Index  int
	Weight float64
}

func hashIdx(parts ...string) int {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))    //nolint:errcheck
		h.Write([]byte{0x1f}) //nolint:errcheck
	}
	return int(h.Sum64() % uint64(FeatureDim))
}

// Featurize converts a WPN record into sparse features. The extractor is
// deliberately per-record — no cluster context — because a real-time
// blocker sees one notification at a time.
func Featurize(r *crawler.WPNRecord) []Feature {
	seen := map[int]float64{}
	add := func(w float64, parts ...string) {
		seen[hashIdx(parts...)] += w
	}

	// Message text unigrams and bigrams.
	toks := textmine.ContentTokens(r.Title + " " + r.Body)
	for i, t := range toks {
		add(1, "w", t)
		if i > 0 {
			add(1, "b", toks[i-1], t)
		}
	}
	// Landing URL path tokens and landing/source relationships.
	for _, t := range urlx.PathTokens(r.LandingURL) {
		add(1, "p", t)
	}
	if r.LandingURL != "" {
		if urlx.SameESLD(r.SourceURL, r.LandingURL) {
			add(1, "x", "same-esld")
		} else {
			add(1, "x", "cross-esld")
		}
		host := urlx.HostOf(r.LandingURL)
		add(1, "tld", tldOf(host))
		if strings.ContainsAny(hostLabel(host), "0123456789") {
			add(1, "x", "digit-domain")
		}
		if strings.Contains(hostLabel(host), "-") {
			add(1, "x", "hyphen-domain")
		}
	}
	// Redirect behaviour.
	hops := len(r.RedirectChain)
	add(float64(hops), "x", "redirect-hops")
	if hops > 1 {
		add(1, "x", "redirected")
	}
	// Landing content tokens (capped, they dominate otherwise).
	ltoks := textmine.ContentTokens(r.LandingTitle + " " + r.LandingContent)
	if len(ltoks) > 48 {
		ltoks = ltoks[:48]
	}
	for _, t := range ltoks {
		add(0.5, "l", t)
	}
	// Device surface.
	add(1, "dev", r.Device)

	out := make([]Feature, 0, len(seen))
	for idx, w := range seen {
		out = append(out, Feature{Index: idx, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

func tldOf(host string) string {
	if i := strings.LastIndexByte(host, '.'); i >= 0 {
		return host[i+1:]
	}
	return host
}

// hostLabel returns the registrable label of a host (e.g. "win-prize"
// from "win-prize.xyz").
func hostLabel(host string) string {
	esld := urlx.ESLD(host)
	if i := strings.IndexByte(esld, '.'); i >= 0 {
		return esld[:i]
	}
	return esld
}

// Model is a binary logistic-regression classifier.
type Model struct {
	Weights []float64
	Bias    float64
}

// TrainConfig controls SGD training.
type TrainConfig struct {
	Epochs       int     // default 8
	LearningRate float64 // default 0.1
	L2           float64 // default 1e-5
	Seed         int64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs <= 0 {
		c.Epochs = 8
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.L2 <= 0 {
		c.L2 = 1e-5
	}
	return c
}

// Train fits a model on samples with SGD over the logistic loss.
func Train(samples []Sample, cfg TrainConfig) (*Model, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("detector: no training samples")
	}
	pos := 0
	for _, s := range samples {
		if s.Label {
			pos++
		}
	}
	if pos == 0 || pos == len(samples) {
		return nil, fmt.Errorf("detector: training set has only one class (%d/%d positive)", pos, len(samples))
	}
	cfg = cfg.withDefaults()
	m := &Model{Weights: make([]float64, FeatureDim)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(len(samples))

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LearningRate / (1 + float64(epoch))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			s := samples[i]
			p := m.prob(s.Features)
			y := 0.0
			if s.Label {
				y = 1
			}
			g := p - y
			for _, f := range s.Features {
				m.Weights[f.Index] -= lr * (g*f.Weight + cfg.L2*m.Weights[f.Index])
			}
			m.Bias -= lr * g
		}
	}
	return m, nil
}

func (m *Model) prob(fs []Feature) float64 {
	z := m.Bias
	for _, f := range fs {
		z += m.Weights[f.Index] * f.Weight
	}
	return 1 / (1 + math.Exp(-z))
}

// Score returns the malicious probability of a record.
func (m *Model) Score(r *crawler.WPNRecord) float64 { return m.prob(Featurize(r)) }

// Predict applies a 0.5 threshold.
func (m *Model) Predict(r *crawler.WPNRecord) bool { return m.Score(r) >= 0.5 }

// Metrics are binary-classification quality numbers.
type Metrics struct {
	Samples        int
	Positives      int
	TP, FP, TN, FN int
	AUC            float64
}

// Precision returns TP/(TP+FP).
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP/(TP+FN).
func (m Metrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Evaluate scores the model on labeled samples and computes confusion
// counts plus ROC AUC (by rank statistics).
func Evaluate(m *Model, samples []Sample) Metrics {
	var mt Metrics
	type scored struct {
		p   float64
		pos bool
	}
	all := make([]scored, 0, len(samples))
	for _, s := range samples {
		p := m.prob(s.Features)
		all = append(all, scored{p, s.Label})
		mt.Samples++
		if s.Label {
			mt.Positives++
		}
		pred := p >= 0.5
		switch {
		case pred && s.Label:
			mt.TP++
		case pred && !s.Label:
			mt.FP++
		case !pred && !s.Label:
			mt.TN++
		default:
			mt.FN++
		}
	}
	// AUC via the Mann–Whitney U statistic.
	sort.Slice(all, func(i, j int) bool { return all[i].p < all[j].p })
	var rankSum float64
	i := 0
	for i < len(all) {
		j := i
		for j < len(all) && all[j].p == all[i].p {
			j++
		}
		avgRank := float64(i+j+1) / 2 // 1-based average rank of the tie group
		for k := i; k < j; k++ {
			if all[k].pos {
				rankSum += avgRank
			}
		}
		i = j
	}
	nPos, nNeg := mt.Positives, mt.Samples-mt.Positives
	if nPos > 0 && nNeg > 0 {
		mt.AUC = (rankSum - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg))
	}
	return mt
}

// SplitSamples deterministically partitions samples into train/test by
// fraction (e.g. 0.7 = 70% train).
func SplitSamples(samples []Sample, trainFrac float64, seed int64) (train, test []Sample) {
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(len(samples))
	cut := int(float64(len(samples)) * trainFrac)
	for i, idx := range order {
		if i < cut {
			train = append(train, samples[idx])
		} else {
			test = append(test, samples[idx])
		}
	}
	return train, test
}

// PRPoint is one precision/recall operating point.
type PRPoint struct {
	Threshold float64
	Precision float64
	Recall    float64
}

// PRCurve sweeps classification thresholds over scored samples and
// returns the precision/recall curve — what a deployer uses to pick the
// blocker's operating point (block aggressively vs. annoy users).
func PRCurve(m *Model, samples []Sample, thresholds []float64) []PRPoint {
	if len(thresholds) == 0 {
		for t := 0.05; t < 1.0; t += 0.05 {
			thresholds = append(thresholds, t)
		}
	}
	scores := make([]float64, len(samples))
	for i, s := range samples {
		scores[i] = m.prob(s.Features)
	}
	out := make([]PRPoint, 0, len(thresholds))
	for _, th := range thresholds {
		var tp, fp, fn int
		for i, s := range samples {
			pred := scores[i] >= th
			switch {
			case pred && s.Label:
				tp++
			case pred && !s.Label:
				fp++
			case !pred && s.Label:
				fn++
			}
		}
		p := PRPoint{Threshold: th}
		if tp+fp > 0 {
			p.Precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			p.Recall = float64(tp) / float64(tp+fn)
		}
		out = append(out, p)
	}
	return out
}
