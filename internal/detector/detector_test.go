package detector

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"pushadminer/internal/crawler"
)

func malRecord(i int) *crawler.WPNRecord {
	return &crawler.WPNRecord{
		Title:          "Congratulations! You have won an iPhone 11",
		Body:           fmt.Sprintf("Claim your prize now before it expires %d", i),
		SourceURL:      fmt.Sprintf("https://pub%d.test/", i),
		LandingURL:     fmt.Sprintf("https://win-prize%d.icu/sweep/claim-prize.html?cid=%d", i%4, i),
		LandingTitle:   "Claim Your Prize",
		LandingContent: "congratulations winner survey enter your card for verification",
		RedirectChain:  []string{"a", "b"},
		Device:         "desktop",
	}
}

func benignRecord(i int) *crawler.WPNRecord {
	return &crawler.WPNRecord{
		Title:          fmt.Sprintf("Markets close higher after rally %d", i),
		Body:           "Tech stocks lift indexes to weekly gains",
		SourceURL:      fmt.Sprintf("https://news%d.org/", i),
		LandingURL:     fmt.Sprintf("https://news%d.org/finance/markets-recap.html?id=%d", i, i),
		LandingTitle:   "Story",
		LandingContent: "full article coverage reporting analysis",
		RedirectChain:  []string{"a"},
		Device:         "desktop",
	}
}

func dataset(n int) []Sample {
	var out []Sample
	for i := 0; i < n; i++ {
		out = append(out, Sample{Features: Featurize(malRecord(i)), Label: true})
		out = append(out, Sample{Features: Featurize(benignRecord(i)), Label: false})
	}
	return out
}

func TestFeaturizeDeterministic(t *testing.T) {
	a := Featurize(malRecord(1))
	b := Featurize(malRecord(1))
	if !reflect.DeepEqual(a, b) {
		t.Error("featurization not deterministic")
	}
	if len(a) == 0 {
		t.Fatal("no features extracted")
	}
	for i := 1; i < len(a); i++ {
		if a[i].Index <= a[i-1].Index {
			t.Fatal("features not sorted/unique")
		}
	}
	for _, f := range a {
		if f.Index < 0 || f.Index >= FeatureDim {
			t.Fatalf("feature index %d out of range", f.Index)
		}
	}
}

func TestFeaturizeDiscriminates(t *testing.T) {
	m := Featurize(malRecord(0))
	b := Featurize(benignRecord(0))
	if reflect.DeepEqual(m, b) {
		t.Error("malicious and benign records featurize identically")
	}
}

func TestTrainSeparable(t *testing.T) {
	samples := dataset(60)
	train, test := SplitSamples(samples, 0.7, 1)
	model, err := Train(train, TrainConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mt := Evaluate(model, test)
	if mt.F1() < 0.9 {
		t.Errorf("F1 = %.3f on separable data, want >= 0.9 (metrics %+v)", mt.F1(), mt)
	}
	if mt.AUC < 0.95 {
		t.Errorf("AUC = %.3f, want >= 0.95", mt.AUC)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, TrainConfig{}); err == nil {
		t.Error("empty training set accepted")
	}
	onlyPos := []Sample{{Features: Featurize(malRecord(0)), Label: true}}
	if _, err := Train(onlyPos, TrainConfig{}); err == nil {
		t.Error("single-class training set accepted")
	}
}

func TestPredictAndScore(t *testing.T) {
	samples := dataset(60)
	model, err := Train(samples, TrainConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !model.Predict(malRecord(999)) {
		t.Error("unseen malicious record not detected")
	}
	if model.Predict(benignRecord(999)) {
		t.Error("unseen benign record flagged")
	}
	s := model.Score(malRecord(999))
	if s < 0 || s > 1 {
		t.Errorf("score %v out of [0,1]", s)
	}
}

func TestMetricsMath(t *testing.T) {
	m := Metrics{TP: 8, FP: 2, TN: 85, FN: 5}
	if p := m.Precision(); math.Abs(p-0.8) > 1e-9 {
		t.Errorf("precision = %v", p)
	}
	if r := m.Recall(); math.Abs(r-8.0/13.0) > 1e-9 {
		t.Errorf("recall = %v", r)
	}
	if f := m.F1(); f <= 0 || f >= 1 {
		t.Errorf("f1 = %v", f)
	}
	var zero Metrics
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 {
		t.Error("zero metrics not handled")
	}
}

func TestAUCPerfectAndRandom(t *testing.T) {
	// A model scoring positives strictly above negatives has AUC 1.
	perfect := &Model{Weights: make([]float64, FeatureDim)}
	var samples []Sample
	for i := 0; i < 20; i++ {
		pos := i%2 == 0
		f := []Feature{{Index: i, Weight: 1}}
		if pos {
			perfect.Weights[i] = 5
		} else {
			perfect.Weights[i] = -5
		}
		samples = append(samples, Sample{Features: f, Label: pos})
	}
	if mt := Evaluate(perfect, samples); math.Abs(mt.AUC-1) > 1e-9 {
		t.Errorf("perfect AUC = %v", mt.AUC)
	}
	// Constant scores → AUC 0.5 (all tied).
	flat := &Model{Weights: make([]float64, FeatureDim)}
	if mt := Evaluate(flat, samples); math.Abs(mt.AUC-0.5) > 1e-9 {
		t.Errorf("flat AUC = %v", mt.AUC)
	}
}

func TestSplitSamples(t *testing.T) {
	samples := dataset(50)
	train, test := SplitSamples(samples, 0.7, 3)
	if len(train)+len(test) != len(samples) {
		t.Fatalf("split lost samples: %d + %d != %d", len(train), len(test), len(samples))
	}
	if len(train) != int(0.7*float64(len(samples))) {
		t.Errorf("train size = %d", len(train))
	}
	// Deterministic.
	train2, _ := SplitSamples(samples, 0.7, 3)
	if !reflect.DeepEqual(train, train2) {
		t.Error("split not deterministic")
	}
}

func TestTrainDeterministic(t *testing.T) {
	samples := dataset(30)
	a, err := Train(samples, TrainConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(samples, TrainConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Bias != b.Bias {
		t.Error("training not deterministic")
	}
}

func TestNoisyLabelsStillLearnable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	samples := dataset(80)
	// Flip 10% of labels.
	for i := range samples {
		if rng.Float64() < 0.1 {
			samples[i].Label = !samples[i].Label
		}
	}
	train, test := SplitSamples(samples, 0.7, 5)
	model, err := Train(train, TrainConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mt := Evaluate(model, test)
	if mt.AUC < 0.8 {
		t.Errorf("AUC under 10%% label noise = %.3f, want >= 0.8", mt.AUC)
	}
}

func TestPRCurve(t *testing.T) {
	samples := dataset(60)
	train, test := SplitSamples(samples, 0.7, 9)
	model, err := Train(train, TrainConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	curve := PRCurve(model, test, nil)
	if len(curve) < 10 {
		t.Fatalf("curve points = %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Threshold <= curve[i-1].Threshold {
			t.Fatal("thresholds not increasing")
		}
		// Recall is non-increasing as the threshold rises.
		if curve[i].Recall > curve[i-1].Recall+1e-9 {
			t.Errorf("recall increased with threshold: %+v -> %+v", curve[i-1], curve[i])
		}
	}
	// On separable data, some operating point is near-perfect.
	best := 0.0
	for _, p := range curve {
		if f := 2 * p.Precision * p.Recall / (p.Precision + p.Recall + 1e-12); f > best {
			best = f
		}
	}
	if best < 0.9 {
		t.Errorf("best F1 on curve = %.3f", best)
	}
}
