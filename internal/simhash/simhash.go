// Package simhash implements 64-bit SimHash fingerprints over token
// streams. The paper's manual verification judges landing pages by
// visual similarity to known malicious pages (§5.4, factor 1); since the
// simulated browser renders pages as text, a locality-sensitive content
// fingerprint is the faithful stand-in for screenshot comparison: nearly
// identical scam pages (same kit, different domain) hash within a few
// bits of each other, while unrelated pages are ~32 bits apart.
package simhash

import (
	"hash/fnv"
	"math/bits"
	"strconv"
)

// Hash is a 64-bit SimHash fingerprint.
type Hash uint64

// Of computes the SimHash of a token sequence. Tokens contribute their
// FNV-64a hashes; per-bit majority voting forms the fingerprint. An
// empty sequence hashes to 0.
func Of(tokens []string) Hash {
	if len(tokens) == 0 {
		return 0
	}
	var counts [64]int
	for _, tok := range tokens {
		h := fnv.New64a()
		h.Write([]byte(tok)) //nolint:errcheck
		v := h.Sum64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				counts[b]++
			} else {
				counts[b]--
			}
		}
	}
	var out Hash
	for b := 0; b < 64; b++ {
		if counts[b] > 0 {
			out |= 1 << uint(b)
		}
	}
	return out
}

// Distance returns the Hamming distance between two fingerprints
// (0..64).
func Distance(a, b Hash) int { return bits.OnesCount64(uint64(a ^ b)) }

// Near reports whether two fingerprints are within k bits.
func Near(a, b Hash, k int) bool { return Distance(a, b) <= k }

// String renders the hash as fixed-width hex.
func (h Hash) String() string {
	s := strconv.FormatUint(uint64(h), 16)
	for len(s) < 16 {
		s = "0" + s
	}
	return s
}

// Parse reads a hash back from String's output. It returns 0 for
// malformed input.
func Parse(s string) Hash {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return Hash(v)
}

// Index is a simple set of fingerprints supporting nearest-neighbour
// queries by linear scan — adequate for the study's page counts.
type Index struct {
	hashes []Hash
}

// Add inserts a fingerprint.
func (ix *Index) Add(h Hash) { ix.hashes = append(ix.hashes, h) }

// Len returns the number of stored fingerprints.
func (ix *Index) Len() int { return len(ix.hashes) }

// AnyNear reports whether any stored fingerprint is within k bits of h.
func (ix *Index) AnyNear(h Hash, k int) bool {
	for _, x := range ix.hashes {
		if Near(x, h, k) {
			return true
		}
	}
	return false
}

// Nearest returns the closest stored fingerprint and its distance, or
// (0, 65, false) when empty.
func (ix *Index) Nearest(h Hash) (Hash, int, bool) {
	if len(ix.hashes) == 0 {
		return 0, 65, false
	}
	best, bestD := ix.hashes[0], Distance(ix.hashes[0], h)
	for _, x := range ix.hashes[1:] {
		if d := Distance(x, h); d < bestD {
			best, bestD = x, d
		}
	}
	return best, bestD, true
}
