// Package simhash implements 64-bit SimHash fingerprints over token
// streams. The paper's manual verification judges landing pages by
// visual similarity to known malicious pages (§5.4, factor 1); since the
// simulated browser renders pages as text, a locality-sensitive content
// fingerprint is the faithful stand-in for screenshot comparison: nearly
// identical scam pages (same kit, different domain) hash within a few
// bits of each other, while unrelated pages are ~32 bits apart.
package simhash

import (
	"hash/fnv"
	"math/bits"
	"sort"
	"strconv"
)

// Hash is a 64-bit SimHash fingerprint.
type Hash uint64

// Of computes the SimHash of a token sequence. Tokens contribute their
// FNV-64a hashes; per-bit majority voting forms the fingerprint. An
// empty sequence hashes to 0.
func Of(tokens []string) Hash {
	if len(tokens) == 0 {
		return 0
	}
	var counts [64]int
	for _, tok := range tokens {
		h := fnv.New64a()
		h.Write([]byte(tok)) //nolint:errcheck
		v := h.Sum64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				counts[b]++
			} else {
				counts[b]--
			}
		}
	}
	var out Hash
	for b := 0; b < 64; b++ {
		if counts[b] > 0 {
			out |= 1 << uint(b)
		}
	}
	return out
}

// Distance returns the Hamming distance between two fingerprints
// (0..64).
func Distance(a, b Hash) int { return bits.OnesCount64(uint64(a ^ b)) }

// Near reports whether two fingerprints are within k bits.
func Near(a, b Hash, k int) bool { return Distance(a, b) <= k }

// String renders the hash as fixed-width hex.
func (h Hash) String() string {
	s := strconv.FormatUint(uint64(h), 16)
	for len(s) < 16 {
		s = "0" + s
	}
	return s
}

// Parse reads a hash back from String's output. It returns 0 for
// malformed input — indistinguishable from the legitimate all-zero
// fingerprint (an empty token sequence). Callers that round-trip
// fingerprints through checkpoints or shard state should use
// ParseStrict instead.
func Parse(s string) Hash {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return Hash(v)
}

// ParseStrict reads a hash back from String's output and reports
// whether the input was well-formed: exactly 16 hex digits, the fixed
// width String always emits. Unlike Parse it distinguishes malformed
// input (ok == false) from the legitimate all-zero hash
// ("0000000000000000", ok == true).
func ParseStrict(s string) (Hash, bool) {
	if len(s) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, false
	}
	return Hash(v), true
}

// Band extracts the i-th of nBands contiguous bit-bands of h (i in
// [0, nBands)). Bands split the 64 bits as evenly as possible, low bits
// first; when nBands does not divide 64 the last band takes the
// remainder. Two fingerprints that agree on any band are locality-
// sensitive candidates: a pair within k flipped bits fails to share a
// band only when the flips cover every band, which is vanishingly rare
// for k well below nBands·(64/nBands).
func Band(h Hash, i, nBands int) uint64 {
	if nBands <= 0 || i < 0 || i >= nBands {
		panic("simhash: band out of range")
	}
	width := 64 / nBands
	lo := i * width
	if i == nBands-1 {
		width = 64 - lo
	}
	if width >= 64 {
		return uint64(h)
	}
	return (uint64(h) >> uint(lo)) & (1<<uint(width) - 1)
}

// SharesBand reports whether a and b agree on at least one of nBands
// bit-bands — the banded-LSH candidate test. It runs on the XOR of the
// fingerprints, so it costs a handful of shifts regardless of nBands.
func SharesBand(a, b Hash, nBands int) bool {
	if nBands <= 0 {
		panic("simhash: nBands must be positive")
	}
	x := uint64(a ^ b)
	width := 64 / nBands
	for i := 0; i < nBands; i++ {
		lo := i * width
		w := width
		if i == nBands-1 {
			w = 64 - lo
		}
		var band uint64
		if w >= 64 {
			band = x
		} else {
			band = (x >> uint(lo)) & (1<<uint(w) - 1)
		}
		if band == 0 {
			return true
		}
	}
	return false
}

// BandIndex buckets fingerprints by band value so candidate sets can be
// enumerated without the O(n²) all-pairs scan: items sharing any band
// land in a common bucket. IDs are caller-assigned (typically record
// indices). A BandIndex is not safe for concurrent use: Add mutates the
// buckets and Candidates reuses an internal scratch set.
type BandIndex struct {
	nBands  int
	buckets []map[uint64][]int
	scratch map[int]bool // reused across Candidates calls
}

// NewBandIndex returns an empty index over nBands bit-bands.
func NewBandIndex(nBands int) *BandIndex {
	if nBands <= 0 || nBands > 64 {
		panic("simhash: nBands out of range")
	}
	ix := &BandIndex{
		nBands:  nBands,
		buckets: make([]map[uint64][]int, nBands),
		scratch: make(map[int]bool),
	}
	for i := range ix.buckets {
		ix.buckets[i] = make(map[uint64][]int)
	}
	return ix
}

// Add inserts a fingerprint under the given id.
func (ix *BandIndex) Add(id int, h Hash) {
	for b := 0; b < ix.nBands; b++ {
		key := Band(h, b, ix.nBands)
		ix.buckets[b][key] = append(ix.buckets[b][key], id)
	}
}

// Candidates returns the deduplicated ids sharing at least one band with
// h, in ascending id order. An item previously Added under h is its own
// candidate.
func (ix *BandIndex) Candidates(h Hash) []int {
	return ix.AppendCandidates(nil, h)
}

// AppendCandidates appends the deduplicated ids sharing at least one
// band with h to dst (in ascending id order) and returns the extended
// slice, so hot loops can reuse one buffer across calls. Deduplication
// runs on a scratch set owned by the index and the sort is
// sort.Ints — large buckets no longer pay a per-call map allocation or
// the old O(k²) insertion sort.
func (ix *BandIndex) AppendCandidates(dst []int, h Hash) []int {
	clear(ix.scratch)
	start := len(dst)
	for b := 0; b < ix.nBands; b++ {
		for _, id := range ix.buckets[b][Band(h, b, ix.nBands)] {
			if !ix.scratch[id] {
				ix.scratch[id] = true
				dst = append(dst, id)
			}
		}
	}
	sort.Ints(dst[start:])
	return dst
}

// ForEachGroup calls fn once per bucket holding at least two ids, with
// the bucket's id list in insertion order. Every pair of fingerprints
// that share a band appears together in at least one group, so a caller
// union-finding over groups recovers exactly the banded-LSH candidate
// graph's connected components. The slice is the index's own storage:
// fn must not retain or mutate it. Iteration order is unspecified (map
// order); callers needing determinism must canonicalize, as union-find
// components do.
func (ix *BandIndex) ForEachGroup(fn func(ids []int)) {
	for _, bkt := range ix.buckets {
		for _, ids := range bkt {
			if len(ids) >= 2 {
				fn(ids)
			}
		}
	}
}

// Index is a simple set of fingerprints supporting nearest-neighbour
// queries by linear scan — adequate for the study's page counts.
type Index struct {
	hashes []Hash
}

// Add inserts a fingerprint.
func (ix *Index) Add(h Hash) { ix.hashes = append(ix.hashes, h) }

// Len returns the number of stored fingerprints.
func (ix *Index) Len() int { return len(ix.hashes) }

// AnyNear reports whether any stored fingerprint is within k bits of h.
func (ix *Index) AnyNear(h Hash, k int) bool {
	for _, x := range ix.hashes {
		if Near(x, h, k) {
			return true
		}
	}
	return false
}

// Nearest returns the closest stored fingerprint and its distance, or
// (0, 65, false) when empty.
func (ix *Index) Nearest(h Hash) (Hash, int, bool) {
	if len(ix.hashes) == 0 {
		return 0, 65, false
	}
	best, bestD := ix.hashes[0], Distance(ix.hashes[0], h)
	for _, x := range ix.hashes[1:] {
		if d := Distance(x, h); d < bestD {
			best, bestD = x, d
		}
	}
	return best, bestD, true
}
