package simhash

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestParseStrict(t *testing.T) {
	cases := []struct {
		in   string
		want Hash
		ok   bool
	}{
		{"0000000000000000", 0, true},
		{"00000000deadbeef", 0xdeadbeef, true},
		{"ffffffffffffffff", ^Hash(0), true},
		{"", 0, false},
		{"0", 0, false},        // Parse accepts this; strict rejects short input
		{"deadbeef", 0, false}, // valid hex, wrong width — a truncated checkpoint field
		{"00000000deadbeefX", 0, false},
		{"000000000000000g", 0, false},
		{"0x00000000000000", 0, false},
		{"-000000000000001", 0, false},
		{" 000000000000000", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseStrict(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("ParseStrict(%q) = (%v, %v), want (%v, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
	// Round trip: every String output parses strictly.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		h := Hash(rng.Uint64())
		got, ok := ParseStrict(h.String())
		if !ok || got != h {
			t.Fatalf("round trip failed for %v", h)
		}
	}
}

// referenceCandidates recomputes a BandIndex query by brute force over
// the added set.
func referenceCandidates(added map[int]Hash, h Hash, nBands int) []int {
	var out []int
	for id, x := range added {
		if SharesBand(x, h, nBands) {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// TestAppendCandidatesMatchesReference cross-checks the scratch-set
// fast path against the brute-force definition on random fingerprints,
// including repeated queries (the reused scratch set must not leak
// state between calls) and buffer reuse.
func TestAppendCandidatesMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, nBands := range []int{1, 4, 8, 13} {
		ix := NewBandIndex(nBands)
		added := make(map[int]Hash)
		for id := 0; id < 300; id++ {
			var h Hash
			if id%3 == 0 && id > 0 {
				// Correlated with an earlier hash: flip a few bits so
				// bands genuinely collide.
				h = added[rng.Intn(id)] ^ Hash(1)<<uint(rng.Intn(64))
			} else {
				h = Hash(rng.Uint64())
			}
			ix.Add(id, h)
			added[id] = h
		}
		buf := make([]int, 0, 64)
		for q := 0; q < 50; q++ {
			h := added[rng.Intn(300)]
			if q%2 == 0 {
				h = Hash(rng.Uint64())
			}
			want := referenceCandidates(added, h, nBands)
			got := ix.Candidates(h)
			if !equalInts(got, want) {
				t.Fatalf("nBands=%d: Candidates(%v) = %v, want %v", nBands, h, got, want)
			}
			// AppendCandidates must leave the prefix intact and append
			// the same sorted set.
			buf = buf[:0]
			buf = append(buf, -7)
			buf = ix.AppendCandidates(buf, h)
			if buf[0] != -7 || !equalInts(buf[1:], want) {
				t.Fatalf("nBands=%d: AppendCandidates corrupted buffer: %v, want prefix -7 then %v", nBands, buf, want)
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestForEachGroup asserts the group enumeration recovers exactly the
// banded candidate graph: two ids appear together in some group iff
// they share a band.
func TestForEachGroup(t *testing.T) {
	const nBands = 8
	rng := rand.New(rand.NewSource(3))
	ix := NewBandIndex(nBands)
	hashes := make([]Hash, 120)
	for id := range hashes {
		var h Hash
		if id%4 == 0 && id > 0 {
			h = hashes[rng.Intn(id)] ^ Hash(1)<<uint(rng.Intn(64))
		} else {
			h = Hash(rng.Uint64())
		}
		hashes[id] = h
		ix.Add(id, h)
	}
	together := make(map[[2]int]bool)
	ix.ForEachGroup(func(ids []int) {
		if len(ids) < 2 {
			t.Fatalf("group with %d id(s) emitted", len(ids))
		}
		for a := 0; a < len(ids); a++ {
			for b := 0; b < len(ids); b++ {
				if a != b {
					i, j := ids[a], ids[b]
					if i > j {
						i, j = j, i
					}
					together[[2]int{i, j}] = true
				}
			}
		}
	})
	for i := 0; i < len(hashes); i++ {
		for j := i + 1; j < len(hashes); j++ {
			want := SharesBand(hashes[i], hashes[j], nBands)
			if together[[2]int{i, j}] != want {
				t.Fatalf("pair (%d,%d): grouped=%v, SharesBand=%v", i, j, together[[2]int{i, j}], want)
			}
		}
	}
}

// BenchmarkCandidatesLargeBucket is the regression benchmark for the
// Candidates hot-path fix: thousands of ids landing in shared buckets
// previously paid a fresh map allocation per call plus an O(k²)
// insertion sort of the result. The fixed path reuses a scratch set and
// sort.Ints; allocations per query should stay flat in bucket size
// (modulo the returned slice itself).
func BenchmarkCandidatesLargeBucket(b *testing.B) {
	for _, size := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("bucket=%d", size), func(b *testing.B) {
			ix := NewBandIndex(8)
			base := Hash(0x5a5a5a5a5a5a5a5a)
			for id := 0; id < size; id++ {
				// One flipped bit: every hash shares 7 of 8 bands with
				// base, so queries see huge overlapping buckets.
				ix.Add(id, base^Hash(1)<<uint(id%64))
			}
			buf := make([]int, 0, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = ix.AppendCandidates(buf[:0], base)
			}
			if len(buf) != size {
				b.Fatalf("query returned %d candidates, want %d", len(buf), size)
			}
		})
	}
}
