package simhash

import (
	"strings"
	"testing"
	"testing/quick"
)

func toks(s string) []string { return strings.Fields(s) }

func TestIdenticalContentSameHash(t *testing.T) {
	a := Of(toks("your computer has been blocked call now"))
	b := Of(toks("your computer has been blocked call now"))
	if a != b {
		t.Fatalf("identical content hashed differently: %v vs %v", a, b)
	}
}

func TestSimilarContentNearHash(t *testing.T) {
	base := "congratulations lucky winner complete this short survey to receive your exclusive reward enter your shipping details and card for verification today"
	variant := base + " bonus777.icu" // same kit, different domain appended
	a, b := Of(toks(base)), Of(toks(variant))
	if d := Distance(a, b); d > 12 {
		t.Errorf("near-duplicate pages %d bits apart, want <= 12", d)
	}
	unrelated := Of(toks("hourly forecast radar temperature precipitation wind humidity alerts for your local area today and tomorrow morning"))
	if d := Distance(a, unrelated); d < 16 {
		t.Errorf("unrelated pages only %d bits apart, want >= 16", d)
	}
}

func TestEmpty(t *testing.T) {
	if Of(nil) != 0 {
		t.Error("empty token stream must hash to 0")
	}
}

func TestDistanceProperties(t *testing.T) {
	f := func(a, b uint64) bool {
		ha, hb := Hash(a), Hash(b)
		d := Distance(ha, hb)
		if d < 0 || d > 64 {
			return false
		}
		if Distance(ha, ha) != 0 {
			return false
		}
		return Distance(ha, hb) == Distance(hb, ha)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNear(t *testing.T) {
	if !Near(0b1011, 0b1010, 1) {
		t.Error("1-bit difference not near with k=1")
	}
	if Near(0b1011, 0b0000, 2) {
		t.Error("3-bit difference near with k=2")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	h := Of(toks("some page text"))
	if got := Parse(h.String()); got != h {
		t.Errorf("round trip: %v -> %q -> %v", h, h.String(), got)
	}
	if len(h.String()) != 16 {
		t.Errorf("String length %d", len(h.String()))
	}
	if Parse("zz") != 0 {
		t.Error("malformed parse did not return 0")
	}
}

func TestIndex(t *testing.T) {
	var ix Index
	if _, _, ok := ix.Nearest(5); ok {
		t.Error("empty index returned a neighbour")
	}
	if ix.AnyNear(5, 64) {
		t.Error("empty index claims a near match")
	}
	scam := Of(toks("call the toll free number your computer is blocked"))
	ix.Add(scam)
	ix.Add(Of(toks("daily horoscope love career money lucky numbers")))
	if ix.Len() != 2 {
		t.Fatalf("Len = %d", ix.Len())
	}
	variantTokens := toks("call the toll free number your computer is blocked error 0x80072ee7")
	v := Of(variantTokens)
	nearest, d, ok := ix.Nearest(v)
	if !ok || nearest != scam {
		t.Errorf("Nearest = %v, %d, %v; want the scam hash", nearest, d, ok)
	}
	if !ix.AnyNear(v, 16) {
		t.Error("variant not near the stored scam page")
	}
}
