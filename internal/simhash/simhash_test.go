package simhash

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func toks(s string) []string { return strings.Fields(s) }

func TestIdenticalContentSameHash(t *testing.T) {
	a := Of(toks("your computer has been blocked call now"))
	b := Of(toks("your computer has been blocked call now"))
	if a != b {
		t.Fatalf("identical content hashed differently: %v vs %v", a, b)
	}
}

func TestSimilarContentNearHash(t *testing.T) {
	base := "congratulations lucky winner complete this short survey to receive your exclusive reward enter your shipping details and card for verification today"
	variant := base + " bonus777.icu" // same kit, different domain appended
	a, b := Of(toks(base)), Of(toks(variant))
	if d := Distance(a, b); d > 12 {
		t.Errorf("near-duplicate pages %d bits apart, want <= 12", d)
	}
	unrelated := Of(toks("hourly forecast radar temperature precipitation wind humidity alerts for your local area today and tomorrow morning"))
	if d := Distance(a, unrelated); d < 16 {
		t.Errorf("unrelated pages only %d bits apart, want >= 16", d)
	}
}

func TestEmpty(t *testing.T) {
	if Of(nil) != 0 {
		t.Error("empty token stream must hash to 0")
	}
}

func TestDistanceProperties(t *testing.T) {
	f := func(a, b uint64) bool {
		ha, hb := Hash(a), Hash(b)
		d := Distance(ha, hb)
		if d < 0 || d > 64 {
			return false
		}
		if Distance(ha, ha) != 0 {
			return false
		}
		return Distance(ha, hb) == Distance(hb, ha)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNear(t *testing.T) {
	if !Near(0b1011, 0b1010, 1) {
		t.Error("1-bit difference not near with k=1")
	}
	if Near(0b1011, 0b0000, 2) {
		t.Error("3-bit difference near with k=2")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	h := Of(toks("some page text"))
	if got := Parse(h.String()); got != h {
		t.Errorf("round trip: %v -> %q -> %v", h, h.String(), got)
	}
	if len(h.String()) != 16 {
		t.Errorf("String length %d", len(h.String()))
	}
	if Parse("zz") != 0 {
		t.Error("malformed parse did not return 0")
	}
}

func TestIndex(t *testing.T) {
	var ix Index
	if _, _, ok := ix.Nearest(5); ok {
		t.Error("empty index returned a neighbour")
	}
	if ix.AnyNear(5, 64) {
		t.Error("empty index claims a near match")
	}
	scam := Of(toks("call the toll free number your computer is blocked"))
	ix.Add(scam)
	ix.Add(Of(toks("daily horoscope love career money lucky numbers")))
	if ix.Len() != 2 {
		t.Fatalf("Len = %d", ix.Len())
	}
	variantTokens := toks("call the toll free number your computer is blocked error 0x80072ee7")
	v := Of(variantTokens)
	nearest, d, ok := ix.Nearest(v)
	if !ok || nearest != scam {
		t.Errorf("Nearest = %v, %d, %v; want the scam hash", nearest, d, ok)
	}
	if !ix.AnyNear(v, 16) {
		t.Error("variant not near the stored scam page")
	}
}

func TestBandPartitionsAllBits(t *testing.T) {
	for _, nBands := range []int{1, 2, 4, 5, 8, 16, 64} {
		h := Hash(0xdeadbeefcafef00d)
		var rebuilt uint64
		width := 64 / nBands
		for i := 0; i < nBands; i++ {
			rebuilt |= Band(h, i, nBands) << uint(i*width)
		}
		if rebuilt != uint64(h) {
			t.Errorf("nBands=%d: bands rebuild %x, want %x", nBands, rebuilt, uint64(h))
		}
	}
}

func TestSharesBand(t *testing.T) {
	a := Hash(0x0123456789abcdef)
	if !SharesBand(a, a, 8) {
		t.Error("identical hashes share no band")
	}
	// Flip exactly one bit per 8-bit band: no band survives.
	b := a ^ 0x0101010101010101
	if SharesBand(a, b, 8) {
		t.Error("one flip in every band still shares a band")
	}
	// Flip bits only in the low band: the other 7 bands survive.
	c := a ^ 0x00000000000000ff
	if !SharesBand(a, c, 8) {
		t.Error("flips confined to one band should leave candidates")
	}
	// SharesBand must agree with per-band equality for random pairs.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		x, y := Hash(rng.Uint64()), Hash(rng.Uint64())
		for _, nBands := range []int{1, 3, 8, 16} {
			want := false
			for i := 0; i < nBands; i++ {
				if Band(x, i, nBands) == Band(y, i, nBands) {
					want = true
					break
				}
			}
			if got := SharesBand(x, y, nBands); got != want {
				t.Fatalf("SharesBand(%x,%x,%d) = %v, want %v", x, y, nBands, got, want)
			}
		}
	}
}

func TestBandIndexCandidates(t *testing.T) {
	ix := NewBandIndex(8)
	base := Hash(0xfedcba9876543210)
	near := base ^ 0x3 // two flipped bits: shares 7 bands
	far := ^base       // all bits flipped: shares none
	ix.Add(0, base)
	ix.Add(1, near)
	ix.Add(2, far)
	got := ix.Candidates(base)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Candidates(base) = %v, want [0 1]", got)
	}
	if got := ix.Candidates(far); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Candidates(far) = %v, want [2]", got)
	}
	// Candidates must be exactly the SharesBand-positive set.
	rng := rand.New(rand.NewSource(7))
	hashes := make([]Hash, 50)
	ix2 := NewBandIndex(4)
	for i := range hashes {
		hashes[i] = Hash(rng.Uint64())
		ix2.Add(i, hashes[i])
	}
	for i, h := range hashes {
		want := []int{}
		for j, g := range hashes {
			if SharesBand(h, g, 4) {
				want = append(want, j)
			}
		}
		got := ix2.Candidates(h)
		if len(got) != len(want) {
			t.Fatalf("item %d: candidates %v, want %v", i, got, want)
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("item %d: candidates %v, want %v", i, got, want)
			}
		}
	}
}
