// Package vnet provides the virtual network the simulated web runs on: a
// single real TCP listener on loopback serving an arbitrary number of
// virtual HTTPS hosts, plus http.Clients whose transport resolves every
// hostname to that listener. All traffic between the crawler's browsers,
// the push service, ad networks, and landing pages crosses a real
// net/http stack; only name resolution and TLS are virtualized (URLs use
// the https scheme, carried over plaintext HTTP on loopback).
package vnet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"pushadminer/internal/chaos"
	"pushadminer/internal/httpx"
	"pushadminer/internal/telemetry"
)

// Network is a virtual internet. Register hosts with Handle, then create
// clients with Client. Close releases the listener.
type Network struct {
	mu       sync.RWMutex
	hosts    map[string]http.Handler
	fallback http.Handler
	// middleware, if set, wraps every dispatched handler (fault
	// injection, instrumentation). Set it before traffic starts.
	middleware func(host string, h http.Handler) http.Handler
	// wrapTransport, if set, wraps the round tripper of every client
	// created afterwards (client-side fault injection).
	wrapTransport func(http.RoundTripper) http.RoundTripper

	listener net.Listener
	server   *http.Server
	addr     string
	// base is the single shared Transport all clients dial through; one
	// connection pool per network keeps file-descriptor usage bounded
	// no matter how many browser containers exist.
	base *http.Transport

	// inflight tracks handler executions so Close can drain them —
	// including hijacked connections, which server.Shutdown does not
	// wait for.
	inflight sync.WaitGroup

	// reqFamily is the single per-host request counter: RequestCounts
	// reads it, and AttachMetrics adopts the same family into a
	// telemetry registry, so tests and snapshots can never disagree.
	reqFamily *telemetry.Family

	metrics *clientMetrics // client-side counting, set by AttachMetrics
}

// clientMetrics counts every round trip of every client created after
// AttachMetrics, at the one choke point all simulated traffic crosses.
// Sitting outside the chaos transport wrapper, it sees blackholed and
// reset requests as transport errors, and chaos-marked responses by
// their injected-fault kind — which is what makes chaos's injected
// counts reconcilable with the crawler's retry counters.
type clientMetrics struct {
	requests *telemetry.Counter // round trips attempted
	errors   *telemetry.Counter // transport-level failures, any cause
	errKinds *telemetry.Family  // the same failures classified by cause
	status   *telemetry.Family  // responses by status class ("2xx".."5xx")
	injected *telemetry.Family  // chaos-marked responses by fault kind
}

// New starts a virtual network on an ephemeral loopback port.
func New() (*Network, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("vnet: listen: %w", err)
	}
	n := &Network{
		hosts:    make(map[string]http.Handler),
		listener: ln,
		addr:     ln.Addr().String(),
		base: &http.Transport{
			MaxIdleConns:        128,
			MaxIdleConnsPerHost: 64,
			MaxConnsPerHost:     256,
			IdleConnTimeout:     2 * time.Second,
		},
		reqFamily: telemetry.NewFamily("vnet_requests_by_host", "host"),
	}
	n.server = &http.Server{Handler: http.HandlerFunc(n.dispatch)}
	go n.server.Serve(ln) //nolint:errcheck // Serve returns on Close
	return n, nil
}

// Close shuts the network down, first draining in-flight requests (with
// a bound, so a wedged handler cannot hang shutdown forever).
func (n *Network) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() {
		n.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
	return n.server.Shutdown(ctx)
}

// Addr returns the real listener address (host:port on loopback).
func (n *Network) Addr() string { return n.addr }

// Handle registers a handler for a virtual hostname (no port, lowercase).
// Registering the same host twice replaces the handler.
func (n *Network) Handle(host string, h http.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hosts[strings.ToLower(host)] = h
}

// HandleFunc registers a handler function for a virtual hostname.
func (n *Network) HandleFunc(host string, f func(http.ResponseWriter, *http.Request)) {
	n.Handle(host, http.HandlerFunc(f))
}

// SetFallback registers a handler used for hosts with no registration.
// Without a fallback, unknown hosts get 502 Bad Gateway — the virtual
// equivalent of DNS resolution failure.
func (n *Network) SetFallback(h http.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fallback = h
}

// SetMiddleware installs a wrapper applied to every dispatched handler
// (including the fallback). Passing nil removes it. Install before
// traffic starts; requests already in flight keep the handler they
// resolved.
func (n *Network) SetMiddleware(mw func(host string, h http.Handler) http.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.middleware = mw
}

// SetTransportWrapper installs a wrapper applied to the round tripper
// of every client created afterwards. Clients created before the call
// are unaffected.
func (n *Network) SetTransportWrapper(wrap func(http.RoundTripper) http.RoundTripper) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.wrapTransport = wrap
}

// DisableKeepAlives turns connection reuse off for the shared transport.
// Fault profiles that reset connections need this: Go's transport
// silently retries idempotent requests that die on a *reused*
// connection, which would make injected resets unobservable and their
// effects scheduling-dependent.
func (n *Network) DisableKeepAlives() {
	n.base.DisableKeepAlives = true
}

// Hosts returns the registered virtual hostnames, sorted.
func (n *Network) Hosts() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.hosts))
	for h := range n.hosts {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// RequestCount returns how many requests the given host has served.
func (n *Network) RequestCount(host string) int {
	return int(n.reqFamily.With(strings.ToLower(host)).Value())
}

// RequestCounts returns a race-safe snapshot of the per-host request
// counters. It reads the same telemetry family AttachMetrics exposes in
// registry snapshots — one code path for both consumers.
func (n *Network) RequestCounts() map[string]int {
	counts := n.reqFamily.Counts()
	out := make(map[string]int, len(counts))
	for h, c := range counts {
		out[h] = int(c)
	}
	return out
}

// AttachMetrics folds the network's per-host request family into the
// registry and starts client-side counting: every client created after
// this call counts round trips, transport errors, response status
// classes, and chaos-injected faults (marked via chaos.InjectedHeader).
// A nil registry detaches. Attach before creating clients whose traffic
// must be counted.
func (n *Network) AttachMetrics(reg *telemetry.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if reg == nil {
		n.metrics = nil
		return
	}
	reg.Adopt(n.reqFamily)
	n.metrics = &clientMetrics{
		requests: reg.Counter("vnet_client_requests"),
		errors:   reg.Counter("vnet_client_transport_errors"),
		errKinds: reg.Family("vnet_client_errors", "kind"),
		status:   reg.Family("vnet_responses_by_class", "class"),
		injected: reg.Family("vnet_injected_faults", "kind"),
	}
}

func (n *Network) dispatch(w http.ResponseWriter, r *http.Request) {
	n.inflight.Add(1)
	defer n.inflight.Done()
	host := strings.ToLower(r.Host)
	if i := strings.IndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	n.reqFamily.Add(host, 1)
	n.mu.RLock()
	h := n.hosts[host]
	if h == nil {
		h = n.fallback
	}
	mw := n.middleware
	n.mu.RUnlock()
	if h == nil {
		http.Error(w, "vnet: no such host "+host, http.StatusBadGateway)
		return
	}
	if mw != nil {
		h = mw(host, h)
	}
	h.ServeHTTP(w, r)
}

// transport routes every request to the network's loopback listener,
// preserving the virtual Host, and downgrades the https scheme to plain
// HTTP on the wire.
type transport struct {
	network *Network
	base    *http.Transport
}

// RoundTrip implements http.RoundTripper.
func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	clone := req.Clone(req.Context())
	if clone.URL.Scheme == "https" {
		clone.URL.Scheme = "http"
	}
	if clone.Host == "" {
		clone.Host = req.URL.Host
	}
	clone.URL.Host = t.network.addr
	resp, err := t.base.RoundTrip(clone)
	if resp != nil {
		// Restore the virtual URL so callers (and the redirect
		// resolver) see the request they actually made, not the
		// loopback rewrite.
		resp.Request = req
	}
	return resp, err
}

// Client returns an http.Client that resolves all hosts through the
// virtual network. Redirects are followed up to the standard limit; use
// ClientNoRedirect to observe redirect chains hop by hop.
func (n *Network) Client() *http.Client {
	return &http.Client{Transport: n.newTransport(), Timeout: 10 * time.Second}
}

// ClientNoRedirect returns a client that does not follow redirects,
// letting callers record each hop of a redirection chain. The client
// carries its own cookie jar: each crawler container is an isolated
// browsing session, which is exactly why the paper ran one Docker
// container per URL — some ad networks track browsers across sessions
// via cookies (§8). The jar is an httpx.MemJar so a container's cookie
// state can be exported and rehydrated on shard failover.
func (n *Network) ClientNoRedirect() *http.Client {
	return &http.Client{
		Transport: n.newTransport(),
		Jar:       httpx.NewMemJar(),
		Timeout:   10 * time.Second,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

func (n *Network) newTransport() http.RoundTripper {
	var rt http.RoundTripper = &transport{network: n, base: n.base}
	n.mu.RLock()
	wrap := n.wrapTransport
	m := n.metrics
	n.mu.RUnlock()
	if wrap != nil {
		rt = wrap(rt)
	}
	if m != nil {
		// Outermost, so chaos-injected transport failures are visible.
		rt = &countingTransport{base: rt, m: m}
	}
	return rt
}

// countingTransport observes every client round trip for clientMetrics.
type countingTransport struct {
	base http.RoundTripper
	m    *clientMetrics
}

// RoundTrip implements http.RoundTripper.
func (t *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.m.requests.Inc()
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		t.m.errors.Inc()
		t.m.errKinds.Add(errorKind(err), 1)
		return resp, err
	}
	t.m.status.Add(statusClass(resp.StatusCode), 1)
	if kind := resp.Header.Get(chaos.InjectedHeader); kind != "" {
		t.m.injected.Add(kind, 1)
	}
	return resp, err
}

// errorKind classifies a transport failure by cause, which is what
// makes the chaos reconciliation exact: "blackhole" is the injector's
// client-side DNS window, "bad_url" is a navigation to a scheme-less or
// unsupported URL (an ecosystem artifact, not a fault), and "conn" is a
// killed connection — under chaos, exactly the injected resets.
func errorKind(err error) string {
	s := err.Error()
	switch {
	case strings.Contains(s, "blackhole window"):
		return "blackhole"
	case strings.Contains(s, "unsupported protocol scheme"):
		return "bad_url"
	default:
		return "conn"
	}
}

func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}
