// Package vnet provides the virtual network the simulated web runs on: a
// single real TCP listener on loopback serving an arbitrary number of
// virtual HTTPS hosts, plus http.Clients whose transport resolves every
// hostname to that listener. All traffic between the crawler's browsers,
// the push service, ad networks, and landing pages crosses a real
// net/http stack; only name resolution and TLS are virtualized (URLs use
// the https scheme, carried over plaintext HTTP on loopback).
package vnet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/cookiejar"
	"sort"
	"strings"
	"sync"
	"time"
)

// Network is a virtual internet. Register hosts with Handle, then create
// clients with Client. Close releases the listener.
type Network struct {
	mu       sync.RWMutex
	hosts    map[string]http.Handler
	fallback http.Handler
	// middleware, if set, wraps every dispatched handler (fault
	// injection, instrumentation). Set it before traffic starts.
	middleware func(host string, h http.Handler) http.Handler
	// wrapTransport, if set, wraps the round tripper of every client
	// created afterwards (client-side fault injection).
	wrapTransport func(http.RoundTripper) http.RoundTripper

	listener net.Listener
	server   *http.Server
	addr     string
	// base is the single shared Transport all clients dial through; one
	// connection pool per network keeps file-descriptor usage bounded
	// no matter how many browser containers exist.
	base *http.Transport

	// inflight tracks handler executions so Close can drain them —
	// including hijacked connections, which server.Shutdown does not
	// wait for.
	inflight sync.WaitGroup

	reqCount map[string]int // per-host request counter, for tests/metrics
}

// New starts a virtual network on an ephemeral loopback port.
func New() (*Network, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("vnet: listen: %w", err)
	}
	n := &Network{
		hosts:    make(map[string]http.Handler),
		listener: ln,
		addr:     ln.Addr().String(),
		base: &http.Transport{
			MaxIdleConns:        128,
			MaxIdleConnsPerHost: 64,
			MaxConnsPerHost:     256,
			IdleConnTimeout:     2 * time.Second,
		},
		reqCount: make(map[string]int),
	}
	n.server = &http.Server{Handler: http.HandlerFunc(n.dispatch)}
	go n.server.Serve(ln) //nolint:errcheck // Serve returns on Close
	return n, nil
}

// Close shuts the network down, first draining in-flight requests (with
// a bound, so a wedged handler cannot hang shutdown forever).
func (n *Network) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() {
		n.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
	return n.server.Shutdown(ctx)
}

// Addr returns the real listener address (host:port on loopback).
func (n *Network) Addr() string { return n.addr }

// Handle registers a handler for a virtual hostname (no port, lowercase).
// Registering the same host twice replaces the handler.
func (n *Network) Handle(host string, h http.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hosts[strings.ToLower(host)] = h
}

// HandleFunc registers a handler function for a virtual hostname.
func (n *Network) HandleFunc(host string, f func(http.ResponseWriter, *http.Request)) {
	n.Handle(host, http.HandlerFunc(f))
}

// SetFallback registers a handler used for hosts with no registration.
// Without a fallback, unknown hosts get 502 Bad Gateway — the virtual
// equivalent of DNS resolution failure.
func (n *Network) SetFallback(h http.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fallback = h
}

// SetMiddleware installs a wrapper applied to every dispatched handler
// (including the fallback). Passing nil removes it. Install before
// traffic starts; requests already in flight keep the handler they
// resolved.
func (n *Network) SetMiddleware(mw func(host string, h http.Handler) http.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.middleware = mw
}

// SetTransportWrapper installs a wrapper applied to the round tripper
// of every client created afterwards. Clients created before the call
// are unaffected.
func (n *Network) SetTransportWrapper(wrap func(http.RoundTripper) http.RoundTripper) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.wrapTransport = wrap
}

// DisableKeepAlives turns connection reuse off for the shared transport.
// Fault profiles that reset connections need this: Go's transport
// silently retries idempotent requests that die on a *reused*
// connection, which would make injected resets unobservable and their
// effects scheduling-dependent.
func (n *Network) DisableKeepAlives() {
	n.base.DisableKeepAlives = true
}

// Hosts returns the registered virtual hostnames, sorted.
func (n *Network) Hosts() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.hosts))
	for h := range n.hosts {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// RequestCount returns how many requests the given host has served.
func (n *Network) RequestCount(host string) int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.reqCount[strings.ToLower(host)]
}

// RequestCounts returns a race-safe snapshot of the per-host request
// counters.
func (n *Network) RequestCounts() map[string]int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make(map[string]int, len(n.reqCount))
	for h, c := range n.reqCount {
		out[h] = c
	}
	return out
}

func (n *Network) dispatch(w http.ResponseWriter, r *http.Request) {
	n.inflight.Add(1)
	defer n.inflight.Done()
	host := strings.ToLower(r.Host)
	if i := strings.IndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	n.mu.Lock()
	n.reqCount[host]++
	h := n.hosts[host]
	if h == nil {
		h = n.fallback
	}
	mw := n.middleware
	n.mu.Unlock()
	if h == nil {
		http.Error(w, "vnet: no such host "+host, http.StatusBadGateway)
		return
	}
	if mw != nil {
		h = mw(host, h)
	}
	h.ServeHTTP(w, r)
}

// transport routes every request to the network's loopback listener,
// preserving the virtual Host, and downgrades the https scheme to plain
// HTTP on the wire.
type transport struct {
	network *Network
	base    *http.Transport
}

// RoundTrip implements http.RoundTripper.
func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	clone := req.Clone(req.Context())
	if clone.URL.Scheme == "https" {
		clone.URL.Scheme = "http"
	}
	if clone.Host == "" {
		clone.Host = req.URL.Host
	}
	clone.URL.Host = t.network.addr
	resp, err := t.base.RoundTrip(clone)
	if resp != nil {
		// Restore the virtual URL so callers (and the redirect
		// resolver) see the request they actually made, not the
		// loopback rewrite.
		resp.Request = req
	}
	return resp, err
}

// Client returns an http.Client that resolves all hosts through the
// virtual network. Redirects are followed up to the standard limit; use
// ClientNoRedirect to observe redirect chains hop by hop.
func (n *Network) Client() *http.Client {
	return &http.Client{Transport: n.newTransport(), Timeout: 10 * time.Second}
}

// ClientNoRedirect returns a client that does not follow redirects,
// letting callers record each hop of a redirection chain. The client
// carries its own cookie jar: each crawler container is an isolated
// browsing session, which is exactly why the paper ran one Docker
// container per URL — some ad networks track browsers across sessions
// via cookies (§8).
func (n *Network) ClientNoRedirect() *http.Client {
	jar, _ := cookiejar.New(nil) // error is impossible with nil options
	return &http.Client{
		Transport: n.newTransport(),
		Jar:       jar,
		Timeout:   10 * time.Second,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

func (n *Network) newTransport() http.RoundTripper {
	var rt http.RoundTripper = &transport{network: n, base: n.base}
	n.mu.RLock()
	wrap := n.wrapTransport
	n.mu.RUnlock()
	if wrap != nil {
		rt = wrap(rt)
	}
	return rt
}
