package vnet

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestMiddlewareWrapsEveryHost(t *testing.T) {
	n, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.HandleFunc("before.test", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "inner")
	})
	n.SetMiddleware(func(host string, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("X-Wrapped", host)
			h.ServeHTTP(w, r)
		})
	})
	n.HandleFunc("after.test", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "inner")
	})

	client := n.Client()
	for _, host := range []string{"before.test", "after.test"} {
		resp, err := client.Get("http://" + host + "/")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.Header.Get("X-Wrapped") != host || string(body) != "inner" {
			t.Fatalf("%s: wrapped=%q body=%q", host, resp.Header.Get("X-Wrapped"), body)
		}
	}
}

func TestRequestCountsSnapshotUnderLoad(t *testing.T) {
	n, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.HandleFunc("a.test", func(w http.ResponseWriter, r *http.Request) {})
	n.HandleFunc("b.test", func(w http.ResponseWriter, r *http.Request) {})

	const perHost = 25
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := n.Client()
			for j := 0; j < perHost; j++ {
				for _, h := range []string{"a.test", "b.test"} {
					resp, err := client.Get("http://" + h + "/")
					if err == nil {
						resp.Body.Close()
					}
				}
				// Snapshot concurrently with traffic; the race detector
				// checks safety, the final counts check completeness.
				_ = n.RequestCounts()
			}
		}()
	}
	wg.Wait()
	counts := n.RequestCounts()
	if counts["a.test"] != 4*perHost || counts["b.test"] != 4*perHost {
		t.Fatalf("counts = %v, want %d each", counts, 4*perHost)
	}
	counts["a.test"] = -1 // must be a copy
	if n.RequestCounts()["a.test"] == -1 {
		t.Fatal("RequestCounts returned internal map, not a snapshot")
	}
}

func TestCloseDrainsInflightRequests(t *testing.T) {
	n, err := New()
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	var finished bool
	n.HandleFunc("slow.test", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		time.Sleep(150 * time.Millisecond)
		finished = true
		fmt.Fprint(w, "done")
	})

	type result struct {
		body string
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := n.Client().Get("http://slow.test/")
		if err != nil {
			resCh <- result{err: err}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		resCh <- result{body: string(body)}
	}()

	<-started
	if err := n.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if !finished {
		t.Fatal("Close returned before the in-flight handler finished")
	}
	r := <-resCh
	if r.err != nil || r.body != "done" {
		t.Fatalf("in-flight request: body=%q err=%v", r.body, r.err)
	}
}
