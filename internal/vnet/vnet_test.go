package vnet

import (
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sync"
	"testing"
)

func newNet(t *testing.T) *Network {
	t.Helper()
	n, err := New()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func get(t *testing.T, c *http.Client, url string) (*http.Response, string) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, string(body)
}

func TestVirtualHosts(t *testing.T) {
	n := newNet(t)
	n.HandleFunc("a.test", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "site A")
	})
	n.HandleFunc("b.test", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "site B")
	})
	c := n.Client()
	if _, body := get(t, c, "https://a.test/"); body != "site A" {
		t.Errorf("a.test body = %q", body)
	}
	if _, body := get(t, c, "https://b.test/"); body != "site B" {
		t.Errorf("b.test body = %q", body)
	}
}

func TestUnknownHost502(t *testing.T) {
	n := newNet(t)
	resp, _ := get(t, n.Client(), "https://nope.test/")
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
}

func TestFallback(t *testing.T) {
	n := newNet(t)
	n.SetFallback(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "fallback for ", r.Host)
	}))
	resp, body := get(t, n.Client(), "https://anything.test/")
	if resp.StatusCode != 200 || body != "fallback for anything.test" {
		t.Errorf("fallback: %d %q", resp.StatusCode, body)
	}
}

func TestHTTPSchemePreservedInHandler(t *testing.T) {
	n := newNet(t)
	var gotHost, gotPath string
	n.HandleFunc("site.test", func(w http.ResponseWriter, r *http.Request) {
		gotHost, gotPath = r.Host, r.URL.Path
	})
	get(t, n.Client(), "https://site.test/some/path?q=1")
	if gotHost != "site.test" {
		t.Errorf("handler saw Host %q", gotHost)
	}
	if gotPath != "/some/path" {
		t.Errorf("handler saw path %q", gotPath)
	}
}

func TestRedirectFollowing(t *testing.T) {
	n := newNet(t)
	n.HandleFunc("hop1.test", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "https://hop2.test/land", http.StatusFound)
	})
	n.HandleFunc("hop2.test", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "landed")
	})
	resp, body := get(t, n.Client(), "https://hop1.test/start")
	if body != "landed" {
		t.Errorf("body = %q", body)
	}
	if got := resp.Request.URL.Host; got != "hop2.test" {
		t.Errorf("final host = %q", got)
	}
}

func TestClientNoRedirect(t *testing.T) {
	n := newNet(t)
	n.HandleFunc("hop1.test", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "https://hop2.test/land", http.StatusMovedPermanently)
	})
	resp, _ := get(t, n.ClientNoRedirect(), "https://hop1.test/x")
	if resp.StatusCode != http.StatusMovedPermanently {
		t.Errorf("status = %d, want 301", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "https://hop2.test/land" {
		t.Errorf("Location = %q", loc)
	}
}

func TestRequestCount(t *testing.T) {
	n := newNet(t)
	n.HandleFunc("counted.test", func(w http.ResponseWriter, r *http.Request) {})
	c := n.Client()
	for i := 0; i < 3; i++ {
		get(t, c, "https://counted.test/")
	}
	if got := n.RequestCount("counted.test"); got != 3 {
		t.Errorf("RequestCount = %d, want 3", got)
	}
	if got := n.RequestCount("never.test"); got != 0 {
		t.Errorf("RequestCount(never) = %d", got)
	}
}

func TestHostsSorted(t *testing.T) {
	n := newNet(t)
	n.HandleFunc("z.test", func(http.ResponseWriter, *http.Request) {})
	n.HandleFunc("a.test", func(http.ResponseWriter, *http.Request) {})
	if got := n.Hosts(); !reflect.DeepEqual(got, []string{"a.test", "z.test"}) {
		t.Errorf("Hosts = %v", got)
	}
}

func TestConcurrentClients(t *testing.T) {
	n := newNet(t)
	n.HandleFunc("busy.test", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, r.URL.Query().Get("i"))
	})
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := n.Client()
			resp, err := c.Get(fmt.Sprintf("https://busy.test/?i=%d", i))
			if err != nil {
				t.Errorf("GET: %v", err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if string(body) != fmt.Sprint(i) {
				t.Errorf("got %q want %d", body, i)
			}
		}(i)
	}
	wg.Wait()
}

func TestHostCaseAndPortInsensitive(t *testing.T) {
	n := newNet(t)
	n.HandleFunc("mixed.test", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	if _, body := get(t, n.Client(), "https://MIXED.test/"); body != "ok" {
		t.Errorf("case-insensitive dispatch failed: %q", body)
	}
}
