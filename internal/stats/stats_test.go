package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, 4})
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if m := e.Mean(); math.Abs(m-2.5) > 1e-9 {
		t.Errorf("Mean = %v", m)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(5) != 0 || e.Mean() != 0 {
		t.Error("empty ECDF not zeroed")
	}
	defer func() {
		if recover() == nil {
			t.Error("Quantile on empty ECDF did not panic")
		}
	}()
	e.Quantile(0.5)
}

func TestQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	if q := e.Quantile(0.5); q != 50 {
		t.Errorf("median = %v", q)
	}
	if q := e.Quantile(0); q != 10 {
		t.Errorf("q0 = %v", q)
	}
	if q := e.Quantile(1); q != 100 {
		t.Errorf("q1 = %v", q)
	}
	if q := e.Quantile(0.9); q != 90 {
		t.Errorf("q90 = %v", q)
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewECDF(raw)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return e.At(lo) <= e.At(hi) && e.At(hi) <= 1 && e.At(lo) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDurationECDF(t *testing.T) {
	d := NewDurationECDF([]time.Duration{time.Minute, 2 * time.Minute, time.Hour})
	if got := d.At(5 * time.Minute); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("At(5m) = %v", got)
	}
	if q := d.Quantile(0.5); q != 2*time.Minute {
		t.Errorf("median = %v", q)
	}
	if d.Mean() <= 0 {
		t.Error("mean not positive")
	}
	if d.Len() != 3 {
		t.Error("len wrong")
	}
}

func TestDurationHistogram(t *testing.T) {
	samples := []time.Duration{
		30 * time.Second, 10 * time.Minute, 14 * time.Minute, 2 * time.Hour, 90 * time.Hour,
	}
	bounds := []time.Duration{time.Minute, 15 * time.Minute, 24 * time.Hour}
	buckets := DurationHistogram(samples, bounds)
	if len(buckets) != 4 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	wantCounts := []int{1, 2, 1, 1}
	total := 0
	for i, b := range buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d (%s) = %d, want %d", i, b.Label, b.Count, wantCounts[i])
		}
		total += b.Count
	}
	if total != len(samples) {
		t.Errorf("histogram lost samples: %d != %d", total, len(samples))
	}
}
