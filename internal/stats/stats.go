// Package stats provides the small distribution toolkit the measurement
// harness uses: empirical CDFs, quantiles, and fixed-bucket histograms
// over durations and floats.
package stats

import (
	"fmt"
	"sort"
	"time"
)

// ECDF is an empirical cumulative distribution over float64 samples.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF (copies and sorts the input).
func NewECDF(samples []float64) *ECDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the sample count.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1) by the nearest-rank
// method. It panics on an empty distribution.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		panic("stats: quantile of empty ECDF")
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	idx := int(q*float64(len(e.sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.sorted) {
		idx = len(e.sorted) - 1
	}
	return e.sorted[idx]
}

// Mean returns the sample mean (0 for empty).
func (e *ECDF) Mean() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	var sum float64
	for _, v := range e.sorted {
		sum += v
	}
	return sum / float64(len(e.sorted))
}

// DurationECDF wraps an ECDF over time.Durations.
type DurationECDF struct{ e *ECDF }

// NewDurationECDF builds a duration ECDF.
func NewDurationECDF(samples []time.Duration) *DurationECDF {
	fs := make([]float64, len(samples))
	for i, d := range samples {
		fs[i] = float64(d)
	}
	return &DurationECDF{e: NewECDF(fs)}
}

// Len returns the sample count.
func (d *DurationECDF) Len() int { return d.e.Len() }

// At returns P(X <= x).
func (d *DurationECDF) At(x time.Duration) float64 { return d.e.At(float64(x)) }

// Quantile returns the q-th quantile duration.
func (d *DurationECDF) Quantile(q float64) time.Duration {
	return time.Duration(d.e.Quantile(q))
}

// Mean returns the mean duration.
func (d *DurationECDF) Mean() time.Duration { return time.Duration(d.e.Mean()) }

// Bucket is one histogram bar.
type Bucket struct {
	Label string
	Count int
}

// DurationHistogram buckets samples at the given boundaries; a final
// overflow bucket collects the rest. Boundaries must be ascending.
func DurationHistogram(samples []time.Duration, bounds []time.Duration) []Bucket {
	buckets := make([]Bucket, len(bounds)+1)
	for i, b := range bounds {
		lo := time.Duration(0)
		if i > 0 {
			lo = bounds[i-1]
		}
		buckets[i].Label = fmt.Sprintf("%s–%s", lo, b)
	}
	buckets[len(bounds)].Label = fmt.Sprintf("> %s", bounds[len(bounds)-1])
	for _, s := range samples {
		placed := false
		for i, b := range bounds {
			if s <= b {
				buckets[i].Count++
				placed = true
				break
			}
		}
		if !placed {
			buckets[len(bounds)].Count++
		}
	}
	return buckets
}
