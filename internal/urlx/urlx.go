// Package urlx provides the URL analysis primitives the mining pipeline
// relies on: effective second-level domain (eSLD) extraction backed by a
// compact public-suffix list, landing-URL path tokenization (directory
// components, page name, and query-string parameter names — the paper's
// §5.1.1 feature), and Jaccard distance between token sets.
package urlx

import (
	"net/url"
	"sort"
	"strings"
)

// publicSuffixes is a compact public-suffix set sufficient for the domains
// that appear in this repository's synthetic web and in the paper's
// examples. Multi-label suffixes are listed explicitly; anything else is
// treated as a single-label TLD.
var publicSuffixes = map[string]bool{
	"co.uk": true, "org.uk": true, "ac.uk": true, "gov.uk": true,
	"com.au": true, "net.au": true, "org.au": true,
	"co.jp": true, "ne.jp": true, "or.jp": true,
	"com.br": true, "com.cn": true, "com.tr": true, "com.mx": true,
	"co.in": true, "co.kr": true, "co.za": true, "com.sg": true,
	// Three-label suffixes, to exercise the longest-match walk.
	"co.im": true, "ltd.co.im": true, "plc.co.im": true,
}

// maxSuffixLabels is the label count of the longest entry in
// publicSuffixes; ESLD never probes deeper than this.
const maxSuffixLabels = 3

// ESLD returns the effective second-level domain of host: the registrable
// domain one label below the public suffix. IP addresses and single-label
// hosts are returned unchanged. Hostnames are lowercased and any trailing
// dot is removed.
func ESLD(host string) string {
	host = strings.ToLower(strings.TrimSuffix(host, "."))
	if host == "" {
		return ""
	}
	// IPv6 literal or IPv4: return as-is.
	if strings.Contains(host, ":") || isIPv4(host) {
		return host
	}
	labels := strings.Split(host, ".")
	if len(labels) <= 1 {
		return host
	}
	// Longest listed suffix wins: probe from maxSuffixLabels labels down
	// to 2, so "x.plc.co.im" resolves against "plc.co.im" rather than
	// stopping at "co.im". (The old code only ever consulted the last
	// two labels, so every ≥3-label suffix in the table was dead weight
	// and hosts under them collapsed to the wrong registrable domain.)
	// A host that *is* a suffix (k == len(labels)) has no registrable
	// domain; it falls through to the last-2 join, unchanged behavior.
	for k := maxSuffixLabels; k >= 2; k-- {
		if len(labels) <= k {
			continue
		}
		if publicSuffixes[strings.Join(labels[len(labels)-k:], ".")] {
			return strings.Join(labels[len(labels)-k-1:], ".")
		}
	}
	return strings.Join(labels[len(labels)-2:], ".")
}

func isIPv4(host string) bool {
	parts := strings.Split(host, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if p == "" || len(p) > 3 {
			return false
		}
		for _, c := range p {
			if c < '0' || c > '9' {
				return false
			}
		}
	}
	return true
}

// HostOf extracts the hostname of a raw URL, or "" if it cannot be parsed.
func HostOf(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	return u.Hostname()
}

// ESLDOf returns the eSLD of a raw URL's host, or "" if unparseable.
func ESLDOf(raw string) string { return ESLD(HostOf(raw)) }

// PathTokens tokenizes a landing-page URL the way the paper's URL-path
// distance requires (§5.1.1): the domain name and query-string *values*
// are excluded, while directory components, the page name, and query
// parameter *names* are retained. Tokens are lowercased and deduplicated;
// the returned slice is sorted for deterministic comparison.
func PathTokens(raw string) []string {
	u, err := url.Parse(raw)
	if err != nil {
		return nil
	}
	set := make(map[string]bool)
	for _, seg := range strings.Split(u.EscapedPath(), "/") {
		for _, tok := range splitSegment(seg) {
			set[tok] = true
		}
	}
	if u.RawQuery != "" {
		// Parse only parameter names; values are deliberately dropped.
		for _, pair := range strings.Split(u.RawQuery, "&") {
			name := pair
			if i := strings.IndexByte(pair, '='); i >= 0 {
				name = pair[:i]
			}
			if name = strings.ToLower(strings.TrimSpace(name)); name != "" {
				set["?"+name] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for tok := range set {
		out = append(out, tok)
	}
	sort.Strings(out)
	return out
}

// splitSegment splits one path segment on non-alphanumeric separators so
// that "landing-page_v2.html" tokenizes to {landing, page, v2, html}.
func splitSegment(seg string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, strings.ToLower(b.String()))
			b.Reset()
		}
	}
	for _, c := range seg {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteRune(c)
		default:
			flush()
		}
	}
	flush()
	return out
}

// Jaccard returns the Jaccard distance (1 − |A∩B| / |A∪B|) between two
// token sets. Two empty sets are at distance 0; an empty set versus a
// non-empty one is at distance 1.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	set := make(map[string]bool, len(a))
	for _, t := range a {
		set[t] = true
	}
	inter := 0
	seen := make(map[string]bool, len(b))
	for _, t := range b {
		if seen[t] {
			continue
		}
		seen[t] = true
		if set[t] {
			inter++
		}
	}
	union := len(set) + len(seen) - inter
	return 1 - float64(inter)/float64(union)
}

// JaccardSorted is Jaccard over two sorted, deduplicated token slices
// (PathTokens output), computed by a linear merge with no allocations.
// It returns exactly the same value as Jaccard on such inputs; the
// clustering hot path calls it n²/2 times.
func JaccardSorted(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	inter, union := 0, 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		union++
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union += len(a) - i + len(b) - j
	return 1 - float64(inter)/float64(union)
}

// PathDistance is Jaccard distance over PathTokens of two raw URLs.
func PathDistance(rawA, rawB string) float64 {
	return Jaccard(PathTokens(rawA), PathTokens(rawB))
}

// SameOrigin reports whether two raw URLs share scheme and host
// (ignoring port), the approximation of origin the ad/non-ad heuristic
// uses when deciding whether a notification leads back to its source.
func SameOrigin(rawA, rawB string) bool {
	a, errA := url.Parse(rawA)
	b, errB := url.Parse(rawB)
	if errA != nil || errB != nil {
		return false
	}
	return a.Scheme == b.Scheme && a.Hostname() == b.Hostname()
}

// SameESLD reports whether two raw URLs share an effective second-level
// domain.
func SameESLD(rawA, rawB string) bool {
	a, b := ESLDOf(rawA), ESLDOf(rawB)
	return a != "" && a == b
}
