package urlx

import "testing"

// FuzzURLHelpers checks the URL toolkit never panics on arbitrary input
// and keeps its invariants.
func FuzzURLHelpers(f *testing.F) {
	f.Add("https://a.b.example.co.uk/x/y.html?q=1&r=2")
	f.Add("not a url")
	f.Add("://")
	f.Add("https://192.168.0.1/x")
	f.Fuzz(func(t *testing.T, raw string) {
		_ = ESLD(raw)
		_ = HostOf(raw)
		_ = ESLDOf(raw)
		toks := PathTokens(raw)
		if d := Jaccard(toks, toks); len(toks) > 0 && d != 0 {
			t.Fatalf("J(x,x) = %v", d)
		}
		_ = SameOrigin(raw, raw)
		_ = SameESLD(raw, raw)
	})
}
