package urlx

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestESLD(t *testing.T) {
	cases := []struct{ host, want string }{
		{"www.example.com", "example.com"},
		{"example.com", "example.com"},
		{"a.b.c.example.com", "example.com"},
		{"news.bbc.co.uk", "bbc.co.uk"},
		{"bbc.co.uk", "bbc.co.uk"},
		{"localhost", "localhost"},
		{"EXAMPLE.COM.", "example.com"},
		{"192.168.1.10", "192.168.1.10"},
		{"shop.com.au", "shop.com.au"},
		{"www.shop.com.au", "shop.com.au"},
		{"", ""},
		{"aurolog.ru", "aurolog.ru"},
		{"cdn.aurolog.ru", "aurolog.ru"},
	}
	for _, c := range cases {
		if got := ESLD(c.host); got != c.want {
			t.Errorf("ESLD(%q) = %q, want %q", c.host, got, c.want)
		}
	}
}

// TestESLDLongestMatch is the regression test for the suffix-table
// walk: the old code consulted only 2-label suffixes, so any 3-label
// public suffix in the table was dead weight and hosts under it
// collapsed to the wrong registrable domain ("shop.plc.co.im" →
// "plc.co.im", merging every registrant under that suffix into one
// eSLD — which in the mining pipeline conflates unrelated senders).
func TestESLDLongestMatch(t *testing.T) {
	cases := []struct{ host, want string }{
		// Longest match must win over the 2-label "co.im".
		{"shop.plc.co.im", "shop.plc.co.im"},
		{"www.shop.plc.co.im", "shop.plc.co.im"},
		{"a.b.shop.ltd.co.im", "shop.ltd.co.im"},
		// Plain 2-label suffix behaviour unchanged.
		{"foo.co.im", "foo.co.im"},
		{"www.foo.co.im", "foo.co.im"},
		// A host that IS a public suffix has no registrable domain;
		// the last-2 join fallback is the documented behaviour.
		{"co.im", "co.im"},
		{"ltd.co.im", "ltd.co.im"},
		{"co.uk", "co.uk"},
		// Unlisted 3-label tails never over-match.
		{"a.b.example.com", "example.com"},
	}
	for _, c := range cases {
		if got := ESLD(c.host); got != c.want {
			t.Errorf("ESLD(%q) = %q, want %q", c.host, got, c.want)
		}
	}
	// The table invariant the walk depends on.
	for s := range publicSuffixes {
		if n := len(strings.Split(s, ".")); n > maxSuffixLabels {
			t.Errorf("suffix %q has %d labels, above maxSuffixLabels=%d — deepen the constant", s, n, maxSuffixLabels)
		}
	}
}

func TestHostAndESLDOf(t *testing.T) {
	if got := HostOf("https://www.example.com:8443/a/b?x=1"); got != "www.example.com" {
		t.Errorf("HostOf = %q", got)
	}
	if got := ESLDOf("https://push.ads.example.com/p"); got != "example.com" {
		t.Errorf("ESLDOf = %q", got)
	}
	if got := HostOf("://bad"); got != "" {
		t.Errorf("HostOf(bad) = %q, want empty", got)
	}
}

func TestPathTokens(t *testing.T) {
	got := PathTokens("https://ads.example.com/click/landing-page_v2.html?cid=42&src=push")
	want := []string{"?cid", "?src", "click", "html", "landing", "page", "v2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PathTokens = %v, want %v", got, want)
	}
}

func TestPathTokensExcludesDomainAndValues(t *testing.T) {
	toks := PathTokens("https://evil.example.com/offer?user=SECRETVALUE")
	for _, tok := range toks {
		if tok == "evil" || tok == "example" || tok == "com" {
			t.Errorf("domain token %q leaked into path tokens", tok)
		}
		if tok == "secretvalue" {
			t.Errorf("query value leaked into path tokens")
		}
	}
}

func TestPathTokensEmptyAndRoot(t *testing.T) {
	if toks := PathTokens("https://example.com/"); len(toks) != 0 {
		t.Errorf("root path tokens = %v, want none", toks)
	}
	if toks := PathTokens("://bad"); toks != nil {
		t.Errorf("bad URL tokens = %v, want nil", toks)
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{nil, nil, 0},
		{[]string{"a"}, nil, 1},
		{[]string{"a", "b"}, []string{"a", "b"}, 0},
		{[]string{"a", "b"}, []string{"b", "c"}, 1 - 1.0/3.0},
		{[]string{"a"}, []string{"b"}, 1},
		{[]string{"a", "a", "b"}, []string{"a", "b", "b"}, 0}, // duplicates ignored
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); !almost(got, c.want) {
			t.Errorf("Jaccard(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func almost(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

func TestJaccardProperties(t *testing.T) {
	gen := func(r *rand.Rand) []string {
		n := r.Intn(8)
		out := make([]string, n)
		for i := range out {
			out[i] = string(rune('a' + r.Intn(6)))
		}
		return out
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b := gen(r), gen(r)
		dab, dba := Jaccard(a, b), Jaccard(b, a)
		if !almost(dab, dba) {
			t.Fatalf("not symmetric: J(%v,%v)=%v J(%v,%v)=%v", a, b, dab, b, a, dba)
		}
		if dab < 0 || dab > 1 {
			t.Fatalf("out of range: J(%v,%v)=%v", a, b, dab)
		}
		if !almost(Jaccard(a, a), 0) {
			t.Fatalf("J(a,a) != 0 for %v", a)
		}
	}
}

func TestJaccardTriangleInequality(t *testing.T) {
	// Jaccard distance is a true metric; spot-check the triangle
	// inequality with random token sets.
	f := func(xa, xb, xc uint8) bool {
		mk := func(x uint8) []string {
			var s []string
			for i := 0; i < 8; i++ {
				if x&(1<<i) != 0 {
					s = append(s, string(rune('a'+i)))
				}
			}
			return s
		}
		a, b, c := mk(xa), mk(xb), mk(xc)
		return Jaccard(a, c) <= Jaccard(a, b)+Jaccard(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPathDistance(t *testing.T) {
	same := PathDistance(
		"https://a.com/lp/win-prize.html?cid=1",
		"https://b.net/lp/win-prize.html?cid=9",
	)
	if !almost(same, 0) {
		t.Errorf("identical paths on different domains: distance %v, want 0", same)
	}
	diff := PathDistance("https://a.com/news/today", "https://a.com/lp/win-prize.html?cid=1")
	if diff <= same {
		t.Errorf("unrelated paths should be farther: %v <= %v", diff, same)
	}
}

func TestSameOrigin(t *testing.T) {
	if !SameOrigin("https://a.com/x", "https://a.com/y?z=1") {
		t.Error("same host+scheme should be same origin")
	}
	if SameOrigin("https://a.com/x", "http://a.com/x") {
		t.Error("different scheme is a different origin")
	}
	if SameOrigin("https://a.com/x", "https://b.com/x") {
		t.Error("different host is a different origin")
	}
	if SameOrigin("://bad", "https://a.com") {
		t.Error("unparseable URL must not match")
	}
}

func TestSameESLD(t *testing.T) {
	if !SameESLD("https://www.a.com/x", "https://push.a.com/y") {
		t.Error("subdomains of one eSLD should match")
	}
	if SameESLD("https://a.com/x", "https://b.com/x") {
		t.Error("different eSLDs must not match")
	}
	if SameESLD("://bad", "://worse") {
		t.Error("unparseable URLs must not match")
	}
}

func TestJaccardSortedMatchesJaccard(t *testing.T) {
	cases := [][2][]string{
		{{}, {}},
		{{"a"}, {}},
		{{}, {"a"}},
		{{"a", "b", "c"}, {"a", "b", "c"}},
		{{"a", "b", "c"}, {"b", "d"}},
		{{"a", "z"}, {"b", "c", "d"}},
		{{"?id", "buy", "now"}, {"?id", "landing", "now"}},
	}
	for _, c := range cases {
		want := Jaccard(c[0], c[1])
		got := JaccardSorted(c[0], c[1])
		if got != want {
			t.Errorf("JaccardSorted(%v, %v) = %v, want %v", c[0], c[1], got, want)
		}
	}
	// PathTokens output is sorted+deduplicated; the two must agree on it.
	urls := []string{
		"https://a.example/landing/page?id=1&src=x",
		"https://b.example/other/page?src=y",
		"https://c.example/",
		"https://d.example/promo/win-big/now?claim=1",
	}
	for _, u := range urls {
		for _, v := range urls {
			a, b := PathTokens(u), PathTokens(v)
			if got, want := JaccardSorted(a, b), Jaccard(a, b); got != want {
				t.Errorf("PathTokens mismatch for %q vs %q: %v != %v", u, v, got, want)
			}
		}
	}
}
