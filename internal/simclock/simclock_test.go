package simclock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)

func TestSimulatedNow(t *testing.T) {
	c := NewSimulated(epoch)
	if !c.Now().Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", c.Now(), epoch)
	}
	c.Advance(time.Minute)
	if got, want := c.Now(), epoch.Add(time.Minute); !got.Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", got, want)
	}
}

func TestAfterFiresInOrder(t *testing.T) {
	c := NewSimulated(epoch)
	ch2 := c.After(2 * time.Minute)
	ch1 := c.After(1 * time.Minute)
	ch3 := c.After(3 * time.Minute)

	if n := c.Advance(90 * time.Second); n != 1 {
		t.Fatalf("Advance fired %d timers, want 1", n)
	}
	select {
	case at := <-ch1:
		if want := epoch.Add(time.Minute); !at.Equal(want) {
			t.Errorf("timer1 fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("timer1 did not fire")
	}
	select {
	case <-ch2:
		t.Fatal("timer2 fired early")
	default:
	}

	if n := c.Advance(10 * time.Minute); n != 2 {
		t.Fatalf("Advance fired %d timers, want 2", n)
	}
	<-ch2
	<-ch3
}

func TestAfterZeroFiresImmediately(t *testing.T) {
	c := NewSimulated(epoch)
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
	select {
	case <-c.After(-time.Second):
	default:
		t.Fatal("After(negative) did not fire immediately")
	}
}

func TestAdvanceToNext(t *testing.T) {
	c := NewSimulated(epoch)
	if c.AdvanceToNext() {
		t.Fatal("AdvanceToNext on empty clock returned true")
	}
	ch := c.After(5 * time.Minute)
	if !c.AdvanceToNext() {
		t.Fatal("AdvanceToNext with a pending timer returned false")
	}
	select {
	case <-ch:
	default:
		t.Fatal("timer did not fire")
	}
	if got, want := c.Now(), epoch.Add(5*time.Minute); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestSleepBlocksUntilAdvance(t *testing.T) {
	c := NewSimulated(epoch)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Sleep(time.Hour)
		close(done)
	}()
	// Wait until the sleeper registers its timer.
	for len(c.PendingTimers()) == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("Sleep returned before Advance")
	default:
	}
	c.Advance(time.Hour)
	wg.Wait()
}

func TestPendingTimersSorted(t *testing.T) {
	c := NewSimulated(epoch)
	c.After(3 * time.Minute)
	c.After(1 * time.Minute)
	c.After(2 * time.Minute)
	ts := c.PendingTimers()
	if len(ts) != 3 {
		t.Fatalf("PendingTimers len = %d, want 3", len(ts))
	}
	for i := 1; i < len(ts); i++ {
		if ts[i].Before(ts[i-1]) {
			t.Fatalf("PendingTimers not sorted: %v", ts)
		}
	}
}

func TestEqualDeadlinesFIFO(t *testing.T) {
	c := NewSimulated(epoch)
	first := c.After(time.Minute)
	second := c.After(time.Minute)
	c.Advance(time.Minute)
	// Both fired; just verify both channels deliver.
	<-first
	<-second
}

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatalf("Real.Now() = %v too far in past", now)
	}
	start := time.Now()
	c.Sleep(time.Millisecond)
	if time.Since(start) < time.Millisecond {
		t.Fatal("Real.Sleep returned too early")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("Real.After never fired")
	}
}

func TestConcurrentAfter(t *testing.T) {
	c := NewSimulated(epoch)
	const n = 100
	var wg sync.WaitGroup
	chs := make([]<-chan time.Time, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			chs[i] = c.After(time.Duration(i+1) * time.Second)
		}(i)
	}
	wg.Wait()
	if fired := c.Advance(time.Duration(n) * time.Second); fired != n {
		t.Fatalf("fired %d timers, want %d", fired, n)
	}
	for i, ch := range chs {
		select {
		case <-ch:
		default:
			t.Fatalf("timer %d did not fire", i)
		}
	}
}
