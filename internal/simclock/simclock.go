// Package simclock provides a virtual clock for deterministic simulation.
//
// The crawler in this repository reproduces timing behaviour from the paper
// (a 5-minute wait for permission prompts, a 15-minute window for the first
// notification, periodic container resumes over a two-month collection
// window). Running that in real time is impossible in tests, so all
// time-dependent components accept a Clock. A Simulated clock advances only
// when told to, firing timers in order; a Real clock delegates to package
// time for production-style use.
package simclock

import (
	"container/heap"
	"sort"
	"sync"
	"time"
)

// Clock abstracts time for simulation. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// After returns a channel that receives the then-current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the system clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Simulated is a virtual Clock. Time never advances on its own; call
// Advance (or Run) to move it forward. Timers created with After fire, in
// timestamp order, as the clock passes their deadlines. The zero value is
// not ready to use; call NewSimulated.
type Simulated struct {
	mu      sync.Mutex
	now     time.Time
	timers  timerHeap
	waiters int
	seq     int64
}

// NewSimulated returns a Simulated clock starting at the given instant.
func NewSimulated(start time.Time) *Simulated {
	return &Simulated{now: start}
}

type simTimer struct {
	at  time.Time
	seq int64 // tiebreaker: FIFO for equal deadlines
	ch  chan time.Time
}

type timerHeap []*simTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*simTimer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Now implements Clock.
func (s *Simulated) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// After implements Clock. The returned channel has capacity 1, so the
// timer fires even if nobody is receiving at that moment.
func (s *Simulated) After(d time.Duration) <-chan time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- s.now
		return ch
	}
	s.seq++
	heap.Push(&s.timers, &simTimer{at: s.now.Add(d), seq: s.seq, ch: ch})
	return ch
}

// Sleep blocks until the clock has been advanced past d. It must not be
// called from the same goroutine that calls Advance, or both will block.
func (s *Simulated) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.waiters++
	s.mu.Unlock()
	<-s.After(d)
	s.mu.Lock()
	s.waiters--
	s.mu.Unlock()
}

// Sleepers reports how many goroutines are currently blocked in Sleep.
// Test drivers use it to know when the simulation has quiesced.
func (s *Simulated) Sleepers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiters
}

// Advance moves the clock forward by d, firing every timer whose deadline
// is reached, in order. It returns the number of timers fired.
func (s *Simulated) Advance(d time.Duration) int {
	s.mu.Lock()
	target := s.now.Add(d)
	fired := 0
	for len(s.timers) > 0 && !s.timers[0].at.After(target) {
		t := heap.Pop(&s.timers).(*simTimer)
		s.now = t.at
		t.ch <- s.now
		fired++
	}
	s.now = target
	s.mu.Unlock()
	return fired
}

// AdvanceToNext advances the clock to the next pending timer's deadline and
// fires it (and any timers sharing that deadline). It reports whether a
// timer was pending.
func (s *Simulated) AdvanceToNext() bool {
	s.mu.Lock()
	if len(s.timers) == 0 {
		s.mu.Unlock()
		return false
	}
	at := s.timers[0].at
	s.mu.Unlock()
	s.Advance(at.Sub(s.Now()))
	return true
}

// PendingTimers returns the deadlines of all outstanding timers, sorted.
func (s *Simulated) PendingTimers() []time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]time.Time, len(s.timers))
	for i, t := range s.timers {
		out[i] = t.at
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}
