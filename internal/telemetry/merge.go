package telemetry

import "math"

// Snapshot merging — the fleet observability plane's core operation.
// Each shard worker owns a private Registry; the coordinator pulls
// per-shard Snapshots over the fleet transport and folds them into one
// fleet-wide view. The fold is exact, not approximate:
//
//   - counters sum;
//   - gauges cannot sum meaningfully (they are instantaneous values),
//     so each shard gauge becomes one labeled sample in a counter
//     family of the same name, keyed by the shard label;
//   - histograms share the package's fixed bucket layouts, so their
//     per-bucket counts, totals, and sums merge exactly (a histogram
//     whose bounds disagree is kept under "<name>/<label>" instead of
//     silently mixing incompatible layouts);
//   - families sum per label value.
//
// Merge (snapshot + snapshot) and Registry.Absorb (snapshot into a live
// registry) implement the same semantics, so
//
//	reg.Absorb(label, snap); reg.Snapshot()
//
// equals
//
//	s := reg.Snapshot(); s.Merge(label, snap)
//
// — the fleet parity matrix pins that equality across kill schedules.

// Merge folds another snapshot into s under the given shard label.
// s's maps are created on demand; o is not modified.
func (s *Snapshot) Merge(label string, o Snapshot) {
	if s == nil {
		return
	}
	for k, v := range o.Counters {
		if s.Counters == nil {
			s.Counters = make(map[string]int64, len(o.Counters))
		}
		s.Counters[k] += v
	}
	for k, v := range o.Gauges {
		if s.Families == nil {
			s.Families = make(map[string]map[string]int64)
		}
		fam := s.Families[k]
		if fam == nil {
			fam = make(map[string]int64, 1)
			s.Families[k] = fam
		}
		fam[label] += v
	}
	for k, hs := range o.Histograms {
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistogramSnapshot, len(o.Histograms))
		}
		cur, ok := s.Histograms[k]
		if !ok {
			s.Histograms[k] = cloneHistogramSnapshot(hs)
			continue
		}
		if !sameBounds(cur.Bounds, hs.Bounds) {
			s.Histograms[k+"/"+label] = cloneHistogramSnapshot(hs)
			continue
		}
		for i := range hs.Counts {
			cur.Counts[i] += hs.Counts[i]
		}
		cur.Count += hs.Count
		cur.Sum += hs.Sum
		s.Histograms[k] = cur
	}
	for k, counts := range o.Families {
		if s.Families == nil {
			s.Families = make(map[string]map[string]int64, len(o.Families))
		}
		fam := s.Families[k]
		if fam == nil {
			fam = make(map[string]int64, len(counts))
			s.Families[k] = fam
		}
		for lv, v := range counts {
			fam[lv] += v
		}
	}
}

// Clone deep-copies a snapshot, so a merged view can be built without
// aliasing the source maps.
func (s Snapshot) Clone() Snapshot {
	var out Snapshot
	if s.Counters != nil {
		out.Counters = make(map[string]int64, len(s.Counters))
		for k, v := range s.Counters {
			out.Counters[k] = v
		}
	}
	if s.Gauges != nil {
		out.Gauges = make(map[string]int64, len(s.Gauges))
		for k, v := range s.Gauges {
			out.Gauges[k] = v
		}
	}
	if s.Histograms != nil {
		out.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for k, hs := range s.Histograms {
			out.Histograms[k] = cloneHistogramSnapshot(hs)
		}
	}
	if s.Families != nil {
		out.Families = make(map[string]map[string]int64, len(s.Families))
		for k, counts := range s.Families {
			fam := make(map[string]int64, len(counts))
			for lv, v := range counts {
				fam[lv] = v
			}
			out.Families[k] = fam
		}
	}
	return out
}

func cloneHistogramSnapshot(hs HistogramSnapshot) HistogramSnapshot {
	out := hs
	out.Bounds = append([]float64(nil), hs.Bounds...)
	out.Counts = append([]int64(nil), hs.Counts...)
	return out
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Absorb folds a snapshot into the live registry with Merge's exact
// semantics: counters add, gauges become labeled samples in a counter
// family of the gauge's name, histograms bucket-merge (bounds must
// match; mismatches are kept under "<name>/<label>"), families add per
// label. No-op on a nil registry (nil = disabled = zero cost).
func (r *Registry) Absorb(label string, s Snapshot) {
	if r == nil {
		return
	}
	for k, v := range s.Counters {
		r.Counter(k).Add(v)
	}
	for k, v := range s.Gauges {
		r.Family(k, "shard").Add(label, v)
	}
	for k, hs := range s.Histograms {
		h := r.Histogram(k, hs.Bounds)
		if !sameBounds(h.bounds, hs.Bounds) {
			h = r.Histogram(k+"/"+label, hs.Bounds)
		}
		h.merge(hs)
	}
	for k, counts := range s.Families {
		fam := r.Family(k, "key")
		for lv, v := range counts {
			fam.Add(lv, v)
		}
	}
}

// merge adds a snapshot's buckets into the live histogram. The caller
// guarantees matching bounds.
func (h *Histogram) merge(hs HistogramSnapshot) {
	if h == nil {
		return
	}
	for i := range hs.Counts {
		if i < len(h.counts) {
			h.counts[i].Add(hs.Counts[i])
		}
	}
	h.count.Add(hs.Count)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+hs.Sum)) {
			return
		}
	}
}
