// Package telemetry is the measurement system's own measurement system:
// a lock-cheap metrics registry (atomic counters, gauges, fixed-bucket
// histograms, and labeled counter families), span-style tracing for WPN
// attack chains and mining stages, and runtime profiling hooks (expvar
// publication plus an optional pprof debug listener).
//
// The paper's headline numbers — WPN volumes per ad network, click-chain
// lengths, cluster counts, fraction malicious — are computed by the
// crawler and the mining pipeline; this package makes them *watchable*
// while they are computed, and auditable afterwards: snapshots are
// deterministic JSON, and traces are JSONL replayable through
// internal/audit's chain reconstruction.
//
// Everything is nil-safe: a nil *Registry hands out nil instruments, and
// every method on a nil instrument is a no-op. Instrumented code can
// therefore thread telemetry unconditionally; the disabled path costs
// one nil check, no allocations, no locks.
package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil Counter ignores all operations.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable instantaneous value. A nil Gauge
// ignores all operations.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the gauge value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Fixed bucket layouts for the quantities this system distributes over.
// Bounds are inclusive upper edges; observations above the last bound
// land in the implicit +Inf bucket.
var (
	// LatencyBuckets covers request/pump latencies, in seconds.
	LatencyBuckets = []float64{
		0.000_1, 0.000_25, 0.000_5, 0.001, 0.002_5, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
	}
	// HopBuckets covers redirect-chain lengths (the paper's click
	// chains run up to ~10 hops before the landing page).
	HopBuckets = []float64{1, 2, 3, 4, 5, 6, 8, 10, 15}
	// SizeBuckets covers cluster sizes (most clusters are small; ad
	// campaigns reach hundreds of members).
	SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	// NanosBuckets covers per-unit-of-work wall times in nanoseconds
	// (mining_block_ns: sub-µs singleton blocks through multi-second
	// giant blocks), decade-spaced.
	NanosBuckets = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}
)

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// A nil Histogram ignores all operations.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given ascending bucket
// bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// HistogramSnapshot is a histogram's JSON form: parallel bound/count
// slices plus the +Inf overflow count.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // per bound, then +Inf appended
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Bounds: h.bounds, Count: h.count.Load(), Sum: math.Float64frombits(h.sum.Load())}
	s.Counts = make([]int64, len(h.counts))
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Family is a named set of counters keyed by one label's values — the
// registry's labeled-counter form (request counts by vhost, faults by
// kind, breaker transitions by edge). It can live standalone (vnet and
// chaos own theirs) and be adopted into a Registry for snapshotting.
// A nil Family hands out nil counters and empty snapshots.
type Family struct {
	name, label string

	mu sync.RWMutex
	m  map[string]*Counter
}

// NewFamily creates a standalone counter family.
func NewFamily(name, label string) *Family {
	return &Family{name: name, label: label, m: make(map[string]*Counter)}
}

// Name returns the family's registered name ("" for nil).
func (f *Family) Name() string {
	if f == nil {
		return ""
	}
	return f.name
}

// With returns the counter for one label value, creating it on first
// use. Returns nil on a nil family.
func (f *Family) With(value string) *Counter {
	if f == nil {
		return nil
	}
	f.mu.RLock()
	c := f.m[value]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.m[value]; c == nil {
		c = &Counter{}
		f.m[value] = c
	}
	return c
}

// Add increments the counter for one label value — With + Add in one
// call for sites that do not cache the counter.
func (f *Family) Add(value string, n int64) { f.With(value).Add(n) }

// Counts returns a race-safe snapshot of the family as a plain map.
func (f *Family) Counts() map[string]int64 {
	if f == nil {
		return map[string]int64{}
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[string]int64, len(f.m))
	for k, c := range f.m {
		out[k] = c.Value()
	}
	return out
}

// Registry is the process-wide metrics registry: named instruments,
// created on first use, snapshotted as deterministic JSON. All methods
// are safe for concurrent use, and all are no-ops on a nil Registry
// (which hands out nil instruments).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	families map[string]*Family
}

// New creates an empty Registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		families: make(map[string]*Family),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls reuse the existing layout).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Family returns the named counter family, creating it on first use.
func (r *Registry) Family(name, label string) *Family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = NewFamily(name, label)
		r.families[name] = f
	}
	return f
}

// Adopt registers an externally owned family (vnet's request counts,
// chaos's fault counts) so it appears in snapshots. Adopting under an
// already-used name replaces the previous family. No-op when either
// side is nil.
func (r *Registry) Adopt(f *Family) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.families[f.name] = f
}

// Snapshot is the registry's deterministic JSON form: map keys are
// sorted by encoding/json, so two snapshots of identical metric state
// marshal to identical bytes.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Families   map[string]map[string]int64  `json:"families,omitempty"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for k, c := range r.counters {
			s.Counters[k] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for k, g := range r.gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for k, h := range r.hists {
			s.Histograms[k] = h.snapshot()
		}
	}
	if len(r.families) > 0 {
		s.Families = make(map[string]map[string]int64, len(r.families))
		for k, f := range r.families {
			s.Families[k] = f.Counts()
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented, key-sorted JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: marshal snapshot: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteSnapshotFile writes the snapshot JSON to a file atomically, with
// the same temp-file + fsync + rename discipline as the crawler's
// checkpoint writer: a crash mid-write can never leave a truncated or
// half-serialized metrics file at path, only a stale previous one.
func (r *Registry) WriteSnapshotFile(path string) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: marshal snapshot: %w", err)
	}
	b = append(b, '\n')
	return writeFileAtomic(path, b)
}

// writeFileAtomic writes data to path via a same-directory temp file,
// fsync, and rename, so readers observe either the old contents or the
// complete new contents — never a torn write.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("telemetry: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("telemetry: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("telemetry: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("telemetry: rename %s: %w", tmp, err)
	}
	return nil
}

// published guards expvar.Publish, which panics on duplicate names
// (tests publish repeatedly).
var published sync.Map

// PublishExpvar exposes the registry's live snapshot as an expvar under
// the given name, so /debug/vars serves it alongside the runtime's
// memstats. Republishing a name rebinds it to this registry.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	cur := &atomicRegistry{}
	cur.r.Store(r)
	if prev, loaded := published.LoadOrStore(name, cur); loaded {
		prev.(*atomicRegistry).r.Store(r)
		return
	}
	expvar.Publish(name, expvar.Func(func() interface{} {
		v, _ := published.Load(name)
		return v.(*atomicRegistry).r.Load().(*Registry).Snapshot()
	}))
}

type atomicRegistry struct{ r atomic.Value }
