package telemetry

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

var t0 = time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC)

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	id := tr.Start("c", "x", 0, nil)
	if id != 0 {
		t.Fatalf("nil tracer Start = %d, want 0", id)
	}
	tr.End(id)
	tr.EndAt(id, t0)
	tr.SetAttr(id, "k", "v")
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatalf("nil tracer must be empty")
	}
	if rec := NewChainRecorder(nil, "c"); rec != nil {
		t.Fatalf("NewChainRecorder(nil) must return nil")
	}
	var rec *ChainRecorder
	rec.Event(t0, "visit", nil) // must not panic
}

func TestTracerSpansAndOrder(t *testing.T) {
	now := t0
	tr := NewTracer(func() time.Time { return now })
	root := tr.Start("c1", "pipeline", 0, nil)
	now = now.Add(time.Second)
	child := tr.Start("c1", "featurize", root, map[string]string{"n": "5"})
	now = now.Add(2 * time.Second)
	tr.End(child)
	tr.End(root)
	tr.SetAttr(root, "stages", "1")

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("len = %d", len(spans))
	}
	if spans[0].ID != 1 || spans[1].ID != 2 || spans[1].Parent != root {
		t.Fatalf("ids/parents wrong: %+v", spans)
	}
	if spans[1].Duration() != 2*time.Second {
		t.Fatalf("child duration = %v", spans[1].Duration())
	}
	if spans[0].Duration() != 3*time.Second {
		t.Fatalf("root duration = %v", spans[0].Duration())
	}
	if spans[0].Attrs["stages"] != "1" || spans[1].Attrs["n"] != "5" {
		t.Fatalf("attrs wrong: %+v", spans)
	}
}

func TestTraceJSONLRoundtrip(t *testing.T) {
	tr := NewTracer(nil)
	a := tr.StartAt("c1", "visit", 0, map[string]string{"url": "http://a/"}, t0)
	tr.Point("c1", "sw_registered", a, map[string]string{"sw": "http://a/sw.js"}, t0.Add(time.Second))
	tr.EndAt(a, t0.Add(2*time.Second))

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Spans()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestReadSpansSkipsBlankAndRejectsGarbage(t *testing.T) {
	got, err := ReadSpans(bytes.NewBufferString("\n{\"id\":1,\"name\":\"x\",\"start\":\"2020-04-01T00:00:00Z\",\"end\":\"2020-04-01T00:00:00Z\"}\n\n"))
	if err != nil || len(got) != 1 || got[0].Name != "x" {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := ReadSpans(bytes.NewBufferString("not json\n")); err == nil {
		t.Fatalf("garbage must error")
	}
}

// TestChainRecorderLinksFullChain drives the recorder through a full
// WPN attack chain and checks the parent links reconstruct it.
func TestChainRecorderLinksFullChain(t *testing.T) {
	tr := NewTracer(nil)
	rec := NewChainRecorder(tr, "box-1")
	at := t0
	step := func(kind string, fields map[string]string) {
		at = at.Add(time.Second)
		rec.Event(at, kind, fields)
	}

	step("visit", map[string]string{"url": "http://pub.example/"})
	step("permission_granted", map[string]string{"origin": "http://pub.example"})
	step("sw_registered", map[string]string{"sw": "http://pub.example/sw.js"})
	step("push_received", map[string]string{"sw": "http://pub.example/sw.js"})
	step("notification_shown", map[string]string{"title": "You won"})
	step("notification_clicked", map[string]string{"title": "You won"})
	step("sw_request", map[string]string{"url": "http://track.example/c"})
	step("navigation", map[string]string{"url": "http://hop1.example/"})
	step("redirect", map[string]string{"to": "http://land.example/"})
	step("landing_page", map[string]string{"url": "http://land.example/"})

	spans := tr.Spans()
	if len(spans) != 10 {
		t.Fatalf("want one span per event, got %d", len(spans))
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	// Chain linkage: visit ← sw_registered ← push_received ←
	// notification_shown ← notification_clicked ← {sw_request,
	// navigation, redirect, landing_page}.
	if byName["permission_granted"].Parent != byName["visit"].ID {
		t.Fatalf("permission not parented to visit")
	}
	if byName["sw_registered"].Parent != byName["visit"].ID {
		t.Fatalf("sw_registered not parented to visit")
	}
	if byName["push_received"].Parent != byName["sw_registered"].ID {
		t.Fatalf("push not parented to sw registration")
	}
	if byName["notification_shown"].Parent != byName["push_received"].ID {
		t.Fatalf("shown not parented to push")
	}
	if byName["notification_clicked"].Parent != byName["notification_shown"].ID {
		t.Fatalf("clicked not parented to shown")
	}
	click := byName["notification_clicked"].ID
	for _, kind := range []string{"sw_request", "navigation", "redirect", "landing_page"} {
		if byName[kind].Parent != click {
			t.Fatalf("%s not parented to click (got %d)", kind, byName[kind].Parent)
		}
	}
	// landing_page must close the click + chain spans at the landing time.
	land := byName["landing_page"].Start
	if !byName["notification_clicked"].End.Equal(land) || !byName["push_received"].End.Equal(land) {
		t.Fatalf("click/chain spans not closed at landing")
	}
	// Span order must equal event order.
	for i, sp := range spans {
		if sp.ID != SpanID(i+1) {
			t.Fatalf("span IDs must be emission-ordered")
		}
		if sp.Container != "box-1" {
			t.Fatalf("container lost on %s", sp.Name)
		}
	}
}

// Pre-click SW fetches parent to the push span; navigation outside a
// click parents to the visit; a fresh visit closes the previous one.
func TestChainRecorderFallbackParents(t *testing.T) {
	tr := NewTracer(nil)
	rec := NewChainRecorder(tr, "c")
	rec.Event(t0, "visit", map[string]string{"url": "http://a/"})
	rec.Event(t0.Add(1*time.Second), "navigation", map[string]string{"url": "http://a/"})
	rec.Event(t0.Add(2*time.Second), "push_received", map[string]string{"sw": "unknown"})
	rec.Event(t0.Add(3*time.Second), "sw_request", map[string]string{"url": "http://t/"})
	rec.Event(t0.Add(4*time.Second), "visit", map[string]string{"url": "http://b/"})

	spans := tr.Spans()
	if spans[1].Parent != spans[0].ID {
		t.Fatalf("pre-click navigation must parent to visit")
	}
	if spans[2].Parent != 0 {
		t.Fatalf("push with unknown SW must be a root")
	}
	if spans[3].Parent != spans[2].ID {
		t.Fatalf("pre-click sw_request must parent to push")
	}
	if !spans[0].End.Equal(t0.Add(4 * time.Second)) {
		t.Fatalf("new visit must close the previous visit span")
	}
}
