package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// shardRegistry builds a populated "shard" registry whose snapshot
// exercises every instrument kind.
func shardRegistry(k int) *Registry {
	reg := New()
	reg.Counter("crawler_polls").Add(int64(10 * (k + 1)))
	reg.Counter(fmt.Sprintf("only_shard_%d", k)).Inc()
	reg.Gauge("crawler_pump_workers").Set(int64(k + 2))
	h := reg.Histogram("poll_seconds", LatencyBuckets)
	for i := 0; i <= k; i++ {
		h.Observe(0.01 * float64(i+1))
	}
	reg.Family("http_requests", "host").Add("ads.example", int64(k+1))
	reg.Family("http_requests", "host").Add(fmt.Sprintf("shard%d.example", k), 1)
	return reg
}

// TestMergeAbsorbEquivalence pins the contract the fleet coordinator
// relies on: folding shard snapshots into a live registry (Absorb) and
// folding them into the registry's snapshot (Merge) produce the same
// final snapshot, byte for byte.
func TestMergeAbsorbEquivalence(t *testing.T) {
	build := func() *Registry {
		main := New()
		main.Counter("fleet_worker_kills").Add(3)
		main.Gauge("fleet_shards").Set(4)
		main.Histogram("fleet_heartbeat_seconds", LatencyBuckets).Observe(0.004)
		main.Family("fleet_events", "kind").Add("restart", 2)
		return main
	}
	snaps := []Snapshot{shardRegistry(0).Snapshot(), shardRegistry(1).Snapshot(), shardRegistry(2).Snapshot()}

	absorbed := build()
	merged := build().Snapshot()
	for k, s := range snaps {
		label := fmt.Sprintf("shard-%d", k)
		absorbed.Absorb(label, s)
		merged.Merge(label, s)
	}

	got, err := json.MarshalIndent(absorbed.Snapshot(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("Absorb and Merge disagree:\nabsorb: %s\nmerge:  %s", got, want)
	}

	// Spot-check the fold semantics on the merged view.
	if merged.Counters["crawler_polls"] != 10+20+30 {
		t.Errorf("counters did not sum: crawler_polls = %d", merged.Counters["crawler_polls"])
	}
	fam := merged.Families["crawler_pump_workers"]
	if fam["shard-0"] != 2 || fam["shard-1"] != 3 || fam["shard-2"] != 4 {
		t.Errorf("gauges did not become per-shard family samples: %v", fam)
	}
	hs := merged.Histograms["poll_seconds"]
	if hs.Count != 1+2+3 {
		t.Errorf("histogram counts did not merge: %d", hs.Count)
	}
	if merged.Families["http_requests"]["ads.example"] != 1+2+3 {
		t.Errorf("family labels did not sum: %v", merged.Families["http_requests"])
	}
}

// TestMergeHistogramBoundsMismatch: incompatible bucket layouts must
// never mix; the shard's histogram survives under "<name>/<label>".
func TestMergeHistogramBoundsMismatch(t *testing.T) {
	a := New()
	a.Histogram("latency", LatencyBuckets).Observe(0.5)
	b := New()
	b.Histogram("latency", SizeBuckets).Observe(100)

	s := a.Snapshot()
	s.Merge("shard-1", b.Snapshot())
	if s.Histograms["latency"].Count != 1 {
		t.Errorf("existing histogram was polluted: %+v", s.Histograms["latency"])
	}
	if s.Histograms["latency/shard-1"].Count != 1 {
		t.Errorf("mismatched histogram not preserved under suffixed key: %v", s.Histograms)
	}

	a2 := New()
	a2.Histogram("latency", LatencyBuckets).Observe(0.5)
	a2.Absorb("shard-1", b.Snapshot())
	got := a2.Snapshot()
	if got.Histograms["latency"].Count != 1 || got.Histograms["latency/shard-1"].Count != 1 {
		t.Errorf("Absorb bounds-mismatch handling diverges from Merge: %v", got.Histograms)
	}
}

// TestSnapshotClone: cloned snapshots must not alias the source maps.
func TestSnapshotClone(t *testing.T) {
	reg := shardRegistry(1)
	src := reg.Snapshot()
	dup := src.Clone()
	dup.Counters["crawler_polls"] = 999
	dup.Families["http_requests"]["ads.example"] = 999
	dup.Histograms["poll_seconds"].Counts[0] = 999
	if src.Counters["crawler_polls"] == 999 ||
		src.Families["http_requests"]["ads.example"] == 999 ||
		src.Histograms["poll_seconds"].Counts[0] == 999 {
		t.Error("Clone aliases the source snapshot")
	}
}

// span builder for stitch tests.
func sp(id, parent SpanID, seg int64, name string) Span {
	at := time.Unix(1600000000+int64(id), 0).UTC()
	return Span{ID: id, Parent: parent, Name: name, Start: at, End: at, Seg: seg}
}

// TestStitchSpansInterleaves: spans from two shard streams reassemble
// in coordinator phase order (segment, then shard, then local order),
// renumbered from 1 with parents remapped per stream.
func TestStitchSpansInterleaves(t *testing.T) {
	s0 := []Span{sp(1, 0, 1, "visit-a"), sp(2, 1, 3, "push-a")}
	s1 := []Span{sp(1, 0, 1, "visit-b"), sp(2, 1, 2, "push-b")}
	out := StitchSpans([][]Span{s0, s1})
	names := make([]string, len(out))
	for i, s := range out {
		names[i] = s.Name
		if s.ID != SpanID(i+1) {
			t.Errorf("span %d: ID = %d, want %d", i, s.ID, i+1)
		}
		if s.Seg != 0 {
			t.Errorf("span %q: Seg = %d, want 0 after stitch", s.Name, s.Seg)
		}
	}
	want := []string{"visit-a", "visit-b", "push-b", "push-a"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("stitch order = %v, want %v", names, want)
	}
	// push-a's parent is visit-a (new ID 1); push-b's is visit-b (new 2).
	if out[3].Parent != 1 {
		t.Errorf("push-a parent = %d, want 1", out[3].Parent)
	}
	if out[2].Parent != 2 {
		t.Errorf("push-b parent = %d, want 2", out[2].Parent)
	}
}

// TestStitchSpansMissingParent: a parent that never appears in the
// stream (chain state dropped at adoption) degrades to a root instead
// of pointing at an unrelated span.
func TestStitchSpansMissingParent(t *testing.T) {
	out := StitchSpans([][]Span{{sp(7, 4, 1, "orphan")}})
	if len(out) != 1 || out[0].Parent != 0 {
		t.Fatalf("orphan span parent = %+v, want root", out)
	}
}

// TestStitchSpansSingleStreamIdentity: at shards=1 the stitch is the
// identity — same order, same IDs, same parents — which is the lemma
// behind the fleet trace byte-parity test.
func TestStitchSpansSingleStreamIdentity(t *testing.T) {
	tr := NewTracer(nil)
	tr.SetSegment(1)
	a := tr.Start("c1", "visit", 0, nil)
	tr.SetSegment(2)
	b := tr.Start("c1", "push", a, nil)
	tr.SetSegment(3)
	tr.Start("c1", "click", b, map[string]string{"url": "https://x"})

	in := tr.Spans()
	out := StitchSpans([][]Span{in})
	if len(out) != len(in) {
		t.Fatalf("stitched %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		want := in[i]
		want.Seg = 0
		if !reflect.DeepEqual(out[i], want) {
			t.Errorf("span %d changed under identity stitch:\ngot  %+v\nwant %+v", i, out[i], want)
		}
	}
}

// TestTracerAppendRebases: appended spans slot in after the tracer's
// existing spans with IDs and parent links shifted together.
func TestTracerAppendRebases(t *testing.T) {
	tr := NewTracer(nil)
	tr.Start("pre", "existing", 0, nil)
	tr.Append([]Span{sp(1, 0, 0, "root"), sp(2, 1, 0, "child")})
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[1].ID != 2 || spans[1].Parent != 0 || spans[1].Name != "root" {
		t.Errorf("appended root misplaced: %+v", spans[1])
	}
	if spans[2].ID != 3 || spans[2].Parent != 2 || spans[2].Name != "child" {
		t.Errorf("appended child not re-parented: %+v", spans[2])
	}
}

// TestObservabilityPlaneNilSafety: every fleet-plane entry point must
// be a free no-op when telemetry is disabled.
func TestObservabilityPlaneNilSafety(t *testing.T) {
	var reg *Registry
	var tr *Tracer
	var rec *ChainRecorder
	snap := shardRegistry(0).Snapshot()
	if n := testing.AllocsPerRun(100, func() {
		reg.Absorb("shard-0", snap)
		tr.SetSegment(7)
		tr.Append(nil)
		st := rec.Export()
		rec.Restore(st)
	}); n != 0 {
		t.Errorf("disabled fleet-plane path allocates %v per run, want 0", n)
	}
	if got := rec.Export(); got != nil {
		t.Errorf("nil recorder Export = %+v, want nil", got)
	}
}

// TestChainStateRoundTrip: Export/Restore preserves linkage so a
// restored recorder keeps extending the same chains.
func TestChainStateRoundTrip(t *testing.T) {
	tr := NewTracer(nil)
	rec := NewChainRecorder(tr, "c1")
	at := time.Unix(1600000000, 0).UTC()
	rec.Event(at, "visit", map[string]string{"url": "https://seed"})
	rec.Event(at, "sw_registered", map[string]string{"sw": "https://seed/sw.js"})
	rec.Event(at, "push_received", map[string]string{"sw": "https://seed/sw.js"})
	rec.Event(at, "notification_shown", map[string]string{"title": "You won"})

	st := rec.Export()
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back ChainState
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}

	fresh := NewChainRecorder(tr, "c1")
	fresh.Restore(&back)
	fresh.Event(at.Add(time.Minute), "notification_clicked", map[string]string{"title": "You won"})

	spans := tr.Spans()
	click := spans[len(spans)-1]
	if click.Name != "notification_clicked" || click.Parent == 0 {
		t.Fatalf("restored recorder lost chain linkage: %+v", click)
	}
	if parent := spans[click.Parent-1]; parent.Name != "notification_shown" {
		t.Errorf("click parented under %q, want notification_shown", parent.Name)
	}
}

// TestConcurrentChainRecorders: many containers' recorders share one
// tracer, as in a real crawl's parallel pump. The test must be
// race-clean under -race, and after sorting by ID each container's
// span subsequence must equal its serial event order with intact
// parent links.
func TestConcurrentChainRecorders(t *testing.T) {
	tr := NewTracer(nil)
	const containers = 8
	const rounds = 20
	base := time.Unix(1600000000, 0).UTC()

	var wg sync.WaitGroup
	for c := 0; c < containers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rec := NewChainRecorder(tr, fmt.Sprintf("c%d", c))
			at := base
			rec.Event(at, "visit", map[string]string{"url": fmt.Sprintf("https://seed%d", c)})
			rec.Event(at, "sw_registered", map[string]string{"sw": "https://s/sw.js"})
			for i := 0; i < rounds; i++ {
				at = at.Add(time.Minute)
				title := fmt.Sprintf("n%d", i)
				rec.Event(at, "push_received", map[string]string{"sw": "https://s/sw.js"})
				rec.Event(at, "notification_shown", map[string]string{"title": title})
				rec.Event(at, "notification_clicked", map[string]string{"title": title})
				rec.Event(at, "landing_page", map[string]string{"url": "https://land"})
			}
		}(c)
	}
	wg.Wait()

	spans := tr.Spans()
	if want := containers * (2 + 4*rounds); len(spans) != want {
		t.Fatalf("got %d spans, want %d", len(spans), want)
	}
	// Spans() returns ID order already; verify per-container sequences.
	byContainer := make(map[string][]Span)
	for _, s := range spans {
		byContainer[s.Container] = append(byContainer[s.Container], s)
	}
	for c, seq := range byContainer {
		if seq[0].Name != "visit" || seq[1].Name != "sw_registered" {
			t.Fatalf("%s: sequence starts %q,%q", c, seq[0].Name, seq[1].Name)
		}
		for i := 2; i < len(seq); i += 4 {
			names := []string{seq[i].Name, seq[i+1].Name, seq[i+2].Name, seq[i+3].Name}
			if !reflect.DeepEqual(names, []string{"push_received", "notification_shown", "notification_clicked", "landing_page"}) {
				t.Fatalf("%s: round at %d is %v", c, i, names)
			}
			// shown → push, clicked → shown, landing → clicked: parents
			// stay within the container even under interleaving.
			if seq[i+1].Parent != seq[i].ID || seq[i+2].Parent != seq[i+1].ID || seq[i+3].Parent != seq[i+2].ID {
				t.Fatalf("%s: chain links broken at %d: %+v", c, i, seq[i:i+4])
			}
		}
	}
}

// TestWriteSnapshotFileAtomic: the snapshot write must go through a
// temp file + rename — no partially written snapshot is ever visible
// and no temp file is left behind.
func TestWriteSnapshotFileAtomic(t *testing.T) {
	dir := t.TempDir()
	reg := shardRegistry(0)
	path := filepath.Join(dir, "metrics.json")
	if err := reg.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "metrics.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory after write = %v, want exactly [metrics.json]", names)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot file is not valid JSON: %v", err)
	}
	if snap.Counters["crawler_polls"] != 10 {
		t.Errorf("snapshot content wrong: %+v", snap.Counters)
	}
	// Write to a path whose temp file cannot be created: the error must
	// surface instead of silently truncating an existing file.
	if err := reg.WriteSnapshotFile(filepath.Join(dir, "missing", "metrics.json")); err == nil {
		t.Error("write into a missing directory succeeded; want error")
	}
}
