package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the optional runtime-profiling endpoint behind the
// -debug-addr flag: net/http/pprof, /debug/vars (expvar), and /metrics
// (the registry snapshot) on a loopback listener.
type DebugServer struct {
	addr string
	ln   net.Listener
	srv  *http.Server
}

// ServeDebug starts the debug HTTP server on addr (e.g.
// "127.0.0.1:6060"; ":0" picks a free port). The registry may be nil,
// in which case /metrics serves an empty snapshot. The server runs
// until Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug listen %s: %w", addr, err)
	}
	ds := &DebugServer{
		addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go ds.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ds, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.addr
}

// Close shuts the server down. Nil-safe.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
