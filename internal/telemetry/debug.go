package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Registered live-introspection providers, keyed by the JSON envelope
// field their endpoint wraps the payload in ("fleet" for /fleetz,
// "mining" for /miningz). The owning subsystem registers one when its
// run starts; telemetry stays a leaf package and only knows it gets
// *something* JSON-marshalable back — or a fmt.Stringer for the text
// rendering.
var (
	statusMu  sync.RWMutex
	statusFns = map[string]func() any{}
)

func setStatusProvider(key string, fn func() any) {
	statusMu.Lock()
	statusFns[key] = fn
	statusMu.Unlock()
}

// SetFleetz registers the provider behind the /fleetz debug endpoint.
// The provider is called per request on the debug server's goroutine,
// so it must be safe for concurrent use and should return an immutable
// snapshot. Registering nil (or never registering) makes /fleetz
// report {"active": false}; re-registering replaces the provider
// (desktop fleet, then mobile fleet — latest wins, like expvar
// republication).
func SetFleetz(fn func() any) { setStatusProvider("fleet", fn) }

// SetMiningz registers the provider behind the /miningz debug
// endpoint — the mining pipeline's mirror of SetFleetz, with the same
// contract: immutable snapshots, safe for concurrent calls, latest
// registration wins.
func SetMiningz(fn func() any) { setStatusProvider("mining", fn) }

// statusHandler serves one registered provider's live snapshot: JSON
// by default (wrapped in an {"active": true, "<key>": ...} envelope),
// the provider's fmt.Stringer rendering with ?format=text.
func statusHandler(key string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		statusMu.RLock()
		fn := statusFns[key]
		statusMu.RUnlock()
		var payload any
		if fn != nil {
			payload = fn()
		}
		if payload == nil {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"active": false}`)
			return
		}
		if r.URL.Query().Get("format") == "text" {
			if str, ok := payload.(fmt.Stringer); ok {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				fmt.Fprint(w, str.String())
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		b, err := json.MarshalIndent(map[string]any{
			"active": true,
			key:      payload,
		}, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(b, '\n')) //nolint:errcheck // best-effort debug endpoint
	}
}

// DebugServer is the optional runtime-profiling endpoint behind the
// -debug-addr flag: net/http/pprof, /debug/vars (expvar), and /metrics
// (the registry snapshot) on a loopback listener.
type DebugServer struct {
	addr string
	ln   net.Listener
	srv  *http.Server
}

// ServeDebug starts the debug HTTP server on addr (e.g.
// "127.0.0.1:6060"; ":0" picks a free port). The registry may be nil,
// in which case /metrics serves an empty snapshot. The server runs
// until Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/fleetz", statusHandler("fleet"))
	mux.HandleFunc("/miningz", statusHandler("mining"))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug listen %s: %w", addr, err)
	}
	ds := &DebugServer{
		addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go ds.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ds, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.addr
}

// Close shuts the server down. Nil-safe.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
