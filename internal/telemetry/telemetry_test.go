package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", LatencyBuckets)
	f := r.Family("x", "k")
	if c != nil || g != nil || h != nil || f != nil {
		t.Fatalf("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(0.5)
	h.ObserveDuration(time.Second)
	f.Add("a", 2)
	f.With("b").Inc()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil instruments must read zero")
	}
	if got := f.Counts(); len(got) != 0 {
		t.Fatalf("nil family Counts = %v", got)
	}
	r.Adopt(NewFamily("y", "k"))
	r.PublishExpvar("nil-reg")
	s := r.Snapshot()
	if s.Counters != nil || s.Families != nil {
		t.Fatalf("nil registry snapshot must be empty")
	}
	if err := r.WriteJSON(io.Discard); err != nil {
		t.Fatalf("nil registry WriteJSON: %v", err)
	}
}

// Disabled telemetry must add zero allocations on hot paths.
func TestDisabledPathAllocs(t *testing.T) {
	var c *Counter
	var h *Histogram
	var f *Family
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		h.Observe(1.5)
		f.Add("k", 1)
	}); n != 0 {
		t.Fatalf("disabled instruments allocated %v per op", n)
	}
}

// Enabled counters/histograms must also be allocation-free after the
// instrument exists (atomic adds only).
func TestEnabledHotPathAllocs(t *testing.T) {
	r := New()
	c := r.Counter("hot")
	h := r.Histogram("lat", LatencyBuckets)
	f := r.Family("fam", "k")
	f.Add("warm", 1) // pre-create so the fast path is the RLock hit
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(0.003)
		f.Add("warm", 1)
	}); n != 0 {
		t.Fatalf("enabled instruments allocated %v per op", n)
	}
}

func TestCounterGaugeFamily(t *testing.T) {
	r := New()
	c := r.Counter("visits")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("visits") != c {
		t.Fatalf("Counter must return the same instrument per name")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	f := r.Family("req", "vhost")
	f.Add("a.com", 2)
	f.Add("b.com", 1)
	f.With("a.com").Inc()
	want := map[string]int64{"a.com": 3, "b.com": 1}
	got := f.Counts()
	if len(got) != len(want) || got["a.com"] != 3 || got["b.com"] != 1 {
		t.Fatalf("family counts = %v, want %v", got, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 9} {
		h.Observe(v)
	}
	s := h.snapshot()
	// Inclusive upper bounds: ≤1: {0.5,1}, ≤2: {1.5,2}, ≤4: {3,4}, +Inf: {9}.
	wantCounts := []int64{2, 2, 2, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all=%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+3+4+9; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	h.ObserveDuration(3 * time.Second)
	if h.Count() != 8 {
		t.Fatalf("ObserveDuration not recorded")
	}
}

func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func() *Registry {
		r := New()
		// Insert in different orders across the two registries.
		names := []string{"zeta", "alpha", "mid"}
		for _, n := range names {
			r.Counter(n).Add(int64(len(n)))
		}
		r.Gauge("g1").Set(2)
		r.Histogram("hops", HopBuckets).Observe(3)
		fam := r.Family("req", "vhost")
		fam.Add("b.com", 1)
		fam.Add("a.com", 2)
		return r
	}
	r1, r2 := build(), build()
	var b1, b2 bytes.Buffer
	if err := r1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", b1.String(), b2.String())
	}
	var s Snapshot
	if err := json.Unmarshal(b1.Bytes(), &s); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	if s.Counters["zeta"] != 4 || s.Families["req"]["a.com"] != 2 {
		t.Fatalf("snapshot content wrong: %+v", s)
	}
}

func TestAdoptFoldsExternalFamily(t *testing.T) {
	r := New()
	f := NewFamily("chaos_faults", "kind")
	f.Add("reset", 3)
	r.Adopt(f)
	s := r.Snapshot()
	if s.Families["chaos_faults"]["reset"] != 3 {
		t.Fatalf("adopted family missing from snapshot: %+v", s.Families)
	}
	f.Add("reset", 1) // live view, not a copy
	if r.Snapshot().Families["chaos_faults"]["reset"] != 4 {
		t.Fatalf("adopted family must stay live")
	}
}

func TestPublishExpvarAndDebugServer(t *testing.T) {
	r := New()
	r.Counter("published").Add(9)
	r.PublishExpvar("telemetry-test")
	// Republish with a different registry: must rebind, not panic.
	r2 := New()
	r2.Counter("published").Add(11)
	r2.PublishExpvar("telemetry-test")

	ds, err := ServeDebug("127.0.0.1:0", r2)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + ds.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, `"published": 11`) {
		t.Fatalf("/metrics missing counter: %s", metrics)
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, "telemetry-test") {
		t.Fatalf("/debug/vars missing published registry")
	}
	if !strings.Contains(vars, `"published":11`) {
		t.Fatalf("expvar must serve the rebound registry: %s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatalf("pprof index not served")
	}

	var nilDS *DebugServer
	if nilDS.Addr() != "" || nilDS.Close() != nil {
		t.Fatalf("nil DebugServer must be inert")
	}
}

func TestWriteSnapshotFile(t *testing.T) {
	r := New()
	r.Counter("c").Inc()
	path := t.TempDir() + "/snap.json"
	if err := r.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["c"] != 1 {
		t.Fatalf("snapshot file content = %+v", s)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := New()
	c := r.Counter("n")
	h := r.Histogram("lat", LatencyBuckets)
	f := r.Family("fam", "k")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.01)
				f.Add("k1", 1)
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if c.Value() != 8000 || h.Count() != 8000 || f.Counts()["k1"] != 8000 {
		t.Fatalf("lost updates: c=%d h=%d f=%d", c.Value(), h.Count(), f.Counts()["k1"])
	}
	if got, want := h.Sum(), 80.0; got < want-1e-6 || got > want+1e-6 {
		t.Fatalf("histogram sum = %v, want ~%v", got, want)
	}
}
