package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// SpanID identifies a span within one Tracer. 0 is "no span" (roots and
// the nil tracer's return value).
type SpanID int64

// Span is one traced operation: a named interval with a parent link and
// string attributes. Point events (a notification shown, a redirect
// hop) are spans with Start == End. The JSONL form is the trace export
// format; spans carrying browser-event names round-trip through
// internal/audit's chain reconstruction.
type Span struct {
	ID        SpanID            `json:"id"`
	Parent    SpanID            `json:"parent,omitempty"`
	Container string            `json:"container,omitempty"`
	Name      string            `json:"name"`
	Start     time.Time         `json:"start"`
	End       time.Time         `json:"end"`
	Attrs     map[string]string `json:"attrs,omitempty"`
}

// Duration is the span's elapsed time.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Tracer collects parent-linked spans. It is safe for concurrent use —
// crawler containers trace in parallel — and nil-safe: a nil Tracer
// returns SpanID 0 from every start call and ignores everything else.
//
// Span IDs are assigned in emission order, so sorting spans by ID
// recovers the exact event order regardless of goroutine interleaving
// within one container (cross-container order follows the lock order,
// which the deterministic crawl makes reproducible).
type Tracer struct {
	now func() time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTracer creates a Tracer. now supplies span timestamps for the
// duration-style API (mining stages); nil means time.Now. Chain spans
// driven by browser events carry the event's simulated-clock time
// explicitly via the At variants.
func NewTracer(now func() time.Time) *Tracer {
	if now == nil {
		now = time.Now
	}
	return &Tracer{now: now}
}

// Start opens a span at the tracer's current time.
func (t *Tracer) Start(container, name string, parent SpanID, attrs map[string]string) SpanID {
	if t == nil {
		return 0
	}
	return t.StartAt(container, name, parent, attrs, t.now())
}

// StartAt opens a span at an explicit time (the simulated clock, for
// crawl chains).
func (t *Tracer) StartAt(container, name string, parent SpanID, attrs map[string]string, at time.Time) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Container: container, Name: name,
		Start: at, End: at, Attrs: attrs,
	})
	return id
}

// End closes a span at the tracer's current time. Unknown or zero IDs
// are ignored.
func (t *Tracer) End(id SpanID) {
	if t == nil {
		return
	}
	t.EndAt(id, t.now())
}

// EndAt closes a span at an explicit time.
func (t *Tracer) EndAt(id SpanID, at time.Time) {
	if t == nil || id <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) <= len(t.spans) {
		t.spans[id-1].End = at
	}
}

// Point emits an instantaneous span at an explicit time.
func (t *Tracer) Point(container, name string, parent SpanID, attrs map[string]string, at time.Time) SpanID {
	return t.StartAt(container, name, parent, attrs, at)
}

// SetAttr sets one attribute on an open (or closed) span.
func (t *Tracer) SetAttr(id SpanID, key, value string) {
	if t == nil || id <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) <= len(t.spans) {
		sp := &t.spans[id-1]
		if sp.Attrs == nil {
			sp.Attrs = make(map[string]string, 1)
		}
		sp.Attrs[key] = value
	}
}

// Spans returns a snapshot of all spans in emission (ID) order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len reports how many spans have been emitted.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// WriteJSONL streams every span as one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range t.Spans() {
		if err := enc.Encode(&sp); err != nil {
			return fmt.Errorf("telemetry: write span: %w", err)
		}
	}
	return bw.Flush()
}

// WriteTraceFile writes the trace JSONL to a file.
func (t *Tracer) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := t.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSpans parses trace JSONL.
func ReadSpans(r io.Reader) ([]Span, error) {
	var out []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var sp Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		out = append(out, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: read trace: %w", err)
	}
	return out, nil
}
