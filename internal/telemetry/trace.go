package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// SpanID identifies a span within one Tracer. 0 is "no span" (roots and
// the nil tracer's return value).
type SpanID int64

// Span is one traced operation: a named interval with a parent link and
// string attributes. Point events (a notification shown, a redirect
// hop) are spans with Start == End. The JSONL form is the trace export
// format; spans carrying browser-event names round-trip through
// internal/audit's chain reconstruction.
type Span struct {
	ID        SpanID            `json:"id"`
	Parent    SpanID            `json:"parent,omitempty"`
	Container string            `json:"container,omitempty"`
	Name      string            `json:"name"`
	Start     time.Time         `json:"start"`
	End       time.Time         `json:"end"`
	Attrs     map[string]string `json:"attrs,omitempty"`

	// Seg is the coordinator-minted global phase sequence number the
	// span was emitted under (fleet crawls only; 0 otherwise). It
	// exists so spans from per-shard tracers can be stitched back into
	// one coordinator-ordered trace (StitchSpans), and is deliberately
	// excluded from the JSONL export: a stitched fleet trace must be
	// byte-identical to the single-process trace at shards=1.
	Seg int64 `json:"-"`
}

// Duration is the span's elapsed time.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Tracer collects parent-linked spans. It is safe for concurrent use —
// crawler containers trace in parallel — and nil-safe: a nil Tracer
// returns SpanID 0 from every start call and ignores everything else.
//
// Span IDs are assigned in emission order, so sorting spans by ID
// recovers the exact event order regardless of goroutine interleaving
// within one container (cross-container order follows the lock order,
// which the deterministic crawl makes reproducible).
type Tracer struct {
	now func() time.Time

	mu    sync.Mutex
	spans []Span
	seg   int64 // current segment stamped onto new spans (fleet crawls)
}

// NewTracer creates a Tracer. now supplies span timestamps for the
// duration-style API (mining stages); nil means time.Now. Chain spans
// driven by browser events carry the event's simulated-clock time
// explicitly via the At variants.
func NewTracer(now func() time.Time) *Tracer {
	if now == nil {
		now = time.Now
	}
	return &Tracer{now: now}
}

// Start opens a span at the tracer's current time.
func (t *Tracer) Start(container, name string, parent SpanID, attrs map[string]string) SpanID {
	if t == nil {
		return 0
	}
	return t.StartAt(container, name, parent, attrs, t.now())
}

// StartAt opens a span at an explicit time (the simulated clock, for
// crawl chains).
func (t *Tracer) StartAt(container, name string, parent SpanID, attrs map[string]string, at time.Time) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Container: container, Name: name,
		Start: at, End: at, Attrs: attrs, Seg: t.seg,
	})
	return id
}

// SetSegment sets the segment number stamped onto spans emitted from
// now on. The fleet coordinator mints one global segment per transport
// phase (seed, poll, dispatch, click, finish) and sets it on each
// shard's tracer before invoking the phase, so per-shard span streams
// carry enough ordering information to be stitched back into the
// single coordinator-rooted trace. Nil-safe no-op.
func (t *Tracer) SetSegment(seg int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seg = seg
	t.mu.Unlock()
}

// End closes a span at the tracer's current time. Unknown or zero IDs
// are ignored.
func (t *Tracer) End(id SpanID) {
	if t == nil {
		return
	}
	t.EndAt(id, t.now())
}

// EndAt closes a span at an explicit time.
func (t *Tracer) EndAt(id SpanID, at time.Time) {
	if t == nil || id <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) <= len(t.spans) {
		t.spans[id-1].End = at
	}
}

// Point emits an instantaneous span at an explicit time.
func (t *Tracer) Point(container, name string, parent SpanID, attrs map[string]string, at time.Time) SpanID {
	return t.StartAt(container, name, parent, attrs, at)
}

// SetAttr sets one attribute on an open (or closed) span.
func (t *Tracer) SetAttr(id SpanID, key, value string) {
	if t == nil || id <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) <= len(t.spans) {
		sp := &t.spans[id-1]
		if sp.Attrs == nil {
			sp.Attrs = make(map[string]string, 1)
		}
		sp.Attrs[key] = value
	}
}

// Spans returns a snapshot of all spans in emission (ID) order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len reports how many spans have been emitted.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// WriteJSONL streams every span as one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range t.Spans() {
		if err := enc.Encode(&sp); err != nil {
			return fmt.Errorf("telemetry: write span: %w", err)
		}
	}
	return bw.Flush()
}

// WriteTraceFile writes the trace JSONL to a file.
func (t *Tracer) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := t.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// StitchSpans reassembles per-shard span streams into one
// coordinator-ordered trace. Streams are per-tracer span slices in
// shard order (each internally consistent: IDs ascending, parents
// referencing earlier spans of the same stream). Spans are interleaved
// by (segment, shard, local ID) — the order the coordinator drove the
// phases in — then renumbered from 1 with parents remapped per stream.
// At shards=1 the stitch is the identity: segments ascend with local
// IDs, so the output equals the input stream renumbered onto itself,
// which is what makes a stitched fleet trace byte-identical to the
// single-process trace.
//
// The returned spans carry Seg 0 and are self-consistent, ready for
// Tracer.Append or WriteJSONL.
func StitchSpans(streams [][]Span) []Span {
	total := 0
	for _, st := range streams {
		total += len(st)
	}
	if total == 0 {
		return nil
	}
	type ref struct {
		stream int
		span   Span
	}
	refs := make([]ref, 0, total)
	for si, st := range streams {
		for _, sp := range st {
			refs = append(refs, ref{stream: si, span: sp})
		}
	}
	sort.SliceStable(refs, func(i, j int) bool {
		a, b := refs[i], refs[j]
		if a.span.Seg != b.span.Seg {
			return a.span.Seg < b.span.Seg
		}
		if a.stream != b.stream {
			return a.stream < b.stream
		}
		return a.span.ID < b.span.ID
	})
	// Parents always precede children within a stream (lower local ID,
	// emitted under the same or an earlier segment), so a single forward
	// pass sees every parent before its children.
	remap := make([]map[SpanID]SpanID, len(streams))
	for i := range remap {
		remap[i] = make(map[SpanID]SpanID)
	}
	out := make([]Span, 0, total)
	for i, r := range refs {
		sp := r.span
		newID := SpanID(i + 1)
		remap[r.stream][sp.ID] = newID
		sp.ID = newID
		if sp.Parent > 0 {
			// A parent missing from the map (e.g. chain state carried
			// across shards) degrades to a root rather than pointing at
			// an unrelated span.
			sp.Parent = remap[r.stream][sp.Parent]
		}
		sp.Seg = 0
		out = append(out, sp)
	}
	return out
}

// Append splices an already-stitched, self-consistent span slice onto
// the tracer, re-basing IDs and parent links past the spans already
// recorded. The fleet coordinator uses it to land each device crawl's
// stitched trace on the study's shared tracer exactly where the
// single-process crawl would have emitted it. Nil-safe no-op.
func (t *Tracer) Append(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	base := SpanID(len(t.spans))
	for _, sp := range spans {
		sp.ID += base
		if sp.Parent > 0 {
			sp.Parent += base
		}
		sp.Seg = t.seg
		t.spans = append(t.spans, sp)
	}
}

// ReadSpans parses trace JSONL.
func ReadSpans(r io.Reader) ([]Span, error) {
	var out []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var sp Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		out = append(out, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: read trace: %w", err)
	}
	return out, nil
}
