package telemetry

import "time"

// Browser event kinds the chain recorder links into WPN attack chains.
// They mirror internal/browser's EventKind strings (kept as plain
// strings here so telemetry stays a leaf package).
const (
	evVisit               = "visit"
	evSWRegistered        = "sw_registered"
	evPushReceived        = "push_received"
	evNotificationShown   = "notification_shown"
	evNotificationClicked = "notification_clicked"
	evSWRequest           = "sw_request"
	evNavigation          = "navigation"
	evRedirect            = "redirect"
	evLandingPage         = "landing_page"
	evTabCrashed          = "tab_crashed"
)

// ChainRecorder turns one browser's instrumentation event stream into
// parent-linked spans on a shared Tracer, reconstructing the WPN attack
// chain live: seed visit → permission → SW install → push →
// notification → click → redirect hops → landing page.
//
// Every event becomes exactly one span, emitted in event order with the
// event's own fields and simulated-clock time — so a trace is a lossless
// re-encoding of the audit log, and internal/audit can reconstruct
// chains from either (see audit.EntriesFromSpans).
//
// A ChainRecorder serves a single browser (one container); the Tracer
// behind it may be shared by many. The nil ChainRecorder ignores
// everything.
type ChainRecorder struct {
	tr        *Tracer
	container string

	visit SpanID            // current top-level visit span
	swReg map[string]SpanID // SW URL → registration span
	chain SpanID            // most recent push_received span
	click SpanID            // clicked chain collecting consequences
	shown map[string]SpanID // displayed-but-unclicked, by title
}

// NewChainRecorder creates a recorder for one container. Returns nil
// when the tracer is nil, so disabled tracing costs one nil check per
// event.
func NewChainRecorder(tr *Tracer, container string) *ChainRecorder {
	if tr == nil {
		return nil
	}
	return &ChainRecorder{
		tr:        tr,
		container: container,
		swReg:     make(map[string]SpanID),
		shown:     make(map[string]SpanID),
	}
}

// Event records one browser event, linking it into the chain in
// progress. at is the event's (simulated) time; fields are stored as
// span attributes verbatim.
func (c *ChainRecorder) Event(at time.Time, kind string, fields map[string]string) {
	if c == nil {
		return
	}
	switch kind {
	case evVisit:
		c.tr.EndAt(c.visit, at)
		c.visit = c.tr.StartAt(c.container, kind, 0, fields, at)

	case evSWRegistered:
		id := c.tr.Point(c.container, kind, c.visit, fields, at)
		if sw := fields["sw"]; sw != "" {
			c.swReg[sw] = id
		}

	case evPushReceived:
		parent := c.swReg[fields["sw"]]
		c.chain = c.tr.StartAt(c.container, kind, parent, fields, at)

	case evNotificationShown:
		id := c.tr.StartAt(c.container, kind, c.chain, fields, at)
		if t := fields["title"]; t != "" {
			c.shown[t] = id
		}

	case evNotificationClicked:
		parent := c.shown[fields["title"]]
		delete(c.shown, fields["title"])
		c.click = c.tr.StartAt(c.container, kind, parent, fields, at)

	case evSWRequest:
		parent := c.click
		if parent == 0 {
			parent = c.chain
		}
		c.tr.Point(c.container, kind, parent, fields, at)

	case evNavigation, evRedirect:
		parent := c.click
		if parent == 0 {
			parent = c.visit
		}
		c.tr.Point(c.container, kind, parent, fields, at)

	case evLandingPage, evTabCrashed:
		parent := c.click
		if parent == 0 {
			parent = c.visit
		}
		c.tr.Point(c.container, kind, parent, fields, at)
		if c.click != 0 {
			c.tr.EndAt(c.click, at)
			c.tr.EndAt(c.chain, at)
			c.click = 0
		}

	default:
		// Permission prompts, page requests, and anything added later
		// hang off the visit in progress.
		c.tr.Point(c.container, kind, c.visit, fields, at)
	}
}
