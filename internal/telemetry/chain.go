package telemetry

import "time"

// Browser event kinds the chain recorder links into WPN attack chains.
// They mirror internal/browser's EventKind strings (kept as plain
// strings here so telemetry stays a leaf package).
const (
	evVisit               = "visit"
	evSWRegistered        = "sw_registered"
	evPushReceived        = "push_received"
	evNotificationShown   = "notification_shown"
	evNotificationClicked = "notification_clicked"
	evSWRequest           = "sw_request"
	evNavigation          = "navigation"
	evRedirect            = "redirect"
	evLandingPage         = "landing_page"
	evTabCrashed          = "tab_crashed"
)

// ChainRecorder turns one browser's instrumentation event stream into
// parent-linked spans on a shared Tracer, reconstructing the WPN attack
// chain live: seed visit → permission → SW install → push →
// notification → click → redirect hops → landing page.
//
// Every event becomes exactly one span, emitted in event order with the
// event's own fields and simulated-clock time — so a trace is a lossless
// re-encoding of the audit log, and internal/audit can reconstruct
// chains from either (see audit.EntriesFromSpans).
//
// A ChainRecorder serves a single browser (one container); the Tracer
// behind it may be shared by many. The nil ChainRecorder ignores
// everything.
type ChainRecorder struct {
	tr        *Tracer
	container string

	visit SpanID            // current top-level visit span
	swReg map[string]SpanID // SW URL → registration span
	chain SpanID            // most recent push_received span
	click SpanID            // clicked chain collecting consequences
	shown map[string]SpanID // displayed-but-unclicked, by title
}

// NewChainRecorder creates a recorder for one container. Returns nil
// when the tracer is nil, so disabled tracing costs one nil check per
// event.
func NewChainRecorder(tr *Tracer, container string) *ChainRecorder {
	if tr == nil {
		return nil
	}
	return &ChainRecorder{
		tr:        tr,
		container: container,
		swReg:     make(map[string]SpanID),
		shown:     make(map[string]SpanID),
	}
}

// ChainState is a ChainRecorder's linkage state in serializable form:
// the span IDs future events will parent under. It is persisted with
// shard-worker state so a restarted worker's recorders keep linking
// events into the chains the killed worker left open — without it,
// every post-restart event would start a fresh root and the stitched
// trace could never match the uninterrupted single-process one. The
// IDs are only meaningful against the same tracer the state was
// captured from (the fleet transport owns per-shard tracers across
// restarts); chains adopted onto a different shard's tracer must be
// dropped instead of restored.
type ChainState struct {
	Visit SpanID            `json:"visit,omitempty"`
	SWReg map[string]SpanID `json:"sw_reg,omitempty"`
	Chain SpanID            `json:"chain,omitempty"`
	Click SpanID            `json:"click,omitempty"`
	Shown map[string]SpanID `json:"shown,omitempty"`
}

// Export snapshots the recorder's linkage state. Returns nil on a nil
// recorder (tracing disabled).
func (c *ChainRecorder) Export() *ChainState {
	if c == nil {
		return nil
	}
	st := &ChainState{Visit: c.visit, Chain: c.chain, Click: c.click}
	if len(c.swReg) > 0 {
		st.SWReg = make(map[string]SpanID, len(c.swReg))
		for k, v := range c.swReg {
			st.SWReg[k] = v
		}
	}
	if len(c.shown) > 0 {
		st.Shown = make(map[string]SpanID, len(c.shown))
		for k, v := range c.shown {
			st.Shown[k] = v
		}
	}
	return st
}

// Restore reinstates linkage state captured by Export. No-op when
// either side is nil.
func (c *ChainRecorder) Restore(st *ChainState) {
	if c == nil || st == nil {
		return
	}
	c.visit, c.chain, c.click = st.Visit, st.Chain, st.Click
	c.swReg = make(map[string]SpanID, len(st.SWReg))
	for k, v := range st.SWReg {
		c.swReg[k] = v
	}
	c.shown = make(map[string]SpanID, len(st.Shown))
	for k, v := range st.Shown {
		c.shown[k] = v
	}
}

// Event records one browser event, linking it into the chain in
// progress. at is the event's (simulated) time; fields are stored as
// span attributes verbatim.
func (c *ChainRecorder) Event(at time.Time, kind string, fields map[string]string) {
	if c == nil {
		return
	}
	switch kind {
	case evVisit:
		c.tr.EndAt(c.visit, at)
		c.visit = c.tr.StartAt(c.container, kind, 0, fields, at)

	case evSWRegistered:
		id := c.tr.Point(c.container, kind, c.visit, fields, at)
		if sw := fields["sw"]; sw != "" {
			c.swReg[sw] = id
		}

	case evPushReceived:
		parent := c.swReg[fields["sw"]]
		c.chain = c.tr.StartAt(c.container, kind, parent, fields, at)

	case evNotificationShown:
		id := c.tr.StartAt(c.container, kind, c.chain, fields, at)
		if t := fields["title"]; t != "" {
			c.shown[t] = id
		}

	case evNotificationClicked:
		parent := c.shown[fields["title"]]
		delete(c.shown, fields["title"])
		c.click = c.tr.StartAt(c.container, kind, parent, fields, at)

	case evSWRequest:
		parent := c.click
		if parent == 0 {
			parent = c.chain
		}
		c.tr.Point(c.container, kind, parent, fields, at)

	case evNavigation, evRedirect:
		parent := c.click
		if parent == 0 {
			parent = c.visit
		}
		c.tr.Point(c.container, kind, parent, fields, at)

	case evLandingPage, evTabCrashed:
		parent := c.click
		if parent == 0 {
			parent = c.visit
		}
		c.tr.Point(c.container, kind, parent, fields, at)
		if c.click != 0 {
			c.tr.EndAt(c.click, at)
			c.tr.EndAt(c.chain, at)
			c.click = 0
		}

	default:
		// Permission prompts, page requests, and anything added later
		// hang off the visit in progress.
		c.tr.Point(c.container, kind, c.visit, fields, at)
	}
}
