package serviceworker

import "testing"

// FuzzParse checks SW script parsing never panics and round-trips.
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{"url":"https://x/sw.js"}`))
	f.Add([]byte(`{"on_push":[{"do":"fetch","url":"{{a}}"}]}`))
	f.Add([]byte(`broken`))
	f.Fuzz(func(t *testing.T, src []byte) {
		s, err := Parse(src)
		if err != nil {
			return
		}
		if _, err := Parse(s.Source()); err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
	})
}

// FuzzExpand checks template expansion never panics and never grows
// unboundedly relative to its input.
func FuzzExpand(f *testing.F) {
	f.Add("{{a}}-{{b}}", "x", "y")
	f.Add("{{unclosed", "x", "y")
	f.Add("}}{{", "x", "y")
	f.Fuzz(func(t *testing.T, tpl, va, vb string) {
		env := Env{"a": va, "b": vb}
		out := expand(tpl, env)
		if len(out) > len(tpl)+len(va)*len(tpl)+len(vb)*len(tpl)+16 {
			t.Fatalf("expansion exploded: %d bytes from %d", len(out), len(tpl))
		}
	})
}
