package serviceworker

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"pushadminer/internal/vnet"
	"pushadminer/internal/webpush"
)

func TestParseRoundTrip(t *testing.T) {
	s := &Script{
		URL: "https://cdn.adnet.test/sw.js",
		OnPush: []Op{
			{Do: OpFetch, URL: "https://adnet.test/ad?id={{ad_id}}", SaveAs: "ad"},
			{Do: OpShowNotification, Notification: &webpush.Notification{
				Title: "{{ad.title}}", Body: "{{ad.body}}", TargetURL: "{{ad.target}}",
			}},
		},
		OnClick: []Op{
			{Do: OpPostback, URL: "https://adnet.test/click?u={{n.target_url}}"},
			{Do: OpOpenWindow, URL: "{{n.target_url}}"},
		},
	}
	parsed, err := Parse(s.Source())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, s) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", parsed, s)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte("not json")); err == nil {
		t.Error("bad script accepted")
	}
}

func TestExpand(t *testing.T) {
	env := Env{"a": "1", "b.c": "2"}
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"x={{a}}", "x=1"},
		{"{{a}}{{b.c}}", "12"},
		{"{{ a }}", "1"},
		{"{{missing}}", ""},
		{"{{unclosed", "{{unclosed"},
	}
	for _, c := range cases {
		if got := expand(c.in, env); got != c.want {
			t.Errorf("expand(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// testHarness wires a runtime to a vnet with an ad server, capturing all
// hook invocations.
type testHarness struct {
	rt       *Runtime
	shown    []webpush.Notification
	opened   []string
	requests []RequestRecord
}

func newHarness(t *testing.T) *testHarness {
	t.Helper()
	n, err := vnet.New()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	n.HandleFunc("adnet.test", func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/ad":
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"title":"Win a prize %s","body":"Claim now","target":"https://land.test/offer"}`,
				r.URL.Query().Get("id"))
		case "/click":
			w.WriteHeader(http.StatusNoContent)
		default:
			http.NotFound(w, r)
		}
	})
	h := &testHarness{}
	h.rt = &Runtime{
		Client:             n.Client(),
		OnRequest:          func(r RequestRecord) { h.requests = append(h.requests, r) },
		OnShowNotification: func(n webpush.Notification) { h.shown = append(h.shown, n) },
		OnOpenWindow:       func(u string) { h.opened = append(h.opened, u) },
	}
	return h
}

func adScript() *Script {
	return &Script{
		URL: "https://cdn.adnet.test/sw.js",
		OnPush: []Op{
			{Do: OpFetch, URL: "https://adnet.test/ad?id={{ad_id}}", SaveAs: "ad"},
			{Do: OpShowNotification, Notification: &webpush.Notification{
				Title: "{{ad.title}}", Body: "{{ad.body}}", TargetURL: "{{ad.target}}",
			}},
		},
		OnClick: []Op{
			{Do: OpPostback, URL: "https://adnet.test/click?u={{n.target_url}}"},
			{Do: OpOpenWindow, URL: "{{n.target_url}}"},
		},
	}
}

func reg(s *Script) *Registration {
	return &Registration{Origin: "https://pub.test", Scope: "/", Script: s}
}

func TestDispatchPushFetchesAndShows(t *testing.T) {
	h := newHarness(t)
	msg := webpush.Message{Data: webpush.EncodePayload(webpush.Payload{AdID: "A7"})}
	if err := h.rt.DispatchPush(reg(adScript()), msg); err != nil {
		t.Fatal(err)
	}
	if len(h.requests) != 1 {
		t.Fatalf("SW requests = %d, want 1", len(h.requests))
	}
	if h.requests[0].URL != "https://adnet.test/ad?id=A7" {
		t.Errorf("fetch URL = %q", h.requests[0].URL)
	}
	if h.requests[0].SWURL != "https://cdn.adnet.test/sw.js" {
		t.Errorf("SWURL = %q", h.requests[0].SWURL)
	}
	if len(h.shown) != 1 {
		t.Fatalf("notifications shown = %d, want 1", len(h.shown))
	}
	if h.shown[0].Title != "Win a prize A7" || h.shown[0].TargetURL != "https://land.test/offer" {
		t.Errorf("notification = %+v", h.shown[0])
	}
}

func TestDispatchPushDefaultHandler(t *testing.T) {
	h := newHarness(t)
	script := &Script{URL: "https://pub.test/sw.js"} // no handlers
	n := &webpush.Notification{Title: "Breaking news", Body: "Something happened", TargetURL: "https://pub.test/story"}
	msg := webpush.Message{Data: webpush.EncodePayload(webpush.Payload{Notification: n})}
	if err := h.rt.DispatchPush(reg(script), msg); err != nil {
		t.Fatal(err)
	}
	if len(h.shown) != 1 || h.shown[0].Title != "Breaking news" {
		t.Fatalf("shown = %+v", h.shown)
	}
	if len(h.requests) != 0 {
		t.Errorf("default handler issued %d requests", len(h.requests))
	}
}

func TestDispatchPushNoHandlerNoPayload(t *testing.T) {
	h := newHarness(t)
	script := &Script{URL: "https://pub.test/sw.js"}
	msg := webpush.Message{Data: webpush.EncodePayload(webpush.Payload{AdID: "x"})}
	if err := h.rt.DispatchPush(reg(script), msg); err == nil {
		t.Error("push with nothing to show succeeded")
	}
}

func TestDispatchPushBadPayload(t *testing.T) {
	h := newHarness(t)
	if err := h.rt.DispatchPush(reg(adScript()), webpush.Message{Data: json.RawMessage(`{bad`)}); err == nil {
		t.Error("bad payload accepted")
	}
}

func TestDispatchClickPostbackAndOpen(t *testing.T) {
	h := newHarness(t)
	n := webpush.Notification{Title: "Win", TargetURL: "https://land.test/offer"}
	if err := h.rt.DispatchNotificationClick(reg(adScript()), n); err != nil {
		t.Fatal(err)
	}
	if len(h.requests) != 1 || h.requests[0].URL != "https://adnet.test/click?u=https://land.test/offer" {
		t.Fatalf("postback = %+v", h.requests)
	}
	if len(h.opened) != 1 || h.opened[0] != "https://land.test/offer" {
		t.Fatalf("opened = %v", h.opened)
	}
}

func TestDispatchClickDefault(t *testing.T) {
	h := newHarness(t)
	script := &Script{URL: "https://pub.test/sw.js"}
	n := webpush.Notification{Title: "x", TargetURL: "https://pub.test/story"}
	if err := h.rt.DispatchNotificationClick(reg(script), n); err != nil {
		t.Fatal(err)
	}
	if len(h.opened) != 1 || h.opened[0] != "https://pub.test/story" {
		t.Fatalf("opened = %v", h.opened)
	}
	// No target URL → no window.
	h.opened = nil
	if err := h.rt.DispatchNotificationClick(reg(script), webpush.Notification{Title: "y"}); err != nil {
		t.Fatal(err)
	}
	if len(h.opened) != 0 {
		t.Errorf("opened without target: %v", h.opened)
	}
}

func TestFetchFailureIsTolerated(t *testing.T) {
	h := newHarness(t)
	script := &Script{
		URL: "https://cdn.adnet.test/sw.js",
		OnPush: []Op{
			{Do: OpFetch, URL: "https://unknown-host.test/ad", SaveAs: "ad"},
			{Do: OpShowNotification, Notification: &webpush.Notification{Title: "Fallback offer"}},
		},
	}
	msg := webpush.Message{Data: webpush.EncodePayload(webpush.Payload{AdID: "x"})}
	if err := h.rt.DispatchPush(reg(script), msg); err != nil {
		t.Fatal(err)
	}
	if len(h.shown) != 1 || h.shown[0].Title != "Fallback offer" {
		t.Fatalf("fallback notification not shown: %+v", h.shown)
	}
	// The failed request is still instrumented (it returned 502 from
	// vnet's unknown-host handler, which is a response, not an error).
	if len(h.requests) != 1 || h.requests[0].Status != http.StatusBadGateway {
		t.Fatalf("requests = %+v", h.requests)
	}
}

func TestUnknownOp(t *testing.T) {
	h := newHarness(t)
	script := &Script{URL: "x", OnPush: []Op{{Do: "eval"}}}
	msg := webpush.Message{Data: webpush.EncodePayload(webpush.Payload{AdID: "x"})}
	if err := h.rt.DispatchPush(reg(script), msg); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestSetOp(t *testing.T) {
	h := newHarness(t)
	script := &Script{URL: "x", OnPush: []Op{
		{Do: OpSet, Key: "greeting", Value: "hello {{ad_id}}"},
		{Do: OpShowNotification, Notification: &webpush.Notification{Title: "{{greeting}}"}},
	}}
	msg := webpush.Message{Data: webpush.EncodePayload(webpush.Payload{AdID: "Z"})}
	if err := h.rt.DispatchPush(reg(script), msg); err != nil {
		t.Fatal(err)
	}
	if len(h.shown) != 1 || h.shown[0].Title != "hello Z" {
		t.Fatalf("shown = %+v", h.shown)
	}
}

func TestShowNotificationOpRequiresNotification(t *testing.T) {
	h := newHarness(t)
	script := &Script{URL: "x", OnPush: []Op{{Do: OpShowNotification}}}
	msg := webpush.Message{Data: webpush.EncodePayload(webpush.Payload{AdID: "x"})}
	if err := h.rt.DispatchPush(reg(script), msg); err == nil {
		t.Error("shownotification without notification accepted")
	}
}

func TestPushPayloadFieldsInEnv(t *testing.T) {
	h := newHarness(t)
	script := &Script{URL: "x", OnPush: []Op{
		{Do: OpShowNotification, Notification: &webpush.Notification{
			Title: "re: {{payload.title}}", TargetURL: "{{payload.target_url}}",
		}},
	}}
	msg := webpush.Message{Data: webpush.EncodePayload(webpush.Payload{
		Notification: &webpush.Notification{Title: "Original", TargetURL: "https://t.test/x"},
	})}
	if err := h.rt.DispatchPush(reg(script), msg); err != nil {
		t.Fatal(err)
	}
	if h.shown[0].Title != "re: Original" || h.shown[0].TargetURL != "https://t.test/x" {
		t.Fatalf("shown = %+v", h.shown[0])
	}
}

func TestActionGatedOps(t *testing.T) {
	h := newHarness(t)
	script := &Script{
		URL: "https://x/sw.js",
		OnClick: []Op{
			{Do: OpOpenWindow, URL: "https://main.test/", IfAction: ""},
			{Do: OpOpenWindow, URL: "https://settings.test/", IfAction: "settings"},
			{Do: OpPostback, URL: "https://adnet.test/click?a={{n.action}}", IfAction: "settings"},
		},
	}
	n := webpush.Notification{Title: "x", TargetURL: "https://t/x"}
	// Body click: only ungated ops run.
	if err := h.rt.DispatchNotificationClick(reg(script), n); err != nil {
		t.Fatal(err)
	}
	if len(h.opened) != 1 || h.opened[0] != "https://main.test/" {
		t.Fatalf("body click opened %v", h.opened)
	}
	if len(h.requests) != 0 {
		t.Fatalf("body click fired gated postback: %v", h.requests)
	}
	// Action click: gated ops run too.
	h.opened, h.requests = nil, nil
	if err := h.rt.DispatchNotificationClickAction(reg(script), n, "settings"); err != nil {
		t.Fatal(err)
	}
	if len(h.opened) != 2 || h.opened[1] != "https://settings.test/" {
		t.Fatalf("action click opened %v", h.opened)
	}
	if len(h.requests) != 1 || !strings.Contains(h.requests[0].URL, "a=settings") {
		t.Fatalf("action postback = %v", h.requests)
	}
}
