// Package serviceworker implements the simulated Service Worker runtime.
//
// Real push-ad service workers are small JavaScript event handlers: on a
// `push` event they may fetch ad metadata from their ad network and call
// showNotification; on `notificationclick` they open the ad's landing
// page and fire tracking beacons. This package replaces the JS engine
// with a declarative op VM producing exactly those side effects, which is
// all the instrumented browser observed in the paper (network requests,
// notification displays, window opens). Scripts are JSON documents served
// at the SW script URL by the synthetic ecosystem.
package serviceworker

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"pushadminer/internal/webpush"
)

// Op kinds understood by the VM.
const (
	OpFetch            = "fetch"            // GET URL, merge JSON response into env under SaveAs prefix
	OpShowNotification = "shownotification" // display a (templated) notification
	OpOpenWindow       = "openwindow"       // navigate a new tab to URL (click handlers)
	OpPostback         = "postback"         // fire-and-forget tracking GET
	OpSet              = "set"              // set an env variable
)

// Op is one step of a service-worker event handler. String fields may
// contain {{var}} templates resolved against the event environment.
type Op struct {
	Do           string                `json:"do"`
	URL          string                `json:"url,omitempty"`
	SaveAs       string                `json:"save_as,omitempty"`
	Notification *webpush.Notification `json:"notification,omitempty"`
	Key          string                `json:"key,omitempty"`
	Value        string                `json:"value,omitempty"`
	// IfAction gates the op: it runs only when the clicked notification
	// action id equals this value ("" = always run). Lets click
	// handlers branch on custom action buttons (§2.2).
	IfAction string `json:"if_action,omitempty"`
}

// Script is a parsed service worker: its script URL plus the op programs
// for the push and notificationclick events. A script with no OnPush ops
// falls back to displaying the notification embedded in the push payload;
// a script with no OnClick ops falls back to opening the notification's
// target URL — the behaviour of the simplest real-world SW code.
type Script struct {
	URL     string `json:"url"`
	OnPush  []Op   `json:"on_push,omitempty"`
	OnClick []Op   `json:"on_click,omitempty"`
}

// Parse decodes a script from its serialized JSON source.
func Parse(src []byte) (*Script, error) {
	var s Script
	if err := json.Unmarshal(src, &s); err != nil {
		return nil, fmt.Errorf("serviceworker: parse script: %w", err)
	}
	return &s, nil
}

// Source serializes the script to the JSON form Parse accepts.
func (s *Script) Source() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("serviceworker: marshal script: %v", err))
	}
	return b
}

// Registration ties a parsed script to the origin that registered it and
// its push subscription, mirroring a ServiceWorkerRegistration.
type Registration struct {
	Origin string
	Scope  string
	Script *Script
	Sub    webpush.Subscription
}

// RequestRecord describes one network request issued by a service worker,
// as logged by the browser instrumentation (§4.1 step 3).
type RequestRecord struct {
	URL      string
	Method   string
	Status   int
	SWURL    string
	Error    string
	Response string // truncated response body
}

// Runtime executes service-worker event handlers. Hooks are the
// instrumentation seams of the browser: every SW network request, every
// showNotification call, and every openWindow call is reported.
type Runtime struct {
	// Client issues the SW's network requests. Required.
	Client *http.Client
	// FetchRetries is how many extra attempts an OpFetch gets when the
	// request fails at the transport level or answers 5xx/429. Real SWs
	// (and real browser fetch stacks) retry transient ad-fetch
	// failures; without this a single injected 503 silently eats the
	// notification the fetch was feeding. Default 0 (no retries).
	FetchRetries int
	// OnRequest, if set, observes every network request the SW makes.
	OnRequest func(RequestRecord)
	// OnShowNotification, if set, receives each displayed notification.
	OnShowNotification func(webpush.Notification)
	// OnOpenWindow, if set, receives each URL the SW opens a window to.
	OnOpenWindow func(url string)
}

// Env is the event-handler variable environment.
type Env map[string]string

// clone returns a copy so handler runs don't leak state.
func (e Env) clone() Env {
	out := make(Env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// expand resolves {{var}} templates against the environment. Unknown
// variables expand to the empty string.
func expand(s string, env Env) string {
	if !strings.Contains(s, "{{") {
		return s
	}
	var b strings.Builder
	for {
		i := strings.Index(s, "{{")
		if i < 0 {
			b.WriteString(s)
			return b.String()
		}
		j := strings.Index(s[i:], "}}")
		if j < 0 {
			b.WriteString(s)
			return b.String()
		}
		b.WriteString(s[:i])
		key := strings.TrimSpace(s[i+2 : i+j])
		b.WriteString(env[key])
		s = s[i+j+2:]
	}
}

// DispatchPush delivers a push message to the registration's script,
// running its push handler. The push payload populates the environment:
// notification fields under "payload.*", the ad id as "ad_id", and the
// campaign hint as "c".
func (rt *Runtime) DispatchPush(reg *Registration, msg webpush.Message) error {
	payload, err := webpush.DecodePayload(msg.Data)
	if err != nil {
		return err
	}
	env := Env{"ad_id": payload.AdID, "c": payload.CampaignHint, "origin": reg.Origin}
	if n := payload.Notification; n != nil {
		env["payload.title"] = n.Title
		env["payload.body"] = n.Body
		env["payload.icon"] = n.Icon
		env["payload.image"] = n.Image
		env["payload.target_url"] = n.TargetURL
	}
	ops := reg.Script.OnPush
	if len(ops) == 0 {
		// Default handler: show the embedded notification verbatim.
		if payload.Notification == nil {
			return fmt.Errorf("serviceworker: push with no handler and no notification payload")
		}
		rt.show(*payload.Notification)
		return nil
	}
	return rt.run(reg, ops, env)
}

// DispatchNotificationClick delivers a user click on a displayed
// notification's body to the registration's click handler.
func (rt *Runtime) DispatchNotificationClick(reg *Registration, n webpush.Notification) error {
	return rt.DispatchNotificationClickAction(reg, n, "")
}

// DispatchNotificationClickAction delivers a click on a specific action
// button ("" = the notification body). The notification's fields
// populate the environment under "n.*", and the action id as
// "n.action".
func (rt *Runtime) DispatchNotificationClickAction(reg *Registration, n webpush.Notification, action string) error {
	env := Env{
		"n.title":      n.Title,
		"n.body":       n.Body,
		"n.target_url": n.TargetURL,
		"n.action":     action,
		"origin":       reg.Origin,
	}
	ops := reg.Script.OnClick
	if len(ops) == 0 {
		// Default: navigate to the notification's target.
		if n.TargetURL != "" && rt.OnOpenWindow != nil {
			rt.OnOpenWindow(n.TargetURL)
		}
		return nil
	}
	return rt.run(reg, ops, env)
}

func (rt *Runtime) run(reg *Registration, ops []Op, env Env) error {
	env = env.clone()
	for i, op := range ops {
		if op.IfAction != "" && env["n.action"] != op.IfAction {
			continue
		}
		switch strings.ToLower(op.Do) {
		case OpSet:
			env[op.Key] = expand(op.Value, env)

		case OpFetch:
			url := expand(op.URL, env)
			rec := rt.doGET(reg, url)
			for retry := 0; retry < rt.FetchRetries && fetchFailed(rec); retry++ {
				rec = rt.doGET(reg, url)
			}
			if fetchFailed(rec) {
				// SWs tolerate failed ad fetches; later ops may still run
				// (e.g. showing a fallback notification).
				continue
			}
			// Merge flat JSON object fields into env under the prefix.
			var obj map[string]any
			if err := json.Unmarshal([]byte(rec.Response), &obj); err == nil {
				prefix := op.SaveAs
				if prefix != "" && !strings.HasSuffix(prefix, ".") {
					prefix += "."
				}
				for k, v := range obj {
					env[prefix+k] = fmt.Sprint(v)
				}
			}

		case OpShowNotification:
			if op.Notification == nil {
				return fmt.Errorf("serviceworker: op %d: shownotification without notification", i)
			}
			n := *op.Notification
			n.Title = expand(n.Title, env)
			n.Body = expand(n.Body, env)
			n.Icon = expand(n.Icon, env)
			n.Image = expand(n.Image, env)
			n.TargetURL = expand(n.TargetURL, env)
			rt.show(n)

		case OpOpenWindow:
			if rt.OnOpenWindow != nil {
				rt.OnOpenWindow(expand(op.URL, env))
			}

		case OpPostback:
			rt.doGET(reg, expand(op.URL, env))

		default:
			return fmt.Errorf("serviceworker: op %d: unknown op %q", i, op.Do)
		}
	}
	return nil
}

func (rt *Runtime) show(n webpush.Notification) {
	if rt.OnShowNotification != nil {
		rt.OnShowNotification(n)
	}
}

// fetchFailed reports whether a fetch outcome is transient-retryable:
// a transport failure, a truncated body, or a 5xx/429 answer.
func fetchFailed(rec RequestRecord) bool {
	return rec.Error != "" || rec.Status >= 500 || rec.Status == http.StatusTooManyRequests
}

// doGET performs a GET as the service worker and reports it through
// OnRequest. Bodies are truncated to 4 KiB in the record.
func (rt *Runtime) doGET(reg *Registration, url string) RequestRecord {
	rec := RequestRecord{URL: url, Method: http.MethodGet, SWURL: reg.Script.URL}
	resp, err := rt.Client.Get(url)
	if err != nil {
		rec.Error = classifyNetError(err)
	} else {
		defer resp.Body.Close()
		rec.Status = resp.StatusCode
		body, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
		rec.Response = string(body)
		if err != nil {
			// A body cut mid-stream is a failed fetch, not a short
			// success.
			rec.Error = classifyNetError(err)
		}
	}
	if rt.OnRequest != nil {
		rt.OnRequest(rec)
	}
	return rec
}

// classifyNetError collapses transport error text into a stable
// category. Raw messages differ run to run for the same injected fault
// (an aborted connection surfaces as EOF or ECONNRESET depending on
// who reads first), and these strings end up inside WPN records, which
// must be byte-identical across same-seed runs.
func classifyNetError(err error) string {
	s := err.Error()
	switch {
	case strings.Contains(s, "no such host"):
		return "net: host unresolvable"
	case strings.Contains(s, "timeout") || strings.Contains(s, "deadline"):
		return "net: timeout"
	default:
		return "net: connection failed"
	}
}
