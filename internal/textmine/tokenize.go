// Package textmine implements the text-mining substrate the WPN clustering
// stage needs (§5.1.1 of the paper): a tokenizer for short notification
// texts, a vocabulary, a from-scratch word2vec (skip-gram with negative
// sampling) trainer used to build a term-similarity matrix, bag-of-words
// vectors, and the soft cosine similarity measure of Sidorov et al. that
// gensim's softcossim() implements.
package textmine

import "strings"

// stopwords are high-frequency function words excluded from bag-of-words
// vectors. The list is deliberately small: WPN texts are short and
// keyword-dense, and removing too much would erase the signal.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "is": true, "are": true,
	"to": true, "of": true, "on": true, "in": true, "for": true,
	"and": true, "or": true, "be": true, "has": true, "have": true,
	"you": true, "your": true, "it": true, "this": true, "that": true,
	"with": true, "at": true, "by": true, "from": true, "was": true,
}

// Tokenize lowercases text and splits it into alphanumeric tokens,
// preserving order and duplicates. Punctuation and symbols are separators;
// digits-only tokens are kept (prize amounts and phone numbers carry
// signal in scam messages).
func Tokenize(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, c := range strings.ToLower(text) {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			b.WriteRune(c)
		default:
			flush()
		}
	}
	flush()
	return out
}

// ContentTokens tokenizes text and removes stopwords. Used for
// bag-of-words features; the word2vec trainer keeps stopwords because
// they provide context windows.
func ContentTokens(text string) []string {
	toks := Tokenize(text)
	out := toks[:0]
	for _, t := range toks {
		if !stopwords[t] {
			out = append(out, t)
		}
	}
	return out
}

// Vocab maps tokens to dense integer ids in insertion order.
type Vocab struct {
	ids    map[string]int
	tokens []string
	counts []int
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{ids: make(map[string]int)}
}

// Add interns tok, increments its count, and returns its id.
func (v *Vocab) Add(tok string) int {
	if id, ok := v.ids[tok]; ok {
		v.counts[id]++
		return id
	}
	id := len(v.tokens)
	v.ids[tok] = id
	v.tokens = append(v.tokens, tok)
	v.counts = append(v.counts, 1)
	return id
}

// ID returns the id of tok and whether it is known.
func (v *Vocab) ID(tok string) (int, bool) {
	id, ok := v.ids[tok]
	return id, ok
}

// Token returns the token for id. It panics on out-of-range ids.
func (v *Vocab) Token(id int) string { return v.tokens[id] }

// Count returns how many times id was Added.
func (v *Vocab) Count(id int) int { return v.counts[id] }

// Len returns the vocabulary size.
func (v *Vocab) Len() int { return len(v.tokens) }

// IDs converts a token sequence to ids, adding unknown tokens.
func (v *Vocab) IDs(tokens []string) []int {
	out := make([]int, len(tokens))
	for i, t := range tokens {
		out[i] = v.Add(t)
	}
	return out
}

// LookupIDs converts tokens to ids, skipping tokens not in the vocabulary.
func (v *Vocab) LookupIDs(tokens []string) []int {
	out := make([]int, 0, len(tokens))
	for _, t := range tokens {
		if id, ok := v.ids[t]; ok {
			out = append(out, id)
		}
	}
	return out
}
