package textmine

import "math"

// TermSimMatrix is the dense precomputed term-similarity matrix S used by
// soft cosine at scale: S[i][j] = max(0, cos(wᵢ, wⱼ))^exponent with the
// threshold applied, exactly as termSim computes lazily. Precomputing S
// turns each pairwise document comparison into table lookups, which is
// what makes clustering thousands of WPN messages tractable.
type TermSimMatrix struct {
	n    int
	data []float32
}

// NewTermSimMatrix materializes S for all vocabulary pairs.
func NewTermSimMatrix(e *Embeddings, opts SoftCosineOptions) *TermSimMatrix {
	opts = opts.withDefaults()
	n := e.Vocab().Len()
	m := &TermSimMatrix{n: n, data: make([]float32, n*n)}
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
		for j := i + 1; j < n; j++ {
			s := float32(termSim(e, i, j, opts))
			m.data[i*n+j] = s
			m.data[j*n+i] = s
		}
	}
	return m
}

// Len returns the vocabulary size.
func (m *TermSimMatrix) Len() int { return m.n }

// At returns S[i][j].
func (m *TermSimMatrix) At(i, j int) float64 { return float64(m.data[i*m.n+j]) }

func quadFormM(a, b BOW, m *TermSimMatrix) float64 {
	var sum float64
	for x, i := range a.ids {
		wa := a.weights[x]
		row := m.data[i*m.n : (i+1)*m.n]
		for y, j := range b.ids {
			if s := row[j]; s != 0 {
				sum += wa * float64(s) * b.weights[y]
			}
		}
	}
	return sum
}

// SoftCosineWith computes soft cosine using a precomputed matrix. It
// matches SoftCosine exactly when the matrix was built with the same
// options.
func SoftCosineWith(a, b BOW, m *TermSimMatrix) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	num := quadFormM(a, b, m)
	if num <= 0 {
		return 0
	}
	den := math.Sqrt(quadFormM(a, a, m)) * math.Sqrt(quadFormM(b, b, m))
	if den == 0 {
		return 0
	}
	s := num / den
	if s > 1 {
		s = 1
	}
	return s
}

// SelfNorm precomputes sqrt(aᵀ·S·a) for reuse across many comparisons of
// the same document.
func SelfNorm(a BOW, m *TermSimMatrix) float64 {
	return math.Sqrt(quadFormM(a, a, m))
}

// SoftCosineNormed computes soft cosine given precomputed self-norms.
func SoftCosineNormed(a, b BOW, m *TermSimMatrix, normA, normB float64) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	num := quadFormM(a, b, m)
	if num <= 0 {
		return 0
	}
	den := normA * normB
	if den == 0 {
		return 0
	}
	s := num / den
	if s > 1 {
		s = 1
	}
	return s
}
