package textmine

import (
	"math"
	"sort"
)

// BOW is a sparse bag-of-words vector: term-id → weight, stored as
// parallel sorted slices for cache-friendly pairwise operations.
type BOW struct {
	ids     []int
	weights []float64
}

// NewBOW builds a term-frequency bag-of-words vector from token ids.
func NewBOW(ids []int) BOW {
	counts := make(map[int]float64, len(ids))
	for _, id := range ids {
		counts[id]++
	}
	out := BOW{
		ids:     make([]int, 0, len(counts)),
		weights: make([]float64, 0, len(counts)),
	}
	for id := range counts {
		out.ids = append(out.ids, id)
	}
	sort.Ints(out.ids)
	for _, id := range out.ids {
		out.weights = append(out.weights, counts[id])
	}
	return out
}

// Len returns the number of distinct terms.
func (b BOW) Len() int { return len(b.ids) }

// Terms returns the sorted term ids. The slice aliases internal storage.
func (b BOW) Terms() []int { return b.ids }

// SoftCosineOptions mirror gensim's term-similarity-matrix knobs: a raw
// cosine below Threshold is treated as zero, and surviving similarities
// are raised to Exponent.
type SoftCosineOptions struct {
	// Threshold zeroes term similarities below it. Default 0 (negative
	// similarities are dropped, as in gensim).
	Threshold float64
	// Exponent is applied to surviving similarities. Default 2.0
	// (gensim's default), which sharpens the matrix toward identity.
	Exponent float64
}

func (o SoftCosineOptions) withDefaults() SoftCosineOptions {
	if o.Exponent == 0 {
		o.Exponent = 2
	}
	return o
}

// termSim returns the (thresholded, exponentiated) similarity entry
// S[i][j] used by soft cosine.
func termSim(e *Embeddings, i, j int, o SoftCosineOptions) float64 {
	if i == j {
		return 1
	}
	s := e.Similarity(i, j)
	if s <= o.Threshold || s <= 0 {
		return 0
	}
	if o.Exponent != 1 {
		s = math.Pow(s, o.Exponent)
	}
	return s
}

// quadForm computes aᵀ·S·b for sparse vectors a and b under the implied
// term-similarity matrix S.
func quadForm(a, b BOW, e *Embeddings, o SoftCosineOptions) float64 {
	var sum float64
	for x, i := range a.ids {
		wa := a.weights[x]
		for y, j := range b.ids {
			s := termSim(e, i, j, o)
			if s != 0 {
				sum += wa * s * b.weights[y]
			}
		}
	}
	return sum
}

// SoftCosine returns the soft cosine similarity of two bag-of-words
// vectors in [0, 1], using embedding cosines as the term-similarity
// matrix (Sidorov et al., as implemented by gensim softcossim). Two empty
// vectors have similarity 1; an empty versus non-empty vector, 0.
//
// Each call recomputes both self quad-forms; when a document is compared
// many times (the n²/2 pairwise calls of the clustering stage), cache
// Norm(a, e, opts) once and use SoftCosineWithNorms — or, with a
// precomputed TermSimMatrix, a DocKernel — instead.
func SoftCosine(a, b BOW, e *Embeddings, opts SoftCosineOptions) float64 {
	opts = opts.withDefaults()
	return SoftCosineWithNorms(a, b, e, opts, Norm(a, e, opts), Norm(b, e, opts))
}

// Norm returns sqrt(aᵀ·S·a), the self quad-form norm of a under the
// implied term-similarity matrix — the per-document quantity SoftCosine
// recomputes on every call. Callers holding many documents compute it
// once per document and pass it to SoftCosineWithNorms.
func Norm(a BOW, e *Embeddings, opts SoftCosineOptions) float64 {
	return math.Sqrt(quadForm(a, a, e, opts.withDefaults()))
}

// SoftCosineWithNorms is SoftCosine with both self norms supplied by the
// caller (from Norm), eliminating the two redundant self quad-forms per
// pairwise call. It matches SoftCosine exactly when the norms were
// computed with the same options.
func SoftCosineWithNorms(a, b BOW, e *Embeddings, opts SoftCosineOptions, normA, normB float64) float64 {
	opts = opts.withDefaults()
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	num := quadForm(a, b, e, opts)
	if num <= 0 {
		return 0
	}
	den := normA * normB
	if den == 0 {
		return 0
	}
	s := num / den
	if s > 1 {
		s = 1
	}
	return s
}

// SoftCosineDistance is 1 − SoftCosine.
func SoftCosineDistance(a, b BOW, e *Embeddings, opts SoftCosineOptions) float64 {
	return 1 - SoftCosine(a, b, e, opts)
}

// DocVector returns the L2-normalized sum of (normalized) term embeddings
// weighted by term frequency — the fast document representation whose
// plain cosine approximates soft cosine without the threshold/exponent
// adjustments. The pipeline uses exact SoftCosine; DocVector backs the
// large-scale fast path and validation tooling.
func DocVector(b BOW, e *Embeddings) []float32 {
	out := make([]float32, e.Dim())
	for x, id := range b.ids {
		w := float32(b.weights[x])
		v := e.Vector(id)
		for k := range out {
			out[k] += w * v[k]
		}
	}
	var norm float64
	for _, x := range out {
		norm += float64(x) * float64(x)
	}
	if norm > 0 {
		n := float32(math.Sqrt(norm))
		for k := range out {
			out[k] /= n
		}
	}
	return out
}

// CosineDistance returns 1 − dot(a, b) for two L2-normalized vectors,
// clamped to [0, 2].
func CosineDistance(a, b []float32) float64 {
	var dot float64
	for k := range a {
		dot += float64(a[k]) * float64(b[k])
	}
	d := 1 - dot
	if d < 0 {
		d = 0
	}
	if d > 2 {
		d = 2
	}
	return d
}
