package textmine

import (
	"math"
	"testing"
)

func TestTermSimMatrixMatchesLazy(t *testing.T) {
	emb := trainTiny(t)
	opts := SoftCosineOptions{}
	m := NewTermSimMatrix(emb, opts)
	if m.Len() != emb.Vocab().Len() {
		t.Fatalf("Len = %d, want %d", m.Len(), emb.Vocab().Len())
	}
	optsD := opts.withDefaults()
	for i := 0; i < m.Len(); i++ {
		for j := 0; j < m.Len(); j++ {
			lazy := termSim(emb, i, j, optsD)
			if math.Abs(m.At(i, j)-lazy) > 1e-6 {
				t.Fatalf("S[%d][%d] = %v, lazy = %v", i, j, m.At(i, j), lazy)
			}
		}
	}
}

func TestSoftCosineWithMatchesExact(t *testing.T) {
	emb := trainTiny(t)
	v := emb.Vocab()
	m := NewTermSimMatrix(emb, SoftCosineOptions{})
	texts := []string{
		"claim your prize now", "weather storm alert", "winner reward",
		"congratulations you won a prize", "rain warning",
	}
	bows := make([]BOW, len(texts))
	for i, s := range texts {
		bows[i] = NewBOW(v.LookupIDs(Tokenize(s)))
	}
	for i := range bows {
		for j := range bows {
			exact := SoftCosine(bows[i], bows[j], emb, SoftCosineOptions{})
			fast := SoftCosineWith(bows[i], bows[j], m)
			if math.Abs(exact-fast) > 1e-6 {
				t.Fatalf("pair (%d,%d): exact %v fast %v", i, j, exact, fast)
			}
		}
	}
}

func TestSoftCosineNormed(t *testing.T) {
	emb := trainTiny(t)
	v := emb.Vocab()
	m := NewTermSimMatrix(emb, SoftCosineOptions{})
	a := NewBOW(v.LookupIDs(Tokenize("claim your prize")))
	b := NewBOW(v.LookupIDs(Tokenize("winner reward today")))
	na, nb := SelfNorm(a, m), SelfNorm(b, m)
	want := SoftCosineWith(a, b, m)
	got := SoftCosineNormed(a, b, m, na, nb)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("normed %v, want %v", got, want)
	}
	empty := NewBOW(nil)
	if s := SoftCosineNormed(empty, empty, m, 0, 0); s != 1 {
		t.Errorf("normed(∅,∅) = %v", s)
	}
	if s := SoftCosineNormed(empty, a, m, 0, na); s != 0 {
		t.Errorf("normed(∅,a) = %v", s)
	}
}
