package textmine

import (
	"math"
	"testing"
)

func TestComputeIDF(t *testing.T) {
	// Term 0 in every doc, term 1 in one doc, term 2 never.
	docs := [][]int{{0, 1}, {0}, {0, 0}}
	idf := ComputeIDF(docs, 3)
	if idf.NumDocs() != 3 {
		t.Fatalf("NumDocs = %d", idf.NumDocs())
	}
	common, rare, never := idf.Weight(0), idf.Weight(1), idf.Weight(2)
	if !(never > rare && rare > common) {
		t.Errorf("IDF ordering wrong: common=%v rare=%v never=%v", common, rare, never)
	}
	// Smooth variant: everything >= 1.
	for i := 0; i < 3; i++ {
		if idf.Weight(i) < 1 {
			t.Errorf("Weight(%d) = %v < 1", i, idf.Weight(i))
		}
	}
	if idf.Weight(-1) != 0 || idf.Weight(99) != 0 {
		t.Error("out-of-range ids not zero")
	}
}

func TestComputeIDFIgnoresOutOfRange(t *testing.T) {
	idf := ComputeIDF([][]int{{0, 99, -5}}, 2)
	if idf.Weight(0) <= 0 {
		t.Error("valid id lost")
	}
}

func TestNewBOWTFIDF(t *testing.T) {
	docs := [][]int{{0, 1}, {0}, {0}, {0}}
	idf := ComputeIDF(docs, 2)
	bow := NewBOWTFIDF([]int{0, 0, 1}, idf)
	// Term 0 appears twice but is common; term 1 once but rare. TF-IDF
	// shrinks the gap: weight(0) = 2*idf0, weight(1) = 1*idf1.
	var w0, w1 float64
	for x, id := range bow.ids {
		switch id {
		case 0:
			w0 = bow.weights[x]
		case 1:
			w1 = bow.weights[x]
		}
	}
	if math.Abs(w0-2*idf.Weight(0)) > 1e-9 {
		t.Errorf("w0 = %v, want %v", w0, 2*idf.Weight(0))
	}
	if math.Abs(w1-idf.Weight(1)) > 1e-9 {
		t.Errorf("w1 = %v, want %v", w1, idf.Weight(1))
	}
	if w1/w0 <= 0.5 {
		t.Errorf("rare term not boosted relative to raw TF: %v vs %v", w1, w0)
	}
}

func TestTFIDFWithSoftCosine(t *testing.T) {
	emb := trainTiny(t)
	v := emb.Vocab()
	var docs [][]int
	for _, s := range []string{
		"claim your prize now", "weather storm alert", "claim reward today",
	} {
		docs = append(docs, v.LookupIDs(Tokenize(s)))
	}
	idf := ComputeIDF(docs, v.Len())
	m := NewTermSimMatrix(emb, SoftCosineOptions{})
	a := NewBOWTFIDF(v.LookupIDs(Tokenize("claim your prize")), idf)
	b := NewBOWTFIDF(v.LookupIDs(Tokenize("claim reward")), idf)
	c := NewBOWTFIDF(v.LookupIDs(Tokenize("storm alert")), idf)
	same := SoftCosineWith(a, b, m)
	diff := SoftCosineWith(a, c, m)
	if same <= diff {
		t.Errorf("TF-IDF soft cosine lost topical ordering: same=%v diff=%v", same, diff)
	}
}
