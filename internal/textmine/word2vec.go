package textmine

import (
	"fmt"
	"math"
	"math/rand"
)

// Word2VecConfig controls skip-gram-with-negative-sampling training.
type Word2VecConfig struct {
	// Dim is the embedding dimensionality. Default 32 — WPN corpora are
	// small and short; larger vectors overfit.
	Dim int
	// Window is the maximum skip-gram context distance. Default 4.
	Window int
	// Negative is the number of negative samples per positive pair.
	// Default 5.
	Negative int
	// Epochs is the number of passes over the corpus. Default 5.
	Epochs int
	// LearningRate is the initial SGD step size, decayed linearly to
	// LearningRate/10 over training. Default 0.025.
	LearningRate float64
	// Seed makes training deterministic.
	Seed int64
}

func (c Word2VecConfig) withDefaults() Word2VecConfig {
	if c.Dim <= 0 {
		c.Dim = 32
	}
	if c.Window <= 0 {
		c.Window = 4
	}
	if c.Negative <= 0 {
		c.Negative = 5
	}
	if c.Epochs <= 0 {
		c.Epochs = 5
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.025
	}
	return c
}

// Embeddings holds trained word vectors for a vocabulary. Rows are
// L2-normalized copies of the input vectors, so Similarity is a plain dot
// product.
type Embeddings struct {
	vocab *Vocab
	dim   int
	vecs  []float32 // len = vocab.Len() * dim, L2-normalized rows
}

// Dim returns the embedding dimensionality.
func (e *Embeddings) Dim() int { return e.dim }

// Vocab returns the vocabulary the embeddings were trained over.
func (e *Embeddings) Vocab() *Vocab { return e.vocab }

// Vector returns the L2-normalized embedding row for term id. The returned
// slice aliases internal storage; callers must not modify it.
func (e *Embeddings) Vector(id int) []float32 {
	return e.vecs[id*e.dim : (id+1)*e.dim]
}

// Similarity returns the cosine similarity of two term ids in [-1, 1].
func (e *Embeddings) Similarity(i, j int) float64 {
	a, b := e.Vector(i), e.Vector(j)
	var dot float32
	for k := range a {
		dot += a[k] * b[k]
	}
	// Guard against float drift outside [-1, 1].
	d := float64(dot)
	if d > 1 {
		d = 1
	} else if d < -1 {
		d = -1
	}
	return d
}

// TrainWord2Vec trains skip-gram-with-negative-sampling embeddings over
// docs, where each document is a token sequence (stopwords included —
// they provide context). It returns the trained embeddings and the
// vocabulary built from the corpus. An empty corpus is an error.
func TrainWord2Vec(docs [][]string, cfg Word2VecConfig) (*Embeddings, error) {
	cfg = cfg.withDefaults()
	vocab := NewVocab()
	corpus := make([][]int, 0, len(docs))
	totalTokens := 0
	for _, d := range docs {
		if len(d) == 0 {
			continue
		}
		corpus = append(corpus, vocab.IDs(d))
		totalTokens += len(d)
	}
	if vocab.Len() == 0 {
		return nil, fmt.Errorf("textmine: empty corpus")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	dim := cfg.Dim
	n := vocab.Len()

	// Input (syn0) and output (syn1) matrices. syn0 random-initialized in
	// (-0.5/dim, 0.5/dim) as in the reference implementation; syn1 zeroed.
	syn0 := make([]float32, n*dim)
	syn1 := make([]float32, n*dim)
	for i := range syn0 {
		syn0[i] = (rng.Float32() - 0.5) / float32(dim)
	}

	table := buildUnigramTable(vocab, rng)
	sig := buildSigmoidTable()

	steps := 0
	totalSteps := cfg.Epochs * totalTokens
	if totalSteps == 0 {
		totalSteps = 1
	}
	grad := make([]float32, dim)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, doc := range corpus {
			for pos, center := range doc {
				steps++
				alpha := float32(cfg.LearningRate * (1 - 0.9*float64(steps)/float64(totalSteps)))
				w := 1 + rng.Intn(cfg.Window) // dynamic window, as in word2vec.c
				lo, hi := pos-w, pos+w
				if lo < 0 {
					lo = 0
				}
				if hi >= len(doc) {
					hi = len(doc) - 1
				}
				for cpos := lo; cpos <= hi; cpos++ {
					if cpos == pos {
						continue
					}
					ctx := doc[cpos]
					in := syn0[ctx*dim : ctx*dim+dim]
					for k := range grad {
						grad[k] = 0
					}
					// One positive and cfg.Negative negative samples.
					for s := 0; s <= cfg.Negative; s++ {
						var target int
						var label float32
						if s == 0 {
							target, label = center, 1
						} else {
							target = table[rng.Intn(len(table))]
							if target == center {
								continue
							}
							label = 0
						}
						out := syn1[target*dim : target*dim+dim]
						var dot float32
						for k := range in {
							dot += in[k] * out[k]
						}
						g := (label - sig.at(dot)) * alpha
						for k := range in {
							grad[k] += g * out[k]
							out[k] += g * in[k]
						}
					}
					for k := range in {
						in[k] += grad[k]
					}
				}
			}
		}
	}

	// Normalize rows into the Embeddings.
	vecs := make([]float32, n*dim)
	for i := 0; i < n; i++ {
		row := syn0[i*dim : i*dim+dim]
		var norm float64
		for _, x := range row {
			norm += float64(x) * float64(x)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			norm = 1
		}
		dst := vecs[i*dim : i*dim+dim]
		for k, x := range row {
			dst[k] = float32(float64(x) / norm)
		}
	}
	return &Embeddings{vocab: vocab, dim: dim, vecs: vecs}, nil
}

// buildUnigramTable builds the negative-sampling table with the standard
// count^0.75 smoothing.
func buildUnigramTable(v *Vocab, rng *rand.Rand) []int {
	const tableSize = 1 << 16
	table := make([]int, 0, tableSize)
	var total float64
	pows := make([]float64, v.Len())
	for i := 0; i < v.Len(); i++ {
		pows[i] = math.Pow(float64(v.Count(i)), 0.75)
		total += pows[i]
	}
	for i := 0; i < v.Len(); i++ {
		slots := int(pows[i] / total * tableSize)
		if slots < 1 {
			slots = 1
		}
		for s := 0; s < slots; s++ {
			table = append(table, i)
		}
	}
	// Shuffle so truncated sampling (rng.Intn(len)) stays unbiased.
	rng.Shuffle(len(table), func(i, j int) { table[i], table[j] = table[j], table[i] })
	return table
}

// sigmoidTable is a precomputed logistic function over [-6, 6].
type sigmoidTable []float32

func buildSigmoidTable() sigmoidTable {
	const size = 1024
	t := make(sigmoidTable, size)
	for i := range t {
		x := (float64(i)/size*2 - 1) * 6
		t[i] = float32(1 / (1 + math.Exp(-x)))
	}
	return t
}

func (t sigmoidTable) at(x float32) float32 {
	if x >= 6 {
		return 1
	}
	if x <= -6 {
		return 0
	}
	i := int((x + 6) / 12 * float32(len(t)))
	if i >= len(t) {
		i = len(t) - 1
	}
	return t[i]
}
