package textmine

import (
	"math/rand"
	"sync"
	"testing"
)

// kernelCorpus trains tiny embeddings over a deterministic corpus and
// returns the BOWs and supporting structures shared by the kernel tests.
func kernelCorpus(t testing.TB, seed int64, nDocs int) ([]BOW, *Embeddings, *TermSimMatrix) {
	t.Helper()
	words := []string{
		"win", "prize", "claim", "now", "free", "iphone", "virus",
		"alert", "scan", "device", "update", "video", "watch", "hot",
		"deal", "save", "money", "click", "here", "urgent",
	}
	rng := rand.New(rand.NewSource(seed))
	docs := make([][]string, nDocs)
	for i := range docs {
		ln := 3 + rng.Intn(6)
		for w := 0; w < ln; w++ {
			docs[i] = append(docs[i], words[rng.Intn(len(words))])
		}
	}
	emb, err := TrainWord2Vec(docs, Word2VecConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sim := NewTermSimMatrix(emb, SoftCosineOptions{})
	vocab := emb.Vocab()
	bows := make([]BOW, nDocs)
	for i, d := range docs {
		bows[i] = NewBOW(vocab.LookupIDs(d))
	}
	// An empty document exercises the degenerate branches.
	bows = append(bows, NewBOW(nil))
	return bows, emb, sim
}

func TestDocKernelMatchesSoftCosineWith(t *testing.T) {
	bows, emb, sim := kernelCorpus(t, 7, 30)
	k := NewDocKernel(bows, sim, emb)
	if k.Len() != len(bows) {
		t.Fatalf("Len = %d, want %d", k.Len(), len(bows))
	}
	for i := 0; i < len(bows); i++ {
		for j := 0; j < len(bows); j++ {
			want := SoftCosineWith(bows[i], bows[j], sim)
			if got := k.SoftCosine(i, j); got != want {
				t.Fatalf("kernel SoftCosine(%d,%d) = %v, want %v (bit-identical)", i, j, got, want)
			}
			if got := k.Distance(i, j); got != 1-want {
				t.Fatalf("kernel Distance(%d,%d) = %v, want %v", i, j, got, 1-want)
			}
		}
	}
}

func TestDocKernelNormsMatchSelfNorm(t *testing.T) {
	bows, emb, sim := kernelCorpus(t, 11, 12)
	k := NewDocKernel(bows, sim, emb)
	for i := range bows {
		if got, want := k.Norm(i), SelfNorm(bows[i], sim); got != want {
			t.Fatalf("Norm(%d) = %v, want SelfNorm %v", i, got, want)
		}
	}
}

func TestDocKernelVectors(t *testing.T) {
	bows, emb, sim := kernelCorpus(t, 3, 10)
	k := NewDocKernel(bows, sim, emb)
	for i := range bows {
		want := DocVector(bows[i], emb)
		got := k.Vec(i)
		if len(got) != len(want) {
			t.Fatalf("Vec(%d) length %d, want %d", i, len(got), len(want))
		}
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("Vec(%d)[%d] = %v, want %v", i, d, got[d], want[d])
			}
		}
		if d := k.ApproxDistance(i, i); d > 1e-6 {
			// Empty docs have zero vectors (distance 1 to themselves).
			if bows[i].Len() != 0 {
				t.Fatalf("ApproxDistance(%d,%d) = %v, want ~0", i, i, d)
			}
		}
	}
	// Without embeddings, vectors are absent but norms still work.
	bare := NewDocKernel(bows, sim, nil)
	if bare.Vec(0) != nil {
		t.Error("kernel built without embeddings returned a vector")
	}
	if bare.Norm(1) != k.Norm(1) {
		t.Error("norms differ with/without embeddings")
	}
}

func TestDocKernelConcurrentReads(t *testing.T) {
	bows, emb, sim := kernelCorpus(t, 5, 20)
	k := NewDocKernel(bows, sim, emb)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < k.Len(); i++ {
				for j := 0; j < k.Len(); j++ {
					_ = k.SoftCosine(i, j)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestSoftCosineWithNormsMatchesSoftCosine(t *testing.T) {
	bows, emb, _ := kernelCorpus(t, 9, 15)
	opts := SoftCosineOptions{}
	norms := make([]float64, len(bows))
	for i := range bows {
		norms[i] = Norm(bows[i], emb, opts)
	}
	for i := range bows {
		for j := range bows {
			want := SoftCosine(bows[i], bows[j], emb, opts)
			got := SoftCosineWithNorms(bows[i], bows[j], emb, opts, norms[i], norms[j])
			if got != want {
				t.Fatalf("SoftCosineWithNorms(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}
