package textmine

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Your payment info has been leaked!", []string{"your", "payment", "info", "has", "been", "leaked"}},
		{"WIN $500 NOW!!!", []string{"win", "500", "now"}},
		{"", nil},
		{"...", nil},
		{"claim-your-prize", []string{"claim", "your", "prize"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestContentTokensDropsStopwords(t *testing.T) {
	got := ContentTokens("Your payment info has been leaked")
	want := []string{"payment", "info", "been", "leaked"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentTokens = %v, want %v", got, want)
	}
}

func TestVocab(t *testing.T) {
	v := NewVocab()
	a := v.Add("alpha")
	b := v.Add("beta")
	a2 := v.Add("alpha")
	if a != a2 {
		t.Fatalf("Add is not idempotent: %d vs %d", a, a2)
	}
	if a == b {
		t.Fatal("distinct tokens share an id")
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	if v.Count(a) != 2 || v.Count(b) != 1 {
		t.Fatalf("counts = %d, %d; want 2, 1", v.Count(a), v.Count(b))
	}
	if v.Token(a) != "alpha" {
		t.Fatalf("Token(%d) = %q", a, v.Token(a))
	}
	if _, ok := v.ID("gamma"); ok {
		t.Fatal("unknown token resolved")
	}
	ids := v.LookupIDs([]string{"alpha", "gamma", "beta"})
	if !reflect.DeepEqual(ids, []int{a, b}) {
		t.Fatalf("LookupIDs = %v", ids)
	}
}

// trainTiny trains embeddings on a corpus with two clearly separated
// topics and returns them with the vocab.
func trainTiny(t *testing.T) *Embeddings {
	t.Helper()
	var docs [][]string
	// Topic A: prizes/winning. Topic B: weather alerts. Repetition gives
	// the tiny trainer enough signal.
	for i := 0; i < 60; i++ {
		docs = append(docs,
			Tokenize("congratulations you won a prize claim your reward now"),
			Tokenize("you are a winner claim the prize reward today"),
			Tokenize("weather alert heavy rain storm warning tonight"),
			Tokenize("storm warning severe weather rain alert issued"),
		)
	}
	emb, err := TrainWord2Vec(docs, Word2VecConfig{Seed: 42})
	if err != nil {
		t.Fatalf("TrainWord2Vec: %v", err)
	}
	return emb
}

func TestWord2VecGroupsTopics(t *testing.T) {
	emb := trainTiny(t)
	v := emb.Vocab()
	id := func(tok string) int {
		i, ok := v.ID(tok)
		if !ok {
			t.Fatalf("token %q not in vocab", tok)
		}
		return i
	}
	within := emb.Similarity(id("prize"), id("reward"))
	across := emb.Similarity(id("prize"), id("storm"))
	if within <= across {
		t.Errorf("within-topic similarity %.3f <= across-topic %.3f", within, across)
	}
}

func TestWord2VecDeterministic(t *testing.T) {
	docs := [][]string{Tokenize("alpha beta gamma delta"), Tokenize("beta gamma epsilon")}
	a, err := TrainWord2Vec(docs, Word2VecConfig{Seed: 7, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainWord2Vec(docs, Word2VecConfig{Seed: 7, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.vecs, b.vecs) {
		t.Error("same seed produced different embeddings")
	}
}

func TestWord2VecEmptyCorpus(t *testing.T) {
	if _, err := TrainWord2Vec(nil, Word2VecConfig{}); err == nil {
		t.Fatal("expected error for empty corpus")
	}
	if _, err := TrainWord2Vec([][]string{{}, {}}, Word2VecConfig{}); err == nil {
		t.Fatal("expected error for corpus of empty docs")
	}
}

func TestEmbeddingRowsNormalized(t *testing.T) {
	emb := trainTiny(t)
	for i := 0; i < emb.Vocab().Len(); i++ {
		var norm float64
		for _, x := range emb.Vector(i) {
			norm += float64(x) * float64(x)
		}
		if math.Abs(norm-1) > 1e-3 {
			t.Fatalf("row %d norm² = %v, want 1", i, norm)
		}
	}
}

func TestSimilaritySelfIsOne(t *testing.T) {
	emb := trainTiny(t)
	for i := 0; i < emb.Vocab().Len(); i++ {
		if s := emb.Similarity(i, i); math.Abs(s-1) > 1e-3 {
			t.Fatalf("Similarity(%d,%d) = %v, want 1", i, i, s)
		}
	}
}

func TestNewBOW(t *testing.T) {
	b := NewBOW([]int{3, 1, 3, 2, 3})
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if !reflect.DeepEqual(b.Terms(), []int{1, 2, 3}) {
		t.Fatalf("Terms = %v", b.Terms())
	}
	if !reflect.DeepEqual(b.weights, []float64{1, 1, 3}) {
		t.Fatalf("weights = %v", b.weights)
	}
}

func TestSoftCosineIdenticalDocs(t *testing.T) {
	emb := trainTiny(t)
	ids := emb.Vocab().LookupIDs(Tokenize("claim your prize reward"))
	b := NewBOW(ids)
	if s := SoftCosine(b, b, emb, SoftCosineOptions{}); math.Abs(s-1) > 1e-9 {
		t.Errorf("SoftCosine(x, x) = %v, want 1", s)
	}
}

func TestSoftCosineEmpty(t *testing.T) {
	emb := trainTiny(t)
	empty := NewBOW(nil)
	full := NewBOW(emb.Vocab().LookupIDs(Tokenize("prize")))
	if s := SoftCosine(empty, empty, emb, SoftCosineOptions{}); s != 1 {
		t.Errorf("SoftCosine(∅, ∅) = %v, want 1", s)
	}
	if s := SoftCosine(empty, full, emb, SoftCosineOptions{}); s != 0 {
		t.Errorf("SoftCosine(∅, x) = %v, want 0", s)
	}
}

func TestSoftCosineBeatsHardCosineOnSynonyms(t *testing.T) {
	emb := trainTiny(t)
	v := emb.Vocab()
	// Disjoint token sets from the same topic: hard cosine would be 0,
	// soft cosine must be positive.
	a := NewBOW(v.LookupIDs(Tokenize("won prize")))
	b := NewBOW(v.LookupIDs(Tokenize("winner reward")))
	if a.Len() == 0 || b.Len() == 0 {
		t.Fatal("test tokens missing from vocab")
	}
	s := SoftCosine(a, b, emb, SoftCosineOptions{})
	if s <= 0 {
		t.Errorf("soft cosine of same-topic disjoint docs = %v, want > 0", s)
	}
	cross := NewBOW(v.LookupIDs(Tokenize("storm rain")))
	sc := SoftCosine(a, cross, emb, SoftCosineOptions{})
	if s <= sc {
		t.Errorf("same-topic soft cosine %v <= cross-topic %v", s, sc)
	}
}

func TestSoftCosineSymmetricAndBounded(t *testing.T) {
	emb := trainTiny(t)
	v := emb.Vocab()
	texts := []string{
		"claim your prize", "weather storm alert", "winner reward now",
		"rain warning tonight", "congratulations you won",
	}
	bows := make([]BOW, len(texts))
	for i, s := range texts {
		bows[i] = NewBOW(v.LookupIDs(Tokenize(s)))
	}
	for i := range bows {
		for j := range bows {
			sij := SoftCosine(bows[i], bows[j], emb, SoftCosineOptions{})
			sji := SoftCosine(bows[j], bows[i], emb, SoftCosineOptions{})
			if math.Abs(sij-sji) > 1e-9 {
				t.Fatalf("asymmetric: s(%d,%d)=%v s(%d,%d)=%v", i, j, sij, j, i, sji)
			}
			if sij < 0 || sij > 1 {
				t.Fatalf("out of range: s(%d,%d)=%v", i, j, sij)
			}
		}
	}
}

func TestSoftCosineDistance(t *testing.T) {
	emb := trainTiny(t)
	b := NewBOW(emb.Vocab().LookupIDs(Tokenize("prize reward")))
	if d := SoftCosineDistance(b, b, emb, SoftCosineOptions{}); math.Abs(d) > 1e-9 {
		t.Errorf("distance to self = %v, want 0", d)
	}
}

func TestDocVectorNormalized(t *testing.T) {
	emb := trainTiny(t)
	b := NewBOW(emb.Vocab().LookupIDs(Tokenize("claim prize reward winner")))
	v := DocVector(b, emb)
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if math.Abs(norm-1) > 1e-3 {
		t.Errorf("DocVector norm² = %v, want 1", norm)
	}
	if d := CosineDistance(v, v); math.Abs(d) > 1e-3 {
		t.Errorf("CosineDistance(v, v) = %v, want 0", d)
	}
}

func TestDocVectorEmptyIsZero(t *testing.T) {
	emb := trainTiny(t)
	v := DocVector(NewBOW(nil), emb)
	for _, x := range v {
		if x != 0 {
			t.Fatalf("empty doc vector = %v, want zeros", v)
		}
	}
}

func TestSigmoidTable(t *testing.T) {
	sig := buildSigmoidTable()
	if got := sig.at(0); math.Abs(float64(got)-0.5) > 0.02 {
		t.Errorf("sigmoid(0) = %v, want ~0.5", got)
	}
	if got := sig.at(10); got != 1 {
		t.Errorf("sigmoid(10) = %v, want 1", got)
	}
	if got := sig.at(-10); got != 0 {
		t.Errorf("sigmoid(-10) = %v, want 0", got)
	}
	// Monotonic.
	prev := float32(-1)
	for x := float32(-6); x <= 6; x += 0.25 {
		y := sig.at(x)
		if y < prev {
			t.Fatalf("sigmoid not monotonic at %v", x)
		}
		prev = y
	}
}

func TestBOWQuickProperties(t *testing.T) {
	f := func(ids []uint8) bool {
		in := make([]int, len(ids))
		for i, x := range ids {
			in[i] = int(x % 16)
		}
		b := NewBOW(in)
		// Total weight equals input length.
		var total float64
		for _, w := range b.weights {
			total += w
		}
		if total != float64(len(in)) {
			return false
		}
		// Terms sorted and unique.
		for i := 1; i < len(b.ids); i++ {
			if b.ids[i] <= b.ids[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
