package textmine

import "math"

// IDF holds inverse-document-frequency weights for a vocabulary, the
// standard smooth variant: idf(t) = ln((1+N)/(1+df(t))) + 1.
type IDF struct {
	weights []float64
	numDocs int
}

// ComputeIDF builds IDF weights from a corpus of token-id documents over
// a vocabulary of the given size. Ids outside [0, vocabSize) are
// ignored.
func ComputeIDF(docs [][]int, vocabSize int) *IDF {
	df := make([]int, vocabSize)
	for _, doc := range docs {
		seen := make(map[int]bool, len(doc))
		for _, id := range doc {
			if id >= 0 && id < vocabSize && !seen[id] {
				seen[id] = true
				df[id]++
			}
		}
	}
	idf := &IDF{weights: make([]float64, vocabSize), numDocs: len(docs)}
	for t, d := range df {
		idf.weights[t] = math.Log(float64(1+len(docs))/float64(1+d)) + 1
	}
	return idf
}

// Weight returns idf(t), or 0 for out-of-range ids.
func (i *IDF) Weight(t int) float64 {
	if t < 0 || t >= len(i.weights) {
		return 0
	}
	return i.weights[t]
}

// NumDocs returns the corpus size the weights were computed from.
func (i *IDF) NumDocs() int { return i.numDocs }

// NewBOWTFIDF builds a TF-IDF-weighted bag-of-words vector: term counts
// scaled by IDF. Rare, distinctive terms (brand names, scam keywords)
// dominate; boilerplate words fade.
func NewBOWTFIDF(ids []int, idf *IDF) BOW {
	bow := NewBOW(ids)
	for x, id := range bow.ids {
		bow.weights[x] *= idf.Weight(id)
	}
	return bow
}
