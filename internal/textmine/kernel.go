package textmine

import (
	"math"
	"runtime"
	"sync"
)

// DocKernel is the pairwise-kernel layer of the mining pipeline: for a
// fixed document set it precomputes, once, everything the n²/2 pairwise
// soft-cosine calls would otherwise recompute per pair — the token
// bag-of-words vectors, each document's self quad-form norm
// sqrt(aᵀ·S·a), and (when embeddings are supplied) the L2-normalized
// document vectors backing the approximate fast path. After construction
// every exact pairwise call costs exactly one cross quad-form; the
// O(n·t²) norm precomputation replaces O(n²·t²) redundant work.
//
// All methods are safe for concurrent use: construction is the only
// mutation.
type DocKernel struct {
	sim   *TermSimMatrix
	bows  []BOW
	norms []float64
	vecs  [][]float32 // nil when built without embeddings
}

// NewDocKernel builds the kernel over bows using the precomputed
// term-similarity matrix sim. If e is non-nil, per-document vectors
// (DocVector) are also cached for ApproxDistance. Norms and vectors are
// computed in parallel across GOMAXPROCS.
func NewDocKernel(bows []BOW, sim *TermSimMatrix, e *Embeddings) *DocKernel {
	k := &DocKernel{
		sim:   sim,
		bows:  bows,
		norms: make([]float64, len(bows)),
	}
	if e != nil {
		k.vecs = make([][]float32, len(bows))
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(bows) {
		workers = len(bows)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(bows); i += workers {
				k.norms[i] = math.Sqrt(quadFormM(bows[i], bows[i], sim))
				if e != nil {
					k.vecs[i] = DocVector(bows[i], e)
				}
			}
		}(w)
	}
	wg.Wait()
	return k
}

// Len returns the number of documents.
func (k *DocKernel) Len() int { return len(k.bows) }

// BOW returns the i-th document's bag-of-words vector.
func (k *DocKernel) BOW(i int) BOW { return k.bows[i] }

// Norm returns the cached self quad-form norm sqrt(aᵀ·S·a) of document i.
func (k *DocKernel) Norm(i int) float64 { return k.norms[i] }

// Vec returns the cached L2-normalized document vector of document i, or
// nil when the kernel was built without embeddings. The slice aliases
// internal storage.
func (k *DocKernel) Vec(i int) []float32 {
	if k.vecs == nil {
		return nil
	}
	return k.vecs[i]
}

// SoftCosine returns the exact soft cosine similarity of documents i and
// j using the cached norms — bit-identical to SoftCosineWith over the
// same matrix, at a third of the quad-form work.
func (k *DocKernel) SoftCosine(i, j int) float64 {
	return SoftCosineNormed(k.bows[i], k.bows[j], k.sim, k.norms[i], k.norms[j])
}

// Distance returns 1 − SoftCosine(i, j).
func (k *DocKernel) Distance(i, j int) float64 { return 1 - k.SoftCosine(i, j) }

// ApproxDistance returns the plain cosine distance between the cached
// document vectors — the cheap O(dim) stand-in for the exact soft cosine
// used by large-scale screening. It panics if the kernel was built
// without embeddings.
func (k *DocKernel) ApproxDistance(i, j int) float64 {
	return CosineDistance(k.vecs[i], k.vecs[j])
}
