package fleet

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"time"

	"pushadminer/internal/crawler"
	"pushadminer/internal/telemetry"
)

// ErrWorkerDown reports that a shard worker's process is gone: its
// heartbeat failed, or an operation was attempted against a dead
// worker. The coordinator reacts with restart or work-stealing.
var ErrWorkerDown = errors.New("fleet: worker down")

// Transport is the coordinator's view of shard workers. The in-process
// implementation below runs "virtual shards" (the workers live in the
// same process, kills are simulated); the interface is shaped so a
// subprocess/loopback implementation can replace it without touching
// the coordinator: every call names a shard, carries plain serializable
// data, and can fail with ErrWorkerDown.
type Transport interface {
	// Heartbeat checks shard's liveness for one heartbeat cycle.
	// Returns ErrWorkerDown when the worker is (or just became) dead.
	Heartbeat(shard, cycle int) error
	// Seed runs the shard's seeding phase. seg is the coordinator-minted
	// global trace segment for the phase (every Seed/Poll/Dispatch/
	// Click/Finish call carries one): the worker stamps it onto spans it
	// emits during the call, which is what lets the coordinator stitch
	// per-shard span streams back into one globally ordered trace.
	Seed(shard int, seg int64) (*crawler.ShardSeedReport, error)
	// Poll / Dispatch / Click run the shard's pump phases for one tick.
	Poll(shard int, seg int64, now time.Time, final bool) (*crawler.TickPoll, error)
	Dispatch(shard int, seg int64) error
	Click(shard int, seg int64) (*crawler.TickResult, error)
	// Finish returns the shard's end-of-crawl accounting.
	Finish(shard int, seg int64) (*crawler.ShardFinish, error)
	// State snapshots a live shard (final merged checkpoint assembly).
	State(shard int) (*crawler.ShardState, error)
	// Restart revives a dead worker from its last durable state.
	// fellBack reports the primary state file was unusable and the
	// rotated .bak was used.
	Restart(shard int) (fellBack bool, err error)
	// Orphans loads a dead worker's last durable state for adoption.
	Orphans(shard int) (st *crawler.ShardState, fellBack bool, err error)
	// Adopt merges an orphaned shard's state into a live worker.
	Adopt(shard int, st *crawler.ShardState) error
	// Telemetry pulls the shard's current metrics snapshot and health
	// line. The coordinator calls it once per shard per heartbeat cycle
	// and folds the snapshots into the fleet-wide registry at the end of
	// the run, so per-shard instruments survive the shard's process.
	// Fails with ErrWorkerDown for dead workers — the coordinator then
	// keeps serving its last pulled view (that staleness is what the
	// fleet_telemetry_merge_lag_cycles gauge measures).
	Telemetry(shard int) (*ShardTelemetry, error)
	// Spans drains nothing: it returns a copy of every trace span the
	// shard has emitted, segment stamps included, for end-of-run
	// stitching. Spans cannot be pulled incrementally — chain spans are
	// retroactively mutated (EndAt/SetAttr) while their chain is open —
	// so the transport owns each shard's span buffer for the whole run,
	// across worker restarts. (A subprocess transport will need to ship
	// the buffer on worker exit and keep the coordinator's copy per
	// shard; the pull-whole-at-finish contract stays the same.)
	Spans(shard int) ([]telemetry.Span, error)
	// StateSaves reports how many shard-state writes the transport has
	// performed (fleet Report bookkeeping).
	StateSaves() int
}

// ShardTelemetry is one shard's observability pull: its private
// registry's snapshot plus its live health line.
type ShardTelemetry struct {
	Snapshot telemetry.Snapshot   `json:"snapshot"`
	Health   *crawler.ShardHealth `json:"health,omitempty"`
}

// localTransport runs every shard worker in-process. Durability is
// real — shard state is written to Dir after every tick that changed
// something — and kills are simulated by dropping the in-memory worker,
// so restart-with-resume exercises the exact deserialization path a
// subprocess transport would.
//
// Kills happen only inside Heartbeat, i.e. at tick boundaries, after
// the previous tick's state save. That models a crash-consistent
// worker: a real subprocess killed mid-poll would lose push messages
// the service had already handed over, which no checkpoint can rebuild
// — the subprocess transport will need poll acknowledgement before
// drain; the in-process fleet keeps the boundary-kill model and
// documents it (DESIGN.md, "Fleet architecture & failure model").
type localTransport struct {
	ctx     context.Context
	cfg     crawler.Config
	dir     string
	durable bool
	plan    func(workerID string, cycle int) bool
	met     *fleetMetrics

	workers []*crawler.ShardWorker
	names   []string
	dead    []bool

	// Per-shard observability plane: each worker gets a private
	// registry and tracer (nil when the fleet's are nil — disabled
	// stays free), wired through cfgs[k]. Both are transport-owned and
	// survive worker kills and restarts: they stand in for the pull
	// stream a subprocess transport would maintain coordinator-side
	// (per-heartbeat snapshot pulls, span shipping on worker exit), so
	// no counter or span is lost when the in-memory worker is dropped.
	cfgs    []crawler.Config
	regs    []*telemetry.Registry
	tracers []*telemetry.Tracer

	saves atomic.Int64
}

func newLocalTransport(ctx context.Context, cfg crawler.Config, names []string, seedsByShard [][]crawler.ShardSeed, dir string, durable bool, plan func(string, int) bool, met *fleetMetrics) (*localTransport, error) {
	t := &localTransport{
		ctx:     ctx,
		cfg:     cfg,
		dir:     dir,
		durable: durable,
		plan:    plan,
		met:     met,
		workers: make([]*crawler.ShardWorker, len(names)),
		names:   names,
		dead:    make([]bool, len(names)),
		cfgs:    make([]crawler.Config, len(names)),
		regs:    make([]*telemetry.Registry, len(names)),
		tracers: make([]*telemetry.Tracer, len(names)),
	}
	for k := range names {
		shardCfg := cfg
		if cfg.Metrics != nil {
			t.regs[k] = telemetry.New()
			shardCfg.Metrics = t.regs[k]
		}
		if cfg.Tracer != nil {
			t.tracers[k] = telemetry.NewTracer(nil)
			shardCfg.Tracer = t.tracers[k]
		}
		t.cfgs[k] = shardCfg
		w, err := crawler.NewShardWorker(ctx, shardCfg, k, seedsByShard[k])
		if err != nil {
			return nil, err
		}
		t.workers[k] = w
	}
	return t, nil
}

// setSeg stamps the coordinator's global phase segment onto the shard's
// tracer before a phase runs. Nil-safe (tracing disabled).
func (t *localTransport) setSeg(shard int, seg int64) {
	t.tracers[shard].SetSegment(seg)
}

// statePath names shard k's durable state file.
func (t *localTransport) statePath(shard int) string {
	return filepath.Join(t.dir, fmt.Sprintf("shard-%d.json", shard))
}

// worker returns the live worker for shard, or ErrWorkerDown.
func (t *localTransport) worker(shard int) (*crawler.ShardWorker, error) {
	if shard < 0 || shard >= len(t.workers) {
		return nil, fmt.Errorf("fleet: no shard %d", shard)
	}
	if t.dead[shard] || t.workers[shard] == nil {
		return nil, fmt.Errorf("fleet: shard %d: %w", shard, ErrWorkerDown)
	}
	return t.workers[shard], nil
}

func (t *localTransport) Heartbeat(shard, cycle int) error {
	start := time.Now()
	defer func() {
		t.met.heartbeatSeconds.Observe(time.Since(start).Seconds())
	}()
	t.met.heartbeats.Inc()
	w, err := t.worker(shard)
	if err != nil {
		return err
	}
	if t.plan != nil && t.plan(t.names[shard], cycle) {
		// The process dies: all in-memory state is gone. Only the
		// durable state file survives.
		_ = w
		t.workers[shard] = nil
		t.dead[shard] = true
		return fmt.Errorf("fleet: shard %d killed at heartbeat cycle %d: %w", shard, cycle, ErrWorkerDown)
	}
	return nil
}

// maybeSave persists the worker's state if it changed this tick.
func (t *localTransport) maybeSave(shard int, w *crawler.ShardWorker) error {
	if !t.durable || !w.TakeDirty() {
		return nil
	}
	st, err := w.State()
	if err != nil {
		return err
	}
	if err := crawler.SaveShardState(t.statePath(shard), st); err != nil {
		// A failed save means a later restart would silently resume
		// from stale state and break parity: fail loud instead.
		return err
	}
	t.saves.Add(1)
	t.met.stateSaves.Inc()
	return nil
}

func (t *localTransport) Seed(shard int, seg int64) (*crawler.ShardSeedReport, error) {
	w, err := t.worker(shard)
	if err != nil {
		return nil, err
	}
	t.setSeg(shard, seg)
	rep, err := w.Seed()
	if err != nil {
		return nil, err
	}
	return rep, t.maybeSave(shard, w)
}

func (t *localTransport) Poll(shard int, seg int64, now time.Time, final bool) (*crawler.TickPoll, error) {
	w, err := t.worker(shard)
	if err != nil {
		return nil, err
	}
	t.setSeg(shard, seg)
	return w.Poll(now, final)
}

func (t *localTransport) Dispatch(shard int, seg int64) error {
	w, err := t.worker(shard)
	if err != nil {
		return err
	}
	t.setSeg(shard, seg)
	return w.Dispatch()
}

func (t *localTransport) Click(shard int, seg int64) (*crawler.TickResult, error) {
	w, err := t.worker(shard)
	if err != nil {
		return nil, err
	}
	t.setSeg(shard, seg)
	res, err := w.Click()
	if err != nil {
		return nil, err
	}
	return res, t.maybeSave(shard, w)
}

func (t *localTransport) Finish(shard int, seg int64) (*crawler.ShardFinish, error) {
	w, err := t.worker(shard)
	if err != nil {
		return nil, err
	}
	t.setSeg(shard, seg)
	return w.Finish()
}

func (t *localTransport) Telemetry(shard int) (*ShardTelemetry, error) {
	w, err := t.worker(shard)
	if err != nil {
		return nil, err
	}
	return &ShardTelemetry{Snapshot: t.regs[shard].Snapshot(), Health: w.Health()}, nil
}

func (t *localTransport) Spans(shard int) ([]telemetry.Span, error) {
	if shard < 0 || shard >= len(t.tracers) {
		return nil, fmt.Errorf("fleet: no shard %d", shard)
	}
	// Deliberately no liveness check: the span buffer is
	// transport-owned and outlives the worker (see the interface doc),
	// so a lost shard's chains still reach the stitched trace.
	return t.tracers[shard].Spans(), nil
}

func (t *localTransport) State(shard int) (*crawler.ShardState, error) {
	w, err := t.worker(shard)
	if err != nil {
		return nil, err
	}
	return w.State()
}

func (t *localTransport) Restart(shard int) (bool, error) {
	if !t.durable {
		return false, fmt.Errorf("fleet: shard %d: restart without durable state", shard)
	}
	st, fellBack, err := crawler.LoadShardState(t.statePath(shard))
	if err != nil {
		return false, fmt.Errorf("fleet: restart shard %d: %w", shard, err)
	}
	// Restore with the shard's own config so the revived worker keeps
	// feeding the same transport-owned registry and tracer.
	w, err := crawler.RestoreShardWorker(t.ctx, t.cfgs[shard], st)
	if err != nil {
		return fellBack, fmt.Errorf("fleet: restart shard %d: %w", shard, err)
	}
	t.workers[shard] = w
	t.dead[shard] = false
	return fellBack, nil
}

func (t *localTransport) Orphans(shard int) (*crawler.ShardState, bool, error) {
	if !t.durable {
		return nil, false, fmt.Errorf("fleet: shard %d: no durable state to adopt", shard)
	}
	st, fellBack, err := crawler.LoadShardState(t.statePath(shard))
	if err != nil {
		return nil, false, fmt.Errorf("fleet: orphans of shard %d: %w", shard, err)
	}
	return st, fellBack, nil
}

func (t *localTransport) Adopt(shard int, st *crawler.ShardState) error {
	w, err := t.worker(shard)
	if err != nil {
		return err
	}
	if err := w.Adopt(st); err != nil {
		return err
	}
	return t.maybeSave(shard, w)
}

func (t *localTransport) StateSaves() int { return int(t.saves.Load()) }
