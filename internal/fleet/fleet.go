// Package fleet shards the WPN crawl across a coordinator and N shard
// workers with a self-healing control plane. Each shard owns a disjoint
// subset of the containers — its own browsers, per-container circuit
// breakers, pump-worker pool, suspension heap, and durable state file —
// while the coordinator owns everything global: the simulated clock,
// the push scheduler, record-ID minting, and the serial id-order merge
// of shard results.
//
// The control plane heartbeats every worker at tick boundaries, detects
// dead workers (driven by a chaos crash plan in tests), restarts them
// from their last saved shard state a bounded number of times, and when
// a worker's restart budget is exhausted rebalances its orphaned
// containers onto the least-loaded live worker (work stealing). Because
// workers only die at tick boundaries — after their state save — and
// restore is pure deserialization, a fleet run at ANY shard count,
// under ANY kill schedule, produces byte-identical records and an
// identical Degradation report to the single-process crawl. The fleet
// parity matrix test pins exactly that.
//
// Workers run in-process behind the Transport interface ("virtual
// shards"); a subprocess/loopback transport can replace localTransport
// without touching the coordinator.
package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"pushadminer/internal/crawler"
	"pushadminer/internal/telemetry"
)

// Config configures a fleet crawl.
type Config struct {
	// Crawl is the shared crawl configuration every shard worker and the
	// coordinator use. Crawl.Resume is rejected: shard state files are
	// the fleet's durable layer (Crawl.CheckpointPath still works — the
	// coordinator writes one merged checkpoint at the end).
	Crawl crawler.Config
	// Shards is the number of shard workers. <= 0 defaults to 1.
	Shards int
	// Heartbeat is the simulated-time liveness-check period. Worker
	// crash plans are consulted once per elapsed heartbeat cycle, at
	// tick boundaries. <= 0 defaults to 6h.
	Heartbeat time.Duration
	// MaxRestarts bounds restart-with-resume attempts per worker; after
	// the budget a dead worker's containers are stolen by a live one.
	// 0 defaults to 2; negative means never restart (steal immediately).
	MaxRestarts int
	// Dir is where shard state files (shard-<k>.json) are written.
	// Empty with a WorkerCrashPlan set uses a private temp directory;
	// empty without one disables shard durability entirely.
	Dir string
	// WorkerCrashPlan, if non-nil, is asked at each worker heartbeat
	// whether that worker's process dies now. Wire
	// webeco.Ecosystem.WorkerCrashPlan here to drive it from a chaos
	// profile ("workercrashes=F").
	WorkerCrashPlan func(workerID string, cycle int) bool
	// LedgerPath, if set, writes the fleet event timeline — every
	// control-plane lifecycle event, simclock-timestamped — as JSONL at
	// the end of the run. The ledger is deterministic under a fixed
	// chaos plan: two identical runs produce identical ledger bytes.
	LedgerPath string
}

// Fleet event-ledger kinds, in the order a shard's life emits them.
const (
	EvShardStarted    = "shard_started"    // seeding done, container count settled
	EvHeartbeatMissed = "heartbeat_missed" // liveness check got no answer
	EvKillDetected    = "kill_detected"    // the miss was a worker death
	EvRestart         = "restart"          // revived from durable shard state
	EvWorkerLost      = "worker_lost"      // restart budget exhausted
	EvOrphanSteal     = "orphan_steal"     // dead worker's state loaded for rebalance
	EvAdopt           = "adopt"            // a live worker adopted the orphans
	EvMerge           = "merge"            // a tick's records merged (records > 0)
)

// Event is one line of the fleet event timeline: a simclock-timestamped
// control-plane lifecycle event. Seq is the emission order (the ledger
// is written by the coordinator's serial path, so Seq is also causal
// order); Shard is -1 for fleet-wide events.
type Event struct {
	Seq   int               `json:"seq"`
	Time  time.Time         `json:"time"`
	Kind  string            `json:"kind"`
	Shard int               `json:"shard"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// WriteLedger writes the event timeline as JSONL, one event per line.
func WriteLedger(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fleet: ledger: %w", err)
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			f.Close()
			return fmt.Errorf("fleet: ledger: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("fleet: ledger: %w", err)
	}
	return f.Close()
}

// ReadLedger parses an event-ledger JSONL file.
func ReadLedger(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: ledger: %w", err)
	}
	defer f.Close()
	var out []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("fleet: ledger: %w", err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: ledger: %w", err)
	}
	return out, nil
}

// WorkerStatus is one worker's line in the fleet report.
type WorkerStatus struct {
	Shard int `json:"shard"`
	// Containers is how many containers the worker owned at the end
	// (seeded survivors plus adoptions; zero for lost workers).
	Containers int  `json:"containers"`
	Restarts   int  `json:"restarts,omitempty"`
	Adopted    int  `json:"adopted,omitempty"`
	Lost       bool `json:"lost,omitempty"`
}

// Report is the fleet run's control-plane accounting, alongside the
// crawl Result (which is byte-identical to a single-process run).
type Report struct {
	Shards     int            `json:"shards"`
	Workers    []WorkerStatus `json:"workers"`
	Heartbeats int            `json:"heartbeats"`
	// Kills counts worker deaths; Restarts successful revivals;
	// WorkersLost workers whose restart budget ran out.
	Kills       int `json:"kills,omitempty"`
	Restarts    int `json:"restarts,omitempty"`
	WorkersLost int `json:"workers_lost,omitempty"`
	// ContainersStolen counts containers rebalanced off dead workers.
	ContainersStolen int `json:"containers_stolen,omitempty"`
	// StateSaves counts shard-state writes; StateFallbacks counts
	// restores that used a rotated .bak because the primary state file
	// was unreadable.
	StateSaves     int `json:"state_saves,omitempty"`
	StateFallbacks int `json:"state_fallbacks,omitempty"`
	// TelemetryPulls counts per-shard snapshot pulls over the transport
	// (one per shard per heartbeat cycle, plus the final absorb pull);
	// StitchedSpans counts trace spans reassembled from shard tracers.
	TelemetryPulls int `json:"telemetry_pulls,omitempty"`
	StitchedSpans  int `json:"stitched_spans,omitempty"`

	// Events is the fleet event timeline, in emission order (also
	// written as JSONL when Config.LedgerPath is set). Excluded from
	// the report's JSON form — the ledger file is the export format.
	Events []Event `json:"-"`
	// ShardSnapshots[k] is shard k's final telemetry snapshot as pulled
	// for the end-of-run absorb; Coordinator is the coordinator's own
	// registry snapshot captured immediately before the absorb. The
	// exact-merge contract — final registry state equals Coordinator
	// merged with every ShardSnapshot — is pinned by the fleet parity
	// matrix. Test/introspection surface, not serialized.
	ShardSnapshots []telemetry.Snapshot `json:"-"`
	Coordinator    telemetry.Snapshot   `json:"-"`
}

// fleetMetrics holds the control plane's preresolved instruments.
// All-nil (telemetry disabled) no-ops per the telemetry contract.
type fleetMetrics struct {
	shards           *telemetry.Gauge
	liveShards       *telemetry.Gauge
	heartbeats       *telemetry.Counter
	kills            *telemetry.Counter
	restarts         *telemetry.Counter
	workersLost      *telemetry.Counter
	containersStolen *telemetry.Counter
	stateSaves       *telemetry.Counter
	stateFallbacks   *telemetry.Counter
	heartbeatSeconds *telemetry.Histogram
	telemetryPulls   *telemetry.Counter
	mergeLag         *telemetry.Gauge
	traceSpans       *telemetry.Counter
	events           *telemetry.Family
}

func newFleetMetrics(reg *telemetry.Registry) *fleetMetrics {
	if reg == nil {
		return &fleetMetrics{}
	}
	return &fleetMetrics{
		shards:           reg.Gauge("fleet_shards"),
		liveShards:       reg.Gauge("fleet_live_shards"),
		heartbeats:       reg.Counter("fleet_heartbeats"),
		kills:            reg.Counter("fleet_worker_kills"),
		restarts:         reg.Counter("fleet_worker_restarts"),
		workersLost:      reg.Counter("fleet_workers_lost"),
		containersStolen: reg.Counter("fleet_containers_stolen"),
		stateSaves:       reg.Counter("fleet_shard_state_saves"),
		stateFallbacks:   reg.Counter("fleet_shard_state_fallbacks"),
		heartbeatSeconds: reg.Histogram("fleet_heartbeat_seconds", telemetry.LatencyBuckets),
		telemetryPulls:   reg.Counter("fleet_telemetry_pulls"),
		mergeLag:         reg.Gauge("fleet_telemetry_merge_lag_cycles"),
		traceSpans:       reg.Counter("fleet_trace_spans"),
		events:           reg.Family("fleet_events", "kind"),
	}
}

// ShardStatus is one worker's row in the live /fleetz view.
type ShardStatus struct {
	Shard      int  `json:"shard"`
	Alive      bool `json:"alive"`
	Containers int  `json:"containers"`
	Queued     int  `json:"queued"`
	Collected  int  `json:"collected"`
	Dead       int  `json:"dead_containers,omitempty"`
	Restarts   int  `json:"restarts"`
	// RestartBudget is how many restarts remain before the worker's
	// containers are stolen.
	RestartBudget int  `json:"restart_budget"`
	Adopted       int  `json:"adopted,omitempty"`
	Lost          bool `json:"lost,omitempty"`
	// Breakers counts the shard's per-container host circuits by state
	// ("open" spiking fleet-wide is the first symptom of an outage).
	Breakers map[string]int `json:"breakers,omitempty"`
	// MergeLagCycles is how many heartbeat cycles behind the
	// coordinator's telemetry view of this shard is (0 = current).
	MergeLagCycles int `json:"merge_lag_cycles"`
}

// FleetStatus is the live introspection snapshot served at /fleetz:
// built by the coordinator on its serial path after every heartbeat
// sweep and merge, published atomically, and rendered as JSON or (via
// String) a one-screen text dashboard.
type FleetStatus struct {
	Device     string        `json:"device"`
	Shards     int           `json:"shards"`
	LiveShards int           `json:"live_shards"`
	Heartbeats int           `json:"heartbeats"`
	Kills      int           `json:"kills"`
	Restarts   int           `json:"restarts"`
	Lost       int           `json:"workers_lost"`
	Stolen     int           `json:"containers_stolen"`
	Records    int           `json:"records"`
	Events     int           `json:"events"`
	SimTime    time.Time     `json:"sim_time"`
	WindowEnd  time.Time     `json:"window_end"`
	Done       bool          `json:"done"`
	Workers    []ShardStatus `json:"workers"`
}

// String renders the status as the one-screen dashboard wpnstat shows.
func (s FleetStatus) String() string {
	var b strings.Builder
	state := "running"
	if s.Done {
		state = "done"
	}
	fmt.Fprintf(&b, "fleet %-7s  %s  shards %d/%d live  sim %s / end %s\n",
		s.Device, state, s.LiveShards, s.Shards,
		s.SimTime.Format("2006-01-02 15:04"), s.WindowEnd.Format("2006-01-02 15:04"))
	fmt.Fprintf(&b, "heartbeats %-6d kills %-4d restarts %-4d lost %-3d stolen %-4d records %-6d events %d\n",
		s.Heartbeats, s.Kills, s.Restarts, s.Lost, s.Stolen, s.Records, s.Events)
	fmt.Fprintf(&b, "%-6s %-6s %-5s %-6s %-5s %-9s %-8s %-4s %s\n",
		"shard", "state", "ctrs", "queued", "coll", "restarts", "adopted", "lag", "breakers")
	for _, w := range s.Workers {
		state := "live"
		if w.Lost {
			state = "lost"
		} else if !w.Alive {
			state = "down"
		}
		brk := ""
		for _, st := range []string{"closed", "half-open", "open"} {
			if n := w.Breakers[st]; n > 0 {
				if brk != "" {
					brk += " "
				}
				brk += fmt.Sprintf("%s:%d", st, n)
			}
		}
		fmt.Fprintf(&b, "%-6d %-6s %-5d %-6d %-5d %d/%-7d %-8d %-4d %s\n",
			w.Shard, state, w.Containers, w.Queued, w.Collected,
			w.Restarts, w.Restarts+w.RestartBudget, w.Adopted, w.MergeLagCycles, brk)
	}
	return b.String()
}

// Run crawls the seed URLs with a sharded fleet and returns the merged
// result plus the control plane's report. Cancelling ctx stops the
// crawl at the next tick boundary, like the single-process crawler.
func Run(ctx context.Context, cfg Config, seeds []string) (*crawler.Result, *Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 6 * time.Hour
	}
	switch {
	case cfg.MaxRestarts == 0:
		cfg.MaxRestarts = 2
	case cfg.MaxRestarts < 0:
		cfg.MaxRestarts = 0
	}
	crawlCfg := cfg.Crawl.WithDefaults()
	if crawlCfg.Clock == nil || crawlCfg.NewClient == nil || crawlCfg.Driver == nil {
		return nil, nil, fmt.Errorf("fleet: Crawl.Clock, Crawl.NewClient and Crawl.Driver are required")
	}
	if crawlCfg.Resume {
		return nil, nil, fmt.Errorf("fleet: checkpoint resume is not supported with shards (shard state files are the fleet's durable layer)")
	}

	// Shard durability: required the moment workers can die. A crash
	// plan with no Dir gets a private temp directory.
	durable := cfg.WorkerCrashPlan != nil || cfg.Dir != ""
	dir := cfg.Dir
	if durable && dir == "" {
		d, err := os.MkdirTemp("", "wpnfleet-")
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: state dir: %w", err)
		}
		defer os.RemoveAll(d)
		dir = d
	} else if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("fleet: state dir: %w", err)
		}
	}

	// Round-robin shard assignment over the global seed list. Seeds
	// carry their global indices, so container ids (index+1), and with
	// them the merge order, are independent of the shard count.
	seedsByShard := make([][]crawler.ShardSeed, cfg.Shards)
	for i, u := range seeds {
		k := i % cfg.Shards
		seedsByShard[k] = append(seedsByShard[k], crawler.ShardSeed{Index: i, URL: u})
	}
	names := make([]string, cfg.Shards)
	for k := range names {
		// The crash-plan identity: stable per (shard, device), distinct
		// from container clientIDs so worker draws and container draws
		// never collide.
		names[k] = fmt.Sprintf("shard-%d#%s", k, crawlCfg.Device)
	}

	met := newFleetMetrics(crawlCfg.Metrics)
	tr, err := newLocalTransport(ctx, crawlCfg, names, seedsByShard, dir, durable, cfg.WorkerCrashPlan, met)
	if err != nil {
		return nil, nil, err
	}

	co := newCoordinator(ctx, cfg, crawlCfg, tr, met)
	runErr := co.run(seeds)

	co.report.StateSaves = tr.StateSaves()
	for k := range co.report.Workers {
		co.report.Workers[k].Containers = co.owned[k]
	}
	if runErr == nil {
		runErr = ctx.Err()
	}
	return co.res, co.report, runErr
}
