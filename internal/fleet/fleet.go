// Package fleet shards the WPN crawl across a coordinator and N shard
// workers with a self-healing control plane. Each shard owns a disjoint
// subset of the containers — its own browsers, per-container circuit
// breakers, pump-worker pool, suspension heap, and durable state file —
// while the coordinator owns everything global: the simulated clock,
// the push scheduler, record-ID minting, and the serial id-order merge
// of shard results.
//
// The control plane heartbeats every worker at tick boundaries, detects
// dead workers (driven by a chaos crash plan in tests), restarts them
// from their last saved shard state a bounded number of times, and when
// a worker's restart budget is exhausted rebalances its orphaned
// containers onto the least-loaded live worker (work stealing). Because
// workers only die at tick boundaries — after their state save — and
// restore is pure deserialization, a fleet run at ANY shard count,
// under ANY kill schedule, produces byte-identical records and an
// identical Degradation report to the single-process crawl. The fleet
// parity matrix test pins exactly that.
//
// Workers run in-process behind the Transport interface ("virtual
// shards"); a subprocess/loopback transport can replace localTransport
// without touching the coordinator.
package fleet

import (
	"context"
	"fmt"
	"os"
	"time"

	"pushadminer/internal/crawler"
	"pushadminer/internal/telemetry"
)

// Config configures a fleet crawl.
type Config struct {
	// Crawl is the shared crawl configuration every shard worker and the
	// coordinator use. Crawl.Resume is rejected: shard state files are
	// the fleet's durable layer (Crawl.CheckpointPath still works — the
	// coordinator writes one merged checkpoint at the end).
	Crawl crawler.Config
	// Shards is the number of shard workers. <= 0 defaults to 1.
	Shards int
	// Heartbeat is the simulated-time liveness-check period. Worker
	// crash plans are consulted once per elapsed heartbeat cycle, at
	// tick boundaries. <= 0 defaults to 6h.
	Heartbeat time.Duration
	// MaxRestarts bounds restart-with-resume attempts per worker; after
	// the budget a dead worker's containers are stolen by a live one.
	// 0 defaults to 2; negative means never restart (steal immediately).
	MaxRestarts int
	// Dir is where shard state files (shard-<k>.json) are written.
	// Empty with a WorkerCrashPlan set uses a private temp directory;
	// empty without one disables shard durability entirely.
	Dir string
	// WorkerCrashPlan, if non-nil, is asked at each worker heartbeat
	// whether that worker's process dies now. Wire
	// webeco.Ecosystem.WorkerCrashPlan here to drive it from a chaos
	// profile ("workercrashes=F").
	WorkerCrashPlan func(workerID string, cycle int) bool
}

// WorkerStatus is one worker's line in the fleet report.
type WorkerStatus struct {
	Shard int `json:"shard"`
	// Containers is how many containers the worker owned at the end
	// (seeded survivors plus adoptions; zero for lost workers).
	Containers int  `json:"containers"`
	Restarts   int  `json:"restarts,omitempty"`
	Adopted    int  `json:"adopted,omitempty"`
	Lost       bool `json:"lost,omitempty"`
}

// Report is the fleet run's control-plane accounting, alongside the
// crawl Result (which is byte-identical to a single-process run).
type Report struct {
	Shards     int            `json:"shards"`
	Workers    []WorkerStatus `json:"workers"`
	Heartbeats int            `json:"heartbeats"`
	// Kills counts worker deaths; Restarts successful revivals;
	// WorkersLost workers whose restart budget ran out.
	Kills       int `json:"kills,omitempty"`
	Restarts    int `json:"restarts,omitempty"`
	WorkersLost int `json:"workers_lost,omitempty"`
	// ContainersStolen counts containers rebalanced off dead workers.
	ContainersStolen int `json:"containers_stolen,omitempty"`
	// StateSaves counts shard-state writes; StateFallbacks counts
	// restores that used a rotated .bak because the primary state file
	// was unreadable.
	StateSaves     int `json:"state_saves,omitempty"`
	StateFallbacks int `json:"state_fallbacks,omitempty"`
}

// fleetMetrics holds the control plane's preresolved instruments.
// All-nil (telemetry disabled) no-ops per the telemetry contract.
type fleetMetrics struct {
	shards           *telemetry.Gauge
	liveShards       *telemetry.Gauge
	heartbeats       *telemetry.Counter
	kills            *telemetry.Counter
	restarts         *telemetry.Counter
	workersLost      *telemetry.Counter
	containersStolen *telemetry.Counter
	stateSaves       *telemetry.Counter
	stateFallbacks   *telemetry.Counter
	heartbeatSeconds *telemetry.Histogram
}

func newFleetMetrics(reg *telemetry.Registry) *fleetMetrics {
	if reg == nil {
		return &fleetMetrics{}
	}
	return &fleetMetrics{
		shards:           reg.Gauge("fleet_shards"),
		liveShards:       reg.Gauge("fleet_live_shards"),
		heartbeats:       reg.Counter("fleet_heartbeats"),
		kills:            reg.Counter("fleet_worker_kills"),
		restarts:         reg.Counter("fleet_worker_restarts"),
		workersLost:      reg.Counter("fleet_workers_lost"),
		containersStolen: reg.Counter("fleet_containers_stolen"),
		stateSaves:       reg.Counter("fleet_shard_state_saves"),
		stateFallbacks:   reg.Counter("fleet_shard_state_fallbacks"),
		heartbeatSeconds: reg.Histogram("fleet_heartbeat_seconds", telemetry.LatencyBuckets),
	}
}

// Run crawls the seed URLs with a sharded fleet and returns the merged
// result plus the control plane's report. Cancelling ctx stops the
// crawl at the next tick boundary, like the single-process crawler.
func Run(ctx context.Context, cfg Config, seeds []string) (*crawler.Result, *Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 6 * time.Hour
	}
	switch {
	case cfg.MaxRestarts == 0:
		cfg.MaxRestarts = 2
	case cfg.MaxRestarts < 0:
		cfg.MaxRestarts = 0
	}
	crawlCfg := cfg.Crawl.WithDefaults()
	if crawlCfg.Clock == nil || crawlCfg.NewClient == nil || crawlCfg.Driver == nil {
		return nil, nil, fmt.Errorf("fleet: Crawl.Clock, Crawl.NewClient and Crawl.Driver are required")
	}
	if crawlCfg.Resume {
		return nil, nil, fmt.Errorf("fleet: checkpoint resume is not supported with shards (shard state files are the fleet's durable layer)")
	}

	// Shard durability: required the moment workers can die. A crash
	// plan with no Dir gets a private temp directory.
	durable := cfg.WorkerCrashPlan != nil || cfg.Dir != ""
	dir := cfg.Dir
	if durable && dir == "" {
		d, err := os.MkdirTemp("", "wpnfleet-")
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: state dir: %w", err)
		}
		defer os.RemoveAll(d)
		dir = d
	} else if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("fleet: state dir: %w", err)
		}
	}

	// Round-robin shard assignment over the global seed list. Seeds
	// carry their global indices, so container ids (index+1), and with
	// them the merge order, are independent of the shard count.
	seedsByShard := make([][]crawler.ShardSeed, cfg.Shards)
	for i, u := range seeds {
		k := i % cfg.Shards
		seedsByShard[k] = append(seedsByShard[k], crawler.ShardSeed{Index: i, URL: u})
	}
	names := make([]string, cfg.Shards)
	for k := range names {
		// The crash-plan identity: stable per (shard, device), distinct
		// from container clientIDs so worker draws and container draws
		// never collide.
		names[k] = fmt.Sprintf("shard-%d#%s", k, crawlCfg.Device)
	}

	met := newFleetMetrics(crawlCfg.Metrics)
	tr, err := newLocalTransport(ctx, crawlCfg, names, seedsByShard, dir, durable, cfg.WorkerCrashPlan, met)
	if err != nil {
		return nil, nil, err
	}

	co := newCoordinator(ctx, cfg, crawlCfg, tr, met)
	runErr := co.run(seeds)

	co.report.StateSaves = tr.StateSaves()
	for k := range co.report.Workers {
		co.report.Workers[k].Containers = co.owned[k]
	}
	if runErr == nil {
		runErr = ctx.Err()
	}
	return co.res, co.report, runErr
}
