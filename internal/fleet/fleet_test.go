package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"pushadminer/internal/browser"
	"pushadminer/internal/chaos"
	"pushadminer/internal/crawler"
	"pushadminer/internal/telemetry"
	"pushadminer/internal/webeco"
)

// newEco builds the standard test ecosystem at the standard test scale.
func newEco(t *testing.T, seed int64, prof *chaos.Profile) *webeco.Ecosystem {
	t.Helper()
	eco, err := webeco.New(webeco.Config{Seed: seed, Scale: 0.002, Chaos: prof})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eco.Close() })
	return eco
}

// crawlConfig wires a crawl config to an ecosystem, mirroring the
// crawler package's test setup.
func crawlConfig(eco *webeco.Ecosystem, mod func(*crawler.Config)) crawler.Config {
	cfg := crawler.Config{
		Clock:            eco.Clock,
		NewClient:        func() *http.Client { return eco.Net.ClientNoRedirect() },
		Driver:           eco,
		Pending:          eco.Push,
		Device:           browser.Desktop,
		CollectionWindow: 7 * 24 * time.Hour,
		CrashPlan:        eco.CrashPlan(),
		FaultCounts:      eco.FaultCounts,
	}
	if mod != nil {
		mod(&cfg)
	}
	return cfg
}

// chaosProfile is the acceptance fault mix plus worker kills: the fleet
// must shrug off connection resets, 503 bursts, a push outage,
// container crashes AND whole shard workers dying.
func chaosProfile(workerCrashes float64) *chaos.Profile {
	p, ok := chaos.Preset("acceptance")
	if !ok {
		panic("acceptance preset missing")
	}
	p.Seed = 5
	p.WorkerCrashFraction = workerCrashes
	return &p
}

// baselineRun is the ground truth: the single-process crawl.
func baselineRun(t *testing.T, seed int64, prof *chaos.Profile) []byte {
	t.Helper()
	eco := newEco(t, seed, prof)
	c, err := crawler.New(crawlConfig(eco, nil))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("baseline collected no records; parity test is vacuous")
	}
	return marshal(t, res)
}

func fleetRun(t *testing.T, seed int64, prof *chaos.Profile, shards int) ([]byte, *Report) {
	t.Helper()
	eco := newEco(t, seed, prof)
	res, rep, err := Run(context.Background(), Config{
		Crawl:           crawlConfig(eco, nil),
		Shards:          shards,
		WorkerCrashPlan: eco.WorkerCrashPlan(),
		Dir:             t.TempDir(),
	}, eco.SeedURLs())
	if err != nil {
		t.Fatalf("fleet run (shards=%d): %v", shards, err)
	}
	return marshal(t, res), rep
}

func marshal(t *testing.T, res *crawler.Result) []byte {
	t.Helper()
	b, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFleetParityMatrix is the tentpole contract: a fleet run at any
// shard count, with any kill schedule, converges to the single-process
// result — byte-identical records, URL lists, and Degradation report.
func TestFleetParityMatrix(t *testing.T) {
	for _, tc := range []struct {
		name   string
		seed   int64
		prof   func() *chaos.Profile
		shards []int
	}{
		// Kill-free: sharding alone must not move a byte.
		{"seed11", 11, func() *chaos.Profile { return nil }, []int{1, 2, 4}},
		// Full chaos plus worker kills: each worker sees ~28 heartbeat
		// cycles at the 6h default over 7 days, so a 5% kill fraction
		// exercises restarts (and, depending on the draw, stealing).
		{"seed11/chaos", 11, func() *chaos.Profile { return chaosProfile(0.05) }, []int{2, 4}},
		{"seed23/chaos", 23, func() *chaos.Profile { return chaosProfile(0.05) }, []int{3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := baselineRun(t, tc.seed, tc.prof())
			for _, shards := range tc.shards {
				got, rep := fleetRun(t, tc.seed, tc.prof(), shards)
				if !bytes.Equal(want, got) {
					t.Errorf("shards=%d diverges from single-process baseline (%d vs %d bytes):\n%s",
						shards, len(want), len(got), firstDiff(want, got))
				}
				t.Logf("shards=%d kills=%d restarts=%d lost=%d stolen=%d saves=%d",
					shards, rep.Kills, rep.Restarts, rep.WorkersLost, rep.ContainersStolen, rep.StateSaves)
			}
		})
	}
}

// TestFleetRestartsUnderKills pins that the chaos kill plan actually
// bites in the matrix scenario — otherwise the parity cases above would
// silently test nothing about the control plane.
func TestFleetRestartsUnderKills(t *testing.T) {
	_, rep := fleetRun(t, 11, chaosProfile(0.05), 4)
	if rep.Kills == 0 {
		t.Fatal("no worker kills under workercrashes=0.05; control plane untested")
	}
	if rep.Restarts == 0 {
		t.Error("kills happened but no restarts")
	}
	if rep.StateSaves == 0 {
		t.Error("durable fleet run wrote no shard state")
	}
	if rep.Heartbeats == 0 {
		t.Error("no heartbeats recorded")
	}
}

// TestFleetWorkStealing kills one worker with no restart budget: its
// containers must be adopted by a live shard and the merged result must
// still match the single-process baseline byte for byte.
func TestFleetWorkStealing(t *testing.T) {
	want := baselineRun(t, 11, nil)

	eco := newEco(t, 11, nil)
	res, rep, err := Run(context.Background(), Config{
		Crawl:       crawlConfig(eco, nil),
		Shards:      4,
		MaxRestarts: -1, // never restart: first kill orphans the shard
		Dir:         t.TempDir(),
		WorkerCrashPlan: func(workerID string, cycle int) bool {
			return strings.HasPrefix(workerID, "shard-1#") && cycle == 2
		},
	}, eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorkersLost != 1 {
		t.Fatalf("WorkersLost = %d, want 1 (report: %+v)", rep.WorkersLost, rep)
	}
	if rep.Restarts != 0 {
		t.Errorf("Restarts = %d, want 0 with MaxRestarts=-1", rep.Restarts)
	}
	if rep.ContainersStolen == 0 {
		t.Error("lost worker's containers were not stolen")
	}
	if !rep.Workers[1].Lost {
		t.Errorf("worker 1 not marked lost: %+v", rep.Workers)
	}
	adopted := 0
	for _, w := range rep.Workers {
		adopted += w.Adopted
	}
	if adopted != rep.ContainersStolen {
		t.Errorf("adopted %d != stolen %d", adopted, rep.ContainersStolen)
	}
	if got := marshal(t, res); !bytes.Equal(want, got) {
		t.Errorf("result with work stealing diverges from baseline:\n%s", firstDiff(want, got))
	}
}

// TestFleetTelemetry pins the fleet gauge/counter key set and that the
// control-plane instruments move under kills.
func TestFleetTelemetry(t *testing.T) {
	reg := telemetry.New()
	eco := newEco(t, 11, chaosProfile(0.05))
	_, rep, err := Run(context.Background(), Config{
		Crawl:           crawlConfig(eco, func(c *crawler.Config) { c.Metrics = reg }),
		Shards:          4,
		WorkerCrashPlan: eco.WorkerCrashPlan(),
		Dir:             t.TempDir(),
	}, eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("fleet_shards").Value(); got != 4 {
		t.Errorf("fleet_shards = %d, want 4", got)
	}
	live := reg.Gauge("fleet_live_shards").Value()
	if want := int64(4 - rep.WorkersLost); live != want {
		t.Errorf("fleet_live_shards = %d, want %d", live, want)
	}
	for name, want := range map[string]int64{
		"fleet_heartbeats":        int64(rep.Heartbeats),
		"fleet_worker_kills":      int64(rep.Kills),
		"fleet_worker_restarts":   int64(rep.Restarts),
		"fleet_workers_lost":      int64(rep.WorkersLost),
		"fleet_containers_stolen": int64(rep.ContainersStolen),
		"fleet_shard_state_saves": int64(rep.StateSaves),
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d (report: %+v)", name, got, want, rep)
		}
	}
	if hb := reg.Histogram("fleet_heartbeat_seconds", telemetry.LatencyBuckets); hb.Count() != int64(rep.Heartbeats) {
		t.Errorf("fleet_heartbeat_seconds count = %d, want %d", hb.Count(), rep.Heartbeats)
	}
	if reg.Counter("crawler_records_emitted").Value() == 0 {
		t.Error("coordinator minted records but crawler_records_emitted is 0")
	}
}

// TestFleetRejectsResume: checkpoint-replay resume belongs to the
// single-process crawler; the fleet's durable layer is shard state.
func TestFleetRejectsResume(t *testing.T) {
	eco := newEco(t, 11, nil)
	cfg := crawlConfig(eco, func(c *crawler.Config) {
		c.Resume = true
		c.CheckpointPath = t.TempDir() + "/ckpt.json"
	})
	if _, _, err := Run(context.Background(), Config{Crawl: cfg, Shards: 2}, eco.SeedURLs()); err == nil {
		t.Fatal("fleet accepted Crawl.Resume; want an error")
	}
}

// firstDiff renders the context around the first diverging byte.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo, hi := i-120, i+120
			if lo < 0 {
				lo = 0
			}
			if hi > n {
				hi = n
			}
			return fmt.Sprintf("first diff at byte %d\n<<< %s\n>>> %s", i, a[lo:hi], b[lo:hi])
		}
	}
	return "one output is a prefix of the other"
}
