package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pushadminer/internal/crawler"
	"pushadminer/internal/telemetry"
)

// coordinator replicates the single-process monitor event loop across
// shard workers. Per tick, in order: advance the shared clock to the
// next global event (earliest scheduled push or container resume across
// all shards), sweep heartbeats (kills, restarts, and work stealing all
// happen here, before any worker touches the tick), flush the push
// scheduler, poll every live shard in parallel, dispatch + advance the
// clock once if any shard received messages, click everywhere, then
// merge the shards' tick items serially in container-id order, minting
// record IDs. Only the per-shard fan-outs are concurrent; everything
// that orders the output is serial — which is what extends the
// PumpWorkers byte-parity discipline across shard boundaries.
//
// The coordinator also owns the fleet observability plane: it mints the
// global trace segments the transport stamps onto per-shard spans,
// pulls each shard's telemetry snapshot once per heartbeat cycle,
// appends every control-plane lifecycle event to the fleet ledger, and
// publishes a live FleetStatus for /fleetz — all on its serial path, so
// the ledger and the merged telemetry are deterministic under a fixed
// chaos plan.
type coordinator struct {
	ctx   context.Context
	cfg   Config
	crawl crawler.Config
	tr    Transport
	met   *fleetMetrics

	// Coordinator-owned crawl instruments: the global batch-size
	// histogram, record counter, checkpoint-write counter, and
	// pump-worker gauge the single-process monitor would own.
	batchSize        *telemetry.Histogram
	records          *telemetry.Counter
	checkpointWrites *telemetry.Counter
	pumpWorkers      *telemetry.Gauge

	res    *crawler.Result
	report *Report

	n         int
	alive     []bool
	status    []crawler.TickStatus
	lastCycle []int
	restarts  []int
	owned     []int

	nextID int
	epoch  time.Time
	end    time.Time

	// Observability plane. nextSeg is the global trace-segment mint;
	// snaps/health/lastPull hold the coordinator's last pulled telemetry
	// view per shard (lastPull -1 = never pulled; the view of a lost
	// worker stays frozen at its last pull, which is what the merge-lag
	// gauge measures); events is the fleet ledger; statusVal publishes
	// the current *FleetStatus for the /fleetz handler (stored whole,
	// never mutated after publish — readers are concurrent).
	telemetryOn bool
	nextSeg     int64
	lastSweep   int
	lastPull    []int
	snaps       []telemetry.Snapshot
	health      []*crawler.ShardHealth
	events      []Event
	statusVal   atomic.Value
}

func newCoordinator(ctx context.Context, cfg Config, crawlCfg crawler.Config, tr Transport, met *fleetMetrics) *coordinator {
	n := cfg.Shards
	co := &coordinator{
		ctx:         ctx,
		cfg:         cfg,
		crawl:       crawlCfg,
		tr:          tr,
		met:         met,
		res:         &crawler.Result{},
		report:      &Report{Shards: n, Workers: make([]WorkerStatus, n)},
		n:           n,
		alive:       make([]bool, n),
		status:      make([]crawler.TickStatus, n),
		lastCycle:   make([]int, n),
		restarts:    make([]int, n),
		owned:       make([]int, n),
		telemetryOn: crawlCfg.Metrics != nil,
		lastPull:    make([]int, n),
		snaps:       make([]telemetry.Snapshot, n),
		health:      make([]*crawler.ShardHealth, n),
	}
	for k := 0; k < n; k++ {
		co.alive[k] = true
		co.lastCycle[k] = -1
		co.lastPull[k] = -1
		co.report.Workers[k].Shard = k
	}
	if reg := crawlCfg.Metrics; reg != nil {
		co.batchSize = reg.Histogram("crawler_pump_batch_size", telemetry.SizeBuckets)
		co.records = reg.Counter("crawler_records_emitted")
		co.checkpointWrites = reg.Counter("crawler_checkpoint_writes")
		co.pumpWorkers = reg.Gauge("crawler_pump_workers")
		telemetry.SetFleetz(co.fleetStatus)
	}
	return co
}

// seg mints the next global trace segment. Every transport phase call
// carries one; the per-shard tracers stamp it onto the spans the phase
// emits, which is what lets StitchSpans restore the coordinator's
// global phase order across concurrent shard streams.
func (co *coordinator) seg() int64 {
	co.nextSeg++
	return co.nextSeg
}

// event appends one line to the fleet ledger and mirrors it into the
// fleet_events metric family. Called only on the coordinator's serial
// path, so Seq is both emission and causal order and the ledger is
// deterministic under a fixed chaos plan.
func (co *coordinator) event(kind string, shard int, attrs map[string]string) {
	co.events = append(co.events, Event{
		Seq:   len(co.events) + 1,
		Time:  co.crawl.Clock.Now(),
		Kind:  kind,
		Shard: shard,
		Attrs: attrs,
	})
	co.met.events.Add(kind, 1)
}

// pullTelemetry refreshes the coordinator's view of shard k. A failed
// pull (worker just died) keeps the last view — that staleness is the
// merge lag.
func (co *coordinator) pullTelemetry(k, cycle int) {
	if !co.telemetryOn {
		return
	}
	tel, err := co.tr.Telemetry(k)
	if err != nil {
		return
	}
	co.snaps[k] = tel.Snapshot
	co.health[k] = tel.Health
	co.lastPull[k] = cycle
	co.met.telemetryPulls.Inc()
	co.report.TelemetryPulls++
}

// fleetStatus returns the last published *FleetStatus (nil before the
// first publish). Registered as the /fleetz provider.
func (co *coordinator) fleetStatus() any {
	v := co.statusVal.Load()
	if v == nil {
		return nil
	}
	return v
}

// updateStatus rebuilds and publishes the /fleetz view. Fresh maps and
// slices every time: the published pointer is read concurrently by the
// debug server and must never be mutated afterwards.
func (co *coordinator) updateStatus(done bool) {
	if !co.telemetryOn {
		return
	}
	st := &FleetStatus{
		Device:     co.crawl.Device.String(),
		Shards:     co.n,
		Heartbeats: co.report.Heartbeats,
		Kills:      co.report.Kills,
		Restarts:   co.report.Restarts,
		Lost:       co.report.WorkersLost,
		Stolen:     co.report.ContainersStolen,
		Records:    len(co.res.Records),
		Events:     len(co.events),
		SimTime:    co.crawl.Clock.Now(),
		WindowEnd:  co.end,
		Done:       done,
	}
	for k := 0; k < co.n; k++ {
		ws := ShardStatus{
			Shard:         k,
			Alive:         co.alive[k],
			Containers:    co.owned[k],
			Queued:        co.status[k].Queued,
			Restarts:      co.restarts[k],
			RestartBudget: co.cfg.MaxRestarts - co.restarts[k],
			Adopted:       co.report.Workers[k].Adopted,
			Lost:          co.report.Workers[k].Lost,
		}
		if co.alive[k] {
			st.LiveShards++
		}
		if h := co.health[k]; h != nil {
			ws.Containers = h.Containers
			ws.Collected = h.Collected
			ws.Dead = h.Dead
			if len(h.Breakers) > 0 {
				ws.Breakers = make(map[string]int, len(h.Breakers))
				for s, n := range h.Breakers {
					ws.Breakers[s] = n
				}
			}
		}
		if co.lastPull[k] >= 0 && co.lastSweep > co.lastPull[k] {
			ws.MergeLagCycles = co.lastSweep - co.lastPull[k]
		}
		st.Workers = append(st.Workers, ws)
	}
	co.statusVal.Store(st)
}

// forAlive runs f(k) concurrently for every live shard and joins the
// errors. Each call owns its shard's slot; cross-shard state is only
// touched on the coordinator's serial path.
func (co *coordinator) forAlive(f func(k int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, co.n)
	for k := 0; k < co.n; k++ {
		if !co.alive[k] {
			continue
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = f(k)
		}(k)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// run drives the whole fleet crawl: seed, monitor loop, final drain,
// finish. It mirrors crawler.RunContext step for step.
func (co *coordinator) run(seeds []string) error {
	clock := co.crawl.Clock
	co.met.shards.Set(int64(co.n))
	co.met.liveShards.Set(int64(co.n))
	co.pumpWorkers.Set(int64(co.crawl.PumpWorkers))

	// Seeding: all shards visit their seed subsets concurrently (the
	// global parallelism is Shards × MaxContainers, like running the
	// paper's Docker sessions on several hosts). Visits do not advance
	// the simulated clock, so the fan-out cannot reorder time. Seeding
	// is kill-free: heartbeat cycle 0 is consulted at the first tick.
	reps := make([]*crawler.ShardSeedReport, co.n)
	segSeed := co.seg()
	if err := co.forAlive(func(k int) error {
		rep, err := co.tr.Seed(k, segSeed)
		reps[k] = rep
		return err
	}); err != nil {
		return err
	}

	co.res.SeedURLs = seeds
	var outcomes []crawler.ShardSeedOutcome
	for k := 0; k < co.n; k++ {
		outcomes = append(outcomes, reps[k].Outcomes...)
		co.status[k] = reps[k].Status
		co.owned[k] = reps[k].Status.Queued
		co.event(EvShardStarted, k, map[string]string{
			"containers": strconv.Itoa(reps[k].Status.Queued),
		})
	}
	// Global seed order, not shard order: NPRURLs must list seed URLs
	// exactly as the single-process seed phase does.
	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].Index < outcomes[j].Index })
	for _, oc := range outcomes {
		if oc.Requested {
			co.res.NPRURLs = append(co.res.NPRURLs, seeds[oc.Index])
		}
		if oc.Registered {
			co.res.Containers++
		}
	}
	// Containers minted ids 1..len(seeds); record IDs continue after.
	co.nextID = len(seeds)
	co.epoch = clock.Now()
	co.end = co.epoch.Add(co.crawl.CollectionWindow)

	cancelled := false
	for {
		if co.ctx.Err() != nil {
			cancelled = true
			break
		}
		now := clock.Now()
		if !now.Before(co.end) {
			break
		}
		// Next global event: a scheduled push or any shard's earliest
		// container resume — the fleet-wide version of the monitor's
		// heap peek.
		next := co.end
		if at, ok := co.crawl.Driver.NextPushAt(); ok && at.Before(next) {
			next = at
		}
		for k := 0; k < co.n; k++ {
			if co.alive[k] && co.status[k].HasResume && co.status[k].NextResume.Before(next) {
				next = co.status[k].NextResume
			}
		}
		if w := co.crawl.BatchWindow; w > 0 && next.Before(co.end) {
			if q := next.Add(w); q.Before(co.end) {
				next = q
			} else {
				next = co.end
			}
		}
		if next.After(now) {
			clock.Advance(next.Sub(now))
			now = next
		}

		// Control plane first: kills, restarts, and stealing all land
		// before any worker polls, so the tick always runs against a
		// settled fleet.
		if err := co.heartbeatSweep(now); err != nil {
			return err
		}

		co.crawl.Driver.Tick()

		if err := co.pump(now, false); err != nil {
			return err
		}

		// Safety: if nothing is scheduled and no resumes remain, stop.
		if _, ok := co.crawl.Driver.NextPushAt(); !ok && co.totalQueued() == 0 {
			break
		}
	}

	// Final drain at the end of the window (skipped on cancellation,
	// like the single-process monitor).
	if !cancelled {
		if err := co.pump(clock.Now(), true); err != nil {
			return err
		}
	}

	return co.finish()
}

// pump runs one global tick's poll/dispatch/click phases across all
// live shards and merges the results. final selects the end-of-window
// drain batches.
func (co *coordinator) pump(now time.Time, final bool) error {
	polls := make([]*crawler.TickPoll, co.n)
	segPoll := co.seg()
	if err := co.forAlive(func(k int) error {
		p, err := co.tr.Poll(k, segPoll, now, final)
		polls[k] = p
		return err
	}); err != nil {
		return err
	}
	any, total := false, 0
	for k := 0; k < co.n; k++ {
		if polls[k] == nil {
			continue
		}
		co.status[k] = polls[k].Status
		total += polls[k].Due
		any = any || polls[k].Any
	}
	if total > 0 {
		co.batchSize.Observe(float64(total))
	}
	if any {
		segDispatch := co.seg()
		if err := co.forAlive(func(k int) error { return co.tr.Dispatch(k, segDispatch) }); err != nil {
			return err
		}
		// One ClickDelay advance for the whole fleet-wide batch, the
		// same single advance the monitor's pumpBatch performs.
		co.crawl.Clock.Advance(co.crawl.ClickDelay)
	}

	results := make([]*crawler.TickResult, co.n)
	segClick := co.seg()
	if err := co.forAlive(func(k int) error {
		res, err := co.tr.Click(k, segClick)
		results[k] = res
		return err
	}); err != nil {
		return err
	}

	// Serial merge in ascending container id — the cross-shard version
	// of pump phase 5. Container ids are global (seed index + 1) and
	// each container lives on exactly one shard, so this ordering is
	// exactly the order the single-process merge walks its batch in,
	// and minting IDs here reproduces its ID sequence.
	var items []crawler.TickItem
	for k := 0; k < co.n; k++ {
		if results[k] != nil {
			items = append(items, results[k].Items...)
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].ContainerID < items[j].ContainerID })
	minted := 0
	for _, it := range items {
		for _, rec := range it.Records {
			co.nextID++
			rec.ID = co.nextID
			co.res.Records = append(co.res.Records, rec)
			co.records.Inc()
			minted++
		}
		co.res.AdditionalURLs = append(co.res.AdditionalURLs, it.AdditionalURLs...)
	}
	if minted > 0 {
		co.event(EvMerge, -1, map[string]string{
			"records": strconv.Itoa(minted),
			"items":   strconv.Itoa(len(items)),
		})
	}
	co.updateStatus(false)
	return nil
}

// heartbeatSweep checks every live worker for each heartbeat cycle that
// elapsed since its last check. Worker deaths are detected here — and
// only here, at tick boundaries, after the previous tick's state save —
// and handled immediately: bounded restart-with-resume, then work
// stealing once the budget is spent. Each shard's telemetry snapshot is
// pulled once per new cycle on the way out, so the coordinator's merged
// view lags a live shard by at most one heartbeat cycle.
func (co *coordinator) heartbeatSweep(now time.Time) error {
	cycle := int(now.Sub(co.epoch) / co.cfg.Heartbeat)
	for k := 0; k < co.n; k++ {
		if !co.alive[k] {
			continue
		}
		for c := co.lastCycle[k] + 1; c <= cycle; c++ {
			co.report.Heartbeats++
			err := co.tr.Heartbeat(k, c)
			if err == nil {
				continue
			}
			if !errors.Is(err, ErrWorkerDown) {
				return err
			}
			co.event(EvHeartbeatMissed, k, map[string]string{"cycle": strconv.Itoa(c)})
			if herr := co.handleDown(k); herr != nil {
				return herr
			}
			if !co.alive[k] {
				break // lost for good; containers already adopted
			}
		}
		co.lastCycle[k] = cycle
		if co.alive[k] && cycle > co.lastPull[k] {
			co.pullTelemetry(k, cycle)
		}
	}
	co.lastSweep = cycle
	if co.telemetryOn {
		lag := 0
		for k := 0; k < co.n; k++ {
			if co.lastPull[k] >= 0 && cycle-co.lastPull[k] > lag {
				lag = cycle - co.lastPull[k]
			}
		}
		co.met.mergeLag.Set(int64(lag))
	}
	co.updateStatus(false)
	return nil
}

// handleDown reacts to a dead worker: restart it from its last saved
// shard state while its budget lasts, otherwise hand its orphaned
// containers to the least-loaded live worker. Either way the containers
// resume exactly where the last tick-boundary save left them, so the
// kill is invisible in the merged output.
func (co *coordinator) handleDown(k int) error {
	co.report.Kills++
	co.met.kills.Inc()
	co.event(EvKillDetected, k, nil)

	if co.restarts[k] < co.cfg.MaxRestarts {
		co.restarts[k]++
		fellBack, err := co.tr.Restart(k)
		if fellBack {
			co.report.StateFallbacks++
			co.met.stateFallbacks.Inc()
		}
		if err != nil {
			return err
		}
		co.report.Restarts++
		co.report.Workers[k].Restarts++
		co.met.restarts.Inc()
		var attrs map[string]string
		if fellBack {
			attrs = map[string]string{"fellback": "true"}
		}
		co.event(EvRestart, k, attrs)
		// The restored worker's scheduling state equals the saved one,
		// which is what co.status[k] already holds.
		return nil
	}

	// Budget exhausted: the worker stays dead.
	co.alive[k] = false
	co.report.WorkersLost++
	co.report.Workers[k].Lost = true
	co.met.workersLost.Inc()
	co.met.liveShards.Add(-1)
	co.event(EvWorkerLost, k, nil)

	st, fellBack, err := co.tr.Orphans(k)
	if fellBack {
		co.report.StateFallbacks++
		co.met.stateFallbacks.Inc()
	}
	if err != nil {
		return err
	}
	co.event(EvOrphanSteal, k, map[string]string{"containers": strconv.Itoa(len(st.Containers))})
	// Steal to the live worker owning the fewest containers (ties to
	// the lowest shard id). The choice is pure load balancing: records
	// merge by global container id and every draw is keyed by container
	// or worker identity, so the adopter's identity cannot leak into
	// the output.
	target := -1
	for j := 0; j < co.n; j++ {
		if !co.alive[j] {
			continue
		}
		if target < 0 || co.owned[j] < co.owned[target] {
			target = j
		}
	}
	if target < 0 {
		return fmt.Errorf("fleet: all shard workers dead")
	}
	if err := co.tr.Adopt(target, st); err != nil {
		return err
	}
	stolen := len(st.Containers)
	co.report.ContainersStolen += stolen
	co.report.Workers[target].Adopted += stolen
	co.met.containersStolen.Add(int64(stolen))
	co.owned[target] += stolen
	co.owned[k] = 0
	co.event(EvAdopt, target, map[string]string{
		"from":       strconv.Itoa(k),
		"containers": strconv.Itoa(stolen),
	})
	// The dead shard's pending resumes now live in the adopter's heap;
	// the adopter's status refreshes at this tick's poll.
	co.status[k] = crawler.TickStatus{}
	return nil
}

func (co *coordinator) totalQueued() int {
	total := 0
	for k := 0; k < co.n; k++ {
		if co.alive[k] {
			total += co.status[k].Queued
		}
	}
	return total
}

// finish aggregates the shards' final accounting — per-shard
// Degradations merge tally-wise into one report equal to the
// single-process one — snapshots the ecosystem fault counters once,
// writes the optional merged checkpoint, stitches the shard trace
// streams into the main tracer, absorbs the shards' final telemetry
// snapshots into the main registry, and writes the event ledger.
//
// The order is load-bearing: the checkpoint write and the trace stitch
// both increment coordinator-registry counters, so they must land
// before Report.Coordinator is captured and the shard snapshots are
// absorbed — otherwise the exact-merge contract (final registry state
// equals Coordinator merged with every ShardSnapshot) breaks.
func (co *coordinator) finish() error {
	segFin := co.seg()
	for k := 0; k < co.n; k++ {
		if !co.alive[k] {
			continue
		}
		fin, err := co.tr.Finish(k, segFin)
		if err != nil {
			return err
		}
		co.res.Degradation.Merge(fin.Degradation)
	}
	if co.crawl.FaultCounts != nil {
		if fc := co.crawl.FaultCounts(); len(fc) > 0 {
			co.res.Degradation.Faults = fc
		}
	}
	co.writeMergedCheckpoint()
	co.stitchTrace()
	co.absorbTelemetry()
	if co.cfg.LedgerPath != "" {
		if err := WriteLedger(co.cfg.LedgerPath, co.events); err != nil {
			return err
		}
	}
	co.report.Events = co.events
	co.updateStatus(true)
	return nil
}

// stitchTrace reassembles the per-shard span streams into the main
// tracer as one coordinator-rooted trace. Streams are pulled whole —
// chain spans are retroactively mutated while open, so nothing can be
// shipped incrementally — and include lost workers' spans (the
// transport owns each shard's buffer across kills). At Shards=1 the
// stitch is the identity and the main tracer's JSONL output is
// byte-identical to a single-process traced run.
func (co *coordinator) stitchTrace() {
	if co.crawl.Tracer == nil {
		return
	}
	streams := make([][]telemetry.Span, co.n)
	for k := 0; k < co.n; k++ {
		spans, err := co.tr.Spans(k)
		if err != nil {
			continue
		}
		streams[k] = spans
	}
	stitched := telemetry.StitchSpans(streams)
	co.crawl.Tracer.Append(stitched)
	co.met.traceSpans.Add(int64(len(stitched)))
	co.report.StitchedSpans = len(stitched)
}

// absorbTelemetry takes one final pull from every live shard, captures
// the coordinator's own registry snapshot, then folds every shard
// snapshot into the main registry under a "shard-<k>" label. Lost
// workers contribute their last pulled view (their post-pull deltas
// moved to the adopter's registry with their containers). Capture
// before absorb is the exact-merge contract the parity matrix pins.
func (co *coordinator) absorbTelemetry() {
	if !co.telemetryOn {
		return
	}
	for k := 0; k < co.n; k++ {
		if co.alive[k] {
			co.pullTelemetry(k, co.lastSweep)
		}
	}
	co.report.Coordinator = co.crawl.Metrics.Snapshot()
	co.report.ShardSnapshots = make([]telemetry.Snapshot, co.n)
	for k := 0; k < co.n; k++ {
		co.crawl.Metrics.Absorb(fmt.Sprintf("shard-%d", k), co.snaps[k])
		co.report.ShardSnapshots[k] = co.snaps[k]
	}
}

// writeMergedCheckpoint writes one global checkpoint equivalent to the
// single-process final checkpoint: all records, cursors from every live
// shard in container-id order, and the merged Degradation. The fleet
// writes no periodic checkpoints — per-shard state files are its
// durable layer — so a fleet checkpoint counts exactly one write.
func (co *coordinator) writeMergedCheckpoint() {
	if co.crawl.CheckpointPath == "" {
		return
	}
	cp := &crawler.Checkpoint{
		Version:        crawler.CheckpointVersion,
		Device:         co.crawl.Device.String(),
		SimTime:        co.crawl.Clock.Now(),
		NextID:         co.nextID,
		SeedURLs:       co.res.SeedURLs,
		NPRURLs:        co.res.NPRURLs,
		AdditionalURLs: co.res.AdditionalURLs,
		Containers:     co.res.Containers,
		Records:        co.res.Records,
		Degradation:    co.res.Degradation,
	}
	for k := 0; k < co.n; k++ {
		if !co.alive[k] {
			continue
		}
		st, err := co.tr.State(k)
		if err != nil {
			continue
		}
		for _, cs := range st.Containers {
			cp.Cursors = append(cp.Cursors, cs.Cursor)
		}
	}
	sort.Slice(cp.Cursors, func(i, j int) bool { return cp.Cursors[i].ID < cp.Cursors[j].ID })
	if err := crawler.SaveCheckpoint(co.crawl.CheckpointPath, cp); err == nil {
		co.res.Degradation.CheckpointWrites++
		co.checkpointWrites.Inc()
	}
}
