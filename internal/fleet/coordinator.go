package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pushadminer/internal/crawler"
	"pushadminer/internal/telemetry"
)

// coordinator replicates the single-process monitor event loop across
// shard workers. Per tick, in order: advance the shared clock to the
// next global event (earliest scheduled push or container resume across
// all shards), sweep heartbeats (kills, restarts, and work stealing all
// happen here, before any worker touches the tick), flush the push
// scheduler, poll every live shard in parallel, dispatch + advance the
// clock once if any shard received messages, click everywhere, then
// merge the shards' tick items serially in container-id order, minting
// record IDs. Only the per-shard fan-outs are concurrent; everything
// that orders the output is serial — which is what extends the
// PumpWorkers byte-parity discipline across shard boundaries.
type coordinator struct {
	ctx   context.Context
	cfg   Config
	crawl crawler.Config
	tr    Transport
	met   *fleetMetrics

	// Coordinator-owned crawl instruments: the global batch-size
	// histogram, record counter, checkpoint-write counter, and
	// pump-worker gauge the single-process monitor would own.
	batchSize        *telemetry.Histogram
	records          *telemetry.Counter
	checkpointWrites *telemetry.Counter
	pumpWorkers      *telemetry.Gauge

	res    *crawler.Result
	report *Report

	n         int
	alive     []bool
	status    []crawler.TickStatus
	lastCycle []int
	restarts  []int
	owned     []int

	nextID int
	epoch  time.Time
	end    time.Time
}

func newCoordinator(ctx context.Context, cfg Config, crawlCfg crawler.Config, tr Transport, met *fleetMetrics) *coordinator {
	n := cfg.Shards
	co := &coordinator{
		ctx:       ctx,
		cfg:       cfg,
		crawl:     crawlCfg,
		tr:        tr,
		met:       met,
		res:       &crawler.Result{},
		report:    &Report{Shards: n, Workers: make([]WorkerStatus, n)},
		n:         n,
		alive:     make([]bool, n),
		status:    make([]crawler.TickStatus, n),
		lastCycle: make([]int, n),
		restarts:  make([]int, n),
		owned:     make([]int, n),
	}
	for k := 0; k < n; k++ {
		co.alive[k] = true
		co.lastCycle[k] = -1
		co.report.Workers[k].Shard = k
	}
	if reg := crawlCfg.Metrics; reg != nil {
		co.batchSize = reg.Histogram("crawler_pump_batch_size", telemetry.SizeBuckets)
		co.records = reg.Counter("crawler_records_emitted")
		co.checkpointWrites = reg.Counter("crawler_checkpoint_writes")
		co.pumpWorkers = reg.Gauge("crawler_pump_workers")
	}
	return co
}

// forAlive runs f(k) concurrently for every live shard and joins the
// errors. Each call owns its shard's slot; cross-shard state is only
// touched on the coordinator's serial path.
func (co *coordinator) forAlive(f func(k int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, co.n)
	for k := 0; k < co.n; k++ {
		if !co.alive[k] {
			continue
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = f(k)
		}(k)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// run drives the whole fleet crawl: seed, monitor loop, final drain,
// finish. It mirrors crawler.RunContext step for step.
func (co *coordinator) run(seeds []string) error {
	clock := co.crawl.Clock
	co.met.shards.Set(int64(co.n))
	co.met.liveShards.Set(int64(co.n))
	co.pumpWorkers.Set(int64(co.crawl.PumpWorkers))

	// Seeding: all shards visit their seed subsets concurrently (the
	// global parallelism is Shards × MaxContainers, like running the
	// paper's Docker sessions on several hosts). Visits do not advance
	// the simulated clock, so the fan-out cannot reorder time. Seeding
	// is kill-free: heartbeat cycle 0 is consulted at the first tick.
	reps := make([]*crawler.ShardSeedReport, co.n)
	if err := co.forAlive(func(k int) error {
		rep, err := co.tr.Seed(k)
		reps[k] = rep
		return err
	}); err != nil {
		return err
	}

	co.res.SeedURLs = seeds
	var outcomes []crawler.ShardSeedOutcome
	for k := 0; k < co.n; k++ {
		outcomes = append(outcomes, reps[k].Outcomes...)
		co.status[k] = reps[k].Status
		co.owned[k] = reps[k].Status.Queued
	}
	// Global seed order, not shard order: NPRURLs must list seed URLs
	// exactly as the single-process seed phase does.
	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].Index < outcomes[j].Index })
	for _, oc := range outcomes {
		if oc.Requested {
			co.res.NPRURLs = append(co.res.NPRURLs, seeds[oc.Index])
		}
		if oc.Registered {
			co.res.Containers++
		}
	}
	// Containers minted ids 1..len(seeds); record IDs continue after.
	co.nextID = len(seeds)
	co.epoch = clock.Now()
	co.end = co.epoch.Add(co.crawl.CollectionWindow)

	cancelled := false
	for {
		if co.ctx.Err() != nil {
			cancelled = true
			break
		}
		now := clock.Now()
		if !now.Before(co.end) {
			break
		}
		// Next global event: a scheduled push or any shard's earliest
		// container resume — the fleet-wide version of the monitor's
		// heap peek.
		next := co.end
		if at, ok := co.crawl.Driver.NextPushAt(); ok && at.Before(next) {
			next = at
		}
		for k := 0; k < co.n; k++ {
			if co.alive[k] && co.status[k].HasResume && co.status[k].NextResume.Before(next) {
				next = co.status[k].NextResume
			}
		}
		if w := co.crawl.BatchWindow; w > 0 && next.Before(co.end) {
			if q := next.Add(w); q.Before(co.end) {
				next = q
			} else {
				next = co.end
			}
		}
		if next.After(now) {
			clock.Advance(next.Sub(now))
			now = next
		}

		// Control plane first: kills, restarts, and stealing all land
		// before any worker polls, so the tick always runs against a
		// settled fleet.
		if err := co.heartbeatSweep(now); err != nil {
			return err
		}

		co.crawl.Driver.Tick()

		if err := co.pump(now, false); err != nil {
			return err
		}

		// Safety: if nothing is scheduled and no resumes remain, stop.
		if _, ok := co.crawl.Driver.NextPushAt(); !ok && co.totalQueued() == 0 {
			break
		}
	}

	// Final drain at the end of the window (skipped on cancellation,
	// like the single-process monitor).
	if !cancelled {
		if err := co.pump(clock.Now(), true); err != nil {
			return err
		}
	}

	return co.finish()
}

// pump runs one global tick's poll/dispatch/click phases across all
// live shards and merges the results. final selects the end-of-window
// drain batches.
func (co *coordinator) pump(now time.Time, final bool) error {
	polls := make([]*crawler.TickPoll, co.n)
	if err := co.forAlive(func(k int) error {
		p, err := co.tr.Poll(k, now, final)
		polls[k] = p
		return err
	}); err != nil {
		return err
	}
	any, total := false, 0
	for k := 0; k < co.n; k++ {
		if polls[k] == nil {
			continue
		}
		co.status[k] = polls[k].Status
		total += polls[k].Due
		any = any || polls[k].Any
	}
	if total > 0 {
		co.batchSize.Observe(float64(total))
	}
	if any {
		if err := co.forAlive(func(k int) error { return co.tr.Dispatch(k) }); err != nil {
			return err
		}
		// One ClickDelay advance for the whole fleet-wide batch, the
		// same single advance the monitor's pumpBatch performs.
		co.crawl.Clock.Advance(co.crawl.ClickDelay)
	}

	results := make([]*crawler.TickResult, co.n)
	if err := co.forAlive(func(k int) error {
		res, err := co.tr.Click(k)
		results[k] = res
		return err
	}); err != nil {
		return err
	}

	// Serial merge in ascending container id — the cross-shard version
	// of pump phase 5. Container ids are global (seed index + 1) and
	// each container lives on exactly one shard, so this ordering is
	// exactly the order the single-process merge walks its batch in,
	// and minting IDs here reproduces its ID sequence.
	var items []crawler.TickItem
	for k := 0; k < co.n; k++ {
		if results[k] != nil {
			items = append(items, results[k].Items...)
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].ContainerID < items[j].ContainerID })
	for _, it := range items {
		for _, rec := range it.Records {
			co.nextID++
			rec.ID = co.nextID
			co.res.Records = append(co.res.Records, rec)
			co.records.Inc()
		}
		co.res.AdditionalURLs = append(co.res.AdditionalURLs, it.AdditionalURLs...)
	}
	return nil
}

// heartbeatSweep checks every live worker for each heartbeat cycle that
// elapsed since its last check. Worker deaths are detected here — and
// only here, at tick boundaries, after the previous tick's state save —
// and handled immediately: bounded restart-with-resume, then work
// stealing once the budget is spent.
func (co *coordinator) heartbeatSweep(now time.Time) error {
	cycle := int(now.Sub(co.epoch) / co.cfg.Heartbeat)
	for k := 0; k < co.n; k++ {
		if !co.alive[k] {
			continue
		}
		for c := co.lastCycle[k] + 1; c <= cycle; c++ {
			co.report.Heartbeats++
			err := co.tr.Heartbeat(k, c)
			if err == nil {
				continue
			}
			if !errors.Is(err, ErrWorkerDown) {
				return err
			}
			if herr := co.handleDown(k); herr != nil {
				return herr
			}
			if !co.alive[k] {
				break // lost for good; containers already adopted
			}
		}
		co.lastCycle[k] = cycle
	}
	return nil
}

// handleDown reacts to a dead worker: restart it from its last saved
// shard state while its budget lasts, otherwise hand its orphaned
// containers to the least-loaded live worker. Either way the containers
// resume exactly where the last tick-boundary save left them, so the
// kill is invisible in the merged output.
func (co *coordinator) handleDown(k int) error {
	co.report.Kills++
	co.met.kills.Inc()

	if co.restarts[k] < co.cfg.MaxRestarts {
		co.restarts[k]++
		fellBack, err := co.tr.Restart(k)
		if fellBack {
			co.report.StateFallbacks++
			co.met.stateFallbacks.Inc()
		}
		if err != nil {
			return err
		}
		co.report.Restarts++
		co.report.Workers[k].Restarts++
		co.met.restarts.Inc()
		// The restored worker's scheduling state equals the saved one,
		// which is what co.status[k] already holds.
		return nil
	}

	// Budget exhausted: the worker stays dead.
	co.alive[k] = false
	co.report.WorkersLost++
	co.report.Workers[k].Lost = true
	co.met.workersLost.Inc()
	co.met.liveShards.Add(-1)

	st, fellBack, err := co.tr.Orphans(k)
	if fellBack {
		co.report.StateFallbacks++
		co.met.stateFallbacks.Inc()
	}
	if err != nil {
		return err
	}
	// Steal to the live worker owning the fewest containers (ties to
	// the lowest shard id). The choice is pure load balancing: records
	// merge by global container id and every draw is keyed by container
	// or worker identity, so the adopter's identity cannot leak into
	// the output.
	target := -1
	for j := 0; j < co.n; j++ {
		if !co.alive[j] {
			continue
		}
		if target < 0 || co.owned[j] < co.owned[target] {
			target = j
		}
	}
	if target < 0 {
		return fmt.Errorf("fleet: all shard workers dead")
	}
	if err := co.tr.Adopt(target, st); err != nil {
		return err
	}
	stolen := len(st.Containers)
	co.report.ContainersStolen += stolen
	co.report.Workers[target].Adopted += stolen
	co.met.containersStolen.Add(int64(stolen))
	co.owned[target] += stolen
	co.owned[k] = 0
	// The dead shard's pending resumes now live in the adopter's heap;
	// the adopter's status refreshes at this tick's poll.
	co.status[k] = crawler.TickStatus{}
	return nil
}

func (co *coordinator) totalQueued() int {
	total := 0
	for k := 0; k < co.n; k++ {
		if co.alive[k] {
			total += co.status[k].Queued
		}
	}
	return total
}

// finish aggregates the shards' final accounting — per-shard
// Degradations merge tally-wise into one report equal to the
// single-process one — snapshots the ecosystem fault counters once,
// and writes the optional merged checkpoint.
func (co *coordinator) finish() error {
	for k := 0; k < co.n; k++ {
		if !co.alive[k] {
			continue
		}
		fin, err := co.tr.Finish(k)
		if err != nil {
			return err
		}
		co.res.Degradation.Merge(fin.Degradation)
	}
	if co.crawl.FaultCounts != nil {
		if fc := co.crawl.FaultCounts(); len(fc) > 0 {
			co.res.Degradation.Faults = fc
		}
	}
	co.writeMergedCheckpoint()
	return nil
}

// writeMergedCheckpoint writes one global checkpoint equivalent to the
// single-process final checkpoint: all records, cursors from every live
// shard in container-id order, and the merged Degradation. The fleet
// writes no periodic checkpoints — per-shard state files are its
// durable layer — so a fleet checkpoint counts exactly one write.
func (co *coordinator) writeMergedCheckpoint() {
	if co.crawl.CheckpointPath == "" {
		return
	}
	cp := &crawler.Checkpoint{
		Version:        crawler.CheckpointVersion,
		Device:         co.crawl.Device.String(),
		SimTime:        co.crawl.Clock.Now(),
		NextID:         co.nextID,
		SeedURLs:       co.res.SeedURLs,
		NPRURLs:        co.res.NPRURLs,
		AdditionalURLs: co.res.AdditionalURLs,
		Containers:     co.res.Containers,
		Records:        co.res.Records,
		Degradation:    co.res.Degradation,
	}
	for k := 0; k < co.n; k++ {
		if !co.alive[k] {
			continue
		}
		st, err := co.tr.State(k)
		if err != nil {
			continue
		}
		for _, cs := range st.Containers {
			cp.Cursors = append(cp.Cursors, cs.Cursor)
		}
	}
	sort.Slice(cp.Cursors, func(i, j int) bool { return cp.Cursors[i].ID < cp.Cursors[j].ID })
	if err := crawler.SaveCheckpoint(co.crawl.CheckpointPath, cp); err == nil {
		co.res.Degradation.CheckpointWrites++
		co.checkpointWrites.Inc()
	}
}
