package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"pushadminer/internal/chaos"
	"pushadminer/internal/crawler"
	"pushadminer/internal/telemetry"
)

// assertExactMerge pins the fleet telemetry contract: the final main
// registry equals the coordinator's pre-absorb snapshot merged with
// every shard snapshot — no count lost, none double-counted.
func assertExactMerge(t *testing.T, reg *telemetry.Registry, rep *Report) {
	t.Helper()
	if len(rep.ShardSnapshots) != rep.Shards {
		t.Fatalf("report carries %d shard snapshots, want %d", len(rep.ShardSnapshots), rep.Shards)
	}
	want := rep.Coordinator.Clone()
	for k, s := range rep.ShardSnapshots {
		want.Merge(fmt.Sprintf("shard-%d", k), s)
	}
	gotJSON, err := json.MarshalIndent(reg.Snapshot(), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.MarshalIndent(want, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("final registry is not the exact merge of coordinator + shard snapshots:\n%s",
			firstDiff(wantJSON, gotJSON))
	}
}

// TestFleetTelemetryExactMerge runs the parity-matrix scenarios with
// telemetry on and asserts the exact-merge contract for each: shard
// counts survive kills, restarts, and work stealing without loss or
// double counting.
func TestFleetTelemetryExactMerge(t *testing.T) {
	for _, tc := range []struct {
		name   string
		seed   int64
		chaos  bool
		shards []int
	}{
		{"seed11", 11, false, []int{1, 2, 4}},
		{"seed11/chaos", 11, true, []int{2, 4}},
		{"seed23/chaos", 23, true, []int{3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, shards := range tc.shards {
				var p *chaos.Profile
				if tc.chaos {
					p = chaosProfile(0.05)
				}
				reg := telemetry.New()
				eco := newEco(t, tc.seed, p)
				_, rep, err := Run(context.Background(), Config{
					Crawl:           crawlConfig(eco, func(c *crawler.Config) { c.Metrics = reg }),
					Shards:          shards,
					WorkerCrashPlan: eco.WorkerCrashPlan(),
					Dir:             t.TempDir(),
				}, eco.SeedURLs())
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if rep.TelemetryPulls == 0 {
					t.Errorf("shards=%d: no telemetry pulls recorded", shards)
				}
				if got := reg.Counter("fleet_telemetry_pulls").Value(); got != int64(rep.TelemetryPulls) {
					t.Errorf("shards=%d: fleet_telemetry_pulls = %d, report says %d", shards, got, rep.TelemetryPulls)
				}
				assertExactMerge(t, reg, rep)
			}
		})
	}
}

// TestFleetTraceParity: a traced fleet run's stitched spans must be
// byte-identical (as JSONL) to the single-process trace. Pinned at
// MaxContainers=1 and PumpWorkers=1 — the only setting where span
// emission order is deterministic even within the seed fan-out — and
// exercised both kill-free and under a worker kill + restart, where
// the persisted chain-recorder state must keep cross-restart parent
// links intact.
func TestFleetTraceParity(t *testing.T) {
	serial := func(c *crawler.Config) {
		c.MaxContainers = 1
		c.PumpWorkers = 1
	}
	traceJSONL := func(t *testing.T, tr *telemetry.Tracer) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	baseline := func(t *testing.T) []byte {
		tr := telemetry.NewTracer(nil)
		eco := newEco(t, 11, nil)
		c, err := crawler.New(crawlConfig(eco, func(c *crawler.Config) {
			serial(c)
			c.Tracer = tr
		}))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(eco.SeedURLs()); err != nil {
			t.Fatal(err)
		}
		if tr.Len() == 0 {
			t.Fatal("baseline produced no spans; trace parity is vacuous")
		}
		return traceJSONL(t, tr)
	}

	fleetTrace := func(t *testing.T, plan func(string, int) bool) ([]byte, *Report) {
		tr := telemetry.NewTracer(nil)
		eco := newEco(t, 11, nil)
		_, rep, err := Run(context.Background(), Config{
			Crawl: crawlConfig(eco, func(c *crawler.Config) {
				serial(c)
				c.Tracer = tr
			}),
			Shards:          1,
			Dir:             t.TempDir(),
			WorkerCrashPlan: plan,
		}, eco.SeedURLs())
		if err != nil {
			t.Fatal(err)
		}
		return traceJSONL(t, tr), rep
	}

	want := baseline(t)

	t.Run("kill-free", func(t *testing.T) {
		got, rep := fleetTrace(t, nil)
		if rep.StitchedSpans == 0 {
			t.Error("fleet stitched no spans")
		}
		if !bytes.Equal(want, got) {
			t.Errorf("stitched trace diverges from single-process trace:\n%s", firstDiff(want, got))
		}
	})

	t.Run("kill-restart", func(t *testing.T) {
		got, rep := fleetTrace(t, func(workerID string, cycle int) bool {
			return cycle == 2 || cycle == 9
		})
		if rep.Kills != 2 || rep.Restarts != 2 {
			t.Fatalf("kills=%d restarts=%d, want 2/2", rep.Kills, rep.Restarts)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("stitched trace under kills diverges from single-process trace:\n%s", firstDiff(want, got))
		}
	})
}

// TestFleetLedger: the event timeline reconciles with the report and
// the fleet_* metrics, and is deterministic — two identical chaos runs
// write identical ledger bytes.
func TestFleetLedger(t *testing.T) {
	run := func(t *testing.T, dir string) (*Report, *telemetry.Registry, string) {
		t.Helper()
		reg := telemetry.New()
		eco := newEco(t, 11, chaosProfile(0.05))
		path := filepath.Join(dir, "ledger.jsonl")
		_, rep, err := Run(context.Background(), Config{
			Crawl:           crawlConfig(eco, func(c *crawler.Config) { c.Metrics = reg }),
			Shards:          4,
			WorkerCrashPlan: eco.WorkerCrashPlan(),
			Dir:             t.TempDir(),
			LedgerPath:      path,
		}, eco.SeedURLs())
		if err != nil {
			t.Fatal(err)
		}
		return rep, reg, path
	}

	rep, reg, path := run(t, t.TempDir())
	events, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(rep.Events) {
		t.Fatalf("ledger has %d events, report has %d", len(events), len(rep.Events))
	}
	counts := map[string]int{}
	stolen := 0
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has Seq %d; ledger must be in emission order", i, ev.Seq)
		}
		counts[ev.Kind]++
		if ev.Kind == EvAdopt {
			n, _ := strconv.Atoi(ev.Attrs["containers"])
			stolen += n
		}
	}
	if counts[EvShardStarted] != rep.Shards {
		t.Errorf("%d shard_started events, want %d", counts[EvShardStarted], rep.Shards)
	}
	for kind, want := range map[string]int{
		EvKillDetected:    rep.Kills,
		EvHeartbeatMissed: rep.Kills, // in-process: every miss is a kill
		EvRestart:         rep.Restarts,
		EvWorkerLost:      rep.WorkersLost,
		EvOrphanSteal:     rep.WorkersLost,
		EvAdopt:           rep.WorkersLost,
	} {
		if counts[kind] != want {
			t.Errorf("%d %q events, report implies %d", counts[kind], kind, want)
		}
	}
	if stolen != rep.ContainersStolen {
		t.Errorf("adopt events account for %d containers, report says %d", stolen, rep.ContainersStolen)
	}
	if counts[EvMerge] == 0 {
		t.Error("no merge events; records were collected")
	}
	// The fleet_events metric family mirrors the ledger exactly.
	fam := reg.Snapshot().Families["fleet_events"]
	for kind, n := range counts {
		if fam[kind] != int64(n) {
			t.Errorf("fleet_events[%s] = %d, ledger has %d", kind, fam[kind], n)
		}
	}

	// Determinism: same seeds, same chaos plan → identical ledger bytes.
	_, _, path2 := run(t, t.TempDir())
	a, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("ledger is not deterministic:\n%s", firstDiff(a, b))
	}
}

// TestFleetzEndpoint: after a fleet run, the debug server's /fleetz
// serves the final published status as JSON and as the text dashboard.
func TestFleetzEndpoint(t *testing.T) {
	reg := telemetry.New()
	eco := newEco(t, 11, chaosProfile(0.05))
	_, rep, err := Run(context.Background(), Config{
		Crawl:           crawlConfig(eco, func(c *crawler.Config) { c.Metrics = reg }),
		Shards:          4,
		WorkerCrashPlan: eco.WorkerCrashPlan(),
		Dir:             t.TempDir(),
	}, eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}

	srv, err := telemetry.ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return body
	}

	var payload struct {
		Active bool         `json:"active"`
		Fleet  *FleetStatus `json:"fleet"`
	}
	if err := json.Unmarshal(get("/fleetz"), &payload); err != nil {
		t.Fatal(err)
	}
	if !payload.Active || payload.Fleet == nil {
		t.Fatalf("/fleetz inactive after a fleet run: %+v", payload)
	}
	st := payload.Fleet
	if !st.Done || st.Shards != 4 || len(st.Workers) != 4 {
		t.Errorf("final status wrong: done=%v shards=%d workers=%d", st.Done, st.Shards, len(st.Workers))
	}
	if st.Kills != rep.Kills || st.Restarts != rep.Restarts || st.Lost != rep.WorkersLost {
		t.Errorf("status control-plane totals diverge from report: %+v vs %+v", st, rep)
	}
	live := 0
	for _, w := range st.Workers {
		if w.Alive {
			live++
		}
		if w.Alive && w.Containers == 0 && !w.Lost {
			t.Errorf("live worker %d shows 0 containers: %+v", w.Shard, w)
		}
	}
	if live != st.LiveShards {
		t.Errorf("LiveShards=%d but %d workers alive", st.LiveShards, live)
	}

	text := string(get("/fleetz?format=text"))
	for _, want := range []string{"fleet desktop", "shard", "heartbeats"} {
		if !strings.Contains(text, want) {
			t.Errorf("text dashboard missing %q:\n%s", want, text)
		}
	}
}

// TestFleetObservabilityDisabled: with no registry and no tracer the
// fleet plane must stay dark — no pulls, no stitching, no snapshots —
// while the ledger (a plain file) still works.
func TestFleetObservabilityDisabled(t *testing.T) {
	eco := newEco(t, 11, nil)
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	_, rep, err := Run(context.Background(), Config{
		Crawl:      crawlConfig(eco, nil),
		Shards:     2,
		Dir:        t.TempDir(),
		LedgerPath: path,
	}, eco.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TelemetryPulls != 0 || rep.StitchedSpans != 0 || rep.ShardSnapshots != nil {
		t.Errorf("observability plane active without instruments: %+v", rep)
	}
	events, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Error("ledger empty; event timeline must not depend on telemetry")
	}
}
