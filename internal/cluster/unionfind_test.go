package cluster

import (
	"reflect"
	"testing"
)

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind(6)
	if u.Len() != 6 {
		t.Fatalf("Len = %d, want 6", u.Len())
	}
	for i := 0; i < 6; i++ {
		if u.Find(i) != i || u.SizeOf(i) != 1 {
			t.Fatalf("fresh element %d: Find=%d SizeOf=%d", i, u.Find(i), u.SizeOf(i))
		}
	}
	u.Union(0, 1)
	u.Union(2, 3)
	if !u.Same(0, 1) || !u.Same(2, 3) || u.Same(0, 2) {
		t.Fatal("wrong connectivity after two unions")
	}
	if u.SizeOf(0) != 2 || u.SizeOf(3) != 2 || u.SizeOf(4) != 1 {
		t.Fatal("wrong sizes after two unions")
	}
	u.Union(1, 3)
	if !u.Same(0, 2) || u.SizeOf(2) != 4 {
		t.Fatal("wrong state after merging the two pairs")
	}
	// Idempotent union returns the shared root.
	if r := u.Union(0, 3); r != u.Find(0) {
		t.Fatalf("repeat Union returned %d, want root %d", r, u.Find(0))
	}
}

// TestUnionFindComponentsCanonical asserts Components' output depends
// only on the partition, not on union order — the property that makes
// map-iterated LSH bucket feeding deterministic downstream.
func TestUnionFindComponentsCanonical(t *testing.T) {
	edges := [][2]int{{5, 2}, {2, 7}, {0, 9}, {3, 4}, {4, 8}}
	want := [][]int{{0, 9}, {1}, {2, 5, 7}, {3, 4, 8}, {6}}

	orders := [][]int{{0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}}
	for _, ord := range orders {
		u := NewUnionFind(10)
		for _, k := range ord {
			u.Union(edges[k][0], edges[k][1])
		}
		got := u.Components()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("order %v: Components = %v, want %v", ord, got, want)
		}
	}
}

func TestUnionFindComponentsOf(t *testing.T) {
	u := NewUnionFind(8)
	u.Union(0, 1)
	u.Union(2, 3)
	u.Union(3, 4)
	include := map[int]bool{0: true, 2: true, 4: true, 6: true}
	got := u.ComponentsOf(func(i int) bool { return include[i] })
	want := [][]int{{0}, {2, 4}, {6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ComponentsOf = %v, want %v", got, want)
	}
	if n := len(u.Components()); n != 5 {
		t.Fatalf("full Components count = %d, want 5", n)
	}
}

func TestUnionFindEmpty(t *testing.T) {
	u := NewUnionFind(0)
	if u.Len() != 0 || len(u.Components()) != 0 {
		t.Fatal("empty forest misbehaves")
	}
}
