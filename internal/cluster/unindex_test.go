package cluster

import "testing"

// TestUnindexRoundTripLarge extends the round-trip property to the
// sizes the blocked mining benchmark reaches (up to n=100k), where the
// closed-form square-root inversion operates near float64 precision
// limits and the adjustment loops must absorb the rounding. No
// DistMatrix is allocated — a condensed matrix at n=100k would be
// ~20 GB — the index math is pure arithmetic.
func TestUnindexRoundTripLarge(t *testing.T) {
	condensed := func(n, i, j int) int { return rowOffset(n, i) + (j - i - 1) }
	check := func(n, i, j int) {
		t.Helper()
		idx := condensed(n, i, j)
		gi, gj := unindex(n, idx)
		if gi != i || gj != j {
			t.Fatalf("n=%d: unindex(%d) = (%d, %d), want (%d, %d)", n, idx, gi, gj, i, j)
		}
	}
	for _, n := range []int{1000, 4096, 50000, 100000} {
		total := n * (n - 1) / 2
		// Row boundaries, where the quadratic inversion is most fragile:
		// the first and last pair of sampled rows, including the final
		// rows where rows are shortest.
		for _, i := range []int{0, 1, n / 3, n / 2, n - 100, n - 3, n - 2} {
			check(n, i, i+1)
			check(n, i, n-1)
			if mid := (i + 1 + n) / 2; mid > i && mid < n {
				check(n, i, mid)
			}
		}
		// Strided sweep over the condensed offsets: invert, validate the
		// range invariant, re-project.
		stride := total/997 + 1
		for idx := 0; idx < total; idx += stride {
			i, j := unindex(n, idx)
			if i < 0 || j <= i || j >= n {
				t.Fatalf("n=%d: unindex(%d) = (%d, %d) out of range", n, idx, i, j)
			}
			if back := condensed(n, i, j); back != idx {
				t.Fatalf("n=%d: condensed(unindex(%d)) = %d", n, idx, back)
			}
		}
		// The extreme offsets.
		check(n, 0, 1)
		check(n, n-2, n-1)
		if i, j := unindex(n, total-1); i != n-2 || j != n-1 {
			t.Fatalf("n=%d: last offset inverts to (%d, %d)", n, i, j)
		}
	}
}
