package cluster

import (
	"runtime"
	"sort"
	"sync"
)

// Silhouette returns the mean silhouette coefficient of a labeling over
// the distance matrix m, following scikit-learn's definition: for item i
// in cluster C, a(i) is its mean distance to other members of C, b(i) the
// minimum over other clusters of its mean distance to that cluster, and
// s(i) = (b−a)/max(a,b). Items in singleton clusters score 0. The result
// is 0 if the labeling has fewer than 2 clusters or every cluster is a
// singleton.
//
// Per item the cluster sums are accumulated into a dense per-worker
// array in one O(n) pass (instead of walking a label→members map per
// cluster), and items are fanned across GOMAXPROCS. The result is
// bit-identical to SilhouetteSerial: per-cluster sums accumulate in the
// same ascending-index order and the total is reduced in item order.
func Silhouette(m *DistMatrix, labels []int) float64 {
	n := m.Len()
	if n == 0 || len(labels) != n {
		return 0
	}
	minL, maxL := labels[0], labels[0]
	for _, l := range labels[1:] {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	span := maxL - minL + 1
	if span > 4*n+16 {
		// Pathologically sparse label values: dense accumulators would
		// waste memory, and the map-based reference handles it fine.
		return SilhouetteSerial(m, labels)
	}
	counts := make([]int, span)
	for _, l := range labels {
		counts[l-minL]++
	}
	distinct := 0
	for _, c := range counts {
		if c > 0 {
			distinct++
		}
	}
	if distinct < 2 {
		return 0
	}

	// Pre-shifted labels save a subtraction per matrix entry.
	lab := make([]int, n)
	for i, l := range labels {
		lab[i] = l - minL
	}

	out := make([]float64, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	data := m.data
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sums := make([]float64, span)
			for i := w; i < n; i += workers {
				own := lab[i]
				if counts[own] == 1 {
					continue // s(i) = 0 for singletons
				}
				clear(sums)
				// Row i of the full matrix, read straight off the
				// condensed storage: for j < i the offset of (j, i)
				// advances by n-j-2 per step; for j > i the entries are
				// contiguous. Same ascending-j accumulation order as
				// m.At(i, j) — and as SilhouetteSerial — so the result
				// stays bit-identical; the skipped j == i term is the
				// zero diagonal.
				idx := i - 1 // condensed offset of (0, i)
				for j := 0; j < i; j++ {
					sums[lab[j]] += float64(data[idx])
					idx += n - 2 - j
				}
				idx = rowOffset(n, i) // condensed offset of (i, i+1)
				for j := i + 1; j < n; j++ {
					sums[lab[j]] += float64(data[idx])
					idx++
				}
				a := sums[own] / float64(counts[own]-1)
				bestB := -1.0
				for c, cnt := range counts {
					if c == own || cnt == 0 {
						continue
					}
					mean := sums[c] / float64(cnt)
					if bestB < 0 || mean < bestB {
						bestB = mean
					}
				}
				denom := a
				if bestB > denom {
					denom = bestB
				}
				if denom > 0 {
					out[i] = (bestB - a) / denom
				}
			}
		}(w)
	}
	wg.Wait()

	var total float64
	for _, s := range out {
		total += s
	}
	return total / float64(n)
}

// SilhouetteSerial is the single-threaded, map-walking reference
// implementation of Silhouette. It is what the optimized version must
// reproduce bit-for-bit; the parity tests and the naive-path benchmarks
// keep it honest (and measurable).
func SilhouetteSerial(m *DistMatrix, labels []int) float64 {
	n := m.Len()
	if n == 0 || len(labels) != n {
		return 0
	}
	groups := Members(labels)
	if len(groups) < 2 {
		return 0
	}
	clusterIDs := make([]int, 0, len(groups))
	for id := range groups {
		clusterIDs = append(clusterIDs, id)
	}
	sort.Ints(clusterIDs)

	var total float64
	for i := 0; i < n; i++ {
		own := labels[i]
		if len(groups[own]) == 1 {
			continue // s(i) = 0 for singletons
		}
		var a float64
		bestB := -1.0
		for _, cid := range clusterIDs {
			members := groups[cid]
			var sum float64
			for _, j := range members {
				if j != i {
					sum += m.At(i, j)
				}
			}
			if cid == own {
				a = sum / float64(len(members)-1)
			} else {
				mean := sum / float64(len(members))
				if bestB < 0 || mean < bestB {
					bestB = mean
				}
			}
		}
		denom := a
		if bestB > denom {
			denom = bestB
		}
		if denom > 0 {
			total += (bestB - a) / denom
		}
	}
	return total / float64(n)
}

// CutResult pairs a dendrogram cut height with its labeling and score.
type CutResult struct {
	Height     float64
	Labels     []int
	Silhouette float64
	Clusters   int
}

// BestCut evaluates candidate dendrogram cut heights and returns the cut
// with the highest mean silhouette score — the paper's criterion for
// choosing where to cut the dendrogram. maxCandidates bounds the sweep;
// if <= 0 a default of 64 is used, sampling candidate heights evenly.
// Ties prefer the lower height (tighter clusters).
func BestCut(d *Dendrogram, m *DistMatrix, maxCandidates int) CutResult {
	return BestCutConservative(d, m, maxCandidates, 0)
}

// BestCutConservative implements the paper's "tune conservative, yield
// tight clusters" variant (§5.1): among candidate cuts, it finds the
// maximum silhouette, then returns the LOWEST cut height whose
// silhouette is within tol of that maximum. tol = 0 reduces to BestCut;
// a positive tol trades a little silhouette for much tighter clusters,
// leaving fragments for meta-clustering to reconnect.
func BestCutConservative(d *Dendrogram, m *DistMatrix, maxCandidates int, tol float64) CutResult {
	return bestCut(d, m, maxCandidates, tol, Silhouette)
}

// BestCutConservativeSerial is BestCutConservative evaluated with the
// serial reference silhouette. Candidate selection is identical; it
// exists so parity tests and the naive-path benchmark measure the
// pre-optimization sweep.
func BestCutConservativeSerial(d *Dendrogram, m *DistMatrix, maxCandidates int, tol float64) CutResult {
	return bestCut(d, m, maxCandidates, tol, SilhouetteSerial)
}

func bestCut(d *Dendrogram, m *DistMatrix, maxCandidates int, tol float64, sil func(*DistMatrix, []int) float64) CutResult {
	if maxCandidates <= 0 {
		maxCandidates = 64
	}
	merges := d.Merges()
	if len(merges) == 0 {
		labels := make([]int, d.Len())
		for i := range labels {
			labels[i] = i
		}
		return CutResult{Labels: labels, Clusters: d.Len()}
	}

	// Distinct merge heights. Cutting at a height applies every merge at
	// that distance, so each distinct height is one candidate cut.
	heights := make([]float64, 0, len(merges))
	last := -1.0
	for _, mg := range merges {
		if mg.Distance != last {
			heights = append(heights, mg.Distance)
			last = mg.Distance
		}
	}
	cands := sampleHeights(heights, maxCandidates)

	type cand struct {
		res CutResult
	}
	var evaluated []cand
	best := CutResult{Height: -1, Silhouette: -2}
	for _, h := range cands {
		labels := d.CutByHeight(h)
		k := NumClusters(labels)
		if k < 2 || k >= d.Len() {
			continue
		}
		s := sil(m, labels)
		res := CutResult{Height: h, Labels: labels, Silhouette: s, Clusters: k}
		evaluated = append(evaluated, cand{res})
		if s > best.Silhouette {
			best = res
		}
	}
	if tol > 0 && best.Height >= 0 {
		// Conservative: lowest height within tol of the best score.
		// Candidates were evaluated in ascending height order.
		for _, c := range evaluated {
			if c.res.Silhouette >= best.Silhouette-tol {
				best = c.res
				break
			}
		}
	}
	if best.Height < 0 {
		// Degenerate: no valid cut (e.g. n == 2). Fall back to leaves.
		labels := make([]int, d.Len())
		for i := range labels {
			labels[i] = i
		}
		return CutResult{Labels: labels, Clusters: d.Len()}
	}
	return best
}

// SampleCutHeights bounds a candidate cut-height sweep to at most max
// heights, sampled evenly with both the first and the final height
// always included — the same policy bestCut applies to a single
// dendrogram's distinct merge heights. The blocked mining path calls it
// over the heights pooled across per-block dendrograms so its sweep
// matches the exact path's. cands must be ascending and deduplicated.
func SampleCutHeights(cands []float64, max int) []float64 {
	if max <= 0 {
		max = 64
	}
	return sampleHeights(cands, max)
}

// DedupeCutHeights collapses candidate cut heights that sit closer
// together than tol, keeping the lowest height of each near-equal run.
// Two heights within tol of each other almost always cut between the
// same pair of merges (they differ only when a merge lands in the gap,
// which tol is chosen far below), so sweeping both scores the same
// partition twice; keeping the lowest matches the conservative
// selection rule, which prefers the lowest height among equals anyway.
// cands must be ascending. tol <= 0 disables.
func DedupeCutHeights(cands []float64, tol float64) []float64 {
	if tol <= 0 || len(cands) == 0 {
		return cands
	}
	out := cands[:1]
	anchor := cands[0]
	for _, h := range cands[1:] {
		if h-anchor >= tol {
			out = append(out, h)
			anchor = h
		}
	}
	return out
}

// sampleHeights bounds the candidate sweep to at most max heights,
// sampled evenly and always including both the first and the final
// heights. The pre-fix sampling (int(float64(i)*step) over the full
// range) truncated away the tail, so when len(cands) > max the highest
// merge heights — the coarsest cuts — were never evaluated; covering
// [0, len-2] with max−1 evenly spaced samples and appending the final
// height guarantees the coarsest evaluable cut is always swept.
func sampleHeights(cands []float64, max int) []float64 {
	if len(cands) <= max {
		return cands
	}
	if max == 1 {
		return []float64{cands[len(cands)-1]}
	}
	m := max - 1
	last := len(cands) - 2
	out := make([]float64, 0, max)
	for i := 0; i < m; i++ {
		idx := 0
		if m > 1 {
			idx = i * last / (m - 1)
		}
		out = append(out, cands[idx])
	}
	return append(out, cands[len(cands)-1])
}
