package cluster

import "sort"

// Silhouette returns the mean silhouette coefficient of a labeling over
// the distance matrix m, following scikit-learn's definition: for item i
// in cluster C, a(i) is its mean distance to other members of C, b(i) the
// minimum over other clusters of its mean distance to that cluster, and
// s(i) = (b−a)/max(a,b). Items in singleton clusters score 0. The result
// is 0 if the labeling has fewer than 2 clusters or every cluster is a
// singleton.
func Silhouette(m *DistMatrix, labels []int) float64 {
	n := m.Len()
	if n == 0 || len(labels) != n {
		return 0
	}
	groups := Members(labels)
	if len(groups) < 2 {
		return 0
	}
	clusterIDs := make([]int, 0, len(groups))
	for id := range groups {
		clusterIDs = append(clusterIDs, id)
	}
	sort.Ints(clusterIDs)

	var total float64
	for i := 0; i < n; i++ {
		own := labels[i]
		if len(groups[own]) == 1 {
			continue // s(i) = 0 for singletons
		}
		var a float64
		bestB := -1.0
		for _, cid := range clusterIDs {
			members := groups[cid]
			var sum float64
			for _, j := range members {
				if j != i {
					sum += m.At(i, j)
				}
			}
			if cid == own {
				a = sum / float64(len(members)-1)
			} else {
				mean := sum / float64(len(members))
				if bestB < 0 || mean < bestB {
					bestB = mean
				}
			}
		}
		denom := a
		if bestB > denom {
			denom = bestB
		}
		if denom > 0 {
			total += (bestB - a) / denom
		}
	}
	return total / float64(n)
}

// CutResult pairs a dendrogram cut height with its labeling and score.
type CutResult struct {
	Height     float64
	Labels     []int
	Silhouette float64
	Clusters   int
}

// BestCut evaluates candidate dendrogram cut heights and returns the cut
// with the highest mean silhouette score — the paper's criterion for
// choosing where to cut the dendrogram. maxCandidates bounds the sweep;
// if <= 0 a default of 64 is used, sampling candidate heights evenly.
// Ties prefer the lower height (tighter clusters).
func BestCut(d *Dendrogram, m *DistMatrix, maxCandidates int) CutResult {
	return BestCutConservative(d, m, maxCandidates, 0)
}

// BestCutConservative implements the paper's "tune conservative, yield
// tight clusters" variant (§5.1): among candidate cuts, it finds the
// maximum silhouette, then returns the LOWEST cut height whose
// silhouette is within tol of that maximum. tol = 0 reduces to BestCut;
// a positive tol trades a little silhouette for much tighter clusters,
// leaving fragments for meta-clustering to reconnect.
func BestCutConservative(d *Dendrogram, m *DistMatrix, maxCandidates int, tol float64) CutResult {
	if maxCandidates <= 0 {
		maxCandidates = 64
	}
	merges := d.Merges()
	if len(merges) == 0 {
		labels := make([]int, d.Len())
		for i := range labels {
			labels[i] = i
		}
		return CutResult{Labels: labels, Clusters: d.Len()}
	}

	// Distinct merge heights.
	heights := make([]float64, 0, len(merges))
	last := -1.0
	for _, mg := range merges {
		if mg.Distance != last {
			heights = append(heights, mg.Distance)
			last = mg.Distance
		}
	}
	// Candidate cuts between consecutive heights (inclusive of each
	// height itself, which applies all merges at that distance).
	cands := make([]float64, 0, len(heights))
	for _, h := range heights {
		cands = append(cands, h)
	}
	if len(cands) > maxCandidates {
		step := float64(len(cands)) / float64(maxCandidates)
		sampled := make([]float64, 0, maxCandidates)
		for i := 0; i < maxCandidates; i++ {
			sampled = append(sampled, cands[int(float64(i)*step)])
		}
		cands = sampled
	}

	type cand struct {
		res CutResult
	}
	var evaluated []cand
	best := CutResult{Height: -1, Silhouette: -2}
	for _, h := range cands {
		labels := d.CutByHeight(h)
		k := NumClusters(labels)
		if k < 2 || k >= d.Len() {
			continue
		}
		s := Silhouette(m, labels)
		res := CutResult{Height: h, Labels: labels, Silhouette: s, Clusters: k}
		evaluated = append(evaluated, cand{res})
		if s > best.Silhouette {
			best = res
		}
	}
	if tol > 0 && best.Height >= 0 {
		// Conservative: lowest height within tol of the best score.
		// Candidates were evaluated in ascending height order.
		for _, c := range evaluated {
			if c.res.Silhouette >= best.Silhouette-tol {
				best = c.res
				break
			}
		}
	}
	if best.Height < 0 {
		// Degenerate: no valid cut (e.g. n == 2). Fall back to leaves.
		labels := make([]int, d.Len())
		for i := range labels {
			labels[i] = i
		}
		return CutResult{Labels: labels, Clusters: d.Len()}
	}
	return best
}
