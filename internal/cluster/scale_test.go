package cluster

import (
	"math/rand"
	"sync"
	"testing"
)

func TestUnindexRoundTrip(t *testing.T) {
	for _, n := range []int{2, 3, 5, 17, 100, 733} {
		m := NewDistMatrix(n)
		for idx := 0; idx < len(m.data); idx++ {
			i, j := unindex(n, idx)
			if i < 0 || j <= i || j >= n {
				t.Fatalf("n=%d: unindex(%d) = (%d,%d) out of range", n, idx, i, j)
			}
			if got := m.index(i, j); got != idx {
				t.Fatalf("n=%d: index(unindex(%d)) = %d", n, idx, got)
			}
		}
	}
}

func TestComputeBalancedMatchesSerial(t *testing.T) {
	f := func(i, j int) float64 { return float64(i*1000+j) / 7 }
	for _, n := range []int{0, 1, 2, 3, 31, 200} {
		m := Compute(n, f)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if got, want := m.At(i, j), float64(float32(f(i, j))); got != want {
					t.Fatalf("n=%d At(%d,%d) = %v, want %v", n, i, j, got, want)
				}
			}
		}
	}
}

func TestComputeMasked(t *testing.T) {
	n := 60
	f := func(i, j int) float64 { return 0.1 }
	keep := func(i, j int) bool { return (i+j)%3 == 0 }
	m := ComputeMasked(n, f, keep, func(i, j int) float64 { return 0.9 })
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			want := 0.9
			if (i+j)%3 == 0 {
				want = 0.1
			}
			if got := m.At(i, j); got != float64(float32(want)) {
				t.Fatalf("At(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	// nil keep computes every pair.
	m2 := ComputeMasked(5, func(i, j int) float64 { return float64(i + j) }, nil, nil)
	if got := m2.At(1, 3); got != 4 {
		t.Fatalf("nil keep: At(1,3) = %v, want 4", got)
	}
}

// TestComputeMaskedEvaluatesKeepOncePerPair guards the contract that the
// filter is not re-invoked (it may be stateful or expensive).
func TestComputeMaskedKeepSeesEveryPairOnce(t *testing.T) {
	n := 40
	var mu sync.Mutex
	seen := make(map[[2]int]int)
	ComputeMasked(n, func(i, j int) float64 { return 0 }, func(i, j int) bool {
		mu.Lock()
		seen[[2]int{i, j}]++
		mu.Unlock()
		return false
	}, func(i, j int) float64 { return 1 })
	if len(seen) != n*(n-1)/2 {
		t.Fatalf("keep saw %d pairs, want %d", len(seen), n*(n-1)/2)
	}
	for p, c := range seen {
		if c != 1 {
			t.Fatalf("pair %v evaluated %d times", p, c)
		}
	}
}

func TestSilhouetteMatchesSerialBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(120)
		m := Compute(n, func(i, j int) float64 { return rng.Float64() })
		k := 1 + rng.Intn(6)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(k)
		}
		if trial%3 == 0 {
			// Sparse, shifted label values exercise the offset path.
			for i := range labels {
				labels[i] = labels[i]*7 - 3
			}
		}
		fast := Silhouette(m, labels)
		slow := SilhouetteSerial(m, labels)
		if fast != slow {
			t.Fatalf("trial %d (n=%d k=%d): parallel silhouette %v != serial %v", trial, n, k, fast, slow)
		}
	}
}

// TestBestCutReachesCoarsestCut is the regression test for the candidate
// sampling bug: with more distinct merge heights than maxCandidates, the
// old int(float64(i)*step) sampling never reached the final heights, so
// the coarsest (here: best) cut was never evaluated.
func TestBestCutReachesCoarsestCut(t *testing.T) {
	// Two tight blobs with all-distinct intra distances, far apart. The
	// dendrogram has ~n-2 distinct intra heights and one final inter
	// merge; the 2-cluster cut (at the highest intra height) wins the
	// silhouette sweep but is only swept if sampling reaches the tail.
	const half = 30
	n := 2 * half
	m := Compute(n, func(i, j int) float64 {
		if (i < half) == (j < half) {
			return 0.05 + 0.003*float64(i*n+j%97)/float64(n) // distinct-ish, all < 0.3
		}
		return 0.95
	})
	d := Agglomerative(m)
	distinct := 1
	merges := d.Merges()
	for i := 1; i < len(merges); i++ {
		if merges[i].Distance != merges[i-1].Distance {
			distinct++
		}
	}
	maxCandidates := 6
	if distinct <= maxCandidates {
		t.Fatalf("test needs > %d distinct heights, got %d", maxCandidates, distinct)
	}
	res := BestCut(d, m, maxCandidates)
	if res.Clusters != 2 {
		t.Fatalf("BestCut with %d candidates over %d heights found %d clusters, want 2 (coarsest cut dropped?)",
			maxCandidates, distinct, res.Clusters)
	}
}

func TestSampleHeights(t *testing.T) {
	cands := make([]float64, 100)
	for i := range cands {
		cands[i] = float64(i)
	}
	got := sampleHeights(cands, 8)
	if len(got) != 8 {
		t.Fatalf("sampled %d, want 8", len(got))
	}
	if got[0] != cands[0] {
		t.Errorf("first height dropped: %v", got)
	}
	if got[7] != cands[99] || got[6] != cands[98] {
		t.Errorf("final heights dropped: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("samples not strictly increasing: %v", got)
		}
	}
	// Pass-through below the bound; single-sample edge.
	if s := sampleHeights(cands[:5], 8); len(s) != 5 {
		t.Errorf("short input resampled: %v", s)
	}
	if s := sampleHeights(cands, 1); len(s) != 1 || s[0] != cands[99] {
		t.Errorf("max=1 should keep only the final height: %v", s)
	}
	if s := sampleHeights(cands, 2); len(s) != 2 || s[0] != cands[0] || s[1] != cands[99] {
		t.Errorf("max=2 should keep first and final: %v", s)
	}
}

// TestTieHeavyDendrogram exercises sortMerges renumbering and
// CutByHeight label ordering when many merges share a height.
func TestTieHeavyDendrogram(t *testing.T) {
	// Three groups of three: every intra distance exactly 0.2, every
	// inter distance exactly 0.8 — six tied merges then two tied merges.
	n := 9
	group := func(i int) int { return i / 3 }
	m := Compute(n, func(i, j int) float64 {
		if group(i) == group(j) {
			return 0.2
		}
		return 0.8
	})
	d := Agglomerative(m)
	merges := d.Merges()
	if len(merges) != n-1 {
		t.Fatalf("merges = %d, want %d", len(merges), n-1)
	}
	used := make(map[int]bool)
	for k, mg := range merges {
		if mg.Distance < merges[0].Distance {
			t.Fatalf("merges out of order at %d", k)
		}
		if mg.A >= mg.B {
			t.Fatalf("merge %d: A >= B (%d >= %d)", k, mg.A, mg.B)
		}
		if mg.B >= n+k {
			t.Fatalf("merge %d references future cluster %d (tie renumbering broken)", k, mg.B)
		}
		if used[mg.A] || used[mg.B] {
			t.Fatalf("merge %d reuses a consumed cluster", k)
		}
		used[mg.A], used[mg.B] = true, true
	}
	// Cutting at the (float32-rounded) tie height applies every tied
	// merge at that height.
	tie := merges[0].Distance
	labels := d.CutByHeight(tie)
	if k := NumClusters(labels); k != 3 {
		t.Fatalf("cut at tie height: %d clusters, want 3 (labels %v)", k, labels)
	}
	want := []int{0, 0, 0, 1, 1, 1, 2, 2, 2}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("tie-cut labels = %v, want %v (leaf-order labeling)", labels, want)
		}
	}
	if k := NumClusters(d.CutByHeight(tie - 1e-6)); k != n {
		t.Errorf("below tie height: %d clusters, want %d", k, n)
	}
	if k := NumClusters(d.CutByHeight(merges[len(merges)-1].Distance)); k != 1 {
		t.Errorf("at top tie height: %d clusters, want 1", k)
	}
	// The silhouette of the tie cut must agree across implementations.
	if Silhouette(m, labels) != SilhouetteSerial(m, labels) {
		t.Error("tie-cut silhouette differs between implementations")
	}
}
