package cluster

import (
	"math"
	"sort"
)

// Merge records one agglomeration step. Clusters are numbered like scipy's
// linkage output: leaves are 0..n-1, and the merge at step k creates
// cluster n+k.
type Merge struct {
	A, B     int     // merged cluster ids (A < B)
	Distance float64 // linkage distance at which they merged
	Size     int     // size of the resulting cluster
}

// Dendrogram is the full merge tree produced by agglomerative clustering
// over n items. It has exactly n−1 merges (or 0 if n < 2).
type Dendrogram struct {
	n      int
	merges []Merge
}

// Len returns the number of leaves.
func (d *Dendrogram) Len() int { return d.n }

// Merges returns the merge steps in non-decreasing distance order.
func (d *Dendrogram) Merges() []Merge { return d.merges }

// Linkage selects the cluster-distance update rule.
type Linkage int

// Linkage methods. All three are reducible, so the
// nearest-neighbor-chain algorithm applies.
const (
	// Average is UPGMA, the paper's choice.
	Average Linkage = iota
	// Single is nearest-neighbour linkage (chains easily).
	Single
	// Complete is furthest-neighbour linkage (tightest clusters).
	Complete
)

// String implements fmt.Stringer.
func (l Linkage) String() string {
	switch l {
	case Single:
		return "single"
	case Complete:
		return "complete"
	default:
		return "average"
	}
}

// Agglomerative builds a dendrogram over the items of m using average
// linkage (UPGMA) and the nearest-neighbor-chain algorithm, which runs
// in O(n²) time and memory.
func Agglomerative(m *DistMatrix) *Dendrogram {
	return AgglomerativeLinkage(m, Average)
}

// AgglomerativeLinkage is Agglomerative with a selectable linkage
// method (the paper uses average; single and complete support the
// linkage ablation).
func AgglomerativeLinkage(m *DistMatrix, linkage Linkage) *Dendrogram {
	n := m.Len()
	dend := &Dendrogram{n: n}
	if n < 2 {
		return dend
	}

	// Working distance matrix between active clusters, full square for
	// fast row updates. Indices 0..n-1 are the current active cluster
	// slots; slot contents change as clusters merge.
	d := make([][]float32, n)
	for i := range d {
		d[i] = make([]float32, n)
		for j := 0; j < n; j++ {
			if i != j {
				d[i][j] = float32(m.At(i, j))
			}
		}
	}
	size := make([]int, n)
	id := make([]int, n) // scipy-style cluster id held by each slot
	active := make([]bool, n)
	for i := range size {
		size[i] = 1
		id[i] = i
		active[i] = true
	}

	nextID := n
	chain := make([]int, 0, n)
	remaining := n

	anyActive := func() int {
		for i, a := range active {
			if a {
				return i
			}
		}
		return -1
	}

	for remaining > 1 {
		if len(chain) == 0 {
			chain = append(chain, anyActive())
		}
		for {
			c := chain[len(chain)-1]
			// Find nearest active neighbor of c, preferring the chain
			// predecessor on ties (required for NN-chain correctness).
			best := -1
			bestD := float32(math.Inf(1))
			var prev = -1
			if len(chain) >= 2 {
				prev = chain[len(chain)-2]
			}
			for j := range d {
				if !active[j] || j == c {
					continue
				}
				dj := d[c][j]
				if dj < bestD || (dj == bestD && j == prev) {
					bestD = dj
					best = j
				}
			}
			if best == prev {
				// Reciprocal nearest neighbors: merge c and prev.
				a, b := prev, c
				chain = chain[:len(chain)-2]
				lo, hi := id[a], id[b]
				if lo > hi {
					lo, hi = hi, lo
				}
				na, nb := size[a], size[b]
				dend.merges = append(dend.merges, Merge{
					A: lo, B: hi, Distance: float64(bestD), Size: na + nb,
				})
				// Lance-Williams update into slot a.
				for j := range d {
					if !active[j] || j == a || j == b {
						continue
					}
					switch linkage {
					case Single:
						if d[b][j] < d[a][j] {
							d[a][j] = d[b][j]
						}
					case Complete:
						if d[b][j] > d[a][j] {
							d[a][j] = d[b][j]
						}
					default: // Average (UPGMA)
						d[a][j] = (float32(na)*d[a][j] + float32(nb)*d[b][j]) / float32(na+nb)
					}
					d[j][a] = d[a][j]
				}
				active[b] = false
				size[a] = na + nb
				id[a] = nextID
				nextID++
				remaining--
				break
			}
			chain = append(chain, best)
		}
	}

	// NN-chain can emit merges out of distance order; sort and renumber
	// so ids follow scipy conventions.
	sortMerges(dend)
	return dend
}

// sortMerges stably sorts merges by distance and renumbers the internal
// cluster ids accordingly.
func sortMerges(dend *Dendrogram) {
	n := dend.n
	order := make([]int, len(dend.merges))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return dend.merges[order[a]].Distance < dend.merges[order[b]].Distance
	})
	remap := make(map[int]int, len(order)) // old internal id -> new
	sorted := make([]Merge, len(order))
	for newIdx, oldIdx := range order {
		m := dend.merges[oldIdx]
		if m.A >= n {
			m.A = remap[m.A]
		}
		if m.B >= n {
			m.B = remap[m.B]
		}
		if m.A > m.B {
			m.A, m.B = m.B, m.A
		}
		remap[n+oldIdx] = n + newIdx
		sorted[newIdx] = m
	}
	dend.merges = sorted
}

// CutByHeight assigns cluster labels by applying every merge with
// Distance <= h. Labels are 0-based and contiguous, ordered by the lowest
// leaf index in each cluster.
func (d *Dendrogram) CutByHeight(h float64) []int {
	parent := make([]int, d.n+len(d.merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for k, m := range d.merges {
		if m.Distance > h {
			break
		}
		node := d.n + k
		parent[find(m.A)] = node
		parent[find(m.B)] = node
	}
	labels := make([]int, d.n)
	next := 0
	seen := make(map[int]int)
	for i := 0; i < d.n; i++ {
		root := find(i)
		lbl, ok := seen[root]
		if !ok {
			lbl = next
			next++
			seen[root] = lbl
		}
		labels[i] = lbl
	}
	return labels
}

// NumClusters returns the number of distinct labels.
func NumClusters(labels []int) int {
	seen := make(map[int]bool, len(labels))
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}

// Members groups item indices by label.
func Members(labels []int) map[int][]int {
	out := make(map[int][]int)
	for i, l := range labels {
		out[l] = append(out[l], i)
	}
	return out
}
