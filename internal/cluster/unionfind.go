package cluster

import "sort"

// UnionFind is a disjoint-set forest with union by size and path
// halving. The blocked mining path uses it to group banded-LSH
// candidate pairs into connected-component blocks; amortized cost per
// operation is effectively constant.
type UnionFind struct {
	parent []int
	size   []int
}

// NewUnionFind returns a forest of n singleton sets, labeled 0..n-1.
func NewUnionFind(n int) *UnionFind {
	if n < 0 {
		panic("cluster: negative size")
	}
	u := &UnionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
		u.size[i] = 1
	}
	return u
}

// Len returns the number of elements.
func (u *UnionFind) Len() int { return len(u.parent) }

// Find returns the representative of x's set, halving the path as it
// walks.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets holding a and b and returns the representative
// of the merged set.
func (u *UnionFind) Union(a, b int) int {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return ra
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	return ra
}

// Same reports whether a and b are in the same set.
func (u *UnionFind) Same(a, b int) bool { return u.Find(a) == u.Find(b) }

// SizeOf returns the size of the set holding x.
func (u *UnionFind) SizeOf(x int) int { return u.size[u.Find(x)] }

// Components returns every set as a sorted member slice, ordered by
// smallest member. The output is canonical: it depends only on the set
// partition, not on the order unions were applied, so callers feeding
// nondeterministically ordered edges (map-iterated LSH buckets) still
// get deterministic blocks.
func (u *UnionFind) Components() [][]int {
	return u.ComponentsOf(nil)
}

// ComponentsOf is Components restricted to the elements for which
// include returns true (nil includes everything). Members and block
// order are canonical as in Components.
func (u *UnionFind) ComponentsOf(include func(int) bool) [][]int {
	groups := make(map[int][]int)
	for i := range u.parent {
		if include != nil && !include(i) {
			continue
		}
		r := u.Find(i)
		groups[r] = append(groups[r], i) // ascending: i iterates in order
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}
