// Package cluster implements the unsupervised-learning substrate of the
// mining pipeline (§5.1.1): a condensed pairwise distance matrix,
// agglomerative hierarchical clustering with average linkage (via the
// nearest-neighbor-chain algorithm), dendrogram cutting, and the mean
// silhouette score used to pick the cut, mirroring the paper's use of
// scipy/scikit-learn.
package cluster

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// DistMatrix is a symmetric pairwise distance matrix over n items with a
// zero diagonal, stored condensed (upper triangle only) in float32.
type DistMatrix struct {
	n    int
	data []float32
}

// NewDistMatrix returns an all-zero distance matrix over n items.
func NewDistMatrix(n int) *DistMatrix {
	if n < 0 {
		panic("cluster: negative size")
	}
	return &DistMatrix{n: n, data: make([]float32, n*(n-1)/2)}
}

// Len returns the number of items.
func (m *DistMatrix) Len() int { return m.n }

func (m *DistMatrix) index(i, j int) int {
	if i > j {
		i, j = j, i
	}
	// Offset of row i in the condensed upper triangle, then column.
	return i*(2*m.n-i-1)/2 + (j - i - 1)
}

// At returns the distance between items i and j.
func (m *DistMatrix) At(i, j int) float64 {
	if i == j {
		return 0
	}
	return float64(m.data[m.index(i, j)])
}

// Set stores the distance between items i and j (i ≠ j).
func (m *DistMatrix) Set(i, j int, d float64) {
	if i == j {
		if d != 0 {
			panic("cluster: nonzero diagonal")
		}
		return
	}
	m.data[m.index(i, j)] = float32(d)
}

// rowOffset returns the condensed-storage offset of row i for an n-item
// matrix: the number of pairs (i', j') with i' < i.
func rowOffset(n, i int) int { return i * (2*n - i - 1) / 2 }

// AccumRowByLabel adds row i's distances into sums bucketed by each
// item's label — sums[lab[j]] += At(i, j) for every j ≠ i, accumulated
// in ascending j. It is the silhouette scorers' hot loop: the two
// stride walks below read the condensed triangle directly, but the
// summation order and the per-element float32→float64 conversions are
// exactly At's, so the resulting sums are bit-identical to the naive
// per-element loop.
func (m *DistMatrix) AccumRowByLabel(i int, lab []int, sums []float64) {
	// j < i: column i of rows j, stride n−j−2 between consecutive rows.
	idx := i - 1 // index(0, i)
	for j := 0; j < i; j++ {
		sums[lab[j]] += float64(m.data[idx])
		idx += m.n - j - 2
	}
	// j > i: row i is contiguous from its offset.
	row := m.data[rowOffset(m.n, i):rowOffset(m.n, i+1)]
	for k, d := range row {
		sums[lab[i+1+k]] += float64(d)
	}
}

// AccumMultiByLabel computes every item's distance sums bucketed over
// the km multi-member clusters, plus each item's minimum distance to
// any singleton-cluster item. dlab maps items to dense multi-cluster
// ids (singleton members carry -1); acc is cluster-major:
// acc[c*n+i] = Σ_{dlab[j]=c} At(i, j), and minS[i] = min_{dlab[j]=-1,
// j≠i} At(i, j) (callers seed minS with +Inf). One contiguous pass
// over the condensed triangle scatters each stored pair into both
// endpoints' slots; unlike per-item AccumRowByLabel calls it never
// stride-walks a column. The cluster-major layout is what keeps the
// scatter cache-friendly at any accumulator size: per triangle row r
// the acc[lr*n+j] writes stream contiguously within row r's own
// cluster stripe, and the acc[lj*n+r] writes all land at offset r of
// at most km stripes — km cache lines, resident however large n×km
// grows. Per (item, bucket) the summed contributions still arrive in
// ascending j (rows below i land before row i is scanned), so each
// bucket is bit-identical to its AccumRowByLabel counterpart, and a
// min over exact float32→float64 conversions is order-independent, so
// minS[i] equals the smallest singleton bucket a full-width
// accumulation would produce.
func (m *DistMatrix) AccumMultiByLabel(dlab []int, km int, acc []float64, minS []float64) {
	idx := 0
	for r := 0; r < m.n; r++ {
		lr := dlab[r]
		var stripe []float64
		if lr >= 0 {
			stripe = acc[lr*m.n : (lr+1)*m.n]
		}
		for j := r + 1; j < m.n; j++ {
			d := float64(m.data[idx])
			idx++
			if lj := dlab[j]; lj >= 0 {
				acc[lj*m.n+r] += d
			} else if d < minS[r] {
				minS[r] = d
			}
			if stripe != nil {
				stripe[j] += d
			} else if d < minS[j] {
				minS[j] = d
			}
		}
	}
}

// unindex inverts index: it maps a condensed offset back to its (i, j)
// pair with i < j. The closed form solves the row quadratic; the
// adjustment loops absorb float rounding at large n.
func unindex(n, idx int) (int, int) {
	b := float64(2*n - 1)
	i := int((b - math.Sqrt(b*b-8*float64(idx))) / 2)
	if i < 0 {
		i = 0
	}
	for i+1 < n && rowOffset(n, i+1) <= idx {
		i++
	}
	for i > 0 && rowOffset(n, i) > idx {
		i--
	}
	return i, i + 1 + (idx - rowOffset(n, i))
}

// Compute fills a distance matrix over n items by evaluating f(i, j) for
// every pair i < j, in parallel. Work is scheduled as equal-size blocks
// of the condensed pair space claimed from an atomic cursor, so every
// worker gets the same share regardless of row length — feeding whole
// triangular rows would hand early workers ~n pairs and late workers
// almost none. f must be safe for concurrent calls.
func Compute(n int, f func(i, j int) float64) *DistMatrix {
	return computeBlocks(n, f, nil, nil)
}

// ComputeMasked is Compute with a candidate filter: pairs for which
// keep(i, j) is false skip the exact (expensive) distance evaluation and
// take the cheap far(i, j) estimate instead. A nil keep computes every
// pair exactly. keep, f, and far must be safe for concurrent calls; keep
// is evaluated exactly once per pair.
func ComputeMasked(n int, f func(i, j int) float64, keep func(i, j int) bool, far func(i, j int) float64) *DistMatrix {
	return computeBlocks(n, f, keep, far)
}

func computeBlocks(n int, f func(i, j int) float64, keep func(i, j int) bool, far func(i, j int) float64) *DistMatrix {
	m := NewDistMatrix(n)
	total := len(m.data)
	if total == 0 {
		return m
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > total {
		workers = total
	}
	if workers < 1 {
		workers = 1
	}
	// Blocks small enough to balance the tail, large enough that the
	// atomic claim is noise.
	block := total / (workers * 16)
	if block < 256 {
		block = 256
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := int(cursor.Add(int64(block))) - block
				if start >= total {
					return
				}
				end := start + block
				if end > total {
					end = total
				}
				i, j := unindex(n, start)
				for idx := start; idx < end; idx++ {
					if keep == nil || keep(i, j) {
						m.data[idx] = float32(f(i, j))
					} else {
						m.data[idx] = float32(far(i, j))
					}
					j++
					if j == n {
						i++
						j = i + 1
					}
				}
			}
		}()
	}
	wg.Wait()
	return m
}

// Validate checks that all distances are finite and non-negative.
func (m *DistMatrix) Validate() error {
	for idx, d := range m.data {
		if d < 0 || d != d {
			return fmt.Errorf("cluster: invalid distance %v at condensed index %d", d, idx)
		}
	}
	return nil
}
