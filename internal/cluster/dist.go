// Package cluster implements the unsupervised-learning substrate of the
// mining pipeline (§5.1.1): a condensed pairwise distance matrix,
// agglomerative hierarchical clustering with average linkage (via the
// nearest-neighbor-chain algorithm), dendrogram cutting, and the mean
// silhouette score used to pick the cut, mirroring the paper's use of
// scipy/scikit-learn.
package cluster

import (
	"fmt"
	"runtime"
	"sync"
)

// DistMatrix is a symmetric pairwise distance matrix over n items with a
// zero diagonal, stored condensed (upper triangle only) in float32.
type DistMatrix struct {
	n    int
	data []float32
}

// NewDistMatrix returns an all-zero distance matrix over n items.
func NewDistMatrix(n int) *DistMatrix {
	if n < 0 {
		panic("cluster: negative size")
	}
	return &DistMatrix{n: n, data: make([]float32, n*(n-1)/2)}
}

// Len returns the number of items.
func (m *DistMatrix) Len() int { return m.n }

func (m *DistMatrix) index(i, j int) int {
	if i > j {
		i, j = j, i
	}
	// Offset of row i in the condensed upper triangle, then column.
	return i*(2*m.n-i-1)/2 + (j - i - 1)
}

// At returns the distance between items i and j.
func (m *DistMatrix) At(i, j int) float64 {
	if i == j {
		return 0
	}
	return float64(m.data[m.index(i, j)])
}

// Set stores the distance between items i and j (i ≠ j).
func (m *DistMatrix) Set(i, j int, d float64) {
	if i == j {
		if d != 0 {
			panic("cluster: nonzero diagonal")
		}
		return
	}
	m.data[m.index(i, j)] = float32(d)
}

// Compute fills a distance matrix over n items by evaluating f(i, j) for
// every pair i < j, in parallel across rows. f must be safe for
// concurrent calls.
func Compute(n int, f func(i, j int) float64) *DistMatrix {
	m := NewDistMatrix(n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	rows := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rows {
				for j := i + 1; j < n; j++ {
					m.data[m.index(i, j)] = float32(f(i, j))
				}
			}
		}()
	}
	for i := 0; i < n-1; i++ {
		rows <- i
	}
	close(rows)
	wg.Wait()
	return m
}

// Validate checks that all distances are finite and non-negative.
func (m *DistMatrix) Validate() error {
	for idx, d := range m.data {
		if d < 0 || d != d {
			return fmt.Errorf("cluster: invalid distance %v at condensed index %d", d, idx)
		}
	}
	return nil
}
