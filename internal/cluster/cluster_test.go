package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestDistMatrixBasics(t *testing.T) {
	m := NewDistMatrix(4)
	m.Set(0, 1, 0.5)
	m.Set(2, 1, 0.25)
	if got := m.At(1, 0); got != 0.5 {
		t.Errorf("At(1,0) = %v, want 0.5 (symmetry)", got)
	}
	if got := m.At(1, 2); got != 0.25 {
		t.Errorf("At(1,2) = %v, want 0.25", got)
	}
	if got := m.At(3, 3); got != 0 {
		t.Errorf("diagonal = %v, want 0", got)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	m.Set(0, 3, float64(math.NaN()))
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted NaN")
	}
}

func TestDistMatrixIndexCoversAllPairs(t *testing.T) {
	const n = 17
	m := NewDistMatrix(n)
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			idx := m.index(i, j)
			if seen[idx] {
				t.Fatalf("index collision at (%d,%d)", i, j)
			}
			seen[idx] = true
			if idx < 0 || idx >= len(m.data) {
				t.Fatalf("index out of range at (%d,%d): %d", i, j, idx)
			}
		}
	}
	if len(seen) != n*(n-1)/2 {
		t.Fatalf("covered %d indices, want %d", len(seen), n*(n-1)/2)
	}
}

func TestCompute(t *testing.T) {
	m := Compute(5, func(i, j int) float64 { return float64(i + j) })
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if got := m.At(i, j); got != float64(i+j) {
				t.Errorf("At(%d,%d) = %v, want %d", i, j, got, i+j)
			}
		}
	}
}

// twoBlobs returns a distance matrix with two tight groups of the given
// sizes: intra-group distance 0.1, inter-group 0.9.
func twoBlobs(a, b int) *DistMatrix {
	n := a + b
	return Compute(n, func(i, j int) float64 {
		gi, gj := i < a, j < a
		if gi == gj {
			return 0.1
		}
		return 0.9
	})
}

func TestAgglomerativeTwoBlobs(t *testing.T) {
	m := twoBlobs(4, 3)
	d := Agglomerative(m)
	if got := len(d.Merges()); got != 6 {
		t.Fatalf("merges = %d, want n-1 = 6", got)
	}
	labels := d.CutByHeight(0.5)
	if k := NumClusters(labels); k != 2 {
		t.Fatalf("clusters at h=0.5: %d, want 2", k)
	}
	// All of group A share a label, all of group B share the other.
	for i := 1; i < 4; i++ {
		if labels[i] != labels[0] {
			t.Errorf("item %d not with group A: %v", i, labels)
		}
	}
	for i := 5; i < 7; i++ {
		if labels[i] != labels[4] {
			t.Errorf("item %d not with group B: %v", i, labels)
		}
	}
	if labels[0] == labels[4] {
		t.Error("groups A and B merged at h=0.5")
	}
}

func TestMergesSortedByDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Compute(20, func(i, j int) float64 { return rng.Float64() })
	d := Agglomerative(m)
	merges := d.Merges()
	for i := 1; i < len(merges); i++ {
		if merges[i].Distance < merges[i-1].Distance {
			t.Fatalf("merges out of order at %d: %v < %v", i, merges[i].Distance, merges[i-1].Distance)
		}
	}
	// Final merge has all leaves.
	if merges[len(merges)-1].Size != 20 {
		t.Fatalf("final merge size = %d, want 20", merges[len(merges)-1].Size)
	}
}

func TestMergeIDsAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 15
	m := Compute(n, func(i, j int) float64 { return rng.Float64() })
	d := Agglomerative(m)
	used := make(map[int]bool)
	for k, mg := range d.Merges() {
		if mg.A >= mg.B {
			t.Fatalf("merge %d: A >= B (%d >= %d)", k, mg.A, mg.B)
		}
		if mg.B >= n+k {
			t.Fatalf("merge %d references future cluster %d", k, mg.B)
		}
		if used[mg.A] || used[mg.B] {
			t.Fatalf("merge %d reuses a consumed cluster", k)
		}
		used[mg.A], used[mg.B] = true, true
	}
}

func TestCutByHeightExtremes(t *testing.T) {
	m := twoBlobs(3, 3)
	d := Agglomerative(m)
	all := d.CutByHeight(math.Inf(1))
	if k := NumClusters(all); k != 1 {
		t.Errorf("cut at +inf: %d clusters, want 1", k)
	}
	none := d.CutByHeight(-1)
	if k := NumClusters(none); k != 6 {
		t.Errorf("cut at -1: %d clusters, want 6", k)
	}
}

func TestAgglomerativeTinyInputs(t *testing.T) {
	d0 := Agglomerative(NewDistMatrix(0))
	if d0.Len() != 0 || len(d0.Merges()) != 0 {
		t.Error("n=0 dendrogram not empty")
	}
	d1 := Agglomerative(NewDistMatrix(1))
	if len(d1.Merges()) != 0 {
		t.Error("n=1 dendrogram has merges")
	}
	if labels := d1.CutByHeight(1); !reflect.DeepEqual(labels, []int{0}) {
		t.Errorf("n=1 labels = %v", labels)
	}
	m2 := NewDistMatrix(2)
	m2.Set(0, 1, 0.7)
	d2 := Agglomerative(m2)
	if len(d2.Merges()) != 1 || math.Abs(d2.Merges()[0].Distance-0.7) > 1e-6 {
		t.Errorf("n=2 merges = %+v", d2.Merges())
	}
}

func TestAverageLinkageValue(t *testing.T) {
	// Three points: 0 and 1 at distance 0.2; both far from 2 at known
	// distances 0.8 and 1.0 → average linkage merges {0,1} with 2 at 0.9.
	m := NewDistMatrix(3)
	m.Set(0, 1, 0.2)
	m.Set(0, 2, 0.8)
	m.Set(1, 2, 1.0)
	d := Agglomerative(m)
	merges := d.Merges()
	if len(merges) != 2 {
		t.Fatalf("merges = %d, want 2", len(merges))
	}
	if math.Abs(merges[0].Distance-0.2) > 1e-6 {
		t.Errorf("first merge at %v, want 0.2", merges[0].Distance)
	}
	if math.Abs(merges[1].Distance-0.9) > 1e-6 {
		t.Errorf("second merge at %v, want 0.9 (UPGMA)", merges[1].Distance)
	}
}

func TestSilhouettePerfectSplit(t *testing.T) {
	m := twoBlobs(5, 5)
	labels := make([]int, 10)
	for i := 5; i < 10; i++ {
		labels[i] = 1
	}
	s := Silhouette(m, labels)
	// a = 0.1, b = 0.9 → s = (0.9-0.1)/0.9 ≈ 0.888
	if math.Abs(s-8.0/9.0) > 1e-6 {
		t.Errorf("silhouette = %v, want %v", s, 8.0/9.0)
	}
	// A bad labeling must score lower.
	bad := []int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	if sb := Silhouette(m, bad); sb >= s {
		t.Errorf("bad labeling silhouette %v >= good %v", sb, s)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	m := twoBlobs(3, 3)
	if s := Silhouette(m, []int{0, 0, 0, 0, 0, 0}); s != 0 {
		t.Errorf("single cluster silhouette = %v, want 0", s)
	}
	if s := Silhouette(m, []int{0, 1, 2, 3, 4, 5}); s != 0 {
		t.Errorf("all-singleton silhouette = %v, want 0", s)
	}
	if s := Silhouette(NewDistMatrix(0), nil); s != 0 {
		t.Errorf("empty silhouette = %v, want 0", s)
	}
}

func TestBestCutFindsBlobs(t *testing.T) {
	m := twoBlobs(6, 4)
	d := Agglomerative(m)
	res := BestCut(d, m, 0)
	if res.Clusters != 2 {
		t.Fatalf("BestCut clusters = %d, want 2 (labels %v)", res.Clusters, res.Labels)
	}
	if res.Silhouette <= 0.5 {
		t.Errorf("BestCut silhouette = %v, want > 0.5", res.Silhouette)
	}
}

func TestBestCutThreeBlobs(t *testing.T) {
	// Three groups with clear separation.
	sizes := []int{5, 4, 6}
	group := func(i int) int {
		switch {
		case i < sizes[0]:
			return 0
		case i < sizes[0]+sizes[1]:
			return 1
		default:
			return 2
		}
	}
	n := 15
	rng := rand.New(rand.NewSource(11))
	m := Compute(n, func(i, j int) float64 {
		if group(i) == group(j) {
			return 0.05 + 0.05*rng.Float64()
		}
		return 0.8 + 0.1*rng.Float64()
	})
	d := Agglomerative(m)
	res := BestCut(d, m, 0)
	if res.Clusters != 3 {
		t.Fatalf("BestCut clusters = %d, want 3", res.Clusters)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			same := res.Labels[i] == res.Labels[j]
			if same != (group(i) == group(j)) {
				t.Fatalf("items %d,%d labeling mismatch", i, j)
			}
		}
	}
}

func TestBestCutTiny(t *testing.T) {
	res := BestCut(Agglomerative(NewDistMatrix(1)), NewDistMatrix(1), 0)
	if res.Clusters != 1 {
		t.Errorf("n=1 BestCut clusters = %d", res.Clusters)
	}
	m := NewDistMatrix(2)
	m.Set(0, 1, 0.4)
	res = BestCut(Agglomerative(m), m, 0)
	if res.Clusters != 2 {
		t.Errorf("n=2 BestCut clusters = %d, want 2 (no valid 2<=k<n cut)", res.Clusters)
	}
}

func TestMembers(t *testing.T) {
	got := Members([]int{1, 0, 1, 2})
	want := map[int][]int{0: {1}, 1: {0, 2}, 2: {3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Members = %v, want %v", got, want)
	}
}

func TestAgglomerativeQuickInvariants(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%30) + 2
		rng := rand.New(rand.NewSource(seed))
		m := Compute(n, func(i, j int) float64 { return rng.Float64() })
		d := Agglomerative(m)
		if len(d.Merges()) != n-1 {
			return false
		}
		// Every cut yields contiguous labels covering all items.
		labels := d.CutByHeight(0.5)
		k := NumClusters(labels)
		maxLabel := 0
		for _, l := range labels {
			if l < 0 {
				return false
			}
			if l > maxLabel {
				maxLabel = l
			}
		}
		if maxLabel != k-1 {
			return false
		}
		// Monotone: cutting higher yields no more clusters.
		if NumClusters(d.CutByHeight(0.9)) > k {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCutLabelsDeterministicOrder(t *testing.T) {
	m := twoBlobs(3, 3)
	d := Agglomerative(m)
	labels := d.CutByHeight(0.5)
	// Labels should be assigned in leaf order: item 0 gets label 0.
	if labels[0] != 0 {
		t.Errorf("labels[0] = %d, want 0", labels[0])
	}
	sorted := append([]int(nil), labels...)
	sort.Ints(sorted)
	if sorted[0] != 0 {
		t.Errorf("labels not 0-based: %v", labels)
	}
}

func TestLinkageString(t *testing.T) {
	if Average.String() != "average" || Single.String() != "single" || Complete.String() != "complete" {
		t.Error("linkage names wrong")
	}
}

func TestLinkageVariantsKnownValues(t *testing.T) {
	// Points 0,1 close (0.2); distances to 2: 0.8 and 1.0.
	m := NewDistMatrix(3)
	m.Set(0, 1, 0.2)
	m.Set(0, 2, 0.8)
	m.Set(1, 2, 1.0)
	cases := []struct {
		linkage Linkage
		want    float64
	}{
		{Average, 0.9}, {Single, 0.8}, {Complete, 1.0},
	}
	for _, c := range cases {
		d := AgglomerativeLinkage(m, c.linkage)
		got := d.Merges()[1].Distance
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("%s linkage second merge = %v, want %v", c.linkage, got, c.want)
		}
	}
}

func TestLinkageOrdering(t *testing.T) {
	// For any matrix, single-linkage merge heights <= average <= complete
	// at each merge step (a standard property).
	rng := rand.New(rand.NewSource(17))
	m := Compute(12, func(i, j int) float64 { return rng.Float64() })
	single := AgglomerativeLinkage(m, Single).Merges()
	complete := AgglomerativeLinkage(m, Complete).Merges()
	// Compare total merge heights (per-step ids can differ).
	var sSum, cSum float64
	for i := range single {
		sSum += single[i].Distance
		cSum += complete[i].Distance
	}
	if sSum > cSum {
		t.Errorf("single linkage total height %v > complete %v", sSum, cSum)
	}
}

func TestDedupeCutHeights(t *testing.T) {
	in := []float64{0.1, 0.1 + 1e-12, 0.1 + 2e-12, 0.2, 0.2 + 5e-10, 0.3}
	got := DedupeCutHeights(in, 1e-9)
	want := []float64{0.1, 0.2, 0.3}
	if len(got) != len(want) {
		t.Fatalf("DedupeCutHeights = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DedupeCutHeights = %v, want %v", got, want)
		}
	}
	// The anchor advances, so a chain of sub-tolerance steps that sums
	// past the tolerance still keeps its distant end.
	chain := []float64{0, 4e-10, 8e-10, 1.2e-9, 1.6e-9}
	if out := DedupeCutHeights(chain, 1e-9); len(out) != 2 || out[1] != 1.2e-9 {
		t.Errorf("chained dedupe = %v, want [0 1.2e-09]", out)
	}
	// tol <= 0 disables; empty passes through.
	if out := DedupeCutHeights([]float64{0.1, 0.1}, 0); len(out) != 2 {
		t.Errorf("tol=0 must disable dedupe, got %v", out)
	}
	if out := DedupeCutHeights(nil, 1e-9); out != nil {
		t.Errorf("nil input: got %v", out)
	}
}

func TestAccumRowByLabelMatchesAt(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n := 37
	m := Compute(n, func(i, j int) float64 { return rng.Float64() })
	lab := make([]int, n)
	for i := range lab {
		lab[i] = rng.Intn(5)
	}
	for i := 0; i < n; i++ {
		want := make([]float64, 5)
		for j := 0; j < n; j++ {
			if j != i {
				want[lab[j]] += m.At(i, j)
			}
		}
		got := make([]float64, 5)
		m.AccumRowByLabel(i, lab, got)
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("row %d label %d: AccumRowByLabel %v, naive %v (must be bit-identical)", i, c, got[c], want[c])
			}
		}
	}
}

func TestAccumMultiByLabelMatchesRowWalks(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 41
	m := Compute(n, func(i, j int) float64 { return rng.Float64() })
	// Labels 0..2 are multi-member clusters; 3..kb-1 are singletons.
	kb := 9
	lab := make([]int, n)
	for i := range lab {
		lab[i] = rng.Intn(3)
	}
	for c := 3; c < kb; c++ {
		lab[c] = c // one member each
	}
	counts := make([]int, kb)
	for _, l := range lab {
		counts[l]++
	}
	km := 0
	dense := make([]int, kb)
	for c := range counts {
		if counts[c] > 1 {
			dense[c] = km
			km++
		} else {
			dense[c] = -1
		}
	}
	dlab := make([]int, n)
	for i, l := range lab {
		dlab[i] = dense[l]
	}
	acc := make([]float64, n*km)
	minS := make([]float64, n)
	for i := range minS {
		minS[i] = math.Inf(1)
	}
	m.AccumMultiByLabel(dlab, km, acc, minS)
	for i := 0; i < n; i++ {
		want := make([]float64, kb)
		m.AccumRowByLabel(i, lab, want)
		wantMin := math.Inf(1)
		for c := 0; c < kb; c++ {
			if d := dense[c]; d >= 0 {
				if acc[d*n+i] != want[c] {
					t.Fatalf("item %d multi label %d: AccumMultiByLabel %v, AccumRowByLabel %v (must be bit-identical)",
						i, c, acc[d*n+i], want[c])
				}
			} else if c != lab[i] && want[c] < wantMin {
				wantMin = want[c]
			}
		}
		if minS[i] != wantMin {
			t.Fatalf("item %d: min singleton distance %v, want %v", i, minS[i], wantMin)
		}
	}
}
