package httpx

import (
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
)

// CookieRecord is one stored cookie in serializable form, keyed by the
// host that set it. MemJar exports and re-imports these so a browser's
// cookie state can move across process restarts (shard failover) without
// losing returning-visitor identity.
type CookieRecord struct {
	Host  string `json:"host"`
	Name  string `json:"name"`
	Value string `json:"value"`
	Path  string `json:"path,omitempty"`
}

// MemJar is a deterministic in-memory http.CookieJar whose contents can
// be exported and restored. It implements the host-scoped, path-prefixed
// subset of RFC 6265 the simulated ecosystem uses (host-only cookies,
// no Domain attribute matching, no expiry beyond MaxAge<0 deletion) —
// enough to stand in for net/http/cookiejar on the virtual network
// while staying serializable.
type MemJar struct {
	mu      sync.Mutex
	cookies map[string]map[string]*CookieRecord // host → name → cookie
}

// NewMemJar builds an empty MemJar.
func NewMemJar() *MemJar {
	return &MemJar{cookies: make(map[string]map[string]*CookieRecord)}
}

// SetCookies stores the response cookies set by u's host.
func (j *MemJar) SetCookies(u *url.URL, cookies []*http.Cookie) {
	host := u.Hostname()
	if host == "" {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, c := range cookies {
		if c.Name == "" {
			continue
		}
		if c.MaxAge < 0 {
			if m := j.cookies[host]; m != nil {
				delete(m, c.Name)
			}
			continue
		}
		m := j.cookies[host]
		if m == nil {
			m = make(map[string]*CookieRecord)
			j.cookies[host] = m
		}
		path := c.Path
		if path == "" {
			path = "/"
		}
		m[c.Name] = &CookieRecord{Host: host, Name: c.Name, Value: c.Value, Path: path}
	}
}

// Cookies returns the cookies to send with a request to u, in
// deterministic name order.
func (j *MemJar) Cookies(u *url.URL) []*http.Cookie {
	host := u.Hostname()
	path := u.Path
	if path == "" {
		path = "/"
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	m := j.cookies[host]
	if len(m) == 0 {
		return nil
	}
	names := make([]string, 0, len(m))
	for name, c := range m {
		if pathMatches(c.Path, path) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make([]*http.Cookie, 0, len(names))
	for _, name := range names {
		c := m[name]
		out = append(out, &http.Cookie{Name: c.Name, Value: c.Value})
	}
	return out
}

// pathMatches implements RFC 6265 §5.1.4 path matching.
func pathMatches(cookiePath, reqPath string) bool {
	if cookiePath == reqPath {
		return true
	}
	if !strings.HasPrefix(reqPath, cookiePath) {
		return false
	}
	return strings.HasSuffix(cookiePath, "/") || reqPath[len(cookiePath)] == '/'
}

// Export snapshots the jar's contents, sorted by (host, name).
func (j *MemJar) Export() []CookieRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []CookieRecord
	for _, m := range j.cookies {
		for _, c := range m {
			out = append(out, *c)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Host != out[b].Host {
			return out[a].Host < out[b].Host
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// Import merges previously exported cookie records into the jar,
// overwriting same-(host, name) entries.
func (j *MemJar) Import(recs []CookieRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, r := range recs {
		if r.Host == "" || r.Name == "" {
			continue
		}
		m := j.cookies[r.Host]
		if m == nil {
			m = make(map[string]*CookieRecord)
			j.cookies[r.Host] = m
		}
		c := r
		if c.Path == "" {
			c.Path = "/"
		}
		m[c.Name] = &c
	}
}
