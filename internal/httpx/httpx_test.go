package httpx

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetSucceedsFirstTry(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()
	c := New(srv.Client(), nil, RetryPolicy{})
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" || atomic.LoadInt32(&calls) != 1 {
		t.Errorf("body=%q calls=%d", body, calls)
	}
}

func TestRetriesOn5xxThenSucceeds(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) < 3 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, "finally")
	}))
	defer srv.Close()
	c := New(srv.Client(), nil, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond})
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || atomic.LoadInt32(&calls) != 3 {
		t.Errorf("status=%d calls=%d", resp.StatusCode, calls)
	}
}

func TestGivesUpAfterMaxAttempts(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := New(srv.Client(), nil, RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond})
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatalf("final response swallowed: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("final status = %d", resp.StatusCode)
	}
	if got := atomic.LoadInt32(&calls); got != 4 {
		t.Errorf("calls = %d, want 4", got)
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, "bad", http.StatusBadRequest)
	}))
	defer srv.Close()
	c := New(srv.Client(), nil, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond})
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || atomic.LoadInt32(&calls) != 1 {
		t.Errorf("status=%d calls=%d", resp.StatusCode, calls)
	}
}

func TestPostBodyReplayedOnRetry(t *testing.T) {
	var calls int32
	var bodies []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		bodies = append(bodies, string(b))
		if atomic.AddInt32(&calls, 1) < 2 {
			http.Error(w, "busy", http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusCreated)
	}))
	defer srv.Close()
	c := New(srv.Client(), nil, RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond})
	resp, err := c.Post(srv.URL, "application/json", []byte(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(bodies) != 2 || bodies[0] != bodies[1] || bodies[1] != `{"x":1}` {
		t.Errorf("bodies = %q", bodies)
	}
}

func TestRetriesOnConnectionError(t *testing.T) {
	// A server that is immediately closed: connection refused.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close()
	c := New(http.DefaultClient, nil, RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond})
	if _, err := c.Get(url); err == nil {
		t.Fatal("expected connection error")
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	d := 100 * time.Millisecond
	a := jitter(d, "k", 1)
	b := jitter(d, "k", 1)
	if a != b {
		t.Error("jitter not deterministic")
	}
	if a < 75*time.Millisecond || a > 125*time.Millisecond {
		t.Errorf("jitter out of ±25%%: %v", a)
	}
	if jitter(d, "k", 2) == a && jitter(d, "other", 1) == a {
		t.Error("jitter ignores key/attempt")
	}
}

func TestCustomRetryOn(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, "teapot", http.StatusTeapot)
	}))
	defer srv.Close()
	c := New(srv.Client(), nil, RetryPolicy{
		MaxAttempts: 2, BaseDelay: time.Millisecond,
		RetryOn: func(status int) bool { return status == http.StatusTeapot },
	})
	c.Get(srv.URL) //nolint:errcheck
	if atomic.LoadInt32(&calls) != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
}
