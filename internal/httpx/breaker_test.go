package httpx

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pushadminer/internal/simclock"
)

func TestBreakerStateMachine(t *testing.T) {
	clk := simclock.NewSimulated(time.Unix(0, 0))
	b := NewBreaker(clk, BreakerConfig{Threshold: 3, Cooldown: time.Minute})
	const host = "push.example"

	if err := b.Allow(host); err != nil {
		t.Fatalf("closed circuit refused: %v", err)
	}
	b.Report(host, false)
	b.Report(host, false)
	if err := b.Allow(host); err != nil {
		t.Fatalf("under-threshold failures opened circuit: %v", err)
	}
	b.Report(host, false) // third consecutive failure: opens
	if err := b.Allow(host); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open circuit allowed a request (err=%v)", err)
	}
	if got := b.State(host); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}

	clk.Advance(time.Minute)
	if err := b.Allow(host); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if got := b.State(host); got != "half-open" {
		t.Fatalf("state = %q, want half-open", got)
	}
	if err := b.Allow(host); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("second request admitted while probe in flight")
	}

	b.Report(host, false) // probe failed: re-open for another cooldown
	if err := b.Allow(host); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("re-opened circuit allowed a request")
	}

	clk.Advance(time.Minute)
	if err := b.Allow(host); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	b.Report(host, true) // probe succeeded: close
	if got := b.State(host); got != "closed" {
		t.Fatalf("state = %q, want closed", got)
	}
	if err := b.Allow(host); err != nil {
		t.Fatalf("recovered circuit refused: %v", err)
	}
}

func TestBreakerPerHostIsolation(t *testing.T) {
	b := NewBreaker(nil, BreakerConfig{Threshold: 1})
	b.Report("down.example", false)
	if err := b.Allow("down.example"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("failing host's circuit not open")
	}
	if err := b.Allow("fine.example"); err != nil {
		t.Fatalf("healthy host affected by another host's circuit: %v", err)
	}
}

func TestClientFastFailsWhileCircuitOpen(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	clk := simclock.NewSimulated(time.Unix(0, 0))
	b := NewBreaker(clk, BreakerConfig{Threshold: 2, Cooldown: time.Hour})
	c := New(srv.Client(), nil, RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond}).WithBreaker(b)

	for i := 0; i < 2; i++ {
		resp, err := c.Get(srv.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		resp.Body.Close()
	}
	before := atomic.LoadInt32(&calls)
	if _, err := c.Get(srv.URL); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if atomic.LoadInt32(&calls) != before {
		t.Fatal("fast-fail still hit the server")
	}
}

// recClock records Sleep durations without sleeping, so tests can assert
// on backoff decisions.
type recClock struct {
	mu    sync.Mutex
	slept []time.Duration
}

func (c *recClock) Now() time.Time { return time.Unix(0, 0) }
func (c *recClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- time.Time{}
	return ch
}
func (c *recClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.slept = append(c.slept, d)
	c.mu.Unlock()
}

func TestRetryAfterHonored(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			w.Header().Set("Retry-After", "7")
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	clk := &recClock{}
	c := New(srv.Client(), clk, RetryPolicy{
		MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
		RetryAfterCap: time.Minute,
	})
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(clk.slept) != 1 || clk.slept[0] != 7*time.Second {
		t.Fatalf("slept %v, want exactly the advertised 7s", clk.slept)
	}
}

func TestRetryAfterCapped(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			w.Header().Set("Retry-After", "3600")
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	clk := &recClock{}
	c := New(srv.Client(), clk, RetryPolicy{
		MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
	}) // RetryAfterCap defaults to MaxDelay
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(clk.slept) != 1 || clk.slept[0] > 10*time.Millisecond {
		t.Fatalf("slept %v, want Retry-After capped at MaxDelay", clk.slept)
	}
}

func TestParseRetryAfterHTTPDate(t *testing.T) {
	now := time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)
	resp := &http.Response{Header: http.Header{}}
	resp.Header.Set("Retry-After", now.Add(90*time.Second).Format(http.TimeFormat))
	if d := parseRetryAfter(resp, now); d != 90*time.Second {
		t.Fatalf("parsed %v, want 90s", d)
	}
	resp.Header.Set("Retry-After", "garbage")
	if d := parseRetryAfter(resp, now); d != 0 {
		t.Fatalf("garbage header parsed to %v", d)
	}
}

// TestBreakerExportRestore pins the fleet failover contract: a restarted
// shard worker rehydrates breaker state from its checkpoint instead of
// starting closed, so an open circuit stays open (anchored at the saved
// OpenedAt) and half-open probing resumes on the original cooldown
// schedule.
func TestBreakerExportRestore(t *testing.T) {
	clk := simclock.NewSimulated(time.Unix(0, 0))
	b := NewBreaker(clk, BreakerConfig{Threshold: 2, Cooldown: time.Minute})
	b.Report("down.example", false)
	b.Report("down.example", false) // opens
	b.Report("shaky.example", false)
	clk.Advance(20 * time.Second)

	states := b.Export()
	if len(states) != 2 {
		t.Fatalf("Export returned %d host states, want 2: %+v", len(states), states)
	}
	if states[0].Host != "down.example" || states[0].State != "open" {
		t.Fatalf("export[0] = %+v, want open down.example", states[0])
	}
	if states[1].Host != "shaky.example" || states[1].State != "closed" || states[1].Fails != 1 {
		t.Fatalf("export[1] = %+v, want closed shaky.example with 1 fail", states[1])
	}

	restored := NewBreaker(clk, BreakerConfig{Threshold: 2, Cooldown: time.Minute})
	restored.Restore(states)
	if err := restored.Allow("down.example"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("restored breaker forgot the open circuit")
	}
	// One more failure must trip shaky.example: the fail count survived.
	restored.Report("shaky.example", false)
	if err := restored.Allow("shaky.example"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("restored fail count lost: shaky.example should have tripped")
	}
	// Cooldown anchors at the ORIGINAL OpenedAt: 40 more seconds (not a
	// full minute from restore) reach the half-open probe.
	clk.Advance(40 * time.Second)
	if err := restored.Allow("down.example"); err != nil {
		t.Fatalf("half-open probe refused after original cooldown elapsed: %v", err)
	}
	if got := restored.State("down.example"); got != "half-open" {
		t.Fatalf("state = %q, want half-open", got)
	}
}
