package httpx

import (
	"errors"
	"sort"
	"sync"
	"time"

	"pushadminer/internal/simclock"
	"pushadminer/internal/telemetry"
)

// ErrCircuitOpen is returned (wrapped) when a request is refused because
// the target host's circuit breaker is open. Callers can distinguish
// fast-fails from real transport failures with errors.Is — a fast-fail
// means "the host is known-bad right now", not "this request failed".
var ErrCircuitOpen = errors.New("httpx: circuit open")

// BreakerConfig tunes a Breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive request-level failures (all
	// retries exhausted, or a final retryable status) open the circuit.
	// Default 5.
	Threshold int
	// Cooldown is how long an open circuit waits before letting one
	// half-open probe through. Measured on the breaker's clock — the
	// simulated clock in crawls. Default 30 minutes.
	Cooldown time.Duration
	// Transitions, when set, counts circuit state changes by edge
	// ("closed→open", "open→half-open", ...). Optional; nil disables.
	Transitions *telemetry.Family
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Minute
	}
	return c
}

const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

func stateName(s int) string {
	switch s {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

type hostBreaker struct {
	state    int
	fails    int // consecutive failures while closed
	openedAt time.Time
}

// Breaker is a per-host circuit breaker with half-open probing. A host
// that keeps failing gets its circuit opened; after the cooldown a
// single probe request is admitted — success closes the circuit,
// failure re-opens it for another cooldown. All other requests fast-fail
// with ErrCircuitOpen while open, so a push-service outage costs one
// probe per cooldown instead of a full retry storm per poll.
type Breaker struct {
	clock simclock.Clock
	cfg   BreakerConfig

	mu    sync.Mutex
	hosts map[string]*hostBreaker
}

// NewBreaker builds a Breaker. clock may be nil (real time).
func NewBreaker(clock simclock.Clock, cfg BreakerConfig) *Breaker {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Breaker{clock: clock, cfg: cfg.withDefaults(), hosts: make(map[string]*hostBreaker)}
}

// SetTransitions attaches (or replaces) the transition-counting family
// on an existing breaker. Nil-safe; call before traffic for complete
// counts.
func (b *Breaker) SetTransitions(f *telemetry.Family) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cfg.Transitions = f
}

// setState moves a host breaker to a new state, counting the edge.
// Callers hold b.mu.
func (b *Breaker) setState(hb *hostBreaker, to int) {
	if hb.state != to {
		b.cfg.Transitions.Add(stateName(hb.state)+"→"+stateName(to), 1)
	}
	hb.state = to
}

func (b *Breaker) host(host string) *hostBreaker {
	hb := b.hosts[host]
	if hb == nil {
		hb = &hostBreaker{}
		b.hosts[host] = hb
	}
	return hb
}

// Allow reports whether a request to host may proceed. It returns
// ErrCircuitOpen while the circuit is open; when the cooldown has
// elapsed it admits exactly one half-open probe.
func (b *Breaker) Allow(host string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	hb := b.host(host)
	switch hb.state {
	case stateClosed:
		return nil
	case stateOpen:
		if b.clock.Now().Sub(hb.openedAt) >= b.cfg.Cooldown {
			b.setState(hb, stateHalfOpen) // this caller becomes the probe
			return nil
		}
		return ErrCircuitOpen
	default: // half-open: a probe is already in flight
		return ErrCircuitOpen
	}
}

// Report records the outcome of an admitted request.
func (b *Breaker) Report(host string, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	hb := b.host(host)
	if ok {
		b.setState(hb, stateClosed)
		hb.fails = 0
		return
	}
	hb.fails++
	if hb.state == stateHalfOpen || hb.fails >= b.cfg.Threshold {
		b.setState(hb, stateOpen)
		hb.fails = 0
		hb.openedAt = b.clock.Now()
	}
}

// State names the circuit state for host: "closed", "open" or
// "half-open".
func (b *Breaker) State(host string) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return stateName(b.host(host).state)
}

// BreakerHostState is one host's circuit state in serializable form.
// OpenedAt is meaningful only while State is "open" (it anchors the
// cooldown on the breaker's clock, the simulated clock in crawls).
type BreakerHostState struct {
	Host     string    `json:"host"`
	State    string    `json:"state"`
	Fails    int       `json:"fails,omitempty"`
	OpenedAt time.Time `json:"opened_at,omitzero"`
}

// Export snapshots every host's circuit state, sorted by host. Hosts
// still in the zero state (closed, no failures) are omitted — restoring
// onto a fresh breaker recreates them on demand.
func (b *Breaker) Export() []BreakerHostState {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []BreakerHostState
	for host, hb := range b.hosts {
		if hb.state == stateClosed && hb.fails == 0 {
			continue
		}
		out = append(out, BreakerHostState{
			Host: host, State: stateName(hb.state), Fails: hb.fails, OpenedAt: hb.openedAt,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

// Restore reinstates previously exported host states, so a breaker
// rebuilt after a worker restart resumes open circuits mid-cooldown
// instead of re-probing sick hosts at full rate. Restoring does not
// count state transitions — the edges were already counted when they
// happened.
func (b *Breaker) Restore(states []BreakerHostState) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, s := range states {
		if s.Host == "" {
			continue
		}
		hb := b.host(s.Host)
		switch s.State {
		case "open":
			hb.state = stateOpen
		case "half-open":
			hb.state = stateHalfOpen
		default:
			hb.state = stateClosed
		}
		hb.fails = s.Fails
		hb.openedAt = s.OpenedAt
	}
}
