package httpx

import (
	"net/http"
	"net/url"
	"reflect"
	"testing"
)

func mustURL(t *testing.T, s string) *url.URL {
	t.Helper()
	u, err := url.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func cookieNames(cs []*http.Cookie) []string {
	var names []string
	for _, c := range cs {
		names = append(names, c.Name)
	}
	return names
}

func TestMemJarSetGetAndHostIsolation(t *testing.T) {
	jar := NewMemJar()
	a := mustURL(t, "http://ads.example.test/subscribe")
	b := mustURL(t, "http://other.example.test/")

	jar.SetCookies(a, []*http.Cookie{{Name: "uid", Value: "u-1"}})
	got := jar.Cookies(a)
	if len(got) != 1 || got[0].Name != "uid" || got[0].Value != "u-1" {
		t.Fatalf("Cookies(a) = %+v, want uid=u-1", got)
	}
	if got := jar.Cookies(b); len(got) != 0 {
		t.Fatalf("cookie leaked across hosts: %+v", got)
	}

	// Same name overwrites; new name adds, returned in sorted order.
	jar.SetCookies(a, []*http.Cookie{{Name: "uid", Value: "u-2"}, {Name: "ab", Value: "x"}})
	if names := cookieNames(jar.Cookies(a)); !reflect.DeepEqual(names, []string{"ab", "uid"}) {
		t.Fatalf("cookie order = %v, want [ab uid]", names)
	}
	for _, c := range jar.Cookies(a) {
		if c.Name == "uid" && c.Value != "u-2" {
			t.Fatalf("uid = %q, want overwritten u-2", c.Value)
		}
	}
}

func TestMemJarPathMatching(t *testing.T) {
	jar := NewMemJar()
	host := mustURL(t, "http://site.example.test/app/page")
	jar.SetCookies(host, []*http.Cookie{{Name: "scoped", Value: "v", Path: "/app"}})

	if got := jar.Cookies(mustURL(t, "http://site.example.test/app/other")); len(got) != 1 {
		t.Fatalf("path-matching subpath got %d cookies, want 1", len(got))
	}
	if got := jar.Cookies(mustURL(t, "http://site.example.test/elsewhere")); len(got) != 0 {
		t.Fatalf("non-matching path got cookies: %+v", got)
	}
}

func TestMemJarDeleteAndExportImport(t *testing.T) {
	jar := NewMemJar()
	a := mustURL(t, "http://a.example.test/")
	b := mustURL(t, "http://b.example.test/")
	jar.SetCookies(a, []*http.Cookie{{Name: "keep", Value: "1"}, {Name: "gone", Value: "2"}})
	jar.SetCookies(b, []*http.Cookie{{Name: "uid", Value: "3"}})
	jar.SetCookies(a, []*http.Cookie{{Name: "gone", MaxAge: -1}})

	recs := jar.Export()
	want := []CookieRecord{
		{Host: "a.example.test", Name: "keep", Value: "1", Path: "/"},
		{Host: "b.example.test", Name: "uid", Value: "3", Path: "/"},
	}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("Export = %+v, want %+v", recs, want)
	}

	// Import into a fresh jar reproduces the same view and re-exports
	// byte-identically — the shard-state roundtrip the fleet relies on.
	fresh := NewMemJar()
	fresh.Import(recs)
	if got := fresh.Cookies(a); len(got) != 1 || got[0].Name != "keep" {
		t.Fatalf("imported jar Cookies(a) = %+v", got)
	}
	if got := fresh.Export(); !reflect.DeepEqual(got, recs) {
		t.Fatalf("re-export = %+v, want %+v", got, recs)
	}
}
