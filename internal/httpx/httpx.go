// Package httpx provides the retrying HTTP client used by the
// simulation's service clients (push service, blocklists). Crawling
// infrastructure lives or dies on tolerating transient failures: a
// dropped connection or a 5xx from one poll must not kill a two-month
// collection run. The wrapper retries idempotent-by-construction
// requests with capped exponential backoff and deterministic jitter.
package httpx

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"time"

	"pushadminer/internal/simclock"
)

// RetryPolicy configures retry behaviour.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt
	// included). Default 3.
	MaxAttempts int
	// BaseDelay is the first backoff delay, doubled per retry. Default
	// 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Default 2s.
	MaxDelay time.Duration
	// RetryOn decides whether a response status merits a retry.
	// Default: 5xx and 429.
	RetryOn func(status int) bool
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.RetryOn == nil {
		p.RetryOn = func(status int) bool {
			return status >= 500 || status == http.StatusTooManyRequests
		}
	}
	return p
}

// Client wraps an http.Client with retries. The zero value is unusable;
// use New.
type Client struct {
	http   *http.Client
	clock  simclock.Clock
	policy RetryPolicy
}

// New builds a retrying client. clock may be nil (real time).
func New(httpClient *http.Client, clock simclock.Clock, policy RetryPolicy) *Client {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Client{http: httpClient, clock: clock, policy: policy.withDefaults()}
}

// Get issues a GET with retries.
func (c *Client) Get(url string) (*http.Response, error) {
	return c.do(func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	}, url)
}

// Post issues a POST with retries; the body is buffered so it can be
// replayed on each attempt.
func (c *Client) Post(url, contentType string, body []byte) (*http.Response, error) {
	return c.do(func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", contentType)
		return req, nil
	}, url)
}

// do runs the attempt loop. Transport errors are retried and surface as
// an error once attempts are exhausted; retryable HTTP statuses are
// retried but the FINAL response is returned to the caller (never
// swallowed), matching common retrying-client behaviour.
func (c *Client) do(build func() (*http.Request, error), key string) (*http.Response, error) {
	var lastErr error
	delay := c.policy.BaseDelay
	for attempt := 1; attempt <= c.policy.MaxAttempts; attempt++ {
		req, err := build()
		if err != nil {
			return nil, fmt.Errorf("httpx: build request: %w", err)
		}
		resp, err := c.http.Do(req)
		switch {
		case err != nil:
			lastErr = err
		case c.policy.RetryOn(resp.StatusCode) && attempt < c.policy.MaxAttempts:
			// Drain so the connection can be reused, then retry.
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck
			resp.Body.Close()
			lastErr = fmt.Errorf("httpx: status %d", resp.StatusCode)
		default:
			return resp, nil
		}
		if attempt < c.policy.MaxAttempts {
			c.clock.Sleep(jitter(delay, key, attempt))
			delay *= 2
			if delay > c.policy.MaxDelay {
				delay = c.policy.MaxDelay
			}
		}
	}
	return nil, fmt.Errorf("httpx: %s: all %d attempts failed: %w", key, c.policy.MaxAttempts, lastErr)
}

// jitter perturbs a delay by ±25% deterministically per (key, attempt),
// so simulations replay identically while a fleet of real clients
// doesn't thunder in lockstep.
func jitter(d time.Duration, key string, attempt int) time.Duration {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", key, attempt)
	frac := float64(h.Sum64()%1000)/1000*0.5 - 0.25
	return d + time.Duration(float64(d)*frac)
}
