// Package httpx provides the retrying HTTP client used by the
// simulation's service clients (push service, blocklists). Crawling
// infrastructure lives or dies on tolerating transient failures: a
// dropped connection or a 5xx from one poll must not kill a two-month
// collection run. The wrapper retries idempotent-by-construction
// requests with capped exponential backoff and deterministic jitter.
package httpx

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"pushadminer/internal/simclock"
	"pushadminer/internal/telemetry"
)

// RetryMetrics counts retry-loop activity for telemetry. All fields are
// optional (nil counters no-op); a nil *RetryMetrics disables counting
// entirely.
type RetryMetrics struct {
	// Retries counts re-attempts (every try after the first).
	Retries *telemetry.Counter
	// RetryAfterWaits counts backoff sleeps stretched by an honored
	// Retry-After header.
	RetryAfterWaits *telemetry.Counter
}

// RetryPolicy configures retry behaviour.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt
	// included). Default 3.
	MaxAttempts int
	// BaseDelay is the first backoff delay, doubled per retry. Default
	// 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Default 2s.
	MaxDelay time.Duration
	// RetryOn decides whether a response status merits a retry.
	// Default: 5xx and 429.
	RetryOn func(status int) bool
	// RetryAfterCap bounds how long an honored Retry-After header can
	// stretch one backoff sleep. Default: MaxDelay. Simulated-time
	// callers keep this small so real-time sleeps stay cheap.
	RetryAfterCap time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.RetryOn == nil {
		p.RetryOn = func(status int) bool {
			return status >= 500 || status == http.StatusTooManyRequests
		}
	}
	if p.RetryAfterCap <= 0 {
		p.RetryAfterCap = p.MaxDelay
	}
	return p
}

// Client wraps an http.Client with retries. The zero value is unusable;
// use New.
type Client struct {
	http    *http.Client
	clock   simclock.Clock
	policy  RetryPolicy
	breaker *Breaker
	metrics *RetryMetrics
}

// WithMetrics attaches retry counters and returns the client.
func (c *Client) WithMetrics(m *RetryMetrics) *Client {
	c.metrics = m
	return c
}

// WithBreaker attaches a per-host circuit breaker and returns the
// client. While a host's circuit is open, requests fail fast with an
// error wrapping ErrCircuitOpen instead of being attempted.
func (c *Client) WithBreaker(b *Breaker) *Client {
	c.breaker = b
	return c
}

// New builds a retrying client. clock may be nil (real time).
func New(httpClient *http.Client, clock simclock.Clock, policy RetryPolicy) *Client {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Client{http: httpClient, clock: clock, policy: policy.withDefaults()}
}

// Get issues a GET with retries.
func (c *Client) Get(url string) (*http.Response, error) {
	return c.do(func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	}, url)
}

// Post issues a POST with retries; the body is buffered so it can be
// replayed on each attempt.
func (c *Client) Post(url, contentType string, body []byte) (*http.Response, error) {
	return c.do(func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", contentType)
		return req, nil
	}, url)
}

// do wraps the attempt loop with circuit-breaker accounting: open
// circuits fail fast, and the loop's outcome (success, or a request
// that exhausted its retries / ended on a retryable status) feeds the
// breaker's consecutive-failure count.
func (c *Client) do(build func() (*http.Request, error), key string) (*http.Response, error) {
	host := hostOf(key)
	if c.breaker != nil && host != "" {
		if err := c.breaker.Allow(host); err != nil {
			return nil, fmt.Errorf("httpx: %s: %w", key, err)
		}
	}
	resp, err := c.attempts(build, key)
	if c.breaker != nil && host != "" {
		ok := err == nil && !c.policy.RetryOn(resp.StatusCode)
		c.breaker.Report(host, ok)
	}
	return resp, err
}

// attempts runs the retry loop. Transport errors are retried and
// surface as an error once attempts are exhausted; retryable HTTP
// statuses are retried but the FINAL response is returned to the caller
// (never swallowed), matching common retrying-client behaviour. A
// Retry-After header on 429/503 responses stretches the next backoff
// sleep up to RetryAfterCap. Context cancellation is terminal: a
// cancelled request is never retried.
func (c *Client) attempts(build func() (*http.Request, error), key string) (*http.Response, error) {
	var lastErr error
	delay := c.policy.BaseDelay
	for attempt := 1; attempt <= c.policy.MaxAttempts; attempt++ {
		req, err := build()
		if err != nil {
			return nil, fmt.Errorf("httpx: build request: %w", err)
		}
		var retryAfter time.Duration
		resp, err := c.http.Do(req)
		switch {
		case err != nil:
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, fmt.Errorf("httpx: %s: %w", key, err)
			}
			lastErr = err
		case c.policy.RetryOn(resp.StatusCode) && attempt < c.policy.MaxAttempts:
			retryAfter = parseRetryAfter(resp, c.clock.Now())
			// Drain so the connection can be reused, then retry.
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck
			resp.Body.Close()
			lastErr = fmt.Errorf("httpx: status %d", resp.StatusCode)
		default:
			return resp, nil
		}
		if attempt < c.policy.MaxAttempts {
			d := jitter(delay, key, attempt)
			if retryAfter > 0 {
				if m := c.metrics; m != nil {
					m.RetryAfterWaits.Inc()
				}
				if retryAfter > c.policy.RetryAfterCap {
					retryAfter = c.policy.RetryAfterCap
				}
				if retryAfter > d {
					d = retryAfter
				}
			}
			if m := c.metrics; m != nil {
				m.Retries.Inc()
			}
			c.clock.Sleep(d)
			delay *= 2
			if delay > c.policy.MaxDelay {
				delay = c.policy.MaxDelay
			}
		}
	}
	return nil, fmt.Errorf("httpx: %s: all %d attempts failed: %w", key, c.policy.MaxAttempts, lastErr)
}

// parseRetryAfter reads a Retry-After header as either delay-seconds or
// an HTTP date. Returns 0 when absent or unparseable.
func parseRetryAfter(resp *http.Response, now time.Time) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// hostOf extracts the host from a request key (a URL), for breaker
// bookkeeping. Returns "" when the key is not a URL.
func hostOf(key string) string {
	u, err := url.Parse(key)
	if err != nil {
		return ""
	}
	return u.Hostname()
}

// jitter perturbs a delay by ±25% deterministically per (key, attempt),
// so simulations replay identically while a fleet of real clients
// doesn't thunder in lockstep.
func jitter(d time.Duration, key string, attempt int) time.Duration {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", key, attempt)
	frac := float64(h.Sum64()%1000)/1000*0.5 - 0.25
	return d + time.Duration(float64(d)*frac)
}
