package core

import (
	"fmt"
	"strings"
	"sync/atomic"

	"pushadminer/internal/telemetry"
)

// MiningStatus is the live introspection snapshot served at /miningz:
// the mining pipeline's mirror of the fleet's FleetStatus. It is
// rebuilt (as a fresh immutable value) at every stage boundary and at
// throttled intervals inside the block-clustering and cut-sweep
// fan-outs, published through an atomic.Value, and rendered as JSON or
// (via String) a terminal dashboard by cmd/wpnstat.
type MiningStatus struct {
	// Stage is the pipeline stage currently running ("featurize",
	// "blocks", "cut", ...; "done" after the run finishes).
	Stage string `json:"stage"`
	// Mode names the clustering path: naive, cached, pruned, blocked,
	// or incremental.
	Mode string `json:"mode"`
	// Records is the corpus size entering clustering.
	Records int `json:"records"`

	// BlocksTotal/BlocksDone track per-block exact clustering on the
	// blocked path (0/0 on the matrix paths).
	BlocksTotal int `json:"blocks_total"`
	BlocksDone  int `json:"blocks_done"`
	// HeightsTotal/HeightsDone track the pooled cut sweep's candidate
	// heights (0/0 below the validation-scale crossover, where the
	// exact sweep machinery selects the cut).
	HeightsTotal int `json:"heights_total"`
	HeightsDone  int `json:"heights_done"`

	// PairsExact/PairsPruned mirror the cluster_pairs accounting:
	// soft-cosine evaluations performed vs. skipped.
	PairsExact  int64 `json:"pairs_exact"`
	PairsPruned int64 `json:"pairs_pruned"`

	// SweepBlocksRescored / SweepMemoHits describe the pooled cut
	// sweep's memoization: block re-cuts actually performed vs.
	// (candidate × block) sweep-grid cells served from the per-block
	// cut memo. On the full (unmemoized) sweep rescored counts every
	// block at every height and hits stay 0; both stay 0 below the
	// validation-scale crossover, where the exact sweep runs.
	SweepBlocksRescored int64 `json:"sweep_blocks_rescored"`
	SweepMemoHits       int64 `json:"sweep_memo_hits"`

	// IncrementalAdds / Reclusters / QueueDepth describe the streaming
	// path: records ingested, Recluster calls, and records added since
	// the last Recluster (the dirty backlog the next call drains).
	IncrementalAdds int `json:"incremental_adds"`
	Reclusters      int `json:"reclusters"`
	QueueDepth      int `json:"recluster_queue_depth"`

	// Done marks the final publication of a run.
	Done bool `json:"done"`
}

// String renders the status as the one-screen dashboard wpnstat shows
// with -endpoint miningz.
func (s MiningStatus) String() string {
	var b strings.Builder
	state := "running"
	if s.Done {
		state = "done"
	}
	fmt.Fprintf(&b, "mining %-11s %-8s stage %-15s n=%d\n", s.Mode, state, s.Stage, s.Records)
	fmt.Fprintf(&b, "blocks %d/%-8d heights %d/%-8d pairs exact=%d pruned=%d\n",
		s.BlocksDone, s.BlocksTotal, s.HeightsDone, s.HeightsTotal, s.PairsExact, s.PairsPruned)
	if s.SweepBlocksRescored > 0 || s.SweepMemoHits > 0 {
		fmt.Fprintf(&b, "sweep rescored=%d memo hits=%d\n",
			s.SweepBlocksRescored, s.SweepMemoHits)
	}
	if s.Mode == "incremental" || s.IncrementalAdds > 0 {
		fmt.Fprintf(&b, "incremental adds=%d reclusters=%d queue=%d\n",
			s.IncrementalAdds, s.Reclusters, s.QueueDepth)
	}
	return b.String()
}

// lastMiningStatus holds the most recently published status from any
// run in the process, for CurrentMiningStatus (the poll surface
// pushadminer's progress logger uses; /miningz reads the per-run
// provider instead).
var lastMiningStatus atomic.Value // *MiningStatus

// CurrentMiningStatus returns the most recently published mining
// status, or nil when no observed mining run has started.
func CurrentMiningStatus() *MiningStatus {
	v := lastMiningStatus.Load()
	if v == nil {
		return nil
	}
	return v.(*MiningStatus)
}

// miningProgress is one run's live-progress accumulator: lock-free
// counters the (possibly parallel) mining hot paths bump, plus the
// atomic.Value the immutable MiningStatus snapshots publish through.
// A nil *miningProgress no-ops everywhere, so instrumented paths need
// no guards; it is created only when observation is on.
type miningProgress struct {
	mode    string
	records int

	stage                       atomic.Value // string
	blocksTotal, blocksDone     atomic.Int64
	heightsTotal, heightsDone   atomic.Int64
	pairsExact, pairsPruned     atomic.Int64
	sweepRescored, sweepMemoHit atomic.Int64
	adds, reclusters, queue     atomic.Int64
	statusVal                   atomic.Value // *MiningStatus
}

// newMiningProgress builds a progress accumulator for one run and
// registers it as the /miningz provider (latest run wins, like
// SetFleetz re-registration).
func newMiningProgress(mode string, records int) *miningProgress {
	p := &miningProgress{mode: mode, records: records}
	p.stage.Store("start")
	telemetry.SetMiningz(p.provider)
	p.publish(false)
	return p
}

// provider is the registered /miningz callback: it returns the last
// published immutable snapshot (never the live accumulator).
func (p *miningProgress) provider() any {
	v := p.statusVal.Load()
	if v == nil {
		return nil
	}
	return v
}

// publish rebuilds and publishes an immutable status snapshot. Fresh
// value every time: the published pointer is read concurrently by the
// debug server and must never be mutated afterwards.
func (p *miningProgress) publish(done bool) {
	if p == nil {
		return
	}
	st := &MiningStatus{
		Stage:               p.stage.Load().(string),
		Mode:                p.mode,
		Records:             p.records,
		BlocksTotal:         int(p.blocksTotal.Load()),
		BlocksDone:          int(p.blocksDone.Load()),
		HeightsTotal:        int(p.heightsTotal.Load()),
		HeightsDone:         int(p.heightsDone.Load()),
		PairsExact:          p.pairsExact.Load(),
		PairsPruned:         p.pairsPruned.Load(),
		SweepBlocksRescored: p.sweepRescored.Load(),
		SweepMemoHits:       p.sweepMemoHit.Load(),
		IncrementalAdds:     int(p.adds.Load()),
		Reclusters:          int(p.reclusters.Load()),
		QueueDepth:          int(p.queue.Load()),
		Done:                done,
	}
	if done {
		st.Stage = "done"
	}
	p.statusVal.Store(st)
	lastMiningStatus.Store(st)
}

// setStage records a stage transition and republishes.
func (p *miningProgress) setStage(name string) {
	if p == nil {
		return
	}
	p.stage.Store(name)
	p.publish(false)
}

// setBlocks resets the per-block progress for a (re)clustering round.
func (p *miningProgress) setBlocks(total int) {
	if p == nil {
		return
	}
	p.blocksTotal.Store(int64(total))
	p.blocksDone.Store(0)
	p.publish(false)
}

// blockDone marks one block clustered. Publication is throttled (every
// 64 blocks, plus the final one) so a 50k-record run with thousands of
// blocks does not allocate a snapshot per block.
func (p *miningProgress) blockDone() {
	if p == nil {
		return
	}
	done := p.blocksDone.Add(1)
	if done%64 == 0 || done == p.blocksTotal.Load() {
		p.publish(false)
	}
}

// setHeights resets the cut-sweep progress for one sweep.
func (p *miningProgress) setHeights(total int) {
	if p == nil {
		return
	}
	p.heightsTotal.Store(int64(total))
	p.heightsDone.Store(0)
	p.publish(false)
}

// heightDone marks one candidate height scored (the sweep is bounded
// by MaxCutCandidates, so per-height publication is cheap).
func (p *miningProgress) heightDone() {
	if p == nil {
		return
	}
	p.heightsDone.Add(1)
	p.publish(false)
}

// addPairs accumulates exact/pruned pair counts.
func (p *miningProgress) addPairs(exact, pruned int64) {
	if p == nil {
		return
	}
	p.pairsExact.Add(exact)
	p.pairsPruned.Add(pruned)
}

// sweepWork accumulates cut-sweep memoization counters (block re-cuts
// performed, memo cells served). Accumulates only; the next published
// event (heightDone, reclustered, finish) carries it out.
func (p *miningProgress) sweepWork(rescored, memoHits int64) {
	if p == nil {
		return
	}
	p.sweepRescored.Add(rescored)
	p.sweepMemoHit.Add(memoHits)
}

// incrementalAdd records one streamed record ingested since the last
// Recluster.
func (p *miningProgress) incrementalAdd() {
	if p == nil {
		return
	}
	p.adds.Add(1)
	p.queue.Add(1)
}

// reclustered records one Recluster call draining the add queue.
func (p *miningProgress) reclustered() {
	if p == nil {
		return
	}
	p.reclusters.Add(1)
	p.queue.Store(0)
	p.publish(false)
}

// finish publishes the terminal snapshot.
func (p *miningProgress) finish() { p.publish(true) }

// clusterMode names the path ClusterWPNs will take for opts, for the
// status Mode field and progress logging.
func clusterMode(opts ClusterOptions) string {
	switch {
	case opts.Naive:
		return "naive"
	case opts.Incremental:
		return "incremental"
	case opts.Blocked:
		return "blocked"
	case opts.Prune.Enabled:
		return "pruned"
	default:
		return "cached"
	}
}
