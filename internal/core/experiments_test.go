package core

import (
	"testing"
	"time"

	"pushadminer/internal/webeco"
)

func TestRunRevisit(t *testing.T) {
	s := getStudy(t)
	rr, err := RunRevisit(s, 200, 30*24*time.Hour, 5*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if rr.SitesRevisited == 0 {
		t.Fatal("revisited no sites")
	}
	if rr.Notifications == 0 {
		t.Fatal("revisit collected no notifications")
	}
	if rr.MaliciousAds > 0 && rr.VTFlagged > rr.MaliciousAds {
		t.Errorf("VT flagged %d > malicious %d", rr.VTFlagged, rr.MaliciousAds)
	}
	// The headline finding: PushAdMiner labels more malicious ads than
	// VT alone catches.
	if rr.MaliciousAds > 0 && rr.VTFlagged >= rr.MaliciousAds {
		t.Errorf("VT caught everything (%d of %d); blocklist gaps missing", rr.VTFlagged, rr.MaliciousAds)
	}
	t.Logf("revisit: %+v", rr)
}

func TestRunPilot(t *testing.T) {
	eco, err := webeco.New(webeco.Config{Seed: 9, Scale: 0.004})
	if err != nil {
		t.Fatal(err)
	}
	defer eco.Close()
	pr, err := RunPilot(eco, 96*time.Hour, 7*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Sources < 5 {
		t.Skipf("too few sources: %d", pr.Sources)
	}
	if pr.FractionWithin < 0.85 {
		t.Errorf("within-15min fraction = %.2f, want >= 0.85 (paper: 0.98)", pr.FractionWithin)
	}
	t.Log(pr)
}

func TestRunDoublePermissionCheck(t *testing.T) {
	res, err := RunDoublePermissionCheck(3, 0.004, 0.25, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checked == 0 {
		t.Fatal("checked no sites")
	}
	frac := float64(res.DoublePermission) / float64(res.Checked)
	if frac < 0.05 || frac > 0.5 {
		t.Errorf("double-permission fraction = %.2f over %d sites, want ≈0.25", frac, res.Checked)
	}
}

func TestRunQuietUICheck(t *testing.T) {
	s := getStudy(t)
	res, err := RunQuietUICheck(s, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Revisited == 0 {
		t.Fatal("revisited nothing")
	}
	if res.Quieted != 0 {
		t.Errorf("%d sites quieted; rollout list should be empty", res.Quieted)
	}
	if res.StillPrompted != res.Revisited {
		t.Errorf("only %d/%d still prompted; paper found all did", res.StillPrompted, res.Revisited)
	}
}

func TestFindArchetypes(t *testing.T) {
	s := getStudy(t)
	ar := FindArchetypes(s)
	if ar.MaliciousCampaign == nil {
		t.Error("no C1 (malicious campaign) archetype")
	}
	if ar.Singleton == nil {
		t.Error("no C4 (singleton) archetype")
	}
	if ar.MaliciousCampaign != nil && len(ar.MaliciousCampaign.SourceDomains) < 2 {
		t.Error("C1 is not multi-source")
	}
}

func TestLargestMetaClusters(t *testing.T) {
	s := getStudy(t)
	metas := LargestMetaClusters(s, 2)
	if len(metas) == 0 {
		t.Fatal("no meta cluster examples")
	}
	if len(metas) == 2 && metas[1].NumClusters > metas[0].NumClusters {
		t.Error("meta examples not sorted by size")
	}
	for _, m := range metas {
		if len(m.Domains) > 6 {
			t.Error("domains not truncated")
		}
	}
}

func TestSampleSingletons(t *testing.T) {
	s := getStudy(t)
	ex := SampleSingletons(s, 5)
	if len(ex) == 0 {
		t.Fatal("no singleton examples")
	}
	for _, e := range ex {
		if e.Title == "" || e.SourceDomain == "" {
			t.Errorf("incomplete singleton example: %+v", e)
		}
	}
}
