package core

import (
	"testing"

	"pushadminer/internal/cluster"
)

// addOrder is a deterministic non-trivial arrival permutation (stride
// 7 with collision bumping), so consecutive arrivals are scattered
// across the corpus rather than replaying it in index order.
func addOrder(n int) []int {
	order := make([]int, 0, n)
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		j := (i * 7) % n
		for seen[j] {
			j = (j + 1) % n
		}
		seen[j] = true
		order = append(order, j)
	}
	return order
}

// TestIncrementalConvergesToBatch asserts the streaming clusterer,
// after ingesting the whole corpus in scattered order with periodic
// re-clusters along the way, lands on exactly the batch Blocked result:
// same labels, cut height, and silhouette. Every ingredient — the
// union-find components, the per-block dendrograms, the cut sweep, the
// stitching — depends only on the final membership, never on arrival
// order, so convergence is exact, not approximate.
func TestIncrementalConvergesToBatch(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		fs := parityFS(t, seed, 150)
		batch := ClusterWPNs(fs, ClusterOptions{Blocked: true})

		inc := NewIncrementalClusterer(fs, ClusterOptions{Blocked: true})
		for k, i := range addOrder(len(fs.Records)) {
			inc.Add(i)
			if (k+1)%40 == 0 {
				inc.Recluster()
			}
		}
		res := inc.Recluster()

		if !sameLabels(batch.Labels, res.Labels) {
			t.Fatalf("seed %d: incremental labels differ from batch\nbatch: %v\ninc:   %v",
				seed, batch.Labels, res.Labels)
		}
		if batch.CutHeight != res.CutHeight {
			t.Errorf("seed %d: cut height %v != batch %v", seed, res.CutHeight, batch.CutHeight)
		}
		if batch.Silhouette != res.Silhouette {
			t.Errorf("seed %d: silhouette %v != batch %v", seed, res.Silhouette, batch.Silhouette)
		}
		stats := inc.Stats()
		if stats.Added != len(fs.Records) {
			t.Errorf("seed %d: stats.Added = %d, want %d", seed, stats.Added, len(fs.Records))
		}
		if stats.BlocksReused == 0 {
			t.Errorf("seed %d: no block dendrograms reused across re-clusters", seed)
		}
	}
}

// TestIncrementalOptionReplaysToBatch asserts the ClusterOptions
// plumbing: Incremental mode inside ClusterWPNs replays the stream and
// returns the batch Blocked result.
func TestIncrementalOptionReplaysToBatch(t *testing.T) {
	fs := parityFS(t, 3, 150)
	batch := ClusterWPNs(fs, ClusterOptions{Blocked: true})
	inc := ClusterWPNs(fs, ClusterOptions{Incremental: true, IncrementalBatch: 32})
	if !sameLabels(batch.Labels, inc.Labels) {
		t.Fatal("Incremental option result differs from batch Blocked")
	}
	if batch.CutHeight != inc.CutHeight || batch.Silhouette != inc.Silhouette {
		t.Fatalf("Incremental cut/sil (%v, %v) != batch (%v, %v)",
			inc.CutHeight, inc.Silhouette, batch.CutHeight, batch.Silhouette)
	}
}

// TestIncrementalProvisionalAssignment asserts the streaming answer:
// once a clustering exists, a new arrival near an existing campaign is
// provisionally assigned to it at Add time (nearest medoid within the
// cut height), and the final Recluster keeps the partial coverage
// consistent — records never added carry label -1 and join no cluster.
func TestIncrementalProvisionalAssignment(t *testing.T) {
	fs := parityFS(t, 1, 150)
	n := len(fs.Records)
	inc := NewIncrementalClusterer(fs, ClusterOptions{Blocked: true})

	// First wave: establish campaigns from two-thirds of the stream.
	cutoff := 2 * n / 3
	for i := 0; i < cutoff; i++ {
		inc.Add(i)
	}
	res := inc.Recluster()
	for i := cutoff; i < n; i++ {
		if res.Labels[i] != -1 {
			t.Fatalf("unadded record %d labeled %d, want -1", i, res.Labels[i])
		}
	}
	for _, c := range res.Clusters {
		for _, m := range c.Members {
			if m >= cutoff {
				t.Fatalf("unadded record %d appears in cluster %d", m, c.ID)
			}
		}
	}

	// Second wave: the synthetic corpus is ~70% campaign traffic, so at
	// least some arrivals must land in existing campaigns at Add time.
	assignedBefore := inc.Stats().AssignedToExisting
	for i := cutoff; i < n; i++ {
		inc.Add(i)
	}
	if inc.Stats().AssignedToExisting == assignedBefore {
		t.Error("no second-wave arrival was provisionally assigned to an existing campaign")
	}
	final := inc.Recluster()
	batch := ClusterWPNs(fs, ClusterOptions{Blocked: true})
	if !sameLabels(batch.Labels, final.Labels) {
		t.Fatal("final result after staged adds differs from batch")
	}
}

// TestIncrementalLinkageVariants runs the convergence check under the
// non-default linkages too, since the block cache and sweep both thread
// the linkage through.
func TestIncrementalLinkageVariants(t *testing.T) {
	fs := parityFS(t, 2, 120)
	for _, linkage := range []cluster.Linkage{cluster.Single, cluster.Complete} {
		batch := ClusterWPNs(fs, ClusterOptions{Blocked: true, Linkage: linkage})
		inc := ClusterWPNs(fs, ClusterOptions{Incremental: true, IncrementalBatch: 50, Linkage: linkage})
		if !sameLabels(batch.Labels, inc.Labels) {
			t.Errorf("linkage %s: incremental differs from batch", linkage)
		}
	}
}
