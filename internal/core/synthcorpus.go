package core

import (
	"fmt"
	"math/rand"

	"pushadminer/internal/crawler"
)

// Synthetic corpus vocabulary. Two disjoint pools keep campaign messages
// mutually similar and noise messages far from everything, while the
// total vocabulary stays small enough that the dense term-similarity
// matrix is cheap even at benchmark sizes.
var (
	synthAdWords = []string{
		"win", "winner", "prize", "claim", "reward", "free", "iphone",
		"samsung", "gift", "card", "congratulations", "selected", "today",
		"virus", "alert", "warning", "infected", "device", "scan", "clean",
		"protect", "security", "update", "urgent", "battery", "damaged",
		"hot", "singles", "area", "meet", "chat", "waiting", "nearby",
		"deal", "sale", "discount", "save", "offer", "limited", "expires",
		"crypto", "bitcoin", "profit", "invest", "earn", "cash", "bonus",
		"video", "watch", "exclusive", "breaking", "news", "shocking",
		"weight", "loss", "doctors", "trick", "secret", "revealed",
		"loan", "approved", "credit", "instant", "apply", "money",
		"package", "delivery", "pending", "confirm", "address", "track",
	}
	synthNoiseWords = []string{
		"weather", "forecast", "rain", "sunny", "cloudy", "morning",
		"recipe", "dinner", "pasta", "garden", "flowers", "spring",
		"football", "score", "match", "league", "season", "goal",
		"library", "book", "chapter", "author", "novel", "review",
		"museum", "exhibit", "gallery", "artist", "painting", "opening",
		"traffic", "commute", "bridge", "closed", "detour", "route",
		"school", "schedule", "holiday", "calendar", "event", "notice",
		"market", "vegetables", "fresh", "local", "farmers", "organic",
		"concert", "tickets", "venue", "band", "tour", "dates",
		"hiking", "trail", "summit", "views", "park", "lake",
	}
	synthPathWords = []string{
		"landing", "click", "go", "offer", "promo", "win", "claim",
		"redirect", "track", "campaign", "ads", "page", "special",
		"deal", "alert", "scan", "meet", "news", "apply", "confirm",
	}
)

// synthCampaign is one ad-campaign template: a fixed token skeleton with
// a couple of per-message slots, pushed from several source domains to a
// shared landing path — the structure the §5.1.1 clustering recovers.
type synthCampaign struct {
	title   []string
	body    []string
	sources []string
	landing string
	path    []string
}

// SynthWPNRecords generates a deterministic corpus of n WPN records
// shaped like the paper's §5.1.1 workload: ~70% of messages belong to ad
// campaigns (near-duplicate text pushed from multiple source domains to
// a shared landing path, with small per-message mutations), the rest are
// unrelated singleton notifications. The same (seed, n) always yields
// the same corpus; parity tests and the mining benchmarks both build on
// it.
func SynthWPNRecords(seed int64, n int) []*crawler.WPNRecord {
	rng := rand.New(rand.NewSource(seed))
	nCampaigns := n / 40
	if nCampaigns < 4 {
		nCampaigns = 4
	}
	campaigns := make([]*synthCampaign, nCampaigns)
	for c := range campaigns {
		pick := func(pool []string, k int) []string {
			out := make([]string, k)
			for i := range out {
				out[i] = pool[rng.Intn(len(pool))]
			}
			return out
		}
		// Each campaign draws its template from its own window of the ad
		// vocabulary and stamps a campaign token into the landing path, so
		// different campaigns stay mutually distant (like real campaigns
		// from different advertisers) while messages within one stay
		// near-duplicates.
		start := rng.Intn(len(synthAdWords))
		window := func(k int) []string {
			out := make([]string, k)
			for i := range out {
				out[i] = synthAdWords[(start+rng.Intn(14))%len(synthAdWords)]
			}
			return out
		}
		nSrc := 2 + rng.Intn(3)
		sources := make([]string, nSrc)
		for s := range sources {
			sources[s] = fmt.Sprintf("push-src-%d-%d.example", c, s)
		}
		path := append([]string{fmt.Sprintf("c%dx", c)}, pick(synthPathWords, 1+rng.Intn(2))...)
		campaigns[c] = &synthCampaign{
			title:   window(3 + rng.Intn(3)),
			body:    window(5 + rng.Intn(4)),
			sources: sources,
			landing: fmt.Sprintf("land%d.example", c),
			path:    path,
		}
	}

	records := make([]*crawler.WPNRecord, n)
	for i := 0; i < n; i++ {
		r := &crawler.WPNRecord{ID: i, Device: "desktop"}
		if rng.Float64() < 0.7 {
			// Campaign message: template with light per-message mutation.
			camp := campaigns[rng.Intn(nCampaigns)]
			title := append([]string(nil), camp.title...)
			body := append([]string(nil), camp.body...)
			// Mutate one body slot and sometimes append a numeric token
			// (prize amounts vary per message in real campaigns).
			body[rng.Intn(len(body))] = synthAdWords[rng.Intn(len(synthAdWords))]
			if rng.Float64() < 0.5 {
				body = append(body, fmt.Sprintf("%d", 100+rng.Intn(900)))
			}
			src := camp.sources[rng.Intn(len(camp.sources))]
			r.Title = joinTokens(title)
			r.Body = joinTokens(body)
			r.SourceDomain = src
			r.SourceURL = "https://" + src + "/"
			r.LandingURL = fmt.Sprintf("https://%s/%s/%s?uid=%d",
				camp.landing, camp.path[0], joinPath(camp.path[1:]), rng.Intn(1<<20))
		} else {
			// Singleton noise: unrelated vocabulary, unique landing.
			ln := 6 + rng.Intn(5)
			toks := make([]string, ln)
			for t := range toks {
				toks[t] = synthNoiseWords[rng.Intn(len(synthNoiseWords))]
			}
			r.Title = joinTokens(toks[:2])
			r.Body = joinTokens(toks[2:])
			r.SourceDomain = fmt.Sprintf("site-%d.example", i)
			r.SourceURL = "https://" + r.SourceDomain + "/"
			r.LandingURL = fmt.Sprintf("https://site-%d.example/%s/%s",
				i, synthNoiseWords[rng.Intn(len(synthNoiseWords))],
				synthNoiseWords[rng.Intn(len(synthNoiseWords))])
		}
		records[i] = r
	}
	return records
}

func joinTokens(toks []string) string {
	out := ""
	for i, t := range toks {
		if i > 0 {
			out += " "
		}
		out += t
	}
	return out
}

func joinPath(toks []string) string {
	if len(toks) == 0 {
		return "index"
	}
	out := ""
	for i, t := range toks {
		if i > 0 {
			out += "/"
		}
		out += t
	}
	return out
}
