package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"pushadminer/internal/blocklist"
	"pushadminer/internal/crawler"
)

// Export is the on-disk interchange format between the crawl stage
// (cmd/wpncrawl) and the analysis stage (cmd/wpnanalyze): the collected
// WPN records plus the blocklist verdicts gathered at crawl time, so the
// analysis can run without the live ecosystem.
type Export struct {
	GeneratedAt time.Time            `json:"generated_at"`
	Seed        int64                `json:"seed"`
	Scale       float64              `json:"scale"`
	Records     []*crawler.WPNRecord `json:"records"`
	FlaggedURLs map[string][]string  `json:"flagged_urls"` // landing URL → services that flagged it
}

// WriteExport serializes an export to w.
func WriteExport(w io.Writer, e *Export) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(e); err != nil {
		return fmt.Errorf("core: write export: %w", err)
	}
	return nil
}

// ReadExport parses an export from r.
func ReadExport(r io.Reader) (*Export, error) {
	var e Export
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return nil, fmt.Errorf("core: read export: %w", err)
	}
	return &e, nil
}

// SaveExport writes an export to a file.
func SaveExport(path string, e *Export) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteExport(f, e)
}

// LoadExport reads an export from a file.
func LoadExport(path string) (*Export, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadExport(f)
}

// ExportFromStudy packages a finished study's records and blocklist
// verdicts for offline analysis.
func ExportFromStudy(s *Study) *Export {
	return &Export{
		GeneratedAt: s.Eco.Clock.Now(),
		Seed:        s.Cfg.Eco.Seed,
		Scale:       s.Cfg.Eco.Scale,
		Records:     s.Records,
		FlaggedURLs: s.Analysis.FlaggedURLs,
	}
}

// StaticLookup is a BlocklistLookup backed by a fixed verdict map (the
// flagged URLs captured in an Export).
type StaticLookup struct {
	ServiceName string
	Flagged     map[string]bool
}

// Name implements BlocklistLookup.
func (l StaticLookup) Name() string { return l.ServiceName }

// Lookup implements BlocklistLookup.
func (l StaticLookup) Lookup(urls []string, _ time.Time) ([]blocklist.Verdict, error) {
	out := make([]blocklist.Verdict, len(urls))
	for i, u := range urls {
		out[i] = blocklist.Verdict{URL: u, Malicious: l.Flagged[u]}
		if out[i].Malicious {
			out[i].Engines = 1
		}
	}
	return out, nil
}

// LookupsFromExport converts an export's flagged-URL map into per-service
// static lookups.
func LookupsFromExport(e *Export) []BlocklistLookup {
	byService := map[string]map[string]bool{}
	for u, svcs := range e.FlaggedURLs {
		for _, s := range svcs {
			if byService[s] == nil {
				byService[s] = map[string]bool{}
			}
			byService[s][u] = true
		}
	}
	var out []BlocklistLookup
	for name, flagged := range byService {
		out = append(out, StaticLookup{ServiceName: name, Flagged: flagged})
	}
	if len(out) == 0 {
		out = append(out, StaticLookup{ServiceName: "none", Flagged: map[string]bool{}})
	}
	return out
}
