package core

import (
	"strings"
	"testing"
)

func TestRunTrackingCheck(t *testing.T) {
	tc, err := RunTrackingCheck(1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Network == "" {
		t.Fatal("no tracking network found")
	}
	if tc.SharedBrowserPushes >= tc.IsolatedPushes {
		t.Errorf("tracking had no effect: shared=%d isolated=%d",
			tc.SharedBrowserPushes, tc.IsolatedPushes)
	}
	if tc.SharedBrowserPushes == 0 {
		t.Error("shared browser got no pushes at all; cap should allow one")
	}
	out := tc.Table().String()
	if !strings.Contains(out, tc.Network) {
		t.Errorf("table missing network:\n%s", out)
	}
	t.Logf("\n%s", out)
}
