// Package core implements PushAdMiner's data analysis module (§5): WPN
// feature extraction, conservative document clustering into WPN clusters
// and ad campaigns, malicious labeling via URL blocklists with
// guilty-by-association propagation, bipartite meta-clustering over
// landing domains, suspicious-campaign identification (including
// duplicate-ads detection), and the simulated manual-verification pass —
// plus the study driver that runs crawls against a synthetic ecosystem
// and reproduces the paper's tables and figures.
package core

import (
	"fmt"

	"pushadminer/internal/crawler"
	"pushadminer/internal/textmine"
	"pushadminer/internal/urlx"
)

// Features are the per-WPN clustering features of §5.1.1: the message
// text (title + body) as a bag of words, and the landing URL path
// tokens. Domain names are deliberately excluded from both.
type Features struct {
	Text       textmine.BOW
	textNorm   float64
	PathTokens []string
}

// FeatureSet holds the features for a record set plus the trained
// word2vec term-similarity model.
type FeatureSet struct {
	Records  []*crawler.WPNRecord
	Features []Features
	Emb      *textmine.Embeddings
	Sim      *textmine.TermSimMatrix
	// UseText and UsePath toggle feature groups (ablation A2).
	UseText, UsePath bool
}

// FeatureOptions configure extraction.
type FeatureOptions struct {
	Word2Vec textmine.Word2VecConfig
	SoftCos  textmine.SoftCosineOptions
	// DisableText / DisablePath ablate a feature group.
	DisableText, DisablePath bool
	// TFIDF weights bag-of-words vectors by inverse document frequency
	// instead of raw term frequency (an extension beyond the paper's
	// plain counts; see the ablation bench).
	TFIDF bool
}

// ExtractFeatures trains word2vec on the records' message texts and
// builds per-record features.
func ExtractFeatures(records []*crawler.WPNRecord, opts FeatureOptions) (*FeatureSet, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("core: no records to extract features from")
	}
	docs := make([][]string, len(records))
	for i, r := range records {
		docs[i] = textmine.Tokenize(r.Title + " " + r.Body)
	}
	emb, err := textmine.TrainWord2Vec(docs, opts.Word2Vec)
	if err != nil {
		return nil, err
	}
	sim := textmine.NewTermSimMatrix(emb, opts.SoftCos)
	fs := &FeatureSet{
		Records:  records,
		Features: make([]Features, len(records)),
		Emb:      emb,
		Sim:      sim,
		UseText:  !opts.DisableText,
		UsePath:  !opts.DisablePath,
	}
	vocab := emb.Vocab()
	var idf *textmine.IDF
	if opts.TFIDF {
		idDocs := make([][]int, len(records))
		for i, r := range records {
			idDocs[i] = vocab.LookupIDs(textmine.ContentTokens(r.Title + " " + r.Body))
		}
		idf = textmine.ComputeIDF(idDocs, vocab.Len())
	}
	for i, r := range records {
		content := textmine.ContentTokens(r.Title + " " + r.Body)
		ids := vocab.LookupIDs(content)
		var bow textmine.BOW
		if idf != nil {
			bow = textmine.NewBOWTFIDF(ids, idf)
		} else {
			bow = textmine.NewBOW(ids)
		}
		fs.Features[i] = Features{
			Text:       bow,
			textNorm:   textmine.SelfNorm(bow, sim),
			PathTokens: urlx.PathTokens(r.LandingURL),
		}
	}
	return fs, nil
}

// Distance is the pairwise WPN distance of §5.1.1: the average of the
// soft-cosine text distance and the Jaccard URL-path distance (or just
// one of them under ablation).
func (fs *FeatureSet) Distance(i, j int) float64 {
	fi, fj := &fs.Features[i], &fs.Features[j]
	switch {
	case fs.UseText && fs.UsePath:
		text := 1 - textmine.SoftCosineNormed(fi.Text, fj.Text, fs.Sim, fi.textNorm, fj.textNorm)
		path := urlx.Jaccard(fi.PathTokens, fj.PathTokens)
		return (text + path) / 2
	case fs.UseText:
		return 1 - textmine.SoftCosineNormed(fi.Text, fj.Text, fs.Sim, fi.textNorm, fj.textNorm)
	case fs.UsePath:
		return urlx.Jaccard(fi.PathTokens, fj.PathTokens)
	default:
		return 0
	}
}

// FilterValidLanding keeps the records whose click led to a valid
// landing page (§6.2's filter before clustering).
func FilterValidLanding(records []*crawler.WPNRecord) []*crawler.WPNRecord {
	out := make([]*crawler.WPNRecord, 0, len(records))
	for _, r := range records {
		if r.ValidLanding() {
			out = append(out, r)
		}
	}
	return out
}
