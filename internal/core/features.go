// Package core implements PushAdMiner's data analysis module (§5): WPN
// feature extraction, conservative document clustering into WPN clusters
// and ad campaigns, malicious labeling via URL blocklists with
// guilty-by-association propagation, bipartite meta-clustering over
// landing domains, suspicious-campaign identification (including
// duplicate-ads detection), and the simulated manual-verification pass —
// plus the study driver that runs crawls against a synthetic ecosystem
// and reproduces the paper's tables and figures.
package core

import (
	"fmt"

	"pushadminer/internal/crawler"
	"pushadminer/internal/simhash"
	"pushadminer/internal/textmine"
	"pushadminer/internal/urlx"
)

// Features are the per-WPN clustering features of §5.1.1: the message
// text (title + body) as a bag of words, and the landing URL path
// tokens. Domain names are deliberately excluded from both.
type Features struct {
	Text       textmine.BOW
	PathTokens []string
}

// FeatureSet holds the features for a record set, the trained word2vec
// term-similarity model, and the precomputed pairwise kernel: per-record
// self quad-form norms and document vectors (textmine.DocKernel) plus
// SimHash fingerprints over the combined text+path tokens for banded
// candidate pruning. Everything a pairwise Distance call needs is
// computed once here instead of once per pair.
type FeatureSet struct {
	Records  []*crawler.WPNRecord
	Features []Features
	Emb      *textmine.Embeddings
	Sim      *textmine.TermSimMatrix
	// Kernel caches per-document self norms and document vectors; see
	// Distance and NaiveDistance.
	Kernel *textmine.DocKernel
	// Hashes are per-record SimHash fingerprints over the message's
	// content tokens and landing-path tokens, backing the banded
	// candidate pruning of ClusterWPNs.
	Hashes []simhash.Hash
	// SoftOpts are the soft-cosine options the model was built with (the
	// naive reference path re-derives distances from them).
	SoftOpts textmine.SoftCosineOptions
	// UseText and UsePath toggle feature groups (ablation A2).
	UseText, UsePath bool
}

// FeatureOptions configure extraction.
type FeatureOptions struct {
	Word2Vec textmine.Word2VecConfig
	SoftCos  textmine.SoftCosineOptions
	// DisableText / DisablePath ablate a feature group.
	DisableText, DisablePath bool
	// TFIDF weights bag-of-words vectors by inverse document frequency
	// instead of raw term frequency (an extension beyond the paper's
	// plain counts; see the ablation bench).
	TFIDF bool
	// Workers bounds the fan-out of the per-record featurization loops
	// (tokenization, BOW/SimHash construction); word2vec training stays
	// single-pass. Every loop writes slot-indexed slices, so the output
	// is identical at any worker count. 1 forces the serial path; <= 0
	// defaults to GOMAXPROCS.
	Workers int
}

// ExtractFeatures trains word2vec on the records' message texts and
// builds per-record features plus the cached pairwise kernel.
func ExtractFeatures(records []*crawler.WPNRecord, opts FeatureOptions) (*FeatureSet, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("core: no records to extract features from")
	}
	docs := make([][]string, len(records))
	fanOut(len(records), opts.Workers, func(i int) {
		docs[i] = textmine.Tokenize(records[i].Title + " " + records[i].Body)
	})
	emb, err := textmine.TrainWord2Vec(docs, opts.Word2Vec)
	if err != nil {
		return nil, err
	}
	sim := textmine.NewTermSimMatrix(emb, opts.SoftCos)
	fs := &FeatureSet{
		Records:  records,
		Features: make([]Features, len(records)),
		Emb:      emb,
		Sim:      sim,
		Hashes:   make([]simhash.Hash, len(records)),
		SoftOpts: opts.SoftCos,
		UseText:  !opts.DisableText,
		UsePath:  !opts.DisablePath,
	}
	vocab := emb.Vocab()
	var idf *textmine.IDF
	if opts.TFIDF {
		idDocs := make([][]int, len(records))
		fanOut(len(records), opts.Workers, func(i int) {
			idDocs[i] = vocab.LookupIDs(textmine.ContentTokens(records[i].Title + " " + records[i].Body))
		})
		idf = textmine.ComputeIDF(idDocs, vocab.Len())
	}
	bows := make([]textmine.BOW, len(records))
	fanOut(len(records), opts.Workers, func(i int) {
		r := records[i]
		content := textmine.ContentTokens(r.Title + " " + r.Body)
		ids := vocab.LookupIDs(content)
		var bow textmine.BOW
		if idf != nil {
			bow = textmine.NewBOWTFIDF(ids, idf)
		} else {
			bow = textmine.NewBOW(ids)
		}
		paths := urlx.PathTokens(r.LandingURL)
		bows[i] = bow
		fs.Features[i] = Features{Text: bow, PathTokens: paths}
		// Fingerprint over both distance components so banded pruning
		// respects whichever feature groups are active.
		fp := make([]string, 0, len(content)+len(paths))
		if fs.UseText {
			fp = append(fp, content...)
		}
		if fs.UsePath {
			fp = append(fp, paths...)
		}
		fs.Hashes[i] = simhash.Of(fp)
	})
	fs.Kernel = textmine.NewDocKernel(bows, sim, emb)
	return fs, nil
}

// Distance is the pairwise WPN distance of §5.1.1: the average of the
// soft-cosine text distance and the Jaccard URL-path distance (or just
// one of them under ablation). It runs on the cached kernel — one cross
// quad-form per call, self norms precomputed — and a merge-based Jaccard
// over the already-sorted path tokens; the values are bit-identical to
// NaiveDistance.
func (fs *FeatureSet) Distance(i, j int) float64 {
	fi, fj := &fs.Features[i], &fs.Features[j]
	switch {
	case fs.UseText && fs.UsePath:
		text := 1 - fs.Kernel.SoftCosine(i, j)
		path := urlx.JaccardSorted(fi.PathTokens, fj.PathTokens)
		return (text + path) / 2
	case fs.UseText:
		return 1 - fs.Kernel.SoftCosine(i, j)
	case fs.UsePath:
		return urlx.JaccardSorted(fi.PathTokens, fj.PathTokens)
	default:
		return 0
	}
}

// ApproxDistance is the cheap far-pair estimate stored for pairs the
// SimHash filter prunes away: the text component is the precomputed
// document-vector cosine (one dense dot product instead of a sparse
// quad-form), the path component is the same merge Jaccard as Distance
// (already cheap). Substituting an estimate rather than a constant
// keeps the full-matrix silhouette — and hence the conservative cut
// selection — close to the exact path's.
func (fs *FeatureSet) ApproxDistance(i, j int) float64 {
	fi, fj := &fs.Features[i], &fs.Features[j]
	switch {
	case fs.UseText && fs.UsePath:
		text := fs.Kernel.ApproxDistance(i, j)
		path := urlx.JaccardSorted(fi.PathTokens, fj.PathTokens)
		return (text + path) / 2
	case fs.UseText:
		return fs.Kernel.ApproxDistance(i, j)
	case fs.UsePath:
		return urlx.JaccardSorted(fi.PathTokens, fj.PathTokens)
	default:
		return 0
	}
}

// NaiveDistance recomputes the pairwise distance from scratch — three
// quad-forms per call (both self quad-forms rediscovered every time) and
// a map-based Jaccard — exactly what the pipeline did before the kernel
// cache existed. It is the reference the parity tests and benchmarks
// compare Distance against; the two agree bit-for-bit.
func (fs *FeatureSet) NaiveDistance(i, j int) float64 {
	fi, fj := &fs.Features[i], &fs.Features[j]
	switch {
	case fs.UseText && fs.UsePath:
		text := 1 - textmine.SoftCosineWith(fi.Text, fj.Text, fs.Sim)
		path := urlx.Jaccard(fi.PathTokens, fj.PathTokens)
		return (text + path) / 2
	case fs.UseText:
		return 1 - textmine.SoftCosineWith(fi.Text, fj.Text, fs.Sim)
	case fs.UsePath:
		return urlx.Jaccard(fi.PathTokens, fj.PathTokens)
	default:
		return 0
	}
}

// FilterValidLanding keeps the records whose click led to a valid
// landing page (§6.2's filter before clustering).
func FilterValidLanding(records []*crawler.WPNRecord) []*crawler.WPNRecord {
	out := make([]*crawler.WPNRecord, 0, len(records))
	for _, r := range records {
		if r.ValidLanding() {
			out = append(out, r)
		}
	}
	return out
}
