package core

import (
	"fmt"
	"strings"
	"time"

	"pushadminer/internal/crawler"
)

// TraceRecord renders one WPN record as a forensic timeline — the
// human-readable reconstruction of Figure 3's steps for a single
// notification, in the spirit of the JSgraph-style audit logs the
// paper's instrumentation produces.
func TraceRecord(r *crawler.WPNRecord) string {
	var b strings.Builder
	fmt.Fprintf(&b, "WPN #%d (%s)\n", r.ID, r.Device)
	fmt.Fprintf(&b, "  %s  subscription created at %s\n", stamp(r, r.RegisteredAt), r.SourceURL)
	fmt.Fprintf(&b, "      service worker: %s\n", r.SWURL)
	fmt.Fprintf(&b, "  %s  notification shown: %q / %q\n", stamp(r, r.ShownAt), r.Title, r.Body)

	// SW network activity (push-time ad resolution + click trackers).
	for _, req := range r.SWRequests {
		status := fmt.Sprint(req.Status)
		if req.Error != "" {
			status = "error: " + req.Error
		}
		fmt.Fprintf(&b, "      sw fetch %s (%s)\n", req.URL, status)
	}

	fmt.Fprintf(&b, "  %s  auto-click", stamp(r, r.ClickedAt))
	if r.TargetURL == "" {
		b.WriteString(" — no target URL, no navigation\n")
		return b.String()
	}
	fmt.Fprintf(&b, " → %s\n", r.TargetURL)
	for i, hop := range r.RedirectChain {
		fmt.Fprintf(&b, "      hop %d: %s\n", i+1, hop)
	}
	switch {
	case r.Crashed:
		b.WriteString("      landing: TAB CRASHED\n")
	case r.LandingURL == "":
		b.WriteString("      landing: none recorded\n")
	default:
		fmt.Fprintf(&b, "      landing: %q (%s)\n", r.LandingTitle, r.LandingURL)
		fmt.Fprintf(&b, "      screenshot=%s simhash=%s\n", r.ScreenshotHash, r.LandingSimHash)
	}
	return b.String()
}

// stamp renders an event time with its offset from subscription, the
// way an analyst reads a timeline.
func stamp(r *crawler.WPNRecord, t time.Time) string {
	off := t.Sub(r.RegisteredAt).Round(time.Second)
	return fmt.Sprintf("%s (+%s)", t.Format("01-02 15:04:05"), off)
}
