package core

import (
	"strings"
	"testing"
)

func TestTablesRender(t *testing.T) {
	s := getStudy(t)
	tables := map[string]interface{ String() string }{
		"table1":  Table1(s),
		"table2":  Table2(s),
		"table3":  Table3(s),
		"table4":  Table4(s),
		"table5":  Table5(s),
		"table6":  Table6(s),
		"figure4": Figure4Table(s),
		"figure5": Figure5Table(s),
		"figure6": Figure6Table(s),
		"cost":    CostTable(s),
		"eval":    EvaluationTable(s),
		"scams":   ScamBreakdownTable(s),
	}
	for name, tab := range tables {
		out := tab.String()
		if len(out) < 40 {
			t.Errorf("%s renders too little output: %q", name, out)
		}
		if !strings.Contains(out, "—") && !strings.Contains(out, "-") {
			t.Errorf("%s has no title separator", name)
		}
	}
}

func TestTable1Totals(t *testing.T) {
	s := getStudy(t)
	tab := Table1(s)
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "Total" {
		t.Fatalf("last row = %v", last)
	}
	// Total NPR count should match the crawl's NPR URL count (every NPR
	// URL is findable by at least one keyword).
	if last[2] == "0" {
		t.Error("total NPRs is zero")
	}
}

func TestTable6ExtensionRowsBlockNothing(t *testing.T) {
	s := getStudy(t)
	tab := Table6(s)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows[1:] { // the two extensions
		if row[4] != "0" {
			t.Errorf("extension row blocked %s requests, want 0: %v", row[4], row)
		}
	}
}
