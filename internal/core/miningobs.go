package core

import (
	"pushadminer/internal/telemetry"
)

// sweepBucketNames are the mining_sweep_ns family's height-bucket
// labels: candidate cut heights land in 0.1-wide distance buckets
// (soft-cosine distance lives in [0, 1]; anything at or above 1 —
// possible under non-average linkages — pools in "1.0+"). All labels
// are preresolved at obs creation so a snapshot always carries the full
// key set regardless of which heights a given corpus sampled.
var sweepBucketNames = []string{
	"0.0-0.1", "0.1-0.2", "0.2-0.3", "0.3-0.4", "0.4-0.5",
	"0.5-0.6", "0.6-0.7", "0.7-0.8", "0.8-0.9", "0.9-1.0",
	"1.0+",
}

// sweepHeightBucket maps a candidate cut height to its label. Every
// return value is a member of sweepBucketNames: heights at or above 1
// clamp into the top preresolved bucket, negatives into the first, and
// NaN — whose float-to-int conversion is implementation-defined in Go,
// so it must never reach the index expression — also clamps high (the
// !(h < 1) test is true for NaN). A snapshot therefore never carries
// sweep keys outside the preresolved set.
func sweepHeightBucket(h float64) string {
	if !(h < 1) { // h >= 1, or NaN
		return "1.0+"
	}
	if !(h > 0) { // h <= 0 (negative heights never cut anything extra)
		return sweepBucketNames[0]
	}
	if i := int(h * 10); i < len(sweepBucketNames)-1 {
		return sweepBucketNames[i]
	}
	return "1.0+"
}

// mining_pairs phase labels: where each candidate pair of the blocked
// path was decided. blocks_* cover the union phase (gate = Hamming,
// dist = exact-distance confirmation), block_linkage_exact counts the
// within-block exact distance evaluations of the dendrogram builds,
// sweep_scored counts the within-block distance lookups the pooled
// sweep's silhouette scoring re-reads (full sweep: every valid height ×
// every pair; memoized sweep: only pairs in blocks whose labeling
// changed at that height), and sweep_memo_saved is the complement — the
// per-height re-reads the memo skipped, so scored + saved on the
// memoized path equals what a full sweep would have re-read.
var miningPairPhases = []string{
	"blocks_gate_checked", "blocks_gate_rejected",
	"blocks_dist_checked", "blocks_edges",
	"block_linkage_exact", "sweep_scored", "sweep_memo_saved",
}

// mining_sweep_memo outcome labels — see sweepMemoStats: per
// (candidate × block) sweep-grid cells, hit = served from the per-block
// cut memo, refresh = labeling reused but contribution rescored under a
// new far estimate, miss = cut and scored from scratch.
var sweepMemoOutcomes = []string{"hit", "refresh", "miss"}

// blockedObs bundles the blocked/incremental path's observation sinks:
// the sub-stage attribution instruments (mining_sweep_ns by height
// bucket, mining_block_size/mining_block_ns histograms, mining_pairs by
// phase), the deterministic ledger, and the live progress status. A nil
// *blockedObs disables everything with no allocation; histograms and
// family counters are atomic, so the parallel block/sweep fan-outs
// observe directly, while ledger events are always flushed from serial
// code in canonical order.
type blockedObs struct {
	led  *MiningLedger
	prog *miningProgress

	sweepFam       *telemetry.Family
	sweepBlocksFam *telemetry.Family
	sweepMemoFam   *telemetry.Family
	blockSize      *telemetry.Histogram
	blockNS        *telemetry.Histogram
	pairsFam       *telemetry.Family
}

// newBlockedObs builds the bundle, or returns nil when every sink is
// off (the zero-alloc disabled path).
func newBlockedObs(reg *telemetry.Registry, led *MiningLedger, prog *miningProgress) *blockedObs {
	if reg == nil && led == nil && prog == nil {
		return nil
	}
	o := &blockedObs{led: led, prog: prog}
	if reg != nil {
		o.sweepFam = reg.Family("mining_sweep_ns", "height_bucket")
		o.sweepBlocksFam = reg.Family("mining_sweep_blocks", "height_bucket")
		for _, b := range sweepBucketNames {
			o.sweepFam.With(b)
			o.sweepBlocksFam.With(b)
		}
		o.sweepMemoFam = reg.Family("mining_sweep_memo", "outcome")
		for _, oc := range sweepMemoOutcomes {
			o.sweepMemoFam.With(oc)
		}
		o.blockSize = reg.Histogram("mining_block_size", telemetry.SizeBuckets)
		o.blockNS = reg.Histogram("mining_block_ns", telemetry.NanosBuckets)
		o.pairsFam = reg.Family("mining_pairs", "phase")
		for _, p := range miningPairPhases {
			o.pairsFam.With(p)
		}
	}
	return o
}

// blockedTally accumulates the union phase's pair decisions with plain
// int64s — it is only ever written from the serial bucket-pair loop, so
// no atomics — and is folded into mining_pairs afterwards. A nil tally
// keeps the hot loop on its uninstrumented branch.
type blockedTally struct {
	gateChecked  int64 // pairs reaching the edge test (not already unioned)
	gateRejected int64 // rejected by the Hamming gate
	distChecked  int64 // exact distances evaluated for confirmation
	edges        int64 // confirmed union edges
}

// tally returns the union-phase accumulator, or nil when observation is
// off.
func (o *blockedObs) tally() *blockedTally {
	if o == nil {
		return nil
	}
	return &blockedTally{}
}

// recordTally folds the union-phase tally into mining_pairs.
func (o *blockedObs) recordTally(t *blockedTally) {
	if o == nil || t == nil || o.pairsFam == nil {
		return
	}
	o.pairsFam.Add("blocks_gate_checked", t.gateChecked)
	o.pairsFam.Add("blocks_gate_rejected", t.gateRejected)
	o.pairsFam.Add("blocks_dist_checked", t.distChecked)
	o.pairsFam.Add("blocks_edges", t.edges)
}

// setBlocksTotal resets the live per-block progress for a build round.
func (o *blockedObs) setBlocksTotal(n int) {
	if o == nil {
		return
	}
	o.prog.setBlocks(n)
}

// blockBuilt observes one block dendrogram build (called from inside
// the parallel fan-out — histogram/progress only; the ledger event is
// flushed serially by the caller).
func (o *blockedObs) blockBuilt(size int, ns int64) {
	if o == nil {
		return
	}
	o.blockSize.Observe(float64(size))
	o.blockNS.Observe(float64(ns))
	o.prog.blockDone()
}

// blocksLinked records the exact pair volume of a round of dendrogram
// builds and flushes the per-block ledger events in canonical
// (ascending block index) order.
func (o *blockedObs) blocksLinked(comps [][]int) {
	if o == nil {
		return
	}
	var exact int64
	for _, c := range comps {
		m := int64(len(c))
		exact += m * (m - 1) / 2
	}
	o.pairsFam.Add("block_linkage_exact", exact)
	for i, c := range comps {
		o.led.BlockClustered(i, len(c))
	}
}

// setHeightsTotal resets the live sweep progress for one pooled sweep.
func (o *blockedObs) setHeightsTotal(n int) {
	if o == nil {
		return
	}
	o.prog.setHeights(n)
}

// sweepEvaluated observes one candidate height's scoring (called from
// inside the sweep fan-out).
func (o *blockedObs) sweepEvaluated(height float64, ns int64) {
	if o == nil {
		return
	}
	o.sweepFam.Add(sweepHeightBucket(height), ns)
	o.prog.heightDone()
}

// blocksRebuilt records an incremental Recluster round's dendrogram
// rebuilds: exact pair volume into mining_pairs plus one ledger event
// per rebuilt block, in ascending block order (rebuild is built in
// canonical component order, so the flush is deterministic).
func (o *blockedObs) blocksRebuilt(rebuild []int, comps [][]int) {
	if o == nil {
		return
	}
	var exact int64
	for _, bi := range rebuild {
		m := int64(len(comps[bi]))
		exact += m * (m - 1) / 2
	}
	o.pairsFam.Add("block_linkage_exact", exact)
	for _, bi := range rebuild {
		o.led.BlockClustered(bi, len(comps[bi]))
	}
}

// incrementalAdd observes one streamed record ingested.
func (o *blockedObs) incrementalAdd() {
	if o == nil {
		return
	}
	o.prog.incrementalAdd()
}

// reclustered records one Recluster call draining the add queue.
func (o *blockedObs) reclustered(blocks, reused, rebuilt, clusters int) {
	if o == nil {
		return
	}
	o.led.Recluster(blocks, reused, rebuilt, clusters)
	o.prog.reclustered()
}

// heightSwept records one full-sweep candidate height's outcome:
// scored pair volume into mining_pairs (valid evaluations only),
// blocks re-cut (every block, on the full sweep) into
// mining_sweep_blocks, and the deterministic ledger event. Called
// serially, in ascending height order, after the sweep fan-out
// completes.
func (o *blockedObs) heightSwept(height float64, k int, valid bool, sil float64, changedBlocks int, scoredPairs int64) {
	if o == nil {
		return
	}
	if valid {
		o.pairsFam.Add("sweep_scored", scoredPairs)
	}
	o.sweepBlocksFam.Add(sweepHeightBucket(height), int64(changedBlocks))
	o.led.HeightSwept(height, k, valid, sil, changedBlocks, scoredPairs)
	o.prog.sweepWork(int64(changedBlocks), 0)
}

// sweepRescored observes one fresh (block, segment) rescore inside the
// memoized sweep's parallel pass, attributed to the height bucket of
// the candidate that first crossed into that segment — so sweep_ns
// reflects where re-cut work actually happened, proportional to blocks
// rescored rather than total blocks.
func (o *blockedObs) sweepRescored(height float64, ns int64) {
	if o == nil {
		return
	}
	o.sweepFam.Add(sweepHeightBucket(height), ns)
}

// heightSweptMemo records one memoized-sweep candidate height's
// outcome: the serial reduce slice's wall time into the height bucket,
// blocks whose labeling changed into mining_sweep_blocks, their pair
// volume into mining_pairs, the ledger event, and live progress. The
// attrs are structural (segment crossings), independent of memo/cache
// state, so the ledger stays byte-stable across reruns and identical
// between cold and warm sweeps. Called serially in ascending height
// order.
func (o *blockedObs) heightSweptMemo(height float64, k int, valid bool, sil float64, changedBlocks int, changedPairs, ns int64) {
	if o == nil {
		return
	}
	bucket := sweepHeightBucket(height)
	o.sweepFam.Add(bucket, ns)
	o.sweepBlocksFam.Add(bucket, int64(changedBlocks))
	o.pairsFam.Add("sweep_scored", changedPairs)
	o.led.HeightSwept(height, k, valid, sil, changedBlocks, changedPairs)
	o.prog.sweepWork(int64(changedBlocks), 0)
	o.prog.heightDone()
}

// sweepMemo folds one memoized sweep's delta-vs-full accounting: memo
// outcome counts, the pair volume the memo skipped, the ledger summary
// event, and the live memo-hit counter.
func (o *blockedObs) sweepMemo(ms sweepMemoStats) {
	if o == nil {
		return
	}
	o.sweepMemoFam.Add("hit", ms.hits)
	o.sweepMemoFam.Add("refresh", ms.refreshes)
	o.sweepMemoFam.Add("miss", ms.misses)
	o.pairsFam.Add("sweep_memo_saved", ms.savedPairs)
	o.led.SweepMemo(ms.hits, ms.refreshes, ms.misses, ms.rescoredBlocks, ms.savedPairs)
	o.prog.sweepWork(0, ms.hits)
}
