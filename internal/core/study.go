package core

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"pushadminer/internal/adblock"
	"pushadminer/internal/browser"
	"pushadminer/internal/crawler"
	"pushadminer/internal/fleet"
	"pushadminer/internal/telemetry"
	"pushadminer/internal/urlx"
	"pushadminer/internal/webeco"
)

// StudyConfig configures a full end-to-end reproduction run: ecosystem
// generation, desktop + mobile crawls, and the mining pipeline.
type StudyConfig struct {
	Eco webeco.Config
	// CollectionWindow is each crawl's monitoring duration (the paper
	// collected for about two months; the default 14 simulated days
	// captures the same multi-push behaviour faster).
	CollectionWindow time.Duration
	// IncludeMobile adds the Android crawl (§4.2). Default true via
	// WithDefaults.
	SkipMobile bool
	// RescanAfter is the delay before the second blocklist scan
	// (§6.3.2's one-month rescan).
	RescanAfter time.Duration
	// CheckpointPath enables crash-tolerant crawling: each device's
	// crawl periodically checkpoints to a per-device file derived from
	// this base path ("wpns.ckpt.json" → "wpns.ckpt.desktop.json").
	CheckpointPath string
	// Resume merges existing checkpoints into the crawls, so a study
	// killed mid-crawl converges to the same record set on rerun.
	Resume bool
	// Pipeline tweaks analysis stages (ablations). Services and Scans
	// are filled in from the ecosystem.
	Pipeline PipelineOptions
	// PumpWorkers bounds the crawler's parallel monitor phases (polls,
	// push dispatch, auto-clicks, landing-page subscriptions); the
	// ecosystem's push-delivery fan-out and the pipeline's featurize
	// and blocklist-lookup stages follow it unless set explicitly. 1
	// forces the serial reference path everywhere; <= 0 defaults to
	// the crawler's container-pool size. Results are byte-identical at
	// every worker count.
	PumpWorkers int
	// BatchWindow coalesces the crawler's monitor ticks (see
	// crawler.Config.BatchWindow): everything due within the window of
	// the first due event is pumped as one batch, which is what gives
	// the parallel phases batches worth fanning out over. 0 keeps
	// exact per-event stepping.
	BatchWindow time.Duration

	// Shards > 1 runs each crawl as a sharded fleet (internal/fleet): a
	// coordinator plus Shards in-process workers, each owning a disjoint
	// container set with its own durable state, heartbeat monitoring,
	// bounded restart, and work stealing. Results are byte-identical to
	// Shards <= 1. Incompatible with Resume (shard state is the fleet's
	// durable layer).
	Shards int
	// ShardHeartbeat is the fleet's simulated-time liveness-check
	// period; <= 0 uses the fleet default (6h).
	ShardHeartbeat time.Duration
	// MaxShardRestarts bounds restart-with-resume per worker (0 = fleet
	// default of 2, negative = never restart, steal immediately).
	MaxShardRestarts int
	// FleetDir is where shard state files are written; empty uses a
	// private temp directory when worker kills are possible.
	FleetDir string
	// FleetLedgerPath, if set, writes each device crawl's fleet event
	// timeline as JSONL (derived per device like CheckpointPath, e.g.
	// ledger.json → ledger.desktop.json). Fleet runs only.
	FleetLedgerPath string

	// Metrics, when non-nil, is threaded through every layer: the
	// ecosystem's virtual network and chaos injector, both crawls, and
	// the mining pipeline, so one snapshot covers the whole study. Nil
	// disables with no overhead.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records the WPN attack chains observed by
	// every crawl browser plus the mining stage spans. Nil disables.
	Tracer *telemetry.Tracer
}

func (c StudyConfig) withDefaults() StudyConfig {
	if c.CollectionWindow <= 0 {
		c.CollectionWindow = 14 * 24 * time.Hour
	}
	if c.RescanAfter <= 0 {
		c.RescanAfter = 30 * 24 * time.Hour
	}
	return c
}

// NetworkStats is one bar group of Figure 6.
type NetworkStats struct {
	Network      string
	Ads          int
	MaliciousAds int
}

// Study is a complete reproduction run with everything the tables and
// figures need.
type Study struct {
	Cfg      StudyConfig
	Eco      *webeco.Ecosystem
	Desktop  *crawler.Result
	Mobile   *crawler.Result
	Records  []*crawler.WPNRecord
	Analysis *Analysis

	// FleetReports holds each device crawl's control-plane accounting
	// when the study ran sharded (Cfg.Shards > 1), keyed by device name.
	FleetReports map[string]*fleet.Report

	// PerNetwork holds Figure 6's distribution, sorted by ad count
	// descending.
	PerNetwork []NetworkStats
}

// RunStudy builds an ecosystem, crawls it on desktop (and mobile), and
// runs the analysis pipeline.
func RunStudy(cfg StudyConfig) (*Study, error) {
	return RunStudyContext(context.Background(), cfg)
}

// RunStudyContext is RunStudy with cancellation: cancelling ctx aborts
// the crawls at their next safe point.
func RunStudyContext(ctx context.Context, cfg StudyConfig) (*Study, error) {
	cfg = cfg.withDefaults()
	if cfg.Eco.Telemetry == nil {
		cfg.Eco.Telemetry = cfg.Metrics
	}
	if cfg.Eco.FlushWorkers == 0 {
		// Scheduler deliveries follow the crawler's pump parallelism: a
		// serial reference run (PumpWorkers=1) keeps them serial, any
		// other setting fans them out at the crawler's container-pool
		// width (32 mirrors the crawler's MaxContainers default).
		if cfg.PumpWorkers > 0 {
			cfg.Eco.FlushWorkers = cfg.PumpWorkers
		} else {
			cfg.Eco.FlushWorkers = 32
		}
	}
	eco, err := webeco.New(cfg.Eco)
	if err != nil {
		return nil, err
	}
	s := &Study{Cfg: cfg, Eco: eco}

	seeds := eco.SeedURLs()
	runCrawl := func(device browser.DeviceType, real bool) (*crawler.Result, error) {
		crawlCfg := crawler.Config{
			Clock:            eco.Clock,
			NewClient:        func() *http.Client { return eco.Net.ClientNoRedirect() },
			Driver:           eco,
			Pending:          eco.Push,
			Device:           device,
			RealDevice:       real,
			CollectionWindow: cfg.CollectionWindow,
			PumpWorkers:      cfg.PumpWorkers,
			BatchWindow:      cfg.BatchWindow,
			CrashPlan:        eco.CrashPlan(),
			FaultCounts:      eco.FaultCounts,
			CheckpointPath:   checkpointPathFor(cfg.CheckpointPath, device),
			Resume:           cfg.Resume,
			Metrics:          cfg.Metrics,
			Tracer:           cfg.Tracer,
		}
		if cfg.Shards > 1 {
			res, rep, err := fleet.Run(ctx, fleet.Config{
				Crawl:           crawlCfg,
				Shards:          cfg.Shards,
				Heartbeat:       cfg.ShardHeartbeat,
				MaxRestarts:     cfg.MaxShardRestarts,
				Dir:             fleetDirFor(cfg.FleetDir, device),
				WorkerCrashPlan: eco.WorkerCrashPlan(),
				LedgerPath:      checkpointPathFor(cfg.FleetLedgerPath, device),
			}, seeds)
			if rep != nil {
				if s.FleetReports == nil {
					s.FleetReports = make(map[string]*fleet.Report)
				}
				s.FleetReports[device.String()] = rep
			}
			return res, err
		}
		c, err := crawler.New(crawlCfg)
		if err != nil {
			return nil, err
		}
		return c.RunContext(ctx, seeds)
	}

	if s.Desktop, err = runCrawl(browser.Desktop, false); err != nil {
		eco.Close()
		return nil, err
	}
	s.Records = append(s.Records, s.Desktop.Records...)
	if !cfg.SkipMobile {
		if s.Mobile, err = runCrawl(browser.Mobile, true); err != nil {
			eco.Close()
			return nil, err
		}
		s.Records = append(s.Records, s.Mobile.Records...)
	}

	opts := cfg.Pipeline
	opts.Services = []BlocklistLookup{
		ServiceLookup{S: eco.VT},
		ServiceLookup{S: eco.GSB},
	}
	now := eco.Clock.Now()
	opts.Scans = []time.Time{now, now.Add(cfg.RescanAfter)}
	if opts.Metrics == nil {
		opts.Metrics = cfg.Metrics
	}
	if opts.Tracer == nil {
		opts.Tracer = cfg.Tracer
	}
	// The pipeline's fan-out stages follow the study's worker setting
	// unless the ablation options pinned their own.
	if opts.Features.Workers == 0 {
		opts.Features.Workers = cfg.PumpWorkers
	}
	if opts.Labels.Workers == 0 {
		opts.Labels.Workers = cfg.PumpWorkers
	}
	if s.Analysis, err = RunPipeline(s.Records, opts); err != nil {
		eco.Close()
		return nil, err
	}
	s.Analysis.Report.TotalCollected = len(s.Records)
	s.PerNetwork = s.perNetworkStats()
	return s, nil
}

// checkpointPathFor derives the per-device checkpoint file from the
// study's base path: "wpns.ckpt.json" → "wpns.ckpt.desktop.json".
func checkpointPathFor(base string, device browser.DeviceType) string {
	if base == "" {
		return ""
	}
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "." + device.String() + ext
}

// fleetDirFor derives the per-device shard-state directory, so the
// desktop and mobile fleets never clobber each other's files.
func fleetDirFor(base string, device browser.DeviceType) string {
	if base == "" {
		return ""
	}
	return filepath.Join(base, device.String())
}

// Close releases the study's ecosystem.
func (s *Study) Close() error { return s.Eco.Close() }

// NetworkOfSW attributes a service worker URL to an ad network by its
// CDN host, or "self-hosted" for first-party workers.
func (s *Study) NetworkOfSW(swURL string) string {
	host := urlx.HostOf(swURL)
	for _, an := range s.Eco.Networks() {
		if host == an.CDNHost {
			return an.Spec.Name
		}
	}
	return "self-hosted"
}

func (s *Study) perNetworkStats() []NetworkStats {
	agg := map[string]*NetworkStats{}
	for i, r := range s.Analysis.FS.Records {
		l := s.Analysis.Labels[i]
		if !l.IsAd {
			continue
		}
		name := s.NetworkOfSW(r.SWURL)
		st := agg[name]
		if st == nil {
			st = &NetworkStats{Network: name}
			agg[name] = st
		}
		st.Ads++
		if l.Malicious() {
			st.MaliciousAds++
		}
	}
	out := make([]NetworkStats, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ads != out[j].Ads {
			return out[i].Ads > out[j].Ads
		}
		return out[i].Network < out[j].Network
	})
	return out
}

// AdBlockerStats is Table 6's measurement for one blocking mechanism.
type AdBlockerStats struct {
	Name string
	adblock.Stats
}

// EvaluateAdBlockers replays every SW network request observed during
// the study against the EasyList rules and two simulated ad-blocker
// extensions (which cannot see SW traffic), reproducing Table 6.
func (s *Study) EvaluateAdBlockers() []AdBlockerStats {
	engine := adblock.ParseList(s.Eco.EasyListRules())
	var reqs []adblock.Request
	for _, r := range s.Records {
		for _, sw := range r.SWRequests {
			reqs = append(reqs, adblock.Request{
				URL:               sw.URL,
				DocumentURL:       r.SourceURL,
				Type:              adblock.TypeXHR,
				FromServiceWorker: true,
			})
		}
	}
	easylist := adblock.Extension{Name: "EasyList (direct matching)", Engine: engine, SeesServiceWorkers: true}
	ext1 := adblock.Extension{Name: "AdBlock-Plus-like extension", Engine: engine}
	ext2 := adblock.Extension{Name: "uBlock-like extension", Engine: engine}
	return []AdBlockerStats{
		{Name: easylist.Name, Stats: easylist.Evaluate(reqs)},
		{Name: ext1.Name, Stats: ext1.Evaluate(reqs)},
		{Name: ext2.Name, Stats: ext2.Evaluate(reqs)},
	}
}

// CostEstimate reproduces the §3 ethics computation: the cost our
// clicks imposed on legitimate advertisers, at the push-notification CPM.
type CostEstimate struct {
	CPMUSD            float64
	Domains           int
	MaxClicksOnDomain int
	MaxCostUSD        float64
	AvgClicksPerDom   float64
	AvgCostUSD        float64
}

// EstimateAdvertiserCost prices clicks on ads whose landing pages were
// not blocklist-flagged (the paper's definition of legitimate).
func (s *Study) EstimateAdvertiserCost() CostEstimate {
	const cpm = 2.54 // USD per mille, iZooto push-ad CPM
	clicks := map[string]int{}
	for i, r := range s.Analysis.FS.Records {
		l := s.Analysis.Labels[i]
		if !l.IsAd || l.KnownMalicious {
			continue
		}
		if d := urlx.ESLDOf(r.LandingURL); d != "" {
			clicks[d]++
		}
	}
	est := CostEstimate{CPMUSD: cpm, Domains: len(clicks)}
	total := 0
	for _, n := range clicks {
		total += n
		if n > est.MaxClicksOnDomain {
			est.MaxClicksOnDomain = n
		}
	}
	if est.Domains > 0 {
		est.AvgClicksPerDom = float64(total) / float64(est.Domains)
	}
	est.MaxCostUSD = float64(est.MaxClicksOnDomain) / 1000 * cpm
	est.AvgCostUSD = est.AvgClicksPerDom / 1000 * cpm
	return est
}

// Evaluation compares pipeline labels to the ecosystem's ground truth —
// something the paper could not do on the live web. It is the
// simulation's accuracy check.
type Evaluation struct {
	TruthMaliciousAds int
	TruthBenign       int
	TruePositives     int
	FalsePositives    int
	FalseNegatives    int
}

// Precision returns TP / (TP + FP).
func (e Evaluation) Precision() float64 {
	if e.TruePositives+e.FalsePositives == 0 {
		return 0
	}
	return float64(e.TruePositives) / float64(e.TruePositives+e.FalsePositives)
}

// Recall returns TP / (TP + FN).
func (e Evaluation) Recall() float64 {
	if e.TruePositives+e.FalseNegatives == 0 {
		return 0
	}
	return float64(e.TruePositives) / float64(e.TruePositives+e.FalseNegatives)
}

// Evaluate scores the pipeline's malicious labeling against ground
// truth over the valid-landing records.
func (s *Study) Evaluate() Evaluation {
	truth := s.Eco.Truth()
	var ev Evaluation
	for i, r := range s.Analysis.FS.Records {
		isMal := truth.IsMaliciousURL(r.LandingURL)
		if isMal {
			ev.TruthMaliciousAds++
		} else {
			ev.TruthBenign++
		}
		labeled := s.Analysis.Labels[i].Malicious()
		switch {
		case labeled && isMal:
			ev.TruePositives++
		case labeled && !isMal:
			ev.FalsePositives++
		case !labeled && isMal:
			ev.FalseNegatives++
		}
	}
	return ev
}

// DescribeCluster renders one WPN cluster like Figure 4's examples.
func (s *Study) DescribeCluster(ci int) string {
	c := s.Analysis.Clusters.Clusters[ci]
	var b strings.Builder
	fmt.Fprintf(&b, "cluster %d: %d WPNs, %d source domains, %d landing domains, ad_campaign=%v\n",
		c.ID, len(c.Members), len(c.SourceDomains), len(c.LandingDomains), c.IsAdCampaign)
	max := len(c.Members)
	if max > 3 {
		max = 3
	}
	for _, m := range c.Members[:max] {
		r := s.Analysis.FS.Records[m]
		fmt.Fprintf(&b, "  %q / %q → %s\n", r.Title, r.Body, r.LandingURL)
	}
	return b.String()
}
