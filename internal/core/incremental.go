package core

import (
	"fmt"
	"time"

	"pushadminer/internal/cluster"
	"pushadminer/internal/simhash"
)

// IncrementalStats counts what an IncrementalClusterer did so far.
type IncrementalStats struct {
	// Added is the number of records ingested.
	Added int
	// AssignedToExisting counts records whose provisional nearest-medoid
	// lookup landed them in an existing campaign at Add time.
	AssignedToExisting int
	// ProvisionalNew counts records Add could not place (no near medoid,
	// or no clustering run yet).
	ProvisionalNew int
	// Reclusters is the number of Recluster calls.
	Reclusters int
	// BlocksReused / BlocksRebuilt count per-Recluster block dendrogram
	// cache hits and misses. Reuse is what makes the stream cheaper than
	// clustering from scratch after every batch.
	BlocksReused  int
	BlocksRebuilt int
	// SweepMemoHits / SweepMemoRefreshes / SweepRescoredBlocks count the
	// pooled cut sweep's per-block memoization across Recluster calls
	// (see sweepMemoStats): sweep-grid cells served from cached block
	// contributions, cached labelings rescored under a new far estimate,
	// and block re-cuts actually performed. All zero below the
	// validation-scale crossover, where the exact sweep selects the cut.
	SweepMemoHits       int64
	SweepMemoRefreshes  int64
	SweepRescoredBlocks int64
}

// IncrementalClusterer mines a WPN stream without re-running the batch
// pipeline per arrival. Records live in a fixed FeatureSet (the feature
// space — embeddings, vocabularies — is trained once up front; only
// membership grows). Add ingests one record: it unions the record into
// the banded candidate graph and provisionally assigns it to the
// nearest existing campaign medoid within the last cut height.
// Recluster then re-derives campaigns, rebuilding only dirty blocks —
// connected components whose membership changed since the previous
// call — and reusing every untouched block's cached dendrogram.
//
// Because the union-find, the per-block dendrograms, the pooled cut
// sweep, and the label stitching all depend only on the *final* set of
// added records (never on arrival order), the result after all records
// are added converges exactly — labels, cut height, and silhouette — to
// what the batch Blocked path computes; the convergence test asserts
// it. Not safe for concurrent use.
type IncrementalClusterer struct {
	fs   *FeatureSet
	opts ClusterOptions

	bands, link int
	distT       float64

	ix      *simhash.BandIndex
	uf      *cluster.UnionFind
	added   []bool
	nAdded  int
	candBuf []int

	// cache maps a block's smallest member to its dendrogram. Valid
	// reuse check is size equality: components only ever gain members,
	// so an unchanged size means an unchanged member set.
	cache map[int]*blockDendrogram

	res     *ClusterResult
	medoids map[int]int // cluster label -> medoid record index
	// restored is a persisted MedoidIndex from a previous mine (see
	// RestoreMedoidIndex): before the first Recluster of this run, Add
	// classifies against it instead of returning -1 for everything.
	restored *MedoidIndex
	stats    IncrementalStats
	obs      *blockedObs
}

// NewIncrementalClusterer prepares an empty clusterer over the feature
// set. opts is interpreted as for the Blocked batch path (Prune.Bands,
// Prune.MaxHamming and Prune.BlockDistance parameterize the blocking).
func NewIncrementalClusterer(fs *FeatureSet, opts ClusterOptions) *IncrementalClusterer {
	bands, link, distT := blockedParams(opts.Prune)
	return &IncrementalClusterer{
		fs:    fs,
		opts:  opts,
		bands: bands,
		link:  link,
		distT: distT,
		ix:    simhash.NewBandIndex(bands),
		uf:    cluster.NewUnionFind(len(fs.Records)),
		added: make([]bool, len(fs.Records)),
		cache: make(map[int]*blockDendrogram),
		obs:   newBlockedObs(opts.Metrics, opts.Ledger, opts.prog),
	}
}

// Added returns the number of records ingested so far.
func (c *IncrementalClusterer) Added() int { return c.nAdded }

// Stats returns the counters accumulated so far.
func (c *IncrementalClusterer) Stats() IncrementalStats { return c.stats }

// Result returns the labeling from the most recent Recluster (nil
// before the first). Records not yet added carry label -1 and belong to
// no cluster.
func (c *IncrementalClusterer) Result() *ClusterResult { return c.res }

// Add ingests record i (an index into the FeatureSet). It returns the
// provisional campaign label — the label of the nearest existing
// campaign medoid among the record's banded candidates, if that medoid
// sits within the last Recluster's cut height — or -1 when the record
// opens (provisionally) new territory. The provisional label is a cheap
// streaming answer; Recluster is the authoritative one.
func (c *IncrementalClusterer) Add(i int) int {
	if c.added[i] {
		return c.provisionalLabel(i)
	}
	h := c.fs.Hashes[i]
	c.candBuf = c.ix.AppendCandidates(c.candBuf[:0], h)

	prov := -1
	if c.res == nil && c.restored != nil {
		// No Recluster yet this run, but a persisted medoid index from a
		// previous full mine: classify against its medoids so the
		// service loop answers arrivals between re-mines without ever
		// triggering a sweep.
		prov, _ = c.restored.Classify(c.fs, i)
	} else if c.res != nil && c.res.CutHeight > 0 {
		bestD := c.res.CutHeight
		seen := make(map[int]bool)
		for _, j := range c.candBuf {
			l := c.res.Labels[j]
			if l < 0 || seen[l] {
				continue
			}
			seen[l] = true
			med, ok := c.medoids[l]
			if !ok {
				continue
			}
			if d := c.fs.Distance(i, med); d <= bestD {
				bestD, prov = d, l
			}
		}
	}
	if prov >= 0 {
		c.stats.AssignedToExisting++
	} else {
		c.stats.ProvisionalNew++
	}

	// The real state change: confirmed unions into the candidate graph
	// (Hamming gate, then exact-distance confirmation — the same edge
	// test the batch path applies). Every pair of added records is
	// examined exactly once — when the later of the two arrives — so
	// the final components match the batch blockedComponents exactly.
	for _, j := range c.candBuf {
		if !c.uf.Same(i, j) && blockedEdge(c.fs, i, j, c.link, c.distT) {
			c.uf.Union(i, j)
		}
	}
	c.ix.Add(i, h)
	c.added[i] = true
	c.nAdded++
	c.stats.Added++
	c.obs.incrementalAdd()
	return prov
}

func (c *IncrementalClusterer) provisionalLabel(i int) int {
	if c.res == nil {
		return -1
	}
	return c.res.Labels[i]
}

// Recluster re-derives campaigns over everything added so far and
// returns the result (also available via Result). Blocks whose
// membership is unchanged since the previous call reuse their cached
// dendrograms; only dirty blocks are re-clustered (in parallel). The
// cut sweep and stitching always re-run — they are cheap relative to
// linkage and depend on the global pool of block heights.
func (c *IncrementalClusterer) Recluster() *ClusterResult {
	comps := c.uf.ComponentsOf(func(i int) bool { return c.added[i] })

	blocks := make([]*blockDendrogram, len(comps))
	var rebuild []int
	for bi, comp := range comps {
		if bd := c.cache[comp[0]]; bd != nil && len(bd.members) == len(comp) {
			blocks[bi] = bd
			c.stats.BlocksReused++
		} else {
			rebuild = append(rebuild, bi)
		}
	}
	c.obs.setBlocksTotal(len(rebuild))
	if c.obs == nil {
		fanOut(len(rebuild), 0, func(k int) {
			bi := rebuild[k]
			blocks[bi] = buildBlockDendrogram(c.fs, comps[bi], c.opts.Linkage)
		})
	} else {
		fanOut(len(rebuild), 0, func(k int) {
			bi := rebuild[k]
			start := time.Now()
			blocks[bi] = buildBlockDendrogram(c.fs, comps[bi], c.opts.Linkage)
			c.obs.blockBuilt(len(comps[bi]), time.Since(start).Nanoseconds())
		})
	}
	c.obs.blocksRebuilt(rebuild, comps)
	c.stats.BlocksRebuilt += len(rebuild)
	// Drop stale cache entries (blocks that merged into bigger ones) so
	// the cache tracks the live component set.
	next := make(map[int]*blockDendrogram, len(blocks))
	for bi, bd := range blocks {
		next[comps[bi][0]] = bd
	}
	c.cache = next

	var per [][]int
	var height, sil float64
	if c.opts.FixedCutHeight > 0 {
		var k int
		per, k = cutBlocksAt(blocks, c.opts.FixedCutHeight)
		height = c.opts.FixedCutHeight
		if k >= 2 {
			sil = blockedSilhouette(blocks, per, blockedFar(c.fs, blocks), c.nAdded)
		}
	} else {
		// The sweep may coarsen the blocks with missed threshold edges
		// (validation scale); stitching and medoids must use the
		// returned slice. The coarsened blocks never enter the cache —
		// it was rebuilt above from the union-find components, which
		// stay authoritative for reuse. Reused blocks carry their cut
		// memos (the memo lives on the blockDendrogram), so clean
		// blocks' sweep contributions survive across Recluster calls.
		var ms sweepMemoStats
		blocks, per, height, sil, ms = sweepBlockedCut(c.fs, blocks, c.opts.Linkage, c.nAdded, c.opts.MaxCutCandidates, c.opts.conservativeTol(), c.opts.FullSweep, c.obs)
		c.stats.SweepMemoHits += ms.hits
		c.stats.SweepMemoRefreshes += ms.refreshes
		c.stats.SweepRescoredBlocks += ms.rescoredBlocks
	}
	labels := stitchBlockedLabels(len(c.fs.Records), blocks, per)
	c.res = finishClusterResult(c.fs, labels, height, sil)
	c.updateMedoids(blocks, per, labels)
	c.stats.Reclusters++
	c.obs.reclustered(len(comps), len(comps)-len(rebuild), len(rebuild), len(c.res.Clusters))
	return c.res
}

// updateMedoids recomputes each cluster's medoid from the blocks' exact
// local matrices (see blockMedoids).
func (c *IncrementalClusterer) updateMedoids(blocks []*blockDendrogram, per [][]int, labels []int) {
	c.medoids = blockMedoids(blocks, per, labels)
}

// MedoidIndex snapshots the classify state of the last Recluster —
// campaign medoids plus the cut that defined them — as a persistable
// index (see MedoidIndex, SaveMedoidIndex). Nil before the first
// Recluster.
func (c *IncrementalClusterer) MedoidIndex() *MedoidIndex {
	if c.res == nil {
		return nil
	}
	return newMedoidIndex(c.fs, c.medoids, c.res.CutHeight, c.res.Silhouette, c.bands)
}

// RestoreMedoidIndex seeds the clusterer's provisional classifier from
// a persisted index, so Add answers arrivals against the previous
// mine's medoids before the first Recluster of this run. The index must
// have been mined from the same feature set (same size; record indices
// and distances live in that feature space).
func (c *IncrementalClusterer) RestoreMedoidIndex(x *MedoidIndex) error {
	if x.Records != len(c.fs.Records) {
		return fmt.Errorf("core: medoid index mined from %d records, feature set has %d", x.Records, len(c.fs.Records))
	}
	c.restored = x
	return nil
}

// clusterWPNsIncremental replays the feature set as a stream through an
// IncrementalClusterer in IncrementalBatch-sized batches, re-clustering
// after each, and returns the final result. It exists to exercise (and
// time) the streaming path inside the standard pipeline; the outcome is
// identical to the Blocked batch path.
func clusterWPNsIncremental(fs *FeatureSet, opts ClusterOptions) *ClusterResult {
	st := newStageTimer(opts.Metrics, opts.Tracer, opts.parent, opts.Ledger, opts.prog)
	batch := opts.IncrementalBatch
	if batch <= 0 {
		batch = 256
	}
	inc := NewIncrementalClusterer(fs, opts)
	n := len(fs.Records)
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		prev := inc.Stats()
		done := st.stage("blocks")
		for i := start; i < end; i++ {
			inc.Add(i)
		}
		done()
		if opts.Ledger != nil {
			cur := inc.Stats()
			opts.Ledger.IncrementalAdd(end-start,
				cur.AssignedToExisting-prev.AssignedToExisting,
				cur.ProvisionalNew-prev.ProvisionalNew)
		}
		done = st.stage("block_linkage")
		inc.Recluster()
		done()
	}
	if n == 0 {
		return inc.forceEmptyResult()
	}
	recordBlockedPairs(opts.Metrics, n, blockMembers(inc))
	if opts.prog != nil {
		comps := blockMembers(inc)
		var exact int64
		for _, c := range comps {
			m := int64(len(c))
			exact += m * (m - 1) / 2
		}
		opts.prog.addPairs(exact, int64(n)*int64(n-1)/2-exact)
	}
	if res := inc.Result(); res != nil {
		// The medoid pass is already paid for (Recluster maintains it),
		// so the streaming result always carries the persistable index.
		res.Medoids = inc.MedoidIndex()
		if opts.Ledger != nil {
			opts.Ledger.CutChosen(res.CutHeight, numClusters(res.Labels), res.Silhouette)
		}
	}
	return inc.Result()
}

// blockMembers snapshots the clusterer's current block membership (for
// pair accounting).
func blockMembers(c *IncrementalClusterer) [][]int {
	return c.uf.ComponentsOf(func(i int) bool { return c.added[i] })
}

// forceEmptyResult covers the n == 0 replay, where no Recluster ever
// ran.
func (c *IncrementalClusterer) forceEmptyResult() *ClusterResult {
	if c.res == nil {
		c.res = finishClusterResult(c.fs, nil, 0, 0)
	}
	return c.res
}
