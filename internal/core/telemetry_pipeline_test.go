package core

import (
	"testing"

	"pushadminer/internal/telemetry"
)

// TestPipelineStageTelemetry runs the full mining pipeline with metrics
// and tracing attached and checks that every stage reported wall-time,
// the stage spans hang off one pipeline root, and the result is
// untouched by observation.
func TestPipelineStageTelemetry(t *testing.T) {
	reg := telemetry.New()
	tracer := telemetry.NewTracer(nil)

	var plain, observed *Analysis
	runTestPipelineInto(t, &plain, nil)
	runTestPipelineInto(t, &observed, func(po *PipelineOptions) {
		po.Metrics = reg
		po.Tracer = tracer
	})

	// Observation must not change the analysis.
	if plain.Report != observed.Report {
		t.Errorf("report changed under telemetry:\nplain:    %+v\nobserved: %+v", plain.Report, observed.Report)
	}

	// Every declared mining stage has a wall-time key, even stages that
	// did not run standalone (golden key-set stability).
	snap := reg.Snapshot()
	stages := snap.Families["mining_stage_ns"]
	for _, s := range miningStages {
		if _, ok := stages[s]; !ok {
			t.Errorf("mining_stage_ns missing stage key %q (have %v)", s, stages)
		}
	}
	// Stages that always do real work must have nonzero wall-time.
	for _, s := range []string{"featurize", "distance_matrix", "linkage", "cut", "label"} {
		if stages[s] == 0 {
			t.Errorf("mining_stage_ns[%s] = 0; stage ran but recorded no time", s)
		}
	}

	// Span structure: exactly one "pipeline" root, stage spans beneath
	// it (clustering stages may nest via the same parent).
	spans := tracer.Spans()
	var rootID telemetry.SpanID
	byName := map[string]int{}
	for _, sp := range spans {
		byName[sp.Name]++
		if sp.Name == "pipeline" {
			if sp.Parent != 0 {
				t.Errorf("pipeline span has parent %d, want root", sp.Parent)
			}
			rootID = sp.ID
		}
	}
	if byName["pipeline"] != 1 {
		t.Fatalf("want exactly 1 pipeline root span, got %d (%v)", byName["pipeline"], byName)
	}
	for _, name := range []string{"filter", "featurize", "distance_matrix", "linkage", "cut", "label", "propagate", "meta"} {
		if byName[name] != 1 {
			t.Errorf("stage span %q count = %d, want 1", name, byName[name])
		}
	}
	for _, sp := range spans {
		if sp.ID == rootID {
			continue
		}
		if sp.Parent != rootID {
			t.Errorf("stage span %q parent = %d, want pipeline root %d", sp.Name, sp.Parent, rootID)
		}
		if sp.End.Before(sp.Start) {
			t.Errorf("stage span %q ends before it starts", sp.Name)
		}
	}
}

// runTestPipelineInto adapts runTestPipeline for reuse across variants.
func runTestPipelineInto(t *testing.T, out **Analysis, mod func(*PipelineOptions)) {
	t.Helper()
	a, _ := runTestPipeline(t, func(po *PipelineOptions) {
		if mod != nil {
			mod(po)
		}
	})
	*out = a
}

// TestClusterPairAccounting: on the pruned path, every unordered pair
// must be classified exactly once as exact or pruned; on the exact
// paths, all pairs are exact. The counts must cover n(n-1)/2 with
// nothing dropped or double-counted.
func TestClusterPairAccounting(t *testing.T) {
	fs := parityFS(t, 1, 150)
	n := int64(len(fs.Records))
	allPairs := n * (n - 1) / 2

	t.Run("pruned", func(t *testing.T) {
		reg := telemetry.New()
		pruned := ClusterWPNs(fs, ClusterOptions{Prune: PruneOptions{Enabled: true}, Metrics: reg})
		exact := ClusterWPNs(fs, ClusterOptions{Prune: PruneOptions{Enabled: true}})
		if !sameLabels(pruned.Labels, exact.Labels) {
			t.Error("pair counting changed clustering labels")
		}
		pairs := reg.Snapshot().Families["cluster_pairs"]
		if got := pairs["exact"] + pairs["pruned"]; got != allPairs {
			t.Errorf("exact %d + pruned %d = %d, want all %d pairs", pairs["exact"], pairs["pruned"], got, allPairs)
		}
		if pairs["pruned"] == 0 {
			t.Error("pruning never skipped a pair; accounting test is vacuous")
		}
		t.Logf("n=%d exact=%d pruned=%d (%.1f%% skipped)", n, pairs["exact"], pairs["pruned"],
			100*float64(pairs["pruned"])/float64(allPairs))
	})

	t.Run("exact", func(t *testing.T) {
		reg := telemetry.New()
		ClusterWPNs(fs, ClusterOptions{Metrics: reg})
		pairs := reg.Snapshot().Families["cluster_pairs"]
		if pairs["exact"] != allPairs || pairs["pruned"] != 0 {
			t.Errorf("exact path: exact=%d pruned=%d, want %d/0", pairs["exact"], pairs["pruned"], allPairs)
		}
	})
}
