package core

import (
	"strings"
	"testing"
	"time"

	"pushadminer/internal/crawler"
	"pushadminer/internal/webeco"
)

func TestClassifyScam(t *testing.T) {
	cases := []struct {
		rec  *crawler.WPNRecord
		want ScamType
	}{
		{&crawler.WPNRecord{Title: "Your payment info has been leaked", LandingContent: "call the toll free number now"}, ScamTechSupport},
		{&crawler.WPNRecord{Title: "Congratulations! You have won a prize", LandingContent: "complete this survey"}, ScamSurvey},
		{&crawler.WPNRecord{Title: "PayPal: unusual sign-in activity detected"}, ScamPhishing},
		{&crawler.WPNRecord{Title: "Your battery is damaged by (4) viruses!"}, ScamScareware},
		{&crawler.WPNRecord{Title: "✆ Missed call from +1 (202) 555-0123"}, ScamMobileBait},
		{&crawler.WPNRecord{Title: "Final notice: unclaimed cash prize"}, ScamAdvanceFee},
		{&crawler.WPNRecord{Title: "something entirely unrelated"}, ScamOther},
	}
	for _, c := range cases {
		if got := ClassifyScam(c.rec); got != c.want {
			t.Errorf("ClassifyScam(%q) = %q, want %q", c.rec.Title, got, c.want)
		}
	}
}

func TestScamBreakdownTable(t *testing.T) {
	s := getStudy(t)
	counts := ScamBreakdown(s)
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != s.Analysis.Report.TotalMaliciousAds {
		t.Errorf("breakdown total %d != malicious ads %d", total, s.Analysis.Report.TotalMaliciousAds)
	}
	tab := ScamBreakdownTable(s)
	if !strings.Contains(tab.String(), "total") {
		t.Error("breakdown table missing total row")
	}
}

func TestMetaClusterDOT(t *testing.T) {
	s := getStudy(t)
	dot, err := MetaClusterDOT(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"graph meta0", "shape=box", "--", "}"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if _, err := MetaClusterDOT(s, 1<<30); err == nil {
		t.Error("out-of-range meta id accepted")
	}
}

func TestPilotCDFTable(t *testing.T) {
	pr := &PilotResult{
		Sources: 4,
		Latencies: []time.Duration{
			30 * time.Second, 5 * time.Minute, 12 * time.Minute, 40 * time.Hour,
		},
	}
	out := PilotCDFTable(pr).String()
	if !strings.Contains(out, "median") || !strings.Contains(out, "p98") {
		t.Errorf("pilot CDF table incomplete:\n%s", out)
	}
	empty := PilotCDFTable(&PilotResult{}).String()
	if !strings.Contains(empty, "no data") {
		t.Errorf("empty pilot table: %s", empty)
	}
}

func TestScamBreakdownDeterministic(t *testing.T) {
	s, err := RunStudy(StudyConfig{Eco: webeco.Config{Seed: 2, Scale: 0.002}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a := ScamBreakdownTable(s).String()
	b := ScamBreakdownTable(s).String()
	if a != b {
		t.Error("breakdown rendering not deterministic")
	}
}
