package core

import (
	"fmt"
	"strings"

	"pushadminer/internal/report"
	"pushadminer/internal/urlx"
	"pushadminer/internal/webeco"
)

// Table1 regenerates "URLs and Notification Permission Request counts":
// per ad network and generic keyword, how many URLs the code search
// found and how many requested permission, with the paper's values for
// comparison.
func Table1(s *Study) *report.Table {
	t := &report.Table{
		Title:   "Table 1 — URLs and notification permission requests per seed keyword",
		Headers: []string{"Ad Network / Keyword", "URLs", "NPRs", "URLs(paper)", "NPRs(paper)"},
		Note:    "measured at scale " + fmt.Sprintf("%.3f", s.Cfg.Eco.Scale) + " of the paper's crawl",
	}
	nprByURL := map[string]bool{}
	for _, u := range s.Desktop.NPRURLs {
		nprByURL[u] = true
	}
	countFor := func(keyword string) (int, int) {
		urls := s.Eco.Search().Search(keyword)
		npr := 0
		for _, u := range urls {
			if nprByURL[u] {
				npr++
			}
		}
		return len(urls), npr
	}
	totURLs, totNPR := 0, 0
	for _, spec := range webeco.SeedNetworks {
		u, n := countFor(spec.Keyword)
		totURLs += u
		totNPR += n
		t.AddRow(spec.Name, u, n, spec.PaperURLs, spec.PaperNPRs)
	}
	for _, spec := range webeco.GenericKeywords {
		u, n := countFor(spec.Keyword)
		totURLs += u
		totNPR += n
		t.AddRow(spec.Keyword, u, n, spec.PaperURLs, spec.PaperNPRs)
	}
	t.AddRow("Total", totURLs, totNPR, webeco.PaperTotalURLs, webeco.PaperTotalNPRs)
	return t
}

// Table2 regenerates the Alexa top-1M rank distribution of
// permission-requesting domains.
func Table2(s *Study) *report.Table {
	t := &report.Table{
		Title:   "Table 2 — Alexa rank buckets of notification-requesting domains",
		Headers: []string{"Rank range", "Domains"},
	}
	var domains []string
	for _, u := range s.Desktop.NPRURLs {
		domains = append(domains, urlx.ESLDOf(u))
	}
	buckets, ranked := s.Eco.Alexa().Bucketize(domains)
	for _, b := range buckets {
		t.AddRow(b.Label, b.Count)
	}
	t.AddRow("total ranked", ranked)
	t.AddRow("unranked", len(uniqueStrings(domains))-ranked)
	t.Note = fmt.Sprintf("%s of NPR domains rank in the top 1M (paper: 36%%)",
		report.Pct(ranked, len(uniqueStrings(domains))))
	return t
}

func uniqueStrings(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// Table3 regenerates the summary of findings.
func Table3(s *Study) *report.Table {
	r := s.Analysis.Report
	t := &report.Table{
		Title:   "Table 3 — Summary of data analysis",
		Headers: []string{"Metric", "Measured", "Paper"},
	}
	t.AddRow("WPN messages collected", r.TotalCollected, 21541)
	t.AddRow("WPNs with valid landing page", r.ValidLanding, 12262)
	t.AddRow("WPN ad campaigns", r.AdCampaignClusters, 572)
	t.AddRow("WPN ads", r.TotalAds, 5143)
	t.AddRow("Malicious WPN ads", r.TotalMaliciousAds, 2615)
	t.AddRow("Malicious ad fraction", fmt.Sprintf("%.0f%%", 100*r.MaliciousAdFraction()), "51%")
	t.AddRow("Malicious campaigns", r.MaliciousCampaigns, 318)
	return t
}

// Table4 regenerates "Measurement Results at Stages of Clustering".
func Table4(s *Study) *report.Table {
	r := s.Analysis.Report
	t := &report.Table{
		Title: "Table 4 — Results at stages of clustering",
		Headers: []string{"Stage", "#clusters", "#ad-related", "#WPN ads",
			"#known malicious", "#additional malicious"},
	}
	t.AddRow("After WPN clustering", r.Clusters, r.AdCampaignClusters,
		r.Stage1Ads, r.Stage1KnownMal, r.Stage1AddMal)
	t.AddRow("After meta clustering", r.MetaClusters, r.AdRelatedMeta,
		r.Stage2Ads, r.Stage2KnownMal, r.Stage2AddMal)
	t.AddRow("Total", "", "", r.TotalAds, r.TotalKnownMal, r.TotalAddMal)
	t.AddRow("(paper row 1)", 8780, 572, 3213, 758, 367)
	t.AddRow("(paper row 2)", 2046, 224, 1930, 210, 1280)
	t.AddRow("(paper total)", "", "", 5143, 968, 1647)
	return t
}

// Table5 regenerates the singleton-cluster examples.
func Table5(s *Study) *report.Table {
	t := &report.Table{
		Title:   "Table 5 — Singleton clusters remaining after meta clustering (examples)",
		Headers: []string{"Notification title", "Source domain", "Landing domain"},
		Note: fmt.Sprintf("%d singleton clusters remain after meta clustering (paper: 855 of 7,731)",
			s.Analysis.Report.SingletonsAfterMeta),
	}
	for _, e := range SampleSingletons(s, 8) {
		title := e.Title
		if len(title) > 48 {
			title = title[:48] + "…"
		}
		t.AddRow(title, e.SourceDomain, e.LandingDomain)
	}
	return t
}

// Table6 regenerates the ad-blocker effectiveness results.
func Table6(s *Study) *report.Table {
	t := &report.Table{
		Title:   "Table 6 — Ad blockers vs service-worker push-ad requests",
		Headers: []string{"Mechanism", "SW requests", "Visible", "Matched by rules", "Blocked", "Blocked %"},
		Note:    "paper: extensions blocked none (SWs invisible); EasyList matched <2% by direct inspection",
	}
	for _, st := range s.EvaluateAdBlockers() {
		t.AddRow(st.Name, st.Total, st.Visible, st.WouldMatch, st.Blocked,
			report.Pct(st.Blocked, st.Total))
	}
	return t
}

// Figure4Table renders the Figure 4 cluster archetypes.
func Figure4Table(s *Study) *report.Table {
	t := &report.Table{
		Title:   "Figure 4 — Example WPN clusters",
		Headers: []string{"Cluster", "WPNs", "Sources", "Landing domains", "Ad campaign", "Example title"},
	}
	ar := FindArchetypes(s)
	add := func(name string, c *WPNCluster) {
		if c == nil {
			t.AddRow(name, "-", "-", "-", "-", "(not present at this scale)")
			return
		}
		title := s.Analysis.FS.Records[c.Members[0]].Title
		if len(title) > 44 {
			title = title[:44] + "…"
		}
		t.AddRow(name, len(c.Members), len(c.SourceDomains), len(c.LandingDomains), c.IsAdCampaign, title)
	}
	add("WPN-C1 (malicious campaign)", ar.MaliciousCampaign)
	add("WPN-C2 (duplicate ads, unflagged)", ar.DuplicateAdsCampaign)
	add("WPN-C3 (single-source alerts)", ar.SingleSourceAlerts)
	add("WPN-C4 (singleton)", ar.Singleton)
	return t
}

// Figure5Table renders the largest meta clusters.
func Figure5Table(s *Study) *report.Table {
	t := &report.Table{
		Title:   "Figure 5 — Largest meta clusters (bipartite components)",
		Headers: []string{"Meta", "WPN clusters", "Landing domains", "Ad-related", "Suspicious", "Sample domains"},
	}
	for _, m := range LargestMetaClusters(s, 4) {
		t.AddRow(fmt.Sprintf("M%d", m.ID), m.NumClusters, m.NumDomains,
			m.AdRelated, m.Suspicious, strings.Join(m.Domains, ", "))
	}
	return t
}

// Figure6Table renders the per-ad-network WPN ad distribution.
func Figure6Table(s *Study) *report.Table {
	t := &report.Table{
		Title:   "Figure 6 — Distribution of WPN ads per ad network",
		Headers: []string{"Ad network", "WPN ads", "Malicious ads", "Malicious %"},
		Note:    "paper: most push ad networks carry malicious WPN ads",
	}
	for _, ns := range s.PerNetwork {
		t.AddRow(ns.Network, ns.Ads, ns.MaliciousAds, report.Pct(ns.MaliciousAds, ns.Ads))
	}
	return t
}

// CostTable renders the §3 ethics cost estimate.
func CostTable(s *Study) *report.Table {
	est := s.EstimateAdvertiserCost()
	t := &report.Table{
		Title:   "Ethics — estimated cost to legitimate advertisers (CPM model)",
		Headers: []string{"Metric", "Measured", "Paper"},
	}
	t.AddRow("CPM (USD)", est.CPMUSD, 2.54)
	t.AddRow("Advertiser domains clicked", est.Domains, "-")
	t.AddRow("Max clicks on one domain", est.MaxClicksOnDomain, 444)
	t.AddRow("Max cost per domain (USD)", fmt.Sprintf("%.2f", est.MaxCostUSD), "1.12")
	t.AddRow("Avg clicks per domain", fmt.Sprintf("%.1f", est.AvgClicksPerDom), 18)
	t.AddRow("Avg cost per domain (USD)", fmt.Sprintf("%.2f", est.AvgCostUSD), "0.04")
	return t
}

// DetectorTable trains the future-work real-time detector on a study
// and renders its quality (the direction §6.3.3 and §8 defer to future
// work).
func DetectorTable(s *Study) *report.Table {
	t := &report.Table{
		Title:   "Future work — real-time malicious-WPN detector (trained on pipeline labels)",
		Headers: []string{"Split", "Samples", "Precision", "Recall", "F1", "AUC"},
		Note:    "the paper defers this detector to future work; labels come from the offline pipeline",
	}
	rep, err := TrainDetector(s, s.Cfg.Eco.Seed)
	if err != nil {
		t.AddRow("error", err.Error(), "", "", "", "")
		return t
	}
	add := func(name string, m interface {
		Precision() float64
		Recall() float64
		F1() float64
	}, samples int, auc float64) {
		t.AddRow(name, samples,
			fmt.Sprintf("%.3f", m.Precision()), fmt.Sprintf("%.3f", m.Recall()),
			fmt.Sprintf("%.3f", m.F1()), fmt.Sprintf("%.3f", auc))
	}
	add("train (pipeline labels)", rep.Train, rep.Train.Samples, rep.Train.AUC)
	add("held-out (pipeline labels)", rep.Test, rep.Test.Samples, rep.Test.AUC)
	add("all records (ground truth)", rep.TruthTest, rep.TruthTest.Samples, rep.TruthTest.AUC)
	return t
}

// EvaluationTable renders the simulation-only accuracy check.
func EvaluationTable(s *Study) *report.Table {
	ev := s.Evaluate()
	t := &report.Table{
		Title:   "Evaluation — pipeline labels vs ecosystem ground truth",
		Headers: []string{"Metric", "Value"},
		Note:    "not in the paper: possible only because the substrate is simulated",
	}
	t.AddRow("ground-truth malicious (valid-landing records)", ev.TruthMaliciousAds)
	t.AddRow("true positives", ev.TruePositives)
	t.AddRow("false positives", ev.FalsePositives)
	t.AddRow("false negatives", ev.FalseNegatives)
	t.AddRow("precision", fmt.Sprintf("%.3f", ev.Precision()))
	t.AddRow("recall", fmt.Sprintf("%.3f", ev.Recall()))
	return t
}
