package core

import (
	"time"

	"pushadminer/internal/telemetry"
)

// miningStages are the pipeline stages whose wall-times are reported in
// the mining_stage_ns family. They are preresolved at timer creation so
// a snapshot always carries the full key set, even for stages that ran
// in zero time or (like silhouette on the swept-cut path, where the
// silhouette evaluation is fused into the cut sweep) did not run as a
// separate step.
var miningStages = []string{
	"filter", "featurize", "distance_matrix", "linkage",
	"blocks", "block_linkage",
	"cut", "silhouette", "label", "propagate", "meta",
}

// stageTimer records mining-stage wall-times into a telemetry family
// (mining_stage_ns, labeled by stage) and emits one tracer span per
// stage under a shared parent. A nil *stageTimer disables everything,
// so call sites need no guards.
type stageTimer struct {
	fam    *telemetry.Family
	tr     *telemetry.Tracer
	parent telemetry.SpanID
}

// newStageTimer builds a timer whose stage spans hang off parent (0 for
// root). Returns nil when both sinks are nil.
func newStageTimer(reg *telemetry.Registry, tr *telemetry.Tracer, parent telemetry.SpanID) *stageTimer {
	if reg == nil && tr == nil {
		return nil
	}
	st := &stageTimer{tr: tr, parent: parent}
	if reg != nil {
		st.fam = reg.Family("mining_stage_ns", "stage")
		for _, s := range miningStages {
			st.fam.With(s)
		}
	}
	return st
}

// newPipelineTimer builds a stage timer with its own "pipeline" root
// span; close() ends the root.
func newPipelineTimer(reg *telemetry.Registry, tr *telemetry.Tracer) *stageTimer {
	st := newStageTimer(reg, tr, 0)
	if st != nil && st.tr != nil {
		st.parent = st.tr.Start("", "pipeline", 0, nil)
	}
	return st
}

// stage starts timing one named stage and returns the function that
// stops it, recording wall-time and ending the span. Usage:
//
//	done := st.stage("linkage")
//	... work ...
//	done()
func (st *stageTimer) stage(name string) func() {
	if st == nil {
		return func() {}
	}
	start := time.Now()
	var id telemetry.SpanID
	if st.tr != nil {
		id = st.tr.Start("", name, st.parent, nil)
	}
	return func() {
		if st.fam != nil {
			st.fam.Add(name, time.Since(start).Nanoseconds())
		}
		if st.tr != nil {
			st.tr.End(id)
		}
	}
}

// spanID returns the parent span under which stages are emitted (0 when
// tracing is off or the timer is nil).
func (st *stageTimer) spanID() telemetry.SpanID {
	if st == nil {
		return 0
	}
	return st.parent
}

// close ends the root pipeline span, if this timer owns one.
func (st *stageTimer) close() {
	if st != nil && st.tr != nil && st.parent != 0 {
		st.tr.End(st.parent)
	}
}
