package core

import (
	"runtime"
	"time"

	"pushadminer/internal/telemetry"
)

// miningStages are the pipeline stages whose wall-times are reported in
// the mining_stage_ns family. They are preresolved at timer creation so
// a snapshot always carries the full key set, even for stages that ran
// in zero time or (like silhouette on the swept-cut path, where the
// silhouette evaluation is fused into the cut sweep) did not run as a
// separate step.
var miningStages = []string{
	"filter", "featurize", "distance_matrix", "linkage",
	"blocks", "block_linkage",
	"cut", "silhouette", "label", "propagate", "meta",
}

// stageTimer records mining-stage wall-times into a telemetry family
// (mining_stage_ns, labeled by stage), emits one tracer span per stage
// under a shared parent, brackets each stage in the mining ledger,
// publishes stage transitions to the live progress status, and — when
// a registry is attached — accounts memory at stage boundaries
// (mining_stage_alloc_bytes per stage, mining_heap_alloc_bytes /
// mining_heap_objects gauges). A nil *stageTimer disables everything,
// so call sites need no guards.
type stageTimer struct {
	fam    *telemetry.Family
	tr     *telemetry.Tracer
	parent telemetry.SpanID
	led    *MiningLedger
	prog   *miningProgress
	memFam *telemetry.Family // cumulative allocation per stage
	heapG  *telemetry.Gauge  // live heap bytes at last stage boundary
	objG   *telemetry.Gauge  // live heap objects at last stage boundary
}

// newStageTimer builds a timer whose stage spans hang off parent (0 for
// root). Returns nil when every sink (metrics, tracer, ledger,
// progress) is nil — the ledger and progress status work without
// telemetry attached, mirroring the fleet ledger contract.
func newStageTimer(reg *telemetry.Registry, tr *telemetry.Tracer, parent telemetry.SpanID, led *MiningLedger, prog *miningProgress) *stageTimer {
	if reg == nil && tr == nil && led == nil && prog == nil {
		return nil
	}
	st := &stageTimer{tr: tr, parent: parent, led: led, prog: prog}
	if reg != nil {
		st.fam = reg.Family("mining_stage_ns", "stage")
		st.memFam = reg.Family("mining_stage_alloc_bytes", "stage")
		for _, s := range miningStages {
			st.fam.With(s)
			st.memFam.With(s)
		}
		st.heapG = reg.Gauge("mining_heap_alloc_bytes")
		st.objG = reg.Gauge("mining_heap_objects")
	}
	return st
}

// newPipelineTimer builds a stage timer with its own "pipeline" root
// span; close() ends the root.
func newPipelineTimer(reg *telemetry.Registry, tr *telemetry.Tracer, led *MiningLedger, prog *miningProgress) *stageTimer {
	st := newStageTimer(reg, tr, 0, led, prog)
	if st != nil && st.tr != nil {
		st.parent = st.tr.Start("", "pipeline", 0, nil)
	}
	return st
}

// readMem samples the runtime memory stats at a stage boundary.
// ReadMemStats stops the world, so it runs only when a registry is
// attached, and only at stage edges — never inside hot loops.
func (st *stageTimer) readMem() (totalAlloc, heapAlloc, heapObjects uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc, ms.HeapAlloc, ms.HeapObjects
}

// stage starts timing one named stage and returns the function that
// stops it, recording wall-time, memory deltas, ledger brackets, and
// ending the span. Usage:
//
//	done := st.stage("linkage")
//	... work ...
//	done()
func (st *stageTimer) stage(name string) func() {
	if st == nil {
		return func() {}
	}
	st.led.StageBegin(name)
	st.prog.setStage(name)
	var allocStart uint64
	if st.memFam != nil {
		allocStart, _, _ = st.readMem()
	}
	start := time.Now()
	var id telemetry.SpanID
	if st.tr != nil {
		id = st.tr.Start("", name, st.parent, nil)
	}
	return func() {
		if st.fam != nil {
			st.fam.Add(name, time.Since(start).Nanoseconds())
		}
		if st.memFam != nil {
			allocEnd, heap, objs := st.readMem()
			// TotalAlloc is monotone, so the delta is the stage's
			// cumulative allocation volume (includes memory already
			// freed by GC; gauges below carry the live view).
			st.memFam.Add(name, int64(allocEnd-allocStart))
			st.heapG.Set(int64(heap))
			st.objG.Set(int64(objs))
		}
		if st.tr != nil {
			st.tr.End(id)
		}
		st.led.StageEnd(name)
	}
}

// spanID returns the parent span under which stages are emitted (0 when
// tracing is off or the timer is nil).
func (st *stageTimer) spanID() telemetry.SpanID {
	if st == nil {
		return 0
	}
	return st.parent
}

// close ends the root pipeline span, if this timer owns one.
func (st *stageTimer) close() {
	if st != nil && st.tr != nil && st.parent != 0 {
		st.tr.End(st.parent)
	}
}
