package core

import (
	"testing"

	"pushadminer/internal/cluster"
	"pushadminer/internal/simhash"
)

// TestClusterParityBlockedVsExact asserts the sub-quadratic blocked
// path recovers the exact path's partition across seeds and linkages:
// at the conservative cut the exact path never merges across LSH
// blocks, so clustering each block exactly and sweeping the pooled
// block heights lands on the same labeling. The blocked silhouette
// substitutes a scalar far estimate for cross-block b(i) terms, so it
// is only checked within a tolerance.
func TestClusterParityBlockedVsExact(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, linkage := range []cluster.Linkage{cluster.Average, cluster.Single, cluster.Complete} {
			fs := parityFS(t, seed, 150)
			exact := ClusterWPNs(fs, ClusterOptions{Linkage: linkage})
			blocked := ClusterWPNs(fs, ClusterOptions{Linkage: linkage, Blocked: true})
			if !sameLabels(exact.Labels, blocked.Labels) {
				t.Fatalf("seed %d linkage %s: labels differ\nexact:   %v\nblocked: %v",
					seed, linkage, exact.Labels, blocked.Labels)
			}
			if diff := blocked.Silhouette - exact.Silhouette; diff > 0.2 || diff < -0.2 {
				t.Errorf("seed %d linkage %s: blocked silhouette %v far from exact %v",
					seed, linkage, blocked.Silhouette, exact.Silhouette)
			}
		}
	}
}

// TestBlockedComponentsPartition asserts the LSH blocking yields a true
// partition in canonical order: every record in exactly one block,
// members ascending, blocks ordered by smallest member, and more than
// one block (the corpus is not one giant component — the exact-distance
// confirmation is what prevents that percolation).
func TestBlockedComponentsPartition(t *testing.T) {
	fs := parityFS(t, 1, 150)
	bands, link, distT := blockedParams(PruneOptions{})
	comps := blockedComponents(fs, bands, link, distT, nil)
	if len(comps) < 2 {
		t.Fatalf("only %d block(s): candidate graph percolated", len(comps))
	}
	seen := make(map[int]bool)
	prevMin := -1
	for _, comp := range comps {
		if len(comp) == 0 {
			t.Fatal("empty block")
		}
		if comp[0] <= prevMin {
			t.Fatalf("blocks not ordered by smallest member: %d after %d", comp[0], prevMin)
		}
		prevMin = comp[0]
		for i, id := range comp {
			if i > 0 && comp[i-1] >= id {
				t.Fatalf("block members not ascending: %v", comp)
			}
			if seen[id] {
				t.Fatalf("record %d in two blocks", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != len(fs.Records) {
		t.Fatalf("blocks cover %d of %d records", len(seen), len(fs.Records))
	}
	// Blocking must respect the confirmed candidate graph: any two
	// records that share a band, sit within the Hamming gate, and are
	// confirmed near by exact distance belong to one block.
	for i := range fs.Hashes {
		for j := i + 1; j < len(fs.Hashes); j++ {
			if simhash.SharesBand(fs.Hashes[i], fs.Hashes[j], bands) && blockedEdge(fs, i, j, link, distT) {
				bi, bj := -1, -1
				for b, comp := range comps {
					for _, id := range comp {
						if id == i {
							bi = b
						}
						if id == j {
							bj = b
						}
					}
				}
				if bi != bj {
					t.Fatalf("linked pair (%d,%d) split across blocks %d/%d", i, j, bi, bj)
				}
			}
		}
	}
}

// TestBlockedFixedCutHeight asserts the fixed-cut ablation works on the
// blocked path and agrees with the exact path's partition at the same
// height (a low height cuts strictly within blocks).
func TestBlockedFixedCutHeight(t *testing.T) {
	fs := parityFS(t, 2, 120)
	const h = 0.3
	exact := ClusterWPNs(fs, ClusterOptions{FixedCutHeight: h})
	blocked := ClusterWPNs(fs, ClusterOptions{FixedCutHeight: h, Blocked: true})
	if !sameLabels(exact.Labels, blocked.Labels) {
		t.Fatalf("fixed-cut labels differ\nexact:   %v\nblocked: %v", exact.Labels, blocked.Labels)
	}
	if blocked.CutHeight != h {
		t.Fatalf("blocked CutHeight = %v, want %v", blocked.CutHeight, h)
	}
}

// TestPruneSentinels pins the negative-disables contract: zero still
// means default (back-compat), negative disables the test — previously
// inexpressible, since 0 silently became 24/8.
func TestPruneSentinels(t *testing.T) {
	d := PruneOptions{}.withDefaults()
	if d.Bands != 8 || d.MaxHamming != 24 || d.BlockDistance != 0.3 {
		t.Fatalf("zero defaults = (%d, %d, %g), want (8, 24, 0.3)", d.Bands, d.MaxHamming, d.BlockDistance)
	}
	n := PruneOptions{Bands: -1, MaxHamming: -1, BlockDistance: -1}.withDefaults()
	if n.Bands != -1 || n.MaxHamming != -1 || n.BlockDistance != -1 {
		t.Fatalf("negative sentinels not preserved: (%d, %d, %g)", n.Bands, n.MaxHamming, n.BlockDistance)
	}
	k := PruneOptions{Bands: 4, MaxHamming: 16, BlockDistance: 0.1}.withDefaults()
	if k.Bands != 4 || k.MaxHamming != 16 || k.BlockDistance != 0.1 {
		t.Fatalf("explicit values not preserved: (%d, %d, %g)", k.Bands, k.MaxHamming, k.BlockDistance)
	}
}

// TestPruneSentinelPaths runs the pruned path with each test disabled
// and checks the partition still matches the exact one on a corpus the
// default (OR of both tests) already handles — each test alone is
// strictly more conservative than their union, so the kept set still
// covers every within-cluster pair.
func TestPruneSentinelPaths(t *testing.T) {
	fs := parityFS(t, 3, 120)
	exact := ClusterWPNs(fs, ClusterOptions{})
	for name, p := range map[string]PruneOptions{
		"band-only": {Enabled: true, MaxHamming: -1},
		"near-only": {Enabled: true, Bands: -1},
	} {
		pruned := ClusterWPNs(fs, ClusterOptions{Prune: p})
		if !sameLabels(exact.Labels, pruned.Labels) {
			t.Errorf("%s: labels differ from exact", name)
		}
	}
}
