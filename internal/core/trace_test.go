package core

import (
	"strings"
	"testing"
	"time"

	"pushadminer/internal/crawler"
	"pushadminer/internal/serviceworker"
)

func TestTraceRecord(t *testing.T) {
	reg := time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)
	r := &crawler.WPNRecord{
		ID: 7, Device: "desktop",
		SourceURL: "https://pub.test/", SWURL: "https://cdn.net/sw.js",
		Title: "Win", Body: "Claim now",
		RegisteredAt: reg,
		ShownAt:      reg.Add(2 * time.Minute),
		ClickedAt:    reg.Add(2*time.Minute + 3*time.Second),
		TargetURL:    "https://trk.net/r?u=x",
		RedirectChain: []string{
			"https://trk.net/r?u=x", "https://land.test/lp.html",
		},
		LandingURL: "https://land.test/lp.html", LandingTitle: "LP",
		ScreenshotHash: "abcd", LandingSimHash: "00000000deadbeef",
		SWRequests: []serviceworker.RequestRecord{
			{URL: "https://ads.net/ad?id=1", Status: 200},
			{URL: "https://dead.net/x", Error: "connection refused"},
		},
	}
	out := TraceRecord(r)
	for _, want := range []string{
		"WPN #7", "subscription created", "(+2m0s)", "notification shown",
		"sw fetch https://ads.net/ad?id=1 (200)", "error: connection refused",
		"auto-click", "hop 1:", "hop 2:", `landing: "LP"`, "simhash=00000000deadbeef",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestTraceRecordNoTarget(t *testing.T) {
	r := &crawler.WPNRecord{ID: 1, Title: "alert"}
	out := TraceRecord(r)
	if !strings.Contains(out, "no target URL") {
		t.Errorf("targetless trace wrong:\n%s", out)
	}
}

func TestTraceRecordCrashed(t *testing.T) {
	r := &crawler.WPNRecord{
		ID: 2, Title: "x", TargetURL: "https://t/x",
		RedirectChain: []string{"https://t/x"}, Crashed: true,
	}
	if out := TraceRecord(r); !strings.Contains(out, "TAB CRASHED") {
		t.Errorf("crash trace wrong:\n%s", out)
	}
}
