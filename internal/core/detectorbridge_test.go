package core

import "testing"

func TestTrainDetectorOnStudy(t *testing.T) {
	s := getStudy(t)
	rep, err := TrainDetector(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Test.Samples == 0 {
		t.Fatal("no held-out samples")
	}
	if f1 := rep.Test.F1(); f1 < 0.7 {
		t.Errorf("held-out F1 = %.3f, want >= 0.7 (metrics %+v)", f1, rep.Test)
	}
	if auc := rep.Test.AUC; auc < 0.85 {
		t.Errorf("held-out AUC = %.3f, want >= 0.85", auc)
	}
	// Against ground truth the detector should still be strong: its
	// supervision (pipeline labels) has precision ~1.0.
	if auc := rep.TruthTest.AUC; auc < 0.8 {
		t.Errorf("ground-truth AUC = %.3f, want >= 0.8", auc)
	}
	t.Logf("detector: test F1=%.3f AUC=%.3f; vs truth F1=%.3f AUC=%.3f",
		rep.Test.F1(), rep.Test.AUC, rep.TruthTest.F1(), rep.TruthTest.AUC)
}

func TestDetectorDatasetBalanced(t *testing.T) {
	s := getStudy(t)
	ds := DetectorDataset(s)
	if len(ds) != len(s.Analysis.FS.Records) {
		t.Fatalf("dataset size %d != records %d", len(ds), len(s.Analysis.FS.Records))
	}
	pos := 0
	for _, smp := range ds {
		if smp.Label {
			pos++
		}
	}
	if pos == 0 || pos == len(ds) {
		t.Errorf("degenerate dataset: %d/%d positive", pos, len(ds))
	}
}
