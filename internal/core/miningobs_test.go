package core

import (
	"strconv"
	"testing"

	"pushadminer/internal/telemetry"
)

// TestMiningObservabilityDisabled pins the mining plane's disabled-path
// contract, mirroring the fleet plane's: every nil-receiver method is a
// no-op with zero allocations, so fully un-observed clustering pays
// nothing for the instrumentation points threaded through it.
func TestMiningObservabilityDisabled(t *testing.T) {
	var led *MiningLedger
	var prog *miningProgress
	var obs *blockedObs
	var st *stageTimer
	if n := testing.AllocsPerRun(100, func() {
		led.StageBegin("cut")
		led.StageEnd("cut")
		led.BlockClustered(3, 7)
		led.HeightSwept(0.25, 4, true, 0.8, 3, 21)
		led.SweepMemo(10, 2, 5, 7, 100)
		led.CutChosen(0.25, 4, 0.8)
		led.IncrementalAdd(10, 7, 3)
		led.Recluster(5, 3, 2, 9)
		prog.setStage("cut")
		prog.setBlocks(5)
		prog.blockDone()
		prog.setHeights(64)
		prog.heightDone()
		prog.addPairs(10, 20)
		prog.sweepWork(5, 10)
		prog.incrementalAdd()
		prog.reclustered()
		prog.finish()
		obs.setBlocksTotal(5)
		obs.blockBuilt(7, 1000)
		obs.blocksLinked(nil)
		obs.blocksRebuilt(nil, nil)
		obs.setHeightsTotal(64)
		obs.sweepEvaluated(0.25, 1000)
		obs.heightSwept(0.25, 4, true, 0.8, 3, 21)
		obs.sweepRescored(0.25, 1000)
		obs.heightSweptMemo(0.25, 4, true, 0.8, 3, 21, 1000)
		obs.sweepMemo(sweepMemoStats{hits: 10, misses: 5})
		obs.incrementalAdd()
		obs.reclustered(5, 3, 2, 9)
		obs.recordTally(nil)
		st.stage("cut")
		st.close()
	}); n != 0 {
		t.Errorf("disabled mining-plane path allocates %v per run, want 0", n)
	}
	if got := led.Events(); got != nil {
		t.Errorf("nil ledger Events = %v, want nil", got)
	}
	if got := obs.tally(); got != nil {
		t.Errorf("nil obs tally = %v, want nil", got)
	}
	if newStageTimer(nil, nil, 0, nil, nil) != nil {
		t.Error("stage timer with no sinks should be nil")
	}
	if newBlockedObs(nil, nil, nil) != nil {
		t.Error("blocked obs with no sinks should be nil")
	}
}

// TestMiningObservabilityByteParity asserts observation never perturbs
// clustering output: the blocked and incremental paths produce
// identical results with every sink attached and with none.
func TestMiningObservabilityByteParity(t *testing.T) {
	fs := parityFS(t, 1, 150)
	for _, mode := range []struct {
		name string
		opts ClusterOptions
	}{
		{"blocked", ClusterOptions{Blocked: true}},
		{"incremental", ClusterOptions{Incremental: true, IncrementalBatch: 40}},
	} {
		plain := ClusterWPNs(fs, mode.opts)

		opts := mode.opts
		opts.Metrics = telemetry.New()
		opts.Tracer = telemetry.NewTracer(nil)
		opts.Ledger = NewMiningLedger()
		observed := ClusterWPNs(fs, opts)

		if !sameLabels(plain.Labels, observed.Labels) {
			t.Errorf("%s: labels differ with observation attached", mode.name)
		}
		if plain.CutHeight != observed.CutHeight || plain.Silhouette != observed.Silhouette {
			t.Errorf("%s: cut %v/%v with observation, want %v/%v", mode.name,
				observed.CutHeight, observed.Silhouette, plain.CutHeight, plain.Silhouette)
		}
		if len(opts.Ledger.Events()) == 0 {
			t.Errorf("%s: observed run recorded no ledger events", mode.name)
		}
	}
}

// TestBlockHistogramExtremes drives the block cost/size histograms at
// the distribution's edges — a run of singleton blocks plus one giant
// block — and checks both histograms and the per-block ledger events
// see every block exactly once.
func TestBlockHistogramExtremes(t *testing.T) {
	fs := parityFS(t, 1, 150)
	n := len(fs.Records)
	// Hand-built partition: singletons 0..9, one giant block with the
	// rest. buildBlockDendrograms only needs a partition, not one the
	// band index would produce.
	comps := make([][]int, 0, 11)
	for i := 0; i < 10; i++ {
		comps = append(comps, []int{i})
	}
	giant := make([]int, 0, n-10)
	for i := 10; i < n; i++ {
		giant = append(giant, i)
	}
	comps = append(comps, giant)

	reg := telemetry.New()
	led := NewMiningLedger()
	obs := newBlockedObs(reg, led, nil)
	blocks := buildBlockDendrograms(fs, comps, 0, obs)
	if len(blocks) != len(comps) {
		t.Fatalf("built %d blocks, want %d", len(blocks), len(comps))
	}

	snap := reg.Snapshot()
	size := snap.Histograms["mining_block_size"]
	if size.Count != int64(len(comps)) {
		t.Errorf("mining_block_size count = %d, want %d", size.Count, len(comps))
	}
	// Bounds are {1, 2, 4, ...}: all ten singletons land in the first
	// bucket (<= 1), and the giant (140 members) in the <= 256 bucket.
	if size.Counts[0] != 10 {
		t.Errorf("size bucket <=1 has %d, want 10 singletons", size.Counts[0])
	}
	if got := size.Sum; got != float64(10+len(giant)) {
		t.Errorf("size sum = %v, want %v", got, 10+len(giant))
	}
	cost := snap.Histograms["mining_block_ns"]
	if cost.Count != int64(len(comps)) {
		t.Errorf("mining_block_ns count = %d, want %d", cost.Count, len(comps))
	}
	if cost.Sum <= 0 {
		t.Errorf("mining_block_ns sum = %v, want > 0", cost.Sum)
	}
	// Exact pair volume: 0 for each singleton, m(m-1)/2 for the giant.
	m := int64(len(giant))
	if got, want := snap.Families["mining_pairs"]["block_linkage_exact"], m*(m-1)/2; got != want {
		t.Errorf("block_linkage_exact = %d, want %d", got, want)
	}

	events := led.Events()
	counts := LedgerEventCounts(events)
	if counts[EvBlockClustered] != len(comps) {
		t.Errorf("ledger has %d block_clustered events, want %d", counts[EvBlockClustered], len(comps))
	}
	// Events flush in ascending block order with the right sizes.
	bi := 0
	for _, ev := range events {
		if ev.Kind != EvBlockClustered {
			continue
		}
		if ev.Attrs["block"] == "" || ev.Attrs["size"] == "" {
			t.Fatalf("block_clustered event missing attrs: %+v", ev)
		}
		wantSize := 1
		if bi == 10 {
			wantSize = len(giant)
		}
		if ev.Attrs["size"] != strconv.Itoa(wantSize) {
			t.Errorf("block %d event size = %s, want %d", bi, ev.Attrs["size"], wantSize)
		}
		bi++
	}
}

// TestSweepHeightBucket pins the height-bucket labeling at its edges.
func TestSweepHeightBucket(t *testing.T) {
	cases := []struct {
		h    float64
		want string
	}{
		{0, "0.0-0.1"}, {0.05, "0.0-0.1"}, {0.1, "0.1-0.2"},
		{0.35, "0.3-0.4"}, {0.999, "0.9-1.0"}, {1.0, "1.0+"},
		{2.5, "1.0+"}, {-0.1, "0.0-0.1"},
	}
	for _, c := range cases {
		if got := sweepHeightBucket(c.h); got != c.want {
			t.Errorf("sweepHeightBucket(%v) = %q, want %q", c.h, got, c.want)
		}
	}
}

// TestMiningProgressPublication exercises the live status accumulator:
// snapshots are immutable, stage transitions and counters land in the
// published value, and finish marks it done.
func TestMiningProgressPublication(t *testing.T) {
	prog := newMiningProgress("blocked", 500)
	first := prog.statusVal.Load().(*MiningStatus)
	if first.Stage != "start" || first.Mode != "blocked" || first.Records != 500 {
		t.Errorf("initial status = %+v", first)
	}

	prog.setStage("blocks")
	prog.setBlocks(10)
	for i := 0; i < 10; i++ {
		prog.blockDone()
	}
	prog.setHeights(3)
	prog.addPairs(100, 200) // accumulates only; published by the next event
	prog.heightDone()
	cur := prog.statusVal.Load().(*MiningStatus)
	if cur == first {
		t.Fatal("publish mutated the previous snapshot instead of replacing it")
	}
	if cur.BlocksDone != 10 || cur.BlocksTotal != 10 || cur.HeightsDone != 1 ||
		cur.HeightsTotal != 3 || cur.PairsExact != 100 || cur.PairsPruned != 200 {
		t.Errorf("mid-run status = %+v", cur)
	}
	if first.BlocksDone != 0 {
		t.Error("earlier snapshot was mutated")
	}

	prog.finish()
	done := prog.statusVal.Load().(*MiningStatus)
	if !done.Done || done.Stage != "done" {
		t.Errorf("final status = %+v", done)
	}
	if got := CurrentMiningStatus(); got == nil || !got.Done {
		t.Errorf("CurrentMiningStatus = %+v, want the finished snapshot", got)
	}
	if done.String() == "" {
		t.Error("empty dashboard rendering")
	}
	// The /miningz provider serves the published snapshot.
	if got := prog.provider(); got != any(done) {
		t.Errorf("provider() = %p, want the last published snapshot %p", got, done)
	}
}
