package core

import (
	"reflect"
	"testing"
	"time"

	"pushadminer/internal/blocklist"
	"pushadminer/internal/textmine"
)

// TestExtractFeaturesWorkerParity asserts the fanned-out featurization
// loops produce exactly the feature set the serial path does — BOWs,
// path tokens, SimHash fingerprints, and the pairwise kernel — with and
// without TF-IDF weighting.
func TestExtractFeaturesWorkerParity(t *testing.T) {
	for _, tfidf := range []bool{false, true} {
		recs := SynthWPNRecords(7, 150)
		extract := func(workers int) *FeatureSet {
			fs, err := ExtractFeatures(recs, FeatureOptions{
				Word2Vec: textmine.Word2VecConfig{Seed: 7},
				TFIDF:    tfidf,
				Workers:  workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			return fs
		}
		serial, parallel := extract(1), extract(8)
		if !reflect.DeepEqual(serial.Features, parallel.Features) {
			t.Errorf("tfidf=%v: parallel Features differ from serial", tfidf)
		}
		if !reflect.DeepEqual(serial.Hashes, parallel.Hashes) {
			t.Errorf("tfidf=%v: parallel SimHashes differ from serial", tfidf)
		}
		if !reflect.DeepEqual(serial.Kernel, parallel.Kernel) {
			t.Errorf("tfidf=%v: parallel kernel differs from serial", tfidf)
		}
		for i := 0; i < len(recs); i++ {
			for j := i + 1; j < len(recs); j++ {
				if serial.Distance(i, j) != parallel.Distance(i, j) {
					t.Fatalf("tfidf=%v: Distance(%d,%d) diverges", tfidf, i, j)
				}
			}
		}
	}
}

// TestLabelKnownMaliciousWorkerParity asserts chunked parallel blocklist
// lookups flag exactly the records the serial whole-slice lookup does,
// across two services and two scan instants.
func TestLabelKnownMaliciousWorkerParity(t *testing.T) {
	fs := parityFS(t, 3, 150)
	vt := blocklist.New(blocklist.Config{Name: "vt", InitialCoverage: 1, EventualCoverage: 1, MaxLag: time.Hour, Seed: 1})
	gsb := blocklist.New(blocklist.Config{Name: "gsb", InitialCoverage: 1, EventualCoverage: 1, MaxLag: time.Hour, Seed: 2})
	for i, r := range fs.Records {
		if r.LandingURL == "" {
			continue
		}
		if i%5 == 0 {
			vt.Force(r.LandingURL)
		}
		if i%7 == 0 {
			gsb.Force(r.LandingURL)
		}
	}
	svcs := []BlocklistLookup{ServiceLookup{S: vt}, ServiceLookup{S: gsb}}
	scans := []time.Time{time.Unix(0, 0), time.Unix(0, 0).Add(30 * 24 * time.Hour)}

	sLabels, sFlagged, err := LabelKnownMaliciousOpts(fs, svcs, scans, LabelOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pLabels, pFlagged, err := LabelKnownMaliciousOpts(fs, svcs, scans, LabelOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sLabels, pLabels) {
		t.Error("parallel labels differ from serial")
	}
	if !reflect.DeepEqual(sFlagged, pFlagged) {
		t.Error("parallel flagged set differs from serial")
	}
	any := false
	for _, l := range sLabels {
		if l.KnownMalicious {
			any = true
			break
		}
	}
	if !any {
		t.Error("no record flagged; parity test is vacuous")
	}
}
