package core

import (
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"time"

	"pushadminer/internal/browser"
	"pushadminer/internal/crawler"
	"pushadminer/internal/report"
	"pushadminer/internal/stats"
	"pushadminer/internal/webeco"
)

// RevisitResult reproduces the §6.3.3 "additional recent measurements":
// re-crawling a sample of previously seen sites months later and
// comparing PushAdMiner's labels with what VirusTotal alone catches.
type RevisitResult struct {
	SitesRevisited int
	SitesSending   int
	Notifications  int
	WPNAds         int
	MaliciousAds   int
	VTFlagged      int
}

// RunRevisit continues a finished study: it advances the simulated clock
// by gap, revisits sampleSize random previously-NPR sites for the given
// window, and runs the pipeline over the fresh notifications.
func RunRevisit(s *Study, sampleSize int, gap, window time.Duration) (*RevisitResult, error) {
	eco := s.Eco
	eco.Clock.Advance(gap)
	// Web churn: months later, most previously active push origins have
	// gone quiet (the paper found only 35 of 300 still sending).
	eco.SetDormancy(0.88)

	pool := append([]string(nil), s.Desktop.NPRURLs...)
	rng := rand.New(rand.NewSource(s.Cfg.Eco.Seed ^ 0x7e715))
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if sampleSize > len(pool) {
		sampleSize = len(pool)
	}
	sample := pool[:sampleSize]

	c, err := crawler.New(crawler.Config{
		Clock:            eco.Clock,
		NewClient:        func() *http.Client { return eco.Net.ClientNoRedirect() },
		Driver:           eco,
		Pending:          eco.Push,
		Device:           browser.Desktop,
		CollectionWindow: window,
	})
	if err != nil {
		return nil, err
	}
	res, err := c.Run(sample)
	if err != nil {
		return nil, err
	}
	out := &RevisitResult{SitesRevisited: sampleSize, Notifications: len(res.Records)}
	senders := map[string]bool{}
	for _, r := range res.Records {
		senders[r.SourceDomain] = true
	}
	out.SitesSending = len(senders)
	if len(res.Records) == 0 {
		return out, nil
	}

	a, err := RunPipeline(res.Records, PipelineOptions{
		Services: []BlocklistLookup{ServiceLookup{S: eco.VT}, ServiceLookup{S: eco.GSB}},
		Scans:    []time.Time{eco.Clock.Now()},
	})
	if err != nil {
		return nil, err
	}
	out.WPNAds = a.Report.TotalAds
	// The sample is small enough for the full manual pass the authors
	// did on the revisit batch: every record is reviewed, not only the
	// ones the (sample-starved) clustering rules flag. The paper marked
	// 48 of the revisit WPNs malicious this way, then checked how many
	// VT alone catches (15).
	analyst := NewAnalyst()
	for i, r := range a.FS.Records {
		if a.Labels[i].Malicious() || analyst.JudgeRecord(r) {
			out.MaliciousAds++
			if eco.VT.Lookup(r.LandingURL, eco.Clock.Now()).Malicious {
				out.VTFlagged++
			}
		}
	}
	return out, nil
}

// PilotResult reproduces the §6.1.2 pilot: how quickly sites send their
// first notification after permission is granted.
type PilotResult struct {
	Sources        int
	Within15Min    int
	MedianDelay    time.Duration
	MaxDelay       time.Duration
	FractionWithin float64
	// Latencies holds every source's first-notification delay, for CDF
	// rendering.
	Latencies []time.Duration
}

// RunPilot runs a long-monitoring crawl (the paper waited up to 96
// hours) over the ecosystem's seeds and measures first-notification
// latency per source.
func RunPilot(eco *webeco.Ecosystem, monitorWindow, collectionWindow time.Duration) (*PilotResult, error) {
	c, err := crawler.New(crawler.Config{
		Clock:            eco.Clock,
		NewClient:        func() *http.Client { return eco.Net.ClientNoRedirect() },
		Driver:           eco,
		Pending:          eco.Push,
		Device:           browser.Desktop,
		MonitorWindow:    monitorWindow,
		ResumeInterval:   time.Hour,
		CollectionWindow: collectionWindow,
	})
	if err != nil {
		return nil, err
	}
	res, err := c.Run(eco.SeedURLs())
	if err != nil {
		return nil, err
	}
	first := map[string]time.Duration{}
	for _, r := range res.Records {
		d := r.ShownAt.Sub(r.RegisteredAt)
		if prev, ok := first[r.SourceURL]; !ok || d < prev {
			first[r.SourceURL] = d
		}
	}
	out := &PilotResult{Sources: len(first)}
	if len(first) == 0 {
		return out, nil
	}
	delays := make([]time.Duration, 0, len(first))
	for _, d := range first {
		delays = append(delays, d)
		if d <= 15*time.Minute {
			out.Within15Min++
		}
		if d > out.MaxDelay {
			out.MaxDelay = d
		}
	}
	sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
	out.MedianDelay = delays[len(delays)/2]
	out.FractionWithin = float64(out.Within15Min) / float64(out.Sources)
	out.Latencies = delays
	return out, nil
}

// PilotCDFTable renders the pilot's first-notification latency
// distribution — the evidence behind choosing the 15-minute monitoring
// window (§6.1.2).
func PilotCDFTable(pr *PilotResult) *report.Table {
	t := &report.Table{
		Title:   "Pilot — first-notification latency distribution",
		Headers: []string{"Latency bucket", "Sources", "Cumulative"},
		Note:    "paper: 98% of first notifications arrived within 15 minutes",
	}
	if len(pr.Latencies) == 0 {
		t.AddRow("(no data)", 0, "")
		return t
	}
	bounds := []time.Duration{
		time.Minute, 5 * time.Minute, 15 * time.Minute, time.Hour,
		24 * time.Hour, 96 * time.Hour,
	}
	ecdf := stats.NewDurationECDF(pr.Latencies)
	cum := 0
	for _, b := range stats.DurationHistogram(pr.Latencies, bounds) {
		cum += b.Count
		t.AddRow(b.Label, b.Count, report.Pct(cum, len(pr.Latencies)))
	}
	t.AddRow("median", ecdf.Quantile(0.5).Round(time.Second).String(), "")
	t.AddRow("p98", ecdf.Quantile(0.98).Round(time.Second).String(), "")
	return t
}

// DoublePermissionResult reproduces the §8 experiment: how many
// previously direct-prompting sites switched to a JS pre-prompt.
type DoublePermissionResult struct {
	Checked          int
	DoublePermission int
}

// RunDoublePermissionCheck builds a "months later" ecosystem in which a
// fraction of NPR sites adopted double permission, revisits sampleSize
// NPR sites, and counts the pre-prompts (the paper found 49 of 200).
func RunDoublePermissionCheck(seed int64, scale float64, adoptedFraction float64, sampleSize int) (*DoublePermissionResult, error) {
	eco, err := webeco.New(webeco.Config{
		Seed: seed, Scale: scale, DoublePermissionFraction: adoptedFraction,
	})
	if err != nil {
		return nil, err
	}
	defer eco.Close()
	out := &DoublePermissionResult{}
	br := browser.New(browser.Config{
		Clock:  eco.Clock,
		Client: eco.Net.ClientNoRedirect(),
	})
	for _, u := range eco.SeedURLs() {
		if out.Checked >= sampleSize {
			break
		}
		vr, err := br.Visit(u)
		if err != nil || !vr.RequestedPermission {
			continue
		}
		out.Checked++
		if vr.DoublePermission {
			out.DoublePermission++
		}
	}
	return out, nil
}

// QuietUIResult reproduces the §6.4 Chrome-80 check: sites previously
// requesting notification permission still prompt under the quieter
// permission UI, because the abusive-origin list is empty at rollout.
type QuietUIResult struct {
	Revisited     int
	StillPrompted int
	Quieted       int
}

// RunQuietUICheck revisits up to sampleSize NPR sites from a finished
// study with a QuietUI-policy browser.
func RunQuietUICheck(s *Study, sampleSize int) (*QuietUIResult, error) {
	eco := s.Eco
	br := browser.New(browser.Config{
		Clock:  eco.Clock,
		Client: eco.Net.ClientNoRedirect(),
		Policy: browser.QuietUI,
		// Chrome 80's quieter UI shipped before it had learned which
		// origins abuse prompts, so its blocklist starts empty.
		QuietedOrigins: map[string]bool{},
	})
	out := &QuietUIResult{}
	for _, u := range s.Desktop.NPRURLs {
		if out.Revisited >= sampleSize {
			break
		}
		vr, err := br.Visit(u)
		if err != nil {
			continue
		}
		out.Revisited++
		if vr.RequestedPermission && vr.Granted {
			out.StillPrompted++
		} else if vr.RequestedPermission {
			out.Quieted++
		}
	}
	return out, nil
}

// ClusterArchetypes are Figure 4's four example clusters.
type ClusterArchetypes struct {
	// C1: a malicious ad campaign (multi-source, blocklist-flagged).
	MaliciousCampaign *WPNCluster
	// C2: an ad campaign with duplicate landing domains none of which
	// the blocklists flagged.
	DuplicateAdsCampaign *WPNCluster
	// C3: a single-source repeated alert (the bank-loan cluster).
	SingleSourceAlerts *WPNCluster
	// C4: a singleton.
	Singleton *WPNCluster
}

// FindArchetypes locates Figure 4's cluster archetypes in a study.
func FindArchetypes(s *Study) ClusterArchetypes {
	a := s.Analysis
	// A campaign is "malicious" for C1 if the blocklists flagged it or
	// the later stages confirmed it.
	campaignMalicious := func(ci int) bool {
		if a.MalClusters[ci] {
			return true
		}
		for _, m := range a.Clusters.Clusters[ci].Members {
			if a.Labels[m].Malicious() {
				return true
			}
		}
		return false
	}
	var out ClusterArchetypes
	for ci, c := range a.Clusters.Clusters {
		switch {
		case c.IsAdCampaign && campaignMalicious(ci):
			if out.MaliciousCampaign == nil || len(c.Members) > len(out.MaliciousCampaign.Members) {
				out.MaliciousCampaign = c
			}
		case c.IsAdCampaign && len(c.LandingDomains) > 1 && !a.MalClusters[ci]:
			if out.DuplicateAdsCampaign == nil || len(c.Members) > len(out.DuplicateAdsCampaign.Members) {
				out.DuplicateAdsCampaign = c
			}
		case !c.IsAdCampaign && !c.Singleton() && len(c.SourceDomains) == 1:
			if out.SingleSourceAlerts == nil || len(c.Members) > len(out.SingleSourceAlerts.Members) {
				out.SingleSourceAlerts = c
			}
		case c.Singleton() && out.Singleton == nil:
			out.Singleton = c
		}
	}
	return out
}

// MetaClusterExample summarizes one meta cluster for Figure 5.
type MetaClusterExample struct {
	ID          int
	NumClusters int
	NumDomains  int
	Suspicious  bool
	AdRelated   bool
	Domains     []string
}

// LargestMetaClusters returns the n largest meta clusters (by member
// cluster count), Figure 5's examples.
func LargestMetaClusters(s *Study, n int) []MetaClusterExample {
	metas := append([]*MetaCluster(nil), s.Analysis.Meta.Meta...)
	sort.Slice(metas, func(i, j int) bool {
		return len(metas[i].Clusters) > len(metas[j].Clusters)
	})
	if n > len(metas) {
		n = len(metas)
	}
	out := make([]MetaClusterExample, 0, n)
	for _, mc := range metas[:n] {
		domains := mc.Domains
		if len(domains) > 6 {
			domains = domains[:6]
		}
		out = append(out, MetaClusterExample{
			ID:          mc.ID,
			NumClusters: len(mc.Clusters),
			NumDomains:  len(mc.Domains),
			Suspicious:  mc.Suspicious,
			AdRelated:   mc.AdRelated,
			Domains:     domains,
		})
	}
	return out
}

// SingletonExample is one row of Table 5.
type SingletonExample struct {
	Title         string
	SourceDomain  string
	LandingDomain string
}

// SampleSingletons returns up to n singleton-cluster examples remaining
// after meta clustering (Table 5).
func SampleSingletons(s *Study, n int) []SingletonExample {
	var out []SingletonExample
	a := s.Analysis
	for _, mc := range a.Meta.Meta {
		if len(out) >= n {
			break
		}
		if len(mc.Clusters) != 1 {
			continue
		}
		c := a.Clusters.Clusters[mc.Clusters[0]]
		if !c.Singleton() {
			continue
		}
		r := a.FS.Records[c.Members[0]]
		ld := ""
		if len(c.LandingDomains) > 0 {
			ld = c.LandingDomains[0]
		}
		out = append(out, SingletonExample{
			Title:         r.Title,
			SourceDomain:  r.SourceDomain,
			LandingDomain: ld,
		})
	}
	return out
}

// String renders a pilot result.
func (p *PilotResult) String() string {
	return fmt.Sprintf("pilot: %d sources, %.1f%% first notification within 15min (median %s, max %s)",
		p.Sources, 100*p.FractionWithin, p.MedianDelay, p.MaxDelay)
}
