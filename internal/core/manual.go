package core

import (
	"strings"

	"pushadminer/internal/crawler"
	"pushadminer/internal/simhash"
)

// Analyst simulates the paper's manual-verification process (§5.4): a
// human inspecting a WPN message and its landing page and judging
// maliciousness from content — too-good-to-be-true rewards, tech-support
// framing, credential harvesting, fee-advance scams. It deliberately
// works only from the observed content, never from ground truth, so the
// pipeline's evaluation against the ecosystem oracle stays honest.
type Analyst struct {
	// strong markers: any one condemns the page.
	strong []string
	// weak markers: two or more condemn it.
	weak []string
}

// NewAnalyst returns an analyst with the default marker lists.
func NewAnalyst() *Analyst {
	return &Analyst{
		strong: []string{
			"call the toll free", "your computer has been blocked",
			"card for verification", "verify your account",
			"processing fee", "wire your verification deposit",
			"pay small fee card details", "premium line",
			"sign in with your email and password",
			"enter your shipping details and card",
			"sign in to view your messages",
			"verify your age",
		},
		weak: []string{
			"winner", "claim", "survey", "prize", "reward", "lucky",
			"suspended", "unusual activity", "infected", "viruses",
			"cleaner", "payout", "lottery", "voicemail", "redelivery",
			"customs", "verify", "leaked", "blocked", "missed call",
			"nearby singles", "premium", "charges may apply",
		},
	}
}

// JudgePage reports whether page text reads as malicious.
func (a *Analyst) JudgePage(title, content string) bool {
	text := strings.ToLower(title + " " + content)
	for _, m := range a.strong {
		if strings.Contains(text, m) {
			return true
		}
	}
	hits := 0
	for _, m := range a.weak {
		if strings.Contains(text, m) {
			hits++
			if hits >= 2 {
				return true
			}
		}
	}
	return false
}

// JudgeRecord inspects one WPN record: its message text and, when
// available, its landing page.
func (a *Analyst) JudgeRecord(r *crawler.WPNRecord) bool {
	if a.JudgePage(r.LandingTitle, r.LandingContent) {
		return true
	}
	// Fall back to the message itself (factor 3 of §5.4).
	return a.JudgePage(r.Title, r.Body)
}

// VerifyKnownMalicious re-checks every blocklist-flagged record the way
// the authors manually reviewed all 1,388 VT/GSB hits (§6.3.2),
// clearing the label when the content does not support it (the paper's
// conservative stance on the 44 unconfirmable URLs). It returns how many
// labels were cleared.
func (a *Analyst) VerifyKnownMalicious(fs *FeatureSet, labels []*RecordLabels) int {
	cleared := 0
	for i, l := range labels {
		if !l.KnownMalicious {
			continue
		}
		if !a.JudgeRecord(fs.Records[i]) {
			l.KnownMalicious = false
			l.FlaggedBy = nil
			cleared++
		}
	}
	return cleared
}

// VisualNearBits is the SimHash radius within which two landing pages
// are judged "visually similar" (§5.4's factor 1 — the same scam kit on
// a different domain).
const VisualNearBits = 8

// ConfirmPropagatedAndSuspicious runs the manual pass over records
// labeled by propagation or as suspicious, setting ConfirmedMalicious
// where the content supports it — by scam markers (factors 2–3) or by
// visual similarity of the landing page to an already-confirmed
// malicious page (factor 1). It returns (confirmedPropagated,
// confirmedSuspicious).
func (a *Analyst) ConfirmPropagatedAndSuspicious(fs *FeatureSet, labels []*RecordLabels) (int, int) {
	// Build the "known malicious look" index from blocklist-confirmed
	// pages, as the authors compared screenshots against GSB/VT hits.
	var knownLook simhash.Index
	for i, l := range labels {
		if l.KnownMalicious {
			if h, ok := recordSimHash(fs.Records[i]); ok {
				knownLook.Add(h)
			}
		}
	}

	prop, susp := 0, 0
	confirm := func(i int, l *RecordLabels) {
		l.ConfirmedMalicious = true
		if l.PropagatedMalicious {
			prop++
		} else {
			susp++
		}
		if h, ok := recordSimHash(fs.Records[i]); ok {
			knownLook.Add(h)
		}
	}

	// First pass: marker-based judgement (factors 2–3).
	var pending []int
	for i, l := range labels {
		if !l.PropagatedMalicious && !l.Suspicious {
			continue
		}
		if a.JudgeRecord(fs.Records[i]) {
			confirm(i, l)
		} else {
			pending = append(pending, i)
		}
	}
	// Second pass: visual similarity to confirmed pages (factor 1).
	// Iterate to a fixpoint: each confirmation can make another page's
	// look "known".
	for changed := true; changed; {
		changed = false
		remaining := pending[:0]
		for _, i := range pending {
			l := labels[i]
			h, ok := recordSimHash(fs.Records[i])
			if ok && knownLook.AnyNear(h, VisualNearBits) {
				confirm(i, l)
				changed = true
			} else {
				remaining = append(remaining, i)
			}
		}
		pending = remaining
	}
	return prop, susp
}

// recordSimHash parses the record's landing fingerprint. The strict
// parse matters here because the field round-trips through checkpoint
// files and shard state: simhash.Parse would happily read a truncated
// or corrupt string (any valid hex prefix) into a garbage fingerprint
// and poison the "known look" index. ok is false for malformed input
// and for the all-zero hash — an empty landing page has no look worth
// indexing or matching.
func recordSimHash(r *crawler.WPNRecord) (simhash.Hash, bool) {
	h, ok := simhash.ParseStrict(r.LandingSimHash)
	return h, ok && h != 0
}
