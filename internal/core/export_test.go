package core

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"
)

func TestExportRoundTripBuffer(t *testing.T) {
	s := getStudy(t)
	export := ExportFromStudy(s)
	var buf bytes.Buffer
	if err := WriteExport(&buf, export); err != nil {
		t.Fatal(err)
	}
	back, err := ReadExport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(export.Records) {
		t.Fatalf("records: %d != %d", len(back.Records), len(export.Records))
	}
	if back.Seed != export.Seed || back.Scale != export.Scale {
		t.Errorf("metadata lost: %+v", back)
	}
	// Spot-check one record survives intact.
	a, b := export.Records[0], back.Records[0]
	if a.Title != b.Title || a.LandingURL != b.LandingURL || a.LandingSimHash != b.LandingSimHash {
		t.Errorf("record 0 mismatch:\n%+v\n%+v", a, b)
	}
}

func TestExportSaveLoadFile(t *testing.T) {
	s := getStudy(t)
	path := filepath.Join(t.TempDir(), "wpns.json")
	if err := SaveExport(path, ExportFromStudy(s)); err != nil {
		t.Fatal(err)
	}
	back, err := LoadExport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) == 0 {
		t.Fatal("empty export loaded")
	}
	// Re-analysis over the loaded export works without the ecosystem.
	a, err := RunPipeline(back.Records, PipelineOptions{
		Services: LookupsFromExport(back),
		Scans:    []time.Time{back.GeneratedAt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Clusters == 0 {
		t.Error("offline re-analysis produced no clusters")
	}
}

func TestLoadExportMissingFile(t *testing.T) {
	if _, err := LoadExport(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestStaticLookup(t *testing.T) {
	l := StaticLookup{ServiceName: "vt", Flagged: map[string]bool{"https://bad/x": true}}
	vs, err := l.Lookup([]string{"https://bad/x", "https://ok/y"}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if !vs[0].Malicious || vs[1].Malicious {
		t.Errorf("verdicts = %+v", vs)
	}
	if l.Name() != "vt" {
		t.Errorf("Name = %q", l.Name())
	}
}

func TestLookupsFromExportEmpty(t *testing.T) {
	ls := LookupsFromExport(&Export{})
	if len(ls) != 1 || ls[0].Name() != "none" {
		t.Errorf("empty export lookups = %v", ls)
	}
}
