package core

import (
	"time"

	"pushadminer/internal/blocklist"
	"pushadminer/internal/report"
	"pushadminer/internal/urlx"
	"pushadminer/internal/webeco"
)

// EvasionArm is one side of the evasion experiment.
type EvasionArm struct {
	Evasion bool
	// Rotations is how many domain rotations operators performed.
	Rotations int
	// MaliciousRecords and KnownMalicious summarize the pipeline's
	// record-level view.
	MaliciousRecords int
	KnownMalicious   int
	// DistinctMalDomains counts landing eSLDs observed on
	// truth-malicious records — evasion inflates it.
	DistinctMalDomains int
	// BlocklistCatchRate is KnownMalicious / truth-malicious records:
	// how much of the problem URL blocklists see.
	BlocklistCatchRate float64
}

// EvasionExperiment contrasts identical crawls with operators' domain
// rotation off and on (§5.2's evasion behaviour), under aggressive
// blocklists so domains actually burn within the window. The paper
// observes the end state (similar messages → many domains, blocklists
// lagging); this experiment reproduces the mechanism.
type EvasionExperiment struct {
	Off, On EvasionArm
}

// RunEvasionExperiment runs both arms at the given seed/scale.
func RunEvasionExperiment(seed int64, scale float64) (*EvasionExperiment, error) {
	aggressive := &blocklist.Config{
		Name:             "vt",
		InitialCoverage:  0.30,
		EventualCoverage: 0.90,
		MaxLag:           3 * 24 * time.Hour,
		Seed:             0x56540001,
	}
	run := func(evasion bool) (EvasionArm, error) {
		study, err := RunStudy(StudyConfig{
			Eco: webeco.Config{
				Seed: seed, Scale: scale,
				EvasionEnabled: evasion,
				VTOverride:     aggressive,
			},
			SkipMobile:       true,
			CollectionWindow: 14 * 24 * time.Hour,
		})
		if err != nil {
			return EvasionArm{}, err
		}
		defer study.Close()

		arm := EvasionArm{Evasion: evasion}
		if ec := study.Eco.Evasion(); ec != nil {
			arm.Rotations = ec.TotalRotations()
		}
		truth := study.Eco.Truth()
		domains := map[string]bool{}
		truthMal := 0
		for i, r := range study.Analysis.FS.Records {
			l := study.Analysis.Labels[i]
			if l.KnownMalicious {
				arm.KnownMalicious++
			}
			if l.Malicious() {
				arm.MaliciousRecords++
			}
			if truth.IsMaliciousURL(r.LandingURL) {
				truthMal++
				if d := urlx.ESLDOf(r.LandingURL); d != "" {
					domains[d] = true
				}
			}
		}
		arm.DistinctMalDomains = len(domains)
		if truthMal > 0 {
			arm.BlocklistCatchRate = float64(arm.KnownMalicious) / float64(truthMal)
		}
		return arm, nil
	}

	var exp EvasionExperiment
	var err error
	if exp.Off, err = run(false); err != nil {
		return nil, err
	}
	if exp.On, err = run(true); err != nil {
		return nil, err
	}
	return &exp, nil
}

// Table renders the experiment.
func (e *EvasionExperiment) Table() *report.Table {
	t := &report.Table{
		Title:   "Evasion experiment — operators rotating burned landing domains (§5.2)",
		Headers: []string{"Arm", "Rotations", "Malicious records", "Blocklist-known", "Distinct mal. domains", "Blocklist catch rate"},
		Note:    "aggressive blocklists; rotation keeps campaigns ahead of URL blocklisting",
	}
	add := func(name string, a EvasionArm) {
		t.AddRow(name, a.Rotations, a.MaliciousRecords, a.KnownMalicious,
			a.DistinctMalDomains, report.Pct(int(a.BlocklistCatchRate*1000), 1000))
	}
	add("evasion off", e.Off)
	add("evasion on", e.On)
	return t
}
