package core

import (
	"fmt"
	"testing"
	"time"

	"pushadminer/internal/blocklist"
	"pushadminer/internal/crawler"
)

var t0 = time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)

// makeRecord builds a synthetic WPN record.
func makeRecord(id int, title, body, source, landing string) *crawler.WPNRecord {
	return &crawler.WPNRecord{
		ID: id, Device: "desktop",
		SourceURL: source, SourceDomain: esld(source),
		SWURL: "https://cdn.net.test/sw.js",
		Title: title, Body: body,
		TargetURL: landing, LandingURL: landing,
		LandingTitle: "Landing", LandingContent: "landing content",
		ScreenshotHash: "abcd",
	}
}

func esld(u string) string {
	// crude: strip scheme and leading www.
	s := u
	for _, p := range []string{"https://", "http://"} {
		if len(s) > len(p) && s[:len(p)] == p {
			s = s[len(p):]
		}
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			s = s[:i]
			break
		}
	}
	return s
}

// campaignRecords builds n similar ad records from distinct sources
// leading to the same landing path on rotating domains.
func campaignRecords(startID int, n int, title, body string, landingDomains []string) []*crawler.WPNRecord {
	var out []*crawler.WPNRecord
	for i := 0; i < n; i++ {
		src := fmt.Sprintf("https://pub%d.test/", startID+i)
		land := fmt.Sprintf("https://%s/lp/claim-prize.html?cid=%d", landingDomains[i%len(landingDomains)], i)
		out = append(out, makeRecord(startID+i, title, body, src, land))
	}
	return out
}

// testCorpus builds a dataset with two ad campaigns (one malicious),
// one single-source alert cluster, and singleton news items.
func testCorpus() ([]*crawler.WPNRecord, []string) {
	var recs []*crawler.WPNRecord
	// Campaign A (malicious sweepstakes): 8 ads, 2 landing domains.
	malDomains := []string{"win-prize.xyz", "claim-now.icu"}
	recs = append(recs, campaignRecords(100, 8,
		"Congratulations! You have won an iPhone 11",
		"Answer 3 quick questions and claim your prize now",
		malDomains)...)
	// Campaign B (benign shopping): 6 ads, 1 landing domain.
	recs = append(recs, campaignRecords(200, 6,
		"Walmart flash sale: up to 70% off today",
		"Limited stock, browse today's clearance picks",
		[]string{"megadeals.com"})...)
	// Bank alerts: 4 identical messages from one source, same origin.
	for i := 0; i < 4; i++ {
		recs = append(recs, makeRecord(300+i,
			"Pre-approved personal loan at 8.5% APR",
			"You qualify for an instant loan, apply in minutes",
			"https://mybank.com/", "https://mybank.com/loans/personal.html?offer=1"))
	}
	// Singletons: distinct news items, each from its own site.
	news := []struct{ title, body, path string }{
		{"City council passes transit plan", "Aldermen vote on bus corridor funding downtown", "politics/council-vote"},
		{"Markets close higher after rally", "Tech stocks lift indexes to weekly gains", "finance/markets-recap"},
		{"Storm system expected tonight", "Meteorologists warn of hail across the metro", "weather/storm-watch"},
		{"Team advances to finals", "Overtime goal seals the championship berth", "sports/finals-preview"},
		{"Fuel prices dip again", "Refinery output rises as demand cools", "energy/gas-prices"},
		{"New museum wing opens downtown", "Modern art collection doubles gallery space", "culture/museum-opening"},
	}
	for i, n := range news {
		src := fmt.Sprintf("https://news%d.org/", i)
		land := fmt.Sprintf("https://news%d.org/%s-%d.html?ref=%d", i, n.path, i*17, i)
		recs = append(recs, makeRecord(400+i, n.title, n.body, src, land))
	}
	// A long-tail one-off ad sharing campaign A's landing domain but
	// with unrelated text and path: meta-clustering must reconnect it.
	recs = append(recs, makeRecord(500,
		"Enter now to spin the wheel and win big 77",
		"Limited time offer, tap to continue",
		"https://pub-lt.test/", "https://win-prize.xyz/x/lucky-bonus-77.html?z=9"))
	// One malicious landing URL for blocklist seeding (campaign A).
	malURL := recs[0].LandingURL
	return recs, []string{malURL}
}

func testPipelineOpts(vt *blocklist.Service) PipelineOptions {
	return PipelineOptions{
		Services: []BlocklistLookup{ServiceLookup{S: vt}},
		Scans:    []time.Time{t0},
	}
}

func runTestPipeline(t *testing.T, opts func(*PipelineOptions)) (*Analysis, []*crawler.WPNRecord) {
	t.Helper()
	recs, malURLs := testCorpus()
	vt := blocklist.New(blocklist.Config{Name: "vt", InitialCoverage: 1, EventualCoverage: 1, MaxLag: time.Hour, Seed: 1})
	for _, u := range malURLs {
		vt.Force(u)
	}
	// Malicious landing content so the analyst confirms propagation.
	for _, r := range recs {
		if r.ID >= 100 && r.ID < 200 {
			r.LandingTitle = "Claim Your Prize"
			r.LandingContent = "congratulations lucky winner complete this short survey to receive your reward enter your shipping details and card for verification"
		}
	}
	po := testPipelineOpts(vt)
	if opts != nil {
		opts(&po)
	}
	a, err := RunPipeline(recs, po)
	if err != nil {
		t.Fatal(err)
	}
	return a, recs
}

func TestPipelineFindsCampaigns(t *testing.T) {
	a, recs := runTestPipeline(t, nil)
	r := a.Report
	if r.ValidLanding != len(recs) {
		t.Errorf("ValidLanding = %d, want %d", r.ValidLanding, len(recs))
	}
	if r.AdCampaignClusters < 2 {
		t.Errorf("ad campaigns = %d, want >= 2 (A and B)", r.AdCampaignClusters)
	}
	if r.TotalAds < 14 {
		t.Errorf("total ads = %d, want >= 14", r.TotalAds)
	}
	if r.Singletons < 4 {
		t.Errorf("singletons = %d, want >= 4 (news items)", r.Singletons)
	}
	// The bank alerts cluster must NOT be an ad campaign (single
	// source).
	for _, c := range a.Clusters.AdCampaigns() {
		if len(c.SourceDomains) == 1 && c.SourceDomains[0] == "mybank.com" {
			t.Error("bank alert cluster labeled ad campaign")
		}
	}
}

func TestLabelPropagationExpandsOneFlaggedURL(t *testing.T) {
	a, _ := runTestPipeline(t, nil)
	known, propagated := 0, 0
	for _, l := range a.Labels {
		if l.KnownMalicious {
			known++
		}
		if l.PropagatedMalicious {
			propagated++
		}
	}
	if known == 0 {
		t.Fatal("blocklist flagged nothing")
	}
	if propagated == 0 {
		t.Fatal("guilty-by-association propagated nothing")
	}
	if a.Report.TotalMaliciousAds <= known {
		t.Errorf("malicious ads (%d) should exceed blocklist hits (%d)", a.Report.TotalMaliciousAds, known)
	}
	if a.Report.MaliciousCampaigns < 1 {
		t.Error("no malicious campaigns identified")
	}
}

func TestBenignCampaignNotMalicious(t *testing.T) {
	a, _ := runTestPipeline(t, nil)
	for i, l := range a.Labels {
		r := a.FS.Records[i]
		if esld(r.LandingURL) == "megadeals.com" && l.Malicious() {
			t.Errorf("benign shopping ad labeled malicious: %q", r.Title)
		}
	}
}

func TestMetaClusteringConnectsSharedDomains(t *testing.T) {
	a, _ := runTestPipeline(t, nil)
	if len(a.Meta.Meta) == 0 {
		t.Fatal("no meta clusters")
	}
	if len(a.Meta.Meta) >= len(a.Clusters.Clusters) {
		t.Errorf("meta clusters (%d) should be fewer than clusters (%d)",
			len(a.Meta.Meta), len(a.Clusters.Clusters))
	}
	if a.Report.SuspiciousMeta == 0 {
		t.Error("no suspicious meta clusters (campaign A has duplicate domains + malicious)")
	}
}

func TestAblationDisableMeta(t *testing.T) {
	full, _ := runTestPipeline(t, nil)
	ablated, _ := runTestPipeline(t, func(o *PipelineOptions) { o.DisableMeta = true })
	if ablated.Report.MetaClusters != 0 {
		t.Errorf("DisableMeta still produced %d meta clusters", ablated.Report.MetaClusters)
	}
	if ablated.Report.TotalAds > full.Report.TotalAds {
		t.Errorf("meta ablation increased ads: %d > %d", ablated.Report.TotalAds, full.Report.TotalAds)
	}
}

func TestAblationDisablePropagation(t *testing.T) {
	full, _ := runTestPipeline(t, nil)
	ablated, _ := runTestPipeline(t, func(o *PipelineOptions) { o.DisablePropagation = true })
	fullProp, ablProp := 0, 0
	for _, l := range full.Labels {
		if l.PropagatedMalicious {
			fullProp++
		}
	}
	for _, l := range ablated.Labels {
		if l.PropagatedMalicious {
			ablProp++
		}
	}
	if ablProp != 0 {
		t.Errorf("propagation disabled but %d records propagated", ablProp)
	}
	if fullProp == 0 {
		t.Error("full pipeline propagated nothing")
	}
}

func TestAblationFeatures(t *testing.T) {
	textOnly, _ := runTestPipeline(t, func(o *PipelineOptions) { o.Features.DisablePath = true })
	pathOnly, _ := runTestPipeline(t, func(o *PipelineOptions) { o.Features.DisableText = true })
	if textOnly.Report.Clusters == 0 || pathOnly.Report.Clusters == 0 {
		t.Error("feature ablations produced no clusters")
	}
}

func TestManualVerificationClearsBenignFlags(t *testing.T) {
	// Force-flag a benign news URL; the analyst must clear it (the 44
	// unconfirmable URLs of §6.3.2).
	recs, _ := testCorpus()
	vt := blocklist.New(blocklist.Config{Name: "vt", InitialCoverage: 1, EventualCoverage: 1, MaxLag: time.Hour, Seed: 1})
	var newsURL string
	for _, r := range recs {
		if r.ID == 400 {
			newsURL = r.LandingURL
		}
	}
	vt.Force(newsURL)
	a, err := RunPipeline(recs, testPipelineOpts(vt))
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.ClearedFalsePositives == 0 {
		t.Error("manual verification cleared nothing")
	}
	for i, l := range a.Labels {
		if a.FS.Records[i].LandingURL == newsURL && l.KnownMalicious {
			t.Error("benign news URL still flagged after manual verification")
		}
	}
}

func TestPipelineEmptyRecords(t *testing.T) {
	if _, err := RunPipeline(nil, PipelineOptions{}); err == nil {
		t.Error("empty record set accepted")
	}
}

func TestReportArithmetic(t *testing.T) {
	a, _ := runTestPipeline(t, nil)
	r := a.Report
	if r.TotalAds != r.Stage1Ads+r.Stage2Ads {
		t.Errorf("TotalAds %d != %d + %d", r.TotalAds, r.Stage1Ads, r.Stage2Ads)
	}
	if r.TotalKnownMal != r.Stage1KnownMal+r.Stage2KnownMal {
		t.Error("known-malicious totals inconsistent")
	}
	if f := r.MaliciousAdFraction(); f < 0 || f > 1 {
		t.Errorf("MaliciousAdFraction = %v", f)
	}
	if r.Singletons > r.Clusters {
		t.Error("more singletons than clusters")
	}
}

func TestFilterValidLanding(t *testing.T) {
	recs := []*crawler.WPNRecord{
		makeRecord(1, "a", "b", "https://s.test/", "https://l.test/x"),
		{ID: 2, Title: "crashed", Crashed: true, LandingURL: "https://l.test/y"},
		{ID: 3, Title: "no landing"},
	}
	got := FilterValidLanding(recs)
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("FilterValidLanding = %+v", got)
	}
}
