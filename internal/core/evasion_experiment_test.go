package core

import (
	"strings"
	"testing"
)

func TestEvasionExperiment(t *testing.T) {
	exp, err := RunEvasionExperiment(2, 0.004)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Off.Rotations != 0 {
		t.Errorf("evasion-off arm rotated %d times", exp.Off.Rotations)
	}
	if exp.On.Rotations == 0 {
		t.Error("evasion-on arm never rotated under aggressive blocklists")
	}
	if exp.On.DistinctMalDomains <= exp.Off.DistinctMalDomains {
		t.Errorf("rotation did not grow the malicious domain set: on=%d off=%d",
			exp.On.DistinctMalDomains, exp.Off.DistinctMalDomains)
	}
	out := exp.Table().String()
	if !strings.Contains(out, "evasion on") {
		t.Errorf("table incomplete:\n%s", out)
	}
	t.Logf("\n%s", out)
}
