package core

import (
	"testing"

	"pushadminer/internal/cluster"
	"pushadminer/internal/textmine"
)

// parityFS extracts features over a synthetic corpus.
func parityFS(t *testing.T, seed int64, n int) *FeatureSet {
	t.Helper()
	fs, err := ExtractFeatures(SynthWPNRecords(seed, n), FeatureOptions{
		Word2Vec: textmine.Word2VecConfig{Seed: seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func sameLabels(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDistanceMatchesNaiveBitForBit asserts the cached-kernel distance
// reproduces the from-scratch reference exactly, entry by entry.
func TestDistanceMatchesNaiveBitForBit(t *testing.T) {
	fs := parityFS(t, 1, 120)
	n := len(fs.Records)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if got, want := fs.Distance(i, j), fs.NaiveDistance(i, j); got != want {
				t.Fatalf("Distance(%d,%d) = %v, naive %v (records %q / %q)",
					i, j, got, want, fs.Records[i].Body, fs.Records[j].Body)
			}
		}
	}
}

// TestClusterParityNaiveVsCached asserts the optimized path (cached
// kernel, balanced block scheduling, parallel silhouette sweep) yields
// byte-identical labels, cut height, and silhouette to the naive path
// across seeds and linkages.
func TestClusterParityNaiveVsCached(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, linkage := range []cluster.Linkage{cluster.Average, cluster.Single, cluster.Complete} {
			fs := parityFS(t, seed, 150)
			naive := ClusterWPNs(fs, ClusterOptions{Naive: true, Linkage: linkage})
			fast := ClusterWPNs(fs, ClusterOptions{Linkage: linkage})
			if !sameLabels(naive.Labels, fast.Labels) {
				t.Fatalf("seed %d linkage %s: labels differ\nnaive: %v\nfast:  %v",
					seed, linkage, naive.Labels, fast.Labels)
			}
			if naive.CutHeight != fast.CutHeight {
				t.Errorf("seed %d linkage %s: cut height %v != %v", seed, linkage, naive.CutHeight, fast.CutHeight)
			}
			if naive.Silhouette != fast.Silhouette {
				t.Errorf("seed %d linkage %s: silhouette %v != %v", seed, linkage, naive.Silhouette, fast.Silhouette)
			}
		}
	}
}

// TestClusterParityPrunedVsExact asserts SimHash-banded pruning yields
// the same labeling and cut as the exact-everywhere path on corpora
// where campaigns are locality-preserved (the default prune settings are
// tuned to be conservative). The silhouette may differ only through the
// substituted far-pair distances, so it is checked within a tolerance.
func TestClusterParityPrunedVsExact(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		fs := parityFS(t, seed, 150)
		exact := ClusterWPNs(fs, ClusterOptions{})
		pruned := ClusterWPNs(fs, ClusterOptions{Prune: PruneOptions{Enabled: true}})
		if !sameLabels(exact.Labels, pruned.Labels) {
			t.Fatalf("seed %d: pruned labels differ\nexact:  %v\npruned: %v", seed, exact.Labels, pruned.Labels)
		}
		if diff := pruned.Silhouette - exact.Silhouette; diff > 0.05 || diff < -0.05 {
			t.Errorf("seed %d: pruned silhouette %v far from exact %v", seed, pruned.Silhouette, exact.Silhouette)
		}
	}
}

// TestPruneDisabledIsExact asserts the parity fallback knob: a zero
// PruneOptions computes every pair, entry-identical to the default path.
func TestPrunedMatrixExactWhereKept(t *testing.T) {
	fs := parityFS(t, 2, 100)
	exact := ClusterWPNs(fs, ClusterOptions{})
	fallback := ClusterWPNs(fs, ClusterOptions{Prune: PruneOptions{}})
	if !sameLabels(exact.Labels, fallback.Labels) {
		t.Fatal("zero PruneOptions changed the labeling")
	}
	if exact.Silhouette != fallback.Silhouette || exact.CutHeight != fallback.CutHeight {
		t.Fatal("zero PruneOptions changed cut or silhouette")
	}
}

// TestSynthCorpusDeterministic guards the generator the parity tests and
// benchmarks share.
func TestSynthCorpusDeterministic(t *testing.T) {
	a := SynthWPNRecords(7, 80)
	b := SynthWPNRecords(7, 80)
	if len(a) != 80 || len(b) != 80 {
		t.Fatalf("lengths %d/%d, want 80", len(a), len(b))
	}
	for i := range a {
		if a[i].Body != b[i].Body || a[i].LandingURL != b[i].LandingURL || a[i].SourceDomain != b[i].SourceDomain {
			t.Fatalf("record %d differs between identical seeds", i)
		}
		if !a[i].ValidLanding() {
			t.Fatalf("record %d has no valid landing", i)
		}
	}
	c := SynthWPNRecords(8, 80)
	same := 0
	for i := range a {
		if a[i].Body == c[i].Body {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical corpora")
	}
}

// TestSynthCorpusClusters sanity-checks that the pipeline finds ad
// campaigns in the synthetic corpus (multi-source clusters exist).
func TestSynthCorpusClusters(t *testing.T) {
	fs := parityFS(t, 5, 160)
	res := ClusterWPNs(fs, ClusterOptions{})
	if len(res.Clusters) < 5 {
		t.Fatalf("only %d clusters", len(res.Clusters))
	}
	if len(res.AdCampaigns()) == 0 {
		t.Fatal("no ad campaigns recovered from campaign-heavy corpus")
	}
}
