package core

import (
	"time"

	"pushadminer/internal/crawler"
	"pushadminer/internal/telemetry"
)

// PipelineOptions configure a full analysis run.
type PipelineOptions struct {
	Features FeatureOptions
	Cluster  ClusterOptions
	Labels   LabelOptions
	// Services are the URL blocklists to query (VT, GSB).
	Services []BlocklistLookup
	// Scans are the lookup instants (the paper scanned during
	// collection and again a month later, catching more URLs).
	Scans []time.Time

	// DisablePropagation turns off guilty-by-association labeling
	// (ablation A3).
	DisablePropagation bool
	// DisableMeta turns off meta-clustering (ablation A3).
	DisableMeta bool

	// Metrics, when non-nil, records per-stage wall-times in the
	// mining_stage_ns family. Nil disables with no overhead.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, emits one span per pipeline stage under a
	// "pipeline" root span. Nil disables.
	Tracer *telemetry.Tracer
	// Ledger, when non-nil, records the deterministic mining event
	// stream (see ClusterOptions.Ledger); stage brackets cover the full
	// pipeline, clustering events the dispatched path.
	Ledger *MiningLedger

	// MedoidIndexPath, when set, persists the post-clustering medoid
	// classify index (campaign medoids + chosen cut; see MedoidIndex) as
	// deterministic JSON, and implies ClusterOptions.BuildMedoids so the
	// blocked batch path produces one. The incremental service loop
	// restores it at startup to Add-classify arrivals between full
	// re-mines without a sweep.
	MedoidIndexPath string
}

// Analysis is the full output of the mining pipeline.
type Analysis struct {
	FS          *FeatureSet
	Clusters    *ClusterResult
	Labels      []*RecordLabels
	MalClusters map[int]bool
	Meta        *MetaClusterResult
	FlaggedURLs map[string][]string
	Report      Report
}

// Report aggregates the counters behind Tables 3 and 4.
type Report struct {
	TotalCollected int // all WPNs collected (set by the caller/study)
	ValidLanding   int // records entering clustering

	// After WPN clustering (Table 4, row 1).
	Clusters           int
	Singletons         int
	AdCampaignClusters int
	Stage1Ads          int
	Stage1KnownMal     int
	Stage1AddMal       int

	// After meta clustering (Table 4, row 2).
	MetaClusters   int
	AdRelatedMeta  int
	SuspiciousMeta int
	Stage2Ads      int
	Stage2KnownMal int
	Stage2AddMal   int

	// Totals (Table 3).
	TotalAds            int
	TotalKnownMal       int
	TotalAddMal         int
	TotalMaliciousAds   int
	MaliciousCampaigns  int
	SingletonsAfterMeta int

	// Diagnostics.
	CutHeight             float64
	Silhouette            float64
	ClearedFalsePositives int
}

// MaliciousAdFraction is Table 3's headline: the fraction of WPN ads
// that are malicious.
func (r Report) MaliciousAdFraction() float64 {
	if r.TotalAds == 0 {
		return 0
	}
	return float64(r.TotalMaliciousAds) / float64(r.TotalAds)
}

// RunPipeline executes the full §5 analysis over collected WPN records:
// filter to valid landings, extract features, cluster, label via
// blocklists + propagation, meta-cluster, flag suspicious, and run the
// manual-verification pass.
func RunPipeline(records []*crawler.WPNRecord, opts PipelineOptions) (*Analysis, error) {
	if opts.Cluster.Ledger == nil {
		opts.Cluster.Ledger = opts.Ledger
	}
	// One live-progress accumulator spans the whole pipeline so /miningz
	// shows the filter/featurize/label stages too, not just clustering.
	// Created only when some observation sink is attached.
	if opts.Metrics != nil || opts.Tracer != nil || opts.Cluster.Ledger != nil {
		opts.Cluster.prog = newMiningProgress(clusterMode(opts.Cluster), len(records))
		defer opts.Cluster.prog.finish()
	}
	st := newPipelineTimer(opts.Metrics, opts.Tracer, opts.Cluster.Ledger, opts.Cluster.prog)
	defer st.close()

	done := st.stage("filter")
	valid := FilterValidLanding(records)
	done()
	done = st.stage("featurize")
	fs, err := ExtractFeatures(valid, opts.Features)
	done()
	if err != nil {
		return nil, err
	}
	if len(opts.Scans) == 0 {
		opts.Scans = []time.Time{time.Now()}
	}

	if opts.Cluster.Metrics == nil {
		opts.Cluster.Metrics = opts.Metrics
	}
	if opts.Cluster.Tracer == nil {
		opts.Cluster.Tracer = opts.Tracer
		opts.Cluster.parent = st.spanID()
	}
	if opts.MedoidIndexPath != "" {
		opts.Cluster.BuildMedoids = true
	}
	cr := ClusterWPNs(fs, opts.Cluster)
	if opts.MedoidIndexPath != "" && cr.Medoids != nil {
		if err := SaveMedoidIndex(opts.MedoidIndexPath, cr.Medoids); err != nil {
			return nil, err
		}
	}
	done = st.stage("label")
	labels, flagged, err := LabelKnownMaliciousOpts(fs, opts.Services, opts.Scans, opts.Labels)
	done()
	if err != nil {
		return nil, err
	}

	analyst := NewAnalyst()
	cleared := analyst.VerifyKnownMalicious(fs, labels)

	MarkAds(cr, labels)
	done = st.stage("propagate")
	malClusters := map[int]bool{}
	if !opts.DisablePropagation {
		malClusters = PropagateMalicious(cr, labels)
	} else {
		for ci, c := range cr.Clusters {
			for _, m := range c.Members {
				if labels[m].KnownMalicious {
					malClusters[ci] = true
					break
				}
			}
		}
	}
	done()

	done = st.stage("meta")
	var meta *MetaClusterResult
	if !opts.DisableMeta {
		meta = BuildMetaClusters(cr, labels, malClusters)
	} else {
		meta = &MetaClusterResult{clusterToMeta: map[int]int{}}
	}
	done()

	analyst.ConfirmPropagatedAndSuspicious(fs, labels)

	a := &Analysis{
		FS:          fs,
		Clusters:    cr,
		Labels:      labels,
		MalClusters: malClusters,
		Meta:        meta,
		FlaggedURLs: flagged,
	}
	a.Report = a.buildReport(len(records), cleared)
	return a, nil
}

func (a *Analysis) buildReport(totalCollected, cleared int) Report {
	r := Report{
		TotalCollected:        totalCollected,
		ValidLanding:          len(a.FS.Records),
		Clusters:              len(a.Clusters.Clusters),
		Singletons:            a.Clusters.NumSingletons(),
		AdCampaignClusters:    len(a.Clusters.AdCampaigns()),
		CutHeight:             a.Clusters.CutHeight,
		Silhouette:            a.Clusters.Silhouette,
		ClearedFalsePositives: cleared,
	}
	for _, l := range a.Labels {
		switch {
		case l.IsAd && !l.AdViaMeta:
			r.Stage1Ads++
			if l.KnownMalicious {
				r.Stage1KnownMal++
			} else if l.PropagatedMalicious && l.ConfirmedMalicious {
				r.Stage1AddMal++
			} else if l.Suspicious && l.ConfirmedMalicious {
				r.Stage2AddMal++ // suspicious labeling is a meta-stage product
			}
		case l.AdViaMeta:
			r.Stage2Ads++
			if l.KnownMalicious {
				r.Stage2KnownMal++
			} else if (l.PropagatedMalicious || l.Suspicious) && l.ConfirmedMalicious {
				r.Stage2AddMal++
			}
		}
		if l.IsAd && l.Malicious() {
			r.TotalMaliciousAds++
		}
	}
	r.TotalAds = r.Stage1Ads + r.Stage2Ads
	r.TotalKnownMal = r.Stage1KnownMal + r.Stage2KnownMal
	r.TotalAddMal = r.Stage1AddMal + r.Stage2AddMal

	if a.Meta != nil {
		r.MetaClusters = len(a.Meta.Meta)
		r.AdRelatedMeta = a.Meta.AdRelatedMeta()
		r.SuspiciousMeta = a.Meta.SuspiciousMeta()
		r.SingletonsAfterMeta = a.Meta.SingletonsAfterMeta(a.Clusters)
	}

	for _, c := range a.Clusters.AdCampaigns() {
		mal := false
		for _, m := range c.Members {
			if a.Labels[m].Malicious() {
				mal = true
				break
			}
		}
		if mal {
			r.MaliciousCampaigns++
		}
	}
	return r
}

// RecordLabel returns the labels of the i-th valid-landing record.
func (a *Analysis) RecordLabel(i int) *RecordLabels { return a.Labels[i] }

// ClusterOf returns the WPN cluster index of the i-th record.
func (a *Analysis) ClusterOf(i int) int { return a.Clusters.Labels[i] }
