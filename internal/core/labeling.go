package core

import (
	"fmt"
	"time"

	"pushadminer/internal/blocklist"
)

// BlocklistLookup abstracts a URL blocklist service (VT, GSB): it
// reports verdicts for full URLs at a given instant. Both the in-process
// blocklist.Service and the HTTP blocklist.Client satisfy it via small
// adapters below.
type BlocklistLookup interface {
	Name() string
	Lookup(urls []string, now time.Time) ([]blocklist.Verdict, error)
}

// ServiceLookup adapts an in-process blocklist.Service.
type ServiceLookup struct{ S *blocklist.Service }

// Name implements BlocklistLookup.
func (l ServiceLookup) Name() string { return l.S.Name() }

// Lookup implements BlocklistLookup.
func (l ServiceLookup) Lookup(urls []string, now time.Time) ([]blocklist.Verdict, error) {
	out := make([]blocklist.Verdict, len(urls))
	for i, u := range urls {
		out[i] = l.S.Lookup(u, now)
	}
	return out, nil
}

// ClientLookup adapts an HTTP blocklist client.
type ClientLookup struct {
	ServiceName string
	C           *blocklist.Client
}

// Name implements BlocklistLookup.
func (l ClientLookup) Name() string { return l.ServiceName }

// Lookup implements BlocklistLookup.
func (l ClientLookup) Lookup(urls []string, now time.Time) ([]blocklist.Verdict, error) {
	return l.C.Lookup(urls, now)
}

// RecordLabels carries per-record labels accumulated through the
// pipeline stages.
type RecordLabels struct {
	// KnownMalicious: the record's landing URL is flagged by VT or GSB
	// (after FP filtering, §6.3.2).
	KnownMalicious bool
	// FlaggedBy names the services that flagged it.
	FlaggedBy []string
	// PropagatedMalicious: labeled via guilty-by-association within a
	// malicious WPN cluster (§5.2).
	PropagatedMalicious bool
	// IsAd: member of an ad campaign cluster or an ad-related meta
	// cluster.
	IsAd bool
	// AdViaMeta: became an ad only through meta-clustering (§5.4).
	AdViaMeta bool
	// Suspicious: flagged by the §5.4 suspicious-identification rules.
	Suspicious bool
	// ConfirmedMalicious: confirmed by the manual-verification pass.
	ConfirmedMalicious bool
}

// Malicious reports whether the record ended up labeled malicious by
// any path.
func (l *RecordLabels) Malicious() bool {
	return l.KnownMalicious || (l.PropagatedMalicious && l.ConfirmedMalicious) ||
		(l.Suspicious && l.ConfirmedMalicious)
}

// LabelKnownMalicious queries the blocklist services for every distinct
// landing URL (at each of the scan instants — the paper scanned once
// during collection and again a month later) and marks records whose
// landing URL any service flags. It returns the per-record labels slice
// and the set of flagged URLs.
func LabelKnownMalicious(fs *FeatureSet, services []BlocklistLookup, scans []time.Time) ([]*RecordLabels, map[string][]string, error) {
	labels := make([]*RecordLabels, len(fs.Records))
	for i := range labels {
		labels[i] = &RecordLabels{}
	}
	urlSet := map[string][]int{}
	for i, r := range fs.Records {
		if r.LandingURL != "" {
			urlSet[r.LandingURL] = append(urlSet[r.LandingURL], i)
		}
	}
	urls := make([]string, 0, len(urlSet))
	for u := range urlSet {
		urls = append(urls, u)
	}

	flagged := map[string][]string{} // url → services
	for _, svc := range services {
		for _, at := range scans {
			verdicts, err := svc.Lookup(urls, at)
			if err != nil {
				return nil, nil, fmt.Errorf("core: blocklist %s: %w", svc.Name(), err)
			}
			for _, v := range verdicts {
				if v.Malicious && !contains(flagged[v.URL], svc.Name()) {
					flagged[v.URL] = append(flagged[v.URL], svc.Name())
				}
			}
		}
	}
	for u, svcs := range flagged {
		for _, idx := range urlSet[u] {
			labels[idx].KnownMalicious = true
			labels[idx].FlaggedBy = svcs
		}
	}
	return labels, flagged, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// PropagateMalicious applies the §5.2 guilty-by-association policy:
// every member of a cluster containing at least one known-malicious WPN
// is marked PropagatedMalicious. It returns the malicious cluster set
// (by cluster index).
func PropagateMalicious(cr *ClusterResult, labels []*RecordLabels) map[int]bool {
	malClusters := map[int]bool{}
	for ci, c := range cr.Clusters {
		mal := false
		for _, m := range c.Members {
			if labels[m].KnownMalicious {
				mal = true
				break
			}
		}
		if !mal {
			continue
		}
		malClusters[ci] = true
		for _, m := range c.Members {
			if !labels[m].KnownMalicious {
				labels[m].PropagatedMalicious = true
			}
		}
	}
	return malClusters
}

// MarkAds sets IsAd for members of ad-campaign clusters.
func MarkAds(cr *ClusterResult, labels []*RecordLabels) {
	for _, c := range cr.Clusters {
		if !c.IsAdCampaign {
			continue
		}
		for _, m := range c.Members {
			labels[m].IsAd = true
		}
	}
}
