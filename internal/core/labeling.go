package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"pushadminer/internal/blocklist"
)

// BlocklistLookup abstracts a URL blocklist service (VT, GSB): it
// reports verdicts for full URLs at a given instant. Both the in-process
// blocklist.Service and the HTTP blocklist.Client satisfy it via small
// adapters below.
type BlocklistLookup interface {
	Name() string
	Lookup(urls []string, now time.Time) ([]blocklist.Verdict, error)
}

// ServiceLookup adapts an in-process blocklist.Service.
type ServiceLookup struct{ S *blocklist.Service }

// Name implements BlocklistLookup.
func (l ServiceLookup) Name() string { return l.S.Name() }

// Lookup implements BlocklistLookup.
func (l ServiceLookup) Lookup(urls []string, now time.Time) ([]blocklist.Verdict, error) {
	out := make([]blocklist.Verdict, len(urls))
	for i, u := range urls {
		out[i] = l.S.Lookup(u, now)
	}
	return out, nil
}

// ClientLookup adapts an HTTP blocklist client.
type ClientLookup struct {
	ServiceName string
	C           *blocklist.Client
}

// Name implements BlocklistLookup.
func (l ClientLookup) Name() string { return l.ServiceName }

// Lookup implements BlocklistLookup.
func (l ClientLookup) Lookup(urls []string, now time.Time) ([]blocklist.Verdict, error) {
	return l.C.Lookup(urls, now)
}

// RecordLabels carries per-record labels accumulated through the
// pipeline stages.
type RecordLabels struct {
	// KnownMalicious: the record's landing URL is flagged by VT or GSB
	// (after FP filtering, §6.3.2).
	KnownMalicious bool
	// FlaggedBy names the services that flagged it.
	FlaggedBy []string
	// PropagatedMalicious: labeled via guilty-by-association within a
	// malicious WPN cluster (§5.2).
	PropagatedMalicious bool
	// IsAd: member of an ad campaign cluster or an ad-related meta
	// cluster.
	IsAd bool
	// AdViaMeta: became an ad only through meta-clustering (§5.4).
	AdViaMeta bool
	// Suspicious: flagged by the §5.4 suspicious-identification rules.
	Suspicious bool
	// ConfirmedMalicious: confirmed by the manual-verification pass.
	ConfirmedMalicious bool
}

// Malicious reports whether the record ended up labeled malicious by
// any path.
func (l *RecordLabels) Malicious() bool {
	return l.KnownMalicious || (l.PropagatedMalicious && l.ConfirmedMalicious) ||
		(l.Suspicious && l.ConfirmedMalicious)
}

// LabelOptions configure LabelKnownMaliciousOpts.
type LabelOptions struct {
	// Workers bounds the parallel blocklist lookups: the distinct-URL
	// set is split into contiguous chunks queried concurrently, then
	// folded serially in URL order, so the labels are identical at any
	// worker count. 1 forces the serial path; <= 0 defaults to
	// GOMAXPROCS.
	Workers int
}

// LabelKnownMalicious queries the blocklist services for every distinct
// landing URL (at each of the scan instants — the paper scanned once
// during collection and again a month later) and marks records whose
// landing URL any service flags. It returns the per-record labels slice
// and the set of flagged URLs.
func LabelKnownMalicious(fs *FeatureSet, services []BlocklistLookup, scans []time.Time) ([]*RecordLabels, map[string][]string, error) {
	return LabelKnownMaliciousOpts(fs, services, scans, LabelOptions{})
}

// LabelKnownMaliciousOpts is LabelKnownMalicious with an explicit
// fan-out bound (see LabelOptions).
func LabelKnownMaliciousOpts(fs *FeatureSet, services []BlocklistLookup, scans []time.Time, opts LabelOptions) ([]*RecordLabels, map[string][]string, error) {
	labels := make([]*RecordLabels, len(fs.Records))
	for i := range labels {
		labels[i] = &RecordLabels{}
	}
	urlSet := map[string][]int{}
	for i, r := range fs.Records {
		if r.LandingURL != "" {
			urlSet[r.LandingURL] = append(urlSet[r.LandingURL], i)
		}
	}
	// Sort the distinct URLs so lookup requests, chunk boundaries, and
	// the flagged fold all run in one deterministic order.
	urls := make([]string, 0, len(urlSet))
	for u := range urlSet {
		urls = append(urls, u)
	}
	sort.Strings(urls)

	flagged := map[string][]string{} // url → services
	for _, svc := range services {
		for _, at := range scans {
			verdicts, err := lookupChunked(svc, urls, at, opts.Workers)
			if err != nil {
				return nil, nil, fmt.Errorf("core: blocklist %s: %w", svc.Name(), err)
			}
			for _, v := range verdicts {
				if v.Malicious && !contains(flagged[v.URL], svc.Name()) {
					flagged[v.URL] = append(flagged[v.URL], svc.Name())
				}
			}
		}
	}
	for u, svcs := range flagged {
		for _, idx := range urlSet[u] {
			labels[idx].KnownMalicious = true
			labels[idx].FlaggedBy = svcs
		}
	}
	return labels, flagged, nil
}

// lookupChunked splits urls into one contiguous chunk per worker,
// queries them concurrently, and concatenates the verdicts back in
// chunk order — the same verdict sequence a single whole-slice Lookup
// returns. Errors surface deterministically: the first failing chunk in
// slice order wins.
func lookupChunked(svc BlocklistLookup, urls []string, at time.Time, workers int) ([]blocklist.Verdict, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(urls) {
		workers = len(urls)
	}
	if workers <= 1 {
		return svc.Lookup(urls, at)
	}
	chunkVerdicts := make([][]blocklist.Verdict, workers)
	chunkErrs := make([]error, workers)
	per := (len(urls) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(urls) {
			hi = len(urls)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			chunkVerdicts[w], chunkErrs[w] = svc.Lookup(urls[lo:hi], at)
		}(w, lo, hi)
	}
	wg.Wait()
	var out []blocklist.Verdict
	for w := 0; w < workers; w++ {
		if chunkErrs[w] != nil {
			return nil, chunkErrs[w]
		}
		out = append(out, chunkVerdicts[w]...)
	}
	return out, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// PropagateMalicious applies the §5.2 guilty-by-association policy:
// every member of a cluster containing at least one known-malicious WPN
// is marked PropagatedMalicious. It returns the malicious cluster set
// (by cluster index).
func PropagateMalicious(cr *ClusterResult, labels []*RecordLabels) map[int]bool {
	malClusters := map[int]bool{}
	for ci, c := range cr.Clusters {
		mal := false
		for _, m := range c.Members {
			if labels[m].KnownMalicious {
				mal = true
				break
			}
		}
		if !mal {
			continue
		}
		malClusters[ci] = true
		for _, m := range c.Members {
			if !labels[m].KnownMalicious {
				labels[m].PropagatedMalicious = true
			}
		}
	}
	return malClusters
}

// MarkAds sets IsAd for members of ad-campaign clusters.
func MarkAds(cr *ClusterResult, labels []*RecordLabels) {
	for _, c := range cr.Clusters {
		if !c.IsAdCampaign {
			continue
		}
		for _, m := range c.Members {
			labels[m].IsAd = true
		}
	}
}
