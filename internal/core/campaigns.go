package core

import (
	"sort"
)

// CampaignSummary is the analyst-facing description of one discovered
// WPN ad campaign — the library's equivalent of the paper's campaign
// case studies (Figure 4, §6.3.2 examples).
type CampaignSummary struct {
	ClusterID int
	// Size is the number of WPN messages in the campaign.
	Size int
	// Sources and LandingDomains are the distinct eSLDs involved.
	Sources        []string
	LandingDomains []string
	// SampleTitle/SampleBody show one representative creative.
	SampleTitle string
	SampleBody  string
	// SampleLanding is one landing URL.
	SampleLanding string
	// Malicious reports whether any member ended up labeled malicious;
	// KnownMalicious counts blocklist-flagged members.
	Malicious      bool
	KnownMalicious int
	// ScamType classifies malicious campaigns by content.
	ScamType ScamType
	// MetaCluster is the owning meta cluster id (-1 if none).
	MetaCluster int
}

// Campaigns summarizes every discovered ad campaign, largest first.
func Campaigns(s *Study) []CampaignSummary {
	a := s.Analysis
	var out []CampaignSummary
	for ci, c := range a.Clusters.Clusters {
		if !c.IsAdCampaign {
			continue
		}
		cs := CampaignSummary{
			ClusterID:      c.ID,
			Size:           len(c.Members),
			Sources:        c.SourceDomains,
			LandingDomains: c.LandingDomains,
			MetaCluster:    -1,
		}
		if mi, ok := a.Meta.MetaOf(ci); ok {
			cs.MetaCluster = mi
		}
		rep := a.FS.Records[c.Members[0]]
		cs.SampleTitle, cs.SampleBody, cs.SampleLanding = rep.Title, rep.Body, rep.LandingURL
		for _, m := range c.Members {
			l := a.Labels[m]
			if l.KnownMalicious {
				cs.KnownMalicious++
			}
			if l.Malicious() {
				cs.Malicious = true
			}
		}
		if cs.Malicious {
			cs.ScamType = ClassifyScam(rep)
		}
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size != out[j].Size {
			return out[i].Size > out[j].Size
		}
		return out[i].ClusterID < out[j].ClusterID
	})
	return out
}
