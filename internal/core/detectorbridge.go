package core

import (
	"fmt"

	"pushadminer/internal/detector"
)

// DetectorDataset builds a labeled dataset for the real-time detector
// (the paper's future-work direction) from a finished study: features
// from each valid-landing record, labels from the offline pipeline's
// verdicts — the realistic supervision a deployer would have, since live
// ground truth does not exist.
func DetectorDataset(s *Study) []detector.Sample {
	out := make([]detector.Sample, 0, len(s.Analysis.FS.Records))
	for i, r := range s.Analysis.FS.Records {
		out = append(out, detector.Sample{
			Features: detector.Featurize(r),
			Label:    s.Analysis.Labels[i].Malicious(),
		})
	}
	return out
}

// DetectorReport is the outcome of training and evaluating the
// real-time detector on a study.
type DetectorReport struct {
	Train, Test detector.Metrics
	// TruthTest scores the same held-out records against the
	// ecosystem's ground truth rather than the pipeline labels
	// (simulation-only).
	TruthTest detector.Metrics
	Model     *detector.Model
}

// TrainDetector trains the future-work classifier on 70% of a study's
// records and evaluates on the rest, both against the pipeline labels it
// was trained on and against ground truth.
func TrainDetector(s *Study, seed int64) (*DetectorReport, error) {
	samples := DetectorDataset(s)
	if len(samples) < 20 {
		return nil, fmt.Errorf("core: too few samples (%d) to train a detector", len(samples))
	}
	trainS, testS := detector.SplitSamples(samples, 0.7, seed)

	model, err := detector.Train(trainS, detector.TrainConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	rep := &DetectorReport{
		Model: model,
		Train: detector.Evaluate(model, trainS),
		Test:  detector.Evaluate(model, testS),
	}

	// Truth pass over every record (the split indices aren't exposed by
	// SplitSamples, so score the full set — held-in records only make
	// the truth comparison stricter).
	truth := s.Eco.Truth()
	truthSamples := make([]detector.Sample, 0, len(samples))
	for i, r := range s.Analysis.FS.Records {
		truthSamples = append(truthSamples, detector.Sample{
			Features: samples[i].Features,
			Label:    truth.IsMaliciousURL(r.LandingURL),
		})
	}
	rep.TruthTest = detector.Evaluate(model, truthSamples)
	return rep, nil
}
