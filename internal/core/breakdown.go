package core

import (
	"fmt"
	"sort"
	"strings"

	"pushadminer/internal/crawler"
	"pushadminer/internal/graph"
	"pushadminer/internal/report"
)

// ScamType is a content-derived category of malicious WPN ad, matching
// the kinds the paper's manual analysis reports (§6.3.2: survey scams,
// phishing pages, scareware, fake alerts, social media scams, ...).
type ScamType string

// Scam types recognized by the classifier.
const (
	ScamSurvey      ScamType = "survey/sweepstakes scam"
	ScamTechSupport ScamType = "tech support scam"
	ScamPhishing    ScamType = "phishing / fake account alert"
	ScamScareware   ScamType = "scareware / fake infection"
	ScamMobileBait  ScamType = "mobile bait (missed call, parcel, chat)"
	ScamAdvanceFee  ScamType = "lottery / advance-fee"
	ScamOther       ScamType = "other"
)

var scamMarkers = []struct {
	typ     ScamType
	markers []string
}{
	{ScamTechSupport, []string{"toll free", "computer has been blocked", "support technician", "your computer is infected", "payment info has been leaked"}},
	{ScamScareware, []string{"cleaner", "scan results", "battery is damaged", "storage 98", "repair tool", "viruses"}},
	{ScamPhishing, []string{"verify your account", "unusual sign-in", "sign in with your email", "account will be suspended", "confirm your identity", "restore access"}},
	{ScamMobileBait, []string{"missed call", "voicemail", "could not be delivered", "delivery fee", "redelivery", "whatsapp", "friend request", "new messages"}},
	{ScamAdvanceFee, []string{"national draw", "unclaimed cash", "processing fee", "pending payout", "wire your", "transfer desk"}},
	{ScamSurvey, []string{"survey", "you have won", "lucky visitor", "claim your prize", "spin the wheel", "congratulations", "winner"}},
}

// ClassifyScam assigns a malicious record to a scam type from its
// message and landing content.
func ClassifyScam(r *crawler.WPNRecord) ScamType {
	text := strings.ToLower(r.Title + " " + r.Body + " " + r.LandingTitle + " " + r.LandingContent)
	for _, entry := range scamMarkers {
		for _, m := range entry.markers {
			if strings.Contains(text, m) {
				return entry.typ
			}
		}
	}
	return ScamOther
}

// ScamBreakdown counts the study's malicious ads per scam type.
func ScamBreakdown(s *Study) map[ScamType]int {
	out := map[ScamType]int{}
	for i, r := range s.Analysis.FS.Records {
		l := s.Analysis.Labels[i]
		if l.IsAd && l.Malicious() {
			out[ClassifyScam(r)]++
		}
	}
	return out
}

// ScamBreakdownTable renders the §6.3.2-style qualitative breakdown.
func ScamBreakdownTable(s *Study) *report.Table {
	t := &report.Table{
		Title:   "Malicious WPN ads by scam type (content-classified)",
		Headers: []string{"Scam type", "Ads", "Share"},
		Note:    "the paper reports survey scams, phishing, scareware, fake alerts and mobile bait dominating (§6.3.2–6.3.3)",
	}
	counts := ScamBreakdown(s)
	type kv struct {
		typ ScamType
		n   int
	}
	var rows []kv
	total := 0
	for typ, n := range counts {
		rows = append(rows, kv{typ, n})
		total += n
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].typ < rows[j].typ
	})
	for _, r := range rows {
		t.AddRow(string(r.typ), r.n, report.Pct(r.n, total))
	}
	t.AddRow("total", total, "")
	return t
}

// MetaClusterDOT renders one of a study's meta clusters as Graphviz
// DOT; see AnalysisMetaClusterDOT.
func MetaClusterDOT(s *Study, metaID int) (string, error) {
	return AnalysisMetaClusterDOT(s.Analysis, metaID)
}

// AnalysisMetaClusterDOT renders one meta cluster as a Graphviz DOT
// bipartite graph — the machine-readable form of Figure 5's drawings.
// WPN cluster nodes are boxes (red for malicious, orange for
// suspicious, blue for ad campaigns), landing domains are ellipses.
func AnalysisMetaClusterDOT(a *Analysis, metaID int) (string, error) {
	if metaID < 0 || metaID >= len(a.Meta.Meta) {
		return "", fmt.Errorf("core: no meta cluster %d", metaID)
	}
	mc := a.Meta.Meta[metaID]
	var b strings.Builder
	fmt.Fprintf(&b, "graph meta%d {\n  layout=neato;\n  overlap=false;\n", metaID)
	for _, ci := range mc.Clusters {
		c := a.Clusters.Clusters[ci]
		color := "gray"
		switch {
		case a.MalClusters[ci]:
			color = "red"
		case clusterSuspicious(a, ci):
			color = "orange"
		case c.IsAdCampaign:
			color = "lightblue"
		}
		label := fmt.Sprintf("C%d\\n%d WPNs", c.ID, len(c.Members))
		fmt.Fprintf(&b, "  c%d [shape=box style=filled fillcolor=%s label=\"%s\"];\n", c.ID, color, label)
	}
	g := graph.NewBipartite()
	for _, ci := range mc.Clusters {
		c := a.Clusters.Clusters[ci]
		for _, d := range c.LandingDomains {
			g.AddEdge(c.ID, d)
		}
	}
	for _, d := range g.Rights() {
		fmt.Fprintf(&b, "  %q [shape=ellipse];\n", d)
	}
	for _, ci := range g.Lefts() {
		for _, d := range g.Neighbors(ci) {
			fmt.Fprintf(&b, "  c%d -- %q;\n", ci, d)
		}
	}
	b.WriteString("}\n")
	return b.String(), nil
}

func clusterSuspicious(a *Analysis, ci int) bool {
	for _, m := range a.Clusters.Clusters[ci].Members {
		if a.Labels[m].Suspicious {
			return true
		}
	}
	return false
}
