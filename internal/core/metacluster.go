package core

import (
	"pushadminer/internal/graph"
)

// MetaCluster is one connected component of the cluster–landing-domain
// bipartite graph (§5.3): WPN clusters that collectively share landing
// domains, i.e. likely one advertiser "operation".
type MetaCluster struct {
	ID       int
	Clusters []int    // WPN cluster indices
	Domains  []string // landing domains in the component

	// AdRelated: contains at least one ad-campaign cluster, so every
	// member WPN is considered an ad (§5.4).
	AdRelated bool
	// ContainsMalicious: contains at least one malicious WPN cluster.
	ContainsMalicious bool
	// DuplicateAdDomains: an ad campaign inside it rotates through
	// multiple landing domains (the Google/Bing "duplicate ads" policy
	// violation, §5.4).
	DuplicateAdDomains bool
	// Suspicious: flagged for manual analysis.
	Suspicious bool
}

// MetaClusterResult is the outcome of meta-clustering.
type MetaClusterResult struct {
	Meta []*MetaCluster
	// clusterToMeta maps WPN cluster index → meta cluster index.
	clusterToMeta map[int]int
}

// MetaOf returns the meta cluster index owning a WPN cluster.
func (m *MetaClusterResult) MetaOf(clusterIdx int) (int, bool) {
	i, ok := m.clusterToMeta[clusterIdx]
	return i, ok
}

// BuildMetaClusters constructs the bipartite graph (W = WPN clusters,
// D = landing domains) and extracts connected components, then applies
// the §5.4 labeling rules:
//
//  1. a meta cluster containing an ad-campaign cluster makes all its
//     WPNs ads;
//  2. a meta cluster containing a malicious cluster, or containing
//     duplicate ad domains, is suspicious — its not-yet-malicious WPNs
//     are marked Suspicious for manual verification.
func BuildMetaClusters(cr *ClusterResult, labels []*RecordLabels, malClusters map[int]bool) *MetaClusterResult {
	g := graph.NewBipartite()
	for ci, c := range cr.Clusters {
		g.AddLeft(ci)
		for _, d := range c.LandingDomains {
			g.AddEdge(ci, d)
		}
	}
	comps := g.Components()
	res := &MetaClusterResult{clusterToMeta: make(map[int]int)}
	for mi, comp := range comps {
		mc := &MetaCluster{ID: mi, Clusters: comp.Left, Domains: comp.Right}
		for _, ci := range comp.Left {
			res.clusterToMeta[ci] = mi
			c := cr.Clusters[ci]
			if c.IsAdCampaign {
				mc.AdRelated = true
				if len(c.LandingDomains) > 1 {
					mc.DuplicateAdDomains = true
				}
			}
			if malClusters[ci] {
				mc.ContainsMalicious = true
			}
		}
		mc.Suspicious = mc.ContainsMalicious || mc.DuplicateAdDomains
		res.Meta = append(res.Meta, mc)
	}

	// Apply record-level consequences.
	for _, mc := range res.Meta {
		if !mc.AdRelated && !mc.Suspicious {
			continue
		}
		for _, ci := range mc.Clusters {
			for _, m := range cr.Clusters[ci].Members {
				l := labels[m]
				if mc.AdRelated && !l.IsAd {
					l.IsAd = true
					l.AdViaMeta = true
				}
				if mc.Suspicious && !l.KnownMalicious && !l.PropagatedMalicious {
					l.Suspicious = true
				}
			}
		}
	}
	return res
}

// SingletonsAfterMeta counts singleton WPN clusters that remain in
// single-cluster meta clusters (the §6.3.3 "855 singleton clusters"
// remainder after 6,876 were absorbed).
func (m *MetaClusterResult) SingletonsAfterMeta(cr *ClusterResult) int {
	n := 0
	for _, mc := range m.Meta {
		if len(mc.Clusters) == 1 && cr.Clusters[mc.Clusters[0]].Singleton() {
			n++
		}
	}
	return n
}

// AdRelatedMeta counts ad-related meta clusters.
func (m *MetaClusterResult) AdRelatedMeta() int {
	n := 0
	for _, mc := range m.Meta {
		if mc.AdRelated {
			n++
		}
	}
	return n
}

// SuspiciousMeta counts suspicious meta clusters.
func (m *MetaClusterResult) SuspiciousMeta() int {
	n := 0
	for _, mc := range m.Meta {
		if mc.Suspicious {
			n++
		}
	}
	return n
}
