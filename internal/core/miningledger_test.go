package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"pushadminer/internal/telemetry"
)

// ledgerFS builds a corpus big enough to cross the
// blockedExactSweepMaxN crossover, so the pooled cut sweep (the source
// of height_swept events and sweep timings) actually runs.
func ledgerFS(t *testing.T) *FeatureSet {
	t.Helper()
	return parityFS(t, 1, 600)
}

func writeLedger(t *testing.T, dir, name string, events []MiningEvent) []byte {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := WriteMiningLedger(path, events); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestMiningLedgerDeterminism reruns the blocked path at a fixed seed
// and byte-compares the serialized ledgers: events carry no wall-clock
// time and are flushed from serial code in canonical order, so two runs
// must serialize identically — with or without telemetry attached.
func TestMiningLedgerDeterminism(t *testing.T) {
	fs := ledgerFS(t)
	dir := t.TempDir()

	run := func(withMetrics bool) []MiningEvent {
		opts := ClusterOptions{Blocked: true, Ledger: NewMiningLedger()}
		if withMetrics {
			opts.Metrics = telemetry.New()
		}
		ClusterWPNs(fs, opts)
		return opts.Ledger.Events()
	}

	a := writeLedger(t, dir, "a.jsonl", run(false))
	b := writeLedger(t, dir, "b.jsonl", run(false))
	if !bytes.Equal(a, b) {
		t.Error("two plain runs serialized different ledgers")
	}
	c := writeLedger(t, dir, "c.jsonl", run(true))
	if !bytes.Equal(a, c) {
		t.Error("attaching telemetry changed the ledger bytes")
	}

	events, err := ReadMiningLedger(filepath.Join(dir, "a.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	counts := LedgerEventCounts(events)
	if counts[EvHeightSwept] == 0 {
		t.Error("no height_swept events: corpus did not cross the pooled-sweep crossover")
	}
	if counts[EvBlockClustered] == 0 || counts[EvCutChosen] != 1 {
		t.Errorf("event counts = %v, want blocks > 0 and exactly one cut_chosen", counts)
	}
	if counts[EvStageBegin] == 0 || counts[EvStageBegin] != counts[EvStageEnd] {
		t.Errorf("unbalanced stage brackets: %d begin, %d end", counts[EvStageBegin], counts[EvStageEnd])
	}
}

func atoi(t *testing.T, s string) int64 {
	t.Helper()
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("bad int attr %q: %v", s, err)
	}
	return v
}

// TestMiningLedgerReconciliation cross-checks the ledger against the
// telemetry snapshot of the same run: the two observation surfaces must
// agree on pair volumes, and the cut event must match the returned
// result.
func TestMiningLedgerReconciliation(t *testing.T) {
	fs := ledgerFS(t)
	reg := telemetry.New()
	led := NewMiningLedger()
	res := ClusterWPNs(fs, ClusterOptions{Blocked: true, Metrics: reg, Ledger: led})

	snap := reg.Snapshot()
	pairs := snap.Families["mining_pairs"]

	var linkagePairs, sweepPairs int64
	var cut *MiningEvent
	for _, ev := range led.Events() {
		ev := ev
		switch ev.Kind {
		case EvBlockClustered:
			m := atoi(t, ev.Attrs["size"])
			linkagePairs += m * (m - 1) / 2
		case EvHeightSwept:
			if ev.Attrs["valid"] == "true" {
				sweepPairs += atoi(t, ev.Attrs["scored_pairs"])
			}
		case EvCutChosen:
			cut = &ev
		}
	}
	if linkagePairs == 0 {
		t.Fatal("no block_clustered events")
	}
	if got := pairs["block_linkage_exact"]; got != linkagePairs {
		t.Errorf("mining_pairs[block_linkage_exact] = %d, ledger says %d", got, linkagePairs)
	}
	if got := pairs["sweep_scored"]; got != sweepPairs {
		t.Errorf("mining_pairs[sweep_scored] = %d, ledger says %d", got, sweepPairs)
	}
	if pairs["blocks_gate_checked"] == 0 || pairs["blocks_edges"] == 0 {
		t.Errorf("union-phase accounting empty: %v", pairs)
	}
	if cut == nil {
		t.Fatal("no cut_chosen event")
	}
	if h, _ := strconv.ParseFloat(cut.Attrs["height"], 64); h != res.CutHeight {
		t.Errorf("cut event height = %v, result says %v", h, res.CutHeight)
	}
	if k := atoi(t, cut.Attrs["k"]); int(k) != numClusters(res.Labels) {
		t.Errorf("cut event k = %d, result has %d clusters", k, numClusters(res.Labels))
	}

	// Sub-stage sweep attribution landed: some height bucket saw time,
	// and the full preresolved key set is present even for empty buckets.
	sweep := snap.Families["mining_sweep_ns"]
	if len(sweep) != len(sweepBucketNames) {
		t.Errorf("mining_sweep_ns has %d buckets, want %d preresolved", len(sweep), len(sweepBucketNames))
	}
	var sweepNS int64
	for _, v := range sweep {
		sweepNS += v
	}
	if sweepNS <= 0 {
		t.Error("no sweep time attributed to any height bucket")
	}
	// Memory accounting landed at stage boundaries.
	if snap.Families["mining_stage_alloc_bytes"] == nil {
		t.Error("mining_stage_alloc_bytes family missing")
	}
	if _, ok := snap.Gauges["mining_heap_alloc_bytes"]; !ok {
		t.Error("mining_heap_alloc_bytes gauge missing")
	}
}

// TestMiningLedgerRoundTrip pins Write/Read symmetry and the seq-gap
// validation.
func TestMiningLedgerRoundTrip(t *testing.T) {
	led := NewMiningLedger()
	led.StageBegin("blocks")
	led.BlockClustered(0, 3)
	led.BlockClustered(1, 1)
	led.StageEnd("blocks")
	led.HeightSwept(0.25, 4, true, 0.5, 3, 12)
	led.CutChosen(0.25, 4, 0.5)
	events := led.Events()

	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	if err := WriteMiningLedger(path, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMiningLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round-trip read %d events, wrote %d", len(got), len(events))
	}
	for i := range got {
		if got[i].Seq != events[i].Seq || got[i].Kind != events[i].Kind {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
		for k, v := range events[i].Attrs {
			if got[i].Attrs[k] != v {
				t.Errorf("event %d attr %s: got %q, want %q", i, k, got[i].Attrs[k], v)
			}
		}
	}

	// A seq gap (dropped line) must be rejected.
	gap := append([]MiningEvent{}, events[:2]...)
	gap = append(gap, events[3:]...)
	if err := WriteMiningLedger(path, gap); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMiningLedger(path); err == nil {
		t.Error("seq gap not detected on read")
	}
}

// TestMiningLedgerWithoutTelemetry pins the sinks-are-independent
// contract: a run with only a ledger attached (no Metrics, no Tracer)
// still records the full event stream.
func TestMiningLedgerWithoutTelemetry(t *testing.T) {
	fs := parityFS(t, 2, 150)
	led := NewMiningLedger()
	ClusterWPNs(fs, ClusterOptions{Blocked: true, Ledger: led})
	counts := LedgerEventCounts(led.Events())
	if counts[EvStageBegin] == 0 || counts[EvBlockClustered] == 0 || counts[EvCutChosen] != 1 {
		t.Errorf("ledger-only run events = %v", counts)
	}
}

// TestMiningLedgerIncremental checks the streaming path's events
// reconcile with its own stats: batch counts sum to the corpus size and
// every recluster round is recorded.
func TestMiningLedgerIncremental(t *testing.T) {
	fs := parityFS(t, 1, 150)
	led := NewMiningLedger()
	ClusterWPNs(fs, ClusterOptions{Incremental: true, IncrementalBatch: 40, Ledger: led})

	var added, batches, reclusters int64
	for _, ev := range led.Events() {
		switch ev.Kind {
		case EvIncrementalAdd:
			batches++
			added += atoi(t, ev.Attrs["count"])
		case EvRecluster:
			reclusters++
		}
	}
	if added != int64(len(fs.Records)) {
		t.Errorf("incremental_add events cover %d records, corpus has %d", added, len(fs.Records))
	}
	if wantBatches := int64((len(fs.Records) + 39) / 40); batches != wantBatches {
		t.Errorf("%d incremental_add events, want %d", batches, wantBatches)
	}
	if reclusters == 0 {
		t.Error("no recluster events")
	}
}
